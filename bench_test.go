// Top-level benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §5 for the experiment index), plus the
// ablation benchmarks DESIGN.md §7 calls out. Each benchmark regenerates the
// corresponding result on the simulated platform and logs the headline
// numbers; wall-clock time measures the harness, while the logged values are
// simulated seconds and Joules comparable to the paper's columns.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/confgraph"
	"repro/internal/experiments"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/sched"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns the shared characterization/graph environment.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(1, experiments.DefaultValidationFrames)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTableI regenerates Table I (single-model statistics on CPU, GPU
// and DLA).
func BenchmarkTableI(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(e, 300, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gpu, _ := res.Cell("YoloV7", accel.KindGPU)
			b.Logf("Table I YoloV7@GPU: %.3fs %.2fW %.3fJ (paper: 0.13s 15.1W 1.97J)",
				gpu.TimeSec, gpu.PowerW, gpu.EnergyJ)
		}
	}
}

// BenchmarkTableIII regenerates the main results table over the full
// six-scenario evaluation suite.
func BenchmarkTableIII(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(e, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			shift, _ := res.Summary("SHIFT")
			marlin, _ := res.Summary("Marlin")
			b.Logf("SHIFT: iou=%.3f time=%.3fs energy=%.3fJ nonGPU=%.1f%% swaps=%d pairs=%.1f (paper: 0.598 0.047s 0.262J 68.7%% 42 4.3)",
				shift.AvgIoU, shift.AvgTimeSec, shift.AvgEnergyJ, shift.NonGPUFrac*100, shift.Swaps, shift.PairsUsed)
			b.Logf("Marlin: iou=%.3f time=%.3fs energy=%.3fJ (paper: 0.614 0.132s 1.201J)",
				marlin.AvgIoU, marlin.AvgTimeSec, marlin.AvgEnergyJ)
		}
	}
}

// BenchmarkTableIV regenerates the full characterization table.
func BenchmarkTableIV(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(e, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			v7, _ := res.Row("YoloV7")
			tiny, _ := res.Row("YoloV7-Tiny")
			b.Logf("Table IV: YoloV7 iou=%.3f, Tiny iou=%.3f (paper: 0.618, 0.533)",
				v7.AvgIoU, tiny.AvgIoU)
		}
	}
}

// BenchmarkFigure1 regenerates the e-a-l comparison of single-family scaling
// vs the multi-model zoo.
func BenchmarkFigure1(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the single-model efficiency timelines.
func BenchmarkFigure2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(e, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the scenario-1 SHIFT timeline.
func BenchmarkFigure3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Figure 3: %d swaps, first at frame %d (paper: transitions near 50/500/1100/1650)",
				len(res.SwapFrames), res.SwapFrames[0])
		}
	}
}

// BenchmarkFigure4 regenerates the scenario-2 SHIFT timeline.
func BenchmarkFigure4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 runs the sensitivity sweep on the quick grid (the full
// 1,920-configuration grid is cmd/sweep -full).
func BenchmarkFigure5(b *testing.B) {
	e := env(b)
	cfg := experiments.QuickSweepConfig()
	cfg.Scenarios = []*scene.Scenario{scene.Scenario2()}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := res.Correlations["energy knob"]
			b.Logf("Figure 5: energy knob vs energy corr %+.3f (paper: negative)", c[1])
		}
	}
}

// runSHIFTWith runs SHIFT over scenario 2 with custom options and returns
// the summary plus loader stats.
func runSHIFTWith(b *testing.B, e *experiments.Env, mutate func(*pipeline.Options), graph *confgraph.Graph) (metrics.Summary, loader.Stats) {
	b.Helper()
	opts := pipeline.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	if graph == nil {
		graph = e.Graph
	}
	shift, err := pipeline.NewSHIFT(e.System(), e.Ch, graph, opts)
	if err != nil {
		b.Fatal(err)
	}
	sc := scene.Scenario2()
	res, err := shift.Run(sc.Name, e.Frames(sc))
	if err != nil {
		b.Fatal(err)
	}
	return metrics.Summarize(res), shift.LoaderStats()
}

// BenchmarkAblationGraphDepth compares the full confidence graph against a
// distance-threshold-0 graph (per-model lookups only, no cross-model edges).
func BenchmarkAblationGraphDepth(b *testing.B) {
	e := env(b)
	opts := confgraph.DefaultOptions()
	opts.DistanceThreshold = 0
	flat, err := confgraph.Build(e.Ch, opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		full, _ := runSHIFTWith(b, e, nil, nil)
		noDepth, _ := runSHIFTWith(b, e, nil, flat)
		if i == 0 {
			b.Logf("graph depth ablation: full iou=%.3f energy=%.3fJ | depth-0 iou=%.3f energy=%.3fJ",
				full.AvgIoU, full.AvgEnergyJ, noDepth.AvgIoU, noDepth.AvgEnergyJ)
		}
	}
}

// BenchmarkAblationNoNCC disables the NCC keep-gate so the decision path
// runs every frame; the gate's scheduling savings and stability show up as
// the delta in swaps and time.
func BenchmarkAblationNoNCC(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		gated, _ := runSHIFTWith(b, e, nil, nil)
		ungated, _ := runSHIFTWith(b, e, func(o *pipeline.Options) { o.Sched.DisableGate = true }, nil)
		if i == 0 {
			b.Logf("NCC gate ablation: gated swaps=%d time=%.3fs | ungated swaps=%d time=%.3fs",
				gated.Swaps, gated.AvgTimeSec, ungated.Swaps, ungated.AvgTimeSec)
		}
	}
}

// BenchmarkAblationEviction compares the DML's least-recently-requested
// policy against FIFO and largest-first. The standard pool rarely evicts
// once scheduling is stable, so the comparison runs under a tightened pool
// and an accuracy-heavy configuration that pulls large engines in and out.
func BenchmarkAblationEviction(b *testing.B) {
	e := env(b)
	policies := []loader.EvictionPolicy{loader.EvictLRR, loader.EvictFIFO, loader.EvictLargest}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			policy := p
			opts := pipeline.DefaultOptions()
			opts.Eviction = policy
			opts.Sched.Knobs = sched.Knobs{Accuracy: 3, Energy: 0.2, Latency: 0.2}
			sys := e.System()
			// 1.3 GB: fits the largest single engine (E6E, 1.1 GB) but not
			// two large engines together, so swaps between hard and easy
			// stretches must evict.
			sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 1300*accel.MB)
			shift, err := pipeline.NewSHIFT(sys, e.Ch, e.Graph, opts)
			if err != nil {
				b.Fatal(err)
			}
			sc := scene.Scenario1() // hard stretches force big models in
			res, err := shift.Run(sc.Name, e.Frames(sc))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				s := metrics.Summarize(res)
				stats := shift.LoaderStats()
				b.Logf("eviction=%s: loads=%d evictions=%d loadEnergy=%.1fJ frameEnergy=%.3fJ",
					policy, stats.Loads, stats.Evictions, stats.LoadEnergyJ, s.AvgEnergyJ)
			}
		}
	}
}

// BenchmarkAblationMomentum varies the prediction-averaging window.
func BenchmarkAblationMomentum(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		for _, m := range []int{1, 30, 120} {
			mom := m
			s, _ := runSHIFTWith(b, e, func(o *pipeline.Options) { o.Sched.Momentum = mom }, nil)
			if i == 0 {
				b.Logf("momentum=%d: iou=%.3f energy=%.3fJ swaps=%d", mom, s.AvgIoU, s.AvgEnergyJ, s.Swaps)
			}
		}
	}
}

// BenchmarkSkipComparison runs the frame-skipping iso-energy comparison
// (the quantified form of the paper's "no tracking, no skipping" claim).
func BenchmarkSkipComparison(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.SkipComparison(e, []*scene.Scenario{scene.Scenario2()}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			closest := res.ClosestSkipByEnergy()
			b.Logf("iso-energy (~%.2fJ): SHIFT iou=%.3f vs skip=%d iou=%.3f",
				res.SHIFT.AvgEnergyJ, res.SHIFT.AvgIoU, closest.Skip, closest.Summary.AvgIoU)
		}
	}
}

// BenchmarkAblationOracleLoads quantifies the paper's free-switching
// assumption: the same Oracle-A decision sequence with and without real
// engine loads.
func BenchmarkAblationOracleLoads(b *testing.B) {
	e := env(b)
	sc := scene.Scenario2()
	frames := e.Frames(sc)
	for i := 0; i < b.N; i++ {
		free, err := baseline.NewOracle(e.System(), baseline.OracleAccuracy)
		if err != nil {
			b.Fatal(err)
		}
		freeRes, err := free.Run(sc.Name, frames)
		if err != nil {
			b.Fatal(err)
		}
		paid, err := baseline.NewOracleWithLoads(e.System(), baseline.OracleAccuracy)
		if err != nil {
			b.Fatal(err)
		}
		paidRes, err := paid.Run(sc.Name, frames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f := metrics.Summarize(freeRes)
			p := metrics.Summarize(paidRes)
			b.Logf("Oracle A free-switching subsidy: energy %.3f -> %.3fJ, time %.3f -> %.3fs",
				f.AvgEnergyJ, p.AvgEnergyJ, f.AvgTimeSec, p.AvgTimeSec)
		}
	}
}

// BenchmarkGraphQuality runs the confidence-graph data-efficiency curve.
func BenchmarkGraphQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GraphQuality(1, []int{100, 400}, 200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Points[len(res.Points)-1]
			b.Logf("graph MAE %.3f vs naive %.3f at %d validation frames",
				last.MAE, last.NaiveMAE, last.ValidationFrames)
		}
	}
}

// BenchmarkMultiStream runs the multi-stream serving sweep (1–8 SHIFT
// streams sharing one platform) and logs the contention headline: tail
// latency and deadline misses at the top concurrency.
func BenchmarkMultiStream(b *testing.B) {
	e := env(b)
	cfg := experiments.DefaultMultiStreamConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiStream(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			one, _ := res.Row(1)
			eight, _ := res.Row(8)
			b.Logf("multi-stream @%.0f fps: 1 stream p99=%.3fs miss=%.1f%% | 8 streams p99=%.3fs miss=%.1f%% wait=%.3fs swaps/stream=%.1f",
				1/cfg.PeriodSec, one.Latency.P99, one.DeadlineMissRate*100,
				eight.Latency.P99, eight.DeadlineMissRate*100, eight.AvgQueueWaitSec, eight.SwapsPerStream)
		}
	}
}

// BenchmarkFleetSweep runs the multi-device serving grid (device count ×
// placement policy under the default tiered workload) and logs the fleet
// headline: residency-affinity vs round-robin tail latency and loader
// traffic at the largest fleet.
func BenchmarkFleetSweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.FleetSweep(e, experiments.FleetSweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rr, _ := res.Row(4, "round-robin")
			aff, _ := res.Row(4, "residency-affinity")
			b.Logf("fleet @4 devices: round-robin p99=%.3fs loads=%d | residency-affinity p99=%.3fs loads=%d miss=%.1f%% util=%.0f%%",
				rr.Latency.P99, rr.Loads, aff.Latency.P99, aff.Loads,
				aff.DeadlineMissRate*100, aff.AvgUtilization*100)
		}
	}
}

// BenchmarkFaultSweep runs the fault-tolerance grid (failure rate × placement
// with checkpoint/migration) and logs the recovery headline at the highest
// failure rate.
func BenchmarkFaultSweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultSweep(e, experiments.FaultSweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			clean, _ := res.Row(0, "residency-affinity")
			worst, _ := res.Row(12, "residency-affinity")
			b.Logf("faults @12/min: %d migrations, %d aborted, downtime=%.2fs, post-fault p99=%.3fs (fault-free p99=%.3fs), leaked refs=%d",
				worst.Migrations, worst.Aborted, worst.AvgDowntimeSec,
				worst.PostFaultP99, clean.Latency.P99, worst.LeakedRefs)
		}
	}
}

// BenchmarkCrashSweep runs the crash-recovery grid (worker-crash rate ×
// placement on a journaled fleet) and logs the durability headline at the
// highest crash rate: crashes absorbed, frames replayed from checkpoint wire
// bytes, best-effort streams shed, and journal traffic.
func BenchmarkCrashSweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.CrashSweep(e, experiments.CrashSweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			clean, _ := res.Row(0, "residency-affinity")
			worst, _ := res.Row(12, "residency-affinity")
			b.Logf("crashes @12/min: %d crashes, %d frames replayed, %d shed, journal %d writes %.1f KiB, post-fault p99=%.3fs (crash-free p99=%.3fs), leaked refs=%d",
				worst.Crashes, worst.ReplayedFrames, worst.Shed,
				worst.JournalWrites, float64(worst.JournalBytes)/1024,
				worst.PostFaultP99, clean.Latency.P99, worst.LeakedRefs)
		}
	}
}

// BenchmarkAutoscaleSweep runs the elasticity grid (workload shape ×
// placement × fixed/elastic capacity) and logs the autoscale headline: the
// burst-shape p99 of the fixed 4-device reference against the elastic fleet,
// and the diurnal drain activity.
func BenchmarkAutoscaleSweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AutoscaleSweep(e, experiments.AutoscaleSweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fixed, _ := res.Row("burst", "residency-affinity", "fixed")
			elastic, _ := res.Row("burst", "residency-affinity", "elastic")
			diurnal, _ := res.Row("diurnal", "residency-affinity", "elastic")
			b.Logf("autoscale burst: fixed4 p99=%.3fs queue=%.2fs | elastic p99=%.3fs peak=%d devices (%d outs) | diurnal: %d ins, %d drained, %d migrations, leaked=%d",
				fixed.Latency.P99, fixed.AvgQueueDelaySec,
				elastic.Latency.P99, elastic.PeakDevices, elastic.ScaleOuts,
				diurnal.ScaleIns, diurnal.Drained, diurnal.Migrations, diurnal.LeakedRefs)
		}
	}
}

// BenchmarkScaleSweep runs a reduced fleet-scale grid — a 100-device fleet
// serving 5 000 streams over a compressed diurnal hour on the legacy scan,
// the indexed heap, and a 4-region shard — and logs the event-loop headline:
// events/sec per selector and the heap's wall-clock speedup. The full
// 1 000-device / 100 000-stream flagship runs in cmd/bench.
func BenchmarkScaleSweep(b *testing.B) {
	e := env(b)
	cfg := experiments.ScaleSweepConfig{
		Cells: []experiments.ScaleSweepCell{
			{Devices: 100, Streams: 5000, LegacyScan: true},
			{Devices: 100, Streams: 5000},
			{Devices: 100, Streams: 5000, Regions: 4},
		},
		SpanSec: 1800,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.ScaleSweep(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			scan, _ := res.Row(100, 1, true)
			heap, _ := res.Row(100, 1, false)
			sharded, _ := res.Row(100, 4, false)
			b.Logf("scale @100 devices: scan %.0f ev/s | heap %.0f ev/s (%.2fx) | 4-region %.0f ev/s, %d events, served %d/%d",
				scan.EventsPerSec, heap.EventsPerSec, heap.EventsPerSec/scan.EventsPerSec,
				sharded.EventsPerSec, heap.Events, heap.Served, heap.Served+heap.Rejected)
		}
	}
}

// BenchmarkPrefetchSweep runs the predictive-prefetch contrast cell — the
// miss-heavy oscillate workload served twice, TAGE swap predictor off then
// on — and logs the headline: the SupraX-style scorecard and the before/after
// swap-stall share of the p99 tail.
func BenchmarkPrefetchSweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.PrefetchSweep(e, experiments.PrefetchSweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			st := res.Stats
			b.Logf("prefetch: coverage=%.3f accuracy=%.3f timeliness=%.3f (%d issued, %d full + %d late hits, %.2fs saved) | swap-stall share of p99: %.4f -> %.4f",
				st.Coverage(), st.Accuracy(), st.Timeliness(),
				st.Issued, st.FullHits, st.LateHits, st.StallSavedSec,
				res.Off.SwapStallShareOfP99, res.On.SwapStallShareOfP99)
		}
	}
}

// BenchmarkRecorderOverhead measures the flight recorder's cost on the
// standard obs fleet cell: the detached run carries only nil checks on the
// hot paths, so attached-vs-detached wall clock is the whole observability
// tax. The first attached iteration logs the headline attribution.
func BenchmarkRecorderOverhead(b *testing.B) {
	e := env(b)
	cfg := experiments.DefaultObsSweepConfig()
	b.Run("detached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.ObsCell(e, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("attached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := obs.NewRecorder()
			if _, err := experiments.ObsCell(e, cfg, rec); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				a := rec.Attribution()
				b.Logf("recorder: %d spans over %d frames | p99=%.3fs, swap-stall share of p99=%.1f%% (queue %.1f%%, exec %.1f%%, interference %.1f%%)",
					len(rec.Spans()), a.Frames, a.P99Sec, a.SwapStallShareOfP99*100,
					a.QueueShareOfP99*100, a.ExecShareOfP99*100, a.InterferenceShareOfP99*100)
			}
		}
	})
}

// BenchmarkSHIFTFrame measures the per-frame cost of the full SHIFT loop
// (load + exec + detect + decide) on the harness itself.
func BenchmarkSHIFTFrame(b *testing.B) {
	e := env(b)
	sc := scene.Scenario2()
	frames := e.Frames(sc)
	shift, err := pipeline.NewSHIFT(e.System(), e.Ch, e.Graph, pipeline.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	done := 0
	for done < b.N {
		res, err := shift.Run(sc.Name, frames)
		if err != nil {
			b.Fatal(err)
		}
		done += len(res.Records)
	}
}

// BenchmarkCharacterization measures the offline stage end to end.
func BenchmarkCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnv(uint64(i+1), 300); err != nil {
			b.Fatal(err)
		}
	}
}
