// Command bench executes the reproduction's headline performance benchmarks
// outside `go test` and records the results as BENCH_<date>.json, so the
// perf trajectory of the hot paths (tracker NCC, SHIFT frame loop, offline
// characterization) is tracked commit over commit.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_2026-07-28.json] [-date 2026-07-28] [-baseline BENCH_old.json] [-cpuprofile bench.pprof]
//
// With -baseline, per-benchmark speedups against the older file are computed
// and embedded. With -date, the document's date stamp (and the default -out
// filename derived from it) is pinned instead of read from the wall clock,
// so CI can produce byte-stable artifact names. Wall-clock results measure the harness itself; the headline
// block records simulated metrics (virtual seconds and Joules), which are
// deterministic per seed and must not drift when only performance changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/img"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/scene"
)

// Result is one benchmark measurement.
type Result struct {
	// Unit names what one op is (e.g. "frame", "env", "call").
	Unit        string  `json:"unit"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Doc is the serialized benchmark document.
type Doc struct {
	Schema     string             `json:"schema"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    map[string]Result  `json:"results"`
	Headline   map[string]float64 `json:"headline"`
	// Baseline and Speedup are present when -baseline is given: the older
	// run's results and current-vs-baseline wall-clock ratios.
	Baseline map[string]Result  `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
	Notes    string             `json:"notes,omitempty"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
	date := flag.String("date", "", "date stamp (YYYY-MM-DD) for the default -out filename and the Date field; empty means today, which drifts — pass a fixed date for reproducible artifacts in CI")
	basePath := flag.String("baseline", "", "optional older BENCH_*.json to compute speedups against")
	notes := flag.String("notes", "", "free-form notes recorded in the document")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole benchmark run to this file")
	flag.Parse()

	stamp := *date
	if stamp == "" {
		stamp = time.Now().Format("2006-01-02") //detlint:allow wallclock default artifact date stamp; -date pins it for reproducible CI runs
	} else if _, err := time.Parse("2006-01-02", stamp); err != nil {
		fatal(fmt.Errorf("-date %q: want YYYY-MM-DD", stamp))
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", stamp)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote CPU profile %s\n", *cpuprofile)
		}()
	}

	// Load the baseline before spending a minute on benchmarks, so a bad
	// path fails immediately.
	var baseDoc map[string]Result
	if *basePath != "" {
		var err error
		if baseDoc, err = loadBaseline(*basePath); err != nil {
			fatal(err)
		}
	}

	env, err := experiments.NewEnv(1, experiments.DefaultValidationFrames)
	if err != nil {
		fatal(err)
	}

	doc := &Doc{
		Schema:     "repro-bench/v1",
		Date:       stamp,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    map[string]Result{},
		Headline:   map[string]float64{},
		Notes:      *notes,
	}

	run := func(name, unit string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", name)
		r := testing.Benchmark(fn)
		doc.Results[name] = Result{
			Unit:        unit,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
	}

	// SHIFTFrame: per-frame cost of the full SHIFT loop (load + exec +
	// detect + decide) — mirrors BenchmarkSHIFTFrame in bench_test.go.
	sc2 := scene.Scenario2()
	frames2 := env.Frames(sc2)
	run("SHIFTFrame", "frame", func(b *testing.B) {
		shift, err := pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			res, err := shift.Run(sc2.Name, frames2)
			if err != nil {
				b.Fatal(err)
			}
			done += len(res.Records)
		}
	})

	// MarlinFrame: per-frame cost of the tracker-heavy Marlin baseline —
	// dominated by NCCSearch template matching.
	sc1 := scene.Scenario1()
	frames1 := env.Frames(sc1)
	run("MarlinFrame", "frame", func(b *testing.B) {
		b.ReportAllocs()
		done := 0
		for done < b.N {
			m, err := baseline.NewMarlin(env.System(), baseline.DefaultMarlinConfig())
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run(sc1.Name, frames1)
			if err != nil {
				b.Fatal(err)
			}
			done += len(res.Records)
		}
	})

	// Characterization: the full offline stage (validation render + zoo
	// profiling + graph build), fresh seed per iteration to defeat caches —
	// mirrors BenchmarkCharacterization.
	run("Characterization", "env", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.NewEnv(uint64(i+1), 300); err != nil {
				b.Fatal(err)
			}
		}
	})

	// RenderScenario1: scenario synthesis per frame.
	run("RenderScenario1", "frame", func(b *testing.B) {
		b.ReportAllocs()
		done := 0
		for done < b.N {
			done += len(sc1.Render(uint64(done + 1)))
		}
	})

	// TableIII: the full six-scenario, six-method main results table.
	run("TableIII", "table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.TableIII(env, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// MultiStream: the full 1–8 stream serving sweep on the shared-platform
	// event loop (queueing + reference-counted residency).
	msCfg := experiments.DefaultMultiStreamConfig()
	run("MultiStream", "sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.MultiStream(env, msCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// FleetSweep: the multi-device serving grid (device count × placement
	// under the tiered workload).
	fsCfg := experiments.FleetSweepConfig{}
	run("FleetSweep", "grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.FleetSweep(env, fsCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// FaultSweep: the fault-tolerance grid (failure rate × placement with
	// checkpoint/migration).
	fltCfg := experiments.FaultSweepConfig{}
	run("FaultSweep", "grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.FaultSweep(env, fltCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// CrashSweep: the crash-recovery grid (worker-crash rate × placement on
	// a journaled fleet, kill-and-recover from checkpoint wire bytes).
	crashCfg := experiments.CrashSweepConfig{}
	run("CrashSweep", "grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CrashSweep(env, crashCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// AutoscaleSweep: the elasticity grid (workload shape × placement ×
	// fixed/elastic capacity with SLO-driven scale-out and drain-based
	// scale-in).
	autoCfg := experiments.AutoscaleSweepConfig{}
	run("AutoscaleSweep", "grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AutoscaleSweep(env, autoCfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	// PrefetchSweep: the predictive-prefetch contrast cell — the miss-heavy
	// oscillate workload served twice, TAGE swap predictor off then on, with
	// the flight recorder attached to both runs.
	pfCfg := experiments.PrefetchSweepConfig{}
	var pfRes *experiments.PrefetchSweepResult
	run("PrefetchSweep", "cell", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := experiments.PrefetchSweep(env, pfCfg)
			if err != nil {
				b.Fatal(err)
			}
			pfRes = r
		}
	})

	// ScaleSweep: the fleet-scale grid — a day-long diurnal trace on fleets
	// up to 1 000 devices / 100 000 streams, measuring the event loop's own
	// wall-clock throughput on the legacy scan, the indexed heap and the
	// sharded-region selectors. One pass of the whole grid per iteration;
	// the rows feed the fleet1000_* headline block below.
	var scaleRes *experiments.ScaleSweepResult
	run("ScaleSweep", "grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiments.ScaleSweep(env, experiments.ScaleSweepConfig{})
			if err != nil {
				b.Fatal(err)
			}
			scaleRes = res
		}
	})

	// NCC / NCCSearch micro-benchmarks on tracker-scale inputs.
	r := rng.New(1)
	imgA := randomImage(r, 72, 72)
	imgB := randomImage(r, 72, 72)
	run("NCC72", "call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			img.NCC(imgA, imgB)
		}
	})
	search := randomImage(r, 41, 41)
	tpl := search.Crop(10, 10, 21, 21)
	run("NCCSearch41x41t21", "call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			img.NCCSearch(search, tpl)
		}
	})

	// Headline simulated metrics: deterministic per seed; a perf-only change
	// must leave them untouched.
	t3, err := experiments.TableIII(env, nil)
	if err != nil {
		fatal(err)
	}
	record := func(method, prefix string) {
		s, ok := t3.Summary(method)
		if !ok {
			fatal(fmt.Errorf("missing %s summary", method))
		}
		doc.Headline[prefix+"_iou"] = s.AvgIoU
		doc.Headline[prefix+"_time_s"] = s.AvgTimeSec
		doc.Headline[prefix+"_energy_j"] = s.AvgEnergyJ
		doc.Headline[prefix+"_swaps"] = float64(s.Swaps)
	}
	record("SHIFT", "shift")
	record("Marlin", "marlin")

	// Multi-stream serving headline: simulated contention metrics at 1 and 8
	// concurrent streams. Deterministic per seed, like the Table III block.
	ms, err := experiments.MultiStream(env, msCfg)
	if err != nil {
		fatal(err)
	}
	for _, n := range []int{1, 8} {
		row, ok := ms.Row(n)
		if !ok {
			fatal(fmt.Errorf("missing multi-stream row for %d streams", n))
		}
		prefix := fmt.Sprintf("multistream%d", n)
		doc.Headline[prefix+"_p99_latency_s"] = row.Latency.P99
		doc.Headline[prefix+"_miss_rate"] = row.DeadlineMissRate
		doc.Headline[prefix+"_queue_wait_s"] = row.AvgQueueWaitSec
		doc.Headline[prefix+"_swaps_per_stream"] = row.SwapsPerStream
	}

	// Fleet serving headline: the multi-device grid's simulated metrics at
	// the largest fleet, round-robin vs residency-affinity. Deterministic
	// per seed, like the other headline blocks.
	fs, err := experiments.FleetSweep(env, fsCfg)
	if err != nil {
		fatal(err)
	}
	for _, cell := range []struct {
		placement, prefix string
	}{
		{"round-robin", "fleet4_rr"},
		{"residency-affinity", "fleet4_affinity"},
	} {
		row, ok := fs.Row(4, cell.placement)
		if !ok {
			fatal(fmt.Errorf("missing fleet row for 4×%s", cell.placement))
		}
		doc.Headline[cell.prefix+"_p99_latency_s"] = row.Latency.P99
		doc.Headline[cell.prefix+"_miss_rate"] = row.DeadlineMissRate
		doc.Headline[cell.prefix+"_loads"] = float64(row.Loads)
		doc.Headline[cell.prefix+"_evictions"] = float64(row.Evictions)
		doc.Headline[cell.prefix+"_utilization"] = row.AvgUtilization
	}

	// Fault-tolerance headline: recovery metrics at the highest swept failure
	// rate, residency-affinity placement. Deterministic per seed; the
	// fault-free rows of the same grid must match fleet4_* exactly when the
	// configurations coincide, and these keys are additive — existing
	// headline blocks do not move.
	flt, err := experiments.FaultSweep(env, fltCfg)
	if err != nil {
		fatal(err)
	}
	for _, cell := range []struct {
		placement, prefix string
	}{
		{"round-robin", "fault12_rr"},
		{"residency-affinity", "fault12_affinity"},
	} {
		row, ok := flt.Row(12, cell.placement)
		if !ok {
			fatal(fmt.Errorf("missing fault row for 12/min×%s", cell.placement))
		}
		doc.Headline[cell.prefix+"_migrations"] = float64(row.Migrations)
		doc.Headline[cell.prefix+"_aborted"] = float64(row.Aborted)
		doc.Headline[cell.prefix+"_downtime_s"] = row.AvgDowntimeSec
		doc.Headline[cell.prefix+"_postfault_p99_s"] = row.PostFaultP99
		doc.Headline[cell.prefix+"_p99_latency_s"] = row.Latency.P99
		doc.Headline[cell.prefix+"_leaked_refs"] = float64(row.LeakedRefs)
	}

	// Crash-recovery headline: durability metrics at the highest swept crash
	// rate. Deterministic per seed; the journal never steers serving
	// decisions, so these keys are additive — existing headline blocks do
	// not move.
	crash, err := experiments.CrashSweep(env, crashCfg)
	if err != nil {
		fatal(err)
	}
	for _, cell := range []struct {
		placement, prefix string
	}{
		{"round-robin", "crash12_rr"},
		{"residency-affinity", "crash12_affinity"},
	} {
		row, ok := crash.Row(12, cell.placement)
		if !ok {
			fatal(fmt.Errorf("missing crash row for 12/min×%s", cell.placement))
		}
		doc.Headline[cell.prefix+"_crashes"] = float64(row.Crashes)
		doc.Headline[cell.prefix+"_replayed_frames"] = float64(row.ReplayedFrames)
		doc.Headline[cell.prefix+"_shed"] = float64(row.Shed)
		doc.Headline[cell.prefix+"_journal_writes"] = float64(row.JournalWrites)
		doc.Headline[cell.prefix+"_journal_bytes"] = float64(row.JournalBytes)
		doc.Headline[cell.prefix+"_downtime_s"] = row.AvgDowntimeSec
		doc.Headline[cell.prefix+"_postfault_p99_s"] = row.PostFaultP99
		doc.Headline[cell.prefix+"_p99_latency_s"] = row.Latency.P99
		doc.Headline[cell.prefix+"_leaked_refs"] = float64(row.LeakedRefs)
	}

	// Autoscale headline: the elasticity grid's simulated metrics — the
	// burst-shape fixed-vs-elastic contrast and the diurnal drain activity,
	// residency-affinity placement. Deterministic per seed; with the
	// autoscaler disabled (every other experiment) no existing key moves —
	// these are additive like the fault block.
	auto, err := experiments.AutoscaleSweep(env, autoCfg)
	if err != nil {
		fatal(err)
	}
	for _, cell := range []struct {
		shape, mode, prefix string
	}{
		{"burst", "fixed", "auto_burst_fixed4"},
		{"burst", "elastic", "auto_burst_elastic"},
		{"diurnal", "fixed", "auto_diurnal_fixed4"},
		{"diurnal", "elastic", "auto_diurnal_elastic"},
	} {
		row, ok := auto.Row(cell.shape, "residency-affinity", cell.mode)
		if !ok {
			fatal(fmt.Errorf("missing autoscale row for %s×%s", cell.shape, cell.mode))
		}
		doc.Headline[cell.prefix+"_p99_latency_s"] = row.Latency.P99
		doc.Headline[cell.prefix+"_miss_rate"] = row.DeadlineMissRate
		doc.Headline[cell.prefix+"_queue_wait_s"] = row.AvgQueueDelaySec
		doc.Headline[cell.prefix+"_peak_devices"] = float64(row.PeakDevices)
		if cell.mode == "elastic" {
			doc.Headline[cell.prefix+"_scale_outs"] = float64(row.ScaleOuts)
			doc.Headline[cell.prefix+"_scale_ins"] = float64(row.ScaleIns)
			doc.Headline[cell.prefix+"_drained"] = float64(row.Drained)
			doc.Headline[cell.prefix+"_migrations"] = float64(row.Migrations)
			doc.Headline[cell.prefix+"_leaked_refs"] = float64(row.LeakedRefs)
		}
	}

	// Observability headline: the flight-recorder cell's latency attribution
	// — where frame latency goes overall and over the p99 tail, with the
	// swap-stall share of p99 as the headline the prefetch roadmap item is
	// gated on. obs_attached_equals_detached is the zero-perturbation
	// certificate (1 when the attached and detached runs summarize
	// bit-identically). Deterministic per seed; these keys are additive —
	// existing headline blocks do not move.
	ob, err := experiments.ObsSweep(env, experiments.ObsSweepConfig{})
	if err != nil {
		fatal(err)
	}
	doc.Headline["obs_frames"] = float64(ob.Attribution.Frames)
	doc.Headline["obs_spans"] = float64(ob.Spans)
	doc.Headline["obs_p99_latency_s"] = ob.Attribution.P99Sec
	doc.Headline["obs_queue_share"] = ob.Attribution.QueueShare
	doc.Headline["obs_swap_stall_share"] = ob.Attribution.SwapShare
	doc.Headline["obs_exec_share"] = ob.Attribution.ExecShare
	doc.Headline["obs_interference_share"] = ob.Attribution.InterferenceShare
	doc.Headline["obs_queue_share_p99"] = ob.Attribution.QueueShareOfP99
	doc.Headline["obs_swap_stall_share_p99"] = ob.Attribution.SwapStallShareOfP99
	doc.Headline["obs_exec_share_p99"] = ob.Attribution.ExecShareOfP99
	doc.Headline["obs_interference_share_p99"] = ob.Attribution.InterferenceShareOfP99
	doc.Headline["obs_attached_equals_detached"] = map[bool]float64{true: 1, false: 0}[ob.DetachedEqual]

	// Predictive-prefetch headline: the TAGE swap predictor's SupraX-style
	// scorecard (coverage / accuracy / timeliness) and the before/after
	// swap-stall share of the p99 tail on the miss-heavy contrast cell. The
	// before key is today's serving path bit-for-bit — the off run takes the
	// identical code path as a build without the predictor — so it moves only
	// when the serving path itself does. These keys are additive; existing
	// headline blocks do not move.
	doc.Headline["prefetch_coverage"] = pfRes.Stats.Coverage()
	doc.Headline["prefetch_accuracy"] = pfRes.Stats.Accuracy()
	doc.Headline["prefetch_timeliness"] = pfRes.Stats.Timeliness()
	doc.Headline["prefetch_issued"] = float64(pfRes.Stats.Issued)
	doc.Headline["prefetch_full_hits"] = float64(pfRes.Stats.FullHits)
	doc.Headline["prefetch_late_hits"] = float64(pfRes.Stats.LateHits)
	doc.Headline["prefetch_stall_saved_s"] = pfRes.Stats.StallSavedSec
	doc.Headline["prefetch_swap_stall_share_p99_before"] = pfRes.Off.SwapStallShareOfP99
	doc.Headline["prefetch_swap_stall_share_p99_after"] = pfRes.On.SwapStallShareOfP99

	// Fleet-scale headline: the 1 000-device / 100 000-stream flagship trace.
	// The serving profile (served, frames, events, horizon, latency, misses)
	// is simulated and deterministic per seed — a perf-only change must leave
	// it untouched. The *_events_per_sec and *_speedup keys are wall-clock
	// measurements of the harness itself and drift run to run; they are
	// recorded for the perf trajectory, not for bit-identity.
	flagship, ok := scaleRes.Row(1000, 1, false)
	if !ok {
		fatal(fmt.Errorf("missing 1000-device scale row"))
	}
	doc.Headline["fleet1000_served"] = float64(flagship.Served)
	doc.Headline["fleet1000_frames"] = float64(flagship.Frames)
	doc.Headline["fleet1000_events"] = float64(flagship.Events)
	doc.Headline["fleet1000_horizon_s"] = flagship.HorizonSec
	doc.Headline["fleet1000_p50_latency_s"] = flagship.LatencyP50Sec
	doc.Headline["fleet1000_p99_latency_s"] = flagship.LatencyP99Sec
	doc.Headline["fleet1000_miss_rate"] = flagship.DeadlineMissRate
	doc.Headline["fleet1000_events_per_sec"] = flagship.EventsPerSec
	if sharded, ok := scaleRes.Row(1000, 8, false); ok {
		doc.Headline["fleet1000_r8_events_per_sec"] = sharded.EventsPerSec
	}
	scan, okScan := scaleRes.Row(100, 1, true)
	heap, okHeap := scaleRes.Row(100, 1, false)
	if okScan && okHeap {
		doc.Headline["fleet100_heap_speedup_vs_scan"] = heap.EventsPerSec / scan.EventsPerSec
	}
	const scaleNote = "fleet1000_*_events_per_sec, fleet1000_r8_events_per_sec and " +
		"fleet100_heap_speedup_vs_scan are wall-clock measurements and drift run to run; " +
		"every other headline key is simulated and deterministic per seed."
	if doc.Notes == "" {
		doc.Notes = scaleNote
	} else {
		doc.Notes += " " + scaleNote
	}

	if baseDoc != nil {
		doc.Baseline = baseDoc
		doc.Speedup = map[string]float64{}
		for name, cur := range doc.Results {
			if base, ok := baseDoc[name]; ok && cur.NsPerOp > 0 {
				doc.Speedup[name] = base.NsPerOp / cur.NsPerOp
			}
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	report(doc)
}

// loadBaseline reads an older document's results for speedup computation.
func loadBaseline(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old Doc
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return old.Results, nil
}

// report prints a human-readable summary to stderr, in name order so two
// runs of the same document render identically.
func report(doc *Doc) {
	names := make([]string, 0, len(doc.Results))
	for name := range doc.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := doc.Results[name]
		line := fmt.Sprintf("%-20s %12.0f ns/%-5s %8d B/op %6d allocs/op",
			name, r.NsPerOp, r.Unit, r.BytesPerOp, r.AllocsPerOp)
		if s, ok := doc.Speedup[name]; ok {
			line += fmt.Sprintf("   %.2fx vs baseline", s)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func randomImage(r *rng.Stream, w, h int) *img.Image {
	m := img.New(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
