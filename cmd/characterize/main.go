// Command characterize runs SHIFT's offline stage: it profiles the model zoo
// over a validation set (Table IV), builds the confidence graph, and can
// dump the characterization as JSON for inspection or reuse.
//
// Usage:
//
//	characterize                      # print Tables I and IV
//	characterize -json traits.json    # also dump the traits
//	characterize -inspect YoloV7      # describe the model's graph nodes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "experiment seed")
		valFrames = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation set size")
		jsonPath  = flag.String("json", "", "write characterization JSON to this path")
		inspect   = flag.String("inspect", "", "describe the confidence-graph nodes of a model")
		execs     = flag.Int("execs", 500, "executions per (model, accelerator) for timing columns")
	)
	flag.Parse()

	if err := run(*seed, *valFrames, *jsonPath, *inspect, *execs); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(seed uint64, valFrames int, jsonPath, inspect string, execs int) error {
	fmt.Printf("characterizing zoo over %d validation frames (seed %d)...\n\n", valFrames, seed)
	env, err := experiments.NewEnv(seed, valFrames)
	if err != nil {
		return err
	}

	t1, err := experiments.TableI(env, valFrames, execs)
	if err != nil {
		return err
	}
	fmt.Println(t1.Report())

	t4, err := experiments.TableIV(env, execs)
	if err != nil {
		return err
	}
	fmt.Println(t4.Report())

	fmt.Println("confidence graph:")
	fmt.Print(env.Graph.ComputeStats())
	if err := env.Graph.Validate(); err != nil {
		return fmt.Errorf("graph failed validation: %w", err)
	}

	if inspect != "" {
		fmt.Printf("\nnode inspection for %s:\n", inspect)
		for conf := 0.05; conf < 1.0; conf += 0.1 {
			fmt.Println(" ", env.Graph.Describe(inspect, conf))
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(env.Ch, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote characterization to %s (%d bytes)\n", jsonPath, len(data))
	}
	return nil
}
