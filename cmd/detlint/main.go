// Command detlint statically enforces the simulator's determinism
// invariants: no wall-clock reads, no global math/rand, no order-sensitive
// map iteration, no parallelism outside the par pool, and no rng streams
// shared across pool workers without a Fork. See internal/analysis for the
// analyzer catalog and DESIGN.md §15 for the annotation grammar.
//
// It runs three ways:
//
//	detlint ./...                 standalone over the module (CI-friendly)
//	go vet -vettool=$(pwd)/detlint ./...   as a vet tool (unitchecker protocol)
//	detlint -inventory ./...      list every //detlint:allow site with reasons
//
// Standalone and vettool modes report the same diagnostics; the vettool
// path reuses the go command's cached export data, the standalone path
// type-checks the module from source and needs only GOROOT. Exit status is
// 0 when clean, 2 when any unsuppressed diagnostic is found.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// The go vet driver probes the tool before running it: -flags must
	// dump the supported analyzer flags as JSON, and -V=full must print a
	// version line carrying a content hash of the executable so results
	// cache correctly (see cmd/go/internal/work.toolID).
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println(`[{"Name":"inventory","Bool":true,"Usage":"list every //detlint:allow annotation site with its reason"}]`)
		return
	}
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		versionLine()
		return
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		runVettool(args[n-1])
		return
	}

	inventory := flag.Bool("inventory", false,
		"list every //detlint:allow annotation site with its reason instead of linting")
	flag.Parse()

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loadPatterns(loader, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *inventory {
		w := newInventoryWriter(os.Stdout, loader.ModuleRoot)
		for _, site := range analysis.Inventory(pkgs) {
			w.write(site)
		}
		return
	}

	found := 0
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "detlint: typecheck %s: %v\n", pkg.Path, err)
		}
		diags, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			found++
			fmt.Fprintln(os.Stderr, rel(loader.ModuleRoot, d.String()))
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d unsuppressed diagnostic(s)\n", found)
		os.Exit(2)
	}
}

// loadPatterns loads the packages named by patterns: "./..." (the default)
// loads the whole module; other arguments name package directories.
func loadPatterns(loader *analysis.Loader, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		dir := filepath.Clean(pat)
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		relDir, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(relDir, "..") {
			return nil, fmt.Errorf("detlint: %s is outside the module", pat)
		}
		path := loader.ModulePath
		if relDir != "." {
			path += "/" + filepath.ToSlash(relDir)
		}
		pkg, err := loader.LoadDir(path, abs)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// inventoryWriter prints allow sites as module-relative, tab-aligned lines
// — the exact bytes the inventory golden test pins.
type inventoryWriter struct {
	w    io.Writer
	root string
}

func newInventoryWriter(w io.Writer, root string) *inventoryWriter {
	return &inventoryWriter{w: w, root: root}
}

func (iw *inventoryWriter) write(site analysis.AllowSite) {
	name := site.Pos.Filename
	if r, err := filepath.Rel(iw.root, name); err == nil && !strings.HasPrefix(r, "..") {
		name = filepath.ToSlash(r)
	}
	fmt.Fprintf(iw.w, "%s:%d\t%s\t%s\n", name, site.Pos.Line, site.Analyzer, site.Reason)
}

// rel trims the module root prefix from a diagnostic line for stable,
// readable output.
func rel(root, line string) string {
	return strings.TrimPrefix(line, root+string(filepath.Separator))
}

// versionLine answers go vet's -V=full probe. The "devel" form makes
// cmd/go use the buildID field — a content hash of this executable — as
// the tool's cache key, so editing an analyzer invalidates prior results.
func versionLine() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("detlint version devel buildID=%x\n", h.Sum(nil))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detlint:", err)
	os.Exit(1)
}
