package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for each
// package when detlint runs under go vet -vettool (the unitchecker
// protocol; see cmd/go/internal/work.vetConfig). Only the fields detlint
// consumes are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVettool executes one package's analysis under the vet driver: parse
// the files the go command hands us, type-check against its cached export
// data, run the suite, and write the (empty — detlint exchanges no facts)
// vetx output the driver expects.
func runVettool(cfgPath string) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parse %s: %w", cfgPath, err))
	}

	// The driver feeds test variants too (ID like "pkg [pkg.test]").
	// detlint's contract covers shipped simulation code only: test files
	// legitimately use wall-clock timeouts and scratch goroutines, so the
	// _test.go files are dropped and the remaining files — identical to
	// the plain build — have already been checked under the package's own
	// vet action. Analyzing them again here would double-report.
	testVariant := strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, "_test") ||
		strings.HasSuffix(cfg.ImportPath, ".test")
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}

	if cfg.VetxOnly || testVariant || len(files) == 0 {
		writeVetx(cfg.VetxOutput)
		return
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, f)
	}

	pkg, err := typecheckWithExportData(fset, parsed, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return
		}
		fatal(fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err))
	}

	diags, err := analysis.RunPackage(pkg, analysis.All())
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg.VetxOutput)
	found := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		found++
		fmt.Fprintln(os.Stderr, d.String())
	}
	if found > 0 {
		os.Exit(2)
	}
}

// typecheckWithExportData type-checks the parsed files resolving imports
// through the go command's compiled export data (cfg.PackageFile, keyed
// via cfg.ImportMap) — the same data the compiler itself used, so vettool
// runs pay no source re-type-checking cost.
func typecheckWithExportData(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*analysis.Package, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// writeVetx satisfies the driver's expectation of a facts file. detlint
// analyzers are package-local and exchange no facts, so the file is empty;
// it still must exist for the go command to cache the vet action.
func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fatal(err)
	}
}
