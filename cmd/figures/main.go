// Command figures regenerates the paper's tables and figures as text
// reports.
//
// Usage:
//
//	figures                # everything except the full sweep
//	figures -exp table3    # one experiment: table1, table3, table4,
//	                       # fig1, fig2, fig3, fig4, fig5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scene"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "experiment seed")
		valFrames = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation set size")
		exp       = flag.String("exp", "", "single experiment to run (default: all)")
	)
	flag.Parse()

	if err := run(*seed, *valFrames, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(seed uint64, valFrames int, exp string) error {
	env, err := experiments.NewEnv(seed, valFrames)
	if err != nil {
		return err
	}
	runners := map[string]func() (string, error){
		"table1": func() (string, error) {
			r, err := experiments.TableI(env, valFrames, 500)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"table3": func() (string, error) {
			r, err := experiments.TableIII(env, nil)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"table4": func() (string, error) {
			r, err := experiments.TableIV(env, 500)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"fig1": func() (string, error) {
			r, err := experiments.Figure1(env)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"fig2": func() (string, error) {
			r, err := experiments.Figure2(env, nil)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"fig3": func() (string, error) {
			r, err := experiments.Figure3(env)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"fig4": func() (string, error) {
			r, err := experiments.Figure4(env)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"fig5": func() (string, error) {
			cfg := experiments.QuickSweepConfig()
			cfg.Scenarios = []*scene.Scenario{scene.Scenario2()}
			r, err := experiments.Figure5(env, cfg)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		},
		"skip": func() (string, error) {
			r, err := experiments.SkipComparison(env, nil, nil)
			if err != nil {
				return "", err
			}
			fast, err := experiments.SkipComparison(env,
				[]*scene.Scenario{scene.ScenarioFastManeuver()}, nil)
			if err != nil {
				return "", err
			}
			return r.Report() + "\nfast-maneuver stress:\n" + fast.Report(), nil
		},
	}
	order := []string{"table1", "table4", "fig1", "fig2", "fig3", "fig4", "table3", "fig5", "skip"}

	if exp != "" {
		fn, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", exp, order)
		}
		out, err := fn()
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	for _, name := range order {
		out, err := runners[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
	}
	return nil
}
