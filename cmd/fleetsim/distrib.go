package main

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/detmodel"
	"repro/internal/distrib"
)

// runWorker is the -worker mode: speak the worker protocol on stdio until
// the coordinator shuts us down or the pipe closes. Nothing else may write
// to stdout — it is the protocol channel.
func runWorker(name string, seed uint64) error {
	return distrib.RunWorker(os.Stdin, os.Stdout, distrib.WorkerConfig{Name: name, Seed: seed})
}

// distribJobs deals a deterministic stream set: scenario-2 prefixes of
// 30..60 frames served by the fixed YoloV7-Tiny/GPU policy.
func distribJobs(streams int, period float64, seed uint64) []distrib.Job {
	policy := "fixed:" + detmodel.YoloV7Tiny + "/gpu"
	jobs := make([]distrib.Job, streams)
	for i := range jobs {
		jobs[i] = distrib.Job{
			Stream:     fmt.Sprintf("stream-%02d", i),
			Scenario:   "scenario2",
			RenderSeed: seed,
			Frames:     30 + (i*7)%31,
			PeriodSec:  period,
			Policy:     policy,
		}
	}
	return jobs
}

// runCoordinator is the -workers mode: spawn N worker subprocesses of this
// binary, serve the stream set across them in journaled chunks, optionally
// SIGKILL one mid-run (-kill-one), and verify every stream's decision digest
// against an uninterrupted in-process serve before checking the survivors
// shut down with zero leaked residency refs.
func runCoordinator(workers, streams int, period float64, seed uint64, killOne bool, journalDir string) error {
	if killOne && workers < 2 {
		return fmt.Errorf("-kill-one needs at least 2 workers to leave a survivor")
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	transports := make([]*distrib.ProcTransport, workers)
	killed := false
	c := distrib.NewCoordinator(distrib.CoordConfig{
		ChunkFrames: 8,
		JournalDir:  journalDir,
		OnProgress: func(ev distrib.Progress) {
			if killOne && !killed && ev.Worker == "w0" {
				killed = true
				fmt.Printf("kill -9 w0 (pid %d) after %s journaled %d frames\n",
					transports[0].Process().Pid, ev.Stream, ev.Served)
				if err := transports[0].Process().Kill(); err != nil {
					fmt.Fprintln(os.Stderr, "fleetsim: kill w0:", err)
				}
			}
		},
	})
	for i := range transports {
		name := fmt.Sprintf("w%d", i)
		cmd := exec.Command(exe, "-worker", name, "-seed", strconv.FormatUint(seed, 10))
		tr, err := distrib.NewProcTransport(cmd)
		if err != nil {
			return fmt.Errorf("spawn %s: %w", name, err)
		}
		transports[i] = tr
		if err := c.AddWorker(name, tr); err != nil {
			return err
		}
	}
	jobs := distribJobs(streams, period, seed)
	fmt.Printf("serving %d streams across %d worker processes...\n", len(jobs), workers)
	start := time.Now() //detlint:allow wallclock CLI progress timer over real worker processes, printed only
	rep, err := c.Run(jobs)
	if err != nil {
		return err
	}

	mismatches := 0
	for i, jr := range rep.Jobs {
		ref, err := distrib.Solo(jobs[i], distrib.WorkerConfig{Name: "solo", Seed: seed})
		if err != nil {
			return err
		}
		status := "ok"
		if jr.Digest != ref.Digest {
			status = "DIGEST MISMATCH"
			mismatches++
		}
		fmt.Printf("%-10s %3d frames  path %v  replayed %2d  %s\n",
			jr.Stream, jr.Served, jr.Workers, jr.Replayed, status)
	}
	fmt.Printf("\n%d streams on %d workers in %v | deaths %d, retries %d | journal %d writes, %.1f KiB\n",
		len(jobs), workers, time.Since(start).Round(time.Millisecond), //detlint:allow wallclock CLI progress timer over real worker processes, printed only
		rep.WorkerDeaths, rep.Retries, rep.JournalWrites, float64(rep.JournalBytes)/1024)
	if err := c.Shutdown(); err != nil {
		return err
	}
	fmt.Println("shutdown clean: zero leaked residency refs on survivors")
	if mismatches > 0 {
		return fmt.Errorf("%d stream(s) diverged from the uninterrupted reference", mismatches)
	}
	if killOne && !killed {
		return fmt.Errorf("-kill-one set but w0 never journaled a chunk")
	}
	if killOne && rep.WorkerDeaths == 0 {
		return fmt.Errorf("-kill-one killed w0 but the coordinator saw no death")
	}
	return nil
}
