// Command fleetsim serves a seeded open-loop workload of SHIFT streams on a
// simulated multi-device fleet: K heterogeneous Xavier-NX-class devices
// behind a dispatcher with admission control and a pluggable placement
// policy. It prints the per-device serving table and utilization plot for
// one run, or the full device-count × placement grid with -sweep.
//
// With -faults, a seeded fault schedule (transient outages, permanent
// deaths, latency brownouts) is injected and in-flight streams are
// checkpointed and migrated across the surviving devices; the report then
// includes the recovery line (migrations, downtime, post-fault tail).
//
// With -autoscale, the elasticity grid runs instead: burst and diurnal
// workload shapes served by the fixed reference fleet and by an elastic
// fleet whose SLO-driven autoscaler provisions warm-pool devices under
// pressure and drains idle ones back (migrating their live sessions).
//
// With -prefetch, the predictive-prefetch contrast cell runs: a miss-heavy
// oscillating workload served twice — TAGE swap predictor off, then on —
// reporting the predictor scorecard (coverage/accuracy/timeliness) and the
// before/after swap-stall share of the p99 latency tail.
//
// With -workers N, serving splits across real OS processes: a coordinator
// spawns N worker subprocesses of this binary (each re-exec'd with -worker),
// drives streams over line-delimited JSON on stdio pipes, and journals a
// versioned checkpoint per chunk. Add -kill-one to SIGKILL a worker mid-run:
// its streams resume on the survivors from the journal, and every stream's
// decision digest is verified against an uninterrupted in-process serve.
//
// Usage:
//
//	fleetsim -devices 4 -placement residency-affinity
//	fleetsim -devices 2 -streams 24 -rate 0.5 -budget 2
//	fleetsim -devices 8 -regions 4
//	fleetsim -devices 4 -faults 6
//	fleetsim -autoscale
//	fleetsim -prefetch
//	fleetsim -sweep
//	fleetsim -workers 2 -streams 8 -kill-one
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() {
	var (
		devices    = flag.Int("devices", 2, "number of devices in the fleet")
		scales     = flag.String("scales", "1,1.25", "comma-separated per-device latency scales, cycled")
		placement  = flag.String("placement", "residency-affinity", "placement: round-robin, least-outstanding, residency-affinity")
		streams    = flag.Int("streams", 16, "streams offered")
		rate       = flag.Float64("rate", 0.25, "mean stream arrival rate per second")
		period     = flag.Float64("period", 0.1, "camera frame period in seconds")
		budget     = flag.Int("budget", 3, "admission budget: max concurrent streams per device (0 = unlimited)")
		regions    = flag.Int("regions", 0, "shard the event loop across N parallel device regions (0/1 = single region; results are bit-identical at any count)")
		queue      = flag.Int("queue", 8, "admission queue slots when saturated (0 = reject immediately, -1 = unbounded)")
		poolMB     = flag.Int64("pool-mb", 1300, "per-device engine memory arena in MB")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		valFrames  = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation frames for characterization")
		sweep      = flag.Bool("sweep", false, "run the full device-count × placement grid (experiments.FleetSweep)")
		faults     = flag.Float64("faults", 0, "mean device faults per minute; > 0 injects outages/deaths/brownouts with checkpoint/migration (experiments.FaultSweep)")
		autoscale  = flag.Bool("autoscale", false, "run the elasticity grid: fixed vs SLO-autoscaled fleets under burst and diurnal workloads (experiments.AutoscaleSweep)")
		prefetch   = flag.Bool("prefetch", false, "run the predictive-prefetch contrast cell: a miss-heavy workload served with the TAGE swap predictor off then on (experiments.PrefetchSweep)")
		trace      = flag.String("trace", "", "write the serving run's flight-recorder spans as Chrome trace-event JSON to this file (single-cell run; open in chrome://tracing or Perfetto)")
		worker     = flag.String("worker", "", "run as a worker process with this device name, protocol on stdio (spawned by -workers)")
		workers    = flag.Int("workers", 0, "coordinator mode: spawn N worker subprocesses and serve -streams across them")
		killOne    = flag.Bool("kill-one", false, "with -workers: SIGKILL worker w0 after its first journaled chunk to exercise crash recovery")
		journalDir = flag.String("journal-dir", "", "with -workers: persist each stream's latest checkpoint to this directory")
	)
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *worker != "" {
		// Stdout is the protocol channel; nothing else runs in this mode.
		if err := runWorker(*worker, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim worker:", err)
			os.Exit(1)
		}
		return
	}
	if *workers > 0 {
		if err := validateWorkersMode(*sweep, *autoscale, *faults, *trace, *prefetch); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		if err := runCoordinator(*workers, *streams, *period, *seed, *killOne, *journalDir); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		return
	}
	if *killOne || *journalDir != "" {
		fmt.Fprintln(os.Stderr, "fleetsim: -kill-one and -journal-dir require -workers")
		os.Exit(1)
	}

	if err := run(*devices, *scales, *placement, *streams, *rate, *period,
		*budget, *queue, *regions, *poolMB, *seed, *valFrames, *sweep, *faults, *autoscale, *prefetch, *trace, set); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

// validateWorkersMode rejects flags coordinator mode cannot honor — the
// other experiment grids, and -trace: the flight recorder observes the
// in-process event loop, and worker subprocesses serve out-of-process, so
// there is nothing to trace.
func validateWorkersMode(sweep, autoscale bool, faults float64, trace string, prefetch bool) error {
	if sweep || autoscale || faults > 0 || prefetch {
		return fmt.Errorf("-workers is mutually exclusive with -sweep, -autoscale, -faults, and -prefetch")
	}
	if trace != "" {
		return fmt.Errorf("-trace is mutually exclusive with -workers (the flight recorder observes the in-process event loop)")
	}
	return nil
}

// validate rejects malformed flags up front — one line on stderr and a
// non-zero exit, instead of a panic (or a multi-second characterization)
// deep in the run.
func validate(devices int, placement string, streams int, rate, period float64,
	budget, queue, regions int, poolMB int64, valFrames int, faults float64) error {
	if _, err := fleet.PlacementByName(placement); err != nil {
		return err
	}
	if devices <= 0 {
		return fmt.Errorf("-devices must be positive, got %d", devices)
	}
	if streams <= 0 {
		return fmt.Errorf("-streams must be positive, got %d", streams)
	}
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %v", rate)
	}
	if period <= 0 {
		return fmt.Errorf("-period must be positive, got %v", period)
	}
	if budget < 0 {
		return fmt.Errorf("-budget must be >= 0 (0 = unlimited), got %d", budget)
	}
	if queue < -1 {
		return fmt.Errorf("-queue must be >= -1 (-1 = unbounded), got %d", queue)
	}
	if regions < 0 {
		return fmt.Errorf("-regions must be >= 0 (0 = single region), got %d", regions)
	}
	if poolMB <= 0 {
		return fmt.Errorf("-pool-mb must be positive, got %d", poolMB)
	}
	if valFrames <= 0 {
		return fmt.Errorf("-val-frames must be positive, got %d", valFrames)
	}
	if faults < 0 {
		return fmt.Errorf("-faults must be >= 0, got %v", faults)
	}
	return nil
}

// run executes the selected experiment. set records which flags the user
// passed explicitly, so the -autoscale grid keeps its tuned defaults unless
// a flag was actually given — and flags a mode genuinely cannot honor are
// rejected instead of silently ignored.
func run(devices int, scales, placement string, streams int, rate, period float64,
	budget, queue, regions int, poolMB int64, seed uint64, valFrames int, sweep bool, faults float64,
	autoscale, prefetch bool, trace string, set map[string]bool) error {
	if err := validate(devices, placement, streams, rate, period, budget, queue, regions, poolMB, valFrames, faults); err != nil {
		return err
	}
	if autoscale && faults > 0 {
		return fmt.Errorf("-autoscale and -faults are mutually exclusive")
	}
	if autoscale && sweep {
		return fmt.Errorf("-autoscale and -sweep are mutually exclusive")
	}
	if prefetch && (sweep || autoscale || faults > 0) {
		return fmt.Errorf("-prefetch is mutually exclusive with -sweep, -autoscale, and -faults")
	}
	if prefetch && trace != "" {
		return fmt.Errorf("-trace is mutually exclusive with -prefetch (the contrast cell attaches its own recorders; see experiments.PrefetchSweep)")
	}
	if set["regions"] && (autoscale || faults > 0) {
		return fmt.Errorf("-regions applies to the serving sweep only, not -autoscale or -faults")
	}
	if trace != "" && (sweep || autoscale || faults > 0) {
		return fmt.Errorf("-trace applies to the single serving run only; it is mutually exclusive with -sweep, -autoscale and -faults")
	}
	scaleList, err := parseScales(scales)
	if err != nil {
		return err
	}

	fmt.Printf("characterizing %d-frame validation set (seed %d)...\n", valFrames, seed)
	env, err := experiments.NewEnv(seed, valFrames)
	if err != nil {
		return err
	}

	workload := fleet.DefaultWorkloadConfig()
	workload.Seed = seed
	workload.Streams = streams
	workload.RatePerSec = rate
	workload.PeriodSec = period
	admission := fleet.Admission{PerDeviceStreams: budget, QueueLimit: queue}

	if autoscale {
		cfg := experiments.DefaultAutoscaleSweepConfig()
		cfg.Placements = []string{placement}
		cfg.Scales = scaleList
		cfg.PoolMB = poolMB
		cfg.Workload.Seed = seed
		if set["devices"] {
			cfg.FixedDevices = devices // the fixed reference fleet's size
		}
		if set["streams"] {
			cfg.Workload.Streams = streams
		}
		if set["rate"] {
			cfg.Workload.RatePerSec = rate // the base rate the shapes modulate
		}
		if set["period"] {
			cfg.Workload.PeriodSec = period
		}
		if set["budget"] || set["queue"] {
			adm := *cfg.Admission
			if set["budget"] {
				adm.PerDeviceStreams = budget
			}
			if set["queue"] {
				adm.QueueLimit = queue
			}
			cfg.Admission = &adm
		}
		res, err := experiments.AutoscaleSweep(env, cfg)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(res.Report())
		return nil
	}

	if prefetch {
		cfg := experiments.DefaultPrefetchSweepConfig()
		cfg.Cell.Workload.Seed = seed
		if set["devices"] {
			cfg.Cell.Devices = devices
		}
		if set["placement"] {
			cfg.Cell.Placement = placement
		}
		if set["scales"] {
			cfg.Cell.Scales = scaleList
		}
		if set["streams"] {
			cfg.Cell.Workload.Streams = streams
		}
		if set["rate"] {
			cfg.Cell.Workload.RatePerSec = rate
		}
		if set["period"] {
			cfg.Cell.Workload.PeriodSec = period
		}
		if set["pool-mb"] {
			cfg.Cell.PoolMB = poolMB
		}
		if set["regions"] {
			cfg.Cell.Regions = regions
		}
		if set["budget"] || set["queue"] {
			cfg.Cell.Admission = &admission
		}
		res, err := experiments.PrefetchSweep(env, cfg)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(res.Report())
		return nil
	}

	if faults > 0 {
		fcfg := fleet.DefaultFaultConfig()
		fcfg.Horizon = experiments.FaultHorizonFor(workload)
		fltCfg := experiments.FaultSweepConfig{
			RatesPerMin: []float64{0, faults},
			Placements:  []string{placement},
			Devices:     devices,
			Scales:      scaleList,
			Workload:    workload,
			Admission:   &admission,
			PoolMB:      poolMB,
			Fault:       fcfg,
		}
		res, err := experiments.FaultSweep(env, fltCfg)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(res.Report())
		return nil
	}

	if trace != "" {
		ocfg := experiments.ObsSweepConfig{
			Devices:   devices,
			Placement: placement,
			Scales:    scaleList,
			Workload:  workload,
			Admission: &admission,
			PoolMB:    poolMB,
			Regions:   regions,
		}
		res, err := experiments.ObsSweep(env, ocfg)
		if err != nil {
			return err
		}
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := res.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(res.Report())
		fmt.Printf("wrote Chrome trace (%d spans) to %s — open in chrome://tracing or Perfetto\n", res.Spans, trace)
		return nil
	}

	cfg := experiments.FleetSweepConfig{
		Workload:  workload,
		Admission: &admission,
		PoolMB:    poolMB,
		Scales:    scaleList,
		Regions:   regions,
	}
	if !sweep {
		cfg.DeviceCounts = []int{devices}
		cfg.Placements = []string{placement}
	}
	res, err := experiments.FleetSweep(env, cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(res.Report())
	return nil
}

// parseScales parses "1,1.25" into scale factors.
func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid scale %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales given")
	}
	return out, nil
}
