package main

import (
	"strings"
	"testing"
)

// TestValidateRejectsBadFlags is the CLI smoke test for flag validation:
// unknown placement names and malformed numeric flags must produce a
// one-line error before any characterization work, never a panic mid-run.
func TestValidateRejectsBadFlags(t *testing.T) {
	ok := func() error {
		return validate(2, "residency-affinity", 16, 0.25, 0.1, 3, 8, 0, 1300, 800, 0)
	}
	if err := ok(); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"unknown placement", validate(2, "bogus", 16, 0.25, 0.1, 3, 8, 0, 1300, 800, 0), "unknown placement"},
		{"zero devices", validate(0, "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 800, 0), "-devices"},
		{"negative streams", validate(2, "round-robin", -1, 0.25, 0.1, 3, 8, 0, 1300, 800, 0), "-streams"},
		{"negative rate", validate(2, "round-robin", 16, -0.25, 0.1, 3, 8, 0, 1300, 800, 0), "-rate"},
		{"zero period", validate(2, "round-robin", 16, 0.25, 0, 3, 8, 0, 1300, 800, 0), "-period"},
		{"negative budget", validate(2, "round-robin", 16, 0.25, 0.1, -3, 8, 0, 1300, 800, 0), "-budget"},
		{"bad queue", validate(2, "round-robin", 16, 0.25, 0.1, 3, -2, 0, 1300, 800, 0), "-queue"},
		{"negative regions", validate(2, "round-robin", 16, 0.25, 0.1, 3, 8, -1, 1300, 800, 0), "-regions"},
		{"negative pool", validate(2, "round-robin", 16, 0.25, 0.1, 3, 8, 0, -1, 800, 0), "-pool-mb"},
		{"zero val-frames", validate(2, "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 0, 0), "-val-frames"},
		{"negative faults", validate(2, "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 800, -6), "-faults"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s accepted", c.name)
			continue
		}
		if !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the flag (%q)", c.name, c.err, c.want)
		}
		if strings.ContainsRune(c.err.Error(), '\n') {
			t.Errorf("%s: multi-line error %q", c.name, c.err)
		}
	}
	// run() must refuse bad flags before characterizing: a bogus placement
	// returns (quickly) with the validation error, not a deep failure.
	none := map[string]bool{}
	if err := run(2, "1", "bogus", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, false, 0, false, false, "", none); err == nil {
		t.Fatal("run accepted an unknown placement")
	} else if !strings.Contains(err.Error(), "unknown placement") {
		t.Fatalf("run surfaced the wrong error: %v", err)
	}
	// Malformed -scales fail in the same pre-characterization pass.
	if err := run(2, "1,-2", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, false, 0, false, false, "", none); err == nil {
		t.Fatal("run accepted a negative scale")
	}
	// Mode combinations a run cannot honor are rejected, not ignored.
	if err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, false, 6, true, false, "", none); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-autoscale -faults accepted: %v", err)
	}
	if err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, true, 0, true, false, "", none); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-autoscale -sweep accepted: %v", err)
	}
	// -regions steers the serving sweep's event loop only; modes that run a
	// different grid reject it rather than silently ignore it.
	withRegions := map[string]bool{"regions": true}
	if err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 2, 1300, 1, 800, false, 6, false, false, "", withRegions); err == nil ||
		!strings.Contains(err.Error(), "-regions") {
		t.Fatalf("-regions -faults accepted: %v", err)
	}
	if err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 2, 1300, 1, 800, false, 0, true, false, "", withRegions); err == nil ||
		!strings.Contains(err.Error(), "-regions") {
		t.Fatalf("-regions -autoscale accepted: %v", err)
	}
	// -trace exports the single serving run's flight recording; grid modes
	// have no single run to trace, and both rejections are one-line errors.
	for _, c := range []struct {
		name             string
		sweep, autoscale bool
		faults           float64
	}{
		{"sweep", true, false, 0},
		{"autoscale", false, true, 0},
		{"faults", false, false, 6},
	} {
		err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, c.sweep, c.faults, c.autoscale, false, "out.json", none)
		if err == nil || !strings.Contains(err.Error(), "-trace") {
			t.Fatalf("-trace -%s accepted: %v", c.name, err)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Fatalf("-trace -%s: multi-line error %q", c.name, err)
		}
	}
	// Coordinator mode serves out-of-process: -trace (and the grid modes)
	// are refused with a one-line error before any worker spawns.
	if err := validateWorkersMode(false, false, 0, "", false); err != nil {
		t.Fatalf("plain -workers rejected: %v", err)
	}
	if err := validateWorkersMode(false, false, 0, "out.json", false); err == nil ||
		!strings.Contains(err.Error(), "-trace") || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("-trace -workers accepted: %v", err)
	} else if strings.ContainsRune(err.Error(), '\n') {
		t.Fatalf("-trace -workers: multi-line error %q", err)
	}
	if err := validateWorkersMode(true, false, 0, "", false); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-sweep -workers accepted: %v", err)
	}
	// -prefetch runs its own two-pass contrast cell: grid modes, -trace and
	// -workers are all refused with one-line errors.
	for _, c := range []struct {
		name             string
		sweep, autoscale bool
		faults           float64
	}{
		{"sweep", true, false, 0},
		{"autoscale", false, true, 0},
		{"faults", false, false, 6},
	} {
		err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, c.sweep, c.faults, c.autoscale, true, "", none)
		if err == nil || !strings.Contains(err.Error(), "-prefetch") {
			t.Fatalf("-prefetch -%s accepted: %v", c.name, err)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Fatalf("-prefetch -%s: multi-line error %q", c.name, err)
		}
	}
	if err := run(2, "1", "round-robin", 16, 0.25, 0.1, 3, 8, 0, 1300, 1, 800, false, 0, false, true, "out.json", none); err == nil ||
		!strings.Contains(err.Error(), "-prefetch") || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("-trace -prefetch accepted: %v", err)
	}
	if err := validateWorkersMode(false, false, 0, "", true); err == nil ||
		!strings.Contains(err.Error(), "-prefetch") {
		t.Fatalf("-prefetch -workers accepted: %v", err)
	}
}
