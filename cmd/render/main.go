// Command render dumps synthesized scenario frames as PGM images (plus a
// ground-truth box overlay) for visual inspection of the scene generator,
// and can render scenarios defined in JSON files (see scene.ParseScenario).
//
// Usage:
//
//	render -scenario scenario1 -out /tmp/frames -every 100
//	render -file my-scenario.json -out /tmp/frames -overlay=false
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scene"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "scenario1", "built-in scenario name")
		file         = flag.String("file", "", "JSON scenario file (overrides -scenario)")
		out          = flag.String("out", "frames", "output directory")
		every        = flag.Int("every", 50, "dump every Nth frame")
		seed         = flag.Uint64("seed", 1, "render seed")
		overlay      = flag.Bool("overlay", true, "draw the ground-truth box")
	)
	flag.Parse()

	if err := run(*scenarioName, *file, *out, *every, *seed, *overlay); err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
}

func run(scenarioName, file, out string, every int, seed uint64, overlay bool) error {
	if every <= 0 {
		return fmt.Errorf("-every must be positive")
	}
	var sc *scene.Scenario
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sc, err = scene.ParseScenario(data)
		if err != nil {
			return err
		}
	} else {
		var err error
		sc, err = scene.ByName(scenarioName)
		if err != nil {
			return err
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	frames := sc.Render(seed)
	written := 0
	for _, f := range frames {
		if f.Index%every != 0 {
			continue
		}
		m := f.Image
		if overlay && !f.GT.Empty() {
			m = m.Clone()
			drawBox(m, int(f.GT.X), int(f.GT.Y), int(f.GT.W), int(f.GT.H))
		}
		path := filepath.Join(out, fmt.Sprintf("%s_%05d.pgm", sc.Name, f.Index))
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := m.WritePGM(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d frames of %s (%d total) to %s\n", written, sc.Name, len(frames), out)
	return nil
}

// drawBox traces a white single-pixel rectangle.
func drawBox(m interface {
	Set(x, y int, v uint8)
}, x, y, w, h int) {
	for dx := 0; dx < w; dx++ {
		m.Set(x+dx, y, 255)
		m.Set(x+dx, y+h-1, 255)
	}
	for dy := 0; dy < h; dy++ {
		m.Set(x, y+dy, 255)
		m.Set(x+w-1, y+dy, 255)
	}
}
