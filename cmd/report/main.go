// Command report regenerates the paper-vs-measured comparison that
// EXPERIMENTS.md records: every Table III row side by side with the paper's
// numbers, the Table IV accuracy column, the headline improvement ratios,
// and the live-feed deadline extension.
//
// Usage:
//
//	report               # print to stdout
//	report -o report.md  # write to a file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "experiment seed")
		valFrames = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation set size")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	env, err := experiments.NewEnv(*seed, *valFrames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	text, err := experiments.ComparisonReport(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
