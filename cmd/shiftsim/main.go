// Command shiftsim runs continuous object detection over the evaluation
// scenarios with any of the paper's methods — SHIFT, Marlin, Marlin Tiny,
// the three Oracles, or a fixed single model — and prints Table III-style
// summaries.
//
// Usage:
//
//	shiftsim -all                         # full Table III over the suite
//	shiftsim -method SHIFT -scenario scenario1 -timeline
//	shiftsim -method single -model YoloV7-Tiny -proc dla0 -scenario scenario3
//	shiftsim -method SHIFT -acc-knob 1 -energy-knob 2 -latency-knob 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/sched"
	"repro/internal/textplot"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every Table III method over the whole suite")
		method     = flag.String("method", "SHIFT", "method: SHIFT, Marlin, MarlinTiny, OracleE, OracleA, OracleL, single")
		model      = flag.String("model", "YoloV7", "model name for -method single")
		proc       = flag.String("proc", "gpu", "processor for -method single")
		scenario   = flag.String("scenario", "", "scenario name (default: whole suite)")
		file       = flag.String("file", "", "JSON scenario file (see scene.ParseScenario; overrides -scenario)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		valFrames  = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation frames for characterization")
		timeline   = flag.Bool("timeline", false, "print the per-scenario SHIFT timeline (Figs. 3/4 style)")
		accKnob    = flag.Float64("acc-knob", 1.0, "accuracy knob (SHIFT)")
		energyKnob = flag.Float64("energy-knob", 0.5, "energy knob (SHIFT)")
		latKnob    = flag.Float64("latency-knob", 0.5, "latency knob (SHIFT)")
		goalAcc    = flag.Float64("goal-accuracy", 0.25, "accuracy threshold (SHIFT)")
		momentum   = flag.Int("momentum", 30, "momentum window (SHIFT)")
		maxLat     = flag.Float64("max-latency", 0, "hard per-inference latency bound in seconds (SHIFT, 0 = off)")
		maxEnergy  = flag.Float64("max-energy", 0, "hard per-inference energy bound in Joules (SHIFT, 0 = off)")
	)
	flag.Parse()

	if err := run(*all, *method, *model, *proc, *scenario, *file, *seed, *valFrames, *timeline,
		sched.Knobs{Accuracy: *accKnob, Energy: *energyKnob, Latency: *latKnob}, *goalAcc, *momentum,
		*maxLat, *maxEnergy); err != nil {
		fmt.Fprintln(os.Stderr, "shiftsim:", err)
		os.Exit(1)
	}
}

func run(all bool, method, model, proc, scenarioName, file string, seed uint64, valFrames int,
	timeline bool, knobs sched.Knobs, goalAcc float64, momentum int, maxLat, maxEnergy float64) error {
	fmt.Printf("characterizing %d-frame validation set (seed %d)...\n", valFrames, seed)
	env, err := experiments.NewEnv(seed, valFrames)
	if err != nil {
		return err
	}

	if all {
		fmt.Println("running all methods over the six-scenario evaluation suite...")
		res, err := experiments.TableIII(env, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
		return nil
	}

	scenarios := scene.EvaluationSuite()
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sc, err := scene.ParseScenario(data)
		if err != nil {
			return err
		}
		scenarios = []*scene.Scenario{sc}
	case scenarioName != "":
		sc, err := scene.ByName(scenarioName)
		if err != nil {
			return err
		}
		scenarios = []*scene.Scenario{sc}
	}

	var summaries []metrics.Summary
	for _, sc := range scenarios {
		runner, err := buildRunner(env, method, model, proc, knobs, goalAcc, momentum, maxLat, maxEnergy)
		if err != nil {
			return err
		}
		r, err := runner.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return err
		}
		s := metrics.Summarize(r)
		fmt.Printf("%-12s %-10s iou=%.3f time=%.3fs energy=%.3fJ success=%.1f%% nonGPU=%.1f%% swaps=%d pairs=%.0f\n",
			r.Method, sc.Name, s.AvgIoU, s.AvgTimeSec, s.AvgEnergyJ,
			s.SuccessRate*100, s.NonGPUFrac*100, s.Swaps, s.PairsUsed)
		summaries = append(summaries, s)

		if timeline {
			tl, err := experiments.Timeline(env, sc)
			if err != nil {
				return err
			}
			fmt.Println(tl.Report())
		}
	}
	if len(summaries) > 1 {
		combined, err := metrics.Combine(summaries)
		if err != nil {
			return err
		}
		rows := [][]string{
			{"IoU", "Time (s)", "Energy (J)", "Success", "Non-GPU", "Swaps", "Pairs"},
			{
				fmt.Sprintf("%.3f", combined.AvgIoU),
				fmt.Sprintf("%.3f", combined.AvgTimeSec),
				fmt.Sprintf("%.3f", combined.AvgEnergyJ),
				fmt.Sprintf("%.1f%%", combined.SuccessRate*100),
				fmt.Sprintf("%.1f%%", combined.NonGPUFrac*100),
				fmt.Sprintf("%d", combined.Swaps),
				fmt.Sprintf("%.1f", combined.PairsUsed),
			},
		}
		fmt.Println(textplot.Table("suite average ("+combined.Method+")", rows))
	}
	return nil
}

// buildRunner constructs a fresh runner per scenario so clock, memory and
// meters start clean.
func buildRunner(env *experiments.Env, method, model, proc string,
	knobs sched.Knobs, goalAcc float64, momentum int, maxLat, maxEnergy float64) (pipeline.Runner, error) {
	sys := env.System()
	switch method {
	case "SHIFT":
		opts := pipeline.DefaultOptions()
		opts.Sched.Knobs = knobs
		opts.Sched.AccuracyThreshold = goalAcc
		opts.Sched.Momentum = momentum
		opts.Sched.MaxLatencySec = maxLat
		opts.Sched.MaxEnergyJ = maxEnergy
		return pipeline.NewSHIFT(sys, env.Ch, env.Graph, opts)
	case "Marlin":
		return baseline.NewMarlin(sys, baseline.DefaultMarlinConfig())
	case "MarlinTiny":
		cfg := baseline.DefaultMarlinConfig()
		cfg.Model = "YoloV7-Tiny"
		return baseline.NewMarlin(sys, cfg)
	case "OracleE":
		return baseline.NewOracle(sys, baseline.OracleEnergy)
	case "OracleA":
		return baseline.NewOracle(sys, baseline.OracleAccuracy)
	case "OracleL":
		return baseline.NewOracle(sys, baseline.OracleLatency)
	case "single":
		return baseline.NewSingleModel(sys, model, proc)
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}
