// Command sweep runs the sensitivity analysis behind Fig. 5: a grid of
// SHIFT configurations (knobs, accuracy threshold, momentum, confidence-
// graph distance threshold) is executed over evaluation scenarios and the
// per-parameter correlations with mean accuracy, energy and latency are
// reported.
//
// Usage:
//
//	sweep            # quick grid
//	sweep -full      # the full 1,920-configuration grid (~minutes)
//	sweep -points    # also dump every configuration's raw outcome
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "experiment seed")
		valFrames = flag.Int("val-frames", experiments.DefaultValidationFrames, "validation set size")
		full      = flag.Bool("full", false, "run the full 1,920-configuration grid")
		points    = flag.Bool("points", false, "print each configuration's raw outcome")
	)
	flag.Parse()

	if err := run(*seed, *valFrames, *full, *points); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(seed uint64, valFrames int, full, points bool) error {
	env, err := experiments.NewEnv(seed, valFrames)
	if err != nil {
		return err
	}
	cfg := experiments.QuickSweepConfig()
	if full {
		cfg = experiments.DefaultSweepConfig()
	}
	fmt.Printf("sweeping %d configurations...\n", cfg.Size())
	res, err := experiments.Figure5(env, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Report())
	fmt.Println(experiments.ParetoReport(res.Points))
	if points {
		fmt.Println("raw points:")
		for _, p := range res.Points {
			fmt.Printf("  knobs=(%.2f,%.2f,%.2f) thr=%.2f mom=%d dist=%.2f -> iou=%.3f time=%.4f energy=%.3f\n",
				p.AccKnob, p.EnergyKnob, p.LatencyKnob, p.AccThreshold, p.Momentum, p.DistThreshold,
				p.MeanIoU, p.MeanTimeSec, p.MeanEnergyJ)
		}
	}
	return nil
}
