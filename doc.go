// Package repro is a from-scratch Go reproduction of "Context-aware
// Multi-Model Object Detection for Diversely Heterogeneous Compute Systems"
// (Davis & Belviranli, DATE 2024) — the SHIFT system.
//
// SHIFT continuously selects which object-detection model to run, and on
// which accelerator, based on contextual information derived from the input
// video stream. The reproduction implements the paper's three components
// (confidence graph, runtime scheduler, dynamic model loader) plus every
// substrate the evaluation depends on: a procedural video synthesizer, a
// behaviourally simulated eight-model detection zoo, and a virtual-time
// Xavier NX + OAK-D platform with power and memory accounting.
//
// Layout:
//
//   - internal/confgraph, internal/sched, internal/loader, internal/pipeline:
//     the paper's contribution (offline graph, Algorithm 1, DML, SHIFT).
//   - internal/runtime: the shared serving engine — one step loop behind a
//     Policy interface that SHIFT and every baseline run on, plus the
//     deterministic multi-stream event loop (runtime.Serve) with FIFO
//     processor queueing and reference-counted engine residency, factored
//     into steppable per-stream Sessions with checkpoint/restore
//     (Session.Snapshot, RestoreSession, PortablePolicy) for migration.
//   - internal/fleet: the multi-device serving layer — K heterogeneous
//     devices behind a dispatcher with pluggable placement policies
//     (round-robin, least-outstanding, residency-affinity), admission
//     control with a bounded wait queue, seeded workload generators
//     (constant-rate and shaped: burst / diurnal via thinning), a seeded
//     fault injector (outages, deaths, brownouts) whose failures
//     checkpoint and migrate in-flight streams, and an SLO-driven
//     autoscaler (fleet.AutoscaleConfig) that provisions warm-pool
//     devices on tail-latency or queue breaches and decommissions idle
//     ones via drain-based scale-in; one global deterministic event loop
//     interleaves arrivals, frame steps, departures, fault edges and
//     scale ticks across devices.
//   - internal/scene, internal/detmodel, internal/accel, internal/zoo:
//     the simulated substrates (videos, models, hardware, binding).
//   - internal/baseline: Marlin, single-model, frame-skip and Oracle
//     comparison methods, all thin policies over the engine.
//   - internal/experiments: one runner per paper table/figure, plus the
//     multi-stream contention sweep (experiments.MultiStream), the
//     multi-device fleet grid (experiments.FleetSweep), the
//     fault-tolerance grid (experiments.FaultSweep) and the elasticity
//     grid (experiments.AutoscaleSweep: fixed vs autoscaled fleets under
//     burst and diurnal workload shapes).
//   - cmd/: shiftsim, characterize, sweep, figures, bench, render, report,
//     fleetsim.
//   - examples/: quickstart, dronechase, energybudget, customzoo, livefeed,
//     edgefarm.
//
// Top-level benchmarks in bench_test.go regenerate every table and figure;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results against the paper's numbers.
package repro
