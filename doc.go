// Package repro is a from-scratch Go reproduction of "Context-aware
// Multi-Model Object Detection for Diversely Heterogeneous Compute Systems"
// (Davis & Belviranli, DATE 2024) — the SHIFT system.
//
// SHIFT continuously selects which object-detection model to run, and on
// which accelerator, based on contextual information derived from the input
// video stream. The reproduction implements the paper's three components
// (confidence graph, runtime scheduler, dynamic model loader) plus every
// substrate the evaluation depends on: a procedural video synthesizer, a
// behaviourally simulated eight-model detection zoo, and a virtual-time
// Xavier NX + OAK-D platform with power and memory accounting.
//
// Layout:
//
//   - internal/confgraph, internal/sched, internal/loader, internal/pipeline:
//     the paper's contribution (offline graph, Algorithm 1, DML, SHIFT).
//   - internal/runtime: the shared serving engine — one step loop behind a
//     Policy interface that SHIFT and every baseline run on, plus the
//     deterministic multi-stream event loop (runtime.Serve) with FIFO
//     processor queueing and reference-counted engine residency, factored
//     into steppable per-stream Sessions with checkpoint/restore
//     (Session.Snapshot, RestoreSession, PortablePolicy) for migration.
//   - internal/fleet: the multi-device serving layer — K heterogeneous
//     devices behind a dispatcher with pluggable placement policies
//     (round-robin, least-outstanding, residency-affinity), admission
//     control with a bounded wait queue, seeded workload generators
//     (constant-rate and shaped: burst / diurnal via thinning), a seeded
//     fault injector (outages, deaths, brownouts) whose failures
//     checkpoint and migrate in-flight streams, and an SLO-driven
//     autoscaler (fleet.AutoscaleConfig) that provisions warm-pool
//     devices on tail-latency or queue breaches and decommissions idle
//     ones via drain-based scale-in; one global deterministic event loop
//     interleaves arrivals, frame steps, departures, fault edges and
//     scale ticks across devices, selecting each next event from an
//     indexed min-heap keyed (time, kind, device, seq) — and, with
//     fleet.Config.Regions > 1, advancing device shards in parallel
//     between globally-ordered barrier events, bit-identical at every
//     region count. With fleet.DurabilityConfig set, every
//     session is journaled through the checkpoint wire format and a
//     fourth fault kind — crash — kills a device's worker process and
//     recovers its streams from journal bytes (best-effort streams shed
//     first when survivors lack slack).
//   - internal/obs: the fleet flight recorder — a pure-stdlib virtual-clock
//     tracer recording typed spans for every lifecycle event (arrival,
//     queue wait, engine load vs. residency hit, per-processor exec,
//     per-frame rollup, migration, drain, brownout, crash-recover), a
//     counters-and-histograms registry folded from the span stream, exact
//     per-frame latency attribution (queue + swap + exec + interference
//     sum bit-exactly to end-to-end), Chrome trace-event JSON export and
//     text timelines; strictly observational — attaching it never
//     perturbs a run, at any region count.
//   - internal/predict: TAGE-style swap prediction — a bimodal base table
//     plus tagged geometric-history tables over the stream's (model, kind)
//     swap sequence, trained online from the step loop's swap events.
//     Confident predictions become speculative engine loads on the SoC's
//     DMA copy channel, overlapping the predicted next load with
//     current-frame compute (internal/runtime), and pre-warm the target
//     device on admission and migration (internal/fleet). Prefetch hides
//     stalls but never steers: the predictor-off path is bit-identical to
//     a build without it, and predictor-on decision sequences equal
//     predictor-off ones — pinned by the churn suites and
//     FuzzPredictorDeterminism.
//   - internal/checkpoint: the versioned, self-describing checkpoint wire
//     format (magic + version + CRC-guarded sections; frames by
//     reference) with typed decode errors and a committed fuzz corpus.
//   - internal/distrib: the coordinator/worker process split — a
//     line-delimited JSON protocol over stdio pipes with per-request
//     deadlines, bounded retries and idempotent re-dispatch, journaling
//     each stream's checkpoint so a SIGKILLed worker's streams resume on
//     survivors with bit-identical decisions.
//   - internal/scene, internal/detmodel, internal/accel, internal/zoo:
//     the simulated substrates (videos, models, hardware, binding).
//   - internal/baseline: Marlin, single-model, frame-skip and Oracle
//     comparison methods, all thin policies over the engine.
//   - internal/experiments: one runner per paper table/figure, plus the
//     multi-stream contention sweep (experiments.MultiStream), the
//     multi-device fleet grid (experiments.FleetSweep), the
//     fault-tolerance grid (experiments.FaultSweep), the elasticity
//     grid (experiments.AutoscaleSweep: fixed vs autoscaled fleets under
//     burst and diurnal workload shapes), the crash-recovery grid
//     (experiments.CrashSweep: kill-and-recover on a journaled fleet) and
//     the fleet-scale grid (experiments.ScaleSweep: day-long diurnal
//     traces on fleets up to 1 000 devices / 100 000 streams, measuring
//     the event loop's wall-clock events/sec per selector) and the
//     predictive-prefetch cell (experiments.PrefetchSweep: one miss-heavy
//     recorder cell served predictor-off then predictor-on, putting the
//     SupraX-style coverage/accuracy/timeliness scorecard next to the
//     swap-stall share of the p99 tail before and after).
//   - internal/analysis: detlint, the static determinism-lint suite — five
//     analyzers (wallclock, globalrand, maporder, goroutine, forkshare)
//     built on the standard library's go/ast and go/types that enforce the
//     bit-identity invariants at build time, with a //detlint:allow
//     site-by-site escape hatch whose inventory is pinned by a golden test
//     (DESIGN.md §15).
//   - cmd/: shiftsim, characterize, sweep, figures, bench, render, report,
//     fleetsim, detlint (standalone linter, go vet -vettool, and
//     -inventory suppression listing).
//   - examples/: quickstart, dronechase, energybudget, customzoo, livefeed,
//     edgefarm.
//
// Top-level benchmarks in bench_test.go regenerate every table and figure;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results against the paper's numbers.
package repro
