// Customzoo: extending the system with a new model and re-characterizing.
//
// SHIFT's offline pipeline is model-agnostic: anything with accuracy,
// confidence, latency, energy and load traits can join the zoo. This example
// adds a hypothetical quantized "YoloV7-INT8" variant by:
//
//  1. calibrating its behavioural model to a target benchmark accuracy over
//     the validation distribution (detmodel.NewCalibrated),
//
//  2. registering its per-accelerator performance and load costs,
//
//  3. characterizing just the new model incrementally
//     (profile.Characterization.AddModel) instead of re-profiling the zoo,
//
//  4. rebuilding the confidence graph and letting SHIFT adopt the model
//     where it wins.
//
//     go run ./examples/customzoo
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/accel"
	"repro/internal/confgraph"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

const seed = 1

// newINT8Entry calibrates and registers the hypothetical quantized model:
// benchmark accuracy a notch under FP32 YoloV7, ~3x faster and ~4x cheaper
// on the GPU, with a smaller engine.
func newINT8Entry(frames []scene.Frame) (*zoo.Entry, error) {
	behaviour, err := detmodel.NewCalibrated(
		"YoloV7-INT8", detmodel.FamilyYOLO, 0.60, detmodel.DifficultySamples(frames))
	if err != nil {
		return nil, err
	}
	return &zoo.Entry{
		Model: behaviour,
		PerfByKind: map[accel.Kind]zoo.Perf{
			accel.KindGPU: {LatencySec: 0.045, PowerW: 11.5},
			accel.KindDLA: {LatencySec: 0.041, PowerW: 4.9},
		},
		LoadByPool: map[string]zoo.LoadCost{
			accel.SoCPoolName: {Bytes: 180 * accel.MB, TimeSec: 0.45, PowerW: 8},
		},
	}, nil
}

func run(sys *zoo.System, ch *profile.Characterization) metrics.Summary {
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zoo of %d models, %d runtime (model, kind) pairs\n",
		len(sys.Entries), sys.KindPairCount())
	shift, err := pipeline.NewSHIFT(sys, ch, graph, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sc := scene.Scenario6()
	res, err := shift.Run(sc.Name, sc.Render(seed))
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, rec := range res.Records {
		counts[rec.Pair.String()]++
	}
	pairs := make([]string, 0, len(counts))
	for pair := range counts {
		pairs = append(pairs, pair)
	}
	sort.Strings(pairs)
	fmt.Println("pair usage:")
	for _, pair := range pairs {
		fmt.Printf("  %-26s %5d frames\n", pair, counts[pair])
	}
	return metrics.Summarize(res)
}

func main() {
	validation := scene.ValidationSet(seed, 500)

	fmt.Println("== stock zoo ==")
	stockSys := zoo.Default(seed)
	ch := profile.Characterize(stockSys, validation)
	stock := run(stockSys, ch)

	fmt.Println("\n== zoo + YoloV7-INT8 (incremental characterization) ==")
	entry, err := newINT8Entry(validation)
	if err != nil {
		log.Fatal(err)
	}
	base := zoo.Default(seed)
	extSys := zoo.NewSystem(base.SoC, append(base.Entries, entry), seed)
	if err := ch.AddModel(extSys, entry.Name(), validation); err != nil {
		log.Fatal(err)
	}
	extended := run(extSys, ch)

	fmt.Printf("\n%-10s %8s %10s %10s\n", "zoo", "IoU", "time (s)", "energy (J)")
	fmt.Printf("%-10s %8.3f %10.3f %10.3f\n", "stock", stock.AvgIoU, stock.AvgTimeSec, stock.AvgEnergyJ)
	fmt.Printf("%-10s %8.3f %10.3f %10.3f\n", "extended", extended.AvgIoU, extended.AvgTimeSec, extended.AvgEnergyJ)
}
