// Dronechase: a live-timeline walk-through of SHIFT's decisions.
//
// The example replays the paper's Fig. 3 scenario (a drone maneuvering
// across backgrounds at varying distance) and narrates every model or
// accelerator swap SHIFT makes: which context change triggered it, what the
// NCC gate saw, and what it cost. It then prints the same run for a
// single-model deployment so the trade-off is visible side by side.
//
//	go run ./examples/dronechase
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/confgraph"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func main() {
	const seed = 1
	sys := zoo.Default(seed)
	ch := profile.Characterize(sys, scene.ValidationSet(seed, 500))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	sc := scene.Scenario1()
	frames := sc.Render(seed)
	fmt.Printf("scenario: %s — %s (%d frames)\n\n", sc.Name, sc.Desc, len(frames))

	shift, err := pipeline.NewSHIFT(sys, ch, graph, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := shift.Run(sc.Name, frames)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SHIFT decision narrative:")
	for i, rec := range res.Records {
		if !rec.Swapped {
			continue
		}
		prev := res.Records[i-1]
		fmt.Printf("  frame %4d: %-24s -> %-24s (gate %.2f, sim %.2f, ctx difficulty %.2f)\n",
			rec.Index, prev.Pair, rec.Pair, prev.Gate, prev.Similarity,
			frames[i].Ctx.Difficulty())
	}

	shiftSummary := metrics.Summarize(res)

	single, err := baseline.NewSingleModel(zoo.Default(seed), detmodel.YoloV7, "gpu")
	if err != nil {
		log.Fatal(err)
	}
	singleRes, err := single.Run(sc.Name, frames)
	if err != nil {
		log.Fatal(err)
	}
	singleSummary := metrics.Summarize(singleRes)

	fmt.Printf("\n%-14s %8s %10s %10s %9s\n", "method", "IoU", "time (s)", "energy (J)", "success")
	for _, s := range []metrics.Summary{shiftSummary, singleSummary} {
		fmt.Printf("%-14s %8.3f %10.3f %10.3f %8.1f%%\n",
			s.Method, s.AvgIoU, s.AvgTimeSec, s.AvgEnergyJ, s.SuccessRate*100)
	}
	fmt.Printf("\nSHIFT vs single-model GPU: %.1fx faster, %.1fx less energy, %.2fx IoU\n",
		singleSummary.AvgTimeSec/shiftSummary.AvgTimeSec,
		singleSummary.AvgEnergyJ/shiftSummary.AvgEnergyJ,
		shiftSummary.AvgIoU/singleSummary.AvgIoU)
}
