// Edgefarm: serving a stream population on a fleet of edge devices.
//
// The paper schedules within one diversely heterogeneous device; a
// deployment serves many cameras on many such devices. This walkthrough
// builds a three-device heterogeneous fleet (one baseline node, one 25%
// slower, one 20% faster — internal/fleet models speed via accel time
// scales), generates a seeded Poisson-like workload of finite SHIFT streams
// from the evaluation suite, and serves it three times — once per placement
// policy — to show what the dispatcher's placement decision is worth:
//
//   - round-robin ignores everything and rotates;
//   - least-outstanding joins the shortest queue (frames, not streams);
//   - residency-affinity prefers the device already holding the engines
//     streams of that scenario were observed to use, treating model
//     residency as cache state, and falls back to the shortest horizon.
//
// Admission control caps each device at three concurrent streams (the
// single-device capacity cliff found by the PR 2 multi-stream sweep sits at
// four) and queues a bounded number of arrivals beyond that.
//
// Run with:
//
//	go run ./examples/edgefarm
package main

import (
	"fmt"
	"log"

	"repro/internal/confgraph"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func main() {
	const seed = 1
	base := zoo.Default(seed)
	ch := profile.Characterize(base, scene.ValidationSet(seed, 500))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A SHIFT policy per admitted stream, built against the device the
	// dispatcher picks.
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, ch, graph, pipeline.DefaultOptions())
	}

	// The workload: 12 finite 10 fps streams arriving at ~0.3/s, content
	// drawn from the evaluation suite. Rendering is cached across the three
	// runs below; the workload itself is identical each time (same seed).
	wl := fleet.DefaultWorkloadConfig()
	wl.Seed = seed
	wl.Streams = 12
	wl.RatePerSec = 0.3
	rendered := map[string][]scene.Frame{}
	source := func(sc *scene.Scenario) []scene.Frame {
		if f, ok := rendered[sc.Name]; ok {
			return f
		}
		f := sc.Render(seed)
		rendered[sc.Name] = f
		return f
	}

	devices := []fleet.DeviceConfig{
		{Name: "farm-a", Scale: 1},    // baseline Xavier-NX-class node
		{Name: "farm-b", Scale: 1.25}, // thermally throttled: 25% slower
		{Name: "farm-c", Scale: 0.8},  // next-gen node: 20% faster
	}

	for _, pname := range []string{"round-robin", "least-outstanding", "residency-affinity"} {
		place, err := fleet.PlacementByName(pname)
		if err != nil {
			log.Fatal(err)
		}
		fl, err := fleet.New(fleet.Config{
			Seed:      seed,
			Devices:   devices,
			Placement: place,
			Admission: fleet.Admission{PerDeviceStreams: 3, QueueLimit: 4},
		})
		if err != nil {
			log.Fatal(err)
		}
		reqs, err := fleet.GenerateWorkload(wl, source, policy)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fl.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== placement: %s ===\n\n", pname)
		fmt.Println(fleet.Report(res))
		fmt.Printf("per-stream placement: ")
		for i, out := range res.Outcomes {
			if i > 0 {
				fmt.Print(", ")
			}
			if out.Rejected {
				fmt.Printf("%s->rejected", out.Name)
			} else {
				fmt.Printf("%s->%s", out.Name, out.Device)
			}
		}
		fmt.Print("\n\n")
	}
}
