// Energybudget: tuning SHIFT's knobs to meet a Joule budget.
//
// An aerial platform has a fixed per-mission energy allowance for
// perception. This example sweeps the energy knob, finds the least
// aggressive setting whose full-suite energy fits the budget, and reports
// what accuracy that setting retains — the operating-point selection the
// paper's tunable weights exist for.
//
//	go run ./examples/energybudget
package main

import (
	"fmt"
	"log"

	"repro/internal/confgraph"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// budgetJPerFrame is the mission's per-frame perception energy allowance.
const budgetJPerFrame = 0.22

func main() {
	const seed = 1
	base := zoo.Default(seed)
	ch := profile.Characterize(base, scene.ValidationSet(seed, 500))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	suite := scene.EvaluationSuite()
	// Pre-render once; all knob settings replay the same frames.
	frames := make(map[string][]scene.Frame, len(suite))
	for _, sc := range suite {
		frames[sc.Name] = sc.Render(seed)
	}

	fmt.Printf("per-frame energy budget: %.3f J\n\n", budgetJPerFrame)
	fmt.Printf("%12s %10s %12s %10s %8s\n", "energy knob", "IoU", "energy (J)", "time (s)", "fits?")

	type operating struct {
		knob    float64
		summary metrics.Summary
	}
	var chosen *operating
	for _, knob := range []float64{0, 0.25, 0.5, 1.0, 2.0, 4.0} {
		opts := pipeline.DefaultOptions()
		opts.Sched.Knobs.Energy = knob
		var perScenario []metrics.Summary
		for _, sc := range suite {
			shift, err := pipeline.NewSHIFT(zoo.Default(seed), ch, graph, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err := shift.Run(sc.Name, frames[sc.Name])
			if err != nil {
				log.Fatal(err)
			}
			s := metrics.Summarize(res)
			s.Method = "SHIFT"
			perScenario = append(perScenario, s)
		}
		combined, err := metrics.Combine(perScenario)
		if err != nil {
			log.Fatal(err)
		}
		fits := combined.AvgEnergyJ <= budgetJPerFrame
		fmt.Printf("%12.2f %10.3f %12.3f %10.3f %8v\n",
			knob, combined.AvgIoU, combined.AvgEnergyJ, combined.AvgTimeSec, fits)
		// Pick the weakest knob (highest accuracy) that fits the budget.
		if fits && chosen == nil {
			chosen = &operating{knob: knob, summary: combined}
		}
	}

	fmt.Println()
	if chosen == nil {
		fmt.Println("no knob setting fits the budget; raise the budget or relax the goal accuracy")
		return
	}
	fmt.Printf("selected operating point: energy knob %.2f -> %.3f J/frame at IoU %.3f (success %.1f%%)\n",
		chosen.knob, chosen.summary.AvgEnergyJ, chosen.summary.AvgIoU, chosen.summary.SuccessRate*100)
}
