// Livefeed: SHIFT under cameras that do not wait.
//
// The offline evaluation processes every frame; a deployed system receives
// frames at the camera's pace. This example shows both live regimes:
//
//  1. A single camera with a one-slot queue (pipeline.RunLive): frames that
//     arrive while the pipeline is busy are dropped, and stale detections
//     are scored against the current ground truth.
//
//  2. Two concurrent cameras served over one shared platform
//     (runtime.Serve): each stream has its own SHIFT scheduler, but the
//     accelerators queue FIFO and engine residency is reference-counted, so
//     the streams contend for compute and memory instead of dropping — the
//     cost shows up as queueing delay, tail latency and deadline misses.
//
// Run with:
//
//	go run ./examples/livefeed
package main

import (
	"fmt"
	"log"

	"repro/internal/confgraph"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func main() {
	const seed = 1
	base := zoo.Default(seed)
	ch := profile.Characterize(base, scene.ValidationSet(seed, 500))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sc := scene.Scenario1()
	frames := sc.Render(seed)

	fmt.Printf("live replay of %s (%d frames)\n\n", sc.Name, len(frames))
	fmt.Printf("%8s %12s %12s %14s %12s\n", "fps", "processed", "dropped", "effective IoU", "energy (J)")
	for _, fps := range []float64{5, 10, 20, 30} {
		shift, err := pipeline.NewSHIFT(zoo.Default(seed), ch, graph, pipeline.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		live, err := shift.RunLive(sc.Name, frames, 1.0/fps)
		if err != nil {
			log.Fatal(err)
		}
		s := metrics.Summarize(live.Result)
		fmt.Printf("%8.0f %12d %12d %14.3f %12.3f\n",
			fps, len(live.Result.Records), live.Dropped, live.EffectiveIoU, s.AvgEnergyJ)
	}

	fmt.Println("\noffline (process every frame, no deadline):")
	shift, err := pipeline.NewSHIFT(zoo.Default(seed), ch, graph, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := shift.Run(sc.Name, frames)
	if err != nil {
		log.Fatal(err)
	}
	s := metrics.Summarize(res)
	fmt.Printf("%8s %12d %12d %14.3f %12.3f\n", "-", len(res.Records), 0, s.AvgIoU, s.AvgEnergyJ)

	// Two concurrent 10 fps cameras on one platform: each stream gets its
	// own SHIFT policy (per-stream scheduler state), while processors and
	// engine memory are shared through the serving runtime.
	const fps = 10.0
	sys := zoo.Default(seed)
	dml := loader.New(sys, loader.EvictLRR)
	scenarios := []*scene.Scenario{scene.Scenario1(), scene.Scenario2()}
	specs := make([]runtime.StreamSpec, len(scenarios))
	for i, s2 := range scenarios {
		pol, err := pipeline.NewPolicy(sys, ch, graph, pipeline.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = runtime.StreamSpec{
			Name:      s2.Name,
			Frames:    s2.Render(seed),
			PeriodSec: 1 / fps,
			Policy:    pol,
		}
	}
	streams, err := runtime.Serve(sys, dml, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo concurrent streams at %.0f fps on one platform (runtime.Serve):\n\n", fps)
	fmt.Printf("%-12s %8s %10s %12s %12s %12s %12s\n",
		"stream", "frames", "IoU", "p99 lat (s)", "miss rate", "queue (s)", "swaps")
	for _, sr := range streams {
		sum := metrics.Summarize(sr.Result)
		lat := metrics.Latencies(sr.Latencies())
		miss := float64(sr.MissCount()) / float64(len(sr.Timings))
		fmt.Printf("%-12s %8d %10.3f %12.3f %11.1f%% %12.3f %12d\n",
			sr.Name, len(sr.Result.Records), sum.AvgIoU, lat.P99, miss*100,
			sr.QueueWaitSec(), pipeline.SwapCount(sr.Result))
	}
	fmt.Printf("\nshared loader: %d loads, %d evictions (engines shared across streams are loaded once)\n",
		dml.Stats().Loads, dml.Stats().Evictions)
}
