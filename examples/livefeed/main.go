// Livefeed: SHIFT under a real-time camera that does not wait.
//
// The offline evaluation processes every frame; a deployed system receives
// frames at the camera's pace and must drop what it cannot keep up with.
// This example replays scenario 1 as live feeds at several frame rates and
// shows the trade SHIFT navigates: faster cameras mean more drops but
// fresher detections, and SHIFT's low latency keeps the effective accuracy
// (stale detections scored against the current ground truth) far above a
// single-model GPU deployment at the same rate.
//
//	go run ./examples/livefeed
package main

import (
	"fmt"
	"log"

	"repro/internal/confgraph"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func main() {
	const seed = 1
	base := zoo.Default(seed)
	ch := profile.Characterize(base, scene.ValidationSet(seed, 500))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sc := scene.Scenario1()
	frames := sc.Render(seed)

	fmt.Printf("live replay of %s (%d frames)\n\n", sc.Name, len(frames))
	fmt.Printf("%8s %12s %12s %14s %12s\n", "fps", "processed", "dropped", "effective IoU", "energy (J)")
	for _, fps := range []float64{5, 10, 20, 30} {
		shift, err := pipeline.NewSHIFT(zoo.Default(seed), ch, graph, pipeline.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		live, err := shift.RunLive(sc.Name, frames, 1.0/fps)
		if err != nil {
			log.Fatal(err)
		}
		s := metrics.Summarize(live.Result)
		fmt.Printf("%8.0f %12d %12d %14.3f %12.3f\n",
			fps, len(live.Result.Records), live.Dropped, live.EffectiveIoU, s.AvgEnergyJ)
	}

	fmt.Println("\noffline (process every frame, no deadline):")
	shift, err := pipeline.NewSHIFT(zoo.Default(seed), ch, graph, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := shift.Run(sc.Name, frames)
	if err != nil {
		log.Fatal(err)
	}
	s := metrics.Summarize(res)
	fmt.Printf("%8s %12d %12d %14.3f %12.3f\n", "-", len(res.Records), 0, s.AvgIoU, s.AvgEnergyJ)
}
