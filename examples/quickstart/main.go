// Quickstart: the minimal end-to-end SHIFT run.
//
// It builds the default simulated system (Xavier NX + OAK-D with the
// eight-model zoo), characterizes it offline, constructs the confidence
// graph, and runs context-aware multi-model detection over one synthetic
// drone video, printing the summary a deployment dashboard would show.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/confgraph"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func main() {
	const seed = 1

	// 1. The system under test: simulated platform + model zoo.
	sys := zoo.Default(seed)

	// 2. Offline stage: characterize the zoo on a validation set and build
	// the confidence graph (paper §III-A).
	validation := scene.ValidationSet(seed, 500)
	ch := profile.Characterize(sys, validation)
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confidence graph: %d nodes / %d edges\n", graph.NodeCount(), graph.EdgeCount())

	// 3. Runtime: SHIFT with the paper's Table III configuration.
	shift, err := pipeline.NewSHIFT(sys, ch, graph, pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. A video to chase: scenario 1 (Fig. 3) — the drone crosses multiple
	// backgrounds at varying distance.
	sc := scene.Scenario1()
	frames := sc.Render(seed)
	fmt.Printf("running SHIFT over %s (%d frames)...\n", sc.Name, len(frames))
	result, err := shift.Run(sc.Name, frames)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	s := metrics.Summarize(result)
	fmt.Printf("avg IoU        %.3f\n", s.AvgIoU)
	fmt.Printf("success rate   %.1f%% (IoU >= 0.5)\n", s.SuccessRate*100)
	fmt.Printf("per frame      %.3f s, %.3f J\n", s.AvgTimeSec, s.AvgEnergyJ)
	fmt.Printf("non-GPU frames %.1f%%\n", s.NonGPUFrac*100)
	fmt.Printf("model swaps    %d across %d pairs\n", s.Swaps, int(s.PairsUsed))
	fmt.Printf("loader         %d loads, %d evictions\n",
		shift.LoaderStats().Loads, shift.LoaderStats().Evictions)
}
