// Package accel simulates the heterogeneous compute platform of the paper's
// evaluation: an Nvidia Xavier NX SoC (CPU + GPU + 2×DLA sharing one memory
// pool) plus a Luxonis OAK-D camera accelerator with its own memory.
//
// The physical hardware is replaced by a virtual-time model: executing a
// workload on a processor advances a simulated clock by a jittered latency
// and integrates a jittered power draw into per-processor energy meters.
// Latency and power anchors come from Tables I and IV of the paper, so
// simulated seconds and Joules are directly comparable to the paper's
// columns, while remaining deterministic and machine-independent.
package accel

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
)

// Kind classifies processors; performance tables are keyed by Kind.
type Kind int

// Processor kinds present in the evaluation platform.
const (
	KindCPU Kind = iota
	KindGPU
	KindDLA
	KindOAKD
)

// String returns the kind name as used in report tables.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindGPU:
		return "GPU"
	case KindDLA:
		return "DLA"
	case KindOAKD:
		return "OAK-D"
	default:
		return "?"
	}
}

// Proc is one processor of the platform.
type Proc struct {
	// ID uniquely names the processor instance ("gpu", "dla0", ...).
	ID string
	// Kind selects the performance table row.
	Kind Kind
	// Pool names the memory pool models must be resident in to execute.
	Pool string
	// IdlePowerW is the rail draw when the processor sits idle; charged by
	// the pipeline for wait periods when requested.
	IdlePowerW float64
}

// MemPool is a named memory arena with explicit allocations. GPU and DLAs
// share the SoC pool (as on the Xavier NX); the OAK-D has its own.
type MemPool struct {
	Name     string
	Capacity int64

	used   int64
	allocs map[string]int64
}

// NewMemPool returns an empty pool of the given byte capacity.
func NewMemPool(name string, capacity int64) *MemPool {
	return &MemPool{Name: name, Capacity: capacity, allocs: make(map[string]int64)}
}

// Alloc reserves size bytes under key. It fails if the key is already
// allocated or capacity would be exceeded; the dynamic model loader reacts
// to that failure by evicting.
func (p *MemPool) Alloc(key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("accel: negative allocation %d for %q", size, key)
	}
	if _, ok := p.allocs[key]; ok {
		return fmt.Errorf("accel: %q already allocated in pool %s", key, p.Name)
	}
	if p.used+size > p.Capacity {
		return fmt.Errorf("accel: pool %s full (%d used, %d requested, %d capacity)",
			p.Name, p.used, size, p.Capacity)
	}
	p.allocs[key] = size
	p.used += size
	return nil
}

// Free releases the allocation under key; freeing an absent key is an error
// so loader bookkeeping bugs surface immediately.
func (p *MemPool) Free(key string) error {
	size, ok := p.allocs[key]
	if !ok {
		return fmt.Errorf("accel: %q not allocated in pool %s", key, p.Name)
	}
	delete(p.allocs, key)
	p.used -= size
	return nil
}

// Used returns the allocated byte count.
func (p *MemPool) Used() int64 { return p.used }

// Available returns the free byte count.
func (p *MemPool) Available() int64 { return p.Capacity - p.used }

// Has reports whether key is currently allocated.
func (p *MemPool) Has(key string) bool {
	_, ok := p.allocs[key]
	return ok
}

// Keys returns the allocated keys in deterministic (sorted) order.
func (p *MemPool) Keys() []string {
	keys := make([]string, 0, len(p.allocs))
	for k := range p.allocs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clock is the virtual time source. All latencies in the simulation advance
// this clock; wall-clock time never enters any measurement.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves virtual time forward; negative advances panic, since they
// indicate a harness bug that would corrupt every downstream measurement.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("accel: negative clock advance")
	}
	c.now += d
}

// AdvanceTo moves the clock to t when t is later; earlier times are a no-op.
// The multi-stream event loop completes work out of global order, so the
// clock tracks the horizon — the latest completion seen so far.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Cost is the latency and energy charged for one operation.
type Cost struct {
	Lat    time.Duration
	Energy float64 // Joules
	PowerW float64 // average power over Lat, for reporting
}

// Meter accumulates per-processor usage.
type Meter struct {
	BusyTime map[string]time.Duration
	Energy   map[string]float64
	Execs    map[string]int
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		BusyTime: make(map[string]time.Duration),
		Energy:   make(map[string]float64),
		Execs:    make(map[string]int),
	}
}

// TotalEnergy returns the energy accumulated across all processors.
func (m *Meter) TotalEnergy() float64 {
	var sum float64
	for _, e := range m.Energy {
		sum += e
	}
	return sum
}

// SoC is the simulated platform: processors, memory pools, virtual clock and
// energy meter. It is not safe for concurrent use; the detection pipeline is
// a sequential per-frame loop, as in the paper.
type SoC struct {
	Clock *Clock
	Procs map[string]*Proc
	Pools map[string]*MemPool
	Meter *Meter

	// LatJitter and PowerJitter are relative standard deviations applied to
	// every execution.
	LatJitter   float64
	PowerJitter float64
	// TimeScale multiplies every execution latency before jitter: 1 is the
	// characterized Xavier-NX-class baseline, 2 a half-speed device, 0.5 a
	// double-speed one. The fleet layer uses it to model heterogeneous
	// device capacities from one set of zoo anchors; at the default 1.0 the
	// multiplication is exact and results are bit-identical to a platform
	// without scaling.
	TimeScale float64

	r     *rng.Stream
	dmaR  *rng.Stream
	trace *Trace
	// ctxStream/ctxModel are the attribution labels stamped into trace
	// samples; the serving engine sets them before each charge when a trace
	// is attached (SetExecLabel). Zero values mean unattributed, keeping
	// direct Exec callers' traces unchanged.
	ctxStream string
	ctxModel  string
	// busy tracks each processor's FIFO queue horizon for contention-aware
	// execution (ExecFrom); the plain Exec path does not consult it.
	busy map[string]time.Duration
	// parked marks a powered-down platform: every execution is refused until
	// Unpark. The fleet's autoscaler parks a device after draining it, so a
	// retired device can never silently serve again.
	parked bool
}

// NewSoC assembles a platform from processors and pools, with jitter drawn
// from the stream r.
func NewSoC(procs []*Proc, pools []*MemPool, r *rng.Stream) *SoC {
	s := &SoC{
		Clock:       &Clock{},
		Procs:       make(map[string]*Proc, len(procs)),
		Pools:       make(map[string]*MemPool, len(pools)),
		Meter:       NewMeter(),
		LatJitter:   0.04,
		PowerJitter: 0.03,
		TimeScale:   1,
		r:           r,
		dmaR:        r.Fork("dma"),
		busy:        make(map[string]time.Duration, len(procs)),
	}
	for _, p := range procs {
		s.Procs[p.ID] = p
	}
	for _, p := range pools {
		s.Pools[p.Name] = p
	}
	return s
}

// SetTimeScale replaces the latency multiplier applied to every subsequent
// execution (already-queued work keeps its drawn spans). The fleet layer uses
// it for heterogeneous device capacity and for transient brownouts — latency
// spikes that scale a device's service rate mid-run. Non-positive scales are
// rejected so a malformed fault schedule cannot stop or reverse time.
func (s *SoC) SetTimeScale(scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("accel: non-positive time scale %v", scale)
	}
	s.TimeScale = scale
	return nil
}

// Park powers the platform down: every subsequent Exec/ExecFrom is refused
// until Unpark. Memory pools and meters are left intact — a parked device is
// retired capacity, not a wiped one — so end-of-run accounting (busy time,
// residency leak checks) still reads the device's final state.
func (s *SoC) Park() { s.parked = true }

// Unpark returns a parked platform to service.
func (s *SoC) Unpark() { s.parked = false }

// Parked reports whether the platform is powered down.
func (s *SoC) Parked() bool { return s.parked }

// Proc returns the processor with the given ID.
func (s *SoC) Proc(id string) (*Proc, error) {
	p, ok := s.Procs[id]
	if !ok {
		return nil, fmt.Errorf("accel: unknown processor %q", id)
	}
	return p, nil
}

// PoolOf returns the memory pool backing processor id.
func (s *SoC) PoolOf(id string) (*MemPool, error) {
	p, err := s.Proc(id)
	if err != nil {
		return nil, err
	}
	pool, ok := s.Pools[p.Pool]
	if !ok {
		return nil, fmt.Errorf("accel: processor %q references unknown pool %q", id, p.Pool)
	}
	return pool, nil
}

// Exec simulates running a workload with the given mean latency (seconds)
// and mean power (Watts) on processor procID. The clock advances by the
// jittered latency and the meter accumulates the jittered energy.
func (s *SoC) Exec(procID string, latMean, powerMean float64) (Cost, error) {
	if s.parked {
		return Cost{}, fmt.Errorf("accel: platform is parked")
	}
	if _, err := s.Proc(procID); err != nil {
		return Cost{}, err
	}
	if latMean < 0 || powerMean < 0 {
		return Cost{}, fmt.Errorf("accel: negative workload parameters (%v s, %v W)", latMean, powerMean)
	}
	lat := s.r.Jitter(latMean*s.TimeScale, s.LatJitter)
	pow := s.r.Jitter(powerMean, s.PowerJitter)
	d := time.Duration(lat * float64(time.Second))
	start := s.Clock.Now()
	s.Clock.Advance(d)
	energy := d.Seconds() * pow // use the rounded duration so Energy == Lat·Power exactly
	s.Meter.BusyTime[procID] += d
	s.Meter.Energy[procID] += energy
	s.Meter.Execs[procID]++
	if s.trace != nil {
		s.trace.Samples = append(s.trace.Samples, TraceSample{
			Proc: procID, Stream: s.ctxStream, Model: s.ctxModel,
			Start: start, Dur: d, PowerW: pow,
		})
	}
	return Cost{Lat: d, Energy: energy, PowerW: pow}, nil
}

// Span is one queued execution on a processor's FIFO timeline: when it
// actually started and finished, how long it queued behind earlier work, and
// the cost charged (latency = pure execution, excluding the queueing delay).
type Span struct {
	Start time.Duration
	End   time.Duration
	// Wait is the queueing delay between the caller being ready and the
	// processor becoming free (zero when the processor was idle).
	Wait time.Duration
	Cost Cost
}

// ExecFrom simulates a workload submitted to processor procID at stream time
// ready: the execution starts at the later of ready and the processor's
// queue horizon (FIFO — earlier submissions finish first), runs for the
// jittered latency, and pushes the horizon to its completion. Jitter draws,
// meters and trace samples are identical to Exec; the global clock tracks
// the latest completion instead of accumulating (AdvanceTo). This is the
// contention primitive of the multi-stream serving runtime: concurrent
// streams on one accelerator pay each other's execution latency as Wait.
func (s *SoC) ExecFrom(procID string, ready time.Duration, latMean, powerMean float64) (Span, error) {
	if s.parked {
		return Span{}, fmt.Errorf("accel: platform is parked")
	}
	if _, err := s.Proc(procID); err != nil {
		return Span{}, err
	}
	if latMean < 0 || powerMean < 0 {
		return Span{}, fmt.Errorf("accel: negative workload parameters (%v s, %v W)", latMean, powerMean)
	}
	if ready < 0 {
		return Span{}, fmt.Errorf("accel: negative ready time %v", ready)
	}
	lat := s.r.Jitter(latMean*s.TimeScale, s.LatJitter)
	pow := s.r.Jitter(powerMean, s.PowerJitter)
	d := time.Duration(lat * float64(time.Second))
	start := ready
	if bu := s.busy[procID]; bu > start {
		start = bu
	}
	end := start + d
	s.busy[procID] = end
	s.Clock.AdvanceTo(end)
	energy := d.Seconds() * pow // rounded duration, so Energy == Lat·Power exactly
	s.Meter.BusyTime[procID] += d
	s.Meter.Energy[procID] += energy
	s.Meter.Execs[procID]++
	if s.trace != nil {
		s.trace.Samples = append(s.trace.Samples, TraceSample{
			Proc: procID, Stream: s.ctxStream, Model: s.ctxModel,
			Start: start, Dur: d, PowerW: pow,
		})
	}
	return Span{Start: start, End: end, Wait: start - ready, Cost: Cost{Lat: d, Energy: energy, PowerW: pow}}, nil
}

// BusyUntil returns the processor's FIFO queue horizon: the completion time
// of the last workload queued on it via ExecFrom.
func (s *SoC) BusyUntil(procID string) time.Duration { return s.busy[procID] }

// DMAProcID is the pseudo-processor the copy channel meters and traces
// under. It is not a Proc: deviceStats-style reductions that iterate Procs
// never see it, and ExecFrom refuses it, so compute charging cannot land on
// the copy channel by mistake.
const DMAProcID = "dma"

// CopyFrom simulates an engine-image copy submitted to the SoC's single DMA
// channel at stream time ready: copies serialize FIFO against each other,
// exactly like ExecFrom on a processor, but never occupy compute — this is
// the overlap primitive speculative prefetch rides (a load transfers over
// DMA while the serving processor keeps executing). Jitter draws, metering
// and trace samples mirror ExecFrom under DMAProcID; the demand-load path
// never calls it, so a prefetch-free run's draws are untouched.
func (s *SoC) CopyFrom(ready time.Duration, latMean, powerMean float64) (Span, error) {
	if s.parked {
		return Span{}, fmt.Errorf("accel: platform is parked")
	}
	if latMean < 0 || powerMean < 0 {
		return Span{}, fmt.Errorf("accel: negative copy parameters (%v s, %v W)", latMean, powerMean)
	}
	if ready < 0 {
		return Span{}, fmt.Errorf("accel: negative ready time %v", ready)
	}
	// The DMA channel draws from its own forked stream: copies never touch
	// the compute procs' jitter sequence, so a run with prefetch enabled
	// consumes exactly the demand-path draws of a prefetch-free run (forks
	// do not advance the parent).
	lat := s.dmaR.Jitter(latMean*s.TimeScale, s.LatJitter)
	pow := s.dmaR.Jitter(powerMean, s.PowerJitter)
	d := time.Duration(lat * float64(time.Second))
	start := ready
	if bu := s.busy[DMAProcID]; bu > start {
		start = bu
	}
	end := start + d
	s.busy[DMAProcID] = end
	s.Clock.AdvanceTo(end)
	energy := d.Seconds() * pow // rounded duration, so Energy == Lat·Power exactly
	s.Meter.BusyTime[DMAProcID] += d
	s.Meter.Energy[DMAProcID] += energy
	s.Meter.Execs[DMAProcID]++
	if s.trace != nil {
		s.trace.Samples = append(s.trace.Samples, TraceSample{
			Proc: DMAProcID, Stream: s.ctxStream, Model: s.ctxModel,
			Start: start, Dur: d, PowerW: pow,
		})
	}
	return Span{Start: start, End: end, Wait: start - ready, Cost: Cost{Lat: d, Energy: energy, PowerW: pow}}, nil
}

// TraceAttached reports whether a power trace is recording — callers gate
// SetExecLabel on it so the detached path skips the label writes.
func (s *SoC) TraceAttached() bool { return s.trace != nil }

// SetExecLabel sets the stream/model attribution stamped into subsequent
// trace samples; labels persist until the next call (empty strings clear).
func (s *SoC) SetExecLabel(stream, model string) {
	s.ctxStream, s.ctxModel = stream, model
}

// ProcIDsByKind returns processor IDs of the given kind in sorted order.
func (s *SoC) ProcIDsByKind(k Kind) []string {
	var ids []string
	for id, p := range s.Procs {
		if p.Kind == k {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Platform memory sizing. The Xavier NX exposes 8 GB shared between the OS
// and all engines; after the OS, capture pipeline and runtime are accounted
// for, roughly 2 GB remain for TensorRT engines — small enough that the full
// FP32 zoo does not fit and the dynamic model loader must evict (as the
// paper's Table III swap counts imply). The OAK-D's usable blob storage is
// modelled at 450 MB, fitting both supported models.
const (
	MB          = int64(1) << 20
	SoCPoolMB   = 2048
	OAKDPoolMB  = 450
	SoCPoolName = "soc"
	OAKDPool    = "oakd"
)

// DefaultPlatform builds the paper's evaluation platform: CPU, GPU, two
// DLAs (sharing the SoC pool) and an OAK-D. Idle powers follow the rail
// baselines reported for the Xavier NX and OAK-D.
func DefaultPlatform(r *rng.Stream) *SoC {
	procs := []*Proc{
		{ID: "cpu", Kind: KindCPU, Pool: SoCPoolName, IdlePowerW: 1.5},
		{ID: "gpu", Kind: KindGPU, Pool: SoCPoolName, IdlePowerW: 2.0},
		{ID: "dla0", Kind: KindDLA, Pool: SoCPoolName, IdlePowerW: 0.8},
		{ID: "dla1", Kind: KindDLA, Pool: SoCPoolName, IdlePowerW: 0.8},
		{ID: "oakd", Kind: KindOAKD, Pool: OAKDPool, IdlePowerW: 0.9},
	}
	pools := []*MemPool{
		NewMemPool(SoCPoolName, SoCPoolMB*MB),
		NewMemPool(OAKDPool, OAKDPoolMB*MB),
	}
	return NewSoC(procs, pools, r)
}
