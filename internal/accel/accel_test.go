package accel

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func testSoC() *SoC { return DefaultPlatform(rng.New(1)) }

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindCPU: "CPU", KindGPU: "GPU", KindDLA: "DLA", KindOAKD: "OAK-D", Kind(9): "?"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestDefaultPlatformShape(t *testing.T) {
	s := testSoC()
	if len(s.Procs) != 5 {
		t.Fatalf("platform has %d processors, want 5 (CPU, GPU, 2xDLA, OAK-D)", len(s.Procs))
	}
	if got := s.ProcIDsByKind(KindDLA); len(got) != 2 {
		t.Fatalf("want 2 DLAs, got %v", got)
	}
	// GPU and DLA share the SoC pool, as on the Xavier NX.
	gpuPool, err := s.PoolOf("gpu")
	if err != nil {
		t.Fatal(err)
	}
	dlaPool, err := s.PoolOf("dla0")
	if err != nil {
		t.Fatal(err)
	}
	if gpuPool != dlaPool {
		t.Fatal("GPU and DLA must share the SoC memory pool")
	}
	oakPool, err := s.PoolOf("oakd")
	if err != nil {
		t.Fatal(err)
	}
	if oakPool == gpuPool {
		t.Fatal("OAK-D must have a separate memory pool")
	}
}

func TestUnknownProcessor(t *testing.T) {
	s := testSoC()
	if _, err := s.Proc("npu"); err == nil {
		t.Fatal("unknown processor should error")
	}
	if _, err := s.PoolOf("npu"); err == nil {
		t.Fatal("PoolOf unknown processor should error")
	}
	if _, err := s.Exec("npu", 0.1, 5); err == nil {
		t.Fatal("Exec on unknown processor should error")
	}
}

func TestMemPoolAllocFree(t *testing.T) {
	p := NewMemPool("test", 100)
	if err := p.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 60 || p.Available() != 40 {
		t.Fatalf("used/available = %d/%d", p.Used(), p.Available())
	}
	if err := p.Alloc("b", 50); err == nil {
		t.Fatal("over-capacity alloc should fail")
	}
	if err := p.Alloc("a", 10); err == nil {
		t.Fatal("duplicate alloc should fail")
	}
	if !p.Has("a") || p.Has("b") {
		t.Fatal("Has bookkeeping wrong")
	}
	if err := p.Free("a"); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 0 {
		t.Fatalf("used after free = %d", p.Used())
	}
	if err := p.Free("a"); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestMemPoolNegativeAlloc(t *testing.T) {
	p := NewMemPool("test", 100)
	if err := p.Alloc("a", -1); err == nil {
		t.Fatal("negative alloc should fail")
	}
}

func TestMemPoolKeysSorted(t *testing.T) {
	p := NewMemPool("test", 1000)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := p.Alloc(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zeta" {
		t.Fatalf("Keys() = %v, want sorted", keys)
	}
}

func TestClockAdvance(t *testing.T) {
	c := &Clock{}
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(10 * time.Millisecond)
	if c.Now() != 15*time.Millisecond {
		t.Fatalf("clock at %v, want 15ms", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	(&Clock{}).Advance(-time.Second)
}

func TestExecAdvancesClockAndMeters(t *testing.T) {
	s := testSoC()
	cost, err := s.Exec("gpu", 0.130, 15.14)
	if err != nil {
		t.Fatal(err)
	}
	if s.Clock.Now() != cost.Lat {
		t.Fatalf("clock %v != cost latency %v", s.Clock.Now(), cost.Lat)
	}
	if s.Meter.Execs["gpu"] != 1 {
		t.Fatal("exec count not recorded")
	}
	if s.Meter.Energy["gpu"] != cost.Energy {
		t.Fatal("energy not metered")
	}
	// Jittered values stay near their anchors.
	lat := cost.Lat.Seconds()
	if lat < 0.130*0.7 || lat > 0.130*1.3 {
		t.Fatalf("latency %v too far from anchor 0.130", lat)
	}
	if cost.PowerW < 15.14*0.8 || cost.PowerW > 15.14*1.2 {
		t.Fatalf("power %v too far from anchor 15.14", cost.PowerW)
	}
	if want := lat * cost.PowerW; absDiff(cost.Energy, want) > 1e-9 {
		t.Fatalf("energy %v != lat*power %v", cost.Energy, want)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestExecStatistics(t *testing.T) {
	s := testSoC()
	const n = 2000
	var latSum float64
	for i := 0; i < n; i++ {
		c, err := s.Exec("dla0", 0.118, 5.56)
		if err != nil {
			t.Fatal(err)
		}
		latSum += c.Lat.Seconds()
	}
	mean := latSum / n
	if absDiff(mean, 0.118) > 0.005 {
		t.Fatalf("mean latency %v, want ~0.118", mean)
	}
	if s.Meter.Execs["dla0"] != n {
		t.Fatalf("exec count %d", s.Meter.Execs["dla0"])
	}
	if total := s.Meter.TotalEnergy(); absDiff(total, n*0.118*5.56) > n*0.118*5.56*0.05 {
		t.Fatalf("total energy %v far from expectation", total)
	}
}

func TestExecNegativeParams(t *testing.T) {
	s := testSoC()
	if _, err := s.Exec("gpu", -1, 5); err == nil {
		t.Fatal("negative latency should error")
	}
	if _, err := s.Exec("gpu", 1, -5); err == nil {
		t.Fatal("negative power should error")
	}
}

func TestExecDeterministic(t *testing.T) {
	a, b := DefaultPlatform(rng.New(9)), DefaultPlatform(rng.New(9))
	for i := 0; i < 50; i++ {
		ca, _ := a.Exec("gpu", 0.1, 10)
		cb, _ := b.Exec("gpu", 0.1, 10)
		if ca != cb {
			t.Fatalf("identical platforms diverged at exec %d", i)
		}
	}
}

func TestDLACheaperThanGPU(t *testing.T) {
	// Energy shape from the paper: DLA saves ~2.5-3x energy vs GPU at
	// similar latency for YoloV7.
	s := testSoC()
	var gpuE, dlaE float64
	for i := 0; i < 500; i++ {
		cg, _ := s.Exec("gpu", 0.130, 15.14)
		cd, _ := s.Exec("dla0", 0.118, 5.56)
		gpuE += cg.Energy
		dlaE += cd.Energy
	}
	ratio := gpuE / dlaE
	if ratio < 2 || ratio > 4 {
		t.Fatalf("GPU/DLA energy ratio %v, want ~3 (paper: ~2.5-3x)", ratio)
	}
}

func TestPoolCapacityForcesEviction(t *testing.T) {
	// The SoC pool must NOT fit the whole FP32 zoo, otherwise the dynamic
	// model loader never exercises its eviction path (Table III swap counts
	// would be trivially zero).
	totalZooMB := int64(1100 + 800 + 600 + 100 + 400 + 150 + 120 + 60)
	if SoCPoolMB >= totalZooMB {
		t.Fatalf("SoC pool (%d MB) fits the whole zoo (%d MB); eviction never triggers",
			SoCPoolMB, totalZooMB)
	}
}

// TestTimeScale pins the heterogeneous-capacity contract: TimeScale
// multiplies execution latency before jitter (same draw count, proportional
// durations), and the default 1.0 is bit-identical to an unscaled platform.
func TestTimeScale(t *testing.T) {
	base := testSoC()
	slow := testSoC() // same seed: identical jitter draws
	slow.TimeScale = 2
	for i := 0; i < 50; i++ {
		cb, err := base.Exec("gpu", 0.1, 10)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := slow.Exec("gpu", 0.1, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Identical draws, doubled mean: exactly 2x the float latency. The
		// Duration truncation may differ by a nanosecond, so compare loosely.
		ratio := float64(cs.Lat) / float64(cb.Lat)
		if ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("exec %d: scaled latency ratio %v, want 2", i, ratio)
		}
	}
	// ExecFrom honors the scale too.
	sb, _ := base.ExecFrom("dla0", 0, 0.1, 5)
	ss, _ := slow.ExecFrom("dla0", 0, 0.1, 5)
	if r := float64(ss.Cost.Lat) / float64(sb.Cost.Lat); r < 1.999 || r > 2.001 {
		t.Fatalf("ExecFrom scaled ratio %v, want 2", r)
	}
	// The constructor default is exactly 1, so unscaled platforms stay
	// bit-identical (multiplication by 1.0 is exact); the golden tests pin
	// the actual values.
	if def := testSoC(); def.TimeScale != 1 {
		t.Fatalf("default TimeScale %v, want 1", def.TimeScale)
	}
}

func BenchmarkExec(b *testing.B) {
	s := testSoC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = s.Exec("gpu", 0.1, 10)
	}
}

// TestParkRefusesExecution: a parked platform (a retired fleet device)
// refuses every execution path but keeps its meters and pools readable, and
// Unpark restores service.
func TestParkRefusesExecution(t *testing.T) {
	s := testSoC()
	if s.Parked() {
		t.Fatal("fresh platform parked")
	}
	if _, err := s.Exec("gpu", 0.01, 10); err != nil {
		t.Fatal(err)
	}
	busy := s.Meter.BusyTime["gpu"]
	s.Park()
	if !s.Parked() {
		t.Fatal("Park did not stick")
	}
	if _, err := s.Exec("gpu", 0.01, 10); err == nil {
		t.Fatal("Exec on a parked platform must fail")
	}
	if _, err := s.ExecFrom("gpu", 0, 0.01, 10); err == nil {
		t.Fatal("ExecFrom on a parked platform must fail")
	}
	if s.Meter.BusyTime["gpu"] != busy {
		t.Fatal("refused executions charged the meter")
	}
	// Retired capacity stays auditable: pools and meters remain readable.
	if _, err := s.PoolOf("gpu"); err != nil {
		t.Fatal(err)
	}
	s.Unpark()
	if _, err := s.Exec("gpu", 0.01, 10); err != nil {
		t.Fatal("Unpark did not restore service:", err)
	}
}
