package accel

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// TestCopyFromFIFOSerialization pins the copy channel's queue discipline:
// concurrent copies serialize FIFO against each other on the one DMA
// channel, paying the earlier copy's remaining transfer as Wait, and the
// channel meters its own busy time under DMAProcID.
func TestCopyFromFIFOSerialization(t *testing.T) {
	s := testSoC()
	a, err := s.CopyFrom(0, 1.0, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || a.Wait != 0 {
		t.Fatalf("first copy queued on an idle channel: %+v", a)
	}
	b, err := s.CopyFrom(0, 0.5, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Start != a.End {
		t.Fatalf("second copy starts at %v, want the first's completion %v", b.Start, a.End)
	}
	if b.Wait != a.End {
		t.Fatalf("second copy waited %v, want the full first transfer %v", b.Wait, a.End)
	}
	if got := s.BusyUntil(DMAProcID); got != b.End {
		t.Fatalf("DMA horizon %v, want %v", got, b.End)
	}
	if s.Meter.Execs[DMAProcID] != 2 {
		t.Fatalf("DMA metered %d transfers, want 2", s.Meter.Execs[DMAProcID])
	}
	if s.Meter.BusyTime[DMAProcID] != a.Cost.Lat+b.Cost.Lat {
		t.Fatalf("DMA busy time %v, want %v", s.Meter.BusyTime[DMAProcID], a.Cost.Lat+b.Cost.Lat)
	}
	// A copy submitted after the queue drains starts at its own ready time.
	c, err := s.CopyFrom(b.End+time.Second, 0.1, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != b.End+time.Second || c.Wait != 0 {
		t.Fatalf("post-drain copy queued: %+v", c)
	}
}

// TestCopyFromNeverOccupiesCompute pins the overlap contract: transfers
// move only the DMA horizon — every compute processor's FIFO queue is
// exactly where it was, so a stream keeps executing while its engine loads.
func TestCopyFromNeverOccupiesCompute(t *testing.T) {
	s := testSoC()
	if _, err := s.ExecFrom("gpu", 0, 0.2, 10); err != nil {
		t.Fatal(err)
	}
	horizon := s.BusyUntil("gpu")
	if _, err := s.CopyFrom(0, 2.0, 8.0); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Procs {
		if p.ID == "gpu" {
			continue
		}
		if bu := s.BusyUntil(p.ID); bu != 0 {
			t.Fatalf("copy pushed %s's queue horizon to %v", p.ID, bu)
		}
	}
	if got := s.BusyUntil("gpu"); got != horizon {
		t.Fatalf("copy moved the gpu horizon %v -> %v", horizon, got)
	}
}

// TestCopyFromIsolatedFromComputeDraws pins the RNG discipline behind the
// predictor's no-steering guarantee: the DMA channel draws jitter from its
// own forked stream, so interleaving copies into a run leaves every
// compute-path draw bit-identical to a run that never copies.
func TestCopyFromIsolatedFromComputeDraws(t *testing.T) {
	withCopies := DefaultPlatform(rng.New(7))
	without := DefaultPlatform(rng.New(7))
	var ref []Span
	for i := 0; i < 4; i++ {
		sp, err := without.ExecFrom("gpu", 0, 0.1, 10)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, sp)
	}
	for i := 0; i < 4; i++ {
		if _, err := withCopies.CopyFrom(0, 1.0, 8.0); err != nil {
			t.Fatal(err)
		}
		sp, err := withCopies.ExecFrom("gpu", 0, 0.1, 10)
		if err != nil {
			t.Fatal(err)
		}
		if sp != ref[i] {
			t.Fatalf("exec %d perturbed by interleaved copies:\nwith    %+v\nwithout %+v", i, sp, ref[i])
		}
	}
	// And the copies themselves are deterministic: a same-seed platform
	// replays the same transfer spans.
	replay := DefaultPlatform(rng.New(7))
	first, err := withCopies.CopyFrom(100*time.Second, 0.5, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := replay.CopyFrom(0, 1.0, 8.0); err != nil {
			t.Fatal(err)
		}
	}
	second, err := replay.CopyFrom(100*time.Second, 0.5, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("same-seed DMA draws diverge: %+v vs %+v", first, second)
	}
}

// TestCopyFromRefusals pins the channel's error edges: a parked platform
// refuses transfers, as do negative parameters, and compute charging can
// never land on the pseudo-processor — ExecFrom refuses DMAProcID because
// it is not a Proc.
func TestCopyFromRefusals(t *testing.T) {
	s := testSoC()
	if _, err := s.CopyFrom(0, -1, 8); err == nil {
		t.Fatal("negative copy latency accepted")
	}
	if _, err := s.CopyFrom(0, 1, -8); err == nil {
		t.Fatal("negative copy power accepted")
	}
	if _, err := s.CopyFrom(-time.Second, 1, 8); err == nil {
		t.Fatal("negative ready time accepted")
	}
	if _, err := s.ExecFrom(DMAProcID, 0, 0.1, 10); err == nil {
		t.Fatal("ExecFrom charged compute on the DMA pseudo-processor")
	}
	if _, err := s.Proc(DMAProcID); err == nil {
		t.Fatal("DMA pseudo-processor listed as a Proc")
	}
	s.Park()
	if _, err := s.CopyFrom(0, 1, 8); err == nil {
		t.Fatal("parked platform accepted a copy")
	}
}
