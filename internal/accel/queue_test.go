package accel

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestExecFromQueuesFIFO(t *testing.T) {
	s := testSoC()
	// First submission: processor idle, starts at ready.
	a, err := s.ExecFrom("gpu", 0, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || a.Wait != 0 {
		t.Fatalf("idle processor queued: %+v", a)
	}
	if a.End != a.Start+a.Cost.Lat {
		t.Fatalf("span end %v != start+lat %v", a.End, a.Start+a.Cost.Lat)
	}
	// Second submission ready before the first finishes: it queues.
	b, err := s.ExecFrom("gpu", a.End/2, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Start != a.End {
		t.Fatalf("second span started at %v, want the queue horizon %v", b.Start, a.End)
	}
	if b.Wait != a.End-a.End/2 {
		t.Fatalf("wait %v, want %v", b.Wait, a.End-a.End/2)
	}
	if got := s.BusyUntil("gpu"); got != b.End {
		t.Fatalf("BusyUntil %v, want %v", got, b.End)
	}
	// A different processor is unaffected.
	c, err := s.ExecFrom("dla0", 0, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Wait != 0 {
		t.Fatalf("dla0 queued behind gpu work: %+v", c)
	}
	// The clock tracks the horizon (latest completion).
	if s.Clock.Now() != b.End {
		t.Fatalf("clock %v, want horizon %v", s.Clock.Now(), b.End)
	}
	// Submission after the horizon starts at its ready time.
	d, err := s.ExecFrom("gpu", b.End+time.Second, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != b.End+time.Second || d.Wait != 0 {
		t.Fatalf("late submission misqueued: %+v", d)
	}
}

func TestExecFromValidation(t *testing.T) {
	s := testSoC()
	if _, err := s.ExecFrom("npu", 0, 0.1, 1); err == nil {
		t.Fatal("unknown processor should fail")
	}
	if _, err := s.ExecFrom("gpu", 0, -0.1, 1); err == nil {
		t.Fatal("negative latency should fail")
	}
	if _, err := s.ExecFrom("gpu", -time.Second, 0.1, 1); err == nil {
		t.Fatal("negative ready time should fail")
	}
}

// TestExecFromDrawsMatchExec pins that ExecFrom consumes jitter exactly like
// Exec: the same stream position yields the same cost, so a single-stream
// serve replays a solo run bit for bit.
func TestExecFromDrawsMatchExec(t *testing.T) {
	a := DefaultPlatform(rng.New(7))
	b := DefaultPlatform(rng.New(7))
	for i := 0; i < 20; i++ {
		ca, err := a.Exec("gpu", 0.05, 12)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.ExecFrom("gpu", sbReady(b), 0.05, 12)
		if err != nil {
			t.Fatal(err)
		}
		if ca != sb.Cost {
			t.Fatalf("draw %d: Exec cost %+v != ExecFrom cost %+v", i, ca, sb.Cost)
		}
	}
}

// sbReady submits at the queue horizon, mimicking a lone sequential stream.
func sbReady(s *SoC) time.Duration { return s.BusyUntil("gpu") }

func TestClockAdvanceTo(t *testing.T) {
	c := &Clock{}
	c.AdvanceTo(3 * time.Second)
	if c.Now() != 3*time.Second {
		t.Fatalf("clock %v", c.Now())
	}
	// Earlier targets are a no-op, not a rewind.
	c.AdvanceTo(time.Second)
	if c.Now() != 3*time.Second {
		t.Fatalf("AdvanceTo rewound the clock to %v", c.Now())
	}
}

func TestExecFromMetersAndTrace(t *testing.T) {
	s := testSoC()
	trace := s.AttachTrace()
	sp, err := s.ExecFrom("gpu", time.Second, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Meter.Execs["gpu"] != 1 || s.Meter.BusyTime["gpu"] != sp.Cost.Lat {
		t.Fatal("meter not charged")
	}
	if len(trace.Samples) != 1 || trace.Samples[0].Start != sp.Start {
		t.Fatalf("trace sample missing or misplaced: %+v", trace.Samples)
	}
}
