package accel

import (
	"fmt"
	"sort"
	"time"
)

// TraceSample is one execution interval on one processor, as a power-rail
// monitor would record it: who drew how much power, when, for how long —
// plus the stream and model attribution labels the serving engine stamps
// via SoC.SetExecLabel. Samples recorded through the plain solo path carry
// zero-value labels, keeping pre-attribution traces and their summaries
// byte-identical.
type TraceSample struct {
	Proc   string
	Stream string
	Model  string
	Start  time.Duration
	Dur    time.Duration
	PowerW float64
}

// EnergyJ returns the sample's energy.
func (s TraceSample) EnergyJ() float64 { return s.Dur.Seconds() * s.PowerW }

// Trace records execution intervals for post-hoc rail analysis — the
// simulated counterpart of the INA-based rail monitoring used on the Xavier
// NX. Attach with SoC.AttachTrace; recording costs one append per Exec.
type Trace struct {
	Samples []TraceSample
}

// AttachTrace starts recording all subsequent executions into a new Trace.
func (s *SoC) AttachTrace() *Trace {
	t := &Trace{}
	s.trace = t
	return t
}

// DetachTrace stops recording.
func (s *SoC) DetachTrace() { s.trace = nil }

// RailSummary aggregates a trace per processor.
type RailSummary struct {
	Proc     string
	Busy     time.Duration
	EnergyJ  float64
	AvgPower float64 // energy / busy time
	Samples  int
}

// Rails summarizes the trace per processor, sorted by processor ID.
func (t *Trace) Rails() []RailSummary {
	agg := map[string]*RailSummary{}
	for _, s := range t.Samples {
		r, ok := agg[s.Proc]
		if !ok {
			r = &RailSummary{Proc: s.Proc}
			agg[s.Proc] = r
		}
		r.Busy += s.Dur
		r.EnergyJ += s.EnergyJ()
		r.Samples++
	}
	out := make([]RailSummary, 0, len(agg))
	for _, r := range agg {
		if r.Busy > 0 {
			r.AvgPower = r.EnergyJ / r.Busy.Seconds()
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}

// StreamRail aggregates a trace per (stream, processor) — the per-stream
// energy view rail monitoring alone cannot give on real hardware, unlocked
// by the exec labels. Unlabeled samples group under the empty stream.
type StreamRail struct {
	Stream   string
	Proc     string
	Busy     time.Duration
	EnergyJ  float64
	AvgPower float64
	Samples  int
}

// StreamRails summarizes the trace per (stream, processor), sorted by
// stream then processor ID.
func (t *Trace) StreamRails() []StreamRail {
	type key struct{ stream, proc string }
	agg := map[key]*StreamRail{}
	for _, s := range t.Samples {
		k := key{s.Stream, s.Proc}
		r, ok := agg[k]
		if !ok {
			r = &StreamRail{Stream: s.Stream, Proc: s.Proc}
			agg[k] = r
		}
		r.Busy += s.Dur
		r.EnergyJ += s.EnergyJ()
		r.Samples++
	}
	out := make([]StreamRail, 0, len(agg))
	for _, r := range agg {
		if r.Busy > 0 {
			r.AvgPower = r.EnergyJ / r.Busy.Seconds()
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// StreamEnergy returns one stream's total energy across rails.
func (t *Trace) StreamEnergy(stream string) float64 {
	var sum float64
	for _, s := range t.Samples {
		if s.Stream == stream {
			sum += s.EnergyJ()
		}
	}
	return sum
}

// PowerAt returns the total instantaneous power draw across rails at virtual
// time ts (0 between executions — idle draw is not part of exec traces).
func (t *Trace) PowerAt(ts time.Duration) float64 {
	var total float64
	for _, s := range t.Samples {
		if ts >= s.Start && ts < s.Start+s.Dur {
			total += s.PowerW
		}
	}
	return total
}

// Series resamples the trace's total power draw into n buckets spanning
// [0, end), returning average Watts per bucket — what a rail plot shows.
func (t *Trace) Series(end time.Duration, n int) ([]float64, error) {
	if n <= 0 || end <= 0 {
		return nil, fmt.Errorf("accel: invalid series request (n=%d end=%v)", n, end)
	}
	out := make([]float64, n)
	bucket := end / time.Duration(n)
	if bucket <= 0 {
		return nil, fmt.Errorf("accel: series bucket underflow (end=%v n=%d)", end, n)
	}
	for _, s := range t.Samples {
		// Distribute the sample's energy over the buckets it overlaps.
		first := int(s.Start / bucket)
		last := int((s.Start + s.Dur - 1) / bucket)
		for b := first; b <= last && b < n; b++ {
			if b < 0 {
				continue
			}
			bStart := time.Duration(b) * bucket
			bEnd := bStart + bucket
			ovStart := maxDur(bStart, s.Start)
			ovEnd := minDur(bEnd, s.Start+s.Dur)
			if ovEnd <= ovStart {
				continue
			}
			out[b] += s.PowerW * (ovEnd - ovStart).Seconds() / bucket.Seconds()
		}
	}
	return out, nil
}

// TotalEnergy returns the trace's energy across all rails.
func (t *Trace) TotalEnergy() float64 {
	var sum float64
	for _, s := range t.Samples {
		sum += s.EnergyJ()
	}
	return sum
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
