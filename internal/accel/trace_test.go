package accel

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestTraceRecordsExecs(t *testing.T) {
	s := DefaultPlatform(rng.New(1))
	tr := s.AttachTrace()
	for i := 0; i < 5; i++ {
		if _, err := s.Exec("gpu", 0.1, 10); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Samples) != 5 {
		t.Fatalf("recorded %d samples, want 5", len(tr.Samples))
	}
	// Samples tile the virtual timeline without gaps (back-to-back execs).
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].Start != tr.Samples[i-1].Start+tr.Samples[i-1].Dur {
			t.Fatalf("sample %d not contiguous", i)
		}
	}
	s.DetachTrace()
	if _, err := s.Exec("gpu", 0.1, 10); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 5 {
		t.Fatal("DetachTrace did not stop recording")
	}
}

func TestTraceEnergyMatchesMeter(t *testing.T) {
	s := DefaultPlatform(rng.New(2))
	tr := s.AttachTrace()
	for i := 0; i < 20; i++ {
		if _, err := s.Exec("dla0", 0.05, 5.5); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("gpu", 0.02, 12); err != nil {
			t.Fatal(err)
		}
	}
	if diff := math.Abs(tr.TotalEnergy() - s.Meter.TotalEnergy()); diff > 1e-9 {
		t.Fatalf("trace energy %v != meter energy %v", tr.TotalEnergy(), s.Meter.TotalEnergy())
	}
}

func TestRailsSummary(t *testing.T) {
	s := DefaultPlatform(rng.New(3))
	tr := s.AttachTrace()
	for i := 0; i < 10; i++ {
		_, _ = s.Exec("gpu", 0.1, 15)
		_, _ = s.Exec("dla0", 0.1, 5.5)
	}
	rails := tr.Rails()
	if len(rails) != 2 {
		t.Fatalf("%d rails, want 2", len(rails))
	}
	// Sorted by proc ID: dla0 before gpu.
	if rails[0].Proc != "dla0" || rails[1].Proc != "gpu" {
		t.Fatalf("rail order: %v %v", rails[0].Proc, rails[1].Proc)
	}
	if rails[0].Samples != 10 || rails[1].Samples != 10 {
		t.Fatal("sample counts wrong")
	}
	// Average power near anchors.
	if math.Abs(rails[1].AvgPower-15) > 1.5 {
		t.Fatalf("gpu avg power %v", rails[1].AvgPower)
	}
	if rails[0].AvgPower >= rails[1].AvgPower {
		t.Fatal("DLA rail should draw less than GPU rail")
	}
}

func TestPowerAt(t *testing.T) {
	tr := &Trace{Samples: []TraceSample{
		{Proc: "gpu", Start: 0, Dur: time.Second, PowerW: 10},
		{Proc: "dla0", Start: 500 * time.Millisecond, Dur: time.Second, PowerW: 5},
	}}
	if p := tr.PowerAt(250 * time.Millisecond); p != 10 {
		t.Fatalf("PowerAt(0.25s) = %v, want 10", p)
	}
	if p := tr.PowerAt(750 * time.Millisecond); p != 15 {
		t.Fatalf("PowerAt(0.75s) = %v, want 15 (overlap)", p)
	}
	if p := tr.PowerAt(1200 * time.Millisecond); p != 5 {
		t.Fatalf("PowerAt(1.2s) = %v, want 5", p)
	}
	if p := tr.PowerAt(3 * time.Second); p != 0 {
		t.Fatalf("PowerAt(3s) = %v, want 0", p)
	}
}

func TestSeriesConservesEnergy(t *testing.T) {
	tr := &Trace{Samples: []TraceSample{
		{Proc: "gpu", Start: 0, Dur: time.Second, PowerW: 10},
		{Proc: "gpu", Start: 2 * time.Second, Dur: time.Second, PowerW: 20},
	}}
	series, err := tr.Series(4*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate: sum(watts per bucket * bucket seconds) == total energy.
	bucketSec := 0.5
	var integral float64
	for _, w := range series {
		integral += w * bucketSec
	}
	if math.Abs(integral-tr.TotalEnergy()) > 1e-9 {
		t.Fatalf("series integral %v != energy %v", integral, tr.TotalEnergy())
	}
	// The idle gap (1s-2s) must read zero.
	if series[2] != 0 || series[3] != 0 {
		t.Fatalf("idle buckets non-zero: %v", series)
	}
}

func TestSeriesValidation(t *testing.T) {
	tr := &Trace{}
	if _, err := tr.Series(0, 4); err == nil {
		t.Fatal("zero end should fail")
	}
	if _, err := tr.Series(time.Second, 0); err == nil {
		t.Fatal("zero buckets should fail")
	}
}

func TestSampleEnergy(t *testing.T) {
	s := TraceSample{Dur: 2 * time.Second, PowerW: 3}
	if s.EnergyJ() != 6 {
		t.Fatalf("EnergyJ = %v", s.EnergyJ())
	}
}

// TestStreamRailsAttribution drives the exec-label path: samples executed
// under a label aggregate per (stream, processor), unlabeled samples keep
// zero-value labels (so pre-attribution traces are byte-identical), and
// labels persist across execs until explicitly cleared.
func TestStreamRailsAttribution(t *testing.T) {
	s := DefaultPlatform(rng.New(4))
	if s.TraceAttached() {
		t.Fatal("trace attached before AttachTrace")
	}
	tr := s.AttachTrace()
	if !s.TraceAttached() {
		t.Fatal("TraceAttached false after AttachTrace")
	}
	if _, err := s.Exec("gpu", 0.1, 10); err != nil { // unlabeled
		t.Fatal(err)
	}
	s.SetExecLabel("cam1", "yolov7")
	for i := 0; i < 2; i++ {
		if _, err := s.Exec("gpu", 0.1, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("dla0", 0.05, 5); err != nil { // label persists
		t.Fatal(err)
	}
	s.SetExecLabel("cam2", "ssd")
	if _, err := s.Exec("gpu", 0.1, 10); err != nil {
		t.Fatal(err)
	}
	s.SetExecLabel("", "")
	if _, err := s.Exec("gpu", 0.1, 10); err != nil { // cleared
		t.Fatal(err)
	}
	if tr.Samples[0].Stream != "" || tr.Samples[0].Model != "" {
		t.Fatalf("unlabeled sample carries labels: %+v", tr.Samples[0])
	}
	if got := tr.Samples[3]; got.Stream != "cam1" || got.Model != "yolov7" || got.Proc != "dla0" {
		t.Fatalf("label did not persist across execs: %+v", got)
	}
	if got := tr.Samples[len(tr.Samples)-1]; got.Stream != "" || got.Model != "" {
		t.Fatalf("clearing labels failed: %+v", got)
	}
	rails := tr.StreamRails()
	var keys []string
	for _, r := range rails {
		keys = append(keys, r.Stream+"/"+r.Proc)
	}
	want := []string{"/gpu", "cam1/dla0", "cam1/gpu", "cam2/gpu"}
	if len(keys) != len(want) {
		t.Fatalf("stream rails %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("stream rails %v, want %v (sorted stream then proc)", keys, want)
		}
	}
	// Per-stream energy equals the sum of that stream's rails, and the
	// stream-rail total conserves the per-processor rail total.
	var streamTotal, railTotal float64
	for _, r := range rails {
		streamTotal += r.EnergyJ
		if r.AvgPower <= 0 || r.Samples == 0 || r.Busy <= 0 {
			t.Fatalf("degenerate rail %+v", r)
		}
	}
	for _, r := range tr.Rails() {
		railTotal += r.EnergyJ
	}
	if math.Abs(streamTotal-railTotal) > 1e-9 {
		t.Fatalf("stream rails %v J != proc rails %v J", streamTotal, railTotal)
	}
	var cam1 float64
	for _, r := range rails {
		if r.Stream == "cam1" {
			cam1 += r.EnergyJ
		}
	}
	if got := tr.StreamEnergy("cam1"); math.Abs(got-cam1) > 1e-12 {
		t.Fatalf("StreamEnergy(cam1) %v != rail sum %v", got, cam1)
	}
	if tr.StreamEnergy("nope") != 0 {
		t.Fatal("unknown stream has non-zero energy")
	}
}
