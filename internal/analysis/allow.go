package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the annotation marker. The grammar is
//
//	//detlint:allow <analyzer> <reason...>
//
// placed either on the same line as the finding or on the line immediately
// above it. The analyzer name must be one of the suite's; the reason is
// mandatory free text explaining why wall-clock (or whichever invariant)
// is legal at this one site. cmd/detlint -inventory lists every site, and
// the inventory golden test pins the list so new suppressions require a
// deliberate golden update.
const allowPrefix = "//detlint:allow"

// AllowSite is one parsed //detlint:allow annotation.
type AllowSite struct {
	Pos      token.Position
	Analyzer string
	Reason   string

	used bool
}

// allowIndex indexes a package's annotations by file and line for
// suppression matching.
type allowIndex struct {
	byFileLine map[string]map[int][]*AllowSite
	sites      []*AllowSite
}

// match returns the annotation covering a diagnostic at pos for the named
// analyzer: one on the same line, or on the line directly above.
func (ix *allowIndex) match(pos token.Position, analyzer string) *AllowSite {
	lines := ix.byFileLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, s := range lines[line] {
			if s.Analyzer == analyzer {
				return s
			}
		}
	}
	return nil
}

// collectAllows parses every //detlint:allow annotation in files. Malformed
// annotations (unknown analyzer, missing reason) are returned as
// diagnostics of the pseudo-analyzer "annotation"; they cannot be
// suppressed, so a typoed escape hatch fails the build instead of silently
// allowing everything or nothing.
func collectAllows(fset *token.FileSet, files []*ast.File) (*allowIndex, []Diagnostic) {
	ix := &allowIndex{byFileLine: map[string]map[int][]*AllowSite{}}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //detlint:allowed — not ours.
					continue
				}
				// A nested "// ..." (the analysistest want marker, or an
				// unrelated trailing remark) is not part of the annotation.
				rest, _, _ = strings.Cut(rest, " //")
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "annotation",
						Message: "malformed //detlint:allow: missing analyzer name"})
					continue
				case ByName(name) == nil:
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "annotation",
						Message: "malformed //detlint:allow: unknown analyzer " + quote(name)})
					continue
				case reason == "":
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "annotation",
						Message: "malformed //detlint:allow " + name + ": a reason is required"})
					continue
				}
				site := &AllowSite{Pos: pos, Analyzer: name, Reason: reason}
				ix.sites = append(ix.sites, site)
				lines := ix.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*AllowSite{}
					ix.byFileLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], site)
			}
		}
	}
	return ix, diags
}

func quote(s string) string { return "\"" + s + "\"" }

// Inventory lists every //detlint:allow site in the given packages, sorted
// by file then line. It is the data behind cmd/detlint -inventory and the
// golden test that pins the repository's suppression set.
func Inventory(pkgs []*Package) []AllowSite {
	var out []AllowSite
	for _, pkg := range pkgs {
		ix, _ := collectAllows(pkg.Fset, pkg.Files)
		for _, s := range ix.sites {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
