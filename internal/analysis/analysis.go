// Package analysis is detlint: a static-analysis suite that enforces the
// simulator's bit-identity invariants at build time.
//
// Every PR since the seed has defended one property — simulated decisions are
// bit-identical across seeds, region counts, device shuffles and
// crash/recover cycles — but until now the enforcement was entirely dynamic
// (fuzz corpora, equivalence oracles, stale-cache panic flags). A single
// stray time.Now, global math/rand draw, unsorted map iteration feeding an
// encoder, or raw go statement can silently break determinism until a fuzzer
// happens to catch it. The analyzers here move those invariants into the
// compiler-adjacent layer so they are checked on every build of every
// package, not just on the paths a test exercises.
//
// The suite (see DESIGN.md §15 for the catalog and annotation grammar):
//
//   - wallclock: no time.Now / time.Since / time.Sleep outside explicitly
//     annotated wall-clock measurement sites — simulation runs on the
//     virtual clock only.
//   - globalrand: no math/rand or math/rand/v2 outside internal/rng; all
//     randomness flows through seeded rng.Stream forks.
//   - maporder: no range over a map whose body feeds an order-sensitive
//     sink (slice append, encoder/writer, channel send, par fan-out) —
//     the pattern behind shuffle-invariance bugs.
//   - goroutine: no raw go statements or sync.WaitGroup fan-out outside
//     internal/par and internal/distrib — parallelism flows through the
//     pool so region-sharding replay order stays deterministic.
//   - forkshare: no rng.Stream captured by a closure passed to a par
//     fan-out without deriving a per-task stream via Fork/Clone first.
//
// Findings are suppressed site-by-site with a //detlint:allow annotation
// (see allow.go); cmd/detlint runs the suite standalone, as a go vet
// -vettool, and in -inventory mode listing every suppression with its
// reason.
//
// The framework deliberately mirrors the shape of golang.org/x/tools
// go/analysis (Analyzer, Pass, Diagnostic, an analysistest harness) but is
// built on the standard library's go/ast, go/parser, go/types and
// go/importer only, so the repository keeps its zero-dependency footprint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one determinism invariant and how to check it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check on one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information through one
// analyzer's Run. A fresh Pass is built per (package, analyzer) pair.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files. detlint checks shipped
	// simulation code; test files exercise wall-clock timeouts and
	// scratch goroutines legitimately and are excluded by contract.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is set by the driver when a matching //detlint:allow
	// annotation covers the finding's line.
	Suppressed bool
	// Reason is the suppressing annotation's reason, when Suppressed.
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full determinism suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalrandAnalyzer,
		MaporderAnalyzer,
		GoroutineAnalyzer,
		ForkshareAnalyzer,
	}
}

// ByName resolves an analyzer name, for validating annotations.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs every analyzer in suite over one loaded package, applies
// //detlint:allow suppressions, and returns all diagnostics (including
// suppressed ones, so callers can audit annotation use) sorted by position.
// Malformed annotations surface as non-suppressible diagnostics of the
// pseudo-analyzer "annotation".
func RunPackage(pkg *Package, suite []*Analyzer) ([]Diagnostic, error) {
	allows, annDiags := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, annDiags...)
	for _, a := range suite {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diagnostics {
			if site := allows.match(d.Pos, a.Name); site != nil {
				d.Suppressed = true
				d.Reason = site.Reason
				site.used = true
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pkgPathHasSuffix reports whether path is pkg or ends with "/"+pkg —
// the analyzers exempt packages by role (internal/rng, internal/par,
// internal/distrib) rather than by module path, so testdata packages can
// model those roles under synthetic import paths.
func pkgPathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// packageName resolves sel's qualifier to an imported package, or nil.
func packageName(info *types.Info, sel *ast.SelectorExpr) *types.PkgName {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// isPkgFunc reports whether call invokes the named function of the package
// with the given import-path suffix (e.g. par.ForEach for "internal/par").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pn := packageName(info, sel)
	if pn == nil || !pkgPathHasSuffix(pn.Imported().Path(), pkgSuffix) {
		return "", false
	}
	if len(names) == 0 {
		return sel.Sel.Name, true
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}
