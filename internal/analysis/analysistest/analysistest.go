// Package analysistest runs a detlint analyzer over packages under a
// testdata/src tree and checks its diagnostics against expectations
// embedded in the source as comments, mirroring the x/tools harness of the
// same name on the standard library only.
//
// Expectation grammar, anchored to the comment's line:
//
//	// want `regexp` `regexp2`           diagnostics reported at this line
//	// want-suppressed `regexp`          a diagnostic reported here but
//	                                     suppressed by //detlint:allow
//
// Every diagnostic must be matched by exactly one expectation and vice
// versa; want-suppressed makes annotation tests non-vacuous by asserting
// the analyzer still sees the site rather than missing it. Regexps may be
// back-quoted or double-quoted.
//
// Package import paths under testdata/src resolve there first, then fall
// back to the enclosing module (so testdata can import the real
// repro/internal/par and repro/internal/rng) and finally the standard
// library.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package path from testdata/src and applies the analyzer,
// reporting mismatches between diagnostics and want expectations as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.Overlay = []string{filepath.Join(testdata, "src")}
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loader.LoadDir(path, dir)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: typecheck: %v", path, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// expectation is one want/want-suppressed marker.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects, err := parseExpectations(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, d := range diags {
		if !match(expects, d) {
			kind := "diagnostic"
			if d.Suppressed {
				kind = "suppressed diagnostic"
			}
			t.Errorf("%s: unexpected %s: [%s] %s", posString(d), kind, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			kind := "want"
			if e.suppressed {
				kind = "want-suppressed"
			}
			t.Errorf("%s:%d: no diagnostic matched %s %q", e.file, e.line, kind, e.re)
		}
	}
}

func match(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.suppressed != d.Suppressed {
			continue
		}
		if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func posString(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}

// parseExpectations scans every comment in the package for want markers.
func parseExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				exps, err := parseComment(c.Text, pos.Filename, pos.Line)
				if err != nil {
					return nil, err
				}
				out = append(out, exps...)
			}
		}
	}
	return out, nil
}

var wantMarker = regexp.MustCompile(`\bwant(-suppressed)?\s`)

func parseComment(text, file string, line int) ([]*expectation, error) {
	loc := wantMarker.FindStringSubmatchIndex(text)
	if loc == nil {
		return nil, nil
	}
	suppressed := loc[2] >= 0
	rest := text[loc[1]:]
	var out []*expectation
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			break
		}
		var pat string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated back-quoted want pattern", file, line)
			}
			pat = rest[1 : 1+end]
			rest = rest[2+end:]
		case '"':
			// Re-use Go string syntax for escaped patterns.
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad quoted want pattern: %v", file, line, err)
			}
			pat, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad quoted want pattern: %v", file, line, err)
			}
			rest = rest[len(q):]
		default:
			// End of patterns (trailing prose is tolerated).
			rest = ""
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, line, pat, err)
		}
		out = append(out, &expectation{file: file, line: line, re: re, suppressed: suppressed})
	}
	// A bare "want" with no quoted pattern is prose, not a marker.
	return out, nil
}

// WriteInventoryGolden is a test helper: it renders allow sites the same
// way cmd/detlint -inventory does, for golden comparison.
func WriteInventoryGolden(root string, sites []analysis.AllowSite) string {
	var b strings.Builder
	for _, s := range sites {
		name := s.Pos.Filename
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			name = filepath.ToSlash(r)
		}
		fmt.Fprintf(&b, "%s:%d\t%s\t%s\n", name, s.Pos.Line, s.Analyzer, s.Reason)
	}
	return b.String()
}

// ReadFileOrEmpty returns the file's contents, or "" when absent — used by
// golden tests that regenerate with -update.
func ReadFileOrEmpty(path string) string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return string(raw)
}
