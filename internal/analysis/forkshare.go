package analysis

import (
	"go/ast"
	"go/types"
)

// ForkshareAnalyzer flags an rng.Stream captured by a closure passed to a
// par fan-out without a Fork. A Stream's draw methods mutate its state, so
// two pool workers sharing one captured stream interleave their draws
// nondeterministically — the exact bug class the plan-then-fan-out
// discipline exists to prevent. Inside the closure a captured stream may
// only be used as the receiver of Fork, Fork2Into or Clone (all of which
// derive an independent child without consuming parent state); any draw,
// reseed or escape of the shared stream is flagged. The fix is to derive
// per-task streams during the sequential planning pass, or to call
// parent.Fork with a per-index label inside the worker.
var ForkshareAnalyzer = &Analyzer{
	Name: "forkshare",
	Doc: "flag rng.Stream values captured by closures passed to par " +
		"fan-outs and used without Fork/Clone: shared draws interleave " +
		"nondeterministically across workers",
	Run: runForkshare,
}

// forkSafeMethods may be called on a captured stream inside a pool worker:
// they derive children deterministically (keyed by label or by current
// position) without advancing the parent.
var forkSafeMethods = map[string]bool{"Fork": true, "Fork2Into": true, "Clone": true}

func runForkshare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isPkgFunc(pass.Info, call, "internal/par"); !ok {
				return true
			}
			for _, arg := range call.Args {
				fl, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkCapturedStreams(pass, fl)
			}
			return true
		})
	}
	return nil
}

// checkCapturedStreams reports each rng.Stream variable declared outside
// fl but drawn from (or escaped) inside it.
func checkCapturedStreams(pass *Pass, fl *ast.FuncLit) {
	// Receivers of fork-safe calls are exempt occurrences.
	safe := map[*ast.Ident]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && forkSafeMethods[sel.Sel.Name] && isRngStream(pass.Info.ObjectOf(id)) {
			safe[id] = true
		}
		return true
	})

	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || safe[id] {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || reported[obj] || !isRngStream(obj) {
			return true
		}
		if within(obj.Pos(), fl) {
			return true // declared inside the worker: task-local stream
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"rng.Stream %q captured by closure passed to par fan-out without a Fork; derive a per-task stream (parent.Fork with a per-index label, or Clone during planning) instead of sharing draws",
			id.Name)
		return true
	})
}

// isRngStream reports whether obj is a variable of type rng.Stream or
// *rng.Stream (matched by package-path suffix so testdata can model the
// role).
func isRngStream(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Stream" && tn.Pkg() != nil && pkgPathHasSuffix(tn.Pkg().Path(), "internal/rng")
}
