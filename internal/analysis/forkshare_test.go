package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestForkshare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ForkshareAnalyzer,
		"forkshare/a")
}
