package analysis

import "strconv"

// GlobalrandAnalyzer flags imports of math/rand and math/rand/v2 outside
// internal/rng. The global generators (and even locally constructed
// rand.New sources) sit outside the experiment's seed tree: a draw from
// them is invisible to the fork-label discipline that makes every stream's
// consumption auditable, and the v1 global is additionally racy under the
// region-sharded loop. All randomness must come from a seeded rng.Stream
// fork (rng.New / Stream.Fork), so the one package allowed to touch the
// standard generators — internal/rng, if it ever wraps them — is exempt by
// import-path suffix.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "flag math/rand and math/rand/v2 outside internal/rng: randomness " +
		"must flow through seeded rng.Stream forks",
	Run: runGlobalrand,
}

func runGlobalrand(pass *Pass) error {
	if pkgPathHasSuffix(pass.Pkg.Path(), "internal/rng") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %q outside internal/rng; draw from a seeded rng.Stream fork instead",
					path)
			}
		}
	}
	return nil
}
