package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.GlobalrandAnalyzer,
		"globalrand/a", "globalrand/x/internal/rng")
}
