package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer flags raw go statements and sync.WaitGroup fan-out
// outside internal/par and internal/distrib. The simulator's parallelism
// discipline is plan-then-fan-out through the par pool: a sequential
// planning pass fixes all stateful inputs, then pure computations write to
// disjoint pre-sized slots, which is what keeps parallel runs bitwise
// identical to sequential ones and region-sharded replay order
// deterministic. An ad-hoc goroutine bypasses that discipline; internal/par
// owns the only worker loops, and internal/distrib legitimately pumps real
// OS pipes to worker processes.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc: "flag go statements and sync.WaitGroup outside internal/par and " +
		"internal/distrib: parallelism must flow through the pool",
	Run: runGoroutine,
}

func runGoroutine(pass *Pass) error {
	path := pass.Pkg.Path()
	if pkgPathHasSuffix(path, "internal/par") || pkgPathHasSuffix(path, "internal/distrib") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw go statement outside internal/par and internal/distrib; fan out through the par pool so replay order stays deterministic")
			case *ast.Ident:
				// Flag declarations whose type is (a pointer to)
				// sync.WaitGroup: vars, params, struct fields.
				obj, ok := pass.Info.Defs[n]
				if !ok || obj == nil {
					return true
				}
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				if isSyncWaitGroup(obj.Type()) {
					pass.Reportf(n.Pos(),
						"sync.WaitGroup fan-out outside internal/par and internal/distrib; fan out through the par pool so replay order stays deterministic")
				}
			}
			return true
		})
	}
	return nil
}

func isSyncWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
