package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoroutine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.GoroutineAnalyzer,
		"goroutine/a", "goroutine/x/internal/par", "goroutine/x/internal/distrib")
}
