package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/fleet", or a
	// synthetic path for analysistest testdata).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints. Analysis proceeds on
	// partial information; callers decide whether errors are fatal
	// (analysistest) or reportable (cmd/detlint).
	TypeErrors []error
}

// Loader loads and type-checks packages from source, with no dependency on
// export data or the go command. Import paths resolve, in order, through
// Overlay roots (analysistest testdata), the module mapping, and finally
// the standard library via go/importer's source compiler. One Loader
// memoizes every package it touches, so repeated loads (the whole-repo
// sweep, the meta-test) type-check shared dependencies once.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot/ModulePath map module-relative import paths onto
	// directories: ModulePath+"/x/y" loads from ModuleRoot/x/y.
	ModuleRoot string
	ModulePath string
	// Overlay maps extra root directories tried before the module: an
	// import path p resolves to dir/p for the first dir where that
	// exists. analysistest points one at its testdata/src tree.
	Overlay []string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a Loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// resolveDir maps an import path to a source directory, or "" when the
// path is not ours (i.e. standard library).
func (l *Loader) resolveDir(path string) string {
	for _, root := range l.Overlay {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom, routing module and overlay
// paths to the source loader and everything else to the stdlib importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.resolveDir(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return pkg.Types, fmt.Errorf("analysis: %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// LoadDir loads the package in dir under the given import path.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// go/build applies build-tag and platform file filtering; detlint
	// analyzes the same file set the compiler would build here.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads every package under the module root (the "./..." set),
// skipping testdata and hidden directories, sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			// Directories holding only test files (or files excluded by
			// build tags) are not packages of the shipped build.
			var nogo *build.NoGoError
			if errors.As(err, &nogo) {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
