package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer flags range statements over maps whose body feeds an
// order-sensitive sink: appending to a slice that outlives the loop,
// writing to an encoder/writer (journal entries, span streams, report
// text), sending on a channel, or fanning work out through internal/par.
// Go randomizes map iteration order per run, so any of these turns into
// the classic shuffle-invariance bug: output that differs between two runs
// of the same seed.
//
// The idiomatic fix is sorted-key iteration — collect the keys, sort, then
// range over the slice — and the analyzer recognizes that idiom: an append
// whose slice is later passed to sort.* or slices.* in the same function
// is not flagged. Deliberately order-insensitive bodies (pure counting,
// building another map, commutative folds) are never flagged, and anything
// else can carry //detlint:allow maporder <reason>.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that feed order-sensitive sinks " +
		"(slice append, writer/encoder, channel send, par fan-out); " +
		"iterate sorted keys instead",
	Run: runMaporder,
}

// methodSinkNames are method names treated as order-sensitive emission
// when called on state that outlives the loop: stream encoders, writers
// and the flight recorder's span/journal entry points. A call to one of
// these inside a map-range body persists values in iteration order.
var methodSinkNames = map[string]bool{
	"Encode": true, "EncodeAll": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true, "WriteTo": true,
	"Print": true, "Printf": true, "Println": true,
	"Emit": true, "Record": true, "Log": true, "Journal": true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := findOrderSink(pass, rs, fd.Body); sink != "" {
					pass.Reportf(rs.Pos(),
						"range over map feeds an order-sensitive sink (%s); iterate sorted keys instead, or annotate with //detlint:allow maporder <reason>",
						sink)
				}
				return true
			})
		}
	}
	return nil
}

// findOrderSink scans a map-range body for the first order-sensitive sink.
// enclosing is the whole function body, used to recognize the sorted-key
// idiom after the loop.
func findOrderSink(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if target, ok := n.Args[0].(*ast.Ident); ok {
					obj := pass.Info.ObjectOf(target)
					if obj != nil && !within(obj.Pos(), rs.Body) && !sortedLater(pass, enclosing, obj) {
						sink = "append to " + target.Name
						return false
					}
				}
				return true
			}
			if name, ok := isPkgFunc(pass.Info, n, "internal/par"); ok {
				sink = "par." + name + " fan-out"
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isEmitCall(pass, n, sel, rs.Body) {
					sink = callName(pass, sel)
					return false
				}
			}
		}
		return true
	})
	return sink
}

// isEmitCall reports whether call emits data beyond the current iteration:
// a print/log call to a process-wide stream, an Fprint to a writer that
// outlives the loop, or a sink-named method on a receiver that does.
func isEmitCall(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr, body *ast.BlockStmt) bool {
	if pn := packageName(pass.Info, sel); pn != nil {
		switch pn.Imported().Path() {
		case "fmt":
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && !iterationLocal(pass, call.Args[0], body)
			}
		case "log":
			switch sel.Sel.Name {
			case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln":
				return true
			}
		}
		// Other package-level calls (json.Marshal, strings.Join, ...)
		// produce values; escapes are caught where the value lands.
		return false
	}
	return methodSinkNames[sel.Sel.Name] && !iterationLocal(pass, sel.X, body)
}

// iterationLocal reports whether expr denotes a variable declared inside
// the loop body (directly or through &x): writes through it are scoped to
// one iteration and cannot observe map order.
func iterationLocal(pass *Pass, expr ast.Expr, body *ast.BlockStmt) bool {
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = u.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		// Chained or field targets (s.buf.Write, f().Write): assume
		// shared state.
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return false
	}
	return within(obj.Pos(), body)
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos < node.End()
}

// sortedLater reports whether obj is subsequently handed to a sort.* or
// slices.* call anywhere in the enclosing function — the sorted-key idiom.
func sortedLater(pass *Pass, enclosing *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := packageName(pass.Info, sel)
		if pn == nil {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callName renders a selector call like "buf.Write" for diagnostics.
func callName(pass *Pass, sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
