package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MaporderAnalyzer,
		"maporder/a")
}
