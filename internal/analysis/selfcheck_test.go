package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

var update = flag.Bool("update", false, "rewrite the inventory golden file")

// loadRepo type-checks every package in the module, once per test binary.
func loadRepo(t *testing.T) (*analysis.Loader, []*analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return loader, pkgs
}

// TestRepoIsLintClean is the meta-test behind the CI gate: the full
// determinism suite over every package in the module must report zero
// unsuppressed diagnostics. A new finding fails here first, with the same
// message cmd/detlint would print.
func TestRepoIsLintClean(t *testing.T) {
	_, pkgs := loadRepo(t)
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the module")
	}
	suite := analysis.All()
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: typecheck: %v", pkg.Path, terr)
		}
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			t.Errorf("%s: %v", pkg.Path, err)
			continue
		}
		for _, d := range diags {
			if !d.Suppressed {
				t.Errorf("unsuppressed: %s", d)
			}
		}
	}
}

// TestInventoryGolden pins the repository's //detlint:allow suppression
// set: adding (or removing) an escape hatch anywhere in the tree requires
// regenerating the golden with -update, so each one shows up in review.
func TestInventoryGolden(t *testing.T) {
	loader, pkgs := loadRepo(t)
	got := analysistest.WriteInventoryGolden(loader.ModuleRoot, analysis.Inventory(pkgs))
	golden := filepath.Join("testdata", "inventory.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want := analysistest.ReadFileOrEmpty(golden)
	if got != want {
		t.Errorf("suppression inventory drifted from %s (run go test ./internal/analysis -run TestInventoryGolden -update):\ngot:\n%swant:\n%s",
			golden, got, want)
	}
}
