// Package a exercises the forkshare analyzer against the real pool and
// stream types: closures handed to par fan-outs must not draw from a
// captured rng.Stream — they derive per-task children or index a
// pre-planned slice instead.
package a

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
)

// sharedDraw is the bug: every worker advances the same stream, so the
// interleaving of draws depends on scheduling.
func sharedDraw(s *rng.Stream, out []float64) {
	par.ForEach(len(out), func(i int) {
		out[i] = s.Float64() // want `rng.Stream "s" captured by closure passed to par fan-out without a Fork`
	})
}

// forkInside is safe: the captured parent is only used as a Fork receiver,
// and each worker draws from its own child.
func forkInside(s *rng.Stream, out []float64) {
	par.ForEach(len(out), func(i int) {
		child := s.Fork(fmt.Sprintf("task-%d", i))
		out[i] = child.Float64()
	})
}

// prePlanned is the planning-pass idiom: streams are forked sequentially
// before the fan-out, and workers only index the slice.
func prePlanned(parent *rng.Stream, out []float64) {
	streams := make([]*rng.Stream, len(out))
	for i := range streams {
		streams[i] = parent.Fork(fmt.Sprintf("task-%d", i))
	}
	par.ForEach(len(out), func(i int) {
		out[i] = streams[i].Float64()
	})
}

// escapes hands the shared stream to a callee — the draw just happens one
// frame deeper, so it is still a finding.
func escapes(s *rng.Stream, out []float64) {
	par.ForEach(len(out), func(i int) {
		out[i] = consume(s) // want `rng.Stream "s" captured by closure passed to par fan-out without a Fork`
	})
}

func consume(s *rng.Stream) float64 { return s.Float64() }

// fork2IntoShared forks safely from the parent but writes every child into
// one captured destination: the receiver is exempt, the shared dst is not.
func fork2IntoShared(s *rng.Stream, out []float64) {
	var dst rng.Stream
	par.ForEach(len(out), func(i int) {
		s.Fork2Into(fmt.Sprint(i), "", &dst) // want `rng.Stream "dst" captured by closure passed to par fan-out without a Fork`
		out[i] = dst.Float64()
	})
}

// mapErrShared proves every par entry point is covered, not just ForEach.
func mapErrShared(s *rng.Stream, out []float64) error {
	return par.MapErr(len(out), func(i int) error {
		out[i] = s.Float64() // want `rng.Stream "s" captured by closure passed to par fan-out without a Fork`
		return nil
	})
}

// annotated shows the escape hatch for a deliberately shared stream (a
// stress harness that wants scheduling noise, say).
func annotated(s *rng.Stream, out []float64) {
	par.ForEach(len(out), func(i int) {
		//detlint:allow forkshare stress harness deliberately injects scheduling noise
		out[i] = s.Float64() // want-suppressed `rng.Stream "s" captured`
	})
}
