// Package a exercises the globalrand analyzer: importing math/rand (v1 or
// v2) outside internal/rng is a finding regardless of how the import is
// spelled or used; crypto/rand is not in scope.
package a

import (
	crand "crypto/rand"
	"math/rand"           // want `import of "math/rand" outside internal/rng`
	mrand2 "math/rand/v2" // want `import of "math/rand/v2" outside internal/rng`

	_ "math/rand/v2" //detlint:allow globalrand blank import kept to pin the annotation escape hatch // want-suppressed `import of "math/rand/v2"`
)

func draws() (int, uint64, []byte) {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	return rand.Intn(10), mrand2.Uint64(), buf
}
