// Package rng models the one package allowed to touch the standard
// generators: globalrand exempts any package whose import path ends in
// internal/rng, because that is where a seeded wrapper would live.
package rng

import "math/rand"

// Wrapped shows the exemption: no finding anywhere in this package.
func Wrapped(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
