// Package a exercises the goroutine analyzer: raw go statements and
// sync.WaitGroup fan-out belong in internal/par / internal/distrib, where
// scheduling is planned; anywhere else they make replay order a race.
package a

import "sync"

// rawGo is the basic finding: an unstructured goroutine.
func rawGo(work func()) {
	go work() // want `raw go statement outside internal/par and internal/distrib`
}

// rawGoInLoop is the fan-out shape the par pool exists to replace.
func rawGoInLoop(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i) // want `raw go statement outside internal/par and internal/distrib`
	}
}

// wgVar declares a WaitGroup: hand-rolled fan-out control.
func wgVar(n int, fn func(int)) {
	var wg sync.WaitGroup // want `sync.WaitGroup fan-out outside internal/par and internal/distrib`
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) { // want `raw go statement outside internal/par and internal/distrib`
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// wgParam flags WaitGroups smuggled in through a signature too.
func wgParam(wg *sync.WaitGroup) { // want `sync.WaitGroup fan-out outside internal/par and internal/distrib`
	wg.Done()
}

// wgField flags WaitGroups embedded in state.
type runner struct {
	wg sync.WaitGroup // want `sync.WaitGroup fan-out outside internal/par and internal/distrib`
}

// annotated shows the escape hatch for a deliberate background goroutine
// (e.g. an os/signal listener that never touches simulation state).
func annotated(sig <-chan struct{}, stop func()) {
	//detlint:allow goroutine signal listener; never touches simulation state
	go func() { // want-suppressed `raw go statement`
		<-sig
		stop()
	}()
}

// syncOK proves only WaitGroup is in scope for the type check: Mutex and
// Once are synchronization, not fan-out.
func syncOK() {
	var mu sync.Mutex
	var once sync.Once
	mu.Lock()
	once.Do(func() {})
	mu.Unlock()
}
