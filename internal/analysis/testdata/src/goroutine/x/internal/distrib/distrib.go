// Package distrib mirrors the real coordinator: internal/distrib manages
// live worker processes, so its goroutines and WaitGroups are exempt.
package distrib

import "sync"

// Fanout pumps per-worker pipes concurrently — exempt, no findings.
func Fanout(workers []func() error) []error {
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	wg.Add(len(workers))
	for i, w := range workers {
		go func(i int, w func() error) {
			defer wg.Done()
			errs[i] = w()
		}(i, w)
	}
	wg.Wait()
	return errs
}
