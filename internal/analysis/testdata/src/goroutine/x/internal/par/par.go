// Package par mirrors the real worker pool: any package whose import path
// ends in internal/par is exempt, so the canonical goroutine + WaitGroup
// worker loop below must produce no findings.
package par

import (
	"runtime"
	"sync"
)

// ForEach is the exempt idiom copied from the real pool: fixed worker
// count, WaitGroup barrier, contiguous index blocks.
func ForEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
