// Package a exercises the maporder analyzer's positive cases: map-range
// bodies feeding order-sensitive sinks.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/par"
)

// appendEscapes collects map values into a slice that is never sorted:
// the classic shuffle-invariance bug.
func appendEscapes(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `order-sensitive sink \(append to vals\)`
		vals = append(vals, v)
	}
	return vals
}

// writerInOrder streams entries to an encoder in iteration order.
func writerInOrder(m map[string]int, w io.Writer) error {
	enc := json.NewEncoder(w)
	for k, v := range m { // want `order-sensitive sink \(enc.Encode\)`
		if err := enc.Encode(map[string]int{k: v}); err != nil {
			return err
		}
	}
	return nil
}

// printed writes report text in iteration order.
func printed(m map[string]int) {
	for k, v := range m { // want `order-sensitive sink \(fmt.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// builderInOrder accumulates into a strings.Builder declared outside the
// loop.
func builderInOrder(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want `order-sensitive sink \(b.WriteString\)`
		b.WriteString(k)
	}
	return b.String()
}

// channelSend feeds a consumer in iteration order.
func channelSend(m map[string]int, ch chan<- int) {
	for _, v := range m { // want `order-sensitive sink \(channel send\)`
		ch <- v
	}
}

// parFanOut dispatches pool work per map entry: worker slot assignment
// then depends on iteration order.
func parFanOut(m map[string][]float64) {
	for _, row := range m { // want `order-sensitive sink \(par.ForEach fan-out\)`
		par.ForEach(len(row), func(i int) { row[i] *= 2 })
	}
}

// annotated is deliberately order-dependent (a commutative checksum would
// be cleaner, but the annotation escape hatch must work).
func annotated(m map[string]int) []int {
	var vals []int
	//detlint:allow maporder values are summed downstream; order is immaterial
	for _, v := range m { // want-suppressed `order-sensitive sink`
		vals = append(vals, v)
	}
	return vals
}
