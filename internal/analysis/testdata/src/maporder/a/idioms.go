package a

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// sortedKeysIdiom is the canonical fix: collect, sort, then iterate the
// slice. The collecting append must not be flagged.
func sortedKeysIdiom(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// slicesSortIdiom is the same idiom through the slices package.
func slicesSortIdiom(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// sortSliceIdiom sorts by a custom order after collecting.
func sortSliceIdiom(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return m[names[i]] > m[names[j]] })
	return names
}

// commutativeFolds never materialize iteration order: counting, summing,
// min/max and building another map are all order-insensitive.
func commutativeFolds(m map[string]int) (int, int, map[int]string) {
	total, n := 0, 0
	inverse := map[int]string{}
	for k, v := range m {
		total += v
		n++
		inverse[v] = k
	}
	return total, n, inverse
}

// perIterationBuffer writes through state scoped to one iteration: each
// entry's bytes are self-contained, so iteration order never leaks.
func perIterationBuffer(m map[string]int) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
	return out
}

// sliceRange proves only maps are in scope: ranging a slice into an
// appender is ordered by construction.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x)
	}
	return out
}
