// Package a exercises the wallclock analyzer: every time.Now / time.Since
// / time.Sleep reference is a finding; the rest of the time package (and a
// deliberately annotated measurement site) is not.
package a

import "time"

func positives(d time.Duration) time.Duration {
	start := time.Now() // want `wall-clock time.Now`
	time.Sleep(d)       // want `wall-clock time.Sleep`
	pause := time.Sleep // want `wall-clock time.Sleep`
	pause(d)
	return time.Since(start) // want `wall-clock time.Since`
}

func annotated() time.Time {
	return time.Now() //detlint:allow wallclock benchmark throughput measurement in a test fixture // want-suppressed `wall-clock time.Now`
}

func annotatedAbove() time.Time {
	//detlint:allow wallclock the annotation on the line above also suppresses
	return time.Now() // want-suppressed `wall-clock time.Now`
}

// virtualOK uses the order-safe, deterministic parts of the time package:
// constructing and formatting instants and durations never reads the host
// clock.
func virtualOK() (time.Time, time.Duration, error) {
	at := time.Unix(0, 42).UTC()
	_ = at.Add(3 * time.Second)
	parsed, err := time.Parse("2006-01-02", "2026-08-08")
	d, _ := time.ParseDuration("150ms")
	_ = parsed.Format(time.RFC3339)
	return at, d, err
}

// shadowed proves resolution is type-based: a local named time is not the
// package.
func shadowed() int {
	time := struct{ Now int }{Now: 7}
	return time.Now
}
