// Package bad exercises the annotation grammar's error paths: a malformed
// //detlint:allow must fail the build rather than silently suppressing
// everything (or nothing).
package bad

import "time"

func malformed() time.Time {
	//detlint:allow // want `malformed //detlint:allow: missing analyzer name`
	//detlint:allow nosuchanalyzer because // want `unknown analyzer "nosuchanalyzer"`
	//detlint:allow wallclock // want `a reason is required`
	return time.Now() // want `wall-clock time.Now`
}
