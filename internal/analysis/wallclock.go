package analysis

import (
	"go/ast"
)

// WallclockAnalyzer flags every reference to time.Now, time.Since and
// time.Sleep. The simulator runs on a virtual clock (accel.Clock and the
// fleet event loop's virtual horizon); a wall-clock read anywhere in a
// simulation package makes decisions depend on host speed and breaks
// bit-identity across machines and runs.
//
// Wall-clock is legal only at explicitly annotated sites — CLI progress
// reporting in cmd/* and benchmark throughput measurement (events/sec keys
// documented as wall-clock-drifting) — each carrying
// //detlint:allow wallclock <reason>, which -inventory lists and the
// inventory golden pins.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/time.Since/time.Sleep: simulation code must use the " +
		"virtual clock; annotate deliberate wall-clock measurement sites",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := packageName(pass.Info, sel)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Sleep":
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in simulation code; use the virtual clock, or annotate a deliberate measurement site with //detlint:allow wallclock <reason>",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
