package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.WallclockAnalyzer,
		"wallclock/a", "wallclock/bad")
}
