// Package baseline implements the comparison methods of the paper's
// evaluation (Table III):
//
//   - SingleModel: the conventional deployment — one fixed (model,
//     accelerator) pair for every frame.
//   - Marlin [5]: power-thrifty detection that alternates a DNN with a
//     lightweight NCC template tracker, re-invoking the DNN when the tracker
//     loses confidence, the target moves, or the track ages out.
//   - Oracle: the performance ceiling — per frame it inspects every
//     (model, kind) pair's actual outcome, keeps those clearing 0.5 IoU and
//     picks the one optimizing the target metric (energy, accuracy or
//     latency). Following the paper, the Oracle assumes all models are
//     resident (no load costs) and pays only the chosen pair's execution.
//
// All baselines run on the same virtual platform, the same deterministic
// detections and the same rendered frames as SHIFT, so Table III comparisons
// are apples-to-apples.
package baseline

import (
	"fmt"

	"repro/internal/detmodel"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/track"
	"repro/internal/zoo"
)

// findPair resolves a (model, procID) to a runtime pair.
func findPair(sys *zoo.System, model, procID string) (zoo.Pair, error) {
	for _, p := range sys.RuntimePairs() {
		if p.Model == model && p.ProcID == procID {
			return p, nil
		}
	}
	return zoo.Pair{}, fmt.Errorf("baseline: no runtime pair %s@%s", model, procID)
}

// SingleModel runs one fixed pair on every frame.
type SingleModel struct {
	sys  *zoo.System
	pair zoo.Pair
	dml  *loader.Loader
}

// NewSingleModel builds the conventional single-model runner.
func NewSingleModel(sys *zoo.System, model, procID string) (*SingleModel, error) {
	pair, err := findPair(sys, model, procID)
	if err != nil {
		return nil, err
	}
	return &SingleModel{sys: sys, pair: pair, dml: loader.New(sys, loader.EvictLRR)}, nil
}

// Name implements pipeline.Runner.
func (s *SingleModel) Name() string { return s.pair.Model + "@" + s.pair.ProcID }

// Run implements pipeline.Runner.
func (s *SingleModel) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	res := &pipeline.Result{Method: s.Name(), Scenario: scenario}
	entry, err := s.sys.Entry(s.pair.Model)
	if err != nil {
		return nil, err
	}
	perf, err := s.sys.Perf(s.pair.Model, s.pair.ProcID)
	if err != nil {
		return nil, err
	}
	for _, frame := range frames {
		rec := pipeline.FrameRecord{Index: frame.Index, Pair: s.pair}
		loadCost, err := s.dml.Ensure(s.pair)
		if err != nil {
			return nil, err
		}
		rec.LoadedModel = loadCost.Lat > 0
		rec.LatSec += loadCost.Lat.Seconds()
		rec.EnergyJ += loadCost.Energy

		execCost, err := s.sys.SoC.Exec(s.pair.ProcID, perf.LatencySec, perf.PowerW)
		if err != nil {
			return nil, err
		}
		rec.LatSec += execCost.Lat.Seconds()
		rec.EnergyJ += execCost.Energy

		det := entry.Model.Detect(frame, s.sys.Seed)
		rec.Found, rec.Conf, rec.IoU, rec.Box = det.Found, det.Conf, det.IoU, det.Box
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// MarlinConfig tunes the Marlin baseline.
type MarlinConfig struct {
	// Model and ProcID fix the DNN pair (the paper runs Marlin on the GPU
	// with YoloV7, and "Marlin Tiny" with YoloV7-Tiny).
	Model  string
	ProcID string
	// Tracker configures the template tracker.
	Tracker track.Config
	// MotionThreshold (pixels) of tracked-box movement since the last DNN
	// fix that triggers re-detection; drone footage moves constantly, which
	// is why the paper's Marlin ran its DNN on most frames.
	MotionThreshold float64
	// MaxTrackAge is the maximum number of consecutive tracker-only frames
	// before a mandatory DNN refresh.
	MaxTrackAge int
}

// DefaultMarlinConfig mirrors the paper's Marlin setup (YoloV7 on GPU).
// The motion threshold is expressed in this repo's 72-pixel frames: the
// paper's drone videos at 640x640 see several pixels of target motion per
// frame, which scales to fractions of a pixel here, so the trigger fires on
// most frames of a moving target — matching Table III, where Marlin's
// latency (0.132 s) shows its DNN running at nearly every frame.
func DefaultMarlinConfig() MarlinConfig {
	return MarlinConfig{
		Model:           detmodel.YoloV7,
		ProcID:          "gpu",
		Tracker:         track.DefaultConfig(),
		MotionThreshold: 0.2,
		MaxTrackAge:     8,
	}
}

// Marlin is the DNN+tracker alternation baseline.
type Marlin struct {
	sys  *zoo.System
	cfg  MarlinConfig
	pair zoo.Pair
	dml  *loader.Loader
	name string
}

// NewMarlin builds a Marlin runner.
func NewMarlin(sys *zoo.System, cfg MarlinConfig) (*Marlin, error) {
	pair, err := findPair(sys, cfg.Model, cfg.ProcID)
	if err != nil {
		return nil, err
	}
	if cfg.MaxTrackAge <= 0 {
		return nil, fmt.Errorf("baseline: MaxTrackAge must be positive, got %d", cfg.MaxTrackAge)
	}
	name := "Marlin"
	if cfg.Model == detmodel.YoloV7Tiny {
		name = "Marlin Tiny"
	}
	return &Marlin{sys: sys, cfg: cfg, pair: pair, dml: loader.New(sys, loader.EvictLRR), name: name}, nil
}

// Name implements pipeline.Runner.
func (m *Marlin) Name() string { return m.name }

// Run implements pipeline.Runner.
func (m *Marlin) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	res := &pipeline.Result{Method: m.Name(), Scenario: scenario}
	entry, err := m.sys.Entry(m.pair.Model)
	if err != nil {
		return nil, err
	}
	perf, err := m.sys.Perf(m.pair.Model, m.pair.ProcID)
	if err != nil {
		return nil, err
	}
	tr, err := track.New(m.cfg.Tracker)
	if err != nil {
		return nil, err
	}

	var lastFixX, lastFixY float64
	trackAge := 0
	for _, frame := range frames {
		rec := pipeline.FrameRecord{Index: frame.Index, Pair: m.pair}

		// Tracker step (CPU cost) whenever a target is held.
		needDNN := true
		if tr.Active() {
			cost, err := m.sys.SoC.Exec("cpu", zoo.TrackerOverhead.LatencySec, zoo.TrackerOverhead.PowerW)
			if err != nil {
				return nil, err
			}
			rec.LatSec += cost.Lat.Seconds()
			rec.EnergyJ += cost.Energy

			box, score, ok := tr.Step(frame.Image)
			if ok {
				cx, cy := box.Center()
				moved := abs(cx-lastFixX) > m.cfg.MotionThreshold ||
					abs(cy-lastFixY) > m.cfg.MotionThreshold
				trackAge++
				if !moved && trackAge < m.cfg.MaxTrackAge {
					// Tracker-only frame.
					needDNN = false
					rec.Found = true
					rec.Conf = score
					rec.IoU = box.IoU(frame.GT)
					rec.Box = box
				}
			}
		}

		if needDNN {
			loadCost, err := m.dml.Ensure(m.pair)
			if err != nil {
				return nil, err
			}
			rec.LoadedModel = loadCost.Lat > 0
			rec.LatSec += loadCost.Lat.Seconds()
			rec.EnergyJ += loadCost.Energy

			execCost, err := m.sys.SoC.Exec(m.pair.ProcID, perf.LatencySec, perf.PowerW)
			if err != nil {
				return nil, err
			}
			rec.LatSec += execCost.Lat.Seconds()
			rec.EnergyJ += execCost.Energy

			det := entry.Model.Detect(frame, m.sys.Seed)
			rec.Found, rec.Conf, rec.IoU, rec.Box = det.Found, det.Conf, det.IoU, det.Box
			trackAge = 0
			if det.Found {
				tr.Init(frame.Image, det.Box)
				lastFixX, lastFixY = det.Box.Center()
			} else {
				tr.Drop()
			}
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
