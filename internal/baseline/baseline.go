// Package baseline implements the comparison methods of the paper's
// evaluation (Table III):
//
//   - SingleModel: the conventional deployment — one fixed (model,
//     accelerator) pair for every frame.
//   - Marlin [5]: power-thrifty detection that alternates a DNN with a
//     lightweight NCC template tracker, re-invoking the DNN when the tracker
//     loses confidence, the target moves, or the track ages out.
//   - Oracle: the performance ceiling — per frame it inspects every
//     (model, kind) pair's actual outcome, keeps those clearing 0.5 IoU and
//     picks the one optimizing the target metric (energy, accuracy or
//     latency). Following the paper, the Oracle assumes all models are
//     resident (no load costs) and pays only the chosen pair's execution.
//
// Each baseline is a thin runtime.Policy over the shared step engine
// (package runtime), so all methods — including SHIFT — run the same
// per-frame loop on the same virtual platform, the same deterministic
// detections and the same rendered frames, and Table III comparisons are
// apples-to-apples. The conformance suite in this package pins the loop
// invariants every policy must share.
package baseline

import (
	"fmt"

	"repro/internal/detmodel"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/track"
	"repro/internal/zoo"
)

// findPair resolves a (model, procID) to a runtime pair.
func findPair(sys *zoo.System, model, procID string) (zoo.Pair, error) {
	for _, p := range sys.RuntimePairs() {
		if p.Model == model && p.ProcID == procID {
			return p, nil
		}
	}
	return zoo.Pair{}, fmt.Errorf("baseline: no runtime pair %s@%s", model, procID)
}

// newEngine wraps a policy in a solo engine with its own LRR loader.
func newEngine(sys *zoo.System, pol runtime.Policy) *runtime.Engine {
	return runtime.NewEngine(sys, loader.New(sys, loader.EvictLRR), pol)
}

// SingleModel runs one fixed pair on every frame.
type SingleModel struct {
	pair zoo.Pair
	eng  *runtime.Engine
}

// NewSingleModel builds the conventional single-model runner.
func NewSingleModel(sys *zoo.System, model, procID string) (*SingleModel, error) {
	pair, err := findPair(sys, model, procID)
	if err != nil {
		return nil, err
	}
	return &SingleModel{pair: pair, eng: newEngine(sys, &singleModelPolicy{pair: pair})}, nil
}

// Name implements pipeline.Runner.
func (s *SingleModel) Name() string { return s.pair.Model + "@" + s.pair.ProcID }

// Run implements pipeline.Runner.
func (s *SingleModel) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	return s.eng.Run(scenario, frames)
}

// singleModelPolicy serves every frame from one fixed pair.
type singleModelPolicy struct {
	pair zoo.Pair
}

// Name implements runtime.Policy.
func (p *singleModelPolicy) Name() string { return p.pair.Model + "@" + p.pair.ProcID }

// Reset implements runtime.Policy (no per-stream state).
func (p *singleModelPolicy) Reset(*runtime.Engine) error { return nil }

// Step implements runtime.Policy.
func (p *singleModelPolicy) Step(st *runtime.Step) error {
	pair, err := st.Acquire(p.pair)
	if err != nil {
		return err
	}
	st.Rec().Pair = pair
	if err := st.Exec(pair); err != nil {
		return err
	}
	det, err := st.Detect(pair.Model)
	if err != nil {
		return err
	}
	st.RecordDetection(det)
	return nil
}

// MarlinConfig tunes the Marlin baseline.
type MarlinConfig struct {
	// Model and ProcID fix the DNN pair (the paper runs Marlin on the GPU
	// with YoloV7, and "Marlin Tiny" with YoloV7-Tiny).
	Model  string
	ProcID string
	// Tracker configures the template tracker.
	Tracker track.Config
	// MotionThreshold (pixels) of tracked-box movement since the last DNN
	// fix that triggers re-detection; drone footage moves constantly, which
	// is why the paper's Marlin ran its DNN on most frames.
	MotionThreshold float64
	// MaxTrackAge is the maximum number of consecutive tracker-only frames
	// before a mandatory DNN refresh.
	MaxTrackAge int
}

// DefaultMarlinConfig mirrors the paper's Marlin setup (YoloV7 on GPU).
// The motion threshold is expressed in this repo's 72-pixel frames: the
// paper's drone videos at 640x640 see several pixels of target motion per
// frame, which scales to fractions of a pixel here, so the trigger fires on
// most frames of a moving target — matching Table III, where Marlin's
// latency (0.132 s) shows its DNN running at nearly every frame.
func DefaultMarlinConfig() MarlinConfig {
	return MarlinConfig{
		Model:           detmodel.YoloV7,
		ProcID:          "gpu",
		Tracker:         track.DefaultConfig(),
		MotionThreshold: 0.2,
		MaxTrackAge:     8,
	}
}

// Marlin is the DNN+tracker alternation baseline.
type Marlin struct {
	pol *marlinPolicy
	eng *runtime.Engine
}

// NewMarlin builds a Marlin runner.
func NewMarlin(sys *zoo.System, cfg MarlinConfig) (*Marlin, error) {
	pol, err := newMarlinPolicy(sys, cfg)
	if err != nil {
		return nil, err
	}
	return &Marlin{pol: pol, eng: newEngine(sys, pol)}, nil
}

// Name implements pipeline.Runner.
func (m *Marlin) Name() string { return m.pol.Name() }

// Run implements pipeline.Runner.
func (m *Marlin) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	return m.eng.Run(scenario, frames)
}

// marlinPolicy alternates the DNN with the template tracker.
type marlinPolicy struct {
	cfg  MarlinConfig
	pair zoo.Pair
	name string

	tr                 *track.Tracker
	lastFixX, lastFixY float64
	trackAge           int
}

// newMarlinPolicy validates the configuration and resolves the DNN pair.
func newMarlinPolicy(sys *zoo.System, cfg MarlinConfig) (*marlinPolicy, error) {
	pair, err := findPair(sys, cfg.Model, cfg.ProcID)
	if err != nil {
		return nil, err
	}
	if cfg.MaxTrackAge <= 0 {
		return nil, fmt.Errorf("baseline: MaxTrackAge must be positive, got %d", cfg.MaxTrackAge)
	}
	name := "Marlin"
	if cfg.Model == detmodel.YoloV7Tiny {
		name = "Marlin Tiny"
	}
	return &marlinPolicy{cfg: cfg, pair: pair, name: name}, nil
}

// Name implements runtime.Policy.
func (p *marlinPolicy) Name() string { return p.name }

// Reset implements runtime.Policy: fresh tracker and fix history.
func (p *marlinPolicy) Reset(*runtime.Engine) error {
	tr, err := track.New(p.cfg.Tracker)
	if err != nil {
		return err
	}
	p.tr = tr
	p.lastFixX, p.lastFixY = 0, 0
	p.trackAge = 0
	return nil
}

// Step implements runtime.Policy.
func (p *marlinPolicy) Step(st *runtime.Step) error {
	st.Rec().Pair = p.pair

	// Tracker step (CPU cost) whenever a target is held.
	needDNN := true
	if p.tr.Active() {
		if err := st.ExecPerf("cpu", zoo.TrackerOverhead.LatencySec, zoo.TrackerOverhead.PowerW); err != nil {
			return err
		}
		box, score, ok := p.tr.Step(st.Frame().Image)
		if ok {
			cx, cy := box.Center()
			moved := abs(cx-p.lastFixX) > p.cfg.MotionThreshold ||
				abs(cy-p.lastFixY) > p.cfg.MotionThreshold
			p.trackAge++
			if !moved && p.trackAge < p.cfg.MaxTrackAge {
				// Tracker-only frame.
				needDNN = false
				rec := st.Rec()
				rec.Found = true
				rec.Conf = score
				rec.IoU = box.IoU(st.Frame().GT)
				rec.Box = box
			}
		}
	}

	if needDNN {
		pair, err := st.Acquire(p.pair)
		if err != nil {
			return err
		}
		if err := st.Exec(pair); err != nil {
			return err
		}
		det, err := st.Detect(pair.Model)
		if err != nil {
			return err
		}
		st.RecordDetection(det)
		p.trackAge = 0
		if det.Found {
			p.tr.Init(st.Frame().Image, det.Box)
			p.lastFixX, p.lastFixY = det.Box.Center()
		} else {
			p.tr.Drop()
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
