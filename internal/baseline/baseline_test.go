package baseline

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/zoo"
)

var cachedFrames []scene.Frame

func testFrames(t *testing.T) []scene.Frame {
	t.Helper()
	if cachedFrames == nil {
		cachedFrames = scene.Scenario2().Render(1)
	}
	return cachedFrames
}

func mean(res *pipeline.Result, f func(pipeline.FrameRecord) float64) float64 {
	if len(res.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range res.Records {
		sum += f(r)
	}
	return sum / float64(len(res.Records))
}

func iouOf(r pipeline.FrameRecord) float64    { return r.IoU }
func latOf(r pipeline.FrameRecord) float64    { return r.LatSec }
func energyOf(r pipeline.FrameRecord) float64 { return r.EnergyJ }

// The shared loop invariants (record-per-frame, swap flags, cost sanity,
// determinism, per-method load cadences) live in TestRunnerConformance;
// the tests below pin only method-specific behaviour against the paper.

func TestSingleModelName(t *testing.T) {
	sys := zoo.Default(1)
	sm, err := NewSingleModel(sys, detmodel.YoloV7, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	if sm.Name() != "YoloV7@gpu" {
		t.Fatalf("method name %q", sm.Name())
	}
}

func TestSingleModelUnknownPair(t *testing.T) {
	sys := zoo.Default(1)
	if _, err := NewSingleModel(sys, detmodel.SSDResnet50, "oakd"); err == nil {
		t.Fatal("unsupported pair should fail")
	}
	if _, err := NewSingleModel(sys, "ghost", "gpu"); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestSingleModelLatencyMatchesTableIV(t *testing.T) {
	sys := zoo.Default(1)
	sm, err := NewSingleModel(sys, detmodel.YoloV7, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run("s", testFrames(t))
	if err != nil {
		t.Fatal(err)
	}
	// Skip the load frame; steady-state latency must track the 0.130 s
	// anchor.
	steady := &pipeline.Result{Records: res.Records[1:]}
	if lat := mean(steady, latOf); lat < 0.120 || lat > 0.145 {
		t.Fatalf("YoloV7@gpu steady latency %.4f, want ~0.130", lat)
	}
}

func TestMarlinTinyName(t *testing.T) {
	sys := zoo.Default(1)
	cfg := DefaultMarlinConfig()
	cfg.Model = detmodel.YoloV7Tiny
	m, err := NewMarlin(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Marlin Tiny" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestMarlinValidation(t *testing.T) {
	sys := zoo.Default(1)
	cfg := DefaultMarlinConfig()
	cfg.MaxTrackAge = 0
	if _, err := NewMarlin(sys, cfg); err == nil {
		t.Fatal("zero MaxTrackAge should fail")
	}
}

func TestMarlinSavesEnergyVsSingleModel(t *testing.T) {
	// Marlin's reason to exist: lower average energy than running the same
	// DNN every frame, at comparable accuracy (Table III: 1.201 J vs
	// 1.968 J for YoloV7@GPU).
	frames := testFrames(t)
	smSys := zoo.Default(1)
	sm, err := NewSingleModel(smSys, detmodel.YoloV7, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	smRes, err := sm.Run("s", frames)
	if err != nil {
		t.Fatal(err)
	}
	mSys := zoo.Default(1)
	m, err := NewMarlin(mSys, DefaultMarlinConfig())
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := m.Run("s", frames)
	if err != nil {
		t.Fatal(err)
	}
	if mean(mRes, energyOf) >= mean(smRes, energyOf) {
		t.Fatalf("Marlin energy %.3f not below single-model %.3f",
			mean(mRes, energyOf), mean(smRes, energyOf))
	}
	// Accuracy stays in the same band (within 0.08 IoU).
	if d := mean(smRes, iouOf) - mean(mRes, iouOf); d > 0.08 {
		t.Fatalf("Marlin gave up too much accuracy: delta %.3f", d)
	}
}

func TestMarlinRunsDNNOnMovingTarget(t *testing.T) {
	// The drone moves nearly every frame of scenario 2, so Marlin's motion
	// trigger should fire often — its DNN cadence (and thus latency) stays
	// close to single-model, as in Table III.
	sys := zoo.Default(1)
	m, err := NewMarlin(sys, DefaultMarlinConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("s", testFrames(t))
	if err != nil {
		t.Fatal(err)
	}
	if lat := mean(res, latOf); lat < 0.04 {
		t.Fatalf("Marlin latency %.4f suspiciously low; motion trigger not firing", lat)
	}
}

func TestOracleNames(t *testing.T) {
	sys := zoo.Default(1)
	for metric, want := range map[OracleMetric]string{
		OracleEnergy:   "Oracle E",
		OracleAccuracy: "Oracle A",
		OracleLatency:  "Oracle L",
	} {
		o, err := NewOracle(sys, metric)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != want {
			t.Fatalf("oracle name %q, want %q", o.Name(), want)
		}
	}
	if _, err := NewOracle(sys, OracleMetric(9)); err == nil {
		t.Fatal("unknown metric should fail")
	}
}

func runOracle(t *testing.T, metric OracleMetric) *pipeline.Result {
	t.Helper()
	sys := zoo.Default(1)
	o, err := NewOracle(sys, metric)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run("s", testFrames(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOracleAccuracyDominatesOthers(t *testing.T) {
	a := runOracle(t, OracleAccuracy)
	e := runOracle(t, OracleEnergy)
	l := runOracle(t, OracleLatency)
	if mean(a, iouOf) < mean(e, iouOf) || mean(a, iouOf) < mean(l, iouOf) {
		t.Fatalf("Oracle A IoU %.3f not the highest (E %.3f, L %.3f)",
			mean(a, iouOf), mean(e, iouOf), mean(l, iouOf))
	}
}

func TestOracleEnergyCheapest(t *testing.T) {
	a := runOracle(t, OracleAccuracy)
	e := runOracle(t, OracleEnergy)
	l := runOracle(t, OracleLatency)
	if mean(e, energyOf) > mean(a, energyOf) || mean(e, energyOf) > mean(l, energyOf)+1e-9 {
		t.Fatalf("Oracle E energy %.3f not the lowest (A %.3f, L %.3f)",
			mean(e, energyOf), mean(a, energyOf), mean(l, energyOf))
	}
}

func TestOracleLatencyFastest(t *testing.T) {
	a := runOracle(t, OracleAccuracy)
	e := runOracle(t, OracleEnergy)
	l := runOracle(t, OracleLatency)
	if mean(l, latOf) > mean(a, latOf) || mean(l, latOf) > mean(e, latOf)+1e-9 {
		t.Fatalf("Oracle L latency %.4f not the lowest (A %.4f, E %.4f)",
			mean(l, latOf), mean(a, latOf), mean(e, latOf))
	}
}

func TestOracleSuccessRateCeiling(t *testing.T) {
	// All oracles share the same qualification rule, so their success
	// rates are identical and form the evaluation's ceiling (Table III: all
	// three at 76%).
	rate := func(res *pipeline.Result) float64 {
		n := 0
		for _, r := range res.Records {
			if r.IoU >= 0.5 {
				n++
			}
		}
		return float64(n) / float64(len(res.Records))
	}
	a := rate(runOracle(t, OracleAccuracy))
	e := rate(runOracle(t, OracleEnergy))
	l := rate(runOracle(t, OracleLatency))
	if a != e || e != l {
		t.Fatalf("oracle success rates differ: A %.3f E %.3f L %.3f", a, e, l)
	}
}

func TestOracleAccuracySwapsMost(t *testing.T) {
	// Table III: Oracle A swaps far more than Oracle E/L (409 vs ~100).
	a := pipeline.SwapCount(runOracle(t, OracleAccuracy))
	e := pipeline.SwapCount(runOracle(t, OracleEnergy))
	if a <= e {
		t.Fatalf("Oracle A swaps (%d) not above Oracle E (%d)", a, e)
	}
}

func TestOracleUsesNonGPU(t *testing.T) {
	e := runOracle(t, OracleEnergy)
	if pipeline.NonGPUFraction(e) == 0 {
		t.Fatal("Oracle E never used a non-GPU accelerator")
	}
	// Oracle E must route many frames to low-power accelerators.
	seen := map[accel.Kind]bool{}
	for _, r := range e.Records {
		seen[r.Pair.Kind] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Oracle E used only %v", seen)
	}
}
