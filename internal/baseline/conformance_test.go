package baseline

import (
	"testing"

	"repro/internal/confgraph"
	"repro/internal/detmodel"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// conformanceCase builds one fresh runner per invocation (fresh platform,
// loader and policy state), so every row of the table is independent.
type conformanceCase struct {
	name  string
	build func(t *testing.T) pipeline.Runner
	// extra holds method-specific invariants beyond the shared loop
	// contract.
	extra func(t *testing.T, res *pipeline.Result)
}

// conformanceCases covers all five policies of the serving engine: SHIFT and
// the four baselines.
func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	// SHIFT needs the offline stage; build it once for every invocation.
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 200))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return []conformanceCase{
		{
			name: "SingleModel",
			build: func(t *testing.T) pipeline.Runner {
				r, err := NewSingleModel(zoo.Default(1), detmodel.YoloV7, "gpu")
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
			extra: func(t *testing.T, res *pipeline.Result) {
				if pipeline.PairsUsed(res) != 1 {
					t.Error("single model used more than one pair")
				}
				for i, rec := range res.Records {
					if (i == 0) != rec.LoadedModel {
						t.Fatalf("frame %d LoadedModel=%v; only frame 0 should load", i, rec.LoadedModel)
					}
				}
			},
		},
		{
			name: "Marlin",
			build: func(t *testing.T) pipeline.Runner {
				r, err := NewMarlin(zoo.Default(1), DefaultMarlinConfig())
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
			extra: func(t *testing.T, res *pipeline.Result) {
				if pipeline.SwapCount(res) != 0 {
					t.Error("Marlin swapped despite its fixed DNN pair")
				}
			},
		},
		{
			name: "FrameSkip",
			build: func(t *testing.T) pipeline.Runner {
				r, err := NewFrameSkip(zoo.Default(1), detmodel.YoloV7, "gpu", 4)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
			extra: func(t *testing.T, res *pipeline.Result) {
				for i, rec := range res.Records {
					paidCompute := rec.LatSec > 0
					if paidCompute != (i%4 == 0) {
						t.Fatalf("frame %d compute charge %v breaks the skip cadence", i, paidCompute)
					}
				}
			},
		},
		{
			name: "Oracle",
			build: func(t *testing.T) pipeline.Runner {
				r, err := NewOracle(zoo.Default(1), OracleAccuracy)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
			extra: func(t *testing.T, res *pipeline.Result) {
				for i, rec := range res.Records {
					if rec.LoadedModel {
						t.Fatalf("free-switching oracle charged a load at frame %d", i)
					}
				}
			},
		},
		{
			name: "OracleWithLoads",
			build: func(t *testing.T) pipeline.Runner {
				r, err := NewOracleWithLoads(zoo.Default(1), OracleEnergy)
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
		},
		{
			name: "SHIFT",
			build: func(t *testing.T) pipeline.Runner {
				r, err := pipeline.NewSHIFT(zoo.Default(1), ch, graph, pipeline.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				return r
			},
			extra: func(t *testing.T, res *pipeline.Result) {
				if pipeline.PairsUsed(res) < 2 {
					t.Error("SHIFT never moved off its initial pair on a context-changing scenario")
				}
			},
		},
	}
}

// TestRunnerConformance is the shared loop contract every policy must
// satisfy, replacing the per-baseline copies of these assertions: one
// record per frame in order, swap flags derived from the pair sequence,
// well-formed costs and detections, and bit-exact determinism across fresh
// runner constructions.
func TestRunnerConformance(t *testing.T) {
	frames := testFrames(t)
	for _, c := range conformanceCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runner := c.build(t)
			if runner.Name() == "" {
				t.Fatal("empty method name")
			}
			res, err := runner.Run("scenario2", frames)
			if err != nil {
				t.Fatal(err)
			}
			if res.Method != runner.Name() {
				t.Fatalf("result method %q != runner name %q", res.Method, runner.Name())
			}
			if res.Scenario != "scenario2" {
				t.Fatalf("result scenario %q", res.Scenario)
			}
			if len(res.Records) != len(frames) {
				t.Fatalf("%d records for %d frames", len(res.Records), len(frames))
			}
			for i, rec := range res.Records {
				if rec.Index != frames[i].Index {
					t.Fatalf("record %d has frame index %d, want %d", i, rec.Index, frames[i].Index)
				}
				if rec.LatSec < 0 || rec.EnergyJ < 0 {
					t.Fatalf("frame %d has negative costs: %+v", i, rec)
				}
				if rec.IoU < 0 || rec.IoU > 1 {
					t.Fatalf("frame %d IoU out of range: %v", i, rec.IoU)
				}
				if rec.Pair == (zoo.Pair{}) {
					t.Fatalf("frame %d has no serving pair", i)
				}
				wantSwap := i > 0 && rec.Pair != res.Records[i-1].Pair
				if rec.Swapped != wantSwap {
					t.Fatalf("frame %d Swapped=%v but pair change=%v", i, rec.Swapped, wantSwap)
				}
			}
			// Determinism: a fresh runner over the same frames reproduces
			// every record bit for bit.
			res2, err := c.build(t).Run("scenario2", frames)
			if err != nil {
				t.Fatal(err)
			}
			for i := range res.Records {
				if res.Records[i] != res2.Records[i] {
					t.Fatalf("record %d not deterministic:\n%+v\n%+v", i, res.Records[i], res2.Records[i])
				}
			}
			if c.extra != nil {
				c.extra(t, res)
			}
		})
	}
}
