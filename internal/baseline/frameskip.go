package baseline

import (
	"fmt"

	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// FrameSkip is the frame-skipping baseline family the paper contrasts with
// in related work (AdaVP [4], FrameHopper [6]): run the DNN on every Nth
// frame and reuse the last detection in between. It saves energy linearly
// in the skip factor but pays accuracy as the stale box drifts off the
// moving target — unlike SHIFT, which keeps detecting every frame on
// cheaper (model, accelerator) pairs. The paper's conclusion highlights
// that SHIFT needs neither tracking nor skipping; this baseline quantifies
// what skipping alone would give up.
type FrameSkip struct {
	sys  *zoo.System
	pair zoo.Pair
	skip int
	dml  *loader.Loader
}

// NewFrameSkip builds a skipping runner: the DNN runs on frames where
// index % skip == 0. skip = 1 degenerates to the single-model baseline.
func NewFrameSkip(sys *zoo.System, model, procID string, skip int) (*FrameSkip, error) {
	if skip < 1 {
		return nil, fmt.Errorf("baseline: skip factor must be >= 1, got %d", skip)
	}
	pair, err := findPair(sys, model, procID)
	if err != nil {
		return nil, err
	}
	return &FrameSkip{sys: sys, pair: pair, skip: skip, dml: loader.New(sys, loader.EvictLRR)}, nil
}

// Name implements pipeline.Runner.
func (f *FrameSkip) Name() string {
	return fmt.Sprintf("%s@%s skip=%d", f.pair.Model, f.pair.ProcID, f.skip)
}

// Run implements pipeline.Runner.
func (f *FrameSkip) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	res := &pipeline.Result{Method: f.Name(), Scenario: scenario}
	entry, err := f.sys.Entry(f.pair.Model)
	if err != nil {
		return nil, err
	}
	perf, err := f.sys.Perf(f.pair.Model, f.pair.ProcID)
	if err != nil {
		return nil, err
	}
	var last pipeline.FrameRecord
	haveLast := false
	for i, frame := range frames {
		rec := pipeline.FrameRecord{Index: frame.Index, Pair: f.pair}
		if i%f.skip == 0 {
			loadCost, err := f.dml.Ensure(f.pair)
			if err != nil {
				return nil, err
			}
			rec.LoadedModel = loadCost.Lat > 0
			rec.LatSec += loadCost.Lat.Seconds()
			rec.EnergyJ += loadCost.Energy

			execCost, err := f.sys.SoC.Exec(f.pair.ProcID, perf.LatencySec, perf.PowerW)
			if err != nil {
				return nil, err
			}
			rec.LatSec += execCost.Lat.Seconds()
			rec.EnergyJ += execCost.Energy

			det := entry.Model.Detect(frame, f.sys.Seed)
			rec.Found, rec.Conf, rec.IoU, rec.Box = det.Found, det.Conf, det.IoU, det.Box
			last = rec
			haveLast = true
		} else if haveLast && last.Found {
			// Reuse the stale detection; score it against this frame's
			// ground truth — the accuracy a consumer actually sees.
			rec.Found = true
			rec.Conf = last.Conf
			rec.Box = last.Box
			rec.IoU = last.Box.IoU(frame.GT)
			// Skipped frames still pay a negligible copy cost; model it as
			// zero compute but non-zero bookkeeping is below measurement
			// granularity, so charge nothing (the most favourable case for
			// the baseline).
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}
