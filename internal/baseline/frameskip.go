package baseline

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// FrameSkip is the frame-skipping baseline family the paper contrasts with
// in related work (AdaVP [4], FrameHopper [6]): run the DNN on every Nth
// frame and reuse the last detection in between. It saves energy linearly
// in the skip factor but pays accuracy as the stale box drifts off the
// moving target — unlike SHIFT, which keeps detecting every frame on
// cheaper (model, accelerator) pairs. The paper's conclusion highlights
// that SHIFT needs neither tracking nor skipping; this baseline quantifies
// what skipping alone would give up.
type FrameSkip struct {
	pol *frameSkipPolicy
	eng *runtime.Engine
}

// NewFrameSkip builds a skipping runner: the DNN runs on frames where
// index % skip == 0. skip = 1 degenerates to the single-model baseline.
func NewFrameSkip(sys *zoo.System, model, procID string, skip int) (*FrameSkip, error) {
	if skip < 1 {
		return nil, fmt.Errorf("baseline: skip factor must be >= 1, got %d", skip)
	}
	pair, err := findPair(sys, model, procID)
	if err != nil {
		return nil, err
	}
	pol := &frameSkipPolicy{pair: pair, skip: skip}
	return &FrameSkip{pol: pol, eng: newEngine(sys, pol)}, nil
}

// Name implements pipeline.Runner.
func (f *FrameSkip) Name() string { return f.pol.Name() }

// Run implements pipeline.Runner.
func (f *FrameSkip) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	return f.eng.Run(scenario, frames)
}

// frameSkipPolicy runs the DNN every Nth frame and serves the stale
// detection in between.
type frameSkipPolicy struct {
	pair zoo.Pair
	skip int

	last     runtime.FrameRecord
	haveLast bool
}

// Name implements runtime.Policy.
func (p *frameSkipPolicy) Name() string {
	return fmt.Sprintf("%s@%s skip=%d", p.pair.Model, p.pair.ProcID, p.skip)
}

// Reset implements runtime.Policy: forget the stale detection.
func (p *frameSkipPolicy) Reset(*runtime.Engine) error {
	p.last = runtime.FrameRecord{}
	p.haveLast = false
	return nil
}

// Step implements runtime.Policy.
func (p *frameSkipPolicy) Step(st *runtime.Step) error {
	st.Rec().Pair = p.pair
	if st.Pos()%p.skip == 0 {
		pair, err := st.Acquire(p.pair)
		if err != nil {
			return err
		}
		if err := st.Exec(pair); err != nil {
			return err
		}
		det, err := st.Detect(pair.Model)
		if err != nil {
			return err
		}
		st.RecordDetection(det)
		p.last = *st.Rec()
		p.haveLast = true
	} else if p.haveLast && p.last.Found {
		// Reuse the stale detection; score it against this frame's
		// ground truth — the accuracy a consumer actually sees.
		rec := st.Rec()
		rec.Found = true
		rec.Conf = p.last.Conf
		rec.Box = p.last.Box
		rec.IoU = p.last.Box.IoU(st.Frame().GT)
		// Skipped frames still pay a negligible copy cost; model it as
		// zero compute but non-zero bookkeeping is below measurement
		// granularity, so charge nothing (the most favourable case for
		// the baseline).
	}
	return nil
}
