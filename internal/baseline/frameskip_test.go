package baseline

import (
	"testing"

	"repro/internal/detmodel"
	"repro/internal/pipeline"
	"repro/internal/zoo"
)

func TestNewFrameSkipValidation(t *testing.T) {
	sys := zoo.Default(1)
	if _, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", 0); err == nil {
		t.Fatal("skip 0 should fail")
	}
	if _, err := NewFrameSkip(sys, "ghost", "gpu", 2); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestFrameSkipName(t *testing.T) {
	sys := zoo.Default(1)
	f, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "YoloV7@gpu skip=4" {
		t.Fatalf("name %q", f.Name())
	}
}

func TestFrameSkipEnergyScalesWithSkip(t *testing.T) {
	frames := testFrames(t)
	energyAt := func(skip int) float64 {
		sys := zoo.Default(1)
		f, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", skip)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run("s", frames)
		if err != nil {
			t.Fatal(err)
		}
		return mean(res, energyOf)
	}
	e1 := energyAt(1)
	e4 := energyAt(4)
	ratio := e1 / e4
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("skip-4 energy ratio %.2f, want ~4", ratio)
	}
}

func TestFrameSkipAccuracyDecaysWithSkip(t *testing.T) {
	frames := testFrames(t)
	iouAt := func(skip int) float64 {
		sys := zoo.Default(1)
		f, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", skip)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run("s", frames)
		if err != nil {
			t.Fatal(err)
		}
		return mean(res, iouOf)
	}
	full := iouAt(1)
	skip8 := iouAt(8)
	skip32 := iouAt(32)
	if skip8 >= full {
		t.Fatalf("skip-8 IoU %.3f not below every-frame %.3f", skip8, full)
	}
	if skip32 >= skip8 {
		t.Fatalf("skip-32 IoU %.3f not below skip-8 %.3f", skip32, skip8)
	}
}

func TestFrameSkipStaleBoxesScoredAgainstCurrentGT(t *testing.T) {
	frames := testFrames(t)
	sys := zoo.Default(1)
	f, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run("s", frames)
	if err != nil {
		t.Fatal(err)
	}
	// Reused frames carry the stale box and a recomputed IoU.
	reused := 0
	for i, rec := range res.Records {
		if i%10 == 0 || !rec.Found {
			continue
		}
		reused++
		if rec.EnergyJ != 0 || rec.LatSec != 0 {
			t.Fatalf("frame %d: stale reuse charged compute", i)
		}
		want := rec.Box.IoU(frames[i].GT)
		if rec.IoU != want {
			t.Fatalf("frame %d: stale IoU %v != recomputed %v", i, rec.IoU, want)
		}
	}
	if reused == 0 {
		t.Fatal("no stale reuse recorded")
	}
}

func TestFrameSkipVsSHIFTShape(t *testing.T) {
	// The paper's argument: at matched energy, skipping loses accuracy that
	// SHIFT keeps. Compare skip-8 YoloV7 (energy ~0.25 J) against SHIFT's
	// Table III row (energy ~0.26 J, IoU ~0.6): the skipping baseline's
	// accuracy on scenario 2 should be clearly below its every-frame value,
	// while SHIFT's (measured elsewhere) is not.
	frames := testFrames(t)
	sys := zoo.Default(1)
	f, err := NewFrameSkip(sys, detmodel.YoloV7, "gpu", 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run("s", frames)
	if err != nil {
		t.Fatal(err)
	}
	skipEnergy := mean(res, energyOf)
	if skipEnergy > 0.4 {
		t.Fatalf("skip-8 energy %.3f should be in SHIFT's band", skipEnergy)
	}
	s := pipeline.SwapCount(res)
	if s != 0 {
		t.Fatalf("frame-skip baseline cannot swap, got %d", s)
	}
}
