package baseline

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// OracleMetric selects which objective an Oracle optimizes.
type OracleMetric int

// The three Oracle variants of Table III.
const (
	// OracleEnergy minimizes per-frame energy among qualifying pairs.
	OracleEnergy OracleMetric = iota
	// OracleAccuracy maximizes IoU among qualifying pairs.
	OracleAccuracy
	// OracleLatency minimizes per-frame latency among qualifying pairs.
	OracleLatency
)

// String names the metric as in Table III's rows.
func (m OracleMetric) String() string {
	switch m {
	case OracleEnergy:
		return "Oracle E"
	case OracleAccuracy:
		return "Oracle A"
	case OracleLatency:
		return "Oracle L"
	default:
		return "Oracle ?"
	}
}

// Oracle is the paper's performance ceiling: it inspects every pair's actual
// outcome on each frame (possible because detections are deterministic),
// keeps the pairs whose IoU clears 0.5, and picks the metric optimum. When
// no pair qualifies, selection falls back to pure metric optimization.
// All models are assumed resident: switching is free and no load costs are
// charged, exactly as the paper defines the Oracle.
type Oracle struct {
	sys    *zoo.System
	metric OracleMetric
	// candidates are deduplicated per (model, kind).
	candidates []zoo.Pair
	// chargeLoads switches on the load-aware variant: instead of assuming
	// every model resident, the oracle pays real DML loads and evictions.
	// The delta against the standard oracle quantifies how much of the
	// ceiling comes from the paper's free-switching assumption.
	chargeLoads bool
	dml         *loader.Loader
}

// NewOracleWithLoads builds the load-aware oracle variant (not part of
// Table III; used by the assumptions ablation).
func NewOracleWithLoads(sys *zoo.System, metric OracleMetric) (*Oracle, error) {
	o, err := NewOracle(sys, metric)
	if err != nil {
		return nil, err
	}
	o.chargeLoads = true
	o.dml = loader.New(sys, loader.EvictLRR)
	return o, nil
}

// NewOracle builds an Oracle for the given metric.
func NewOracle(sys *zoo.System, metric OracleMetric) (*Oracle, error) {
	if metric != OracleEnergy && metric != OracleAccuracy && metric != OracleLatency {
		return nil, fmt.Errorf("baseline: unknown oracle metric %d", metric)
	}
	seen := map[string]bool{}
	var cands []zoo.Pair
	for _, p := range sys.RuntimePairs() {
		key := p.Model + "/" + p.Kind.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("baseline: system has no runtime pairs")
	}
	return &Oracle{sys: sys, metric: metric, candidates: cands}, nil
}

// Name implements pipeline.Runner.
func (o *Oracle) Name() string {
	if o.chargeLoads {
		return o.metric.String() + " (loads)"
	}
	return o.metric.String()
}

// better reports whether challenger (with its outcome) beats incumbent under
// the oracle's metric. Ties break toward the lexicographically smaller pair
// string for determinism.
func (o *Oracle) better(challenger, incumbent candidateOutcome) bool {
	var c, i float64
	switch o.metric {
	case OracleEnergy:
		c, i = -challenger.energy, -incumbent.energy
	case OracleAccuracy:
		c, i = challenger.iou, incumbent.iou
	case OracleLatency:
		c, i = -challenger.latency, -incumbent.latency
	}
	if c != i {
		return c > i
	}
	return challenger.pair.String() < incumbent.pair.String()
}

// candidateOutcome is one pair's hypothetical result on the current frame.
type candidateOutcome struct {
	pair    zoo.Pair
	found   bool
	conf    float64
	iou     float64
	box     geom.Rect
	latency float64 // expected (mean) values: the oracle plans, then executes
	energy  float64
}

// Run implements pipeline.Runner.
func (o *Oracle) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	res := &pipeline.Result{Method: o.Name(), Scenario: scenario}
	var prevPair zoo.Pair
	havePrev := false
	for _, frame := range frames {
		// Evaluate every candidate's actual outcome on this frame.
		var best candidateOutcome
		haveBest := false
		var bestQualified candidateOutcome
		haveQualified := false
		for _, p := range o.candidates {
			entry, err := o.sys.Entry(p.Model)
			if err != nil {
				return nil, err
			}
			perf := entry.PerfByKind[p.Kind]
			det := entry.Model.Detect(frame, o.sys.Seed)
			out := candidateOutcome{
				pair:    p,
				found:   det.Found,
				conf:    det.Conf,
				iou:     det.IoU,
				box:     det.Box,
				latency: perf.LatencySec,
				energy:  perf.EnergyJ(),
			}
			if !haveBest || o.better(out, best) {
				best = out
				haveBest = true
			}
			if out.iou >= 0.5 {
				if !haveQualified || o.better(out, bestQualified) {
					bestQualified = out
					haveQualified = true
				}
			}
		}
		choice := best
		if haveQualified {
			choice = bestQualified
		}

		rec := pipeline.FrameRecord{
			Index: frame.Index,
			Pair:  choice.pair,
			Found: choice.found,
			Conf:  choice.conf,
			IoU:   choice.iou,
			Box:   choice.box,
		}
		rec.Swapped = havePrev && choice.pair != prevPair
		prevPair, havePrev = choice.pair, true

		// The load-aware variant pays residency like any real deployment.
		if o.chargeLoads {
			loadCost, err := o.dml.Ensure(choice.pair)
			if err != nil {
				return nil, err
			}
			rec.LoadedModel = loadCost.Lat > 0
			rec.LatSec += loadCost.Lat.Seconds()
			rec.EnergyJ += loadCost.Energy
		}

		// Execute only the chosen pair on the virtual platform.
		cost, err := o.sys.SoC.Exec(choice.pair.ProcID, choice.latency, choice.energy/maxf(choice.latency, 1e-9))
		if err != nil {
			return nil, err
		}
		rec.LatSec += cost.Lat.Seconds()
		rec.EnergyJ += cost.Energy
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
