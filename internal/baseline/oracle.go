package baseline

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// OracleMetric selects which objective an Oracle optimizes.
type OracleMetric int

// The three Oracle variants of Table III.
const (
	// OracleEnergy minimizes per-frame energy among qualifying pairs.
	OracleEnergy OracleMetric = iota
	// OracleAccuracy maximizes IoU among qualifying pairs.
	OracleAccuracy
	// OracleLatency minimizes per-frame latency among qualifying pairs.
	OracleLatency
)

// String names the metric as in Table III's rows.
func (m OracleMetric) String() string {
	switch m {
	case OracleEnergy:
		return "Oracle E"
	case OracleAccuracy:
		return "Oracle A"
	case OracleLatency:
		return "Oracle L"
	default:
		return "Oracle ?"
	}
}

// Oracle is the paper's performance ceiling: it inspects every pair's actual
// outcome on each frame (possible because detections are deterministic),
// keeps the pairs whose IoU clears 0.5, and picks the metric optimum. When
// no pair qualifies, selection falls back to pure metric optimization.
// All models are assumed resident: switching is free and no load costs are
// charged, exactly as the paper defines the Oracle.
type Oracle struct {
	pol *oraclePolicy
	eng *runtime.Engine
}

// NewOracleWithLoads builds the load-aware oracle variant (not part of
// Table III; used by the assumptions ablation): instead of assuming every
// model resident, the oracle pays real DML loads and evictions. The delta
// against the standard oracle quantifies how much of the ceiling comes from
// the paper's free-switching assumption.
func NewOracleWithLoads(sys *zoo.System, metric OracleMetric) (*Oracle, error) {
	o, err := NewOracle(sys, metric)
	if err != nil {
		return nil, err
	}
	o.pol.chargeLoads = true
	return o, nil
}

// NewOracle builds an Oracle for the given metric.
func NewOracle(sys *zoo.System, metric OracleMetric) (*Oracle, error) {
	if metric != OracleEnergy && metric != OracleAccuracy && metric != OracleLatency {
		return nil, fmt.Errorf("baseline: unknown oracle metric %d", metric)
	}
	seen := map[string]bool{}
	var cands []zoo.Pair
	for _, p := range sys.RuntimePairs() {
		key := p.Model + "/" + p.Kind.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("baseline: system has no runtime pairs")
	}
	pol := &oraclePolicy{sys: sys, metric: metric, candidates: cands}
	return &Oracle{pol: pol, eng: newEngine(sys, pol)}, nil
}

// Name implements pipeline.Runner.
func (o *Oracle) Name() string { return o.pol.Name() }

// Run implements pipeline.Runner.
func (o *Oracle) Run(scenario string, frames []scene.Frame) (*pipeline.Result, error) {
	return o.eng.Run(scenario, frames)
}

// oraclePolicy evaluates every candidate per frame and executes the best.
type oraclePolicy struct {
	sys    *zoo.System
	metric OracleMetric
	// candidates are deduplicated per (model, kind).
	candidates []zoo.Pair
	// chargeLoads switches on the load-aware variant.
	chargeLoads bool
}

// Name implements runtime.Policy.
func (p *oraclePolicy) Name() string {
	if p.chargeLoads {
		return p.metric.String() + " (loads)"
	}
	return p.metric.String()
}

// Reset implements runtime.Policy (no per-stream state).
func (p *oraclePolicy) Reset(*runtime.Engine) error { return nil }

// better reports whether challenger (with its outcome) beats incumbent under
// the oracle's metric. Ties break toward the lexicographically smaller pair
// string for determinism.
func (p *oraclePolicy) better(challenger, incumbent candidateOutcome) bool {
	var c, i float64
	switch p.metric {
	case OracleEnergy:
		c, i = -challenger.energy, -incumbent.energy
	case OracleAccuracy:
		c, i = challenger.iou, incumbent.iou
	case OracleLatency:
		c, i = -challenger.latency, -incumbent.latency
	}
	if c != i {
		return c > i
	}
	return challenger.pair.String() < incumbent.pair.String()
}

// candidateOutcome is one pair's hypothetical result on the current frame.
type candidateOutcome struct {
	pair    zoo.Pair
	found   bool
	conf    float64
	iou     float64
	box     geom.Rect
	latency float64 // expected (mean) values: the oracle plans, then executes
	energy  float64
}

// outcome evaluates one candidate's actual result on the current frame.
func (p *oraclePolicy) outcome(st *runtime.Step, pair zoo.Pair) (candidateOutcome, error) {
	entry, err := p.sys.Entry(pair.Model)
	if err != nil {
		return candidateOutcome{}, err
	}
	perf := entry.PerfByKind[pair.Kind]
	det, err := st.Detect(pair.Model)
	if err != nil {
		return candidateOutcome{}, err
	}
	return candidateOutcome{
		pair:    pair,
		found:   det.Found,
		conf:    det.Conf,
		iou:     det.IoU,
		box:     det.Box,
		latency: perf.LatencySec,
		energy:  perf.EnergyJ(),
	}, nil
}

// Step implements runtime.Policy.
func (p *oraclePolicy) Step(st *runtime.Step) error {
	// Evaluate every candidate's actual outcome on this frame.
	var best candidateOutcome
	haveBest := false
	var bestQualified candidateOutcome
	haveQualified := false
	for _, c := range p.candidates {
		out, err := p.outcome(st, c)
		if err != nil {
			return err
		}
		if !haveBest || p.better(out, best) {
			best = out
			haveBest = true
		}
		if out.iou >= 0.5 {
			if !haveQualified || p.better(out, bestQualified) {
				bestQualified = out
				haveQualified = true
			}
		}
	}
	choice := best
	if haveQualified {
		choice = bestQualified
	}

	// The load-aware variant pays residency like any real deployment; under
	// multi-stream memory pressure the engine may substitute the pair this
	// stream already holds, in which case the outcome is re-evaluated.
	if p.chargeLoads {
		pair, err := st.Acquire(choice.pair)
		if err != nil {
			return err
		}
		if pair != choice.pair {
			if choice, err = p.outcome(st, pair); err != nil {
				return err
			}
		}
	}

	rec := st.Rec()
	rec.Pair = choice.pair
	rec.Found, rec.Conf, rec.IoU, rec.Box = choice.found, choice.conf, choice.iou, choice.box

	// Execute only the chosen pair on the virtual platform.
	return st.ExecPerf(choice.pair.ProcID, choice.latency, choice.energy/maxf(choice.latency, 1e-9))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
