package baseline

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/zoo"
)

func runLoadAwareOracle(t *testing.T, metric OracleMetric) *pipeline.Result {
	t.Helper()
	sys := zoo.Default(1)
	o, err := NewOracleWithLoads(sys, metric)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run("s", testFrames(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOracleWithLoadsName(t *testing.T) {
	sys := zoo.Default(1)
	o, err := NewOracleWithLoads(sys, OracleAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "Oracle A (loads)" {
		t.Fatalf("name %q", o.Name())
	}
}

func TestOracleWithLoadsPaysResidency(t *testing.T) {
	res := runLoadAwareOracle(t, OracleAccuracy)
	loads := 0
	for _, rec := range res.Records {
		if rec.LoadedModel {
			loads++
		}
	}
	if loads == 0 {
		t.Fatal("load-aware oracle never paid a load")
	}
}

func TestFreeSwitchingAssumptionQuantified(t *testing.T) {
	// The paper's Oracle-A swaps 409 times for free. Charging real loads
	// must make the same decision sequence strictly more expensive in both
	// time and energy — the size of the free-switching subsidy.
	free := runOracle(t, OracleAccuracy)
	paid := runLoadAwareOracle(t, OracleAccuracy)
	var freeE, paidE, freeT, paidT float64
	for i := range free.Records {
		freeE += free.Records[i].EnergyJ
		freeT += free.Records[i].LatSec
	}
	for i := range paid.Records {
		paidE += paid.Records[i].EnergyJ
		paidT += paid.Records[i].LatSec
	}
	if paidE <= freeE || paidT <= freeT {
		t.Fatalf("load-aware oracle not more expensive: energy %.1f vs %.1f, time %.1f vs %.1f",
			paidE, freeE, paidT, freeT)
	}
	// The subsidy must be substantial: hundreds of swaps imply many engine
	// loads, so at least a 1.5x energy gap on this scenario.
	if paidE < freeE*1.5 {
		t.Logf("note: free-switching subsidy is modest on this scenario (%.2fx)", paidE/freeE)
	}
}

func TestOracleWithLoadsSameDetections(t *testing.T) {
	// Loads change the costs, never the detection outcomes: both variants
	// pick from the same deterministic per-frame candidate set.
	free := runOracle(t, OracleEnergy)
	paid := runLoadAwareOracle(t, OracleEnergy)
	for i := range free.Records {
		if free.Records[i].IoU != paid.Records[i].IoU ||
			free.Records[i].Pair != paid.Records[i].Pair {
			t.Fatalf("frame %d decisions diverged between oracle variants", i)
		}
	}
}
