// Package checkpoint defines the durable wire format for serving-session
// checkpoints: the self-describing byte encoding a coordinator journals to
// survive worker crashes and ships across process boundaries to migrate
// streams (internal/distrib).
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "SHFTCKPT"
//	version uint32   (currently 1)
//	section*         repeated until end of input:
//	    id      uint32
//	    length  uint32
//	    payload [length]byte
//	    crc     uint32   IEEE CRC-32 of payload
//
// Sections carry the stream identity and cursor (including the frame source
// by reference — scenario name, render seed, frame count — since scenarios
// re-render deterministically and inlining pixels would dwarf the
// checkpoint), the served records and timings, the portable policy state,
// the residency manifest, and free-form metrics counters. Unknown section
// ids are skipped so minor additive fields do not bump the version; layout
// changes do.
//
// Decode is total: any corrupt, truncated or future-version input returns a
// typed error (ErrBadMagic, ErrVersion, ErrTruncated, ErrCorrupt) and never
// panics. Decoding allocates nothing the input's own length does not justify
// and takes no residency references — refs appear only when the rebuilt
// snapshot is restored, and the restore path releases them on failure.
//
// Encoding is deterministic: the same checkpoint always serializes to the
// same bytes (counters are sorted), so journal digests are stable.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/sched"
)

// magic opens every checkpoint; version gates the layout.
const (
	magic   = "SHFTCKPT"
	version = 1
)

// Section ids. New sections append; reusing an id is a version bump.
const (
	secStream    = 1
	secRecords   = 2
	secTimings   = 3
	secPolicy    = 4
	secResidency = 5
	secCounters  = 6
)

// Policy-state kinds within secPolicy.
const (
	policyNone  = 0 // non-portable policy: restore re-learns via Reset
	policyShift = 1 // pipeline.State: scheduler decision state + active pair
)

// Typed decode errors. Decode wraps them with context; match with errors.Is.
var (
	ErrBadMagic  = errors.New("checkpoint: bad magic")
	ErrVersion   = errors.New("checkpoint: unsupported version")
	ErrTruncated = errors.New("checkpoint: truncated input")
	ErrCorrupt   = errors.New("checkpoint: corrupt input")
)

// Checkpoint is the decoded form: the session's serialized view plus the
// frame source by reference and the journal's metrics counters.
type Checkpoint struct {
	// Session is everything runtime.SnapshotFromData needs except the
	// frames themselves.
	Session *runtime.SnapshotData
	// Scenario and RenderSeed name the frame source: the stream's frames
	// are the first Session.FrameCount frames of Scenario rendered with
	// RenderSeed.
	Scenario   string
	RenderSeed uint64
	// Counters carries journal metadata (sequence numbers, replay counts);
	// the format does not interpret them.
	Counters map[string]uint64
}

// Frames re-renders the checkpoint's frame source. Workers use it when the
// coordinator hands them a checkpoint and nothing else; in-process callers
// that already hold the rendered scenario can skip it and pass their slice
// to Snapshot directly.
func (c *Checkpoint) Frames() ([]scene.Frame, error) {
	s, err := scene.ByName(c.Scenario)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: stream %q: %w", c.Session.Name, err)
	}
	frames := s.Render(c.RenderSeed)
	if len(frames) < c.Session.FrameCount {
		return nil, fmt.Errorf("checkpoint: stream %q needs %d frames, scenario %q renders %d",
			c.Session.Name, c.Session.FrameCount, c.Scenario, len(frames))
	}
	return frames[:c.Session.FrameCount], nil
}

// Snapshot rebuilds the runtime checkpoint from the decoded form plus the
// re-supplied frames.
func (c *Checkpoint) Snapshot(frames []scene.Frame) (*runtime.SessionSnapshot, error) {
	return runtime.SnapshotFromData(c.Session, frames)
}

// EncodeSnapshot serializes a live session checkpoint: the common case where
// the caller holds a *runtime.SessionSnapshot and the stream's frame-source
// reference.
func EncodeSnapshot(snap *runtime.SessionSnapshot, scenario string, renderSeed uint64, counters map[string]uint64) ([]byte, error) {
	return Encode(&Checkpoint{
		Session:    snap.Data(),
		Scenario:   scenario,
		RenderSeed: renderSeed,
		Counters:   counters,
	})
}

// Encode serializes a checkpoint. It fails on state the format cannot carry
// (an unrecognized portable-policy type) rather than dropping it silently.
func Encode(c *Checkpoint) ([]byte, error) {
	if c.Session == nil {
		return nil, fmt.Errorf("checkpoint: encode with no session data")
	}
	d := c.Session
	if len(d.Records) != len(d.Timings) {
		return nil, fmt.Errorf("checkpoint: stream %q has %d records but %d timings",
			d.Name, len(d.Records), len(d.Timings))
	}

	var out writer
	out.bytes([]byte(magic))
	out.u32(version)

	var p writer
	p.str(d.Name)
	p.str(d.PolicyName)
	p.f64(d.PeriodSec)
	p.i64(int64(d.FrameCount))
	p.i64(int64(d.Next))
	p.i64(int64(d.Base))
	p.i64(int64(d.Done))
	p.i64(int64(d.Deadline))
	p.pair(d.Prev)
	p.str(c.Scenario)
	p.u64(c.RenderSeed)
	out.section(secStream, p.take())

	p.i64(int64(len(d.Records)))
	for _, r := range d.Records {
		p.i64(int64(r.Index))
		p.pair(r.Pair)
		p.bool(r.Found)
		p.f64(r.Conf)
		p.f64(r.IoU)
		p.f64(r.Box.X)
		p.f64(r.Box.Y)
		p.f64(r.Box.W)
		p.f64(r.Box.H)
		p.f64(r.LatSec)
		p.f64(r.EnergyJ)
		p.bool(r.Swapped)
		p.bool(r.LoadedModel)
		p.bool(r.Rescheduled)
		p.f64(r.Similarity)
		p.f64(r.Gate)
	}
	out.section(secRecords, p.take())

	p.i64(int64(len(d.Timings)))
	for _, t := range d.Timings {
		p.i64(int64(t.Arrival))
		p.i64(int64(t.Start))
		p.i64(int64(t.Done))
		p.i64(int64(t.Wait))
		p.i64(int64(t.Deadline))
	}
	out.section(secTimings, p.take())

	if err := encodePolicy(&p, d.PolicyState); err != nil {
		return nil, err
	}
	out.section(secPolicy, p.take())

	p.bool(d.HaveHeld)
	p.pair(d.Held)
	out.section(secResidency, p.take())

	names := make([]string, 0, len(c.Counters))
	for name := range c.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	p.i64(int64(len(names)))
	for _, name := range names {
		p.str(name)
		p.u64(c.Counters[name])
	}
	out.section(secCounters, p.take())

	return out.take(), nil
}

// Decode parses a serialized checkpoint. The input is untrusted: every read
// is bounds-checked, every section CRC-verified, and failures return typed
// errors — never a panic, never an oversized allocation.
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	r := reader{b: b, off: len(magic), truncErr: ErrTruncated}
	if v := r.u32(); v != version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, v, version)
	}

	c := &Checkpoint{Session: &runtime.SnapshotData{}, Counters: map[string]uint64{}}
	seen := map[uint32]bool{}
	var haveStream bool
	for r.remaining() > 0 && r.err == nil {
		id := r.u32()
		payload := r.block()
		crc := r.u32()
		if r.err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: section %d fails CRC", ErrCorrupt, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		seen[id] = true
		// Sub-reads past a CRC-valid payload's end mean a malformed
		// encoding, not a short input.
		p := reader{b: payload, truncErr: ErrCorrupt}
		var err error
		switch id {
		case secStream:
			err = decodeStream(&p, c)
			haveStream = err == nil
		case secRecords:
			err = decodeRecords(&p, c.Session)
		case secTimings:
			err = decodeTimings(&p, c.Session)
		case secPolicy:
			err = decodePolicy(&p, c.Session)
		case secResidency:
			c.Session.HaveHeld = p.bool()
			c.Session.Held = p.pair()
			err = p.close(id)
		case secCounters:
			err = decodeCounters(&p, c)
		default:
			// Unknown section: an additive field from a newer minor
			// revision. The CRC already vouched for it; skip.
		}
		if err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if !haveStream {
		return nil, fmt.Errorf("%w: no stream section", ErrCorrupt)
	}
	// Every v1 section is mandatory: a checkpoint cut at a section boundary
	// has intact framing, and only this census catches it.
	for id := uint32(secStream); id <= secCounters; id++ {
		if !seen[id] {
			return nil, fmt.Errorf("%w: missing section %d", ErrTruncated, id)
		}
	}
	if err := validate(c); err != nil {
		return nil, err
	}
	return c, nil
}

// validate applies the cross-section invariants a well-formed checkpoint
// satisfies; violations mean crafted or corrupted input that slipped past
// the per-section CRCs.
func validate(c *Checkpoint) error {
	d := c.Session
	if d.FrameCount < 0 || d.Next < 0 || d.Next > d.FrameCount {
		return fmt.Errorf("%w: cursor %d over %d frames", ErrCorrupt, d.Next, d.FrameCount)
	}
	if len(d.Records) != len(d.Timings) {
		return fmt.Errorf("%w: %d records, %d timings", ErrCorrupt, len(d.Records), len(d.Timings))
	}
	if len(d.Records) > d.Next {
		return fmt.Errorf("%w: %d records past cursor %d", ErrCorrupt, len(d.Records), d.Next)
	}
	if !(d.PeriodSec >= 0) || d.Base < 0 || d.Done < 0 || d.Deadline < 0 {
		return fmt.Errorf("%w: negative schedule", ErrCorrupt)
	}
	return nil
}

func decodeStream(p *reader, c *Checkpoint) error {
	d := c.Session
	d.Name = p.str()
	d.PolicyName = p.str()
	d.PeriodSec = p.f64()
	d.FrameCount = p.int()
	d.Next = p.int()
	d.Base = p.dur()
	d.Done = p.dur()
	d.Deadline = p.dur()
	d.Prev = p.pair()
	c.Scenario = p.str()
	c.RenderSeed = p.u64()
	return p.close(secStream)
}

func decodeRecords(p *reader, d *runtime.SnapshotData) error {
	// A record serializes to ≥ 62 bytes; the count can never exceed what
	// the payload could hold, so a crafted count cannot force a huge
	// allocation.
	n := p.count(62)
	recs := make([]runtime.FrameRecord, 0, n)
	for i := 0; i < n; i++ {
		var rec runtime.FrameRecord
		rec.Index = p.int()
		rec.Pair = p.pair()
		rec.Found = p.bool()
		rec.Conf = p.f64()
		rec.IoU = p.f64()
		rec.Box.X = p.f64()
		rec.Box.Y = p.f64()
		rec.Box.W = p.f64()
		rec.Box.H = p.f64()
		rec.LatSec = p.f64()
		rec.EnergyJ = p.f64()
		rec.Swapped = p.bool()
		rec.LoadedModel = p.bool()
		rec.Rescheduled = p.bool()
		rec.Similarity = p.f64()
		rec.Gate = p.f64()
		recs = append(recs, rec)
	}
	d.Records = recs
	return p.close(secRecords)
}

func decodeTimings(p *reader, d *runtime.SnapshotData) error {
	n := p.count(40)
	ts := make([]runtime.FrameTiming, 0, n)
	for i := 0; i < n; i++ {
		var t runtime.FrameTiming
		t.Arrival = p.dur()
		t.Start = p.dur()
		t.Done = p.dur()
		t.Wait = p.dur()
		t.Deadline = p.dur()
		ts = append(ts, t)
	}
	d.Timings = ts
	return p.close(secTimings)
}

func decodeCounters(p *reader, c *Checkpoint) error {
	n := p.count(12)
	for i := 0; i < n; i++ {
		name := p.str()
		val := p.u64()
		if p.err != nil {
			break
		}
		if _, dup := c.Counters[name]; dup {
			return fmt.Errorf("%w: duplicate counter %q", ErrCorrupt, name)
		}
		c.Counters[name] = val
	}
	return p.close(secCounters)
}

// encodePolicy serializes the portable policy state. The format knows the
// concrete types it carries; an unknown type is an encode error so callers
// find out at checkpoint time, not at a failed restore after a crash.
func encodePolicy(p *writer, state any) error {
	switch st := state.(type) {
	case nil:
		p.u8(policyNone)
		return nil
	case *pipeline.State:
		p.u8(policyShift)
		p.pair(st.Cur)
		return encodeSchedState(p, st.Sched.Data())
	default:
		return fmt.Errorf("checkpoint: unencodable policy state %T", state)
	}
}

func encodeSchedState(p *writer, d *sched.StateData) error {
	n := len(d.Models)
	if len(d.Bufs) != n || len(d.RVals) != n || len(d.RSet) != n || len(d.Valid) != n {
		return fmt.Errorf("checkpoint: inconsistent scheduler state: %d models, %d/%d/%d/%d entries",
			n, len(d.Bufs), len(d.RVals), len(d.RSet), len(d.Valid))
	}
	p.i64(int64(n))
	for i := 0; i < n; i++ {
		p.str(d.Models[i])
		p.i64(int64(len(d.Bufs[i])))
		for _, v := range d.Bufs[i] {
			p.f64(v)
		}
		p.f64(d.RVals[i])
		p.bool(d.RSet[i])
		p.bool(d.Valid[i])
	}
	p.image(d.LastImg)
	p.image(d.LastBox)
	p.u64(d.ImgSum)
	p.u64(d.ImgSumSq)
	p.u64(d.BoxSum)
	p.u64(d.BoxSumSq)
	p.i64(int64(d.BoxFlip))
	return nil
}

func decodePolicy(p *reader, d *runtime.SnapshotData) error {
	switch kind := p.u8(); {
	case p.err != nil:
		return p.err
	case kind == policyNone:
		return p.close(secPolicy)
	case kind == policyShift:
		cur := p.pair()
		sd, err := decodeSchedState(p)
		if err != nil {
			return err
		}
		if err := p.close(secPolicy); err != nil {
			return err
		}
		st, err := sched.StateFromData(sd)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		d.PolicyState = &pipeline.State{Sched: st, Cur: cur}
		return nil
	default:
		return fmt.Errorf("%w: unknown policy state kind %d", ErrCorrupt, kind)
	}
}

func decodeSchedState(p *reader) (*sched.StateData, error) {
	n := p.count(16)
	d := &sched.StateData{
		Models: make([]string, 0, n),
		Bufs:   make([][]float64, 0, n),
		RVals:  make([]float64, 0, n),
		RSet:   make([]bool, 0, n),
		Valid:  make([]bool, 0, n),
	}
	for i := 0; i < n; i++ {
		d.Models = append(d.Models, p.str())
		m := p.count(8)
		buf := make([]float64, 0, m)
		for j := 0; j < m; j++ {
			buf = append(buf, p.f64())
		}
		d.Bufs = append(d.Bufs, buf)
		d.RVals = append(d.RVals, p.f64())
		d.RSet = append(d.RSet, p.bool())
		d.Valid = append(d.Valid, p.bool())
	}
	d.LastImg = p.image()
	d.LastBox = p.image()
	d.ImgSum = p.u64()
	d.ImgSumSq = p.u64()
	d.BoxSum = p.u64()
	d.BoxSumSq = p.u64()
	d.BoxFlip = p.int()
	return d, p.err
}
