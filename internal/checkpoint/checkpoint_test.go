package checkpoint_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

var (
	testEnv    *experiments.Env
	testFrames []scene.Frame
)

// fixture mirrors the churn conformance fixture (seed 1, scenario-2 prefix,
// 300 validation frames) so wire round-trips are exercised on the exact
// state the golden digest pins.
func fixture(t testing.TB) (*experiments.Env, []scene.Frame) {
	t.Helper()
	if testEnv == nil {
		env, err := experiments.NewEnv(1, 300)
		if err != nil {
			t.Fatal(err)
		}
		testEnv = env
		testFrames = env.Frames(scene.Scenario2())[:120]
	}
	return testEnv, testFrames
}

func shiftSession(t testing.TB, env *experiments.Env, frames []scene.Frame) (*runtime.Session, *loader.Loader) {
	t.Helper()
	sys := zoo.Default(1)
	dml := loader.New(sys, loader.EvictLRR)
	pol, err := pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := runtime.OpenSession(sys, dml, runtime.StreamSpec{
		Name: "wire", Frames: frames, PeriodSec: 0.1, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, dml
}

// encodeAt opens a SHIFT session, steps it k frames, drains it, and encodes
// the checkpoint.
func encodeAt(t testing.TB, k int) ([]byte, []scene.Frame) {
	t.Helper()
	env, frames := fixture(t)
	sess, dml := shiftSession(t, env, frames)
	for i := 0; i < k; i++ {
		if err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sess.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n := dml.TotalRefs(); n != 0 {
		t.Fatalf("drained source holds %d refs", n)
	}
	b, err := checkpoint.EncodeSnapshot(snap, "scenario2", env.Seed, map[string]uint64{
		"journal_seq": uint64(k),
		"served":      uint64(snap.Served()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, frames
}

// TestWireRoundTripResume is the wire-level half of the churn conformance
// contract: Open → Step×k → Drain → Encode → Decode → Restore on a fresh
// device → Step to end must serve every frame exactly once, with the decoded
// checkpoint reporting the same cursor and counters that went in.
func TestWireRoundTripResume(t *testing.T) {
	env, frames := fixture(t)
	for _, k := range []int{0, 1, 37, len(frames) - 1} {
		b, frames := encodeAt(t, k)
		c, err := checkpoint.Decode(b)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		if c.Session.Name != "wire" || c.Session.Next != k || c.Scenario != "scenario2" {
			t.Fatalf("k=%d: decoded identity %q next %d scenario %q", k, c.Session.Name, c.Session.Next, c.Scenario)
		}
		if c.Counters["journal_seq"] != uint64(k) {
			t.Fatalf("k=%d: counters lost: %v", k, c.Counters)
		}
		snap, err := c.Snapshot(frames)
		if err != nil {
			t.Fatal(err)
		}

		sys := zoo.Default(1)
		dml := loader.New(sys, loader.EvictLRR)
		pol, err := pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var at time.Duration
		if k > 0 {
			at = snap.Partial().Timings[k-1].Done
		}
		sess, err := runtime.RestoreSession(sys, dml, snap, pol, at)
		if err != nil {
			t.Fatalf("k=%d: restore decoded checkpoint: %v", k, err)
		}
		for !sess.Done() {
			if err := sess.Step(); err != nil {
				t.Fatal(err)
			}
		}
		recs := sess.Result().Result.Records
		if len(recs) != len(frames) {
			t.Fatalf("k=%d: %d records, want %d", k, len(recs), len(frames))
		}
		for i, rec := range recs {
			if rec.Index != frames[i].Index {
				t.Fatalf("k=%d: record %d is frame %d (dropped or duplicated across the wire)", k, i, rec.Index)
			}
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if n := dml.TotalRefs(); n != 0 {
			t.Fatalf("k=%d: resumed session leaked %d refs", k, n)
		}
	}
}

// TestEncodeDeterministic pins byte-stable encoding: the same checkpoint
// serializes identically every time (counters are sorted), so journal
// digests are reproducible.
func TestEncodeDeterministic(t *testing.T) {
	a, _ := encodeAt(t, 23)
	b, _ := encodeAt(t, 23)
	if !bytes.Equal(a, b) {
		t.Fatal("identical checkpoints encoded to different bytes")
	}
}

// TestFramesByReference pins the frame-source reference: a worker holding
// only the checkpoint bytes re-renders the exact frames the stream was
// opened with.
func TestFramesByReference(t *testing.T) {
	b, frames := encodeAt(t, 9)
	c, err := checkpoint.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("re-rendered %d frames, want %d", len(got), len(frames))
	}
	for i := range got {
		if got[i].Index != frames[i].Index || !bytes.Equal(got[i].Image.Pix, frames[i].Image.Pix) {
			t.Fatalf("re-rendered frame %d differs from the original", i)
		}
	}
}

// TestDecodeTypedErrors walks the malformed-input classes the format must
// reject with its typed errors: wrong magic, future version, truncation at
// every prefix length, and CRC-breaking corruption at every byte.
func TestDecodeTypedErrors(t *testing.T) {
	valid, _ := encodeAt(t, 5)
	if _, err := checkpoint.Decode(valid); err != nil {
		t.Fatal("valid checkpoint must decode:", err)
	}

	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, err := checkpoint.Decode(bad); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Fatalf("flipped magic: got %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), valid...)
	bad[8] = 0xfe // version bump
	if _, err := checkpoint.Decode(bad); !errors.Is(err, checkpoint.ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}

	for n := 0; n < len(valid); n++ {
		_, err := checkpoint.Decode(valid[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
		if !errors.Is(err, checkpoint.ErrTruncated) && !errors.Is(err, checkpoint.ErrBadMagic) &&
			!errors.Is(err, checkpoint.ErrCorrupt) && !errors.Is(err, checkpoint.ErrVersion) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}

	for i := 12; i < len(valid); i += 97 {
		bad = append([]byte(nil), valid...)
		bad[i] ^= 0x40
		if _, err := checkpoint.Decode(bad); err == nil {
			// A flip inside a section payload breaks its CRC; a flip in the
			// framing breaks structure. Either way decode must not accept a
			// checkpoint whose bytes changed — except flips that only touch
			// an unknown-section id, which cannot occur in a v1 encoding's
			// section headers at these offsets unless the flip lands on the
			// id field and the CRC still matches its payload. Verify the
			// decoded result at least differs from lying about the cursor.
			c, _ := checkpoint.Decode(bad)
			orig, _ := checkpoint.Decode(valid)
			if c != nil && orig != nil && c.Session.Name == orig.Session.Name &&
				c.Session.Next == orig.Session.Next && len(c.Session.Records) == len(orig.Session.Records) {
				continue // flip landed somewhere immaterial (e.g. made a section unknown → skipped)
			}
			t.Fatalf("bit flip at %d decoded cleanly to a different checkpoint", i)
		}
	}
}

// TestEncodeRejectsForeignPolicyState pins the encode-time failure: a policy
// state the format does not know must fail at checkpoint time, not at a
// failed restore after a crash.
func TestEncodeRejectsForeignPolicyState(t *testing.T) {
	b, frames := encodeAt(t, 3)
	c, err := checkpoint.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(frames)
	if err != nil {
		t.Fatal(err)
	}
	_ = snap
	c.Session.PolicyState = struct{ X int }{1}
	if _, err := checkpoint.Encode(c); err == nil {
		t.Fatal("encoding an unknown policy state type must fail")
	}
}
