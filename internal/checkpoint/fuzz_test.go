package checkpoint_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// seedInputs builds the committed fuzz corpus: a valid checkpoint at a few
// cursor positions plus the canonical malformed classes (bad magic, bumped
// version, truncations, CRC-breaking flips). Regenerate the testdata files
// with CHECKPOINT_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/checkpoint
func seedInputs(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	for _, k := range []int{0, 5, 40} {
		b, _ := encodeAt(t, k)
		seeds = append(seeds, b)
	}
	valid := seeds[1]
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	seeds = append(seeds, badMagic)
	future := append([]byte(nil), valid...)
	future[8] = 0x7f
	seeds = append(seeds, future)
	seeds = append(seeds, valid[:11], valid[:len(valid)/2], valid[:len(valid)-3])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x10
	seeds = append(seeds, flip)
	seeds = append(seeds, []byte{}, []byte("SHFTCKPT"))
	return seeds
}

// FuzzDecode drives Decode over arbitrary bytes: it must return a typed
// error or a checkpoint that survives re-encoding — and never panic. Decode
// takes no residency references, so "no leaked refs" holds by construction;
// the round-trip check additionally pins that anything Decode accepts,
// Encode can carry forward (the journal rewrites checkpoints it replays).
func FuzzDecode(f *testing.F) {
	for _, seed := range seedInputs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := checkpoint.Decode(b)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrBadMagic) && !errors.Is(err, checkpoint.ErrVersion) &&
				!errors.Is(err, checkpoint.ErrTruncated) && !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := checkpoint.Encode(c)
		if err != nil {
			t.Fatalf("decoded checkpoint failed to re-encode: %v", err)
		}
		c2, err := checkpoint.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if c2.Session.Name != c.Session.Name || c2.Session.Next != c.Session.Next ||
			len(c2.Session.Records) != len(c.Session.Records) {
			t.Fatal("re-encode round trip drifted")
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed corpus under
// testdata/fuzz/FuzzDecode when CHECKPOINT_WRITE_CORPUS=1; otherwise it
// verifies every committed entry still decodes-or-fails cleanly (the CI race
// job replays the corpus through this path plus the fuzz target itself).
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if os.Getenv("CHECKPOINT_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seedInputs(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rest, ok := bytes.CutPrefix(body, []byte("go test fuzz v1\n"))
		if !ok {
			t.Fatalf("%s: not a go fuzz corpus file", e.Name())
		}
		line := strings.TrimSpace(string(rest))
		line = strings.TrimPrefix(line, "[]byte(")
		line = strings.TrimSuffix(line, ")")
		quoted, err := strconv.Unquote(line)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		data := []byte(quoted)
		if c, err := checkpoint.Decode(data); err == nil {
			if _, err := checkpoint.Encode(c); err != nil {
				t.Fatalf("%s: decoded but failed re-encode: %v", e.Name(), err)
			}
		}
	}
}
