package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/accel"
	"repro/internal/img"
	"repro/internal/zoo"
)

func crcIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// writer accumulates little-endian primitives. take returns the bytes built
// so far and resets the writer, so one writer serves every section payload.
type writer struct {
	buf []byte
}

func (w *writer) take() []byte {
	b := w.buf
	w.buf = nil
	return b
}

func (w *writer) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)    { w.u64(uint64(v)) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) pair(p zoo.Pair) {
	w.str(p.Model)
	w.str(p.ProcID)
	w.i64(int64(p.Kind))
}

// image writes a presence byte, dimensions and raw pixels (nil is absent).
func (w *writer) image(im *img.Image) {
	if im == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	w.u32(uint32(im.W))
	w.u32(uint32(im.H))
	w.u32(uint32(len(im.Pix)))
	w.buf = append(w.buf, im.Pix...)
}

// section frames a payload: id, length, payload, CRC.
func (w *writer) section(id uint32, payload []byte) {
	w.u32(id)
	w.u32(uint32(len(payload)))
	w.bytes(payload)
	w.u32(crcIEEE(payload))
}

// reader consumes little-endian primitives with a sticky error: the first
// failure pins r.err and every later read returns zero values, so decode
// paths read straight through and check once. truncErr is the error class a
// short read maps to — ErrTruncated at the framing layer, ErrCorrupt inside
// a CRC-valid section payload.
type reader struct {
	b        []byte
	off      int
	err      error
	truncErr error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail(fmt.Errorf("%w: need %d bytes, %d left", r.truncErr, n, r.remaining()))
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64         { return int64(r.u64()) }
func (r *reader) f64() float64       { return math.Float64frombits(r.u64()) }
func (r *reader) dur() time.Duration { return time.Duration(r.i64()) }

// int reads an i64 and rejects values outside the int range of 32-bit
// platforms — nothing the format carries legitimately approaches it.
func (r *reader) int() int {
	v := r.i64()
	if v < math.MinInt32 || v > math.MaxInt32 {
		r.fail(fmt.Errorf("%w: integer %d out of range", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// count reads an element count and bounds it by what the remaining bytes
// could possibly hold at minSize bytes per element, so a crafted count can
// never force an allocation the input's own length does not pay for.
func (r *reader) count(minSize int) int {
	v := r.i64()
	if v < 0 || v > int64(r.remaining()/minSize) {
		r.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, v, r.remaining()))
		return 0
	}
	return int(v)
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: boolean out of range", ErrCorrupt))
		return false
	}
}

func (r *reader) str() string {
	n := r.u32()
	if r.err == nil && int64(n) > int64(r.remaining()) {
		r.fail(fmt.Errorf("%w: string length %d exceeds %d remaining bytes", r.truncErr, n, r.remaining()))
		return ""
	}
	return string(r.take(int(n)))
}

// block reads a length-prefixed byte slice (a section payload).
func (r *reader) block() []byte {
	n := r.u32()
	if r.err == nil && int64(n) > int64(r.remaining()) {
		r.fail(fmt.Errorf("%w: section length %d exceeds %d remaining bytes", r.truncErr, n, r.remaining()))
		return nil
	}
	return r.take(int(n))
}

func (r *reader) pair() zoo.Pair {
	p := zoo.Pair{Model: r.str(), ProcID: r.str()}
	k := r.i64()
	if r.err == nil && (k < 0 || k > math.MaxInt32) {
		r.fail(fmt.Errorf("%w: accelerator kind %d out of range", ErrCorrupt, k))
		return zoo.Pair{}
	}
	p.Kind = accel.Kind(k)
	return p
}

func (r *reader) image() *img.Image {
	switch r.u8() {
	case 0:
		return nil
	case 1:
	default:
		if r.err == nil {
			r.fail(fmt.Errorf("%w: image presence byte out of range", ErrCorrupt))
		}
		return nil
	}
	w := r.u32()
	h := r.u32()
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(r.remaining()) || uint64(w)*uint64(h) != uint64(n) {
		r.fail(fmt.Errorf("%w: image %dx%d with %d pixels", ErrCorrupt, w, h, n))
		return nil
	}
	pix := r.take(int(n))
	if pix == nil {
		return nil
	}
	return &img.Image{W: int(w), H: int(h), Pix: append([]uint8(nil), pix...)}
}

// close asserts a section payload was consumed exactly: leftover bytes in a
// CRC-valid payload mean a malformed encoding.
func (r *reader) close(id uint32) error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: section %d carries %d trailing bytes", ErrCorrupt, id, r.remaining())
	}
	return nil
}
