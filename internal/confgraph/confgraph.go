// Package confgraph implements SHIFT's confidence graph (paper §III-A), the
// mechanism that converts one model's confidence score into accuracy
// predictions for every model in the zoo via a single map lookup at runtime.
//
// Construction follows the paper's six steps:
//
//  1. Nodes are (model, confidence-score range) buckets carrying the
//     expected accuracy (mean IoU) of the model inside that range.
//  2. For every validation frame, the nodes hit by each model's confidence
//     score are pairwise connected; re-occurrence increments edge weight.
//  3. Edge weights are normalized locally (within each node's incident
//     edges) and inverted, so strongly co-occurring nodes are cheap to
//     traverse; local normalization prevents global maxima from dominating.
//  4. A bounded traversal from every node collects all neighbors within a
//     distance threshold.
//  5. Multiple reachable nodes of the same model are consolidated by a
//     distance-weighted average of their expected accuracies.
//  6. Results are stored in a map: node -> accuracy predictions for all
//     models.
//
// The bounded traversal is implemented as a Dijkstra expansion (cheapest
// cumulative cost first); with the paper's additive distances this is the
// breadth-first search of step 4 generalized to weighted edges.
package confgraph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/profile"
)

// NodeKey identifies a confidence-graph node: one model in one confidence
// bucket.
type NodeKey struct {
	Model  string
	Bucket int
}

// String returns "model(lo-hi)" using the graph's bucket width.
func (g *Graph) nodeString(k NodeKey) string {
	lo := float64(k.Bucket) / float64(g.buckets)
	hi := float64(k.Bucket+1) / float64(g.buckets)
	return fmt.Sprintf("%s-(%.2f-%.2f)", k.Model, lo, hi)
}

// Prediction is a consolidated accuracy estimate for one model, produced by
// querying the graph.
type Prediction struct {
	Model string
	// Acc is the predicted accuracy (expected IoU).
	Acc float64
	// Dist is the graph distance used for the consolidation weight; 0 means
	// the prediction comes from the queried node itself.
	Dist float64
}

// node carries accumulation state during construction.
type node struct {
	key     NodeKey
	iouSum  float64
	samples int
	edges   map[NodeKey]float64 // raw co-occurrence counts, then costs
}

// expectedAcc is the node's mean observed IoU.
func (n *node) expectedAcc() float64 {
	if n.samples == 0 {
		return 0
	}
	return n.iouSum / float64(n.samples)
}

// Graph is a built confidence graph plus its precomputed prediction map.
type Graph struct {
	buckets   int
	threshold float64
	nodes     map[NodeKey]*node
	// predictions is the paper's step-6 map: node -> consolidated
	// predictions for every reachable model.
	predictions map[NodeKey][]Prediction
}

// Options configure graph construction.
type Options struct {
	// Buckets is the number of confidence-score ranges per model (the
	// paper's example uses width-0.1 ranges, i.e. 10 buckets).
	Buckets int
	// DistanceThreshold bounds the step-4 traversal; Table III uses 0.5.
	DistanceThreshold float64
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{Buckets: 10, DistanceThreshold: 0.5}
}

// Build constructs the confidence graph from characterization samples.
// Samples of different models taken on the same validation frame create the
// cross-model edges that make prediction possible.
func Build(ch *profile.Characterization, opts Options) (*Graph, error) {
	if opts.Buckets <= 0 {
		return nil, fmt.Errorf("confgraph: Buckets must be positive, got %d", opts.Buckets)
	}
	if opts.DistanceThreshold < 0 {
		return nil, fmt.Errorf("confgraph: negative DistanceThreshold %v", opts.DistanceThreshold)
	}
	g := &Graph{
		buckets:     opts.Buckets,
		threshold:   opts.DistanceThreshold,
		nodes:       map[NodeKey]*node{},
		predictions: map[NodeKey][]Prediction{},
	}

	// Index samples per frame across models. Misses (no detection) enter
	// the graph at confidence 0 with accuracy 0: frames where models miss
	// together create strong low-bucket cross-edges, so at runtime a miss
	// (graphPredict with conf 0) yields grounded near-zero predictions for
	// every model — the mechanism behind SHIFT's conservative allocation
	// during no-detection stretches.
	frameNodes := map[int][]NodeKey{} // frame index -> node hit per model
	for _, name := range ch.ModelNames() {
		traits := ch.ByModel[name]
		for _, s := range traits.Samples {
			conf := s.Conf
			if !s.Found {
				conf = 0
			}
			key := NodeKey{Model: name, Bucket: g.bucketOf(conf)}
			n := g.ensureNode(key)
			n.iouSum += s.IoU
			n.samples++
			frameNodes[s.FrameIndex] = append(frameNodes[s.FrameIndex], key)
		}
	}

	// Step 2: pairwise edges between all nodes hit on the same frame.
	for _, keys := range frameNodes {
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[i] == keys[j] {
					continue
				}
				g.nodes[keys[i]].edges[keys[j]]++
				g.nodes[keys[j]].edges[keys[i]]++
			}
		}
	}

	g.normalizeAndInvert()
	g.precomputePredictions()
	return g, nil
}

// bucketOf maps a confidence score to its bucket index.
func (g *Graph) bucketOf(conf float64) int {
	if conf < 0 {
		conf = 0
	}
	b := int(conf * float64(g.buckets))
	if b >= g.buckets {
		b = g.buckets - 1
	}
	return b
}

func (g *Graph) ensureNode(key NodeKey) *node {
	n, ok := g.nodes[key]
	if !ok {
		n = &node{key: key, edges: map[NodeKey]float64{}}
		g.nodes[key] = n
	}
	return n
}

// normalizeAndInvert is step 3: per-node local normalization of edge weights
// to [0, 1], then inversion so frequently co-occurring nodes are cheap.
// Normalizing locally (per node) rather than globally prevents a handful of
// very common frames from flattening the rest of the graph.
func (g *Graph) normalizeAndInvert() {
	// First pass: compute local maxima.
	localMax := map[NodeKey]float64{}
	for key, n := range g.nodes {
		m := 0.0
		for _, w := range n.edges {
			if w > m {
				m = w
			}
		}
		localMax[key] = m
	}
	// Second pass: cost = 1 - w/maxLocal, where maxLocal is the larger of
	// the two endpoints' maxima so the cost stays symmetric.
	for key, n := range g.nodes {
		for other, w := range n.edges {
			m := math.Max(localMax[key], localMax[other])
			if m == 0 {
				n.edges[other] = 1
				continue
			}
			n.edges[other] = 1 - w/m
		}
	}
}

// pqItem is a priority-queue entry for the bounded expansion.
type pqItem struct {
	key  NodeKey
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// reachable returns the cheapest distance to every node within the
// threshold, starting from key (inclusive, at distance 0).
func (g *Graph) reachable(key NodeKey) map[NodeKey]float64 {
	dist := map[NodeKey]float64{key: 0}
	q := &pq{{key: key, dist: 0}}
	for q.Len() > 0 {
		item := heap.Pop(q).(pqItem)
		if item.dist > dist[item.key] {
			continue // stale entry
		}
		for next, cost := range g.nodes[item.key].edges {
			nd := item.dist + cost
			if nd > g.threshold {
				continue
			}
			if cur, ok := dist[next]; !ok || nd < cur {
				dist[next] = nd
				heap.Push(q, pqItem{key: next, dist: nd})
			}
		}
	}
	return dist
}

// precomputePredictions is steps 4-6: bounded expansion from every node,
// same-model consolidation by inverse-distance weighting, storage in a map.
func (g *Graph) precomputePredictions() {
	for key := range g.nodes {
		reach := g.reachable(key)
		// Consolidate per model.
		type agg struct {
			weighted float64
			weight   float64
			minDist  float64
		}
		byModel := map[string]*agg{}
		// Iterate in sorted order so floating-point accumulation is
		// bit-reproducible across runs.
		keys := make([]NodeKey, 0, len(reach))
		for nk := range reach {
			keys = append(keys, nk)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Model != keys[j].Model {
				return keys[i].Model < keys[j].Model
			}
			return keys[i].Bucket < keys[j].Bucket
		})
		for _, nk := range keys {
			d := reach[nk]
			n := g.nodes[nk]
			if n.samples == 0 {
				continue
			}
			a, ok := byModel[nk.Model]
			if !ok {
				a = &agg{minDist: math.Inf(1)}
				byModel[nk.Model] = a
			}
			// Inverse-distance weight: the queried node itself (d = 0)
			// dominates, remote nodes fade with distance.
			w := 1.0 / (d + 0.1)
			a.weighted += n.expectedAcc() * w
			a.weight += w
			if d < a.minDist {
				a.minDist = d
			}
		}
		preds := make([]Prediction, 0, len(byModel))
		for model, a := range byModel {
			preds = append(preds, Prediction{
				Model: model,
				Acc:   a.weighted / a.weight,
				Dist:  a.minDist,
			})
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i].Model < preds[j].Model })
		g.predictions[key] = preds
	}
}

// Predict returns accuracy predictions for all models reachable from the
// node (model, conf). The boolean reports whether the node exists — a model
// can encounter confidence ranges at runtime that never occurred on the
// validation set.
func (g *Graph) Predict(model string, conf float64) ([]Prediction, bool) {
	key := NodeKey{Model: model, Bucket: g.bucketOf(conf)}
	preds, ok := g.predictions[key]
	if ok {
		return preds, true
	}
	// Fall back to the nearest populated bucket of the same model: runtime
	// confidence ranges sparsely covered by validation data should not
	// leave the scheduler blind. Ties prefer the lower bucket so the
	// fallback is deterministic regardless of map iteration order.
	bestDelta := math.MaxInt32
	bestBucket := -1
	var best []Prediction
	for k, p := range g.predictions {
		if k.Model != model {
			continue
		}
		delta := k.Bucket - key.Bucket
		if delta < 0 {
			delta = -delta
		}
		if delta < bestDelta || (delta == bestDelta && k.Bucket < bestBucket) {
			bestDelta = delta
			bestBucket = k.Bucket
			best = p
		}
	}
	if best != nil {
		return best, true
	}
	return nil, false
}

// NodeCount returns the number of nodes in the graph.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, n := range g.nodes {
		total += len(n.edges)
	}
	return total / 2
}

// Models returns the sorted set of model names present in the graph.
func (g *Graph) Models() []string {
	seen := map[string]bool{}
	for k := range g.nodes {
		seen[k.Model] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns a human-readable summary of a node, used by the
// characterization CLI for graph inspection.
func (g *Graph) Describe(model string, conf float64) string {
	key := NodeKey{Model: model, Bucket: g.bucketOf(conf)}
	n, ok := g.nodes[key]
	if !ok {
		return fmt.Sprintf("%s: no node", g.nodeString(key))
	}
	return fmt.Sprintf("%s: acc=%.3f samples=%d edges=%d",
		g.nodeString(key), n.expectedAcc(), n.samples, len(n.edges))
}
