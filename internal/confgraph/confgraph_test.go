package confgraph

import (
	"math"
	"testing"

	"repro/internal/detmodel"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// buildTestGraph characterizes the default system on a validation set and
// builds a graph once per test that needs it.
func buildTestGraph(t *testing.T, nFrames int, opts Options) (*profile.Characterization, *Graph) {
	t.Helper()
	sys := zoo.Default(1)
	frames := scene.ValidationSet(1, nFrames)
	ch := profile.Characterize(sys, frames)
	g, err := Build(ch, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ch, g
}

func TestBuildValidation(t *testing.T) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 10))
	if _, err := Build(ch, Options{Buckets: 0, DistanceThreshold: 0.5}); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := Build(ch, Options{Buckets: 10, DistanceThreshold: -1}); err == nil {
		t.Fatal("negative threshold should fail")
	}
}

func TestGraphCoversAllModels(t *testing.T) {
	_, g := buildTestGraph(t, 300, DefaultOptions())
	models := g.Models()
	if len(models) != 8 {
		t.Fatalf("graph covers %d models, want 8: %v", len(models), models)
	}
	if g.NodeCount() == 0 || g.EdgeCount() == 0 {
		t.Fatalf("degenerate graph: %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
}

func TestBucketOf(t *testing.T) {
	g := &Graph{buckets: 10}
	cases := []struct {
		conf float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.99, 9}, {1.0, 9}, {1.5, 9}, {-0.1, 0},
	}
	for _, c := range cases {
		if got := g.bucketOf(c.conf); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.conf, got, c.want)
		}
	}
}

func TestPredictReturnsAllModels(t *testing.T) {
	// A healthy graph built from a rich validation set should predict every
	// model's accuracy from a YoloV7 confidence reading.
	_, g := buildTestGraph(t, 500, DefaultOptions())
	preds, ok := g.Predict(detmodel.YoloV7, 0.55)
	if !ok {
		t.Fatal("no prediction for a mid-range YoloV7 confidence")
	}
	if len(preds) < 6 {
		t.Fatalf("prediction covers only %d models: %v", len(preds), preds)
	}
	for _, p := range preds {
		if p.Acc < 0 || p.Acc > 1 {
			t.Fatalf("prediction out of range: %+v", p)
		}
		if p.Dist < 0 {
			t.Fatalf("negative distance: %+v", p)
		}
	}
}

func TestPredictSelfIsDistanceZero(t *testing.T) {
	_, g := buildTestGraph(t, 300, DefaultOptions())
	preds, ok := g.Predict(detmodel.YoloV7, 0.6)
	if !ok {
		t.Fatal("no prediction")
	}
	for _, p := range preds {
		if p.Model == detmodel.YoloV7 {
			if p.Dist != 0 {
				t.Fatalf("self prediction at distance %v, want 0", p.Dist)
			}
			return
		}
	}
	t.Fatal("self model missing from predictions")
}

func TestPredictionMonotoneInConfidence(t *testing.T) {
	// Higher own-confidence should predict (weakly) higher own-accuracy:
	// the graph must preserve the calibration direction.
	_, g := buildTestGraph(t, 800, DefaultOptions())
	accAt := func(conf float64) float64 {
		preds, ok := g.Predict(detmodel.YoloV7, conf)
		if !ok {
			t.Fatalf("no prediction at conf %v", conf)
		}
		for _, p := range preds {
			if p.Model == detmodel.YoloV7 {
				return p.Acc
			}
		}
		t.Fatal("missing self prediction")
		return 0
	}
	lo := accAt(0.25)
	hi := accAt(0.8)
	if hi <= lo {
		t.Fatalf("prediction not increasing with confidence: acc(0.25)=%v acc(0.8)=%v", lo, hi)
	}
}

func TestCrossFamilyPrediction(t *testing.T) {
	// The graph's purpose: a YOLO confidence reading must give a usable
	// accuracy estimate for an SSD model whose raw confidences are
	// incomparable. High YoloV7 confidence implies an easy frame, so the
	// SSD-MobilenetV2-320 prediction should be markedly higher than at low
	// YoloV7 confidence.
	_, g := buildTestGraph(t, 800, DefaultOptions())
	ssdAccAt := func(conf float64) float64 {
		preds, ok := g.Predict(detmodel.YoloV7, conf)
		if !ok {
			t.Fatalf("no prediction at conf %v", conf)
		}
		for _, p := range preds {
			if p.Model == detmodel.SSDMobilenet320 {
				return p.Acc
			}
		}
		// Unreachable is a legitimate low estimate: on hard frames the SSD
		// model rarely even detects, so it produces no co-occurrence edges.
		return 0
	}
	lo := ssdAccAt(0.35)
	hi := ssdAccAt(0.8)
	if hi-lo < 0.1 {
		t.Fatalf("cross-family prediction flat: ssd acc %.3f@0.3 vs %.3f@0.8", lo, hi)
	}
}

func TestPredictionAccuracyAgainstGroundTruth(t *testing.T) {
	// End-to-end quality check: on held-out frames, the graph's predicted
	// accuracy for a second model (queried through the first model's
	// confidence) must correlate with that model's actual IoU.
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 800))
	g, err := Build(ch, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	holdout := scene.ValidationSet(99, 300) // unseen seed
	v7, _ := detmodel.Find(detmodel.DefaultZoo(), detmodel.YoloV7)
	tiny, _ := detmodel.Find(detmodel.DefaultZoo(), detmodel.YoloV7Tiny)

	var predErr, naiveErr float64
	n := 0
	for _, f := range holdout {
		dv7 := v7.Detect(f, sys.Seed)
		dtiny := tiny.Detect(f, sys.Seed)
		if !dv7.Found {
			continue
		}
		preds, ok := g.Predict(detmodel.YoloV7, dv7.Conf)
		if !ok {
			continue
		}
		for _, p := range preds {
			if p.Model == detmodel.YoloV7Tiny {
				predErr += math.Abs(p.Acc - dtiny.IoU)
				// Naive baseline: always predict Tiny's global average.
				naiveErr += math.Abs(ch.ByModel[detmodel.YoloV7Tiny].AvgIoU - dtiny.IoU)
				n++
			}
		}
	}
	if n < 100 {
		t.Fatalf("too few prediction samples: %d", n)
	}
	predErr /= float64(n)
	naiveErr /= float64(n)
	if predErr >= naiveErr {
		t.Fatalf("graph prediction (MAE %.3f) no better than global average (MAE %.3f)",
			predErr, naiveErr)
	}
}

func TestPredictUnseenBucketFallsBack(t *testing.T) {
	_, g := buildTestGraph(t, 300, DefaultOptions())
	// Confidence 0.999 may not exist for every model, but fallback must
	// return the nearest populated bucket rather than nothing.
	if _, ok := g.Predict(detmodel.YoloV7, 0.999); !ok {
		t.Fatal("fallback to nearest bucket failed")
	}
}

func TestPredictUnknownModel(t *testing.T) {
	_, g := buildTestGraph(t, 100, DefaultOptions())
	if _, ok := g.Predict("not-a-model", 0.5); ok {
		t.Fatal("unknown model should not produce predictions")
	}
}

func TestZeroThresholdLimitsToSelf(t *testing.T) {
	// With threshold 0, only zero-cost hops are traversable; predictions
	// should cover far fewer models (the ablation case from DESIGN.md).
	_, full := buildTestGraph(t, 500, DefaultOptions())
	_, tight := buildTestGraph(t, 500, Options{Buckets: 10, DistanceThreshold: 0})
	fullPreds, _ := full.Predict(detmodel.YoloV7, 0.6)
	tightPreds, _ := tight.Predict(detmodel.YoloV7, 0.6)
	if len(tightPreds) >= len(fullPreds) {
		t.Fatalf("threshold 0 predictions (%d) not fewer than full (%d)",
			len(tightPreds), len(fullPreds))
	}
}

func TestLargerThresholdReachesMore(t *testing.T) {
	_, small := buildTestGraph(t, 400, Options{Buckets: 10, DistanceThreshold: 0.2})
	_, large := buildTestGraph(t, 400, Options{Buckets: 10, DistanceThreshold: 1.5})
	sTot, lTot := 0, 0
	for _, conf := range []float64{0.2, 0.5, 0.8} {
		if p, ok := small.Predict(detmodel.YoloV7, conf); ok {
			sTot += len(p)
		}
		if p, ok := large.Predict(detmodel.YoloV7, conf); ok {
			lTot += len(p)
		}
	}
	if lTot < sTot {
		t.Fatalf("larger threshold reached fewer predictions: %d < %d", lTot, sTot)
	}
}

func TestEdgeCostsInUnitRange(t *testing.T) {
	_, g := buildTestGraph(t, 200, DefaultOptions())
	for _, n := range g.nodes {
		for other, cost := range n.edges {
			if cost < 0 || cost > 1 {
				t.Fatalf("edge cost out of [0,1]: %v -> %v = %v", n.key, other, cost)
			}
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	_, a := buildTestGraph(t, 150, DefaultOptions())
	_, b := buildTestGraph(t, 150, DefaultOptions())
	if a.NodeCount() != b.NodeCount() || a.EdgeCount() != b.EdgeCount() {
		t.Fatal("graph structure not deterministic")
	}
	pa, _ := a.Predict(detmodel.YoloV7, 0.5)
	pb, _ := b.Predict(detmodel.YoloV7, 0.5)
	if len(pa) != len(pb) {
		t.Fatal("prediction sets differ")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestDescribe(t *testing.T) {
	_, g := buildTestGraph(t, 100, DefaultOptions())
	s := g.Describe(detmodel.YoloV7, 0.6)
	if s == "" {
		t.Fatal("empty description")
	}
	if s2 := g.Describe("missing", 0.6); s2 == "" {
		t.Fatal("missing node should still describe")
	}
}

func BenchmarkBuild(b *testing.B) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 300))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Build(ch, DefaultOptions())
	}
}

func BenchmarkPredict(b *testing.B) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 300))
	g, _ := Build(ch, DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Predict(detmodel.YoloV7, 0.55)
	}
}
