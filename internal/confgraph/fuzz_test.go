package confgraph

import (
	"encoding/json"
	"testing"

	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// FuzzGraphUnmarshal hardens the graph deserializer: arbitrary JSON must
// either fail or produce a graph that answers Predict without panicking.
// (Validate may still reject semantically corrupt graphs — that is the
// defense cmd tools use — but mere deserialization must be safe.)
func FuzzGraphUnmarshal(f *testing.F) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 60))
	g, err := Build(ch, DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"buckets":10,"threshold":0.5,"nodes":[],"predictions":{}}`))
	f.Add([]byte(`{"buckets":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"buckets":10,"threshold":0.5,"nodes":[{"model":"m","bucket":3,"iou_sum":1,"samples":2,"edges":{"m#4":0.5}}],"predictions":{"m#3":[{"model":"m","acc":0.5,"dist":0}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return
		}
		// Deserialized graphs must answer queries without panicking,
		// whatever they contain.
		_, _ = back.Predict("m", 0.35)
		_, _ = back.Predict("YoloV7", 0.8)
		_ = back.NodeCount()
		_ = back.EdgeCount()
		_ = back.ComputeStats()
		_ = back.Validate() // may error; must not panic
	})
}
