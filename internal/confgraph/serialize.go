package confgraph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The serialized form ships the offline artifact to the runtime device: in a
// real deployment the confidence graph is built on a workstation from
// validation data and loaded by the edge runtime at boot, so it must survive
// a JSON round-trip losslessly (the prediction map is what the scheduler
// queries; nodes and edges are kept so thresholds can be re-derived).

// jsonNode is one node's serialized state.
type jsonNode struct {
	Model   string             `json:"model"`
	Bucket  int                `json:"bucket"`
	IoUSum  float64            `json:"iou_sum"`
	Samples int                `json:"samples"`
	Edges   map[string]float64 `json:"edges"` // "model#bucket" -> cost
}

// jsonPrediction mirrors Prediction.
type jsonPrediction struct {
	Model string  `json:"model"`
	Acc   float64 `json:"acc"`
	Dist  float64 `json:"dist"`
}

// jsonGraph is the full serialized graph.
type jsonGraph struct {
	Buckets     int                         `json:"buckets"`
	Threshold   float64                     `json:"threshold"`
	Nodes       []jsonNode                  `json:"nodes"`
	Predictions map[string][]jsonPrediction `json:"predictions"`
}

// edgeKey flattens a NodeKey for JSON map keys.
func edgeKey(k NodeKey) string { return fmt.Sprintf("%s#%d", k.Model, k.Bucket) }

// parseEdgeKey restores a NodeKey from its flattened form.
func parseEdgeKey(s string) (NodeKey, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' {
			var bucket int
			if _, err := fmt.Sscanf(s[i+1:], "%d", &bucket); err != nil {
				return NodeKey{}, fmt.Errorf("confgraph: malformed node key %q", s)
			}
			return NodeKey{Model: s[:i], Bucket: bucket}, nil
		}
	}
	return NodeKey{}, fmt.Errorf("confgraph: malformed node key %q", s)
}

// MarshalJSON serializes the graph, including the precomputed prediction
// map, in deterministic order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := jsonGraph{
		Buckets:     g.buckets,
		Threshold:   g.threshold,
		Predictions: map[string][]jsonPrediction{},
	}
	keys := make([]NodeKey, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Model != keys[j].Model {
			return keys[i].Model < keys[j].Model
		}
		return keys[i].Bucket < keys[j].Bucket
	})
	for _, k := range keys {
		n := g.nodes[k]
		jn := jsonNode{
			Model:   k.Model,
			Bucket:  k.Bucket,
			IoUSum:  n.iouSum,
			Samples: n.samples,
			Edges:   map[string]float64{},
		}
		for other, cost := range n.edges {
			jn.Edges[edgeKey(other)] = cost
		}
		doc.Nodes = append(doc.Nodes, jn)
	}
	for k, preds := range g.predictions {
		jp := make([]jsonPrediction, len(preds))
		for i, p := range preds {
			jp[i] = jsonPrediction(p)
		}
		doc.Predictions[edgeKey(k)] = jp
	}
	return json.Marshal(doc)
}

// UnmarshalJSON restores a graph serialized by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var doc jsonGraph
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Buckets <= 0 {
		return fmt.Errorf("confgraph: invalid serialized bucket count %d", doc.Buckets)
	}
	g.buckets = doc.Buckets
	g.threshold = doc.Threshold
	g.nodes = map[NodeKey]*node{}
	g.predictions = map[NodeKey][]Prediction{}
	for _, jn := range doc.Nodes {
		key := NodeKey{Model: jn.Model, Bucket: jn.Bucket}
		n := &node{key: key, iouSum: jn.IoUSum, samples: jn.Samples, edges: map[NodeKey]float64{}}
		for raw, cost := range jn.Edges {
			other, err := parseEdgeKey(raw)
			if err != nil {
				return err
			}
			n.edges[other] = cost
		}
		g.nodes[key] = n
	}
	for raw, jp := range doc.Predictions {
		key, err := parseEdgeKey(raw)
		if err != nil {
			return err
		}
		preds := make([]Prediction, len(jp))
		for i, p := range jp {
			preds[i] = Prediction(p)
		}
		g.predictions[key] = preds
	}
	return nil
}
