package confgraph

import (
	"encoding/json"
	"testing"

	"repro/internal/detmodel"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 300))
	g, err := Build(ch, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NodeCount() != g.NodeCount() || back.EdgeCount() != g.EdgeCount() {
		t.Fatalf("structure changed: %d/%d nodes, %d/%d edges",
			back.NodeCount(), g.NodeCount(), back.EdgeCount(), g.EdgeCount())
	}
	// The restored graph must answer queries identically.
	for _, conf := range []float64{0.1, 0.35, 0.6, 0.85} {
		pa, oka := g.Predict(detmodel.YoloV7, conf)
		pb, okb := back.Predict(detmodel.YoloV7, conf)
		if oka != okb || len(pa) != len(pb) {
			t.Fatalf("prediction availability changed at conf %v", conf)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("prediction %d differs at conf %v: %+v vs %+v", i, conf, pa[i], pb[i])
			}
		}
	}
}

func TestGraphJSONDeterministic(t *testing.T) {
	sys := zoo.Default(1)
	ch := profile.Characterize(sys, scene.ValidationSet(1, 150))
	g, err := Build(ch, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("serialization not byte-deterministic")
	}
}

func TestGraphUnmarshalRejectsBadDocs(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"buckets":0}`), &g); err == nil {
		t.Fatal("zero buckets should fail")
	}
	bad := `{"buckets":10,"threshold":0.5,"nodes":[{"model":"m","bucket":1,"edges":{"nokey":0.5}}],"predictions":{}}`
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Fatal("malformed edge key should fail")
	}
	badPred := `{"buckets":10,"threshold":0.5,"nodes":[],"predictions":{"oops":[]}}`
	if err := json.Unmarshal([]byte(badPred), &g); err == nil {
		t.Fatal("malformed prediction key should fail")
	}
}

func TestParseEdgeKey(t *testing.T) {
	k, err := parseEdgeKey("YoloV7-Tiny#3")
	if err != nil || k.Model != "YoloV7-Tiny" || k.Bucket != 3 {
		t.Fatalf("parseEdgeKey: %+v %v", k, err)
	}
	// Model names may contain '#'? They do not, but the parser splits on
	// the last '#', so even that would round-trip.
	k2, err := parseEdgeKey("a#b#7")
	if err != nil || k2.Model != "a#b" || k2.Bucket != 7 {
		t.Fatalf("parseEdgeKey last-hash: %+v %v", k2, err)
	}
	if _, err := parseEdgeKey("nohash"); err == nil {
		t.Fatal("missing separator should fail")
	}
	if _, err := parseEdgeKey("m#notanum"); err == nil {
		t.Fatal("non-numeric bucket should fail")
	}
}
