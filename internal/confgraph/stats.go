package confgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a built graph for diagnostics and the characterize CLI.
type Stats struct {
	Nodes  int
	Edges  int
	Models int
	// BucketsUsed maps model -> number of populated confidence buckets; a
	// model with one bucket gives the scheduler no calibration signal.
	BucketsUsed map[string]int
	// MeanDegree is the average node degree.
	MeanDegree float64
	// Coverage is the fraction of (node, model) prediction slots filled:
	// 1.0 means every node can predict every model.
	Coverage float64
}

// ComputeStats gathers graph statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:       len(g.nodes),
		Edges:       g.EdgeCount(),
		BucketsUsed: map[string]int{},
	}
	for key := range g.nodes {
		s.BucketsUsed[key.Model]++
	}
	s.Models = len(s.BucketsUsed)
	if s.Nodes > 0 {
		s.MeanDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	}
	if s.Nodes > 0 && s.Models > 0 {
		filled := 0
		for _, preds := range g.predictions {
			filled += len(preds)
		}
		s.Coverage = float64(filled) / float64(s.Nodes*s.Models)
	}
	return s
}

// String renders the stats one line per field.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d models=%d mean-degree=%.1f coverage=%.0f%%\n",
		s.Nodes, s.Edges, s.Models, s.MeanDegree, s.Coverage*100)
	models := make([]string, 0, len(s.BucketsUsed))
	for m := range s.BucketsUsed {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		fmt.Fprintf(&b, "  %-22s %d buckets\n", m, s.BucketsUsed[m])
	}
	return b.String()
}

// Validate checks the structural invariants a well-formed graph must hold:
// edge symmetry, costs in [0, 1], node accuracy in [0, 1], and prediction
// entries referencing existing models. Build always produces a valid graph;
// Validate guards deserialized artifacts from tampered or corrupted files.
func (g *Graph) Validate() error {
	if g.buckets <= 0 {
		return fmt.Errorf("confgraph: invalid bucket count %d", g.buckets)
	}
	models := map[string]bool{}
	for key, n := range g.nodes {
		models[key.Model] = true
		if key.Bucket < 0 || key.Bucket >= g.buckets {
			return fmt.Errorf("confgraph: node %v bucket out of range", key)
		}
		if n.samples < 0 {
			return fmt.Errorf("confgraph: node %v negative samples", key)
		}
		if acc := n.expectedAcc(); acc < 0 || acc > 1 {
			return fmt.Errorf("confgraph: node %v accuracy %v out of range", key, acc)
		}
		for other, cost := range n.edges {
			if cost < 0 || cost > 1 {
				return fmt.Errorf("confgraph: edge %v->%v cost %v out of range", key, other, cost)
			}
			on, ok := g.nodes[other]
			if !ok {
				return fmt.Errorf("confgraph: edge %v->%v references missing node", key, other)
			}
			back, ok := on.edges[key]
			if !ok {
				return fmt.Errorf("confgraph: edge %v->%v not symmetric", key, other)
			}
			if back != cost {
				return fmt.Errorf("confgraph: asymmetric edge cost %v vs %v for %v<->%v",
					cost, back, key, other)
			}
		}
	}
	for key, preds := range g.predictions {
		if _, ok := g.nodes[key]; !ok {
			return fmt.Errorf("confgraph: prediction for missing node %v", key)
		}
		for _, p := range preds {
			if !models[p.Model] {
				return fmt.Errorf("confgraph: prediction references unknown model %q", p.Model)
			}
			if p.Acc < 0 || p.Acc > 1 || p.Dist < 0 {
				return fmt.Errorf("confgraph: malformed prediction %+v at %v", p, key)
			}
		}
	}
	return nil
}
