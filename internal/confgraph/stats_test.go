package confgraph

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	_, g := buildTestGraph(t, 400, DefaultOptions())
	s := g.ComputeStats()
	if s.Nodes != g.NodeCount() || s.Edges != g.EdgeCount() {
		t.Fatalf("stats counts mismatch: %+v", s)
	}
	if s.Models != 8 {
		t.Fatalf("stats models %d, want 8", s.Models)
	}
	if s.MeanDegree <= 0 {
		t.Fatal("mean degree must be positive for a built graph")
	}
	if s.Coverage <= 0 || s.Coverage > 1 {
		t.Fatalf("coverage %v out of range", s.Coverage)
	}
	for model, buckets := range s.BucketsUsed {
		if buckets < 1 {
			t.Fatalf("%s has no buckets", model)
		}
	}
	if out := s.String(); !strings.Contains(out, "nodes=") || !strings.Contains(out, "buckets") {
		t.Fatalf("stats string: %q", out)
	}
}

func TestValidateBuiltGraph(t *testing.T) {
	_, g := buildTestGraph(t, 300, DefaultOptions())
	if err := g.Validate(); err != nil {
		t.Fatalf("built graph invalid: %v", err)
	}
}

func TestValidateAfterRoundTrip(t *testing.T) {
	_, g := buildTestGraph(t, 200, DefaultOptions())
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("deserialized graph invalid: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(g *Graph)
	}{
		{"bad edge cost", func(g *Graph) {
			for _, n := range g.nodes {
				for k := range n.edges {
					n.edges[k] = 2.0
					return
				}
			}
		}},
		{"asymmetric edge", func(g *Graph) {
			for _, n := range g.nodes {
				for k := range n.edges {
					other := g.nodes[k]
					delete(other.edges, n.key)
					return
				}
			}
		}},
		{"dangling prediction", func(g *Graph) {
			for key := range g.predictions {
				g.predictions[key] = append(g.predictions[key],
					Prediction{Model: "ghost", Acc: 0.5})
				return
			}
		}},
		{"negative samples", func(g *Graph) {
			for _, n := range g.nodes {
				n.samples = -1
				return
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, g := buildTestGraph(t, 150, DefaultOptions())
			c.corrupt(g)
			if err := g.Validate(); err == nil {
				t.Fatalf("%s not detected", c.name)
			}
		})
	}
}

func TestValidateZeroValue(t *testing.T) {
	var g Graph
	if err := g.Validate(); err == nil {
		t.Fatal("zero-value graph should be invalid")
	}
}
