package detmodel

import (
	"fmt"
	"sort"

	"repro/internal/scene"
)

// FitMid solves for the sigmoid midpoint that makes a model's expected IoU
// over the given difficulty distribution equal targetIoU. It is how this
// repo's zoo was calibrated against Table IV's accuracy column, and how a
// user adds a model knowing only its benchmark accuracy: sample the
// difficulties of the intended deployment, pick slope/top, and fit.
//
// The expectation is monotone decreasing in Mid's negation — higher Mid
// (more robust) raises accuracy — so bisection on Mid converges. An error is
// returned when the target is unreachable for the given Top (e.g. asking for
// 0.95 mean IoU from a 0.93-peak model).
func FitMid(targetIoU, top, slope float64, difficulties []float64) (float64, error) {
	if len(difficulties) == 0 {
		return 0, fmt.Errorf("detmodel: FitMid needs difficulty samples")
	}
	if targetIoU <= 0 || top <= 0 || slope <= 0 {
		return 0, fmt.Errorf("detmodel: FitMid parameters must be positive (target %v, top %v, slope %v)",
			targetIoU, top, slope)
	}
	expected := func(mid float64) float64 {
		m := Model{Top: top, Mid: mid, Slope: slope}
		var sum float64
		for _, d := range difficulties {
			sum += m.ExpectedIoU(d)
		}
		return sum / float64(len(difficulties))
	}
	const lo, hi = -1.0, 3.0
	if expected(hi) < targetIoU {
		return 0, fmt.Errorf("detmodel: target IoU %v unreachable (max %v at mid %v)",
			targetIoU, expected(hi), hi)
	}
	if expected(lo) > targetIoU {
		return 0, fmt.Errorf("detmodel: target IoU %v below the model floor %v",
			targetIoU, expected(lo))
	}
	a, b := lo, hi
	for i := 0; i < 60; i++ {
		mid := (a + b) / 2
		if expected(mid) < targetIoU {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}

// DifficultySamples extracts the latent difficulty of every frame — the
// distribution FitMid calibrates against. Sorted ascending for stable
// summaries.
func DifficultySamples(frames []scene.Frame) []float64 {
	out := make([]float64, 0, len(frames))
	for _, f := range frames {
		out = append(out, f.Ctx.Difficulty())
	}
	sort.Float64s(out)
	return out
}

// NewCalibrated builds a model whose mean IoU over the sampled difficulties
// is targetIoU, using the zoo's default shape parameters and the family's
// confidence calibration.
func NewCalibrated(name string, fam Family, targetIoU float64, difficulties []float64) (*Model, error) {
	// Mid and slope are coupled (weaker models fall off more sharply), so
	// fit by fixpoint iteration: fit mid at the current slope, update the
	// slope from the new mid, repeat. Converges in a few rounds because the
	// slope correction shifts the expectation only mildly.
	mid := refMid
	var err error
	for i := 0; i < 4; i++ {
		slope := defaultSlope + (refMid-mid)*slopePerMid
		mid, err = FitMid(targetIoU, defaultTop, slope, difficulties)
		if err != nil {
			return nil, err
		}
	}
	m := &Model{
		Name:     name,
		Family:   fam,
		Top:      defaultTop,
		Mid:      mid,
		Slope:    defaultSlope + (refMid-mid)*slopePerMid,
		NoiseStd: defaultNoise,
		MissIoU:  defaultMiss,
		FPBase:   defaultFPBase,
	}
	if fam == FamilySSD {
		m.NoiseStd += ssdExtraNoise
		m.FPBase *= ssdFPBaseFactor
	}
	return m, nil
}
