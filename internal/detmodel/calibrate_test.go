package detmodel

import (
	"math"
	"testing"

	"repro/internal/scene"
)

func difficulties(t *testing.T) []float64 {
	t.Helper()
	return DifficultySamples(scene.ValidationSet(1, 400))
}

func TestFitMidHitsTarget(t *testing.T) {
	ds := difficulties(t)
	for _, target := range []float64{0.3, 0.45, 0.6, 0.7} {
		mid, err := FitMid(target, 0.93, 6.0, ds)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		m := Model{Top: 0.93, Mid: mid, Slope: 6.0}
		var sum float64
		for _, d := range ds {
			sum += m.ExpectedIoU(d)
		}
		got := sum / float64(len(ds))
		if math.Abs(got-target) > 1e-6 {
			t.Fatalf("target %v: fitted expectation %v", target, got)
		}
	}
}

func TestFitMidMonotoneInTarget(t *testing.T) {
	ds := difficulties(t)
	prev := math.Inf(-1)
	for _, target := range []float64{0.3, 0.45, 0.6, 0.7} {
		mid, err := FitMid(target, 0.93, 6.0, ds)
		if err != nil {
			t.Fatal(err)
		}
		if mid <= prev {
			t.Fatalf("mid not increasing with target: %v after %v", mid, prev)
		}
		prev = mid
	}
}

func TestFitMidErrors(t *testing.T) {
	ds := difficulties(t)
	if _, err := FitMid(0.95, 0.93, 6.0, ds); err == nil {
		t.Fatal("unreachable target should fail")
	}
	if _, err := FitMid(0.5, 0.93, 6.0, nil); err == nil {
		t.Fatal("no samples should fail")
	}
	if _, err := FitMid(-1, 0.93, 6.0, ds); err == nil {
		t.Fatal("negative target should fail")
	}
	if _, err := FitMid(0.5, 0, 6.0, ds); err == nil {
		t.Fatal("zero top should fail")
	}
}

func TestDifficultySamplesSorted(t *testing.T) {
	ds := difficulties(t)
	if len(ds) != 400 {
		t.Fatalf("%d samples", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatal("samples not sorted")
		}
		if ds[i] < 0 || ds[i] > 1 {
			t.Fatalf("difficulty out of range: %v", ds[i])
		}
	}
}

func TestNewCalibratedMatchesMeasuredAccuracy(t *testing.T) {
	// End-to-end: a model calibrated to 0.55 mean IoU must measure close to
	// 0.55 when actually run over the frames (noise and misses shift it
	// slightly downward).
	frames := scene.ValidationSet(1, 400)
	ds := DifficultySamples(frames)
	m, err := NewCalibrated("custom", FamilyYOLO, 0.55, ds)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range frames {
		sum += m.Detect(f, 1).IoU
	}
	got := sum / float64(len(frames))
	if math.Abs(got-0.55) > 0.08 {
		t.Fatalf("calibrated model measures %.3f, want ~0.55", got)
	}
}

func TestNewCalibratedSSDFamilyTraits(t *testing.T) {
	ds := difficulties(t)
	m, err := NewCalibrated("custom-ssd", FamilySSD, 0.45, ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != FamilySSD {
		t.Fatal("family lost")
	}
	yolo, err := NewCalibrated("custom-yolo", FamilyYOLO, 0.45, ds)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoiseStd <= yolo.NoiseStd || m.FPBase <= yolo.FPBase {
		t.Fatal("SSD family adjustments not applied")
	}
}

func TestNewCalibratedUnreachable(t *testing.T) {
	ds := difficulties(t)
	if _, err := NewCalibrated("x", FamilyYOLO, 0.99, ds); err == nil {
		t.Fatal("unreachable calibration should fail")
	}
}
