// Package detmodel simulates the behaviour of the paper's object-detection
// model zoo (Table IV): four YOLOv7 variants and four SSD variants.
//
// Real trained DNNs are not available offline, so each model is replaced by a
// behavioural simulation with three properties the SHIFT design depends on:
//
//  1. Accuracy is a decreasing sigmoid of latent frame difficulty, with a
//     model-specific tolerance ("Mid"). All models saturate near the same
//     peak on easy frames — the paper's observation that simple and advanced
//     models perform equally well on close, high-contrast targets — and
//     separate as difficulty grows.
//  2. Confidence scores correlate with accuracy *through* the latent frame
//     context but are calibrated differently per architecture family (SSD
//     heads are systematically overconfident), which is precisely why the
//     paper needs a confidence graph instead of comparing raw scores.
//  3. Detections are deterministic per (model, frame): running the same model
//     twice on one frame yields the same output, so Oracle replays and SHIFT
//     runs observe a consistent world.
//
// The sigmoid midpoints are calibrated so the zoo's average IoU over this
// repo's evaluation suite reproduces the ordering and approximate values of
// Table IV (YoloV7 0.618 best, SSD-MobilenetV2-320 0.304 worst, YoloV7-E6E
// below YoloV7 — the paper's dataset rewards the mid-size model).
package detmodel

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/scene"
)

// Family is a DNN architecture family. Confidence calibration is shared
// within a family and differs across families.
type Family int

// Architecture families present in the paper's zoo.
const (
	FamilyYOLO Family = iota
	FamilySSD
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyYOLO:
		return "yolo"
	case FamilySSD:
		return "ssd"
	default:
		return "unknown"
	}
}

// Model is a simulated object-detection model.
type Model struct {
	// Name identifies the model (e.g. "YoloV7-Tiny"); it is the key used by
	// traits tables, the confidence graph and the scheduler.
	Name string
	// Family selects the confidence calibration.
	Family Family
	// Top is the peak IoU on a trivially easy frame.
	Top float64
	// Mid is the difficulty at which accuracy halves — the model's
	// robustness. Calibrated against Table IV.
	Mid float64
	// Slope is the sigmoid steepness.
	Slope float64
	// NoiseStd is the per-frame IoU noise.
	NoiseStd float64
	// MissIoU: sampled IoU below this value becomes a miss (no detection),
	// modelling NMS confidence thresholds.
	MissIoU float64
	// FPBase is the false-positive probability on target-absent frames at
	// zero clutter; clutter scales it up.
	FPBase float64
}

// Detection is a single model output on one frame.
type Detection struct {
	// Found reports whether the model emitted a box.
	Found bool
	// Box is the predicted bounding box (zero when !Found).
	Box geom.Rect
	// Conf is the model's confidence score in [0, 1] (0 when !Found).
	Conf float64
	// IoU is the overlap with ground truth, evaluated by the harness: 0 for
	// misses and false positives.
	IoU float64
}

// ExpectedIoU returns the model's mean IoU at latent difficulty d, before
// noise: Top / (1 + exp(Slope·(d − Mid))).
func (m *Model) ExpectedIoU(d float64) float64 {
	return m.Top / (1 + math.Exp(m.Slope*(d-m.Mid)))
}

// confFromIoU maps achieved IoU to a reported confidence score using the
// family calibration. YOLO heads are roughly calibrated; SSD heads compress
// the range upward (overconfident on bad detections).
func (m *Model) confFromIoU(iou float64, r *rng.Stream) float64 {
	var conf float64
	switch m.Family {
	case FamilyYOLO:
		conf = 0.12 + 0.80*iou + r.Norm(0, 0.05)
	case FamilySSD:
		conf = 0.42 + 0.48*iou + r.Norm(0, 0.08)
	default:
		conf = iou
	}
	return clamp01(conf)
}

// falsePositiveConf samples the confidence of a spurious detection.
func (m *Model) falsePositiveConf(r *rng.Stream) float64 {
	switch m.Family {
	case FamilySSD:
		return clamp01(r.Range(0.42, 0.65))
	default:
		return clamp01(r.Range(0.18, 0.42))
	}
}

// frameSalt derives a deterministic salt from frame content so the same
// (model, frame) pair always sees the same noise draw, and different frames
// (even with equal indices across scenarios) see independent draws.
func frameSalt(f scene.Frame) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h = (h ^ v) * 0x100000001b3
	}
	mix(uint64(f.Index))
	mix(math.Float64bits(f.GT.X))
	mix(math.Float64bits(f.GT.W))
	pix := f.Image.Pix
	for i := 0; i < len(pix); i += 97 {
		mix(uint64(pix[i]))
	}
	return h
}

// FrameSalt exposes the deterministic frame-content salt so batch consumers
// (the offline characterization stage runs every zoo model over the same
// validation frames) can hash each frame once and share the salt across
// models via DetectSalted.
func FrameSalt(f scene.Frame) uint64 { return frameSalt(f) }

// Detect runs the simulated model on a frame. seed is the experiment seed;
// the draw is fully determined by (model name, seed, frame content).
func (m *Model) Detect(f scene.Frame, seed uint64) Detection {
	return m.DetectSalted(f, seed, frameSalt(f))
}

// DetectSalted is Detect with the frame salt precomputed by FrameSalt;
// outputs are identical to Detect for salt == FrameSalt(f).
func (m *Model) DetectSalted(f scene.Frame, seed, salt uint64) Detection {
	// Stack-allocated streams: one simulated detection runs per frame on the
	// hot pipeline loop, and the derived stream never outlives the call.
	var base, det rng.Stream
	base.Reseed(seed ^ salt)
	base.Fork2Into("det:", m.Name, &det)
	r := &det

	if !f.Ctx.Present || f.GT.Empty() {
		fp := m.FPBase * (1 + 2*f.Ctx.Clutter)
		if r.Bool(fp) {
			// Spurious box somewhere in the frame.
			w := float64(f.Image.W)
			h := float64(f.Image.H)
			bw := r.Range(0.05, 0.2) * w
			box := geom.Rect{X: r.Range(0, w-bw), Y: r.Range(0, h-bw), W: bw, H: bw}
			return Detection{Found: true, Box: box, Conf: m.falsePositiveConf(r), IoU: 0}
		}
		return Detection{}
	}

	d := f.Ctx.Difficulty()
	iou := clamp01(m.ExpectedIoU(d) + r.Norm(0, m.NoiseStd))
	if iou < m.MissIoU {
		// The model's best candidate fell under the NMS confidence floor.
		return Detection{}
	}
	dir := r.Range(0, 2*math.Pi)
	box := geom.PerturbToIoU(f.GT, iou, dir)
	trueIoU := box.IoU(f.GT)
	return Detection{
		Found: true,
		Box:   box,
		Conf:  m.confFromIoU(trueIoU, r),
		IoU:   trueIoU,
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Canonical model names, matching Table IV rows.
const (
	YoloV7E6E       = "YoloV7-E6E"
	YoloV7X         = "YoloV7-X"
	YoloV7          = "YoloV7"
	YoloV7Tiny      = "YoloV7-Tiny"
	SSDResnet50     = "SSD-Resnet50"
	SSDMobilenetV1  = "SSD-MobilenetV1"
	SSDMobilenetV2  = "SSD-MobilenetV2"
	SSDMobilenet320 = "SSD-MobilenetV2-320"
	defaultSlope    = 6.0
	defaultTop      = 0.93
	defaultNoise    = 0.055
	defaultMiss     = 0.12
	defaultFPBase   = 0.015
	ssdExtraNoise   = 0.01 // SSD heads are slightly noisier per frame
	ssdFPBaseFactor = 2.0  // and more prone to false positives
	// slopePerMid sharpens weaker models' falloff: they saturate to the
	// shared peak on easy frames (paper §I: all models detect a close,
	// contrasted target) but collapse faster once difficulty passes their
	// tolerance, producing the Fig. 2 crossovers.
	slopePerMid = 6.0
	refMid      = 0.665 // YoloV7's tolerance, the zoo's most robust
)

// DefaultZoo returns the eight models of Table IV with calibrated behaviour
// parameters. Mid values target the paper's average IoU column; the ordering
// (YoloV7 > X > E6E > Tiny > Resnet50 > MbV1 > MbV2 > MbV2-320) is the
// load-bearing property for every downstream experiment.
func DefaultZoo() []*Model {
	mk := func(name string, fam Family, mid float64) *Model {
		m := &Model{
			Name:     name,
			Family:   fam,
			Top:      defaultTop,
			Mid:      mid,
			Slope:    defaultSlope + (refMid-mid)*slopePerMid,
			NoiseStd: defaultNoise,
			MissIoU:  defaultMiss,
			FPBase:   defaultFPBase,
		}
		if fam == FamilySSD {
			m.NoiseStd += ssdExtraNoise
			m.FPBase *= ssdFPBaseFactor
		}
		return m
	}
	return []*Model{
		mk(YoloV7E6E, FamilyYOLO, 0.600),
		mk(YoloV7X, FamilyYOLO, 0.635),
		mk(YoloV7, FamilyYOLO, 0.665),
		mk(YoloV7Tiny, FamilyYOLO, 0.565),
		mk(SSDResnet50, FamilySSD, 0.510),
		mk(SSDMobilenetV1, FamilySSD, 0.480),
		mk(SSDMobilenetV2, FamilySSD, 0.425),
		mk(SSDMobilenet320, FamilySSD, 0.320),
	}
}

// ZooByName indexes a zoo slice by model name.
func ZooByName(zoo []*Model) map[string]*Model {
	m := make(map[string]*Model, len(zoo))
	for _, mod := range zoo {
		m[mod.Name] = mod
	}
	return m
}

// Find returns the model with the given name from zoo, or an error.
func Find(zoo []*Model, name string) (*Model, error) {
	for _, m := range zoo {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("detmodel: unknown model %q", name)
}
