package detmodel

import (
	"math"
	"testing"

	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/scene"
)

func zooMap() map[string]*Model { return ZooByName(DefaultZoo()) }

func easyFrame(i int) scene.Frame {
	ctx := scene.Context{Present: true, Distance: 0.1, Contrast: 0.95, Clutter: 0.05, Texture: img.TextureFlat}
	return scene.RenderSingle(i, ctx, rng.New(uint64(i)).Fork("easy"))
}

func hardFrame(i int) scene.Frame {
	ctx := scene.Context{Present: true, Distance: 0.95, Contrast: 0.25, Clutter: 0.7, Texture: img.TextureFoliage}
	return scene.RenderSingle(i, ctx, rng.New(uint64(i)).Fork("hard"))
}

func absentFrame(i int) scene.Frame {
	ctx := scene.Context{Present: false, Texture: img.TextureClouds, Clutter: 0.4}
	return scene.RenderSingle(i, ctx, rng.New(uint64(i)).Fork("absent"))
}

func TestDefaultZooComplete(t *testing.T) {
	zoo := DefaultZoo()
	if len(zoo) != 8 {
		t.Fatalf("zoo has %d models, want 8 (Table IV)", len(zoo))
	}
	names := map[string]bool{}
	for _, m := range zoo {
		if names[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, want := range []string{YoloV7, YoloV7Tiny, YoloV7X, YoloV7E6E,
		SSDResnet50, SSDMobilenetV1, SSDMobilenetV2, SSDMobilenet320} {
		if !names[want] {
			t.Fatalf("zoo missing %q", want)
		}
	}
}

func TestFind(t *testing.T) {
	zoo := DefaultZoo()
	m, err := Find(zoo, YoloV7)
	if err != nil || m.Name != YoloV7 {
		t.Fatalf("Find(YoloV7) = %v, %v", m, err)
	}
	if _, err := Find(zoo, "nope"); err == nil {
		t.Fatal("Find should fail for unknown model")
	}
}

func TestExpectedIoUMonotoneDecreasing(t *testing.T) {
	for _, m := range DefaultZoo() {
		prev := math.Inf(1)
		for d := 0.0; d <= 1.0; d += 0.05 {
			v := m.ExpectedIoU(d)
			if v > prev {
				t.Fatalf("%s: ExpectedIoU not monotone at d=%v", m.Name, d)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s: ExpectedIoU out of range: %v", m.Name, v)
			}
			prev = v
		}
	}
}

func TestModelsConvergeOnEasyFrames(t *testing.T) {
	// Paper §I: on close, contrasted targets, simple and advanced models
	// perform equally well. At difficulty ~0.1 every model should be within
	// 10% of the best.
	zoo := DefaultZoo()
	best, worst := 0.0, 1.0
	for _, m := range zoo {
		v := m.ExpectedIoU(0.08)
		if v > best {
			best = v
		}
		if v < worst {
			worst = v
		}
	}
	if best-worst > 0.12 {
		t.Fatalf("models too spread on easy frames: best %v worst %v", best, worst)
	}
}

func TestModelsSeparateOnMediumFrames(t *testing.T) {
	z := zooMap()
	big := z[YoloV7].ExpectedIoU(0.55)
	small := z[SSDMobilenet320].ExpectedIoU(0.55)
	if big-small < 0.25 {
		t.Fatalf("models insufficiently separated at medium difficulty: %v vs %v", big, small)
	}
}

func TestTableIVOrderingOfRobustness(t *testing.T) {
	// The calibrated Mid values must preserve Table IV's accuracy ordering.
	z := zooMap()
	order := []string{YoloV7, YoloV7X, YoloV7E6E, YoloV7Tiny,
		SSDResnet50, SSDMobilenetV1, SSDMobilenetV2, SSDMobilenet320}
	for i := 1; i < len(order); i++ {
		if z[order[i]].Mid >= z[order[i-1]].Mid {
			t.Fatalf("Mid ordering violated: %s (%v) >= %s (%v)",
				order[i], z[order[i]].Mid, order[i-1], z[order[i-1]].Mid)
		}
	}
}

func TestDetectDeterministicPerFrame(t *testing.T) {
	m := zooMap()[YoloV7]
	f := easyFrame(3)
	a := m.Detect(f, 42)
	b := m.Detect(f, 42)
	if a != b {
		t.Fatalf("Detect not deterministic: %+v vs %+v", a, b)
	}
}

func TestDetectSeedSensitivity(t *testing.T) {
	m := zooMap()[YoloV7]
	f := hardFrame(3)
	a := m.Detect(f, 1)
	b := m.Detect(f, 2)
	if a == b {
		t.Fatal("different seeds gave identical detections on a noisy frame")
	}
}

func TestDetectEasyFrameQuality(t *testing.T) {
	m := zooMap()[YoloV7]
	found, iouSum := 0, 0.0
	for i := 0; i < 100; i++ {
		det := m.Detect(easyFrame(i), 7)
		if det.Found {
			found++
			iouSum += det.IoU
		}
	}
	if found < 95 {
		t.Fatalf("YoloV7 found only %d/100 easy targets", found)
	}
	if avg := iouSum / float64(found); avg < 0.75 {
		t.Fatalf("YoloV7 easy-frame IoU %v, want > 0.75", avg)
	}
}

func TestDetectHardFrameDegradation(t *testing.T) {
	weak := zooMap()[SSDMobilenet320]
	strong := zooMap()[YoloV7]
	weakIoU, strongIoU := 0.0, 0.0
	for i := 0; i < 200; i++ {
		f := hardFrame(i)
		weakIoU += weak.Detect(f, 7).IoU
		strongIoU += strong.Detect(f, 7).IoU
	}
	if weakIoU >= strongIoU {
		t.Fatalf("weak model outperformed strong on hard frames: %v vs %v", weakIoU/200, strongIoU/200)
	}
}

func TestDetectAbsentTarget(t *testing.T) {
	m := zooMap()[SSDMobilenetV2]
	found := 0
	for i := 0; i < 300; i++ {
		det := m.Detect(absentFrame(i), 7)
		if det.Found {
			found++
			if det.IoU != 0 {
				t.Fatalf("false positive has non-zero IoU: %+v", det)
			}
			if det.Conf <= 0 {
				t.Fatal("false positive with zero confidence")
			}
		} else if det.Conf != 0 || !det.Box.Empty() {
			t.Fatalf("miss should be zero-valued: %+v", det)
		}
	}
	// False positives must exist but be rare.
	if found == 0 {
		t.Fatal("no false positives in 300 absent frames; FP path untested")
	}
	if found > 60 {
		t.Fatalf("too many false positives: %d/300", found)
	}
}

func TestDetectBoxMatchesReportedIoU(t *testing.T) {
	// Detection.IoU must be the true overlap of the emitted box with GT.
	m := zooMap()[YoloV7X]
	for i := 0; i < 50; i++ {
		f := easyFrame(i)
		det := m.Detect(f, 11)
		if !det.Found {
			continue
		}
		if got := det.Box.IoU(f.GT); math.Abs(got-det.IoU) > 1e-9 {
			t.Fatalf("reported IoU %v != actual %v", det.IoU, got)
		}
	}
}

func TestConfidenceFamilyCalibration(t *testing.T) {
	// At equal IoU, SSD must report systematically higher confidence than
	// YOLO — the miscalibration that motivates the confidence graph.
	r := rng.New(5)
	yolo := &Model{Family: FamilyYOLO}
	ssd := &Model{Family: FamilySSD}
	ySum, sSum := 0.0, 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		ySum += yolo.confFromIoU(0.4, r)
		sSum += ssd.confFromIoU(0.4, r)
	}
	if sSum/n <= ySum/n+0.1 {
		t.Fatalf("SSD not overconfident vs YOLO: %v vs %v", sSum/n, ySum/n)
	}
}

func TestConfidenceCorrelatesWithIoU(t *testing.T) {
	m := zooMap()[YoloV7]
	// Sweep difficulty; confidence should fall as IoU falls.
	var loConf, hiConf float64
	nLo, nHi := 0, 0
	for i := 0; i < 100; i++ {
		if det := m.Detect(easyFrame(i), 3); det.Found {
			hiConf += det.Conf
			nHi++
		}
		if det := m.Detect(hardFrame(i), 3); det.Found {
			loConf += det.Conf
			nLo++
		}
	}
	if nHi == 0 {
		t.Fatal("no easy detections")
	}
	if nLo > 0 && loConf/float64(nLo) >= hiConf/float64(nHi) {
		t.Fatalf("confidence not correlated with context: hard %v >= easy %v",
			loConf/float64(nLo), hiConf/float64(nHi))
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyYOLO.String() != "yolo" || FamilySSD.String() != "ssd" || Family(9).String() != "unknown" {
		t.Fatal("Family.String mismatch")
	}
}

func TestZooByName(t *testing.T) {
	z := zooMap()
	if len(z) != 8 || z[YoloV7] == nil {
		t.Fatalf("ZooByName incomplete: %d entries", len(z))
	}
}

func BenchmarkDetect(b *testing.B) {
	m := zooMap()[YoloV7]
	f := easyFrame(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Detect(f, 42)
	}
}
