package distrib

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Transport is one worker connection: strictly sequential request/response
// with a per-request deadline. Implementations: ProcTransport (a worker
// subprocess over stdio pipes) and PipeWorker (in-process, for tests and
// single-binary harnesses).
type Transport interface {
	Send(req *Request, timeout time.Duration) (*Response, error)
	Close() error
}

// CoordConfig parameterizes the coordinator's dispatch loop.
type CoordConfig struct {
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// Retries is how many times a timed-out request is re-sent (same ID, so
	// the worker's idempotency cache absorbs duplicates) before the worker
	// is declared dead. Default 3.
	Retries int
	// Backoff is the first retry delay, doubling per attempt (default 50ms).
	Backoff time.Duration
	// ChunkFrames bounds frames per serve request (default 16) — also the
	// most work a crash can destroy per stream beyond the journal.
	ChunkFrames int
	// JournalDir, when set, persists each stream's latest checkpoint to
	// <dir>/<stream>.ckpt after every chunk.
	JournalDir string
	// OnProgress observes each journaled chunk (tests and harnesses hook
	// fault injection here). Nil: no observer.
	OnProgress func(ev Progress)
	// sleep is stubbed by tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// Progress is one OnProgress observation.
type Progress struct {
	Stream string
	Worker string
	Served int
	Done   bool
}

// Job is one stream for the coordinator to serve, frames by reference.
type Job struct {
	Stream     string
	Scenario   string
	RenderSeed uint64
	Frames     int
	PeriodSec  float64
	Policy     string
}

// JobReport is one stream's outcome.
type JobReport struct {
	Stream string
	// Workers is the serving path (one entry per placement).
	Workers []string
	Served  int
	Digest  uint64
	// Redispatches counts re-placements after worker death; Replayed counts
	// frames lost with dead workers and served again from the journal.
	Redispatches int
	Replayed     int
}

// RunReport is one coordinator run.
type RunReport struct {
	Jobs          []JobReport
	WorkerDeaths  int
	Retries       int
	JournalWrites int
	JournalBytes  int64
}

// remoteWorker is the coordinator's view of one worker.
type remoteWorker struct {
	name   string
	tr     Transport
	dead   bool
	nextID uint64
}

// streamState is one job's dispatch state: the journaled checkpoint is the
// only state that survives its worker dying.
type streamState struct {
	job     Job
	worker  *remoteWorker
	journal []byte
	// journaled is the served count the journal pins — what recovery rolls
	// back to; served is the count the live worker last reported.
	journaled int
	served    int
	done      bool
	report    JobReport
}

// Coordinator owns placement and the checkpoint journal across a set of
// workers.
type Coordinator struct {
	cfg     CoordConfig
	workers []*remoteWorker
	retries int
	deaths  int
}

// NewCoordinator applies defaults.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.ChunkFrames <= 0 {
		cfg.ChunkFrames = 16
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep //detlint:allow wallclock retry backoff against live worker processes; virtual time cannot pace real pipes
	}
	return &Coordinator{cfg: cfg}
}

// AddWorker attaches a worker connection, verifying it answers hello.
func (c *Coordinator) AddWorker(name string, tr Transport) error {
	w := &remoteWorker{name: name, tr: tr}
	resp, err := c.send(w, &Request{Cmd: CmdHello})
	if err != nil {
		return fmt.Errorf("distrib: hello to %s: %w", name, err)
	}
	if !resp.OK {
		return fmt.Errorf("distrib: hello to %s: %s", name, resp.Err)
	}
	if resp.Device != name {
		return fmt.Errorf("distrib: worker %q answered hello as %q", name, resp.Device)
	}
	c.workers = append(c.workers, w)
	return nil
}

// send issues one request with the per-request deadline and bounded
// exponential-backoff retry. Every attempt re-sends the same ID, so a worker
// that processed the request while its response was lost replays the cached
// response instead of advancing twice.
func (c *Coordinator) send(w *remoteWorker, req *Request) (*Response, error) {
	w.nextID++
	req.ID = w.nextID
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries++
			c.cfg.sleep(backoff)
			backoff *= 2
		}
		resp, err := w.tr.Send(req, c.cfg.RequestTimeout)
		if err == nil {
			if resp.ID != req.ID {
				return nil, fmt.Errorf("distrib: worker %s answered id %d to request %d", w.name, resp.ID, req.ID)
			}
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// alive returns live workers in attach order.
func (c *Coordinator) alive() []*remoteWorker {
	var out []*remoteWorker
	for _, w := range c.workers {
		if !w.dead {
			out = append(out, w)
		}
	}
	return out
}

// Run serves the jobs to completion, surviving worker deaths as long as one
// worker remains. Streams are dealt round-robin over the workers attached at
// start and advanced fairly, one chunk per turn.
func (c *Coordinator) Run(jobs []Job) (*RunReport, error) {
	live := c.alive()
	if len(live) == 0 {
		return nil, fmt.Errorf("distrib: no live workers")
	}
	states := make([]*streamState, len(jobs))
	for i, job := range jobs {
		if job.Stream == "" {
			return nil, fmt.Errorf("distrib: job %d has no stream ID", i)
		}
		w := live[i%len(live)]
		states[i] = &streamState{
			job: job, worker: w,
			report: JobReport{Stream: job.Stream, Workers: []string{w.name}},
		}
	}
	rep := &RunReport{}
	for {
		remaining := 0
		for _, st := range states {
			if st.done {
				continue
			}
			remaining++
			if err := c.step(st, states, rep); err != nil {
				return nil, err
			}
		}
		if remaining == 0 {
			break
		}
	}
	for _, st := range states {
		rep.Jobs = append(rep.Jobs, st.report)
	}
	rep.WorkerDeaths = c.deaths
	rep.Retries = c.retries
	return rep, nil
}

// step advances one stream by one chunk on its worker, journaling the
// returned checkpoint; on transport failure the worker is declared dead and
// its streams re-dispatched.
func (c *Coordinator) step(st *streamState, states []*streamState, rep *RunReport) error {
	req := &Request{
		Cmd:        CmdServe,
		Stream:     st.job.Stream,
		Scenario:   st.job.Scenario,
		RenderSeed: st.job.RenderSeed,
		Frames:     st.job.Frames,
		PeriodSec:  st.job.PeriodSec,
		Policy:     st.job.Policy,
		Chunk:      c.cfg.ChunkFrames,
		Checkpoint: st.journal,
	}
	resp, err := c.send(st.worker, req)
	if err != nil {
		return c.workerDied(st.worker, states, err)
	}
	if !resp.OK {
		return fmt.Errorf("distrib: serve %s on %s: %s", st.job.Stream, st.worker.name, resp.Err)
	}
	if len(resp.Checkpoint) == 0 {
		return fmt.Errorf("distrib: serve %s on %s returned no checkpoint", st.job.Stream, st.worker.name)
	}
	st.journal = resp.Checkpoint
	st.journaled = resp.Served
	st.served = resp.Served
	rep.JournalWrites++
	rep.JournalBytes += int64(len(resp.Checkpoint))
	if c.cfg.JournalDir != "" {
		path := filepath.Join(c.cfg.JournalDir, st.job.Stream+".ckpt")
		if err := os.WriteFile(path, resp.Checkpoint, 0o644); err != nil {
			return fmt.Errorf("distrib: journal %s: %w", st.job.Stream, err)
		}
	}
	if resp.Done {
		st.done = true
		st.report.Served = resp.Served
		st.report.Digest = resp.Digest
	}
	if c.cfg.OnProgress != nil {
		c.cfg.OnProgress(Progress{Stream: st.job.Stream, Worker: st.worker.name, Served: resp.Served, Done: resp.Done})
	}
	return nil
}

// workerDied marks a worker dead and re-dispatches its unfinished streams to
// survivors from their journaled checkpoints. Frames the dead worker served
// past each journal entry are lost and counted as replay.
func (c *Coordinator) workerDied(w *remoteWorker, states []*streamState, cause error) error {
	w.dead = true
	c.deaths++
	_ = w.tr.Close()
	live := c.alive()
	if len(live) == 0 {
		return fmt.Errorf("distrib: worker %s died (%v) with no survivors", w.name, cause)
	}
	n := 0
	for _, st := range states {
		if st.done || st.worker != w {
			continue
		}
		next := live[n%len(live)]
		n++
		st.worker = next
		st.report.Workers = append(st.report.Workers, next.name)
		st.report.Redispatches++
		// The survivor restores from the journal; anything the dead worker
		// served past it is replayed.
		st.report.Replayed += st.served - st.journaled
		st.served = st.journaled
	}
	return nil
}

// Shutdown closes every live worker, verifying each released all residency
// references, then closes the transports.
func (c *Coordinator) Shutdown() error {
	var firstErr error
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		resp, err := c.send(w, &Request{Cmd: CmdShutdown})
		switch {
		case err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: shutdown %s: %w", w.name, err)
			}
		case !resp.OK:
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: shutdown %s: %s", w.name, resp.Err)
			}
		case resp.LeakedRefs != 0:
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: worker %s leaked %d residency refs", w.name, resp.LeakedRefs)
			}
		}
		if err := w.tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		w.dead = true
	}
	return firstErr
}
