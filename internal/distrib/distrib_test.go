package distrib_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/distrib"
)

// TestMain doubles as the worker-process trampoline: when DISTRIB_WORKER
// names a device, the test binary speaks the worker protocol on its stdio
// and exits — the multi-process tests re-exec themselves through this hook
// (the same pattern cmd/fleetsim -worker uses with a real binary).
func TestMain(m *testing.M) {
	if name := os.Getenv("DISTRIB_WORKER"); name != "" {
		seed := uint64(1)
		if s := os.Getenv("DISTRIB_SEED"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "worker:", err)
				os.Exit(1)
			}
			seed = v
		}
		if err := distrib.RunWorker(os.Stdin, os.Stdout, distrib.WorkerConfig{Name: name, Seed: seed}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const fixedTiny = "fixed:" + detmodel.YoloV7Tiny + "/gpu"

// testJobs builds a small deterministic job set over scenario-2 prefixes.
func testJobs(frames ...int) []distrib.Job {
	jobs := make([]distrib.Job, len(frames))
	for i, n := range frames {
		jobs[i] = distrib.Job{
			Stream:     fmt.Sprintf("s%02d", i),
			Scenario:   "scenario2",
			RenderSeed: 1,
			Frames:     n,
			PeriodSec:  0.1,
			Policy:     fixedTiny,
		}
	}
	return jobs
}

// soloDigests serves each job uninterrupted in-process — the reference the
// distributed run must reproduce decision-for-decision.
func soloDigests(t *testing.T, jobs []distrib.Job) map[string]uint64 {
	t.Helper()
	want := map[string]uint64{}
	for _, job := range jobs {
		resp, err := distrib.Solo(job, distrib.WorkerConfig{Name: "solo", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[job.Stream] = resp.Digest
	}
	return want
}

// checkReport asserts every job completed with the solo decision digest.
func checkReport(t *testing.T, rep *distrib.RunReport, jobs []distrib.Job, want map[string]uint64) {
	t.Helper()
	if len(rep.Jobs) != len(jobs) {
		t.Fatalf("%d job reports, want %d", len(rep.Jobs), len(jobs))
	}
	for i, jr := range rep.Jobs {
		if jr.Served != jobs[i].Frames {
			t.Fatalf("stream %s served %d frames, want %d", jr.Stream, jr.Served, jobs[i].Frames)
		}
		if jr.Digest != want[jr.Stream] {
			t.Fatalf("stream %s decision digest %#x, solo reference %#x — recovery drifted",
				jr.Stream, jr.Digest, want[jr.Stream])
		}
	}
}

// TestPipeWorkersServeJobs: two in-process workers serve three chunked
// streams; every decision digest matches the uninterrupted solo reference,
// and shutdown confirms zero leaked residency refs.
func TestPipeWorkersServeJobs(t *testing.T) {
	jobs := testJobs(40, 56, 24)
	want := soloDigests(t, jobs)
	c := distrib.NewCoordinator(distrib.CoordConfig{ChunkFrames: 8, Backoff: time.Millisecond})
	for _, name := range []string{"w0", "w1"} {
		if err := c.AddWorker(name, distrib.PipeWorker(distrib.WorkerConfig{Name: name, Seed: 1})); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, jobs, want)
	if rep.WorkerDeaths != 0 || rep.Retries != 0 {
		t.Fatalf("deaths %d retries %d on a healthy run", rep.WorkerDeaths, rep.Retries)
	}
	if wantWrites := 5 + 7 + 3; rep.JournalWrites != wantWrites {
		t.Fatalf("journal writes %d, want %d (one per chunk)", rep.JournalWrites, wantWrites)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// mortal wraps a transport that can be struck dead mid-run.
type mortal struct {
	distrib.Transport
	dead bool
}

func (m *mortal) Send(req *distrib.Request, timeout time.Duration) (*distrib.Response, error) {
	if m.dead {
		return nil, errors.New("worker unreachable")
	}
	return m.Transport.Send(req, timeout)
}

// TestCoordinatorSurvivesWorkerDeath: worker w0 stops answering after its
// first chunk; the coordinator burns its bounded retries, declares it dead,
// and re-dispatches its streams to w1 from the journaled checkpoints — every
// stream completes with the solo digest (the cross-process churn contract).
func TestCoordinatorSurvivesWorkerDeath(t *testing.T) {
	jobs := testJobs(40, 56)
	want := soloDigests(t, jobs)
	w0 := &mortal{Transport: distrib.PipeWorker(distrib.WorkerConfig{Name: "w0", Seed: 1})}
	tripped := false
	c := distrib.NewCoordinator(distrib.CoordConfig{
		ChunkFrames: 8, Retries: 2, Backoff: time.Millisecond,
		OnProgress: func(ev distrib.Progress) {
			if ev.Worker == "w0" && !tripped {
				tripped = true
				w0.dead = true
			}
		},
	})
	if err := c.AddWorker("w0", w0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWorker("w1", distrib.PipeWorker(distrib.WorkerConfig{Name: "w1", Seed: 1})); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, jobs, want)
	if rep.WorkerDeaths != 1 {
		t.Fatalf("worker deaths %d, want 1", rep.WorkerDeaths)
	}
	if rep.Retries != 2 {
		t.Fatalf("retries %d, want the bounded 2 before declaring death", rep.Retries)
	}
	redispatched := 0
	for _, jr := range rep.Jobs {
		redispatched += jr.Redispatches
		if jr.Redispatches > 0 && jr.Workers[len(jr.Workers)-1] != "w1" {
			t.Fatalf("stream %s re-dispatched to %v, want w1 last", jr.Stream, jr.Workers)
		}
	}
	if redispatched == 0 {
		t.Fatal("death re-dispatched no streams")
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// lossy delivers the request but loses one serve response in transit.
type lossy struct {
	distrib.Transport
	serveCalls int
	dropped    int
}

func (l *lossy) Send(req *distrib.Request, timeout time.Duration) (*distrib.Response, error) {
	resp, err := l.Transport.Send(req, timeout)
	if err != nil {
		return nil, err
	}
	if req.Cmd == distrib.CmdServe {
		l.serveCalls++
		if l.serveCalls == 2 && l.dropped == 0 {
			l.dropped++
			return nil, errors.New("response lost in transit")
		}
	}
	return resp, nil
}

// TestRetryReplaysLostResponse: a serve response is lost after the worker
// processed it; the retry re-sends the same request ID and the worker's
// idempotency cache replays the response instead of advancing the stream a
// second time — journal write count and digest stay exactly those of a
// clean run.
func TestRetryReplaysLostResponse(t *testing.T) {
	jobs := testJobs(40)
	want := soloDigests(t, jobs)
	w0 := &lossy{Transport: distrib.PipeWorker(distrib.WorkerConfig{Name: "w0", Seed: 1})}
	c := distrib.NewCoordinator(distrib.CoordConfig{ChunkFrames: 8, Retries: 2, Backoff: time.Millisecond})
	if err := c.AddWorker("w0", w0); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, jobs, want)
	if w0.dropped != 1 || rep.Retries != 1 {
		t.Fatalf("dropped %d retries %d, want 1/1", w0.dropped, rep.Retries)
	}
	// 40 frames in chunks of 8 = 5 advancing responses. A double-advance
	// (broken idempotency) would finish in fewer.
	if rep.JournalWrites != 5 {
		t.Fatalf("journal writes %d, want 5 — the replayed response must not re-advance", rep.JournalWrites)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestNoSurvivorsFails: when the only worker dies, the run errors instead of
// spinning.
func TestNoSurvivorsFails(t *testing.T) {
	w0 := &mortal{Transport: distrib.PipeWorker(distrib.WorkerConfig{Name: "w0", Seed: 1})}
	tripped := false
	c := distrib.NewCoordinator(distrib.CoordConfig{
		ChunkFrames: 8, Retries: 1, Backoff: time.Millisecond,
		OnProgress: func(ev distrib.Progress) {
			if !tripped {
				tripped = true
				w0.dead = true
			}
		},
	})
	if err := c.AddWorker("w0", w0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(testJobs(40)); err == nil {
		t.Fatal("run completed with its only worker dead")
	}
}

// startWorkerProc re-execs this test binary as a worker subprocess.
func startWorkerProc(t *testing.T, name string) *distrib.ProcTransport {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "DISTRIB_WORKER="+name, "DISTRIB_SEED=1")
	tr, err := distrib.NewProcTransport(cmd)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestProcWorkerSIGKILLRecovery is the multi-process crash drill: a
// coordinator drives two real worker subprocesses over stdio pipes, one is
// SIGKILLed mid-run, and every stream still completes — resumed on the
// survivor from the coordinator's journaled checkpoints, decision digests
// identical to uninterrupted solo serves, zero residency refs leaked on the
// survivor.
func TestProcWorkerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	jobs := testJobs(40, 56)
	want := soloDigests(t, jobs)

	w0 := startWorkerProc(t, "w0")
	w1 := startWorkerProc(t, "w1")
	killed := false
	c := distrib.NewCoordinator(distrib.CoordConfig{
		ChunkFrames: 8, Retries: 2, Backoff: 10 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		OnProgress: func(ev distrib.Progress) {
			// First journaled chunk from w0: kill -9 the worker process.
			if ev.Worker == "w0" && !killed {
				killed = true
				if err := w0.Process().Kill(); err != nil {
					t.Errorf("kill w0: %v", err)
				}
			}
		},
	})
	if err := c.AddWorker("w0", w0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWorker("w1", w1); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("w0 never served a chunk, kill not exercised")
	}
	checkReport(t, rep, jobs, want)
	if rep.WorkerDeaths != 1 {
		t.Fatalf("worker deaths %d, want 1", rep.WorkerDeaths)
	}
	redispatched := 0
	for _, jr := range rep.Jobs {
		redispatched += jr.Redispatches
	}
	if redispatched == 0 {
		t.Fatal("SIGKILL re-dispatched no streams")
	}
	// Shutdown verifies the survivor holds zero residency refs.
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
