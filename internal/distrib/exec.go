package distrib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/loader"
	"repro/internal/zoo"
)

// ioTransport speaks the sequential line protocol over a writer/reader pair,
// with a background reader goroutine so Send can enforce a deadline.
type ioTransport struct {
	w     io.Writer
	lines chan []byte
	rdErr chan error
	close func() error
}

// newIOTransport starts the reader goroutine. closeFn tears down the
// underlying connection (may be nil).
func newIOTransport(w io.Writer, r io.Reader, closeFn func() error) *ioTransport {
	t := &ioTransport{w: w, lines: make(chan []byte, 4), rdErr: make(chan error, 1), close: closeFn}
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64<<10), maxLine)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			t.lines <- line
		}
		err := sc.Err()
		if err == nil {
			err = io.EOF
		}
		t.rdErr <- err
		close(t.lines)
	}()
	return t
}

// Send writes one request line and waits for its response under the
// deadline. A stale response (a lower ID, from an attempt that timed out
// after the worker had already answered) is discarded; the retry that
// re-sent the same ID consumes the replayed response instead.
func (t *ioTransport) Send(req *Request, timeout time.Duration) (*Response, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if _, err := t.w.Write(data); err != nil {
		return nil, fmt.Errorf("distrib: send request %d: %w", req.ID, err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case line, ok := <-t.lines:
			if !ok {
				return nil, fmt.Errorf("distrib: connection closed awaiting response %d: %w", req.ID, <-t.rdErr)
			}
			var resp Response
			if err := json.Unmarshal(line, &resp); err != nil {
				return nil, fmt.Errorf("distrib: bad response line: %w", err)
			}
			if resp.ID < req.ID {
				continue // stale answer to a timed-out attempt
			}
			return &resp, nil
		case <-deadline.C:
			return nil, fmt.Errorf("distrib: request %d timed out after %v", req.ID, timeout)
		}
	}
}

func (t *ioTransport) Close() error {
	if t.close != nil {
		return t.close()
	}
	return nil
}

// ProcTransport runs a worker as a subprocess, protocol over its stdio.
type ProcTransport struct {
	*ioTransport
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// NewProcTransport starts the prepared command (argv/env set by the caller;
// its stdin/stdout must be unset) and connects the protocol to its stdio.
// The child's stderr passes through to the parent's.
func NewProcTransport(cmd *exec.Cmd) (*ProcTransport, error) {
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &ProcTransport{cmd: cmd, stdin: stdin}
	p.ioTransport = newIOTransport(stdin, stdout, p.teardown)
	return p, nil
}

// Process exposes the worker process (the smoke harness SIGKILLs through it).
func (p *ProcTransport) Process() *os.Process { return p.cmd.Process }

// teardown closes stdin (the worker exits on EOF) and reaps the process,
// killing it if it lingers.
func (p *ProcTransport) teardown() error {
	_ = p.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		return nil // exit status is irrelevant: a SIGKILLed worker is expected to die non-zero
	case <-time.After(5 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("distrib: worker %d had to be killed at close", p.cmd.Process.Pid)
	}
}

// PipeWorker runs a worker in-process over synchronous pipes — the test and
// single-binary transport. The worker goroutine exits on shutdown or Close.
func PipeWorker(cfg WorkerConfig) Transport {
	toWorker, fromCoord := io.Pipe()
	toCoord, fromWorker := io.Pipe()
	go func() {
		err := RunWorker(toWorker, fromWorker, cfg)
		// Propagate worker failure as EOF on the coordinator's reader.
		_ = fromWorker.CloseWithError(err)
		_ = toWorker.CloseWithError(err)
	}()
	return newIOTransport(fromCoord, toCoord, func() error {
		_ = fromCoord.Close()
		return toCoord.Close()
	})
}

// Solo serves one job start-to-finish in this process on a fresh worker —
// the reference a distributed (and possibly crash-recovered) run must match
// decision-for-decision.
func Solo(job Job, cfg WorkerConfig) (*Response, error) {
	newSystem := cfg.NewSystem
	if newSystem == nil {
		newSystem = zoo.Default
	}
	sys := newSystem(cfg.Seed)
	wk := &worker{cfg: cfg, sys: sys, dml: loader.New(sys, cfg.Eviction), streams: map[string]*workerStream{}}
	defer wk.closeAll()
	resp := wk.serve(&Request{
		ID: 1, Cmd: CmdServe,
		Stream: job.Stream, Scenario: job.Scenario, RenderSeed: job.RenderSeed,
		Frames: job.Frames, PeriodSec: job.PeriodSec, Policy: job.Policy,
	})
	if !resp.OK {
		return nil, fmt.Errorf("distrib: solo %s: %s", job.Stream, resp.Err)
	}
	if !resp.Done {
		return nil, fmt.Errorf("distrib: solo %s stopped at %d/%d frames", job.Stream, resp.Served, job.Frames)
	}
	if n := wk.dml.TotalRefs(); n != 0 {
		return nil, fmt.Errorf("distrib: solo %s leaked %d refs", job.Stream, n)
	}
	return resp, nil
}
