// Package distrib splits fleet serving across OS processes: a coordinator
// owns stream placement and the durable checkpoint journal, and per-device
// workers own live session state, speaking a line-delimited JSON protocol
// over stdio pipes.
//
// The protocol is built so that worker death is survivable and cheap to
// handle: every serve request carries the stream's last journaled checkpoint
// (the versioned internal/checkpoint wire format, frames carried by
// reference as scenario name + render seed), every response returns the
// next one, and requests are idempotent — each carries a per-worker sequence
// ID, and a worker that already processed an ID replays its cached response
// instead of advancing the stream twice. The coordinator drives each stream
// in bounded chunks with a per-request deadline and bounded exponential-
// backoff retry; when a worker stops answering (or its process exits), the
// coordinator declares it dead and re-dispatches its orphaned streams to
// surviving workers from the journal. A kill -9 therefore costs at most one
// chunk of replayed frames per stream, and — because detection draws are
// keyed by the shared content seed, not the serving process — the decision
// sequence of a recovered stream is bit-identical to an uninterrupted run
// (the churn conformance contract, extended across process boundaries).
package distrib

// Protocol commands.
const (
	// CmdHello opens a connection: the worker answers with its device name.
	CmdHello = "hello"
	// CmdServe advances one stream by up to Chunk frames, opening or
	// restoring its session first if the worker does not hold it live.
	CmdServe = "serve"
	// CmdPing checks liveness.
	CmdPing = "ping"
	// CmdShutdown closes every live session; the response reports residency
	// references still held (must be zero) before the worker exits.
	CmdShutdown = "shutdown"
)

// Request is one coordinator→worker command, a single JSON line.
type Request struct {
	// ID is the per-worker request sequence number. Retries re-send the same
	// ID; a worker that already processed it replays the cached response, so
	// a lost response cannot double-advance a stream.
	ID  uint64 `json:"id"`
	Cmd string `json:"cmd"`

	// Stream identifies the stream a serve request advances — the idempotent
	// re-dispatch key shared by every worker that ever serves it.
	Stream string `json:"stream,omitempty"`
	// Scenario + RenderSeed + Frames carry the stream's frames by reference:
	// the worker re-renders the scenario and serves the Frames-length prefix.
	Scenario   string  `json:"scenario,omitempty"`
	RenderSeed uint64  `json:"render_seed,omitempty"`
	Frames     int     `json:"frames,omitempty"`
	PeriodSec  float64 `json:"period_sec,omitempty"`
	// Policy names the stream's decision logic in the worker's registry
	// (builtin: "fixed:<model>/<proc>").
	Policy string `json:"policy,omitempty"`
	// Chunk bounds the frames served by this request (<= 0: run to the end).
	Chunk int `json:"chunk,omitempty"`
	// Checkpoint is the stream's last journaled wire-format checkpoint; a
	// worker without the session live restores from it (absent: open fresh).
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// Response is one worker→coordinator reply, a single JSON line.
type Response struct {
	// ID echoes the request's sequence number.
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	// Err carries the failure when OK is false (a protocol or serving error —
	// not retryable, unlike a transport timeout).
	Err string `json:"err,omitempty"`
	// Device is the worker's name (hello/ping).
	Device string `json:"device,omitempty"`

	// Serve results: Served is total frames recorded so far, Done marks
	// stream completion, Digest is the FNV-1a decision digest over the full
	// record sequence (set when done), and Checkpoint is the post-chunk
	// wire-format checkpoint for the coordinator's journal.
	Served     int    `json:"served,omitempty"`
	Done       bool   `json:"done,omitempty"`
	Digest     uint64 `json:"digest,omitempty"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// LeakedRefs reports residency references still held after shutdown
	// closed every live session — always zero unless release bookkeeping
	// broke.
	LeakedRefs int `json:"leaked_refs,omitempty"`
}
