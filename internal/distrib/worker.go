package distrib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/loader"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// maxLine bounds one protocol line (a checkpoint for a long stream is the
// largest payload; base64-in-JSON roughly ×1.4 over the wire bytes).
const maxLine = 16 << 20

// PolicyBuilder constructs one stream's decision logic on the worker's
// device.
type PolicyBuilder func(sys *zoo.System) (runtime.Policy, error)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name is the worker's device name, reported in hello responses.
	Name string
	// Seed drives the device's detection jitter. Workers serving the same
	// workload share it: detections model stream content, so a migrated
	// stream must draw the same detections on its new worker — that is what
	// makes recovery decision-preserving across processes.
	Seed uint64
	// NewSystem builds the device platform + zoo (default zoo.Default).
	NewSystem func(seed uint64) *zoo.System
	// Eviction is the loader eviction policy (default LRR).
	Eviction loader.EvictionPolicy
	// Policies maps policy names to builders; the "fixed:<model>/<proc>"
	// family is built in.
	Policies map[string]PolicyBuilder
}

// workerStream is one stream the worker serves (or served) — live session
// plus the idempotency cache.
type workerStream struct {
	sess *runtime.Session
	// lastID/lastResp replay the previous response when a retried request
	// re-arrives, so a lost response never double-advances the stream.
	lastID   uint64
	lastResp *Response
}

// worker is the per-process serving state behind RunWorker.
type worker struct {
	cfg     WorkerConfig
	sys     *zoo.System
	dml     *loader.Loader
	streams map[string]*workerStream
}

// RunWorker speaks the worker side of the protocol over r/w (stdin/stdout of
// a worker process, or in-process pipes) until shutdown or EOF. Every live
// session is closed on exit; the error reports protocol-level failures only —
// per-request serving errors travel back in Response.Err.
func RunWorker(r io.Reader, w io.Writer, cfg WorkerConfig) error {
	newSystem := cfg.NewSystem
	if newSystem == nil {
		newSystem = zoo.Default
	}
	sys := newSystem(cfg.Seed)
	wk := &worker{
		cfg:     cfg,
		sys:     sys,
		dml:     loader.New(sys, cfg.Eviction),
		streams: map[string]*workerStream{},
	}
	defer wk.closeAll()

	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			return fmt.Errorf("distrib: worker %s: bad request line: %w", cfg.Name, err)
		}
		resp := wk.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("distrib: worker %s: write response: %w", cfg.Name, err)
		}
		if err := out.Flush(); err != nil {
			return fmt.Errorf("distrib: worker %s: flush response: %w", cfg.Name, err)
		}
		if req.Cmd == CmdShutdown {
			return nil
		}
	}
	return sc.Err()
}

// closeAll releases every live session's residency holds.
func (wk *worker) closeAll() {
	names := make([]string, 0, len(wk.streams))
	for name := range wk.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if st := wk.streams[name]; st.sess != nil {
			_ = st.sess.Close()
			st.sess = nil
		}
	}
}

// handle dispatches one request.
func (wk *worker) handle(req *Request) *Response {
	switch req.Cmd {
	case CmdHello, CmdPing:
		return &Response{ID: req.ID, OK: true, Device: wk.cfg.Name}
	case CmdServe:
		return wk.serve(req)
	case CmdShutdown:
		wk.closeAll()
		return &Response{ID: req.ID, OK: true, Device: wk.cfg.Name, LeakedRefs: wk.dml.TotalRefs()}
	default:
		return fail(req, fmt.Errorf("unknown command %q", req.Cmd))
	}
}

// fail wraps an error into a response.
func fail(req *Request, err error) *Response {
	return &Response{ID: req.ID, OK: false, Err: err.Error()}
}

// serve advances one stream by up to Chunk frames, opening or restoring the
// session first when the worker does not hold it live.
func (wk *worker) serve(req *Request) *Response {
	st := wk.streams[req.Stream]
	if st != nil && st.lastResp != nil && st.lastID == req.ID {
		// Retried request: the previous response was lost in transit, not
		// unprocessed. Replay it rather than advancing again.
		return st.lastResp
	}
	if st == nil {
		st = &workerStream{}
		wk.streams[req.Stream] = st
	}
	resp := wk.advance(st, req)
	st.lastID, st.lastResp = req.ID, resp
	return resp
}

// advance is the serve body: session build + chunk run + checkpoint.
func (wk *worker) advance(st *workerStream, req *Request) *Response {
	if st.sess == nil {
		sess, err := wk.open(req)
		if err != nil {
			return fail(req, err)
		}
		st.sess = sess
	}
	sess := st.sess
	for n := 0; !sess.Done() && (req.Chunk <= 0 || n < req.Chunk); n++ {
		if err := sess.Step(); err != nil {
			return fail(req, fmt.Errorf("step %s: %w", req.Stream, err))
		}
	}
	resp := &Response{ID: req.ID, OK: true, Served: len(sess.Result().Result.Records)}
	snap := sess.Snapshot()
	data, err := checkpoint.EncodeSnapshot(snap, req.Scenario, req.RenderSeed, nil)
	if err != nil {
		return fail(req, fmt.Errorf("checkpoint %s: %w", req.Stream, err))
	}
	resp.Checkpoint = data
	if sess.Done() {
		resp.Done = true
		resp.Digest = DecisionDigest(sess.Result().Result.Records)
		if err := sess.Close(); err != nil {
			return fail(req, fmt.Errorf("close %s: %w", req.Stream, err))
		}
		st.sess = nil
	}
	return resp
}

// open builds the stream's session: fresh, or restored from the journaled
// checkpoint the request carries.
func (wk *worker) open(req *Request) (*runtime.Session, error) {
	sc, err := scene.ByName(req.Scenario)
	if err != nil {
		return nil, err
	}
	frames := sc.Render(req.RenderSeed)
	if req.Frames <= 0 || req.Frames > len(frames) {
		return nil, fmt.Errorf("stream %s wants %d frames of %d-frame %s", req.Stream, req.Frames, len(frames), req.Scenario)
	}
	frames = frames[:req.Frames]
	pol, err := wk.policy(req.Policy)
	if err != nil {
		return nil, err
	}
	if len(req.Checkpoint) == 0 {
		return runtime.OpenSession(wk.sys, wk.dml, runtime.StreamSpec{
			Name: req.Stream, Frames: frames, PeriodSec: req.PeriodSec, Policy: pol,
		})
	}
	c, err := checkpoint.Decode(req.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("journal for %s: %w", req.Stream, err)
	}
	snap, err := c.Snapshot(frames)
	if err != nil {
		return nil, fmt.Errorf("rebuild %s: %w", req.Stream, err)
	}
	var at time.Duration
	if k := snap.Served(); k > 0 {
		at = snap.Partial().Timings[k-1].Done
	}
	return runtime.RestoreSession(wk.sys, wk.dml, snap, pol, at)
}

// policy resolves a policy name through the registry, with the
// "fixed:<model>/<proc>" family built in.
func (wk *worker) policy(name string) (runtime.Policy, error) {
	if b, ok := wk.cfg.Policies[name]; ok {
		return b(wk.sys)
	}
	if spec, ok := strings.CutPrefix(name, "fixed:"); ok {
		model, proc, ok := strings.Cut(spec, "/")
		if !ok || model == "" || proc == "" {
			return nil, fmt.Errorf("bad fixed policy %q, want fixed:<model>/<proc>", name)
		}
		return &fixedPolicy{model: model, proc: proc}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// fixedPolicy serves every frame from one (model, proc) pair — the builtin
// zero-state policy (migrates by Reset, decisions identical on any worker
// with the shared seed).
type fixedPolicy struct {
	model, proc string
	pair        zoo.Pair
	found       bool
}

func (p *fixedPolicy) Name() string { return "fixed " + p.model + "@" + p.proc }

func (p *fixedPolicy) Reset(e *runtime.Engine) error {
	for _, rp := range e.System().RuntimePairs() {
		if rp.Model == p.model && rp.ProcID == p.proc {
			p.pair, p.found = rp, true
			return nil
		}
	}
	return fmt.Errorf("distrib: no runtime pair %s@%s", p.model, p.proc)
}

func (p *fixedPolicy) Step(st *runtime.Step) error {
	if !p.found {
		return fmt.Errorf("distrib: fixed policy not bound to a pair")
	}
	pair, err := st.Acquire(p.pair)
	if err != nil {
		return err
	}
	st.Rec().Pair = pair
	if err := st.Exec(pair); err != nil {
		return err
	}
	det, err := st.Detect(pair.Model)
	if err != nil {
		return err
	}
	st.RecordDetection(det)
	return nil
}

// DecisionDigest is the FNV-1a digest over the content- and decision-derived
// record fields — the projection the churn conformance suite pins. Charged
// costs (latency, energy, load flags) are excluded: a recovered stream pays
// re-acquisition loads its uninterrupted twin does not, but must decide
// identically.
func DecisionDigest(recs []runtime.FrameRecord) uint64 {
	h := fnv.New64a()
	for _, r := range recs {
		fmt.Fprintf(h, "%d|%s|%t|%v|%v|%v|%t|%t|%v|%v\n",
			r.Index, r.Pair, r.Found, r.Conf, r.IoU, r.Box, r.Swapped, r.Rescheduled, r.Similarity, r.Gate)
	}
	return h.Sum64()
}
