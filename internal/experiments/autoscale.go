package experiments

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/textplot"
	"repro/internal/zoo"
)

// AutoscaleSweepConfig parameterizes the elasticity experiment: workload
// shape × placement policy, each served twice — by a fixed reference fleet
// and by an elastic fleet that starts smaller and scales on the SLO.
type AutoscaleSweepConfig struct {
	// Shapes lists the arrival shapes swept: "burst" (a traffic spike) and
	// "diurnal" (a sinusoidal day/night swing). Default both.
	Shapes []string
	// Placements lists the dispatch policies compared per shape (default
	// round-robin and residency-affinity).
	Placements []string
	// FixedDevices sizes the fixed reference fleet (default 4 — the
	// FleetSweep flagship). BaseDevices is the elastic fleet's always-on
	// core (default 2); its warm pool tops out above the fixed size so
	// scale-out has headroom to win.
	FixedDevices int
	BaseDevices  int
	// Scales cycles per-device accel time scales (default {1, 1.25}).
	Scales []float64
	// Workload is the base trace (stream count, camera period, lengths);
	// its RatePerSec is the *base* rate the shapes modulate.
	Workload fleet.WorkloadConfig
	// BurstFactor multiplies the base rate inside [BurstStart,
	// BurstStart+BurstLen) (defaults 12, 40s, 25s).
	BurstFactor          float64
	BurstStart, BurstLen time.Duration
	// DiurnalAmp and DiurnalPeriod shape the sinusoid: base×(1 +
	// amp·sin(2πt/period)) (defaults 0.85, 100s).
	DiurnalAmp    float64
	DiurnalPeriod time.Duration
	// Admission gates per-device concurrency; nil means 3 streams/device
	// with an unbounded queue, so fixed and elastic fleets serve the same
	// stream population and differ in latency only.
	Admission *fleet.Admission
	// PoolMB sizes each device's SoC engine arena in MB (default 1300, the
	// memory-tight fleet tier).
	PoolMB int64
	// Autoscale is the elastic controller shape. A zero value means the
	// sweep default: fleet.DefaultAutoscaleConfig tightened to a 2 s
	// control loop with ScaleOutStep 2 and an 8-device "auto" warm pool at
	// scale 1 (Templates set alone keep that controller with the given
	// pool); a partially set config keeps every given field, with
	// fleet.New filling the documented per-field defaults.
	Autoscale fleet.AutoscaleConfig
}

// DefaultAutoscaleSweepConfig returns the standard grid: a 12× burst and an
// 0.85-amplitude diurnal swing over a 20-stream trace, served by the fixed
// 4-device FleetSweep reference and by a 2-device elastic core with an
// 8-device warm pool behind a 2 s control loop.
func DefaultAutoscaleSweepConfig() AutoscaleSweepConfig {
	adm := fleet.Admission{PerDeviceStreams: 3, QueueLimit: -1}
	wl := fleet.DefaultWorkloadConfig()
	wl.Streams = 20
	wl.RatePerSec = 0.08
	auto := fleet.DefaultAutoscaleConfig()
	auto.Interval = 2 * time.Second
	auto.ScaleOutStep = 2
	auto.Templates = []fleet.DeviceTemplate{{Prefix: "auto", Scale: 1, Count: 8}}
	return AutoscaleSweepConfig{
		Shapes:        []string{"burst", "diurnal"},
		Placements:    []string{"round-robin", "residency-affinity"},
		FixedDevices:  4,
		BaseDevices:   2,
		Scales:        []float64{1, 1.25},
		Workload:      wl,
		BurstFactor:   12,
		BurstStart:    40 * time.Second,
		BurstLen:      25 * time.Second,
		DiurnalAmp:    0.85,
		DiurnalPeriod: 100 * time.Second,
		Admission:     &adm,
		PoolMB:        1300,
		Autoscale:     auto,
	}
}

// AutoscaleSweepRow is one (shape, placement, mode) cell of the grid. Mode
// is "fixed" (the reference fleet) or "elastic" (autoscaled).
type AutoscaleSweepRow struct {
	Shape     string
	Placement string
	Mode      string
	Devices   int // configured devices: fixed size, or the elastic base
	fleet.Summary
	// HorizonSec is the cell's makespan; PerDevice carries the cell's
	// device stats (provision/retire times).
	HorizonSec float64
	PerDevice  []fleet.DeviceStats
}

// AutoscaleSweepResult is the full grid.
type AutoscaleSweepResult struct {
	Workload fleet.WorkloadConfig
	Rows     []AutoscaleSweepRow
}

// Row returns the cell for a shape, placement and mode.
func (r *AutoscaleSweepResult) Row(shape, placement, mode string) (AutoscaleSweepRow, bool) {
	for _, row := range r.Rows {
		if row.Shape == shape && row.Placement == placement && row.Mode == mode {
			return row, true
		}
	}
	return AutoscaleSweepRow{}, false
}

// AutoscaleSweep sweeps workload shape × placement under two capacity
// regimes: the fixed reference fleet, and an elastic fleet whose SLO-driven
// autoscaler provisions warm-pool devices when queue depth or rolling
// per-device p99 breach the target and drains idle ones back — migrating
// their live sessions through the checkpoint/restore path. Every cell
// serves an identical shaped trace (non-homogeneous Poisson arrivals via
// fleet.GenerateShapedWorkload) and is checked leak-free; the whole grid is
// deterministic per seed.
func AutoscaleSweep(env *Env, cfg AutoscaleSweepConfig) (*AutoscaleSweepResult, error) {
	def := DefaultAutoscaleSweepConfig()
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = def.Shapes
	}
	if len(cfg.Placements) == 0 {
		cfg.Placements = def.Placements
	}
	if cfg.FixedDevices == 0 {
		cfg.FixedDevices = def.FixedDevices
	}
	if cfg.BaseDevices == 0 {
		cfg.BaseDevices = def.BaseDevices
	}
	if cfg.FixedDevices < 0 || cfg.BaseDevices < 0 {
		return nil, fmt.Errorf("experiments: negative autoscale fleet size")
	}
	if len(cfg.Scales) == 0 {
		cfg.Scales = def.Scales
	}
	if cfg.Workload.Streams == 0 {
		cfg.Workload = def.Workload
	}
	if cfg.Workload.RatePerSec <= 0 {
		return nil, fmt.Errorf("experiments: autoscale sweep needs a positive base rate, got %v",
			cfg.Workload.RatePerSec)
	}
	if cfg.BurstFactor == 0 {
		cfg.BurstFactor = def.BurstFactor
	}
	if cfg.BurstFactor < 1 {
		return nil, fmt.Errorf("experiments: burst factor %v below 1", cfg.BurstFactor)
	}
	if cfg.BurstStart == 0 {
		cfg.BurstStart = def.BurstStart
	}
	if cfg.BurstLen == 0 {
		cfg.BurstLen = def.BurstLen
	}
	if cfg.DiurnalAmp == 0 {
		cfg.DiurnalAmp = def.DiurnalAmp
	}
	if cfg.DiurnalAmp < 0 || cfg.DiurnalAmp >= 1 {
		return nil, fmt.Errorf("experiments: diurnal amplitude %v outside [0, 1)", cfg.DiurnalAmp)
	}
	if cfg.DiurnalPeriod == 0 {
		cfg.DiurnalPeriod = def.DiurnalPeriod
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	if cfg.PoolMB == 0 {
		cfg.PoolMB = def.PoolMB
	}
	if zeroAutoscale(cfg.Autoscale) {
		tpls := cfg.Autoscale.Templates
		cfg.Autoscale = def.Autoscale
		if tpls != nil {
			cfg.Autoscale.Templates = tpls
		}
	}

	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, cfg.PoolMB*accel.MB)
		return sys
	}
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	}
	rateFor := func(shape string) (fleet.RateFn, float64, error) {
		base := cfg.Workload.RatePerSec
		switch shape {
		case "burst":
			return fleet.BurstRate(base, cfg.BurstFactor, cfg.BurstStart, cfg.BurstLen),
				base * cfg.BurstFactor, nil
		case "diurnal":
			return fleet.DiurnalRate(base, cfg.DiurnalAmp, cfg.DiurnalPeriod),
				base * (1 + cfg.DiurnalAmp), nil
		}
		return nil, 0, fmt.Errorf("experiments: unknown workload shape %q", shape)
	}
	mkDevices := func(k int) []fleet.DeviceConfig {
		devices := make([]fleet.DeviceConfig, k)
		for i := range devices {
			devices[i] = fleet.DeviceConfig{
				Name:  fmt.Sprintf("edge%02d", i),
				Scale: cfg.Scales[i%len(cfg.Scales)],
			}
		}
		return devices
	}

	res := &AutoscaleSweepResult{Workload: cfg.Workload}
	for _, shape := range cfg.Shapes {
		rate, peak, err := rateFor(shape)
		if err != nil {
			return nil, err
		}
		for _, pname := range cfg.Placements {
			for _, mode := range []string{"fixed", "elastic"} {
				place, err := fleet.PlacementByName(pname)
				if err != nil {
					return nil, err
				}
				fcfg := fleet.Config{
					Seed:      env.Seed,
					Placement: place,
					Admission: *cfg.Admission,
					NewSystem: newSystem,
				}
				if mode == "fixed" {
					fcfg.Devices = mkDevices(cfg.FixedDevices)
				} else {
					fcfg.Devices = mkDevices(cfg.BaseDevices)
					auto := cfg.Autoscale
					fcfg.Autoscale = &auto
				}
				fl, err := fleet.New(fcfg)
				if err != nil {
					return nil, err
				}
				// The shaped trace is re-generated per cell so every fleet
				// sees identical requests with fresh policy state.
				reqs, err := fleet.GenerateShapedWorkload(cfg.Workload, rate, peak, env.Frames, policy)
				if err != nil {
					return nil, err
				}
				run, err := fl.Run(reqs)
				if err != nil {
					return nil, fmt.Errorf("experiments: autoscale %s×%s×%s: %w", shape, pname, mode, err)
				}
				sum := fleet.Summarize(run)
				if sum.LeakedRefs != 0 {
					return nil, fmt.Errorf("experiments: autoscale %s×%s×%s leaked %d residency refs",
						shape, pname, mode, sum.LeakedRefs)
				}
				res.Rows = append(res.Rows, AutoscaleSweepRow{
					Shape:      shape,
					Placement:  pname,
					Mode:       mode,
					Devices:    len(fcfg.Devices),
					Summary:    sum,
					HorizonSec: run.Horizon.Seconds(),
					PerDevice:  run.Devices,
				})
			}
		}
	}
	return res, nil
}

// zeroAutoscale reports whether every controller knob is unset (Templates
// excepted — a templates-only config still means "sweep-default controller,
// custom pool"). A single set knob keeps the whole user config, so partial
// tunings are never silently replaced by the sweep defaults.
func zeroAutoscale(c fleet.AutoscaleConfig) bool {
	return c.Interval == 0 && c.Window == 0 && c.TargetP99Sec == 0 &&
		c.QueueHighWater == 0 && c.ScaleOutStep == 0 && c.ScaleInStreams == 0 &&
		c.ScaleInFactor == 0 && c.IdleTicks == 0 && c.Cooldown == 0 && c.MinDevices == 0
}

// Report renders the grid as a table plus the device timeline of the first
// elastic burst cell — when each warm-pool device came and went.
func (r *AutoscaleSweepResult) Report() string {
	rows := [][]string{{"Shape", "Placement", "Mode", "Served", "Lat p50 (s)",
		"Lat p99 (s)", "Miss", "Queue (s)", "Out", "In", "Drain", "Peak dev"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Shape,
			row.Placement,
			row.Mode,
			fmt.Sprintf("%d/%d", row.Served, row.Offered),
			fmt.Sprintf("%.3f", row.Latency.P50),
			fmt.Sprintf("%.3f", row.Latency.P99),
			fmt.Sprintf("%.1f%%", row.DeadlineMissRate*100),
			fmt.Sprintf("%.2f", row.AvgQueueDelaySec),
			fmt.Sprintf("%d", row.ScaleOuts),
			fmt.Sprintf("%d", row.ScaleIns),
			fmt.Sprintf("%d", row.Drained),
			fmt.Sprintf("%d", row.PeakDevices),
		})
	}
	out := textplot.Table(fmt.Sprintf(
		"Elastic autoscaling: %d streams, base rate %.2f/s, SLO-driven warm pool",
		r.Workload.Streams, r.Workload.RatePerSec), rows)
	// Timeline plot: the first elastic cell with scale activity. Devices
	// never retired run to the cell's horizon.
	for _, row := range r.Rows {
		if row.Mode != "elastic" || row.ScaleOuts == 0 {
			continue
		}
		var labels []string
		var spans []float64
		for _, d := range row.PerDevice {
			if !d.Auto {
				continue
			}
			end := d.RetiredSec
			if !d.Retired {
				end = row.HorizonSec
			}
			labels = append(labels, fmt.Sprintf("%s %4.0fs→%4.0fs", d.Name, d.ProvisionedSec, end))
			spans = append(spans, (end-d.ProvisionedSec)/row.HorizonSec)
		}
		if len(spans) == 0 {
			continue
		}
		out += "\n" + textplot.PercentBars(
			fmt.Sprintf("Warm-pool device lifetimes, %s×%s (fraction of the %.0fs horizon)",
				row.Shape, row.Placement, row.HorizonSec),
			labels, spans, 40)
		break
	}
	return out
}
