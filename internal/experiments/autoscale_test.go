package experiments

import (
	"testing"
)

// quickAutoscaleConfig restricts the grid to the flagship placement so unit
// tests stay fast; shapes, rates and the controller keep their defaults —
// the same cells the BENCH auto_* headline pins.
func quickAutoscaleConfig() AutoscaleSweepConfig {
	cfg := DefaultAutoscaleSweepConfig()
	cfg.Placements = []string{"residency-affinity"}
	return cfg
}

// TestAutoscaleSweepElasticBeatsFixedBurst pins the acceptance criteria:
// under the burst shape, the elastic fleet's scale-out cuts p99 frame
// latency against the fixed 4-device reference (and eliminates the
// admission-queue wait); under the diurnal shape, at least one drain-based
// scale-in migrates a live session; and no cell leaks a residency reference.
func TestAutoscaleSweepElasticBeatsFixedBurst(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := AutoscaleSweep(env, quickAutoscaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	fixed, ok := res.Row("burst", "residency-affinity", "fixed")
	if !ok {
		t.Fatal("missing fixed burst row")
	}
	elastic, ok := res.Row("burst", "residency-affinity", "elastic")
	if !ok {
		t.Fatal("missing elastic burst row")
	}
	if fixed.ScaleOuts != 0 || fixed.ScaleIns != 0 || fixed.PeakDevices != 4 {
		t.Fatalf("fixed row reports elastic activity: %+v", fixed.Summary)
	}
	if elastic.ScaleOuts == 0 {
		t.Fatal("elastic burst cell never scaled out")
	}
	if elastic.PeakDevices <= fixed.PeakDevices {
		t.Fatalf("elastic peak %d devices never exceeded the fixed %d",
			elastic.PeakDevices, fixed.PeakDevices)
	}
	if elastic.Latency.P99 >= fixed.Latency.P99 {
		t.Fatalf("scale-out did not cut burst p99: elastic %.3fs vs fixed %.3fs",
			elastic.Latency.P99, fixed.Latency.P99)
	}
	if elastic.AvgQueueDelaySec >= fixed.AvgQueueDelaySec {
		t.Fatalf("scale-out did not cut the admission queue: elastic %.2fs vs fixed %.2fs",
			elastic.AvgQueueDelaySec, fixed.AvgQueueDelaySec)
	}

	diurnal, ok := res.Row("diurnal", "residency-affinity", "elastic")
	if !ok {
		t.Fatal("missing elastic diurnal row")
	}
	if diurnal.ScaleIns < 1 {
		t.Fatal("diurnal elastic cell never scaled in")
	}
	if diurnal.Drained < 1 || diurnal.Migrations < 1 {
		t.Fatalf("no drain-based scale-in migrated a live session: drained %d, migrations %d",
			diurnal.Drained, diurnal.Migrations)
	}
	for _, row := range res.Rows {
		if row.LeakedRefs != 0 {
			t.Fatalf("%s×%s×%s leaked %d residency refs", row.Shape, row.Placement, row.Mode, row.LeakedRefs)
		}
		if got := row.Served + row.Aborted + row.Rejected; got != row.Offered {
			t.Fatalf("%s×%s×%s stream accounting: %d != offered %d",
				row.Shape, row.Placement, row.Mode, got, row.Offered)
		}
	}
	if report := res.Report(); len(report) == 0 {
		t.Fatal("empty report")
	}
}

// TestAutoscaleSweepDeterministic: the elastic grid replays bit-identically
// — the controller adds no nondeterminism.
func TestAutoscaleSweepDeterministic(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickAutoscaleConfig()
	cfg.Shapes = []string{"burst"}
	a, err := AutoscaleSweep(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AutoscaleSweep(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].Summary != b.Rows[i].Summary || a.Rows[i].HorizonSec != b.Rows[i].HorizonSec {
			t.Fatalf("row %d differs across identical runs:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestAutoscaleSweepValidation covers the grid's argument contracts.
func TestAutoscaleSweepValidation(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*AutoscaleSweepConfig){
		func(c *AutoscaleSweepConfig) { c.Shapes = []string{"square-wave"} },
		func(c *AutoscaleSweepConfig) { c.Placements = []string{"nope"} },
		func(c *AutoscaleSweepConfig) { c.DiurnalAmp = 1.5 },
		func(c *AutoscaleSweepConfig) { c.BurstFactor = 0.5 },
		func(c *AutoscaleSweepConfig) { c.FixedDevices = -1 },
		func(c *AutoscaleSweepConfig) { c.Workload.RatePerSec = -1 },
	}
	for i, mut := range bad {
		cfg := quickAutoscaleConfig()
		cfg.Shapes = []string{"burst"}
		mut(&cfg)
		if _, err := AutoscaleSweep(env, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
