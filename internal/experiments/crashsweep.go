package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/textplot"
	"repro/internal/zoo"
)

// CrashSweepConfig parameterizes the crash-recovery experiment: worker-crash
// rate × placement policy under one seeded workload, served with the
// durability journal on, so every crash is recovered from checkpoint wire
// bytes rather than live memory.
type CrashSweepConfig struct {
	// RatesPerMin lists the mean fleet-wide crash rates swept (crashes per
	// minute; 0 is the crash-free reference row). Default 0, 6, 12.
	RatesPerMin []float64
	// Placements lists the dispatch policies compared at each rate (default
	// round-robin and residency-affinity).
	Placements []string
	// Devices is the fleet size (default 4); Scales cycles per-device accel
	// time scales (default {1, 1.25}).
	Devices int
	Scales  []float64
	// Workload is the offered stream trace, identical across all grid cells
	// (default fleet.DefaultWorkloadConfig).
	Workload fleet.WorkloadConfig
	// BestEffortEvery marks every Nth stream best-effort — sheddable when a
	// crash displaces more streams than the survivors can absorb, so premium
	// streams always recover first. Default 4; negative disables.
	BestEffortEvery int
	// Admission gates per-device concurrency; nil means
	// fleet.DefaultAdmission.
	Admission *fleet.Admission
	// PoolMB sizes each device's SoC engine arena in MB (default 1300).
	PoolMB int64
	// Durability shapes the checkpoint journal (default: journal every 10
	// observed steps).
	Durability fleet.DurabilityConfig
	// MeanRestartSec is the mean crashed-process restart time (default 5).
	MeanRestartSec float64
}

// DefaultCrashSweepConfig returns the standard grid.
func DefaultCrashSweepConfig() CrashSweepConfig {
	adm := fleet.DefaultAdmission()
	return CrashSweepConfig{
		RatesPerMin:     []float64{0, 6, 12},
		Placements:      []string{"round-robin", "residency-affinity"},
		Devices:         4,
		Scales:          []float64{1, 1.25},
		Workload:        fleet.DefaultWorkloadConfig(),
		BestEffortEvery: 4,
		Admission:       &adm,
		PoolMB:          1300,
		MeanRestartSec:  5,
	}
}

// CrashSweepRow is one (crash rate, placement) cell of the grid.
type CrashSweepRow struct {
	RatePerMin float64
	Placement  string
	Faults     int
	fleet.Summary
	// PerDevice carries the cell's device stats (crashes, displacements).
	PerDevice []fleet.DeviceStats
}

// CrashSweepResult is the full grid.
type CrashSweepResult struct {
	Workload fleet.WorkloadConfig
	Devices  int
	Rows     []CrashSweepRow
}

// Row returns the cell for a crash rate and placement.
func (r *CrashSweepResult) Row(ratePerMin float64, placement string) (CrashSweepRow, bool) {
	for _, row := range r.Rows {
		if row.RatePerMin == ratePerMin && row.Placement == placement {
			return row, true
		}
	}
	return CrashSweepRow{}, false
}

// CrashSweep sweeps worker-crash rate × placement policy under one seeded
// workload on a journaled fleet: every fault is a process kill (the device's
// live session state is destroyed, not drained), recovery rebuilds each
// stream from its last journaled checkpoint — the versioned wire format — and
// replays the frames lost past it. Every cell enforces the recovery contract:
// premium streams are never shed (only best-effort streams may be, and only
// when a crash destroys more capacity than the survivors hold), and no
// residency reference leaks. The rate-0 row is the crash-free reference.
func CrashSweep(env *Env, cfg CrashSweepConfig) (*CrashSweepResult, error) {
	def := DefaultCrashSweepConfig()
	if cfg.RatesPerMin == nil {
		cfg.RatesPerMin = def.RatesPerMin
	}
	if len(cfg.Placements) == 0 {
		cfg.Placements = def.Placements
	}
	if cfg.Devices == 0 {
		cfg.Devices = def.Devices
	}
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("experiments: invalid device count %d", cfg.Devices)
	}
	if len(cfg.Scales) == 0 {
		cfg.Scales = def.Scales
	}
	if cfg.Workload.Streams == 0 {
		cfg.Workload = def.Workload
	}
	if cfg.BestEffortEvery == 0 {
		cfg.BestEffortEvery = def.BestEffortEvery
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	if cfg.PoolMB == 0 {
		cfg.PoolMB = def.PoolMB
	}
	if cfg.MeanRestartSec == 0 {
		cfg.MeanRestartSec = def.MeanRestartSec
	}
	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, cfg.PoolMB*accel.MB)
		return sys
	}
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	}
	devices := make([]fleet.DeviceConfig, cfg.Devices)
	names := make([]string, cfg.Devices)
	for i := range devices {
		devices[i] = fleet.DeviceConfig{
			Name:  fmt.Sprintf("edge%02d", i),
			Scale: cfg.Scales[i%len(cfg.Scales)],
		}
		names[i] = devices[i].Name
	}
	res := &CrashSweepResult{Workload: cfg.Workload, Devices: cfg.Devices}
	for _, rate := range cfg.RatesPerMin {
		if rate < 0 {
			return nil, fmt.Errorf("experiments: negative crash rate %v", rate)
		}
		var faults []fleet.Fault
		if rate > 0 {
			// A crash-only mix: every scheduled fault is a process kill.
			fcfg := fleet.FaultConfig{
				Seed:                env.Seed,
				RatePerSec:          rate / 60,
				Horizon:             FaultHorizonFor(cfg.Workload),
				PCrash:              1,
				MeanCrashRestartSec: cfg.MeanRestartSec,
			}
			var err error
			faults, err = fleet.GenerateFaults(fcfg, names)
			if err != nil {
				return nil, err
			}
		}
		for _, pname := range cfg.Placements {
			place, err := fleet.PlacementByName(pname)
			if err != nil {
				return nil, err
			}
			durable := cfg.Durability
			fl, err := fleet.New(fleet.Config{
				Seed:       env.Seed,
				Devices:    devices,
				Placement:  place,
				Admission:  *cfg.Admission,
				NewSystem:  newSystem,
				Durability: &durable,
			})
			if err != nil {
				return nil, err
			}
			reqs, err := fleet.GenerateWorkload(cfg.Workload, env.Frames, policy)
			if err != nil {
				return nil, err
			}
			if cfg.BestEffortEvery > 0 {
				for i := range reqs {
					if (i+1)%cfg.BestEffortEvery == 0 {
						reqs[i].BestEffort = true
					}
				}
			}
			run, err := fl.RunWithFaults(reqs, faults)
			if err != nil {
				return nil, fmt.Errorf("experiments: crash sweep %v/min×%s: %w", rate, pname, err)
			}
			sum := fleet.Summarize(run)
			if sum.LeakedRefs != 0 {
				return nil, fmt.Errorf("experiments: crash sweep %v/min×%s leaked %d residency refs",
					rate, pname, sum.LeakedRefs)
			}
			// The recovery contract: only best-effort streams may be shed.
			for _, out := range run.Outcomes {
				if out.Shed && !out.BestEffort {
					return nil, fmt.Errorf("experiments: crash sweep %v/min×%s shed premium stream %s",
						rate, pname, out.Name)
				}
			}
			res.Rows = append(res.Rows, CrashSweepRow{
				RatePerMin: rate,
				Placement:  pname,
				Faults:     len(faults),
				Summary:    sum,
				PerDevice:  run.Devices,
			})
		}
	}
	return res, nil
}

// Report renders the grid as a table plus a replay gauge for the
// highest-rate residency-affinity cell.
func (r *CrashSweepResult) Report() string {
	rows := [][]string{{"Crashes/min", "Placement", "Served", "Shed", "Crashes",
		"Replayed", "Journal (KiB)", "Downtime (s)", "Lat p99 (s)", "Post-fault p99", "Miss"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.RatePerMin),
			row.Placement,
			fmt.Sprintf("%d/%d", row.Served, row.Offered),
			fmt.Sprintf("%d", row.Shed),
			fmt.Sprintf("%d", row.Crashes),
			fmt.Sprintf("%d", row.ReplayedFrames),
			fmt.Sprintf("%.1f", float64(row.JournalBytes)/1024),
			fmt.Sprintf("%.2f", row.AvgDowntimeSec),
			fmt.Sprintf("%.3f", row.Latency.P99),
			fmt.Sprintf("%.3f", row.PostFaultP99),
			fmt.Sprintf("%.1f%%", row.DeadlineMissRate*100),
		})
	}
	out := textplot.Table(fmt.Sprintf(
		"Crash recovery: %d streams on %d devices, journaled checkpoints, kill-and-recover",
		r.Workload.Streams, r.Devices), rows)
	var best *CrashSweepRow
	for i := range r.Rows {
		row := &r.Rows[i]
		better := best == nil ||
			row.RatePerMin > best.RatePerMin ||
			(row.RatePerMin == best.RatePerMin &&
				row.Placement == "residency-affinity" && best.Placement != "residency-affinity")
		if better {
			best = row
		}
	}
	if best != nil && best.RatePerMin > 0 {
		labels := make([]string, len(best.PerDevice))
		crashes := make([]float64, len(best.PerDevice))
		max := 1.0
		for _, d := range best.PerDevice {
			if float64(d.Crashes) > max {
				max = float64(d.Crashes)
			}
		}
		for i, d := range best.PerDevice {
			labels[i] = fmt.Sprintf("%s (%d moved)", d.Name, d.Displaced)
			crashes[i] = float64(d.Crashes) / max
		}
		out += "\n" + textplot.PercentBars(
			fmt.Sprintf("Relative crash count at %.0f crashes/min, %s", best.RatePerMin, best.Placement),
			labels, crashes, 40)
	}
	return out
}
