package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/scene"
)

// quickCrashSweepConfig keeps the grid small enough for unit tests: a short
// workload on two devices, one crash-free and one heavily crashed rate, with
// a fast journal cadence so most recovery replays little.
func quickCrashSweepConfig() CrashSweepConfig {
	adm := fleet.DefaultAdmission()
	wl := fleet.WorkloadConfig{
		Seed: 1, Streams: 6, RatePerSec: 0.5, PeriodSec: 0.1,
		MinFrames: 120, MaxFrames: 240,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	return CrashSweepConfig{
		RatesPerMin:     []float64{0, 20},
		Placements:      []string{"residency-affinity"},
		Devices:         2,
		Workload:        wl,
		BestEffortEvery: 3,
		Admission:       &adm,
		MeanRestartSec:  3,
	}
}

// TestCrashSweepRecoversAndStaysClean pins the acceptance criterion: with a
// positive crash rate every premium stream recovers (CrashSweep errors if one
// is shed), stream accounting closes (served + shed + aborted + rejected ==
// offered), no residency reference leaks, and the journal absorbed real
// checkpoint traffic — while the rate-0 row reports no crash activity.
func TestCrashSweepRecoversAndStaysClean(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrashSweep(env, quickCrashSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, ok := res.Row(0, "residency-affinity")
	if !ok {
		t.Fatal("missing crash-free row")
	}
	if clean.Crashes != 0 || clean.Shed != 0 || clean.ReplayedFrames != 0 || clean.Faults != 0 {
		t.Fatalf("crash-free row reports crash activity: %+v", clean.Summary)
	}
	if clean.JournalWrites == 0 || clean.JournalBytes == 0 {
		t.Fatal("crash-free row journaled nothing; durability should be on in every cell")
	}
	crashed, ok := res.Row(20, "residency-affinity")
	if !ok {
		t.Fatal("missing crashed row")
	}
	if crashed.Faults == 0 || crashed.Crashes == 0 {
		t.Fatalf("crashed row saw %d faults, %d crashes; raise the rate or horizon",
			crashed.Faults, crashed.Crashes)
	}
	if crashed.LeakedRefs != 0 {
		t.Fatalf("crashed row leaked %d residency refs", crashed.LeakedRefs)
	}
	if got := crashed.Served + crashed.Shed + crashed.Aborted + crashed.Rejected; got != crashed.Offered {
		t.Fatalf("stream accounting: served %d + shed %d + aborted %d + rejected %d != offered %d",
			crashed.Served, crashed.Shed, crashed.Aborted, crashed.Rejected, crashed.Offered)
	}
	if crashed.Frames == 0 {
		t.Fatal("crashed row served no frames")
	}
	if report := res.Report(); len(report) == 0 {
		t.Fatal("empty report")
	}
}

// TestCrashSweepCrashFreeMatchesFaultSweepReference: with the journal on but
// no crash scheduled, serving decisions must match the FaultSweep fault-free
// reference on the same workload — the journal observes, it never steers.
func TestCrashSweepCrashFreeMatchesFaultSweepReference(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	ccfg := quickCrashSweepConfig()
	ccfg.RatesPerMin = []float64{0}
	cres, err := CrashSweep(env, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := quickFaultSweepConfig()
	fcfg.RatesPerMin = []float64{0}
	fres, err := FaultSweep(env, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cres.Rows[0].Summary, fres.Rows[0].Summary
	// Strip the durability counters (journal on vs off) — everything the
	// serving path decides must be bit-identical.
	a.JournalWrites, a.JournalBytes = 0, 0
	if a != b {
		t.Fatalf("crash-free journaled run diverged from the fault-free reference:\n%+v\n%+v", a, b)
	}
}
