// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I, III, IV and Figures 1-5) on the simulated platform.
// Each experiment returns both structured results (consumed by tests and
// benchmarks) and a formatted text report (printed by the cmd/ tools and
// recorded in EXPERIMENTS.md).
package experiments

import (
	"sync"

	"repro/internal/confgraph"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// DefaultValidationFrames is the validation-set size used for offline
// characterization, standing in for the paper's 2,500-image validation
// split.
const DefaultValidationFrames = 800

// Env carries everything experiments share: the characterization, the
// confidence graph, and render caches. Rendering a 2,500-frame scenario
// costs seconds, so frames are cached per (scenario, seed); runs that
// need a pristine platform construct fresh zoo.Systems from the seed.
type Env struct {
	Seed  uint64
	Ch    *profile.Characterization
	Graph *confgraph.Graph

	mu     sync.Mutex
	frames map[string][]scene.Frame
}

// NewEnv characterizes the default system and builds the confidence graph.
func NewEnv(seed uint64, validationFrames int) (*Env, error) {
	sys := zoo.Default(seed)
	ch := profile.Characterize(sys, scene.ValidationSet(seed, validationFrames))
	graph, err := confgraph.Build(ch, confgraph.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Env{
		Seed:   seed,
		Ch:     ch,
		Graph:  graph,
		frames: map[string][]scene.Frame{},
	}, nil
}

// System returns a fresh simulated platform + zoo (clean clock, meters and
// memory) for one run.
func (e *Env) System() *zoo.System { return zoo.Default(e.Seed) }

// Frames renders (or returns the cached render of) a scenario.
func (e *Env) Frames(s *scene.Scenario) []scene.Frame {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.frames[s.Name]; ok {
		return f
	}
	f := s.Render(e.Seed)
	e.frames[s.Name] = f
	return f
}

// Suite returns the rendered six-scenario evaluation suite.
func (e *Env) Suite() map[string][]scene.Frame {
	out := make(map[string][]scene.Frame, 6)
	for _, s := range scene.EvaluationSuite() {
		out[s.Name] = e.Frames(s)
	}
	return out
}

// sharedEnv supports tests and benchmarks that want to amortize env
// construction across cases.
var (
	sharedMu  sync.Mutex
	sharedEnv *Env
)

// Shared returns a lazily constructed process-wide Env with the default
// seed. Experiments that mutate nothing besides fresh Systems may share it.
func Shared() (*Env, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedEnv != nil {
		return sharedEnv, nil
	}
	env, err := NewEnv(1, DefaultValidationFrames)
	if err != nil {
		return nil, err
	}
	sharedEnv = env
	return sharedEnv, nil
}
