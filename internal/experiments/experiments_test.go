package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/scene"
)

// testEnv returns the shared environment (characterization + graph).
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvCachesFrames(t *testing.T) {
	env := testEnv(t)
	a := env.Frames(scene.Scenario3())
	b := env.Frames(scene.Scenario3())
	if &a[0] != &b[0] {
		t.Fatal("frames not cached")
	}
}

func TestTableIShape(t *testing.T) {
	env := testEnv(t)
	res, err := TableI(env, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Table I has %d rows, want 3", len(res.Rows))
	}
	// Paper shape: CPU an order of magnitude slower than GPU for YoloV7.
	cpu, ok := res.Cell(detmodel.YoloV7, accel.KindCPU)
	if !ok {
		t.Fatal("YoloV7 CPU cell missing")
	}
	gpu, _ := res.Cell(detmodel.YoloV7, accel.KindGPU)
	if cpu.TimeSec < 8*gpu.TimeSec {
		t.Fatalf("CPU/GPU latency ratio %.1f, want > 8", cpu.TimeSec/gpu.TimeSec)
	}
	// DLA saves energy vs GPU at similar latency.
	dla, _ := res.Cell(detmodel.YoloV7, accel.KindDLA)
	if dla.EnergyJ >= gpu.EnergyJ {
		t.Fatal("DLA energy not below GPU")
	}
	// MobilenetV1 has no CPU measurement (Table I's dash).
	if _, ok := res.Cell(detmodel.SSDMobilenetV1, accel.KindCPU); ok {
		t.Fatal("MobilenetV1 should have no CPU cell")
	}
	report := res.Report()
	for _, want := range []string{"Table I", "YoloV7", "-"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestTableIVShape(t *testing.T) {
	env := testEnv(t)
	res, err := TableIV(env, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("Table IV has %d rows, want 8", len(res.Rows))
	}
	v7, ok := res.Row(detmodel.YoloV7)
	if !ok {
		t.Fatal("YoloV7 row missing")
	}
	// Headline orderings of the paper's Table IV.
	for _, row := range res.Rows {
		if row.Model != detmodel.YoloV7 && row.AvgIoU >= v7.AvgIoU {
			t.Errorf("%s AvgIoU %.3f >= YoloV7 %.3f", row.Model, row.AvgIoU, v7.AvgIoU)
		}
	}
	// OAK-D column exists only for the two YOLO models.
	oakCount := 0
	for _, row := range res.Rows {
		if row.Cells[accel.KindOAKD].Supported {
			oakCount++
		}
	}
	if oakCount != 2 {
		t.Fatalf("%d OAK-D cells, want 2", oakCount)
	}
	// YoloV7 energy shape per Table IV: DLA (0.656 J) < OAK-D (1.391 J) <
	// GPU (1.968 J).
	if !(v7.Cells[accel.KindDLA].EnergyJ < v7.Cells[accel.KindOAKD].EnergyJ &&
		v7.Cells[accel.KindOAKD].EnergyJ < v7.Cells[accel.KindGPU].EnergyJ) {
		t.Fatalf("YoloV7 energy ordering broken: %+v", v7.Cells)
	}
	if !strings.Contains(res.Report(), "Table IV") {
		t.Fatal("report missing title")
	}
}

func TestTableIIIShapes(t *testing.T) {
	// The load-bearing result of the paper. Run on two scenarios to keep
	// the test fast; the full suite runs in the benchmark harness.
	env := testEnv(t)
	res, err := TableIII(env, []*scene.Scenario{scene.Scenario2(), scene.Scenario3()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 6 {
		t.Fatalf("%d methods, want 6", len(res.Summaries))
	}
	shift, _ := res.Summary("SHIFT")
	marlin, _ := res.Summary("Marlin")
	oracleE, _ := res.Summary("Oracle E")
	oracleA, _ := res.Summary("Oracle A")
	oracleL, _ := res.Summary("Oracle L")

	// SHIFT beats Marlin on energy and latency...
	if shift.AvgEnergyJ >= marlin.AvgEnergyJ {
		t.Errorf("SHIFT energy %.3f not below Marlin %.3f", shift.AvgEnergyJ, marlin.AvgEnergyJ)
	}
	if shift.AvgTimeSec >= marlin.AvgTimeSec {
		t.Errorf("SHIFT time %.3f not below Marlin %.3f", shift.AvgTimeSec, marlin.AvgTimeSec)
	}
	// ...while keeping IoU within ~10% (paper: 0.97x).
	if shift.AvgIoU < marlin.AvgIoU*0.85 {
		t.Errorf("SHIFT IoU %.3f fell more than 15%% below Marlin %.3f", shift.AvgIoU, marlin.AvgIoU)
	}
	// Oracles bound the metric they optimize.
	if oracleA.AvgIoU < shift.AvgIoU {
		t.Errorf("Oracle A IoU %.3f below SHIFT %.3f", oracleA.AvgIoU, shift.AvgIoU)
	}
	if oracleE.AvgEnergyJ > shift.AvgEnergyJ {
		t.Errorf("Oracle E energy %.3f above SHIFT %.3f", oracleE.AvgEnergyJ, shift.AvgEnergyJ)
	}
	if oracleL.AvgTimeSec > shift.AvgTimeSec {
		t.Errorf("Oracle L time %.3f above SHIFT %.3f", oracleL.AvgTimeSec, shift.AvgTimeSec)
	}
	// SHIFT runs a majority of frames off the GPU (paper: 68.7%).
	if shift.NonGPUFrac < 0.3 {
		t.Errorf("SHIFT non-GPU fraction %.2f, want >= 0.3", shift.NonGPUFrac)
	}
	// Oracle A churns pairs far more than SHIFT (paper: 409 vs 42).
	if oracleA.Swaps <= shift.Swaps {
		t.Errorf("Oracle A swaps %d not above SHIFT %d", oracleA.Swaps, shift.Swaps)
	}
	report := res.Report()
	for _, want := range []string{"SHIFT", "Marlin", "Oracle E", "Pairs Used"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	env := testEnv(t)
	res, err := Figure1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingleFamily) != 4 || len(res.MultiModel) != 8 {
		t.Fatalf("series sizes: %d single, %d multi", len(res.SingleFamily), len(res.MultiModel))
	}
	// Fig 1a monotonicity: within the YOLOv7 ladder, each smaller model
	// trades accuracy for energy and latency monotonically
	// (E6E -> X -> V7 -> Tiny in list order).
	for i := 1; i < len(res.SingleFamily); i++ {
		prev, cur := res.SingleFamily[i-1], res.SingleFamily[i]
		if cur.Energy < prev.Energy || cur.Latency < prev.Latency {
			t.Errorf("Fig 1a energy/latency not monotone at %s", cur.Model)
		}
	}
	// Fig 1b non-monotonicity: in accuracy order, energy must NOT be
	// monotone over the whole zoo (the paper's point).
	pts := append([]Figure1Point(nil), res.MultiModel...)
	// Sort by accuracy descending.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[j].Accuracy > pts[i].Accuracy {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
	monotone := true
	for i := 1; i < len(pts); i++ {
		if pts[i].Energy < pts[i-1].Energy {
			monotone = false
			break
		}
	}
	if monotone {
		t.Error("multi-model e-a-l relationship is monotone; zoo should break the trade-off")
	}
	if !strings.Contains(res.Report(), "Figure 1a") {
		t.Fatal("report missing Figure 1a")
	}
}

func TestFigure2Crossovers(t *testing.T) {
	env := testEnv(t)
	res, err := Figure2(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series, want 4", len(res.Series))
	}
	// During the easy segment (frames ~100-400 of scenario 1), the tiny
	// models must beat YoloV7 on efficiency; during the hard segment
	// (~600-1000) YoloV7 must close the gap in IoU terms and the tiny
	// models' advantage must shrink or invert in absolute IoU.
	get := func(name string) []float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Values
			}
		}
		t.Fatalf("missing series %s", name)
		return nil
	}
	avg := func(vals []float64, lo, hi int) float64 {
		var sum float64
		n := 0
		for i := lo; i < hi && i < len(vals); i++ {
			sum += vals[i]
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	v7 := get(detmodel.YoloV7)
	mb320 := get(detmodel.SSDMobilenet320)
	if easy := avg(mb320, 100, 400) / (avg(v7, 100, 400) + 1e-9); easy < 2 {
		t.Errorf("tiny model efficiency advantage on easy frames only %.1fx, want > 2x", easy)
	}
	if !strings.Contains(res.Report(), "Figure 2") {
		t.Fatal("report missing title")
	}
}

func TestFigure3SwapsAtContextChanges(t *testing.T) {
	env := testEnv(t)
	res, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SwapFrames) == 0 {
		t.Fatal("no swaps on scenario 1")
	}
	// The paper reports transitions near frames 50, 500, 1100 and 1650.
	// Our scenario places its context changes at 50, 500, 1100 and 1650;
	// SHIFT must react within a window of each (it is reactionary, so the
	// swap trails the change).
	for _, target := range []int{500, 1100} {
		if !res.SwapsNear(target, 120) {
			t.Errorf("no swap within 120 frames of the context change at %d (swaps: %v)",
				target, res.SwapFrames)
		}
	}
	if !strings.Contains(res.Report(), "SHIFT timeline") {
		t.Fatal("report missing timeline")
	}
}

func TestFigure4DetectionGapAfterDeparture(t *testing.T) {
	env := testEnv(t)
	res, err := Figure4(env)
	if err != nil {
		t.Fatal(err)
	}
	// After the drone leaves (~frame 450), IoU must drop to zero — the
	// paper notes SHIFT does not detect the UAV past this point.
	post := res.Result.Records[470:]
	for _, rec := range post {
		if rec.IoU > 0 {
			t.Fatalf("frame %d has IoU %.3f after departure", rec.Index, rec.IoU)
		}
	}
	// And the scheduler should have moved off the expensive pairs during
	// the empty stretch (conservative allocation).
	shiftEnergy := 0.0
	for _, rec := range post {
		shiftEnergy += rec.EnergyJ
	}
	perFrame := shiftEnergy / float64(len(post))
	if perFrame > 1.0 {
		t.Errorf("per-frame energy %.3f J during empty stretch; expected conservative allocation", perFrame)
	}
}

func TestFigure5Correlations(t *testing.T) {
	env := testEnv(t)
	cfg := QuickSweepConfig()
	cfg.Scenarios = []*scene.Scenario{scene.Scenario2()}
	res, err := Figure5(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != cfg.Size() {
		t.Fatalf("%d points, want %d", len(res.Points), cfg.Size())
	}
	// Paper's headline sensitivities: the energy knob correlates
	// negatively with energy; the accuracy knob positively with accuracy.
	if c := res.Correlations["energy knob"]; c[1] >= 0 {
		t.Errorf("energy knob vs energy correlation %.3f, want negative", c[1])
	}
	if c := res.Correlations["accuracy knob"]; c[0] <= 0 {
		t.Errorf("accuracy knob vs accuracy correlation %.3f, want positive", c[0])
	}
	if !strings.Contains(res.Report(), "Figure 5") {
		t.Fatal("report missing title")
	}
}

func TestSweepConfigSizes(t *testing.T) {
	if got := DefaultSweepConfig().Size(); got != 1920 {
		t.Fatalf("default sweep size %d, want 1920 (~ the paper's 1860)", got)
	}
	if QuickSweepConfig().Size() == 0 {
		t.Fatal("quick sweep empty")
	}
}
