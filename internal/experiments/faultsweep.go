package experiments

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/textplot"
	"repro/internal/zoo"
)

// FaultSweepConfig parameterizes the fault-tolerance experiment: failure rate
// × placement policy under one fixed seeded workload and one seeded fault
// shape, on a fixed-size heterogeneous fleet.
type FaultSweepConfig struct {
	// RatesPerMin lists the mean fleet-wide fault rates swept (faults per
	// minute; 0 is the fault-free reference row). Default 0, 6, 12.
	RatesPerMin []float64
	// Placements lists the dispatch policies compared at each rate (default
	// round-robin and residency-affinity).
	Placements []string
	// Devices is the fleet size (default 4); Scales cycles per-device accel
	// time scales (default {1, 1.25}).
	Devices int
	Scales  []float64
	// Workload is the offered stream trace, identical across all grid cells
	// (default fleet.DefaultWorkloadConfig).
	Workload fleet.WorkloadConfig
	// Admission gates per-device concurrency; nil means
	// fleet.DefaultAdmission.
	Admission *fleet.Admission
	// PoolMB sizes each device's SoC engine arena in MB (default 1300, the
	// memory-tight fleet tier — so migrated streams contend for residency on
	// their new device, exercising re-acquisition and warm adoption).
	PoolMB int64
	// Fault shapes the schedule (kind mix, outage/brownout lengths); its
	// Seed and RatePerSec are overridden per cell from the experiment seed
	// and the swept rate. A zero value means fleet.DefaultFaultConfig; a
	// partially specified one keeps its fields (only a missing Horizon is
	// defaulted — the generator itself defaults lengths and the kind mix).
	Fault fleet.FaultConfig
}

// DefaultFaultSweepConfig returns the standard grid.
func DefaultFaultSweepConfig() FaultSweepConfig {
	adm := fleet.DefaultAdmission()
	return FaultSweepConfig{
		RatesPerMin: []float64{0, 6, 12},
		Placements:  []string{"round-robin", "residency-affinity"},
		Devices:     4,
		Scales:      []float64{1, 1.25},
		Workload:    fleet.DefaultWorkloadConfig(),
		Admission:   &adm,
		PoolMB:      1300,
		Fault:       fleet.DefaultFaultConfig(),
	}
}

// FaultSweepRow is one (failure rate, placement) cell of the grid.
type FaultSweepRow struct {
	RatePerMin float64
	Placement  string
	Faults     int
	fleet.Summary
	// PerDevice carries the cell's device stats (downtime, displacements).
	PerDevice []fleet.DeviceStats
}

// FaultSweepResult is the full grid.
type FaultSweepResult struct {
	Workload fleet.WorkloadConfig
	Devices  int
	Rows     []FaultSweepRow
}

// Row returns the cell for a failure rate and placement.
func (r *FaultSweepResult) Row(ratePerMin float64, placement string) (FaultSweepRow, bool) {
	for _, row := range r.Rows {
		if row.RatePerMin == ratePerMin && row.Placement == placement {
			return row, true
		}
	}
	return FaultSweepRow{}, false
}

// FaultSweep sweeps failure rate × placement policy under one seeded workload
// of SHIFT streams on a heterogeneous fleet: every cell offers the same
// stream trace and, at equal rates, the same fault schedule (outages, deaths
// and brownouts), and reports serving quality next to the recovery metrics —
// migrations, downtime, aborted streams and the post-failure latency tail.
// The rate-0 row is the fault-free reference and reproduces the unfaulted
// fleet bit-for-bit; every cell is checked leak-free (no residency reference
// survives the run).
func FaultSweep(env *Env, cfg FaultSweepConfig) (*FaultSweepResult, error) {
	def := DefaultFaultSweepConfig()
	if cfg.RatesPerMin == nil {
		cfg.RatesPerMin = def.RatesPerMin
	}
	if len(cfg.Placements) == 0 {
		cfg.Placements = def.Placements
	}
	if cfg.Devices == 0 {
		cfg.Devices = def.Devices
	}
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("experiments: invalid device count %d", cfg.Devices)
	}
	if len(cfg.Scales) == 0 {
		cfg.Scales = def.Scales
	}
	if cfg.Workload.Streams == 0 {
		cfg.Workload = def.Workload
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	if cfg.PoolMB == 0 {
		cfg.PoolMB = def.PoolMB
	}
	if cfg.Fault == (fleet.FaultConfig{}) {
		cfg.Fault = def.Fault
	} else if cfg.Fault.Horizon == 0 {
		cfg.Fault.Horizon = def.Fault.Horizon
	}
	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, cfg.PoolMB*accel.MB)
		return sys
	}
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	}
	devices := make([]fleet.DeviceConfig, cfg.Devices)
	names := make([]string, cfg.Devices)
	for i := range devices {
		devices[i] = fleet.DeviceConfig{
			Name:  fmt.Sprintf("edge%02d", i),
			Scale: cfg.Scales[i%len(cfg.Scales)],
		}
		names[i] = devices[i].Name
	}
	res := &FaultSweepResult{Workload: cfg.Workload, Devices: cfg.Devices}
	for _, rate := range cfg.RatesPerMin {
		if rate < 0 {
			return nil, fmt.Errorf("experiments: negative fault rate %v", rate)
		}
		var faults []fleet.Fault
		if rate > 0 {
			fcfg := cfg.Fault
			fcfg.Seed = env.Seed
			fcfg.RatePerSec = rate / 60
			var err error
			faults, err = fleet.GenerateFaults(fcfg, names)
			if err != nil {
				return nil, err
			}
		}
		for _, pname := range cfg.Placements {
			place, err := fleet.PlacementByName(pname)
			if err != nil {
				return nil, err
			}
			fl, err := fleet.New(fleet.Config{
				Seed:      env.Seed,
				Devices:   devices,
				Placement: place,
				Admission: *cfg.Admission,
				NewSystem: newSystem,
			})
			if err != nil {
				return nil, err
			}
			// The workload is re-generated per cell so every fleet sees
			// identical requests with fresh policy state.
			reqs, err := fleet.GenerateWorkload(cfg.Workload, env.Frames, policy)
			if err != nil {
				return nil, err
			}
			run, err := fl.RunWithFaults(reqs, faults)
			if err != nil {
				return nil, fmt.Errorf("experiments: fault sweep %v/min×%s: %w", rate, pname, err)
			}
			sum := fleet.Summarize(run)
			if sum.LeakedRefs != 0 {
				return nil, fmt.Errorf("experiments: fault sweep %v/min×%s leaked %d residency refs",
					rate, pname, sum.LeakedRefs)
			}
			res.Rows = append(res.Rows, FaultSweepRow{
				RatePerMin: rate,
				Placement:  pname,
				Faults:     len(faults),
				Summary:    sum,
				PerDevice:  run.Devices,
			})
		}
	}
	return res, nil
}

// Report renders the grid as a table plus a downtime gauge for the
// highest-rate residency-affinity cell.
func (r *FaultSweepResult) Report() string {
	rows := [][]string{{"Faults/min", "Placement", "Served", "Abort", "Migr",
		"Downtime (s)", "IoU", "Lat p50 (s)", "Lat p99 (s)", "Post-fault p99", "Miss", "Loads"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.RatePerMin),
			row.Placement,
			fmt.Sprintf("%d/%d", row.Served, row.Offered),
			fmt.Sprintf("%d", row.Aborted),
			fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%.2f", row.AvgDowntimeSec),
			fmt.Sprintf("%.3f", row.AvgIoU),
			fmt.Sprintf("%.3f", row.Latency.P50),
			fmt.Sprintf("%.3f", row.Latency.P99),
			fmt.Sprintf("%.3f", row.PostFaultP99),
			fmt.Sprintf("%.1f%%", row.DeadlineMissRate*100),
			fmt.Sprintf("%d", row.Loads),
		})
	}
	out := textplot.Table(fmt.Sprintf(
		"Fault tolerance: %d streams on %d devices, checkpoint/migrate on failure",
		r.Workload.Streams, r.Devices), rows)
	// Downtime plot: the highest-rate cell, preferring residency-affinity.
	var best *FaultSweepRow
	for i := range r.Rows {
		row := &r.Rows[i]
		better := best == nil ||
			row.RatePerMin > best.RatePerMin ||
			(row.RatePerMin == best.RatePerMin &&
				row.Placement == "residency-affinity" && best.Placement != "residency-affinity")
		if better {
			best = row
		}
	}
	if best != nil && best.RatePerMin > 0 {
		labels := make([]string, len(best.PerDevice))
		downs := make([]float64, len(best.PerDevice))
		horizon := 0.0
		for _, d := range best.PerDevice {
			if d.DownSec > horizon {
				horizon = d.DownSec
			}
		}
		if horizon < 1 {
			horizon = 1
		}
		for i, d := range best.PerDevice {
			suffix := ""
			if d.Dead {
				suffix = " †"
			}
			labels[i] = fmt.Sprintf("%s (%d moved)%s", d.Name, d.Displaced, suffix)
			downs[i] = d.DownSec / horizon
		}
		out += "\n" + textplot.PercentBars(
			fmt.Sprintf("Relative downtime at %.0f faults/min, %s (†=dead)", best.RatePerMin, best.Placement),
			labels, downs, 40)
	}
	return out
}

// FaultHorizonFor sizes a fault window to cover a workload: arrivals span
// Streams/RatePerSec seconds, plus twice the longest stream's camera span for
// the serving tail. The CLI's -faults flag uses it so single runs fault the
// whole trace.
func FaultHorizonFor(w fleet.WorkloadConfig) time.Duration {
	arrivalSpan := float64(w.Streams) / w.RatePerSec
	serveSpan := float64(w.MaxFrames) * w.PeriodSec * 2
	return time.Duration((arrivalSpan + serveSpan) * float64(time.Second))
}
