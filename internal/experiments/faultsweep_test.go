package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/scene"
)

// quickFaultSweepConfig keeps the grid small enough for unit tests: a short
// workload on two devices, one fault-free and one heavily faulted rate.
func quickFaultSweepConfig() FaultSweepConfig {
	adm := fleet.DefaultAdmission()
	wl := fleet.WorkloadConfig{
		Seed: 1, Streams: 6, RatePerSec: 0.5, PeriodSec: 0.1,
		MinFrames: 120, MaxFrames: 240,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	fcfg := fleet.DefaultFaultConfig()
	fcfg.Horizon = FaultHorizonFor(wl)
	fcfg.MeanOutageSec = 3
	return FaultSweepConfig{
		RatesPerMin: []float64{0, 20},
		Placements:  []string{"residency-affinity"},
		Devices:     2,
		Workload:    wl,
		Admission:   &adm,
		Fault:       fcfg,
	}
}

// TestFaultSweepRecoversAndStaysClean pins the acceptance criterion: with a
// positive failure rate the sweep reports at least one successful migration,
// zero aborted-by-accounting anomalies (served + aborted + rejected ==
// offered), and zero leaked residency references — while the rate-0 row
// reports no recovery activity at all.
func TestFaultSweepRecoversAndStaysClean(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := FaultSweep(env, quickFaultSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, ok := res.Row(0, "residency-affinity")
	if !ok {
		t.Fatal("missing fault-free row")
	}
	if clean.Migrations != 0 || clean.Aborted != 0 || clean.Faults != 0 || clean.PostFaultP99 != 0 {
		t.Fatalf("fault-free row reports recovery activity: %+v", clean)
	}
	faulted, ok := res.Row(20, "residency-affinity")
	if !ok {
		t.Fatal("missing faulted row")
	}
	if faulted.Faults == 0 {
		t.Fatal("faulted row saw no faults; raise the rate or horizon")
	}
	if faulted.Migrations < 1 {
		t.Fatalf("faulted row reports %d migrations, want >= 1", faulted.Migrations)
	}
	if faulted.LeakedRefs != 0 {
		t.Fatalf("faulted row leaked %d residency refs", faulted.LeakedRefs)
	}
	if got := faulted.Served + faulted.Aborted + faulted.Rejected; got != faulted.Offered {
		t.Fatalf("stream accounting: served %d + aborted %d + rejected %d != offered %d",
			faulted.Served, faulted.Aborted, faulted.Rejected, faulted.Offered)
	}
	// Every stream that produced frames is accounted with monotone timings.
	if faulted.Frames == 0 {
		t.Fatal("faulted row served no frames")
	}
	if faulted.AvgDowntimeSec < 0 {
		t.Fatalf("negative mean downtime %v", faulted.AvgDowntimeSec)
	}
	if report := res.Report(); len(report) == 0 {
		t.Fatal("empty report")
	}
}

// TestFaultSweepFaultFreeMatchesUnfaultedFleet: the rate-0 row must be
// bit-identical to the same fleet run through the fault-free entry point —
// the acceptance criterion that fault machinery costs nothing when idle.
func TestFaultSweepFaultFreeMatchesUnfaultedFleet(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickFaultSweepConfig()
	cfg.RatesPerMin = []float64{0}
	a, err := FaultSweep(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Rows[0]
	rb := b.Rows[0]
	if ra.Summary != rb.Summary {
		t.Fatalf("fault-free rows differ across runs:\n%+v\n%+v", ra.Summary, rb.Summary)
	}
}
