package experiments

import (
	"fmt"
	"strings"

	"repro/internal/confgraph"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/sched"
	"repro/internal/textplot"
)

// SweepConfig defines the parameter grid of the sensitivity analysis
// (Fig. 5). The paper evaluated 1,860 configurations over six parameters:
// the three knobs, the accuracy threshold, the momentum and the
// confidence-graph distance threshold.
type SweepConfig struct {
	AccKnobs       []float64
	EnergyKnobs    []float64
	LatencyKnobs   []float64
	AccThresholds  []float64
	Momentums      []int
	DistThresholds []float64
	// Scenarios names the evaluation subset used per configuration; nil
	// means scenarios 2 and 4 (one outdoor, one indoor), keeping the sweep
	// tractable while covering both regimes.
	Scenarios []*scene.Scenario
}

// DefaultSweepConfig approximates the paper's 1,860-configuration sweep
// with a 1,920-point grid (5 × 4 × 4 knob combinations × 4 thresholds × 3
// momenta × 2 distance thresholds) covering the same six parameters.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		AccKnobs:       []float64{0, 0.25, 0.5, 1.0, 1.5},
		EnergyKnobs:    []float64{0, 0.5, 1.0, 1.5},
		LatencyKnobs:   []float64{0, 0.5, 1.0, 1.5},
		AccThresholds:  []float64{0.15, 0.25, 0.4, 0.55},
		Momentums:      []int{1, 30, 90},
		DistThresholds: []float64{0.25, 0.5},
		Scenarios:      nil,
	}
}

// QuickSweepConfig is a reduced grid for tests and benchmarks.
func QuickSweepConfig() SweepConfig {
	return SweepConfig{
		AccKnobs:       []float64{0, 1.0},
		EnergyKnobs:    []float64{0, 1.0},
		LatencyKnobs:   []float64{0.5},
		AccThresholds:  []float64{0.25, 0.5},
		Momentums:      []int{30},
		DistThresholds: []float64{0.5},
	}
}

// Size returns the number of configurations in the grid.
func (c SweepConfig) Size() int {
	return len(c.AccKnobs) * len(c.EnergyKnobs) * len(c.LatencyKnobs) *
		len(c.AccThresholds) * len(c.Momentums) * len(c.DistThresholds)
}

// SweepPoint is one configuration's outcome.
type SweepPoint struct {
	AccKnob, EnergyKnob, LatencyKnob float64
	AccThreshold                     float64
	Momentum                         int
	DistThreshold                    float64

	MeanIoU     float64
	MeanTimeSec float64
	MeanEnergyJ float64
}

// Figure5Result holds the sweep outcomes and the per-parameter Pearson
// correlations against the three metrics — the quantity Fig. 5 visualizes.
type Figure5Result struct {
	Points []SweepPoint
	// Correlations maps parameter name -> [accuracy, energy, latency]
	// correlation coefficients.
	Correlations map[string][3]float64
}

// Figure5 runs the sensitivity sweep. Confidence graphs are rebuilt per
// distance threshold (construction bakes the threshold into the prediction
// map); everything else reuses the environment's characterization.
func Figure5(env *Env, cfg SweepConfig) (*Figure5Result, error) {
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = []*scene.Scenario{scene.Scenario2(), scene.Scenario4()}
	}
	// Pre-render scenario frames.
	for _, sc := range scenarios {
		env.Frames(sc)
	}
	// Pre-build graphs per distance threshold.
	graphs, err := buildSweepGraphs(env, cfg)
	if err != nil {
		return nil, err
	}

	// Enumerate the grid in its canonical nested order, then run the
	// configurations over a worker pool: each point builds fresh SHIFT
	// runtimes over fresh systems and only reads the shared render cache,
	// characterization and prebuilt graphs, so results land in their grid
	// slot independent of scheduling order.
	var grid []SweepPoint
	for _, accK := range cfg.AccKnobs {
		for _, enK := range cfg.EnergyKnobs {
			for _, latK := range cfg.LatencyKnobs {
				for _, thr := range cfg.AccThresholds {
					for _, mom := range cfg.Momentums {
						for _, dt := range cfg.DistThresholds {
							grid = append(grid, SweepPoint{
								AccKnob: accK, EnergyKnob: enK, LatencyKnob: latK,
								AccThreshold: thr, Momentum: mom, DistThreshold: dt,
							})
						}
					}
				}
			}
		}
	}
	points := make([]SweepPoint, len(grid))
	err = par.MapErr(len(grid), func(i int) error {
		pt, err := runSweepPoint(env, graphs[grid[i].DistThreshold], scenarios, grid[i])
		if err != nil {
			return err
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Points: points, Correlations: map[string][3]float64{}}
	res.computeCorrelations()
	return res, nil
}

// buildSweepGraphs constructs one confidence graph per distance threshold
// (construction bakes the threshold into the prediction map).
func buildSweepGraphs(env *Env, cfg SweepConfig) (map[float64]*confgraph.Graph, error) {
	graphs := map[float64]*confgraph.Graph{}
	for _, dt := range cfg.DistThresholds {
		opts := confgraph.DefaultOptions()
		opts.DistanceThreshold = dt
		g, err := confgraph.Build(env.Ch, opts)
		if err != nil {
			return nil, err
		}
		graphs[dt] = g
	}
	return graphs, nil
}

// runSweepPoint executes SHIFT with one configuration over the scenarios.
func runSweepPoint(env *Env, graph *confgraph.Graph, scenarios []*scene.Scenario, pt SweepPoint) (SweepPoint, error) {
	opts := pipeline.DefaultOptions()
	opts.Sched = sched.Config{
		AccuracyThreshold: pt.AccThreshold,
		Momentum:          pt.Momentum,
		Knobs:             sched.Knobs{Accuracy: pt.AccKnob, Energy: pt.EnergyKnob, Latency: pt.LatencyKnob},
		BoxCropSize:       24,
	}
	var summaries []metrics.Summary
	for _, sc := range scenarios {
		shift, err := pipeline.NewSHIFT(env.System(), env.Ch, graph, opts)
		if err != nil {
			return pt, err
		}
		r, err := shift.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return pt, err
		}
		s := metrics.Summarize(r)
		s.Method = "SHIFT"
		summaries = append(summaries, s)
	}
	combined, err := metrics.Combine(summaries)
	if err != nil {
		return pt, err
	}
	pt.MeanIoU = combined.AvgIoU
	pt.MeanTimeSec = combined.AvgTimeSec
	pt.MeanEnergyJ = combined.AvgEnergyJ
	return pt, nil
}

// computeCorrelations fills the per-parameter Pearson coefficients.
func (r *Figure5Result) computeCorrelations() {
	n := len(r.Points)
	if n < 2 {
		return
	}
	pull := func(f func(SweepPoint) float64) []float64 {
		out := make([]float64, n)
		for i, p := range r.Points {
			out[i] = f(p)
		}
		return out
	}
	iou := pull(func(p SweepPoint) float64 { return p.MeanIoU })
	energy := pull(func(p SweepPoint) float64 { return p.MeanEnergyJ })
	lat := pull(func(p SweepPoint) float64 { return p.MeanTimeSec })
	params := []struct {
		name string
		f    func(SweepPoint) float64
	}{
		{"accuracy knob", func(p SweepPoint) float64 { return p.AccKnob }},
		{"energy knob", func(p SweepPoint) float64 { return p.EnergyKnob }},
		{"latency knob", func(p SweepPoint) float64 { return p.LatencyKnob }},
		{"accuracy threshold", func(p SweepPoint) float64 { return p.AccThreshold }},
		{"momentum", func(p SweepPoint) float64 { return float64(p.Momentum) }},
		{"distance threshold", func(p SweepPoint) float64 { return p.DistThreshold }},
	}
	for _, prm := range params {
		x := pull(prm.f)
		r.Correlations[prm.name] = [3]float64{
			metrics.Pearson(x, iou),
			metrics.Pearson(x, energy),
			metrics.Pearson(x, lat),
		}
	}
}

// Report renders the Fig. 5 correlation table.
func (r *Figure5Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: sensitivity of SHIFT to its parameters (%d configurations)\n", len(r.Points))
	rows := [][]string{{"Parameter", "corr(accuracy)", "corr(energy)", "corr(latency)"}}
	for _, name := range []string{"accuracy knob", "energy knob", "latency knob",
		"accuracy threshold", "momentum", "distance threshold"} {
		c := r.Correlations[name]
		rows = append(rows, []string{name,
			fmt.Sprintf("%+.3f", c[0]), fmt.Sprintf("%+.3f", c[1]), fmt.Sprintf("%+.3f", c[2])})
	}
	b.WriteString(textplot.Table("", rows))
	return b.String()
}
