package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// Figure1Point is one model's normalized energy-accuracy-latency triple
// (bigger is better on every axis, as in the paper's radar plot).
type Figure1Point struct {
	Model    string
	Accuracy float64
	Energy   float64
	Latency  float64
}

// Figure1Result compares the single-family YOLOv7 size ladder against the
// full multi-model zoo.
type Figure1Result struct {
	SingleFamily []Figure1Point // YoloV7 variants on GPU (Fig. 1a)
	MultiModel   []Figure1Point // the whole zoo on GPU (Fig. 1b)
}

// Figure1 reproduces Fig. 1: single-model parameter scaling produces a
// monotone e-a-l trade-off, while the heterogeneous zoo covers the space
// non-monotonically.
func Figure1(env *Env) (*Figure1Result, error) {
	res := &Figure1Result{}
	accNorm := func(model string) float64 {
		t, ok := env.Ch.ByModel[model]
		if !ok {
			return 0
		}
		return t.AvgIoU
	}
	point := func(model string) Figure1Point {
		key := profile.PairKey{Model: model, Kind: accel.KindGPU}
		return Figure1Point{
			Model:    model,
			Accuracy: accNorm(model),
			Energy:   env.Ch.EnergyScore[key],
			Latency:  env.Ch.LatencyScore[key],
		}
	}
	for _, m := range []string{detmodel.YoloV7E6E, detmodel.YoloV7X, detmodel.YoloV7, detmodel.YoloV7Tiny} {
		res.SingleFamily = append(res.SingleFamily, point(m))
	}
	for _, name := range env.Ch.ModelNames() {
		res.MultiModel = append(res.MultiModel, point(name))
	}
	return res, nil
}

// Report renders Fig. 1 as paired bar charts.
func (r *Figure1Result) Report() string {
	var b strings.Builder
	render := func(title string, pts []Figure1Point) {
		labels := make([]string, 0, 3*len(pts))
		values := make([]float64, 0, 3*len(pts))
		for _, p := range pts {
			labels = append(labels, p.Model+" acc", p.Model+" energy", p.Model+" latency")
			values = append(values, p.Accuracy, p.Energy, p.Latency)
		}
		b.WriteString(textplot.BarChart(title, labels, values, 40))
		b.WriteString("\n")
	}
	render("Figure 1a: YOLOv7 size ladder (GPU) — bigger is better on all axes", r.SingleFamily)
	render("Figure 1b: multi-model zoo (GPU)", r.MultiModel)
	return b.String()
}

// Figure2Result holds the per-model efficiency (IoU per Joule) timelines of
// Fig. 2 on a test video.
type Figure2Result struct {
	Scenario string
	Series   []textplot.Series
}

// figure2Models are the single models whose efficiency Fig. 2 plots.
var figure2Models = []string{
	detmodel.YoloV7, detmodel.YoloV7Tiny, detmodel.SSDMobilenetV1, detmodel.SSDMobilenet320,
}

// Figure2 reproduces Fig. 2: single-model GPU efficiency timelines, showing
// the context-dependent crossovers that motivate multi-model execution.
func Figure2(env *Env, sc *scene.Scenario) (*Figure2Result, error) {
	if sc == nil {
		sc = scene.Scenario1()
	}
	frames := env.Frames(sc)
	res := &Figure2Result{Scenario: sc.Name}
	for _, model := range figure2Models {
		runner, err := baseline.NewSingleModel(env.System(), model, "gpu")
		if err != nil {
			return nil, err
		}
		r, err := runner.Run(sc.Name, frames)
		if err != nil {
			return nil, err
		}
		// Drop the initial load frame so the series reflects steady state,
		// then smooth like the paper's plots.
		eff := metrics.EfficiencySeries(r)
		if len(eff) > 1 {
			eff = eff[1:]
		}
		res.Series = append(res.Series, textplot.Series{
			Name:   model,
			Values: metrics.MovingAverage(eff, 31),
		})
	}
	return res, nil
}

// Report renders the Fig. 2 chart.
func (r *Figure2Result) Report() string {
	return textplot.LineChart(
		fmt.Sprintf("Figure 2: single-model efficiency (IoU/J, smoothed) on %s", r.Scenario),
		r.Series, 100, 18)
}

// TimelineResult holds a SHIFT scenario timeline (Figs. 3 and 4): per-frame
// IoU, the active pair, and the frames where SHIFT swapped.
type TimelineResult struct {
	Scenario   string
	Result     *pipeline.Result
	SwapFrames []int
	// PairSpans lists (start frame, pair) runs for the report.
	PairSpans []PairSpan
}

// PairSpan is a maximal run of frames served by one pair.
type PairSpan struct {
	Start, End int
	Pair       string
}

// Timeline runs SHIFT over a scenario and extracts the swap timeline.
func Timeline(env *Env, sc *scene.Scenario) (*TimelineResult, error) {
	shift, err := pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	r, err := shift.Run(sc.Name, env.Frames(sc))
	if err != nil {
		return nil, err
	}
	res := &TimelineResult{Scenario: sc.Name, Result: r}
	cur := ""
	start := 0
	for i, rec := range r.Records {
		if rec.Swapped {
			res.SwapFrames = append(res.SwapFrames, rec.Index)
		}
		name := rec.Pair.String()
		if name != cur {
			if cur != "" {
				res.PairSpans = append(res.PairSpans, PairSpan{Start: start, End: i - 1, Pair: cur})
			}
			cur = name
			start = i
		}
	}
	if cur != "" {
		res.PairSpans = append(res.PairSpans, PairSpan{Start: start, End: len(r.Records) - 1, Pair: cur})
	}
	return res, nil
}

// Figure3 reproduces Fig. 3 (scenario 1: varying distance across multiple
// backgrounds).
func Figure3(env *Env) (*TimelineResult, error) { return Timeline(env, scene.Scenario1()) }

// Figure4 reproduces Fig. 4 (scenario 2: fixed distance, background sweeps,
// departure at ~450).
func Figure4(env *Env) (*TimelineResult, error) { return Timeline(env, scene.Scenario2()) }

// Report renders the timeline: IoU + gate chart, swap markers and pair spans.
func (r *TimelineResult) Report() string {
	iou := make([]float64, len(r.Result.Records))
	energy := make([]float64, len(r.Result.Records))
	for i, rec := range r.Result.Records {
		iou[i] = rec.IoU
		energy[i] = rec.EnergyJ
	}
	var b strings.Builder
	b.WriteString(textplot.LineChart(
		fmt.Sprintf("SHIFT timeline on %s (smoothed IoU and energy per frame)", r.Scenario),
		[]textplot.Series{
			{Name: "IoU", Values: metrics.MovingAverage(iou, 31)},
			{Name: "energy (J)", Values: metrics.MovingAverage(energy, 31)},
		}, 100, 16))
	fmt.Fprintf(&b, "\nmodel/accelerator swaps at frames: %v\n", condense(r.SwapFrames))
	b.WriteString("active pair spans:\n")
	for _, span := range r.PairSpans {
		fmt.Fprintf(&b, "  %5d-%5d  %s\n", span.Start, span.End, span.Pair)
	}
	return b.String()
}

// condense shortens long swap lists for display.
func condense(frames []int) []int {
	if len(frames) <= 24 {
		return frames
	}
	out := make([]int, 0, 24)
	step := len(frames) / 24
	for i := 0; i < len(frames); i += step + 1 {
		out = append(out, frames[i])
	}
	return out
}

// SwapsNear reports whether any swap happened within tol frames of target —
// used to verify the Fig. 3 transition markers (~50, ~500, ~1100, ~1650).
func (r *TimelineResult) SwapsNear(target, tol int) bool {
	i := sort.SearchInts(r.SwapFrames, target-tol)
	return i < len(r.SwapFrames) && r.SwapFrames[i] <= target+tol
}
