package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/textplot"
	"repro/internal/zoo"
)

// FleetSweepConfig parameterizes the multi-device serving experiment: device
// count × placement policy under one fixed seeded workload.
type FleetSweepConfig struct {
	// DeviceCounts lists the fleet sizes to sweep (default 1, 2, 4).
	DeviceCounts []int
	// Placements lists the dispatch policies compared at each size (default
	// all three: round-robin, least-outstanding, residency-affinity).
	Placements []string
	// Scales cycles per-device accel time scales, making fleets
	// heterogeneous (default {1, 1.25}: every second device is 25% slower).
	Scales []float64
	// Workload is the offered stream trace, identical across all grid cells
	// (default fleet.DefaultWorkloadConfig).
	Workload fleet.WorkloadConfig
	// Admission gates per-device concurrency; nil means
	// fleet.DefaultAdmission (3 streams/device, 8-slot queue). A pointer so
	// an explicit zero value (unlimited budget, reject immediately) is
	// distinguishable from "use the default".
	Admission *fleet.Admission
	// PoolMB sizes each device's SoC engine arena in MB (default 1300 — the
	// memory-tight fleet tier, same arena the eviction ablation uses: big
	// enough for the largest single engine, too small for two large ones,
	// so model residency is a scarce resource placement can exploit).
	PoolMB int64
	// PremiumFraction is the seeded fraction of streams served under the
	// accuracy-weighted premium tier (the eviction ablation's knob set,
	// which pulls the large engines in). Mixing tiers on one memory-tight
	// device churns the loader; grouping them is what the
	// residency-affinity placement can exploit. Default 1/3; negative
	// disables the premium tier.
	PremiumFraction float64
	// Regions shards each cell's event loop across parallel device regions
	// (0/1: single region). Purely a wall-clock knob: results are
	// bit-identical at every region count.
	Regions int
}

// DefaultFleetSweepConfig returns the standard grid.
func DefaultFleetSweepConfig() FleetSweepConfig {
	adm := fleet.DefaultAdmission()
	return FleetSweepConfig{
		DeviceCounts:    []int{1, 2, 4},
		Placements:      []string{"round-robin", "least-outstanding", "residency-affinity"},
		Scales:          []float64{1, 1.25},
		Workload:        fleet.DefaultWorkloadConfig(),
		Admission:       &adm,
		PoolMB:          1300,
		PremiumFraction: 1.0 / 3,
	}
}

// FleetSweepRow is one (device count, placement) cell of the grid.
type FleetSweepRow struct {
	Devices   int
	Placement string
	fleet.Summary
	// PerDevice carries the cell's device stats for utilization plots.
	PerDevice []fleet.DeviceStats
}

// FleetSweepResult is the full grid.
type FleetSweepResult struct {
	Workload  fleet.WorkloadConfig
	Admission fleet.Admission
	Rows      []FleetSweepRow
}

// Row returns the cell for a device count and placement.
func (r *FleetSweepResult) Row(devices int, placement string) (FleetSweepRow, bool) {
	for _, row := range r.Rows {
		if row.Devices == devices && row.Placement == placement {
			return row, true
		}
	}
	return FleetSweepRow{}, false
}

// FleetSweep sweeps fleet size × placement policy under one seeded open-loop
// workload of SHIFT streams: every cell offers the same stream trace to a
// fresh heterogeneous fleet and reports serving quality (IoU), tail latency,
// deadline misses, admission rejects, loader traffic and device utilization.
// It is the fleet-level counterpart of MultiStream: where that sweep found
// one device's capacity cliff, this one measures how placement policy and
// device count move it.
//
// Every cell is a sequential discrete-event simulation; the whole grid is
// deterministic per seed.
func FleetSweep(env *Env, cfg FleetSweepConfig) (*FleetSweepResult, error) {
	def := DefaultFleetSweepConfig()
	if len(cfg.DeviceCounts) == 0 {
		cfg.DeviceCounts = def.DeviceCounts
	}
	if len(cfg.Placements) == 0 {
		cfg.Placements = def.Placements
	}
	if len(cfg.Scales) == 0 {
		cfg.Scales = def.Scales
	}
	if cfg.Workload.Streams == 0 {
		cfg.Workload = def.Workload
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	if cfg.PoolMB == 0 {
		cfg.PoolMB = def.PoolMB
	}
	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, cfg.PoolMB*accel.MB)
		return sys
	}
	if cfg.PremiumFraction == 0 {
		cfg.PremiumFraction = def.PremiumFraction
	}
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	}
	premiumOpts := pipeline.DefaultOptions()
	premiumOpts.Sched.Knobs = sched.Knobs{Accuracy: 3, Energy: 0.2, Latency: 0.2}
	premium := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, premiumOpts)
	}
	res := &FleetSweepResult{Workload: cfg.Workload, Admission: *cfg.Admission}
	for _, k := range cfg.DeviceCounts {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: invalid device count %d", k)
		}
		devices := make([]fleet.DeviceConfig, k)
		for i := range devices {
			devices[i] = fleet.DeviceConfig{
				Name:  fmt.Sprintf("edge%02d", i),
				Scale: cfg.Scales[i%len(cfg.Scales)],
			}
		}
		for _, pname := range cfg.Placements {
			place, err := fleet.PlacementByName(pname)
			if err != nil {
				return nil, err
			}
			fl, err := fleet.New(fleet.Config{
				Seed:      env.Seed,
				Devices:   devices,
				Placement: place,
				Admission: *cfg.Admission,
				NewSystem: newSystem,
				Regions:   cfg.Regions,
			})
			if err != nil {
				return nil, err
			}
			// The workload is re-generated per cell so every fleet sees
			// identical requests with fresh policy state.
			reqs, err := fleet.GenerateWorkload(cfg.Workload, env.Frames, policy)
			if err != nil {
				return nil, err
			}
			// Seeded tier assignment: premium streams run accuracy-weighted
			// knobs at a 4 fps camera (their large engines cannot make 10 fps
			// deadlines on any device) and carry a tier-qualified affinity
			// key, so placements can (or fail to) group their large-engine
			// working set.
			tr := rng.New(cfg.Workload.Seed).Fork("fleet/tiers")
			for i := range reqs {
				if tr.Float64() < cfg.PremiumFraction {
					reqs[i].Scenario = "premium/" + reqs[i].Scenario
					reqs[i].Policy = premium
					reqs[i].PeriodSec = cfg.Workload.PeriodSec * 2.5
					reqs[i].Frames = reqs[i].Frames[:len(reqs[i].Frames)*2/5]
				}
			}
			run, err := fl.Run(reqs)
			if err != nil {
				return nil, fmt.Errorf("experiments: fleet %d×%s: %w", k, pname, err)
			}
			res.Rows = append(res.Rows, FleetSweepRow{
				Devices:   k,
				Placement: pname,
				Summary:   fleet.Summarize(run),
				PerDevice: run.Devices,
			})
		}
	}
	return res, nil
}

// Report renders the grid as a table plus the utilization plot of the
// largest residency-affinity fleet.
func (r *FleetSweepResult) Report() string {
	rows := [][]string{{"Devices", "Placement", "Served", "Reject", "IoU",
		"Lat p50 (s)", "Lat p99 (s)", "Miss", "Queue (s)", "Loads", "Evict", "Util"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Devices),
			row.Placement,
			fmt.Sprintf("%d/%d", row.Served, row.Offered),
			fmt.Sprintf("%.0f%%", row.RejectRate*100),
			fmt.Sprintf("%.3f", row.AvgIoU),
			fmt.Sprintf("%.3f", row.Latency.P50),
			fmt.Sprintf("%.3f", row.Latency.P99),
			fmt.Sprintf("%.1f%%", row.DeadlineMissRate*100),
			fmt.Sprintf("%.2f", row.AvgQueueDelaySec),
			fmt.Sprintf("%d", row.Loads),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%.0f%%", row.AvgUtilization*100),
		})
	}
	out := textplot.Table(fmt.Sprintf(
		"Fleet serving: %d streams at %.2f/s, %.0f fps, budget %d streams/device",
		r.Workload.Streams, r.Workload.RatePerSec, 1/r.Workload.PeriodSec,
		r.Admission.PerDeviceStreams), rows)
	// Utilization plot: the largest residency-affinity cell, falling back
	// to the largest cell of any placement (single-cell CLI runs).
	var best *FleetSweepRow
	for i := range r.Rows {
		row := &r.Rows[i]
		better := best == nil ||
			row.Devices > best.Devices ||
			(row.Devices == best.Devices &&
				row.Placement == "residency-affinity" && best.Placement != "residency-affinity")
		if better {
			best = row
		}
	}
	if best != nil {
		labels := make([]string, len(best.PerDevice))
		utils := make([]float64, len(best.PerDevice))
		for i, d := range best.PerDevice {
			labels[i] = fmt.Sprintf("%s (x%.2f)", d.Name, d.Scale)
			utils[i] = d.Utilization
		}
		out += "\n" + textplot.PercentBars(
			fmt.Sprintf("Peak-processor utilization, %d devices, %s", best.Devices, best.Placement),
			labels, utils, 40)
	}
	return out
}
