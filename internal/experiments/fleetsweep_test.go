package experiments

import (
	"testing"
)

// TestFleetSweepDefaultGrid runs the standard grid once and pins the
// experiment's load-bearing claims: every cell serves the full workload,
// placement is irrelevant on a single device, and the residency-affinity
// placement beats round-robin on tail latency or loader traffic once the
// fleet has ≥ 2 devices (the PR's acceptance criterion).
func TestFleetSweepDefaultGrid(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := FleetSweep(env, FleetSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows, want 9 (3 sizes × 3 placements)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Offered != res.Workload.Streams {
			t.Fatalf("%d×%s offered %d, want %d", row.Devices, row.Placement, row.Offered, res.Workload.Streams)
		}
		if row.Served+row.Rejected != row.Offered {
			t.Fatalf("%d×%s served %d + rejected %d != offered %d",
				row.Devices, row.Placement, row.Served, row.Rejected, row.Offered)
		}
		if row.Served > 0 && (row.AvgIoU <= 0 || row.Latency.P99 <= 0) {
			t.Fatalf("%d×%s has degenerate metrics: %+v", row.Devices, row.Placement, row.Summary)
		}
		if len(row.PerDevice) != row.Devices {
			t.Fatalf("%d×%s carries %d device stats", row.Devices, row.Placement, len(row.PerDevice))
		}
	}

	// One device: placement cannot matter — all three rows identical.
	rr1, _ := res.Row(1, "round-robin")
	for _, p := range []string{"least-outstanding", "residency-affinity"} {
		row, ok := res.Row(1, p)
		if !ok {
			t.Fatalf("missing 1×%s row", p)
		}
		if row.Summary != rr1.Summary {
			t.Fatalf("1-device %s differs from round-robin:\n%+v\n%+v", p, row.Summary, rr1.Summary)
		}
	}

	// ≥ 2 devices: residency-affinity beats round-robin on p99 latency or
	// loads; at 4 devices the gap is structural (grouped tiers avoid the
	// memory-tight eviction churn), so pin the strict win there.
	for _, k := range []int{2, 4} {
		rr, okRR := res.Row(k, "round-robin")
		aff, okAff := res.Row(k, "residency-affinity")
		if !okRR || !okAff {
			t.Fatalf("missing %d-device rows", k)
		}
		if !(aff.Latency.P99 < rr.Latency.P99 || aff.Loads < rr.Loads) {
			t.Fatalf("%d devices: affinity (p99 %.3f, loads %d) does not beat round-robin (p99 %.3f, loads %d)",
				k, aff.Latency.P99, aff.Loads, rr.Latency.P99, rr.Loads)
		}
	}
	aff4, _ := res.Row(4, "residency-affinity")
	rr4, _ := res.Row(4, "round-robin")
	if aff4.Latency.P99 >= rr4.Latency.P99 || aff4.Loads >= rr4.Loads {
		t.Fatalf("4 devices: affinity (p99 %.3f, loads %d) should strictly beat round-robin (p99 %.3f, loads %d)",
			aff4.Latency.P99, aff4.Loads, rr4.Latency.P99, rr4.Loads)
	}

	// Scaling out helps: the 4-device affinity fleet's miss rate is well
	// under the single device's.
	if aff4.DeadlineMissRate >= rr1.DeadlineMissRate {
		t.Fatalf("4-device miss rate %.3f not below 1-device %.3f",
			aff4.DeadlineMissRate, rr1.DeadlineMissRate)
	}

	if report := res.Report(); len(report) == 0 {
		t.Fatal("empty report")
	}
}

// TestFleetSweepValidation covers the config contract.
func TestFleetSweepValidation(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FleetSweep(env, FleetSweepConfig{DeviceCounts: []int{0}}); err == nil {
		t.Fatal("zero device count should fail")
	}
	if _, err := FleetSweep(env, FleetSweepConfig{Placements: []string{"nope"}}); err == nil {
		t.Fatal("unknown placement should fail")
	}
}
