package experiments

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/metrics"
)

// goldenTableIII pins the Table III headline metrics, at full float64
// precision, to the values produced before the serving-runtime refactor
// (seed 1, 800 validation frames, full evaluation suite). Any drift means a
// change stopped being behaviour-preserving for single-stream runs.
//
// To regenerate after an *intentional* behaviour change, print each summary
// with %v (shortest round-trip formatting) and update the literals — and say
// so loudly in the commit message, since every calibrated number moves.
var goldenTableIII = map[string]metrics.Summary{
	"Marlin":      {AvgIoU: 0.7090971873751867, AvgTimeSec: 0.11745406654972972, AvgEnergyJ: 1.6767525290695464, SuccessRate: 0.8536486486486486, NonGPUFrac: 0, Swaps: 0, PairsUsed: 1},
	"Marlin Tiny": {AvgIoU: 0.6270052602391447, AvgTimeSec: 0.031425279269594604, AvgEnergyJ: 0.3010172894016933, SuccessRate: 0.6821621621621622, NonGPUFrac: 0, Swaps: 0, PairsUsed: 1},
	"SHIFT":       {AvgIoU: 0.6486279830069125, AvgTimeSec: 0.04469313464459459, AvgEnergyJ: 0.2572703594024136, SuccessRate: 0.7616216216216216, NonGPUFrac: 0.9902702702702703, Swaps: 15, PairsUsed: 3.3333333333333335},
	"Oracle E":    {AvgIoU: 0.574156502923265, AvgTimeSec: 0.03554736414081081, AvgEnergyJ: 0.19579839175180194, SuccessRate: 0.8721621621621621, NonGPUFrac: 0.5044594594594595, Swaps: 232, PairsUsed: 4.166666666666667},
	"Oracle A":    {AvgIoU: 0.7388935130860991, AvgTimeSec: 0.14140139189499995, AvgEnergyJ: 0.7913521917732379, SuccessRate: 0.8721621621621621, NonGPUFrac: 1, Swaps: 797, PairsUsed: 6.833333333333333},
	"Oracle L":    {AvgIoU: 0.5630498458682431, AvgTimeSec: 0.03546102438486487, AvgEnergyJ: 0.2056400065643727, SuccessRate: 0.8721621621621621, NonGPUFrac: 0.4177027027027027, Swaps: 306, PairsUsed: 4.666666666666667},
}

// Golden Figure 3 swap timeline: swap count plus an FNV-1a hash over the
// swap frames and pair spans, so any re-rolled scheduling sequence is caught
// even when aggregate metrics happen to coincide.
const (
	goldenFigure3Swaps = 29
	goldenFigure3Hash  = uint64(0x4c6882937b406381)
)

// TestGoldenTableIII pins every Table III cell bit-for-bit.
func TestGoldenTableIII(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := TableIII(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	for method, want := range goldenTableIII {
		got, ok := res.Summary(method)
		if !ok {
			t.Errorf("missing %s summary", method)
			continue
		}
		check := func(field string, g, w float64) {
			if g != w {
				t.Errorf("%s %s = %v, golden %v", method, field, g, w)
			}
		}
		check("AvgIoU", got.AvgIoU, want.AvgIoU)
		check("AvgTimeSec", got.AvgTimeSec, want.AvgTimeSec)
		check("AvgEnergyJ", got.AvgEnergyJ, want.AvgEnergyJ)
		check("SuccessRate", got.SuccessRate, want.SuccessRate)
		check("NonGPUFrac", got.NonGPUFrac, want.NonGPUFrac)
		check("PairsUsed", got.PairsUsed, want.PairsUsed)
		if got.Swaps != want.Swaps {
			t.Errorf("%s Swaps = %d, golden %d", method, got.Swaps, want.Swaps)
		}
	}
}

// TestGoldenFigure3Timeline pins the scenario-1 SHIFT swap timeline.
func TestGoldenFigure3Timeline(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SwapFrames) != goldenFigure3Swaps {
		t.Errorf("Figure 3 swap count = %d, golden %d", len(res.SwapFrames), goldenFigure3Swaps)
	}
	h := fnv.New64a()
	for _, f := range res.SwapFrames {
		fmt.Fprintf(h, "%d,", f)
	}
	for _, sp := range res.PairSpans {
		fmt.Fprintf(h, "%d-%d:%s;", sp.Start, sp.End, sp.Pair)
	}
	if got := h.Sum64(); got != goldenFigure3Hash {
		t.Errorf("Figure 3 timeline hash = %#x, golden %#x", got, goldenFigure3Hash)
	}
}
