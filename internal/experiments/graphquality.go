package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/confgraph"
	"repro/internal/detmodel"
	"repro/internal/profile"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// GraphQualityPoint measures prediction quality for one validation-set size.
type GraphQualityPoint struct {
	ValidationFrames int
	// MAE is the mean absolute error of cross-model accuracy prediction on
	// held-out frames (predicting YoloV7-Tiny's IoU from YoloV7's
	// confidence).
	MAE float64
	// NaiveMAE is the error of always predicting the global average — the
	// baseline the graph must beat to be useful.
	NaiveMAE float64
	// Coverage is the prediction-map fill fraction.
	Coverage float64
}

// GraphQualityResult holds the data-efficiency curve of the confidence
// graph: how much offline characterization data SHIFT needs before its
// predictions beat a global-average baseline. The paper uses a 2,500-image
// validation split; this experiment shows the returns of smaller splits.
type GraphQualityResult struct {
	Points []GraphQualityPoint
}

// GraphQuality evaluates graphs built from increasing validation-set sizes
// against a fixed held-out set.
func GraphQuality(seed uint64, sizes []int, holdoutFrames int) (*GraphQualityResult, error) {
	if sizes == nil {
		sizes = []int{25, 50, 100, 200, 400, 800}
	}
	sys := zoo.Default(seed)
	holdout := scene.ValidationSet(seed+1000, holdoutFrames)
	v7, err := sys.Entry(detmodel.YoloV7)
	if err != nil {
		return nil, err
	}
	tiny, err := sys.Entry(detmodel.YoloV7Tiny)
	if err != nil {
		return nil, err
	}

	res := &GraphQualityResult{}
	for _, n := range sizes {
		ch := profile.Characterize(sys, scene.ValidationSet(seed, n))
		g, err := confgraph.Build(ch, confgraph.DefaultOptions())
		if err != nil {
			return nil, err
		}
		pt := GraphQualityPoint{ValidationFrames: n, Coverage: g.ComputeStats().Coverage}
		globalAvg := ch.ByModel[detmodel.YoloV7Tiny].AvgIoU
		count := 0
		for _, f := range holdout {
			dv7 := v7.Model.Detect(f, sys.Seed)
			dtiny := tiny.Model.Detect(f, sys.Seed)
			if !dv7.Found {
				continue
			}
			preds, ok := g.Predict(detmodel.YoloV7, dv7.Conf)
			if !ok {
				continue
			}
			for _, p := range preds {
				if p.Model == detmodel.YoloV7Tiny {
					pt.MAE += math.Abs(p.Acc - dtiny.IoU)
					pt.NaiveMAE += math.Abs(globalAvg - dtiny.IoU)
					count++
				}
			}
		}
		if count > 0 {
			pt.MAE /= float64(count)
			pt.NaiveMAE /= float64(count)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Report renders the data-efficiency curve.
func (r *GraphQualityResult) Report() string {
	var b strings.Builder
	b.WriteString("Confidence-graph data efficiency (cross-model prediction MAE, held-out frames):\n")
	fmt.Fprintf(&b, "%10s %10s %12s %10s\n", "val-frames", "graph MAE", "naive MAE", "coverage")
	for _, p := range r.Points {
		marker := ""
		if p.MAE < p.NaiveMAE {
			marker = "  <- beats naive"
		}
		fmt.Fprintf(&b, "%10d %10.3f %12.3f %9.0f%%%s\n",
			p.ValidationFrames, p.MAE, p.NaiveMAE, p.Coverage*100, marker)
	}
	return b.String()
}
