package experiments

import (
	"strings"
	"testing"
)

func TestGraphQualityCurve(t *testing.T) {
	res, err := GraphQuality(1, []int{50, 200, 600}, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	// With enough data the graph must beat the naive global-average
	// predictor (the property that justifies its existence).
	last := res.Points[len(res.Points)-1]
	if last.MAE >= last.NaiveMAE {
		t.Fatalf("graph (MAE %.3f) no better than naive (%.3f) at %d frames",
			last.MAE, last.NaiveMAE, last.ValidationFrames)
	}
	// Quality improves (or at least does not collapse) with more data.
	first := res.Points[0]
	if last.MAE > first.MAE*1.2 {
		t.Fatalf("MAE degraded with more data: %.3f (n=%d) -> %.3f (n=%d)",
			first.MAE, first.ValidationFrames, last.MAE, last.ValidationFrames)
	}
	for _, p := range res.Points {
		if p.Coverage < 0 || p.Coverage > 1 {
			t.Fatalf("coverage out of range: %+v", p)
		}
	}
	if out := res.Report(); !strings.Contains(out, "data efficiency") {
		t.Fatalf("report: %q", out)
	}
}

func TestGraphQualityDeterministic(t *testing.T) {
	a, err := GraphQuality(1, []int{100}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GraphQuality(1, []int{100}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0] != b.Points[0] {
		t.Fatal("graph quality not deterministic")
	}
}
