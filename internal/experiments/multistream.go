package experiments

import (
	"fmt"

	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// MultiStreamConfig parameterizes the multi-stream serving experiment.
type MultiStreamConfig struct {
	// StreamCounts lists the concurrency levels to sweep (default 1–8).
	StreamCounts []int
	// PeriodSec is every stream's camera frame period; a frame's deadline is
	// the next frame's arrival (default 0.1 s = 10 fps).
	PeriodSec float64
	// MaxFrames caps each stream's length so the sweep stays fast (0 = full
	// scenarios).
	MaxFrames int
	// Scenarios are assigned to streams round-robin (default the evaluation
	// suite), so concurrent streams carry heterogeneous content.
	Scenarios []*scene.Scenario
}

// DefaultMultiStreamConfig returns the standard sweep: 1–8 streams of
// 10 fps video, 600 frames per stream.
func DefaultMultiStreamConfig() MultiStreamConfig {
	return MultiStreamConfig{
		StreamCounts: []int{1, 2, 3, 4, 5, 6, 7, 8},
		PeriodSec:    0.1,
		MaxFrames:    600,
	}
}

// MultiStreamRow aggregates one concurrency level of the sweep.
type MultiStreamRow struct {
	Streams int
	Frames  int
	// AvgIoU and SuccessRate are detection quality across all streams.
	AvgIoU      float64
	SuccessRate float64
	// Latency is the arrival-to-completion profile across every frame of
	// every stream (queueing behind other streams included).
	Latency metrics.LatencyProfile
	// DeadlineMissRate is the fraction of frames finishing after the next
	// frame's arrival.
	DeadlineMissRate float64
	// AvgQueueWaitSec is the mean per-frame processor queueing delay.
	AvgQueueWaitSec float64
	// SwapsPerStream is the mean model/accelerator swap count per stream;
	// Loads and Evictions are the shared loader's totals.
	SwapsPerStream float64
	Loads          int
	Evictions      int
	// AvgEnergyJ is the mean per-frame energy across streams.
	AvgEnergyJ float64
}

// MultiStreamResult is the full sweep.
type MultiStreamResult struct {
	PeriodSec float64
	Rows      []MultiStreamRow
	// PerStream maps stream count -> the raw per-stream serve results, for
	// tests and deeper analysis.
	PerStream map[int][]*runtime.StreamResult
}

// MultiStream sweeps stream count over one shared platform: N concurrent
// SHIFT streams (one policy instance each, heterogeneous scenarios) served
// by runtime.Serve with FIFO processor queueing and reference-counted
// engine residency. It reports the contention regime the paper's
// single-stream evaluation cannot express: tail latency, deadline misses
// and swap behaviour versus concurrency.
//
// The serve loop is a sequential discrete-event simulation, so results are
// deterministic and independent of the host's worker count.
func MultiStream(env *Env, cfg MultiStreamConfig) (*MultiStreamResult, error) {
	if len(cfg.StreamCounts) == 0 {
		cfg.StreamCounts = DefaultMultiStreamConfig().StreamCounts
	}
	if cfg.PeriodSec <= 0 {
		return nil, fmt.Errorf("experiments: MultiStream needs a positive period, got %v", cfg.PeriodSec)
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = scene.EvaluationSuite()
	}
	res := &MultiStreamResult{
		PeriodSec: cfg.PeriodSec,
		PerStream: map[int][]*runtime.StreamResult{},
	}
	for _, n := range cfg.StreamCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: invalid stream count %d", n)
		}
		// Fresh shared platform and loader per concurrency level.
		sys := env.System()
		dml := loader.New(sys, loader.EvictLRR)
		specs := make([]runtime.StreamSpec, n)
		for i := 0; i < n; i++ {
			sc := scenarios[i%len(scenarios)]
			frames := env.Frames(sc)
			if cfg.MaxFrames > 0 && len(frames) > cfg.MaxFrames {
				frames = frames[:cfg.MaxFrames]
			}
			pol, err := pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
			if err != nil {
				return nil, err
			}
			specs[i] = runtime.StreamSpec{
				Name:      fmt.Sprintf("%s#%d", sc.Name, i),
				Frames:    frames,
				PeriodSec: cfg.PeriodSec,
				Policy:    pol,
			}
		}
		streams, err := runtime.Serve(sys, dml, specs)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve %d streams: %w", n, err)
		}
		res.PerStream[n] = streams
		res.Rows = append(res.Rows, summarizeServe(n, streams, dml.Stats()))
	}
	return res, nil
}

// summarizeServe reduces one concurrency level's serve results to a row.
func summarizeServe(n int, streams []*runtime.StreamResult, ls loader.Stats) MultiStreamRow {
	row := MultiStreamRow{Streams: n, Loads: ls.Loads, Evictions: ls.Evictions}
	var lats []float64
	var waitSum, iouSum, energySum float64
	success, missed, swaps := 0, 0, 0
	for _, s := range streams {
		lats = append(lats, s.Latencies()...)
		waitSum += s.QueueWaitSec()
		missed += s.MissCount()
		swaps += pipeline.SwapCount(s.Result)
		for _, rec := range s.Result.Records {
			iouSum += rec.IoU
			energySum += rec.EnergyJ
			if rec.IoU >= metrics.SuccessIoU {
				success++
			}
		}
	}
	row.Frames = len(lats)
	if row.Frames > 0 {
		f := float64(row.Frames)
		row.AvgIoU = iouSum / f
		row.SuccessRate = float64(success) / f
		row.AvgEnergyJ = energySum / f
		row.DeadlineMissRate = float64(missed) / f
		row.AvgQueueWaitSec = waitSum / f
	}
	row.Latency = metrics.Latencies(lats)
	row.SwapsPerStream = float64(swaps) / float64(n)
	return row
}

// Row returns the sweep row for a stream count.
func (r *MultiStreamResult) Row(streams int) (MultiStreamRow, bool) {
	for _, row := range r.Rows {
		if row.Streams == streams {
			return row, true
		}
	}
	return MultiStreamRow{}, false
}

// Report renders the sweep as a table.
func (r *MultiStreamResult) Report() string {
	rows := [][]string{{"Streams", "IoU", "Success", "Lat p50 (s)", "Lat p99 (s)",
		"Miss Rate", "Queue Wait (s)", "Swaps/Stream", "Loads", "Evictions"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Streams),
			fmt.Sprintf("%.3f", row.AvgIoU),
			fmt.Sprintf("%.1f%%", row.SuccessRate*100),
			fmt.Sprintf("%.3f", row.Latency.P50),
			fmt.Sprintf("%.3f", row.Latency.P99),
			fmt.Sprintf("%.1f%%", row.DeadlineMissRate*100),
			fmt.Sprintf("%.4f", row.AvgQueueWaitSec),
			fmt.Sprintf("%.1f", row.SwapsPerStream),
			fmt.Sprintf("%d", row.Loads),
			fmt.Sprintf("%d", row.Evictions),
		})
	}
	return textplot.Table(fmt.Sprintf(
		"Multi-stream serving: SHIFT streams sharing one platform at %.0f fps", 1/r.PeriodSec), rows)
}
