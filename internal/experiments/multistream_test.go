package experiments

import (
	gort "runtime"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/scene"
)

// quickMultiStreamConfig keeps the sweep small for tests.
func quickMultiStreamConfig(counts ...int) MultiStreamConfig {
	return MultiStreamConfig{
		StreamCounts: counts,
		PeriodSec:    0.1,
		MaxFrames:    200,
	}
}

func TestMultiStreamSingleStreamMatchesSoloRun(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiStream(env, quickMultiStreamConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	streams := res.PerStream[1]
	if len(streams) != 1 {
		t.Fatalf("%d streams for count 1", len(streams))
	}
	// One stream on the serving event loop must be bit-identical to the
	// solo pipeline over the same frames: queueing cannot exist without a
	// second stream.
	sc := scene.EvaluationSuite()[0]
	frames := env.Frames(sc)[:200]
	shift, err := pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	solo, err := shift.Run(sc.Name, frames)
	if err != nil {
		t.Fatal(err)
	}
	got := streams[0].Result.Records
	if len(got) != len(solo.Records) {
		t.Fatalf("served %d records, solo %d", len(got), len(solo.Records))
	}
	for i := range solo.Records {
		if got[i] != solo.Records[i] {
			t.Fatalf("record %d differs:\nserved %+v\nsolo   %+v", i, got[i], solo.Records[i])
		}
	}
	row, _ := res.Row(1)
	if row.AvgQueueWaitSec != 0 {
		t.Fatalf("a lone stream paid %.6fs of queueing", row.AvgQueueWaitSec)
	}
}

func TestMultiStreamContentionGrowsWithStreams(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiStream(env, quickMultiStreamConfig(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	one, ok1 := res.Row(1)
	four, ok4 := res.Row(4)
	if !ok1 || !ok4 {
		t.Fatal("missing sweep rows")
	}
	if one.Frames != 200 || four.Frames != 4*200 {
		t.Fatalf("frame totals %d/%d, want 200/800", one.Frames, four.Frames)
	}
	if four.AvgQueueWaitSec <= 0 {
		t.Fatal("four contending streams paid no queueing delay")
	}
	if four.Latency.P99 < four.Latency.P50 || four.Latency.Max < four.Latency.P99 {
		t.Fatalf("latency profile not ordered: %+v", four.Latency)
	}
	if four.Latency.P99 < one.Latency.P99 {
		t.Fatalf("tail latency shrank under contention: %v vs %v",
			four.Latency.P99, one.Latency.P99)
	}
	for _, row := range res.Rows {
		if row.DeadlineMissRate < 0 || row.DeadlineMissRate > 1 {
			t.Fatalf("miss rate %v out of range", row.DeadlineMissRate)
		}
	}
	if res.Report() == "" {
		t.Fatal("empty report")
	}
}

// TestMultiStreamDeterministicAcrossWorkerCounts pins the acceptance
// criterion: the sweep's results cannot depend on the host's core count.
func TestMultiStreamDeterministicAcrossWorkerCounts(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	run := func() *MultiStreamResult {
		res, err := MultiStream(env, quickMultiStreamConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := gort.GOMAXPROCS(1)
	a := run()
	gort.GOMAXPROCS(8)
	b := run()
	gort.GOMAXPROCS(prev)
	for si := range a.PerStream[3] {
		ra, rb := a.PerStream[3][si], b.PerStream[3][si]
		for i := range ra.Result.Records {
			if ra.Result.Records[i] != rb.Result.Records[i] {
				t.Fatalf("stream %d record %d differs across worker counts", si, i)
			}
			if ra.Timings[i] != rb.Timings[i] {
				t.Fatalf("stream %d timing %d differs across worker counts", si, i)
			}
		}
	}
	if a.Rows[0] != b.Rows[0] {
		t.Fatalf("sweep rows differ across worker counts:\n%+v\n%+v", a.Rows[0], b.Rows[0])
	}
}

func TestMultiStreamValidation(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiStream(env, MultiStreamConfig{StreamCounts: []int{1}, PeriodSec: 0}); err == nil {
		t.Fatal("zero period should fail")
	}
	if _, err := MultiStream(env, MultiStreamConfig{StreamCounts: []int{0}, PeriodSec: 0.1}); err == nil {
		t.Fatal("zero stream count should fail")
	}
}
