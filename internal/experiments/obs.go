package experiments

import (
	"fmt"
	"io"

	"repro/internal/accel"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/textplot"
	"repro/internal/zoo"
)

// ObsSweepConfig parameterizes the flight-recorder experiment: one fleet
// serving cell (same construction as a FleetSweep cell) run twice — once
// detached, once with the recorder attached — so the report can both show
// where frame latency went and certify the recorder changed nothing.
type ObsSweepConfig struct {
	// Devices is the fleet size (default 4).
	Devices int
	// Placement is the dispatch policy (default residency-affinity).
	Placement string
	// Scales cycles per-device accel time scales (default {1, 1.25}).
	Scales []float64
	// Workload is the offered stream trace (default
	// fleet.DefaultWorkloadConfig).
	Workload fleet.WorkloadConfig
	// Admission gates per-device concurrency; nil means
	// fleet.DefaultAdmission.
	Admission *fleet.Admission
	// PoolMB sizes each device's SoC engine arena in MB (default 1300, the
	// memory-tight tier where swap stalls actually show up in the tail).
	PoolMB int64
	// PremiumFraction is the seeded premium-tier fraction (default 1/3,
	// negative disables), identical to FleetSweep's tiering.
	PremiumFraction float64
	// Regions shards the event loop (0/1: single region). The recorded span
	// stream is bit-identical at every count.
	Regions int
}

// DefaultObsSweepConfig returns the standard recorder cell.
func DefaultObsSweepConfig() ObsSweepConfig {
	adm := fleet.DefaultAdmission()
	return ObsSweepConfig{
		Devices:         4,
		Placement:       "residency-affinity",
		Scales:          []float64{1, 1.25},
		Workload:        fleet.DefaultWorkloadConfig(),
		Admission:       &adm,
		PoolMB:          1300,
		PremiumFraction: 1.0 / 3,
	}
}

// ObsSweepResult is the recorder experiment's outcome.
type ObsSweepResult struct {
	Devices   int
	Placement string
	// Summary is the attached run's serving summary; DetachedEqual reports
	// whether the detached control run summarized identically — the
	// zero-perturbation certificate.
	Summary       fleet.Summary
	DetachedEqual bool
	// Attribution is the per-frame latency decomposition;
	// Attribution.SwapStallShareOfP99 is the headline.
	Attribution obs.Attribution
	// Spans counts recorded spans. Recorder exposes the full recorder for
	// trace export and timelines.
	Spans    int
	Recorder *obs.Recorder
}

// ObsSweep serves one seeded fleet cell with the flight recorder attached,
// re-serves it detached, and reduces the span stream to the latency
// attribution. The two runs must summarize bit-identically — the recorder
// observes the event loop, it never steers it.
func ObsSweep(env *Env, cfg ObsSweepConfig) (*ObsSweepResult, error) {
	def := DefaultObsSweepConfig()
	if cfg.Devices == 0 {
		cfg.Devices = def.Devices
	}
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("experiments: invalid device count %d", cfg.Devices)
	}
	if cfg.Placement == "" {
		cfg.Placement = def.Placement
	}
	if len(cfg.Scales) == 0 {
		cfg.Scales = def.Scales
	}
	if cfg.Workload.Streams == 0 {
		cfg.Workload = def.Workload
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	if cfg.PoolMB == 0 {
		cfg.PoolMB = def.PoolMB
	}
	if cfg.PremiumFraction == 0 {
		cfg.PremiumFraction = def.PremiumFraction
	}
	rec := obs.NewRecorder()
	attached, err := ObsCell(env, cfg, rec)
	if err != nil {
		return nil, fmt.Errorf("experiments: obs attached run: %w", err)
	}
	detached, err := ObsCell(env, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: obs detached run: %w", err)
	}
	res := &ObsSweepResult{
		Devices:       cfg.Devices,
		Placement:     cfg.Placement,
		Summary:       fleet.Summarize(attached),
		Attribution:   rec.Attribution(),
		Spans:         len(rec.Spans()),
		Recorder:      rec,
		DetachedEqual: fleet.Summarize(attached) == fleet.Summarize(detached),
	}
	return res, nil
}

// ObsCell builds and serves one fleet cell exactly the way FleetSweep does,
// with rec attached (nil: detached control). Exported so the recorder
// overhead benchmark can time the two paths separately; cfg must be fully
// populated (use DefaultObsSweepConfig).
func ObsCell(env *Env, cfg ObsSweepConfig, rec *obs.Recorder) (*fleet.Result, error) {
	return obsCell(env, cfg, rec, nil)
}

// obsCell is ObsCell with an optional swap-prediction config — the shared
// cell builder behind ObsSweep (pf always nil) and PrefetchSweep (the same
// cell with the predictor on, so before/after attributions are comparable).
func obsCell(env *Env, cfg ObsSweepConfig, rec *obs.Recorder, pf *predict.Config) (*fleet.Result, error) {
	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, cfg.PoolMB*accel.MB)
		return sys
	}
	policy := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, pipeline.DefaultOptions())
	}
	premiumOpts := pipeline.DefaultOptions()
	premiumOpts.Sched.Knobs = sched.Knobs{Accuracy: 3, Energy: 0.2, Latency: 0.2}
	premium := func(sys *zoo.System) (runtime.Policy, error) {
		return pipeline.NewPolicy(sys, env.Ch, env.Graph, premiumOpts)
	}
	place, err := fleet.PlacementByName(cfg.Placement)
	if err != nil {
		return nil, err
	}
	devices := make([]fleet.DeviceConfig, cfg.Devices)
	for i := range devices {
		devices[i] = fleet.DeviceConfig{
			Name:  fmt.Sprintf("edge%02d", i),
			Scale: cfg.Scales[i%len(cfg.Scales)],
		}
	}
	fl, err := fleet.New(fleet.Config{
		Seed:      env.Seed,
		Devices:   devices,
		Placement: place,
		Admission: *cfg.Admission,
		NewSystem: newSystem,
		Regions:   cfg.Regions,
		Recorder:  rec,
		Prefetch:  pf,
	})
	if err != nil {
		return nil, err
	}
	reqs, err := fleet.GenerateWorkload(cfg.Workload, env.Frames, policy)
	if err != nil {
		return nil, err
	}
	tr := rng.New(cfg.Workload.Seed).Fork("fleet/tiers")
	for i := range reqs {
		if tr.Float64() < cfg.PremiumFraction {
			reqs[i].Scenario = "premium/" + reqs[i].Scenario
			reqs[i].Policy = premium
			reqs[i].PeriodSec = cfg.Workload.PeriodSec * 2.5
			reqs[i].Frames = reqs[i].Frames[:len(reqs[i].Frames)*2/5]
		}
	}
	return fl.Run(reqs)
}

// WriteChromeTrace exports the attached run's span stream as Chrome
// trace-event JSON (chrome://tracing, Perfetto).
func (r *ObsSweepResult) WriteChromeTrace(w io.Writer) error {
	return r.Recorder.WriteChromeTrace(w)
}

// Report renders the attribution block, the per-device timeline and the
// metrics registry.
func (r *ObsSweepResult) Report() string {
	a := r.Attribution
	head := fmt.Sprintf(
		"Flight recorder: %d devices, %s | %d spans over %d frames | recorder perturbation: %s",
		r.Devices, r.Placement, r.Spans, a.Frames, map[bool]string{true: "none (bit-identical)", false: "DETECTED"}[r.DetachedEqual])
	rows := [][]string{
		{"Component", "Share of total", "Share of p99 tail"},
		{"queue (admission + backlog)", fmt.Sprintf("%.1f%%", a.QueueShare*100), fmt.Sprintf("%.1f%%", a.QueueShareOfP99*100)},
		{"swap stall (engine loads)", fmt.Sprintf("%.1f%%", a.SwapShare*100), fmt.Sprintf("%.1f%%", a.SwapStallShareOfP99*100)},
		{"exec (inference + overhead)", fmt.Sprintf("%.1f%%", a.ExecShare*100), fmt.Sprintf("%.1f%%", a.ExecShareOfP99*100)},
		{"interference (proc queueing)", fmt.Sprintf("%.1f%%", a.InterferenceShare*100), fmt.Sprintf("%.1f%%", a.InterferenceShareOfP99*100)},
	}
	out := head + "\n\n" + textplot.Table(
		fmt.Sprintf("Latency attribution: p99 %.3fs over %d tail frames (swap-stall share of p99: %.1f%%)",
			a.P99Sec, a.TailFrames, a.SwapStallShareOfP99*100), rows)
	if tl := r.Recorder.Timeline(72); tl != "" {
		out += "\n" + tl
	}
	out += "\n" + r.Recorder.Registry().Render()
	return out
}
