package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/scene"
)

// tableIIISequential is the original sequential method×scenario loop,
// retained as the specification the parallel TableIII is tested against.
func tableIIISequential(env *Env, scenarios []*scene.Scenario) (*TableIIIResult, error) {
	if scenarios == nil {
		scenarios = scene.EvaluationSuite()
	}
	res := &TableIIIResult{PerScenario: map[string]map[string]*pipeline.Result{}}
	for _, mf := range tableIIIMethods() {
		var perScenario []metrics.Summary
		res.PerScenario[mf.name] = map[string]*pipeline.Result{}
		for _, sc := range scenarios {
			runner, err := mf.build(env)
			if err != nil {
				return nil, err
			}
			r, err := runner.Run(sc.Name, env.Frames(sc))
			if err != nil {
				return nil, err
			}
			r.Method = mf.name
			res.PerScenario[mf.name][sc.Name] = r
			s := metrics.Summarize(r)
			s.Method = mf.name
			perScenario = append(perScenario, s)
		}
		combined, err := metrics.Combine(perScenario)
		if err != nil {
			return nil, err
		}
		res.Summaries = append(res.Summaries, combined)
	}
	return res, nil
}

func TestTableIIIParallelMatchesSequential(t *testing.T) {
	env := testEnv(t)
	scenarios := []*scene.Scenario{scene.Scenario2(), scene.Scenario3()}
	got, err := TableIII(env, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tableIIISequential(env, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Summaries, want.Summaries) {
		t.Fatalf("parallel summaries differ from sequential:\n%+v\nvs\n%+v", got.Summaries, want.Summaries)
	}
	if !reflect.DeepEqual(got.PerScenario, want.PerScenario) {
		t.Fatal("parallel per-scenario records differ from sequential")
	}
	// Determinism: a second parallel run must be identical.
	again, err := TableIII(env, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Summaries, again.Summaries) {
		t.Fatal("TableIII is not deterministic across runs")
	}
}

// figure5Sequential runs the sweep grid one configuration at a time.
func figure5Sequential(env *Env, cfg SweepConfig) (*Figure5Result, error) {
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = []*scene.Scenario{scene.Scenario2(), scene.Scenario4()}
	}
	for _, sc := range scenarios {
		env.Frames(sc)
	}
	graphs, err := buildSweepGraphs(env, cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Correlations: map[string][3]float64{}}
	for _, accK := range cfg.AccKnobs {
		for _, enK := range cfg.EnergyKnobs {
			for _, latK := range cfg.LatencyKnobs {
				for _, thr := range cfg.AccThresholds {
					for _, mom := range cfg.Momentums {
						for _, dt := range cfg.DistThresholds {
							pt, err := runSweepPoint(env, graphs[dt], scenarios, SweepPoint{
								AccKnob: accK, EnergyKnob: enK, LatencyKnob: latK,
								AccThreshold: thr, Momentum: mom, DistThreshold: dt,
							})
							if err != nil {
								return nil, err
							}
							res.Points = append(res.Points, pt)
						}
					}
				}
			}
		}
	}
	res.computeCorrelations()
	return res, nil
}

func TestFigure5ParallelMatchesSequential(t *testing.T) {
	env := testEnv(t)
	cfg := QuickSweepConfig()
	cfg.Scenarios = []*scene.Scenario{scene.Scenario3()}
	got, err := Figure5(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := figure5Sequential(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("parallel sweep points differ from sequential:\n%+v\nvs\n%+v", got.Points, want.Points)
	}
	if !reflect.DeepEqual(got.Correlations, want.Correlations) {
		t.Fatal("parallel correlations differ from sequential")
	}
}

// skipComparisonSequential is the original sequential comparison loop.
func skipComparisonSequential(env *Env, scenarios []*scene.Scenario, skips []int) (*SkipComparisonResult, error) {
	if scenarios == nil {
		scenarios = []*scene.Scenario{scene.Scenario1(), scene.Scenario2()}
	}
	if skips == nil {
		skips = []int{1, 2, 4, 8, 16}
	}
	res := &SkipComparisonResult{}
	for _, skip := range skips {
		var perScenario []metrics.Summary
		for _, sc := range scenarios {
			runner, err := baseline.NewFrameSkip(env.System(), detmodel.YoloV7, "gpu", skip)
			if err != nil {
				return nil, err
			}
			r, err := runner.Run(sc.Name, env.Frames(sc))
			if err != nil {
				return nil, err
			}
			s := metrics.Summarize(r)
			s.Method = fmt.Sprintf("skip=%d", skip)
			perScenario = append(perScenario, s)
		}
		combined, err := metrics.Combine(perScenario)
		if err != nil {
			return nil, err
		}
		res.SkipPoints = append(res.SkipPoints, SkipPoint{Skip: skip, Summary: combined})
	}
	var shiftPerScenario []metrics.Summary
	for _, sc := range scenarios {
		shift, err := pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
		if err != nil {
			return nil, err
		}
		r, err := shift.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return nil, err
		}
		s := metrics.Summarize(r)
		s.Method = "SHIFT"
		shiftPerScenario = append(shiftPerScenario, s)
	}
	combined, err := metrics.Combine(shiftPerScenario)
	if err != nil {
		return nil, err
	}
	res.SHIFT = combined
	return res, nil
}

func TestSkipComparisonParallelMatchesSequential(t *testing.T) {
	env := testEnv(t)
	scenarios := []*scene.Scenario{scene.Scenario2()}
	skips := []int{1, 4}
	got, err := SkipComparison(env, scenarios, skips)
	if err != nil {
		t.Fatal(err)
	}
	want, err := skipComparisonSequential(env, scenarios, skips)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel skip comparison differs from sequential:\n%+v\nvs\n%+v", got, want)
	}
}
