package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// dominates reports whether a is at least as good as b on all three
// objectives (higher IoU, lower time, lower energy) and strictly better on
// at least one.
func dominates(a, b SweepPoint) bool {
	if a.MeanIoU < b.MeanIoU || a.MeanTimeSec > b.MeanTimeSec || a.MeanEnergyJ > b.MeanEnergyJ {
		return false
	}
	return a.MeanIoU > b.MeanIoU || a.MeanTimeSec < b.MeanTimeSec || a.MeanEnergyJ < b.MeanEnergyJ
}

// ParetoFront returns the non-dominated subset of sweep points under the
// three-way objective (maximize accuracy, minimize time and energy), sorted
// by descending accuracy. This extends the paper's sensitivity analysis into
// an operating-point catalogue: a deployment should only ever run a
// configuration on this front.
func ParetoFront(points []SweepPoint) []SweepPoint {
	var front []SweepPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].MeanIoU != front[j].MeanIoU {
			return front[i].MeanIoU > front[j].MeanIoU
		}
		if front[i].MeanEnergyJ != front[j].MeanEnergyJ {
			return front[i].MeanEnergyJ < front[j].MeanEnergyJ
		}
		return front[i].MeanTimeSec < front[j].MeanTimeSec
	})
	return dedupePoints(front)
}

// dedupePoints drops configurations with identical outcomes (distinct knob
// settings frequently collapse onto one schedule).
func dedupePoints(points []SweepPoint) []SweepPoint {
	var out []SweepPoint
	seen := map[string]bool{}
	for _, p := range points {
		key := fmt.Sprintf("%.6f/%.6f/%.6f", p.MeanIoU, p.MeanTimeSec, p.MeanEnergyJ)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}

// ParetoReport renders the operating-point catalogue.
func ParetoReport(points []SweepPoint) string {
	front := ParetoFront(points)
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto front: %d of %d configurations are non-dominated\n",
		len(front), len(points))
	fmt.Fprintf(&b, "%10s %10s %12s   knobs(acc,en,lat) thr mom dist\n", "IoU", "time (s)", "energy (J)")
	for _, p := range front {
		fmt.Fprintf(&b, "%10.3f %10.4f %12.3f   (%.2f,%.2f,%.2f) %.2f %d %.2f\n",
			p.MeanIoU, p.MeanTimeSec, p.MeanEnergyJ,
			p.AccKnob, p.EnergyKnob, p.LatencyKnob, p.AccThreshold, p.Momentum, p.DistThreshold)
	}
	return b.String()
}
