package experiments

import (
	"strings"
	"testing"
)

func pt(iou, time, energy float64) SweepPoint {
	return SweepPoint{MeanIoU: iou, MeanTimeSec: time, MeanEnergyJ: energy}
}

func TestDominates(t *testing.T) {
	a := pt(0.6, 0.05, 0.3)
	cases := []struct {
		b    SweepPoint
		want bool
	}{
		{pt(0.5, 0.06, 0.4), true},  // worse on all
		{pt(0.6, 0.05, 0.3), false}, // equal: no strict improvement
		{pt(0.7, 0.04, 0.2), false}, // better on all: a cannot dominate
		{pt(0.7, 0.06, 0.4), false}, // trade-off
		{pt(0.6, 0.06, 0.3), true},  // equal IoU/energy, slower
	}
	for i, c := range cases {
		if got := dominates(a, c.b); got != c.want {
			t.Errorf("case %d: dominates = %v, want %v", i, got, c.want)
		}
	}
}

func TestParetoFrontProperties(t *testing.T) {
	points := []SweepPoint{
		pt(0.7, 0.10, 1.0), // accurate but costly — on the front
		pt(0.5, 0.03, 0.2), // frugal — on the front
		pt(0.6, 0.05, 0.5), // middle trade-off — on the front
		pt(0.5, 0.05, 0.5), // dominated by the middle point
		pt(0.4, 0.12, 1.2), // dominated by everything
	}
	front := ParetoFront(points)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(front), front)
	}
	// No front member may dominate another.
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i], front[j]) {
				t.Fatalf("front member %d dominates %d", i, j)
			}
		}
	}
	// Sorted by descending accuracy.
	for i := 1; i < len(front); i++ {
		if front[i].MeanIoU > front[i-1].MeanIoU {
			t.Fatal("front not sorted by accuracy")
		}
	}
	// Every dropped point is dominated by some front member.
	for _, p := range points {
		onFront := false
		for _, f := range front {
			if f == p {
				onFront = true
			}
		}
		if onFront {
			continue
		}
		coveredBy := false
		for _, f := range front {
			if dominates(f, p) {
				coveredBy = true
			}
		}
		if !coveredBy {
			t.Fatalf("dropped point %+v not dominated by any front member", p)
		}
	}
}

func TestParetoFrontDedupes(t *testing.T) {
	points := []SweepPoint{
		{AccKnob: 1, MeanIoU: 0.5, MeanTimeSec: 0.05, MeanEnergyJ: 0.3},
		{AccKnob: 2, MeanIoU: 0.5, MeanTimeSec: 0.05, MeanEnergyJ: 0.3},
	}
	if got := len(ParetoFront(points)); got != 1 {
		t.Fatalf("duplicate outcomes kept: %d", got)
	}
}

func TestParetoFrontEmptyAndSingle(t *testing.T) {
	if got := ParetoFront(nil); len(got) != 0 {
		t.Fatal("empty input should give empty front")
	}
	one := []SweepPoint{pt(0.5, 0.1, 0.5)}
	if got := ParetoFront(one); len(got) != 1 {
		t.Fatal("single point must be on the front")
	}
}

func TestParetoReport(t *testing.T) {
	out := ParetoReport([]SweepPoint{pt(0.6, 0.05, 0.3), pt(0.4, 0.09, 0.9)})
	if !strings.Contains(out, "Pareto front: 1 of 2") {
		t.Fatalf("report: %q", out)
	}
}

func TestParetoOnRealSweep(t *testing.T) {
	env := testEnv(t)
	cfg := QuickSweepConfig()
	res, err := Figure5(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(res.Points)
	if len(front) == 0 || len(front) > len(res.Points) {
		t.Fatalf("degenerate front: %d of %d", len(front), len(res.Points))
	}
}
