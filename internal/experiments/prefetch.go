package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// PrefetchSweepConfig parameterizes the predictive-prefetch experiment: one
// miss-heavy, memory-tight recorder cell (same construction as the ObsSweep
// cell) run twice — once with the TAGE swap predictor off (the before run,
// today's serving path bit-for-bit) and once with it on — so the report can
// put the predictor's SupraX-style coverage/accuracy/timeliness next to the
// swap-stall share of the p99 tail it is supposed to shrink.
type PrefetchSweepConfig struct {
	// Cell is the fleet serving cell, shared by both runs. Zero-valued
	// fields default via DefaultPrefetchSweepConfig: a tighter pool
	// (1000 MB shared across gpu+dla) and the oscillate scenario, so engine
	// loads miss periodically and swap stalls own a visible share of the
	// tail without the tail drowning in queue backlog.
	Cell ObsSweepConfig
	// Prefetch is the predictor configuration for the on run (zero value:
	// predict.DefaultConfig).
	Prefetch predict.Config
}

// DefaultPrefetchSweepConfig returns the standard miss-heavy prefetch cell.
func DefaultPrefetchSweepConfig() PrefetchSweepConfig {
	cell := DefaultObsSweepConfig()
	cell.Devices = 2
	cell.Placement = "round-robin"
	cell.PoolMB = 1000
	cell.Workload.Streams = 12
	cell.Workload.RatePerSec = 0.05
	cell.Workload.PeriodSec = 0.3
	cell.Workload.MinFrames = 240
	cell.Workload.MaxFrames = 240
	cell.Workload.Scenarios = []*scene.Scenario{scene.ScenarioOscillate()}
	return PrefetchSweepConfig{Cell: cell, Prefetch: predict.DefaultConfig()}
}

// PrefetchSweepResult is the prefetch experiment's outcome: the off and on
// runs' latency attributions plus the on run's aggregated predictor stats.
type PrefetchSweepResult struct {
	Devices   int
	Placement string
	PoolMB    int64
	// Off and On are the latency attributions of the predictor-off and
	// predictor-on runs; Off.SwapStallShareOfP99 vs On.SwapStallShareOfP99
	// is the headline contrast.
	Off, On obs.Attribution
	// OffSummary and OnSummary are the two runs' serving summaries. The
	// predictor never steers decisions, but prefetch does change frame
	// latency (that is the point), so the summaries differ in timing while
	// serving counts stay comparable.
	OffSummary, OnSummary fleet.Summary
	// Stats aggregates every departed session's predictor counters from the
	// on run: coverage, accuracy, timeliness and the stall seconds hidden.
	Stats predict.Stats
	// OffRecorder and OnRecorder expose the two span streams for trace
	// export and registry inspection (prefetch_issued / prefetch_hits).
	OffRecorder, OnRecorder *obs.Recorder
}

// PrefetchSweep serves the cell twice — predictor off, then on — with the
// flight recorder attached to both, and reduces each span stream to its
// latency attribution. The off run is the committed serving path bit-for-bit
// (Config.Prefetch nil takes the identical code path as a build without the
// predictor); the on run overlaps predicted engine loads with compute and
// pre-warms admission targets, so its swap-stall share of the p99 tail is
// the number the predictor is judged on.
func PrefetchSweep(env *Env, cfg PrefetchSweepConfig) (*PrefetchSweepResult, error) {
	def := DefaultPrefetchSweepConfig()
	if cfg.Cell.Devices == 0 {
		cfg.Cell.Devices = def.Cell.Devices
	}
	if cfg.Cell.Devices < 0 {
		return nil, fmt.Errorf("experiments: invalid device count %d", cfg.Cell.Devices)
	}
	if cfg.Cell.Placement == "" {
		cfg.Cell.Placement = def.Cell.Placement
	}
	if len(cfg.Cell.Scales) == 0 {
		cfg.Cell.Scales = def.Cell.Scales
	}
	if cfg.Cell.Workload.Streams == 0 {
		cfg.Cell.Workload = def.Cell.Workload
	}
	if cfg.Cell.Admission == nil {
		cfg.Cell.Admission = def.Cell.Admission
	}
	if cfg.Cell.PoolMB == 0 {
		cfg.Cell.PoolMB = def.Cell.PoolMB
	}
	if cfg.Cell.PremiumFraction == 0 {
		cfg.Cell.PremiumFraction = def.Cell.PremiumFraction
	}
	pf := cfg.Prefetch
	offRec := obs.NewRecorder()
	offRes, err := obsCell(env, cfg.Cell, offRec, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: prefetch off run: %w", err)
	}
	onRec := obs.NewRecorder()
	onRes, err := obsCell(env, cfg.Cell, onRec, &pf)
	if err != nil {
		return nil, fmt.Errorf("experiments: prefetch on run: %w", err)
	}
	return &PrefetchSweepResult{
		Devices:     cfg.Cell.Devices,
		Placement:   cfg.Cell.Placement,
		PoolMB:      cfg.Cell.PoolMB,
		Off:         offRec.Attribution(),
		On:          onRec.Attribution(),
		OffSummary:  fleet.Summarize(offRes),
		OnSummary:   fleet.Summarize(onRes),
		Stats:       onRes.Prefetch,
		OffRecorder: offRec,
		OnRecorder:  onRec,
	}, nil
}

// Report renders the SupraX-style predictor scorecard and the before/after
// latency attribution contrast.
func (r *PrefetchSweepResult) Report() string {
	s := r.Stats
	head := fmt.Sprintf(
		"Predictive prefetch: %d devices, %s, %d MB pools | %d swaps, %d prefetches issued",
		r.Devices, r.Placement, r.PoolMB, s.Swaps, s.Issued)
	score := [][]string{
		{"Metric", "Value", "Definition"},
		{"coverage", fmt.Sprintf("%.1f%%", s.Coverage()*100), "swaps with a confident prediction"},
		{"accuracy", fmt.Sprintf("%.1f%%", s.Accuracy()*100), "confident predictions that were right"},
		{"timeliness", fmt.Sprintf("%.1f%%", s.Timeliness()*100), "hits fully loaded by demand time"},
		{"stall saved", fmt.Sprintf("%.2fs", s.StallSavedSec), "load seconds hidden by overlap"},
		{"stall residual", fmt.Sprintf("%.2fs", s.StallResidualSec), "late-hit stall still paid"},
	}
	off, on := r.Off, r.On
	contrast := [][]string{
		{"Metric", "Prefetch off", "Prefetch on"},
		{"swap-stall share of p99", fmt.Sprintf("%.1f%%", off.SwapStallShareOfP99*100), fmt.Sprintf("%.1f%%", on.SwapStallShareOfP99*100)},
		{"swap-stall share overall", fmt.Sprintf("%.1f%%", off.SwapShare*100), fmt.Sprintf("%.1f%%", on.SwapShare*100)},
		{"p99 latency", fmt.Sprintf("%.3fs", off.P99Sec), fmt.Sprintf("%.3fs", on.P99Sec)},
		{"deadline miss rate", fmt.Sprintf("%.1f%%", r.OffSummary.DeadlineMissRate*100), fmt.Sprintf("%.1f%%", r.OnSummary.DeadlineMissRate*100)},
	}
	return head + "\n\n" +
		textplot.Table("Predictor scorecard (SupraX-style)", score) + "\n" +
		textplot.Table(fmt.Sprintf("Tail attribution over %d frames", on.Frames), contrast)
}
