package experiments

import (
	"strings"
	"testing"
)

// TestPrefetchSweep pins the experiment's acceptance contract: the predictor
// actually predicts on the miss-heavy cell (nonzero coverage and accuracy,
// prefetches issued and hit) and the swap-stall share of the p99 tail is
// strictly lower with prefetch on than off.
func TestPrefetchSweep(t *testing.T) {
	env := testEnv(t)
	res, err := PrefetchSweep(env, PrefetchSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	t.Logf("swaps=%d predicted=%d correct=%d issued=%d full=%d late=%d saveds=%.2f residual=%.2f",
		s.Swaps, s.Predicted, s.Correct, s.Issued, s.FullHits, s.LateHits,
		s.StallSavedSec, s.StallResidualSec)
	t.Logf("coverage=%.3f accuracy=%.3f timeliness=%.3f", s.Coverage(), s.Accuracy(), s.Timeliness())
	t.Logf("swap-stall share of p99: off=%.4f on=%.4f | p99 off=%.3fs on=%.3fs",
		res.Off.SwapStallShareOfP99, res.On.SwapStallShareOfP99, res.Off.P99Sec, res.On.P99Sec)
	if s.Swaps == 0 {
		t.Fatal("cell produced no swaps — not miss-heavy")
	}
	if s.Predicted == 0 || s.Correct == 0 {
		t.Fatalf("predictor never predicted (predicted=%d correct=%d)", s.Predicted, s.Correct)
	}
	if s.Issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if s.FullHits+s.LateHits == 0 {
		t.Fatal("no prefetch hits")
	}
	if res.On.SwapStallShareOfP99 >= res.Off.SwapStallShareOfP99 {
		t.Fatalf("prefetch did not shrink the p99 swap-stall share: off=%.4f on=%.4f",
			res.Off.SwapStallShareOfP99, res.On.SwapStallShareOfP99)
	}
	// The off run with Prefetch nil takes the identical code path as a
	// build without the predictor — its registry must contain no prefetch
	// counters at all, and the on run's counters must match the predictor's
	// own accounting.
	if n := res.OffRecorder.Registry().Counter("prefetch_issued"); n != 0 {
		t.Fatalf("off run recorded %d prefetch spans", n)
	}
	if n := res.OnRecorder.Registry().Counter("prefetch_issued"); int(n) != s.Issued {
		t.Errorf("registry prefetch_issued=%d, predictor Issued=%d", n, s.Issued)
	}
	if n := res.OnRecorder.Registry().Counter("prefetch_hits"); int(n) != s.FullHits {
		t.Errorf("registry prefetch_hits=%d, predictor FullHits=%d", n, s.FullHits)
	}
	rep := res.Report()
	for _, want := range []string{"coverage", "accuracy", "timeliness", "swap-stall share of p99"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
