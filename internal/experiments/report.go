package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// PaperTableIII holds the published Table III rows for side-by-side
// reporting.
var PaperTableIII = map[string]struct {
	IoU, Time, Energy, Success, NonGPU float64
	Swaps                              int
	Pairs                              float64
}{
	"Marlin":      {0.614, 0.132, 1.201, 0.740, 0.000, 0, 1},
	"Marlin Tiny": {0.529, 0.036, 0.330, 0.640, 0.000, 0, 1},
	"SHIFT":       {0.598, 0.047, 0.262, 0.722, 0.687, 42, 4.3},
	"Oracle E":    {0.535, 0.025, 0.144, 0.760, 0.315, 94, 6.7},
	"Oracle A":    {0.657, 0.108, 1.423, 0.760, 0.449, 409, 12.3},
	"Oracle L":    {0.522, 0.025, 0.169, 0.760, 0.113, 112, 6.8},
}

// PaperTableIVIoU holds the published average-IoU column of Table IV.
var PaperTableIVIoU = map[string]float64{
	detmodel.YoloV7E6E:       0.564,
	detmodel.YoloV7X:         0.593,
	detmodel.YoloV7:          0.618,
	detmodel.YoloV7Tiny:      0.533,
	detmodel.SSDResnet50:     0.480,
	detmodel.SSDMobilenetV1:  0.452,
	detmodel.SSDMobilenetV2:  0.401,
	detmodel.SSDMobilenet320: 0.304,
}

// ComparisonReport runs the main experiments and renders a markdown
// paper-vs-measured comparison — the core of EXPERIMENTS.md. The sweep is
// omitted here because of its runtime; cmd/sweep covers Fig. 5.
func ComparisonReport(env *Env) (string, error) {
	var b strings.Builder

	t3, err := TableIII(env, nil)
	if err != nil {
		return "", err
	}
	b.WriteString("### Table III — main results (paper → measured)\n\n")
	rows := [][]string{{"Method", "IoU", "Time (s)", "Energy (J)", "Success", "Non-GPU", "Swaps", "Pairs"}}
	for _, s := range t3.Summaries {
		p, ok := PaperTableIII[s.Method]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			s.Method,
			fmt.Sprintf("%.3f → %.3f", p.IoU, s.AvgIoU),
			fmt.Sprintf("%.3f → %.3f", p.Time, s.AvgTimeSec),
			fmt.Sprintf("%.3f → %.3f", p.Energy, s.AvgEnergyJ),
			fmt.Sprintf("%.0f%% → %.1f%%", p.Success*100, s.SuccessRate*100),
			fmt.Sprintf("%.1f%% → %.1f%%", p.NonGPU*100, s.NonGPUFrac*100),
			fmt.Sprintf("%d → %d", p.Swaps, s.Swaps),
			fmt.Sprintf("%.1f → %.1f", p.Pairs, s.PairsUsed),
		})
	}
	b.WriteString(textplot.Table("", rows))

	// Headline ratios vs the single-model GPU deployment.
	shift, _ := t3.Summary("SHIFT")
	single, err := baseline.NewSingleModel(env.System(), detmodel.YoloV7, "gpu")
	if err != nil {
		return "", err
	}
	var singleSummaries []metrics.Summary
	for _, sc := range scene.EvaluationSuite() {
		r, err := single.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return "", err
		}
		s := metrics.Summarize(r)
		s.Method = "YoloV7@gpu"
		singleSummaries = append(singleSummaries, s)
	}
	sm, err := metrics.Combine(singleSummaries)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nHeadline vs YoloV7@GPU: latency %.1fx (paper 2.8x), energy %.1fx (paper 7.5x), IoU %.2fx (paper 0.97x)\n\n",
		sm.AvgTimeSec/shift.AvgTimeSec, sm.AvgEnergyJ/shift.AvgEnergyJ, shift.AvgIoU/sm.AvgIoU)

	t4, err := TableIV(env, 300)
	if err != nil {
		return "", err
	}
	b.WriteString("### Table IV — model accuracy (paper → measured)\n\n")
	rows = [][]string{{"Model", "Avg IoU", "Success"}}
	for _, row := range t4.Rows {
		rows = append(rows, []string{
			row.Model,
			fmt.Sprintf("%.3f → %.3f", PaperTableIVIoU[row.Model], row.AvgIoU),
			fmt.Sprintf("%.1f%%", row.SuccessRate*100),
		})
	}
	b.WriteString(textplot.Table("", rows))

	// Deadline extension: a live 10 fps camera (the regime the platform can
	// sustain — at 30 fps even the fastest full-accuracy pipeline overruns,
	// which is exactly why the paper optimizes latency).
	b.WriteString("\n### Live-feed deadline extension (10 fps camera, scenario 1)\n\n")
	sc := scene.Scenario1()
	shiftRes := t3.PerScenario["SHIFT"][sc.Name]
	marlinRes := t3.PerScenario["Marlin"][sc.Name]
	singleRun, err := baseline.NewSingleModel(env.System(), detmodel.YoloV7, "gpu")
	if err != nil {
		return "", err
	}
	singleRes, err := singleRun.Run(sc.Name, env.Frames(sc))
	if err != nil {
		return "", err
	}
	const period = 1.0 / 10
	for _, entry := range []struct {
		name string
		res  interface{ OnTimeRate() float64 }
	}{
		{"SHIFT", metrics.Deadline(shiftRes, period)},
		{"Marlin", metrics.Deadline(marlinRes, period)},
		{"YoloV7@gpu", metrics.Deadline(singleRes, period)},
	} {
		fmt.Fprintf(&b, "- %-12s %s\n", entry.name, entry.res)
	}
	// Multi-stream serving extension: the contention regime beyond the
	// paper's single-stream evaluation.
	ms, err := MultiStream(env, DefaultMultiStreamConfig())
	if err != nil {
		return "", err
	}
	b.WriteString("\n### Multi-stream serving extension\n\n")
	b.WriteString(ms.Report())

	return b.String(), nil
}
