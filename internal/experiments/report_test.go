package experiments

import (
	"strings"
	"testing"
)

func TestComparisonReportComplete(t *testing.T) {
	env := testEnv(t)
	out, err := ComparisonReport(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table III", "Table IV", "Headline vs YoloV7@GPU",
		"SHIFT", "Marlin", "Oracle E", "Oracle A", "Oracle L",
		"deadline extension",
		"YoloV7-E6E", "SSD-MobilenetV2-320",
		"Multi-stream serving", "Lat p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every paper row renders a "paper -> measured" pair.
	if strings.Count(out, "→") < 20 {
		t.Fatalf("report has too few comparison cells:\n%s", out)
	}
}
