package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/detmodel"
	"repro/internal/fleet"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// ScaleSweep measures the simulator itself: how fast the fleet event loop
// advances virtual time at production scale. Each cell serves a day-long
// diurnal trace on an N-device fleet and reports wall-clock events/second,
// comparing the legacy O(devices × sessions) rescan against the indexed
// event heap, and single-region against sharded-region runs — all
// bit-identical in simulated outcomes, differing only in wall clock. The
// flagship cell is the ROADMAP's 1 000-device / 100 000-stream fleet.

// ScaleSweepCell is one fleet-scale configuration.
type ScaleSweepCell struct {
	// Devices and Streams size the fleet and the offered trace.
	Devices int
	Streams int
	// Regions shards the event loop (0/1: single region); LegacyScan pins
	// the pre-heap rescan selector as the baseline.
	Regions    int
	LegacyScan bool
	// SpanSec overrides the config's trace span for this cell (0: default).
	// The small reference cells compress the day into an hour so the fleet
	// saturates and the per-event selection cost dominates.
	SpanSec float64
}

// ScaleSweepConfig parameterizes the scale sweep.
type ScaleSweepConfig struct {
	// Cells lists the fleet scales measured (default: a saturated
	// 100-device pair — legacy scan vs heap — plus the 1 000-device /
	// 100 000-stream flagship at 1 and 8 regions).
	Cells []ScaleSweepCell
	// SpanSec is the trace length in seconds (default 86 400 — one day).
	SpanSec float64
	// DiurnalAmp shapes the day/night swing: base×(1 + amp·sin(2πt/span)),
	// one full cycle over the span (default 0.85). The base rate is
	// Streams/SpanSec, so the whole trace always fits the span.
	DiurnalAmp float64
	// PeriodSec is the camera frame period (default 1 — a monitoring rate,
	// not the 10 fps serving benchmarks: scale cells measure loop overhead,
	// not frame compute).
	PeriodSec float64
	// MinFrames/MaxFrames bound stream lengths (defaults 40/120).
	MinFrames, MaxFrames int
	// Admission gates per-device concurrency; nil means 3 streams/device
	// with an unbounded queue (every offered stream is eventually served).
	Admission *fleet.Admission
	// Seed drives workload generation and device jitter (0: env.Seed).
	Seed uint64
}

// DefaultScaleSweepConfig returns the standard grid.
func DefaultScaleSweepConfig() ScaleSweepConfig {
	adm := fleet.Admission{PerDeviceStreams: 3, QueueLimit: -1}
	return ScaleSweepConfig{
		Cells: []ScaleSweepCell{
			{Devices: 100, Streams: 10_000, SpanSec: 3600, LegacyScan: true},
			{Devices: 100, Streams: 10_000, SpanSec: 3600},
			{Devices: 1000, Streams: 100_000},
			{Devices: 1000, Streams: 100_000, Regions: 8},
		},
		SpanSec:    86_400,
		DiurnalAmp: 0.85,
		PeriodSec:  1,
		MinFrames:  40,
		MaxFrames:  120,
		Admission:  &adm,
	}
}

// ScaleSweepRow is one measured cell. The simulated columns (Served,
// Frames, Events, Horizon, latency profile) are deterministic per seed and
// identical across selector variants of the same (Devices, Streams, Span);
// WallSec and EventsPerSec are wall-clock measurements and drift run to
// run.
type ScaleSweepRow struct {
	Devices    int
	Streams    int
	Regions    int
	LegacyScan bool
	SpanSec    float64

	Served   int
	Rejected int
	Frames   int
	Events   int64
	// HorizonSec is the simulated makespan — the "day" the run covered.
	HorizonSec float64
	// LatencyP50Sec/P99Sec and DeadlineMissRate come from a fixed 1 ms
	// histogram over every served frame (see latHist).
	LatencyP50Sec    float64
	LatencyP99Sec    float64
	DeadlineMissRate float64

	WallSec      float64
	EventsPerSec float64
}

// ScaleSweepResult is the full grid.
type ScaleSweepResult struct {
	Rows []ScaleSweepRow
}

// Row returns the first cell matching the shape.
func (r *ScaleSweepResult) Row(devices, regions int, legacy bool) (ScaleSweepRow, bool) {
	for _, row := range r.Rows {
		if row.Devices == devices && row.Regions == regions && row.LegacyScan == legacy {
			return row, true
		}
	}
	return ScaleSweepRow{}, false
}

// monitorPolicy is the deliberately lightweight per-frame policy the scale
// sweep serves: one fixed (model, processor) engine pair, execute, detect.
// The sweep measures the simulator's event loop — selection, heap and
// region bookkeeping, placement, admission — so per-frame decision cost
// must stay negligible next to it; the SHIFT pipeline policy would dominate
// the profile and mask the loop win the sweep exists to show.
type monitorPolicy struct{ pair zoo.Pair }

func (p *monitorPolicy) Name() string { return "fixed-monitor" }

func (p *monitorPolicy) Reset(e *runtime.Engine) error {
	for _, rp := range e.System().RuntimePairs() {
		if rp.Model == detmodel.YoloV7Tiny && rp.ProcID == "gpu" {
			p.pair = rp
			return nil
		}
	}
	return fmt.Errorf("experiments: no %s@gpu runtime pair", detmodel.YoloV7Tiny)
}

func (p *monitorPolicy) Step(st *runtime.Step) error {
	pair, err := st.Acquire(p.pair)
	if err != nil {
		return err
	}
	st.Rec().Pair = pair
	if err := st.Exec(pair); err != nil {
		return err
	}
	det, err := st.Detect(pair.Model)
	if err != nil {
		return err
	}
	st.RecordDetection(det)
	return nil
}

// latHist is a fixed-resolution latency histogram: 1 ms buckets to 60 s
// plus an overflow bucket. Collecting raw per-frame latencies at 100 000
// streams would cost gigabytes; the histogram reduces them in O(1) memory
// and stays exactly deterministic (bucketing is pure arithmetic).
type latHist struct {
	counts []int64
	over   int64
	n      int64
}

const latHistBuckets = 60_000

func newLatHist() *latHist { return &latHist{counts: make([]int64, latHistBuckets)} }

func (h *latHist) add(sec float64) {
	h.n++
	i := int(sec * 1000)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// quantile returns the q-quantile as its bucket's midpoint (the overflow
// bucket reports the 60 s cap).
func (h *latHist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n-1))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if c > 0 && cum > rank {
			return (float64(i) + 0.5) / 1000
		}
	}
	return float64(latHistBuckets) / 1000
}

// scaleAgg reduces stream outcomes incrementally through the fleet's
// OnDepart hook, then releases each stream's per-frame records — the only
// way a 100 000-stream run keeps a flat memory profile.
type scaleAgg struct {
	frames int
	missed int
	hist   *latHist
}

func (g *scaleAgg) depart(out *fleet.StreamOutcome) {
	sr := out.Stream
	g.frames += len(sr.Timings)
	g.missed += sr.MissCount()
	for _, tm := range sr.Timings {
		g.hist.add(tm.LatencySec())
	}
	out.Stream = nil
}

// ScaleSweep runs the grid. Each cell generates its own seeded diurnal
// trace (deterministic per (seed, streams, span)), serves it, and reports
// both the simulated serving profile and the wall-clock loop throughput.
func ScaleSweep(env *Env, cfg ScaleSweepConfig) (*ScaleSweepResult, error) {
	def := DefaultScaleSweepConfig()
	if len(cfg.Cells) == 0 {
		cfg.Cells = def.Cells
	}
	if cfg.SpanSec == 0 {
		cfg.SpanSec = def.SpanSec
	}
	if cfg.SpanSec < 0 {
		return nil, fmt.Errorf("experiments: negative scale-sweep span %v", cfg.SpanSec)
	}
	if cfg.DiurnalAmp == 0 {
		cfg.DiurnalAmp = def.DiurnalAmp
	}
	if cfg.DiurnalAmp < 0 || cfg.DiurnalAmp >= 1 {
		return nil, fmt.Errorf("experiments: diurnal amplitude %v outside [0, 1)", cfg.DiurnalAmp)
	}
	if cfg.PeriodSec == 0 {
		cfg.PeriodSec = def.PeriodSec
	}
	if cfg.MinFrames == 0 {
		cfg.MinFrames = def.MinFrames
	}
	if cfg.MaxFrames == 0 {
		cfg.MaxFrames = def.MaxFrames
	}
	if cfg.Admission == nil {
		cfg.Admission = def.Admission
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = env.Seed
	}
	policy := func(*zoo.System) (runtime.Policy, error) { return &monitorPolicy{}, nil }

	res := &ScaleSweepResult{}
	for _, cell := range cfg.Cells {
		if cell.Devices <= 0 || cell.Streams <= 0 {
			return nil, fmt.Errorf("experiments: scale cell needs positive devices and streams, got %d/%d",
				cell.Devices, cell.Streams)
		}
		span := cell.SpanSec
		if span == 0 {
			span = cfg.SpanSec
		}
		base := float64(cell.Streams) / span
		rate := fleet.DiurnalRate(base, cfg.DiurnalAmp, time.Duration(span*float64(time.Second)))
		wl := fleet.WorkloadConfig{
			Seed:      seed,
			Streams:   cell.Streams,
			PeriodSec: cfg.PeriodSec,
			MinFrames: cfg.MinFrames,
			MaxFrames: cfg.MaxFrames,
			Scenarios: []*scene.Scenario{scene.Scenario2()},
		}
		reqs, err := fleet.GenerateShapedWorkload(wl, rate, base*(1+cfg.DiurnalAmp), env.Frames, policy)
		if err != nil {
			return nil, err
		}
		devices := make([]fleet.DeviceConfig, cell.Devices)
		for i := range devices {
			devices[i] = fleet.DeviceConfig{Name: fmt.Sprintf("edge%04d", i), Scale: 1}
		}
		agg := &scaleAgg{hist: newLatHist()}
		fl, err := fleet.New(fleet.Config{
			Seed:       seed,
			Devices:    devices,
			Placement:  fleet.NewRoundRobin(),
			Admission:  *cfg.Admission,
			Regions:    cell.Regions,
			LegacyScan: cell.LegacyScan,
			OnDepart:   agg.depart,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now() //detlint:allow wallclock events/sec keys are documented as wall-clock-drifting harness throughput
		out, err := fl.Run(reqs)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds() //detlint:allow wallclock events/sec keys are documented as wall-clock-drifting harness throughput
		for _, d := range fl.Devices() {
			if n := d.DML.TotalRefs(); n != 0 {
				return nil, fmt.Errorf("experiments: scale cell %d-dev leaked %d refs on %s",
					cell.Devices, n, d.Name)
			}
		}
		row := ScaleSweepRow{
			Devices:          cell.Devices,
			Streams:          cell.Streams,
			Regions:          max(1, cell.Regions),
			LegacyScan:       cell.LegacyScan,
			SpanSec:          span,
			Served:           out.Served,
			Rejected:         out.Rejected,
			Frames:           agg.frames,
			Events:           out.Events,
			HorizonSec:       out.Horizon.Seconds(),
			LatencyP50Sec:    agg.hist.quantile(0.50),
			LatencyP99Sec:    agg.hist.quantile(0.99),
			DeadlineMissRate: missRate(agg.missed, agg.frames),
			WallSec:          wall,
			EventsPerSec:     float64(out.Events) / wall,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func missRate(missed, frames int) float64 {
	if frames == 0 {
		return 0
	}
	return float64(missed) / float64(frames)
}

// Report renders the grid with per-shape speedups against the legacy-scan
// baseline (matched on devices and streams) when one was measured.
func (r *ScaleSweepResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet scale sweep: wall-clock event-loop throughput\n")
	fmt.Fprintf(&b, "%8s %8s %8s %8s %10s %9s %8s %8s %8s %12s %8s\n",
		"devices", "streams", "selector", "regions", "events", "wall_s", "ev/s", "p50_s", "p99_s", "miss", "speedup")
	for _, row := range r.Rows {
		sel := "heap"
		if row.LegacyScan {
			sel = "scan"
		}
		speedup := "-"
		if !row.LegacyScan {
			if base, ok := r.legacyBaseline(row.Devices, row.Streams); ok {
				speedup = fmt.Sprintf("%.2fx", row.EventsPerSec/base.EventsPerSec)
			}
		}
		fmt.Fprintf(&b, "%8d %8d %8s %8d %10d %9.2f %8.0f %8.3f %8.3f %11.2f%% %8s\n",
			row.Devices, row.Streams, sel, row.Regions, row.Events, row.WallSec,
			row.EventsPerSec, row.LatencyP50Sec, row.LatencyP99Sec,
			100*row.DeadlineMissRate, speedup)
	}
	return b.String()
}

func (r *ScaleSweepResult) legacyBaseline(devices, streams int) (ScaleSweepRow, bool) {
	for _, row := range r.Rows {
		if row.LegacyScan && row.Devices == devices && row.Streams == streams {
			return row, true
		}
	}
	return ScaleSweepRow{}, false
}
