package experiments

import (
	"strings"
	"testing"
)

// quickScaleSweepConfig shrinks the grid to unit-test size: a 4-device fleet
// serving 200 streams over a compressed two-minute "day", measured on the
// legacy scan, the heap, and a 2-region shard of the same trace.
func quickScaleSweepConfig() ScaleSweepConfig {
	cfg := DefaultScaleSweepConfig()
	cfg.Cells = []ScaleSweepCell{
		{Devices: 4, Streams: 200, LegacyScan: true},
		{Devices: 4, Streams: 200},
		{Devices: 4, Streams: 200, Regions: 2},
	}
	cfg.SpanSec = 120
	return cfg
}

// TestScaleSweepSelectorsAgree pins the sweep's core claim: every selector
// variant of the same cell shape reports bit-identical simulated results —
// only the wall-clock columns may differ — and the trace actually saturates
// enough to measure (nonzero events, frames, horizon near the span).
func TestScaleSweepSelectorsAgree(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ScaleSweep(env, quickScaleSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	ref := res.Rows[0]
	if ref.Served == 0 || ref.Frames == 0 || ref.Events == 0 {
		t.Fatalf("reference cell served nothing: %+v", ref)
	}
	if ref.HorizonSec < ref.SpanSec/2 {
		t.Fatalf("horizon %.1fs never approached the %.0fs span — trace too sparse to measure",
			ref.HorizonSec, ref.SpanSec)
	}
	for i, row := range res.Rows[1:] {
		if row.Served != ref.Served || row.Rejected != ref.Rejected ||
			row.Frames != ref.Frames || row.Events != ref.Events ||
			row.HorizonSec != ref.HorizonSec ||
			row.LatencyP50Sec != ref.LatencyP50Sec ||
			row.LatencyP99Sec != ref.LatencyP99Sec ||
			row.DeadlineMissRate != ref.DeadlineMissRate {
			t.Fatalf("row %d diverges from the legacy baseline:\n%+v\n%+v", i+1, ref, row)
		}
	}
	for _, row := range res.Rows {
		if row.WallSec <= 0 || row.EventsPerSec <= 0 {
			t.Fatalf("non-positive wall-clock measurement: %+v", row)
		}
	}
	report := res.Report()
	if !strings.Contains(report, "scan") || !strings.Contains(report, "heap") ||
		!strings.Contains(report, "x") {
		t.Fatalf("report missing selector rows or speedup column:\n%s", report)
	}
}

// TestScaleSweepValidation covers the config contracts.
func TestScaleSweepValidation(t *testing.T) {
	env, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*ScaleSweepConfig){
		func(c *ScaleSweepConfig) { c.DiurnalAmp = 1.5 },
		func(c *ScaleSweepConfig) { c.SpanSec = -1 },
		func(c *ScaleSweepConfig) { c.Cells = []ScaleSweepCell{{Devices: 0, Streams: 10}} },
		func(c *ScaleSweepConfig) { c.Cells = []ScaleSweepCell{{Devices: 2, Streams: -1}} },
	}
	for i, mut := range bad {
		cfg := quickScaleSweepConfig()
		mut(&cfg)
		if _, err := ScaleSweep(env, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
