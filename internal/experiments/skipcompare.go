package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/scene"
)

// SkipPoint is one frame-skipping configuration's suite-level outcome.
type SkipPoint struct {
	Skip    int
	Summary metrics.Summary
}

// SkipComparisonResult contrasts the frame-skipping family against SHIFT at
// matched energy — the quantitative version of the paper's closing claim
// that SHIFT "maintains performance without inter-frame object tracking or
// skipping input frames".
type SkipComparisonResult struct {
	SkipPoints []SkipPoint
	SHIFT      metrics.Summary
}

// SkipComparison runs YoloV7@GPU with skip factors over the given scenarios
// (default: scenarios 1 and 2) alongside SHIFT.
func SkipComparison(env *Env, scenarios []*scene.Scenario, skips []int) (*SkipComparisonResult, error) {
	if scenarios == nil {
		scenarios = []*scene.Scenario{scene.Scenario1(), scene.Scenario2()}
	}
	if skips == nil {
		skips = []int{1, 2, 4, 8, 16}
	}
	res := &SkipComparisonResult{}
	for _, skip := range skips {
		var perScenario []metrics.Summary
		for _, sc := range scenarios {
			runner, err := baseline.NewFrameSkip(env.System(), detmodel.YoloV7, "gpu", skip)
			if err != nil {
				return nil, err
			}
			r, err := runner.Run(sc.Name, env.Frames(sc))
			if err != nil {
				return nil, err
			}
			s := metrics.Summarize(r)
			s.Method = fmt.Sprintf("skip=%d", skip)
			perScenario = append(perScenario, s)
		}
		combined, err := metrics.Combine(perScenario)
		if err != nil {
			return nil, err
		}
		res.SkipPoints = append(res.SkipPoints, SkipPoint{Skip: skip, Summary: combined})
	}

	var shiftPerScenario []metrics.Summary
	for _, sc := range scenarios {
		shift, err := pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
		if err != nil {
			return nil, err
		}
		r, err := shift.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return nil, err
		}
		s := metrics.Summarize(r)
		s.Method = "SHIFT"
		shiftPerScenario = append(shiftPerScenario, s)
	}
	combined, err := metrics.Combine(shiftPerScenario)
	if err != nil {
		return nil, err
	}
	res.SHIFT = combined
	return res, nil
}

// ClosestSkipByEnergy returns the skip point whose energy is nearest SHIFT's.
func (r *SkipComparisonResult) ClosestSkipByEnergy() SkipPoint {
	best := r.SkipPoints[0]
	for _, p := range r.SkipPoints[1:] {
		if abs(p.Summary.AvgEnergyJ-r.SHIFT.AvgEnergyJ) < abs(best.Summary.AvgEnergyJ-r.SHIFT.AvgEnergyJ) {
			best = p
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Report renders the comparison.
func (r *SkipComparisonResult) Report() string {
	var b strings.Builder
	b.WriteString("Frame skipping (YoloV7@GPU) vs SHIFT at matched energy:\n")
	fmt.Fprintf(&b, "%12s %8s %12s %10s\n", "config", "IoU", "energy (J)", "success")
	for _, p := range r.SkipPoints {
		fmt.Fprintf(&b, "%12s %8.3f %12.3f %9.1f%%\n",
			fmt.Sprintf("skip=%d", p.Skip), p.Summary.AvgIoU, p.Summary.AvgEnergyJ,
			p.Summary.SuccessRate*100)
	}
	fmt.Fprintf(&b, "%12s %8.3f %12.3f %9.1f%%\n",
		"SHIFT", r.SHIFT.AvgIoU, r.SHIFT.AvgEnergyJ, r.SHIFT.SuccessRate*100)
	closest := r.ClosestSkipByEnergy()
	fmt.Fprintf(&b, "\nat ~%.2f J/frame: SHIFT IoU %.3f vs skip=%d IoU %.3f (%+.1f%%)\n",
		r.SHIFT.AvgEnergyJ, r.SHIFT.AvgIoU, closest.Skip, closest.Summary.AvgIoU,
		(r.SHIFT.AvgIoU/closest.Summary.AvgIoU-1)*100)
	return b.String()
}
