package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/scene"
)

// SkipPoint is one frame-skipping configuration's suite-level outcome.
type SkipPoint struct {
	Skip    int
	Summary metrics.Summary
}

// SkipComparisonResult contrasts the frame-skipping family against SHIFT at
// matched energy — the quantitative version of the paper's closing claim
// that SHIFT "maintains performance without inter-frame object tracking or
// skipping input frames".
type SkipComparisonResult struct {
	SkipPoints []SkipPoint
	SHIFT      metrics.Summary
}

// SkipComparison runs YoloV7@GPU with skip factors over the given scenarios
// (default: scenarios 1 and 2) alongside SHIFT.
//
// All (configuration, scenario) runs fan out over a worker pool — each owns
// a fresh runner and system — and are combined sequentially in the original
// order, so the result matches the sequential loops exactly.
func SkipComparison(env *Env, scenarios []*scene.Scenario, skips []int) (*SkipComparisonResult, error) {
	if scenarios == nil {
		scenarios = []*scene.Scenario{scene.Scenario1(), scene.Scenario2()}
	}
	if skips == nil {
		skips = []int{1, 2, 4, 8, 16}
	}
	for _, sc := range scenarios {
		env.Frames(sc)
	}
	// Unit i runs configuration i/len(scenarios) — the skip factors first,
	// then SHIFT — on scenario i%len(scenarios).
	nsc := len(scenarios)
	summaries := make([]metrics.Summary, (len(skips)+1)*nsc)
	err := par.MapErr(len(summaries), func(i int) error {
		ci, sc := i/nsc, scenarios[i%nsc]
		var (
			runner pipeline.Runner
			method string
			err    error
		)
		if ci < len(skips) {
			runner, err = baseline.NewFrameSkip(env.System(), detmodel.YoloV7, "gpu", skips[ci])
			method = fmt.Sprintf("skip=%d", skips[ci])
		} else {
			runner, err = pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
			method = "SHIFT"
		}
		if err != nil {
			return err
		}
		r, err := runner.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return err
		}
		s := metrics.Summarize(r)
		s.Method = method
		summaries[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SkipComparisonResult{}
	for ci := range skips {
		combined, err := metrics.Combine(summaries[ci*nsc : (ci+1)*nsc])
		if err != nil {
			return nil, err
		}
		res.SkipPoints = append(res.SkipPoints, SkipPoint{Skip: skips[ci], Summary: combined})
	}
	combined, err := metrics.Combine(summaries[len(skips)*nsc:])
	if err != nil {
		return nil, err
	}
	res.SHIFT = combined
	return res, nil
}

// ClosestSkipByEnergy returns the skip point whose energy is nearest SHIFT's.
func (r *SkipComparisonResult) ClosestSkipByEnergy() SkipPoint {
	best := r.SkipPoints[0]
	for _, p := range r.SkipPoints[1:] {
		if abs(p.Summary.AvgEnergyJ-r.SHIFT.AvgEnergyJ) < abs(best.Summary.AvgEnergyJ-r.SHIFT.AvgEnergyJ) {
			best = p
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Report renders the comparison.
func (r *SkipComparisonResult) Report() string {
	var b strings.Builder
	b.WriteString("Frame skipping (YoloV7@GPU) vs SHIFT at matched energy:\n")
	fmt.Fprintf(&b, "%12s %8s %12s %10s\n", "config", "IoU", "energy (J)", "success")
	for _, p := range r.SkipPoints {
		fmt.Fprintf(&b, "%12s %8.3f %12.3f %9.1f%%\n",
			fmt.Sprintf("skip=%d", p.Skip), p.Summary.AvgIoU, p.Summary.AvgEnergyJ,
			p.Summary.SuccessRate*100)
	}
	fmt.Fprintf(&b, "%12s %8.3f %12.3f %9.1f%%\n",
		"SHIFT", r.SHIFT.AvgIoU, r.SHIFT.AvgEnergyJ, r.SHIFT.SuccessRate*100)
	closest := r.ClosestSkipByEnergy()
	fmt.Fprintf(&b, "\nat ~%.2f J/frame: SHIFT IoU %.3f vs skip=%d IoU %.3f (%+.1f%%)\n",
		r.SHIFT.AvgEnergyJ, r.SHIFT.AvgIoU, closest.Skip, closest.Summary.AvgIoU,
		(r.SHIFT.AvgIoU/closest.Summary.AvgIoU-1)*100)
	return b.String()
}
