package experiments

import (
	"strings"
	"testing"

	"repro/internal/scene"
)

func TestSkipComparisonShapes(t *testing.T) {
	env := testEnv(t)
	res, err := SkipComparison(env, []*scene.Scenario{scene.Scenario2()}, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkipPoints) != 3 {
		t.Fatalf("%d skip points", len(res.SkipPoints))
	}
	// Energy decreases monotonically with the skip factor.
	for i := 1; i < len(res.SkipPoints); i++ {
		if res.SkipPoints[i].Summary.AvgEnergyJ >= res.SkipPoints[i-1].Summary.AvgEnergyJ {
			t.Fatalf("energy not decreasing with skip: %+v", res.SkipPoints)
		}
	}
	// Accuracy decreases with the skip factor.
	if res.SkipPoints[2].Summary.AvgIoU >= res.SkipPoints[0].Summary.AvgIoU {
		t.Fatal("accuracy not decreasing with skip")
	}
	// The paper's conclusion: at matched energy SHIFT delivers at least the
	// skipping baseline's accuracy.
	closest := res.ClosestSkipByEnergy()
	if res.SHIFT.AvgIoU < closest.Summary.AvgIoU*0.95 {
		t.Fatalf("SHIFT IoU %.3f clearly below iso-energy skip=%d IoU %.3f",
			res.SHIFT.AvgIoU, closest.Skip, closest.Summary.AvgIoU)
	}
	report := res.Report()
	if !strings.Contains(report, "SHIFT") || !strings.Contains(report, "skip=") {
		t.Fatalf("report incomplete:\n%s", report)
	}
}

func TestSkipComparisonFastManeuver(t *testing.T) {
	// On fast target motion, stale boxes stop overlapping: SHIFT must beat
	// the iso-energy skipping configuration decisively — the regime where
	// the paper's "no skipping" claim bites.
	env := testEnv(t)
	res, err := SkipComparison(env, []*scene.Scenario{scene.ScenarioFastManeuver()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	closest := res.ClosestSkipByEnergy()
	if res.SHIFT.AvgIoU < closest.Summary.AvgIoU*1.2 {
		t.Fatalf("SHIFT IoU %.3f not clearly above iso-energy skip=%d IoU %.3f on fast motion",
			res.SHIFT.AvgIoU, closest.Skip, closest.Summary.AvgIoU)
	}
}
