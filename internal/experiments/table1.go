package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// TableICell is one (model, processor-kind) measurement of Table I.
type TableICell struct {
	Supported  bool
	TimeSec    float64
	PowerW     float64
	EnergyJ    float64
	Executions int
}

// TableIRow is one model row of Table I.
type TableIRow struct {
	Model  string
	AvgIoU float64
	Cells  map[accel.Kind]TableICell
}

// TableIResult holds the reproduced Table I.
type TableIResult struct {
	Rows []TableIRow
}

// tableIModels are the three architectures the paper measures in Table I.
var tableIModels = []string{detmodel.YoloV7, detmodel.YoloV7Tiny, detmodel.SSDMobilenetV1}

// tableIKinds are the three processors of Table I's columns.
var tableIKinds = []accel.Kind{accel.KindCPU, accel.KindGPU, accel.KindDLA}

// TableI reproduces Table I: average IoU plus inference time, power and
// energy for YoloV7, YoloV7-Tiny and (SSD-)MobilenetV1 on CPU, GPU and DLA.
// Behavioural accuracy is measured over nFrames validation frames; execution
// statistics are measured by running each supported (model, kind) nExec
// times on a fresh platform.
func TableI(env *Env, nFrames, nExec int) (*TableIResult, error) {
	res := &TableIResult{}
	frames := scene.ValidationSet(env.Seed, nFrames)
	for _, name := range tableIModels {
		sys := env.System()
		entry, err := sys.Entry(name)
		if err != nil {
			return nil, err
		}
		row := TableIRow{Model: name, Cells: map[accel.Kind]TableICell{}}
		var iouSum float64
		for _, f := range frames {
			iouSum += entry.Model.Detect(f, sys.Seed).IoU
		}
		if nFrames > 0 {
			row.AvgIoU = iouSum / float64(nFrames)
		}
		for _, kind := range tableIKinds {
			if !entry.Supports(kind) {
				row.Cells[kind] = TableICell{}
				continue
			}
			perf := entry.PerfByKind[kind]
			procID := sys.SoC.ProcIDsByKind(kind)[0]
			cell := TableICell{Supported: true, Executions: nExec}
			for i := 0; i < nExec; i++ {
				cost, err := sys.SoC.Exec(procID, perf.LatencySec, perf.PowerW)
				if err != nil {
					return nil, err
				}
				cell.TimeSec += cost.Lat.Seconds()
				cell.PowerW += cost.PowerW
				cell.EnergyJ += cost.Energy
			}
			if nExec > 0 {
				cell.TimeSec /= float64(nExec)
				cell.PowerW /= float64(nExec)
				cell.EnergyJ /= float64(nExec)
			}
			row.Cells[kind] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Report renders the result in the paper's Table I layout.
func (r *TableIResult) Report() string {
	rows := [][]string{{"Model", "IoU",
		"t CPU(s)", "t GPU(s)", "t DLA(s)",
		"P CPU(W)", "P GPU(W)", "P DLA(W)",
		"E CPU(J)", "E GPU(J)", "E DLA(J)"}}
	fmtCell := func(c TableICell, f func(TableICell) float64) string {
		if !c.Supported {
			return "-"
		}
		return fmt.Sprintf("%.3f", f(c))
	}
	for _, row := range r.Rows {
		line := []string{row.Model, fmt.Sprintf("%.2f", row.AvgIoU)}
		for _, get := range []func(TableICell) float64{
			func(c TableICell) float64 { return c.TimeSec },
			func(c TableICell) float64 { return c.PowerW },
			func(c TableICell) float64 { return c.EnergyJ },
		} {
			for _, kind := range tableIKinds {
				line = append(line, fmtCell(row.Cells[kind], get))
			}
		}
		rows = append(rows, line)
	}
	return textplot.Table("Table I: single-model statistics on CPU, GPU and GPU/DLA", rows)
}

// Cell is a convenience accessor used by tests.
func (r *TableIResult) Cell(model string, kind accel.Kind) (TableICell, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			c, ok := row.Cells[kind]
			return c, ok && c.Supported
		}
	}
	return TableICell{}, false
}

// Row returns the row for a model.
func (r *TableIResult) Row(model string) (TableIRow, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return TableIRow{}, false
}
