package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/scene"
	"repro/internal/textplot"
)

// TableIIIResult holds the reproduced main-results table: one summary per
// method, averaged over the evaluation suite, plus the per-scenario results
// that the figure experiments reuse.
type TableIIIResult struct {
	Summaries []metrics.Summary
	// PerScenario maps method name -> scenario name -> result.
	PerScenario map[string]map[string]*pipeline.Result
}

// methodFactory builds a fresh runner (with a fresh platform) per scenario,
// so memory, clock and meters never leak between videos.
type methodFactory struct {
	name  string
	build func(env *Env) (pipeline.Runner, error)
}

// tableIIIMethods are the six rows of Table III.
func tableIIIMethods() []methodFactory {
	return []methodFactory{
		{"Marlin", func(env *Env) (pipeline.Runner, error) {
			return baseline.NewMarlin(env.System(), baseline.DefaultMarlinConfig())
		}},
		{"Marlin Tiny", func(env *Env) (pipeline.Runner, error) {
			cfg := baseline.DefaultMarlinConfig()
			cfg.Model = "YoloV7-Tiny"
			return baseline.NewMarlin(env.System(), cfg)
		}},
		{"SHIFT", func(env *Env) (pipeline.Runner, error) {
			return pipeline.NewSHIFT(env.System(), env.Ch, env.Graph, pipeline.DefaultOptions())
		}},
		{"Oracle E", func(env *Env) (pipeline.Runner, error) {
			return baseline.NewOracle(env.System(), baseline.OracleEnergy)
		}},
		{"Oracle A", func(env *Env) (pipeline.Runner, error) {
			return baseline.NewOracle(env.System(), baseline.OracleAccuracy)
		}},
		{"Oracle L", func(env *Env) (pipeline.Runner, error) {
			return baseline.NewOracle(env.System(), baseline.OracleLatency)
		}},
	}
}

// TableIII reproduces the main results: Marlin, Marlin Tiny, SHIFT and the
// three Oracles over the given scenarios (the full evaluation suite when
// scenarios is nil).
//
// The (method, scenario) grid fans out over a worker pool: every cell owns a
// fresh runner and zoo.System (clean virtual clock, meters and memory) and
// reads the shared render cache and characterization read-only, so cell
// results are independent of scheduling order. Assembly back into Summaries
// and PerScenario happens sequentially in grid order, keeping the output
// identical to the sequential loop (TestTableIIIParallelMatchesSequential).
func TableIII(env *Env, scenarios []*scene.Scenario) (*TableIIIResult, error) {
	if scenarios == nil {
		scenarios = scene.EvaluationSuite()
	}
	// Render up front so workers hit the frame cache read-only.
	for _, sc := range scenarios {
		env.Frames(sc)
	}
	methods := tableIIIMethods()
	type cell struct {
		result  *pipeline.Result
		summary metrics.Summary
	}
	cells := make([]cell, len(methods)*len(scenarios))
	err := par.MapErr(len(cells), func(i int) error {
		mf := methods[i/len(scenarios)]
		sc := scenarios[i%len(scenarios)]
		runner, err := mf.build(env)
		if err != nil {
			return fmt.Errorf("experiments: build %s: %w", mf.name, err)
		}
		r, err := runner.Run(sc.Name, env.Frames(sc))
		if err != nil {
			return fmt.Errorf("experiments: run %s on %s: %w", mf.name, sc.Name, err)
		}
		// Report under the factory's display name (e.g. the runner may
		// self-describe as "Marlin Tiny" already; keep them aligned).
		r.Method = mf.name
		s := metrics.Summarize(r)
		s.Method = mf.name
		cells[i] = cell{result: r, summary: s}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIIIResult{PerScenario: map[string]map[string]*pipeline.Result{}}
	for mi, mf := range methods {
		perScenario := make([]metrics.Summary, 0, len(scenarios))
		res.PerScenario[mf.name] = map[string]*pipeline.Result{}
		for si, sc := range scenarios {
			c := cells[mi*len(scenarios)+si]
			res.PerScenario[mf.name][sc.Name] = c.result
			perScenario = append(perScenario, c.summary)
		}
		combined, err := metrics.Combine(perScenario)
		if err != nil {
			return nil, err
		}
		res.Summaries = append(res.Summaries, combined)
	}
	return res, nil
}

// Summary returns the combined summary for a method.
func (r *TableIIIResult) Summary(method string) (metrics.Summary, bool) {
	for _, s := range r.Summaries {
		if s.Method == method {
			return s, true
		}
	}
	return metrics.Summary{}, false
}

// Report renders the Table III layout.
func (r *TableIIIResult) Report() string {
	rows := [][]string{{"Methodology", "IoU", "Time (s)", "Energy (J)",
		"Success Rate", "Non-GPU", "Model Swaps", "Pairs Used"}}
	for _, s := range r.Summaries {
		rows = append(rows, []string{
			s.Method,
			fmt.Sprintf("%.3f", s.AvgIoU),
			fmt.Sprintf("%.3f", s.AvgTimeSec),
			fmt.Sprintf("%.3f", s.AvgEnergyJ),
			fmt.Sprintf("%.1f%%", s.SuccessRate*100),
			fmt.Sprintf("%.1f%%", s.NonGPUFrac*100),
			fmt.Sprintf("%d", s.Swaps),
			fmt.Sprintf("%.1f", s.PairsUsed),
		})
	}
	return textplot.Table("Table III: average runtime performance of continuous object detection", rows)
}
