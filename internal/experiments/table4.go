package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/textplot"
)

// TableIVCell is one (model, accelerator) execution profile of Table IV.
type TableIVCell struct {
	Supported bool
	TimeSec   float64
	EnergyJ   float64
	PowerW    float64
}

// TableIVRow is one model row of Table IV: behavioural accuracy over the
// whole evaluation suite plus execution profiles on GPU, GPU/DLA and OAK-D.
type TableIVRow struct {
	Model       string
	AvgIoU      float64
	SuccessRate float64
	Cells       map[accel.Kind]TableIVCell
}

// TableIVResult holds the reproduced characterization table.
type TableIVResult struct {
	Rows []TableIVRow
}

// tableIVKinds are Table IV's accelerator columns.
var tableIVKinds = []accel.Kind{accel.KindGPU, accel.KindDLA, accel.KindOAKD}

// TableIV reproduces the full characterization table: every zoo model's
// average IoU and success rate measured over the six evaluation scenarios,
// with per-accelerator time/energy/power measured on the virtual platform.
func TableIV(env *Env, nExec int) (*TableIVResult, error) {
	res := &TableIVResult{}
	suite := env.Suite()
	sys := env.System()
	for _, entry := range sys.Entries {
		row := TableIVRow{Model: entry.Name(), Cells: map[accel.Kind]TableIVCell{}}
		var iou metrics.Welford
		success, total := 0, 0
		for _, frames := range suite {
			for _, f := range frames {
				det := entry.Model.Detect(f, sys.Seed)
				iou.Add(det.IoU)
				if det.IoU >= metrics.SuccessIoU {
					success++
				}
				total++
			}
		}
		row.AvgIoU = iou.Mean()
		if total > 0 {
			row.SuccessRate = float64(success) / float64(total)
		}
		for _, kind := range tableIVKinds {
			if !entry.Supports(kind) {
				row.Cells[kind] = TableIVCell{}
				continue
			}
			perf := entry.PerfByKind[kind]
			procID := sys.SoC.ProcIDsByKind(kind)[0]
			cell := TableIVCell{Supported: true}
			for i := 0; i < nExec; i++ {
				cost, err := sys.SoC.Exec(procID, perf.LatencySec, perf.PowerW)
				if err != nil {
					return nil, err
				}
				cell.TimeSec += cost.Lat.Seconds()
				cell.EnergyJ += cost.Energy
				cell.PowerW += cost.PowerW
			}
			if nExec > 0 {
				cell.TimeSec /= float64(nExec)
				cell.EnergyJ /= float64(nExec)
				cell.PowerW /= float64(nExec)
			}
			row.Cells[kind] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row for a model.
func (r *TableIVResult) Row(model string) (TableIVRow, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return TableIVRow{}, false
}

// Report renders the Table IV layout.
func (r *TableIVResult) Report() string {
	rows := [][]string{{"Model", "Avg IoU", "Success",
		"t GPU", "t DLA", "t OAK-D",
		"E GPU", "E DLA", "E OAK-D",
		"P GPU", "P DLA", "P OAK-D"}}
	cell := func(c TableIVCell, f func(TableIVCell) float64) string {
		if !c.Supported {
			return "-"
		}
		return fmt.Sprintf("%.3f", f(c))
	}
	for _, row := range r.Rows {
		line := []string{row.Model, fmt.Sprintf("%.3f", row.AvgIoU),
			fmt.Sprintf("%.1f%%", row.SuccessRate*100)}
		for _, get := range []func(TableIVCell) float64{
			func(c TableIVCell) float64 { return c.TimeSec },
			func(c TableIVCell) float64 { return c.EnergyJ },
			func(c TableIVCell) float64 { return c.PowerW },
		} {
			for _, kind := range tableIVKinds {
				line = append(line, cell(row.Cells[kind], get))
			}
		}
		rows = append(rows, line)
	}
	return textplot.Table("Table IV: collected accuracy and performance traits of all models", rows)
}
