package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
)

// DeviceTemplate describes one provisionable device class of the
// autoscaler's warm pool. Provisioned devices are named deterministically —
// Prefix plus a two-digit index in provisioning order — and their RNG seeds
// derive from the fleet seed and that name alone, so elastic runs stay
// bit-replayable and invariant to base-device listing order, exactly like
// the fixed fleet.
type DeviceTemplate struct {
	// Prefix is the provisioned-device name prefix (default "auto"); the
	// i-th device of the template is named Prefix + "%02d" % i.
	Prefix string
	// Scale is the accel TimeScale of provisioned devices (0: 1 — the
	// characterized baseline; 2 a half-speed device).
	Scale float64
	// PoolMB sizes the provisioned device's SoC engine arena in MB (0: keep
	// whatever the fleet's NewSystem built).
	PoolMB int64
	// Count is the warm-pool depth: how many devices this template can
	// provision over the run (0: the template is exhausted from the start).
	Count int
}

// deviceName returns the template's i-th provisioned-device name.
func (t DeviceTemplate) deviceName(i int) string {
	return fmt.Sprintf("%s%02d", t.Prefix, i)
}

// AutoscaleConfig parameterizes the SLO-driven elastic controller. The
// controller runs as a first-class event of the deterministic loop (tie
// order departure < fault < scale < arrival < step): every Interval it
// compares the rolling per-device p99 frame latency and the admission-queue
// depth against the SLO, provisions warm-pool devices on a breach, and
// decommissions quiet devices via drain — stop admitting, snapshot and
// migrate the resident sessions (runtime.Session.Drain + RestoreSession),
// verify the loader ended refs-clean, then park the platform.
type AutoscaleConfig struct {
	// Interval is the control period on the virtual clock (default 5s); the
	// first tick fires at Interval.
	Interval time.Duration
	// Window is the rolling span of frame completions the latency signal is
	// computed over (default 2×Interval).
	Window time.Duration
	// TargetP99Sec is the SLO: scale out when any device's rolling p99
	// frame latency exceeds it (default 1.0).
	TargetP99Sec float64
	// QueueHighWater scales out when at least this many streams sit in the
	// admission queue at a tick (default 1 — any queued stream means the
	// fleet is out of slots).
	QueueHighWater int
	// ScaleOutStep is the number of devices provisioned per breach
	// (default 1).
	ScaleOutStep int
	// ScaleInStreams bounds how many live sessions a drain victim may still
	// carry — drained sessions migrate, so small values trade less churn
	// for slower consolidation (default 1).
	ScaleInStreams int
	// ScaleInFactor sets the calm threshold: scale-in requires the worst
	// rolling p99 below ScaleInFactor×TargetP99Sec (default 0.5; must stay
	// ≤ 1 so the calm band sits below the breach band).
	ScaleInFactor float64
	// IdleTicks is how many consecutive calm ticks must pass before a
	// scale-in (default 2).
	IdleTicks int
	// Cooldown is how many ticks after a scale-out the controller refuses
	// to scale in, so one burst cannot thrash provision/retire (default 0).
	Cooldown int
	// MinDevices is the floor of serving-capable devices scale-in must
	// leave (default: the configured base fleet size).
	MinDevices int
	// Templates is the warm pool (default: one "auto" template at scale 1
	// with Count = 2× the base fleet).
	Templates []DeviceTemplate
}

// DefaultAutoscaleConfig returns the controller shape the autoscale
// experiments use: 5 s ticks against a 1 s tail SLO, with a small cooldown
// so bursts do not thrash.
func DefaultAutoscaleConfig() AutoscaleConfig {
	return AutoscaleConfig{
		Interval:       5 * time.Second,
		TargetP99Sec:   1.0,
		QueueHighWater: 1,
		ScaleOutStep:   1,
		ScaleInStreams: 1,
		ScaleInFactor:  0.5,
		IdleTicks:      2,
		Cooldown:       2,
	}
}

// withDefaults validates the config and fills the documented defaults.
func (c AutoscaleConfig) withDefaults(baseDevices int) (AutoscaleConfig, error) {
	if c.Interval < 0 || c.Window < 0 {
		return c, fmt.Errorf("fleet: negative autoscale interval or window")
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	if c.Window == 0 {
		c.Window = 2 * c.Interval
	}
	if c.TargetP99Sec < 0 {
		return c, fmt.Errorf("fleet: negative autoscale target p99 %v", c.TargetP99Sec)
	}
	if c.TargetP99Sec == 0 {
		c.TargetP99Sec = 1.0
	}
	if c.QueueHighWater <= 0 {
		c.QueueHighWater = 1
	}
	if c.ScaleOutStep <= 0 {
		c.ScaleOutStep = 1
	}
	if c.ScaleInStreams < 0 {
		return c, fmt.Errorf("fleet: negative autoscale scale-in stream bound %d", c.ScaleInStreams)
	}
	if c.ScaleInStreams == 0 {
		c.ScaleInStreams = 1
	}
	if c.ScaleInFactor < 0 || c.ScaleInFactor > 1 {
		return c, fmt.Errorf("fleet: autoscale scale-in factor %v outside [0, 1]", c.ScaleInFactor)
	}
	if c.ScaleInFactor == 0 {
		c.ScaleInFactor = 0.5
	}
	if c.IdleTicks <= 0 {
		c.IdleTicks = 2
	}
	if c.Cooldown < 0 {
		return c, fmt.Errorf("fleet: negative autoscale cooldown %d", c.Cooldown)
	}
	if c.MinDevices <= 0 {
		c.MinDevices = baseDevices
	}
	if len(c.Templates) == 0 {
		c.Templates = []DeviceTemplate{{Prefix: "auto", Scale: 1, Count: 2 * baseDevices}}
	}
	tpls := append([]DeviceTemplate(nil), c.Templates...)
	for i := range tpls {
		if tpls[i].Prefix == "" {
			tpls[i].Prefix = "auto"
		}
		if tpls[i].Scale < 0 {
			return c, fmt.Errorf("fleet: template %q has negative scale %v", tpls[i].Prefix, tpls[i].Scale)
		}
		if tpls[i].Scale == 0 {
			tpls[i].Scale = 1
		}
		if tpls[i].PoolMB < 0 {
			return c, fmt.Errorf("fleet: template %q has negative pool %d MB", tpls[i].Prefix, tpls[i].PoolMB)
		}
		if tpls[i].Count < 0 {
			return c, fmt.Errorf("fleet: template %q has negative count %d", tpls[i].Prefix, tpls[i].Count)
		}
	}
	c.Templates = tpls
	return c, nil
}

// latSample is one served frame's completion on the rolling signal window.
type latSample struct {
	dev  string
	done time.Duration
	lat  float64
}

// autoscaler is the controller's run state. All of it is derived from
// virtual-time events only, so elastic runs replay bit-for-bit.
type autoscaler struct {
	cfg    AutoscaleConfig
	nextAt time.Duration
	// used counts devices provisioned per template; samples is the rolling
	// frame-latency window, appended in event order.
	used    []int
	samples []latSample
	// calm counts consecutive ticks below the scale-in threshold; cooldown
	// blocks scale-in for a few ticks after a scale-out; exhausted latches
	// once a tick could not act on an otherwise-idle fleet (terminating the
	// event loop's scale stream).
	calm      int
	cooldown  int
	exhausted bool
	outs, ins int
}

// newAutoscaler builds the controller for a validated config.
func newAutoscaler(cfg AutoscaleConfig) *autoscaler {
	return &autoscaler{
		cfg:    cfg,
		nextAt: cfg.Interval,
		used:   make([]int, len(cfg.Templates)),
	}
}

// observeStep folds one served frame into the rolling latency window. Called
// by the event loop after every session step when the autoscaler is on.
func (f *Fleet) observeStep(as *activeSession) {
	if f.auto == nil {
		return
	}
	tms := as.sess.Result().Timings
	tm := tms[len(tms)-1]
	f.auto.samples = append(f.auto.samples, latSample{
		dev: as.dev.Name, done: tm.Done, lat: tm.LatencySec(),
	})
}

// worstDeviceP99 returns the maximum per-device rolling p99 frame latency,
// or -1 when the window holds no samples. Devices are reduced in name order;
// the maximum is order-independent anyway, but determinism stays auditable.
func (a *autoscaler) worstDeviceP99() float64 {
	byDev := map[string][]float64{}
	names := make([]string, 0, 4)
	for _, s := range a.samples {
		if _, ok := byDev[s.dev]; !ok {
			names = append(names, s.dev)
		}
		byDev[s.dev] = append(byDev[s.dev], s.lat)
	}
	sort.Strings(names)
	worst := -1.0
	for _, n := range names {
		if p := metrics.Latencies(byDev[n]).P99; p > worst {
			worst = p
		}
	}
	return worst
}

// scaleTick runs one control decision at virtual time at. It returns whether
// the tick changed the fleet (provisioned or retired a device) so the event
// loop can stop ticking once ticks alone cannot make progress. lastResort
// marks a tick with no other event left in the simulation: any queued stream
// then counts as a breach whatever QueueHighWater says, since provisioning
// is the only thing that can ever serve it.
//
// Decision order: breach (queue backlog or tail-latency SLO violation) →
// scale out; otherwise count calm ticks and, after IdleTicks of them outside
// any cooldown, drain the newest eligible warm-pool device.
func (f *Fleet) scaleTick(at time.Duration, queue *[]*pending, lastResort bool) (bool, error) {
	a := f.auto
	a.nextAt = at + a.cfg.Interval
	// Prune the signal window: samples are appended in event order but not
	// sorted by completion (steps complete out of global order), so filter.
	keep := a.samples[:0]
	for _, s := range a.samples {
		if s.done >= at-a.cfg.Window {
			keep = append(keep, s)
		}
	}
	a.samples = keep

	depth := len(*queue)
	worst := a.worstDeviceP99()
	if (depth > 0 && lastResort) || depth >= a.cfg.QueueHighWater || worst > a.cfg.TargetP99Sec {
		a.calm = 0
		a.cooldown = a.cfg.Cooldown
		acted := false
		for i := 0; i < a.cfg.ScaleOutStep; i++ {
			if !f.provision(at) {
				break
			}
			acted = true
		}
		return acted, nil
	}
	if a.cooldown > 0 {
		a.cooldown--
		a.calm = 0
		return false, nil
	}
	if depth > 0 || worst > a.cfg.ScaleInFactor*a.cfg.TargetP99Sec {
		a.calm = 0
		return false, nil
	}
	a.calm++
	if a.calm < a.cfg.IdleTicks {
		return false, nil
	}
	d := f.drainCandidate()
	if d == nil {
		return false, nil
	}
	if err := f.drainDevice(d, at, queue); err != nil {
		return false, err
	}
	a.calm = 0
	return true, nil
}

// canProvision reports whether any template still has warm-pool depth left.
func (a *autoscaler) canProvision() bool {
	for i, tpl := range a.cfg.Templates {
		if a.used[i] < tpl.Count {
			return true
		}
	}
	return false
}

// provision builds the next warm-pool device (templates fill in order) and
// inserts it into the fleet's name-sorted device list. It returns false when
// the pool is exhausted.
func (f *Fleet) provision(at time.Duration) bool {
	a := f.auto
	for ti := range a.cfg.Templates {
		tpl := a.cfg.Templates[ti]
		if a.used[ti] >= tpl.Count {
			continue
		}
		name := tpl.deviceName(a.used[ti])
		a.used[ti]++
		d, err := f.buildDevice(DeviceConfig{Name: name, Scale: tpl.Scale}, tpl.PoolMB)
		if err != nil {
			// Template scales were validated at New; only a harness bug can
			// reach this.
			panic(err)
		}
		d.auto = true
		d.provisionedAt = at
		i := sort.Search(len(f.devices), func(i int) bool { return f.devices[i].Name >= name })
		f.devices = append(f.devices, nil)
		copy(f.devices[i+1:], f.devices[i:])
		f.devices[i] = d
		f.live++
		if f.live > f.peakLive {
			f.peakLive = f.live
		}
		a.outs++
		return true
	}
	return false
}

// drainCandidate picks the device the next scale-in retires: an
// autoscaler-provisioned, healthy, non-retired device carrying at most
// ScaleInStreams sessions, leaving at least MinDevices serving-capable
// devices behind — and only if the rest of the fleet has admission
// headroom for every session the drain would migrate, so scale-in never
// strands a live stream in the queue (which the next tick would read as a
// breach and answer with a fresh provision, churning the warm pool). Among
// eligible devices the warm pool retires newest-first: latest provision
// time, ties broken by the latest name — true LIFO even when templates'
// prefixes sort against provisioning order.
func (f *Fleet) drainCandidate() *Device {
	a := f.auto
	if f.live-1 < a.cfg.MinDevices {
		return nil
	}
	var best *Device
	for _, d := range f.devices {
		if !d.auto || d.retired || d.dead || d.down {
			continue
		}
		if len(d.sessions) > a.cfg.ScaleInStreams {
			continue
		}
		if len(d.sessions) > f.headroomExcluding(d) {
			continue
		}
		if best == nil || d.provisionedAt > best.provisionedAt ||
			(d.provisionedAt == best.provisionedAt && d.Name > best.Name) {
			best = d
		}
	}
	return best
}

// headroomExcluding returns the admission slots free across the fleet's
// candidate devices, not counting skip — how many of skip's sessions could
// re-place immediately if it drained. An unlimited budget is unbounded
// headroom.
func (f *Fleet) headroomExcluding(skip *Device) int {
	if f.adm.PerDeviceStreams <= 0 {
		return int(^uint(0) >> 1)
	}
	free := 0
	for _, d := range f.candidates() {
		if d == skip {
			continue
		}
		free += f.adm.PerDeviceStreams - len(d.sessions)
	}
	return free
}

// drainDevice decommissions one device: stop admitting (retired devices are
// not candidates), snapshot and close every resident session through the
// runtime drain hook, verify the device's loader released every residency
// reference, re-queue the checkpoints ahead of new arrivals, then retire —
// park the platform so nothing can ever execute on it again. The migrated
// sessions resume on surviving devices through the same RestoreSession path
// a fault displacement uses, accruing downtime until re-admission.
func (f *Fleet) drainDevice(d *Device, at time.Duration, queue *[]*pending) error {
	if err := f.evacuate(d, at, queue, "drain", func() { d.drained++ }); err != nil {
		return err
	}
	if n := d.DML.TotalRefs(); n != 0 {
		return fmt.Errorf("fleet: drained device %s still holds %d residency refs", d.Name, n)
	}
	d.retired = true
	d.retiredAt = at
	d.Sys.SoC.Park()
	f.live--
	f.auto.ins++
	return nil
}
