package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
)

// autoTestConfig returns a fast controller shape for unit tests: 1 s ticks,
// no cooldown, scale-in after one calm tick, and a generous latency SLO so
// queue depth is the only scale-out trigger unless a test lowers it.
func autoTestConfig(pool int) *AutoscaleConfig {
	return &AutoscaleConfig{
		Interval:       time.Second,
		TargetP99Sec:   1000,
		QueueHighWater: 1,
		ScaleInStreams: 1,
		IdleTicks:      1,
		Templates:      []DeviceTemplate{{Prefix: "auto", Scale: 1, Count: pool}},
	}
}

// TestAutoscaleIdleIsBitIdentical: an enabled autoscaler that never has
// reason to act (no queue pressure, nothing provisioned to drain) must leave
// a seeded workload bit-identical to the same fleet without it — the
// controller costs nothing when idle.
func TestAutoscaleIdleIsBitIdentical(t *testing.T) {
	devs := []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}}
	run := func(auto *AutoscaleConfig) *Result {
		f, err := New(Config{
			Seed: 7, Devices: devs, Placement: NewResidencyAffinity(),
			Admission: Admission{PerDeviceStreams: 4, QueueLimit: 4},
			Autoscale: auto,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(seededRequests(t))
		if err != nil {
			t.Fatal(err)
		}
		checkNoLeaks(t, f)
		return res
	}
	// A 4-stream budget keeps the seeded 8-stream workload out of the queue,
	// so the enabled controller ticks but never acts.
	idle := autoTestConfig(2)
	a := run(nil)
	b := run(idle)
	compareRuns(t, a, b, "autoscaler-idle")
	if b.ScaleOuts != 0 || b.ScaleIns != 0 {
		t.Fatalf("idle autoscaler acted: %d outs, %d ins", b.ScaleOuts, b.ScaleIns)
	}
	if a.PeakDevices != 2 || b.PeakDevices != 2 {
		t.Fatalf("peak devices %d/%d, want 2/2", a.PeakDevices, b.PeakDevices)
	}
}

// TestAutoscaleScaleOutOnQueuePressure: one saturated base device plus a
// queued arrival must provision a warm-pool device at the next tick and
// serve the queued stream on it — no rejections.
func TestAutoscaleScaleOutOnQueuePressure(t *testing.T) {
	cfg := autoTestConfig(2)
	cfg.IdleTicks = 1 << 20 // scale-out only: never calm long enough to drain
	f, err := New(Config{
		Seed:    1,
		Devices: []DeviceConfig{{Name: "base"}},
		Admission: Admission{
			PerDeviceStreams: 1,
			QueueLimit:       -1,
		},
		Autoscale: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:100]
	mk := func(name string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: at, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	res, err := f.Run([]StreamRequest{mk("a", 0), mk("b", time.Second), mk("c", 2*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 3 || res.Rejected != 0 {
		t.Fatalf("served %d rejected %d, want 3/0", res.Served, res.Rejected)
	}
	if res.ScaleOuts != 2 {
		t.Fatalf("scale-outs %d, want 2 (one per queued stream)", res.ScaleOuts)
	}
	if res.PeakDevices != 3 {
		t.Fatalf("peak devices %d, want 3", res.PeakDevices)
	}
	onAuto := 0
	for _, out := range res.Outcomes {
		if out.Device == "auto00" || out.Device == "auto01" {
			onAuto++
		}
	}
	if onAuto != 2 {
		t.Fatalf("%d streams served on warm-pool devices, want 2", onAuto)
	}
	// Provisioned devices surface in the stats, flagged as auto.
	autos := 0
	for _, ds := range res.Devices {
		if ds.Auto {
			autos++
			if ds.ProvisionedSec <= 0 {
				t.Fatalf("auto device %s has no provision time", ds.Name)
			}
		}
	}
	if autos != 2 {
		t.Fatalf("%d auto devices in stats, want 2", autos)
	}
	checkNoLeaks(t, f)
}

// TestAutoscaleDrainMigratesLiveSession is the scale-in acceptance test: a
// warm-pool device carrying a live session is drained — the session is
// checkpointed, its residency refs released, the device retired and parked —
// and the stream completes on a base device with every frame served exactly
// once and zero leaked refs anywhere.
func TestAutoscaleDrainMigratesLiveSession(t *testing.T) {
	cfg := autoTestConfig(1)
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "base"}},
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Autoscale: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)
	// a occupies the only base slot for ~10 s; b queues behind it, is served
	// on the provisioned auto00 and outlives a. Once a departs, the fleet is
	// calm and base has headroom, so the next tick drains auto00 — b's live
	// session checkpoints and resumes on base.
	res, err := f.Run([]StreamRequest{
		{Name: "a", Scenario: "scenario2", Arrival: 0, Frames: frames[:100],
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
		{Name: "b", Scenario: "scenario2", Arrival: time.Second, Frames: frames[:400],
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2 || res.Aborted != 0 {
		t.Fatalf("served %d aborted %d, want 2/0", res.Served, res.Aborted)
	}
	if res.ScaleOuts != 1 || res.ScaleIns != 1 {
		t.Fatalf("scale-outs %d scale-ins %d, want 1/1", res.ScaleOuts, res.ScaleIns)
	}
	var b *StreamOutcome
	for _, out := range res.Outcomes {
		if out.Name == "b" {
			b = out
		}
	}
	if b.Migrations != 1 {
		t.Fatalf("drained stream migrated %d times, want 1", b.Migrations)
	}
	if len(b.Devices) != 2 || b.Devices[0] != "auto00" || b.Devices[1] != "base" {
		t.Fatalf("drained stream path %v, want [auto00 base]", b.Devices)
	}
	if b.DowntimeSec != 0 {
		t.Fatalf("drain with headroom accrued %.3fs downtime, want 0 (migrated at the tick)", b.DowntimeSec)
	}
	if got := len(b.Stream.Result.Records); got != 400 {
		t.Fatalf("drained stream served %d frames, want 400", got)
	}
	for i, rec := range b.Stream.Result.Records {
		if rec.Index != frames[i].Index {
			t.Fatalf("record %d has frame index %d (duplicated or dropped across drain)", i, rec.Index)
		}
	}
	var auto DeviceStats
	for _, ds := range res.Devices {
		if ds.Name == "auto00" {
			auto = ds
		}
	}
	if !auto.Retired || auto.Drained != 1 || auto.RetiredSec <= auto.ProvisionedSec {
		t.Fatalf("drained device stats %+v", auto)
	}
	if auto.LeakedRefs != 0 {
		t.Fatalf("drained device leaked %d refs", auto.LeakedRefs)
	}
	for _, d := range f.Devices() {
		if d.Name == "auto00" {
			if !d.Sys.SoC.Parked() {
				t.Fatal("retired device not parked")
			}
			if !d.Retired() || !d.AutoProvisioned() {
				t.Fatal("retired device accessors disagree")
			}
		}
	}
	checkNoLeaks(t, f)
}

// TestAutoscaleDeterminism: elastic runs replay bit-for-bit and are
// invariant to base-device listing order — provisioned names derive from the
// fleet seed and template indices only.
func TestAutoscaleDeterminism(t *testing.T) {
	devs := []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}}
	shuffled := []DeviceConfig{devs[1], devs[0]}
	run := func(d []DeviceConfig) *Result {
		f, err := New(Config{
			Seed: 7, Devices: d, Placement: NewRoundRobin(),
			Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
			Autoscale: autoTestConfig(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(seededRequests(t))
		if err != nil {
			t.Fatal(err)
		}
		checkNoLeaks(t, f)
		return res
	}
	a := run(devs)
	if a.ScaleOuts == 0 {
		t.Fatal("tight budget provisioned nothing; the shuffle test needs elastic activity")
	}
	compareRuns(t, a, run(devs), "autoscale/repeat")
	compareRuns(t, a, run(shuffled), "autoscale/shuffled-devices")
}

// TestAutoscaleExhaustedPoolTerminates: when every device is dead and the
// warm pool is empty, queued arrivals must be rejected and the run must
// terminate rather than tick forever.
func TestAutoscaleExhaustedPoolTerminates(t *testing.T) {
	cfg := autoTestConfig(0) // zero-depth warm pool
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "only"}},
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Autoscale: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:30]
	res, err := f.RunWithFaults(
		[]StreamRequest{
			{Name: "early", Scenario: "scenario2", Arrival: 0, Frames: frames,
				PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
			{Name: "late", Scenario: "scenario2", Arrival: 20 * time.Second, Frames: frames,
				PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
		},
		[]Fault{{Device: "only", Kind: FaultDeath, At: 10 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || res.ScaleOuts != 0 {
		t.Fatalf("rejected %d scale-outs %d, want 1/0 (exhausted pool must reject, not spin)",
			res.Rejected, res.ScaleOuts)
	}
	checkNoLeaks(t, f)
}

// TestAutoscaleLastResortProvisionBelowHighWater: when the queue is the only
// thing left in the simulation, a tick must provision even though the depth
// sits below QueueHighWater — otherwise a servable stream would be aborted
// with warm-pool capacity still on the shelf.
func TestAutoscaleLastResortProvisionBelowHighWater(t *testing.T) {
	cfg := autoTestConfig(1)
	cfg.QueueHighWater = 3 // one queued stream is normally not a breach
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "only"}},
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Autoscale: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:30]
	res, err := f.RunWithFaults(
		[]StreamRequest{{Name: "late", Scenario: "scenario2", Arrival: 20 * time.Second,
			Frames: frames, PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")}},
		[]Fault{{Device: "only", Kind: FaultDeath, At: 10 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Rejected != 0 || res.ScaleOuts != 1 {
		t.Fatalf("served %d rejected %d scale-outs %d, want 1/0/1 (last-resort tick must provision)",
			res.Served, res.Rejected, res.ScaleOuts)
	}
	if res.Outcomes[0].Device != "auto00" {
		t.Fatalf("late stream served on %s, want the provisioned auto00", res.Outcomes[0].Device)
	}
	checkNoLeaks(t, f)
}

// TestAutoscaleMinDevicesFloor: scale-in never drains below MinDevices even
// when warm-pool devices sit idle.
func TestAutoscaleMinDevicesFloor(t *testing.T) {
	cfg := autoTestConfig(1)
	cfg.MinDevices = 2 // base + one provisioned device must survive
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "base"}},
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Autoscale: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:60]
	res, err := f.Run([]StreamRequest{
		{Name: "a", Scenario: "scenario2", Arrival: 0, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
		{Name: "b", Scenario: "scenario2", Arrival: time.Second, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleOuts != 1 || res.ScaleIns != 0 {
		t.Fatalf("scale-outs %d scale-ins %d, want 1/0 (MinDevices forbids the drain)",
			res.ScaleOuts, res.ScaleIns)
	}
	checkNoLeaks(t, f)
}

// TestAutoscaleConfigValidation covers the controller's constructor
// contracts: bad knobs and warm-pool name collisions fail at New.
func TestAutoscaleConfigValidation(t *testing.T) {
	base := []DeviceConfig{{Name: "edge"}}
	bad := []AutoscaleConfig{
		{Interval: -time.Second},
		{TargetP99Sec: -1},
		{ScaleInFactor: 2},
		{ScaleInStreams: -1},
		{Cooldown: -1},
		{Templates: []DeviceTemplate{{Prefix: "auto", Scale: -1, Count: 1}}},
		{Templates: []DeviceTemplate{{Prefix: "auto", PoolMB: -1, Count: 1}}},
		{Templates: []DeviceTemplate{{Prefix: "auto", Count: -1}}},
	}
	for i, cfg := range bad {
		c := cfg
		if _, err := New(Config{Devices: base, Autoscale: &c}); err == nil {
			t.Fatalf("bad autoscale config %d accepted: %+v", i, cfg)
		}
	}
	// A base device squatting on a warm-pool name must be rejected up front.
	collide := AutoscaleConfig{Templates: []DeviceTemplate{{Prefix: "edge", Count: 1}}}
	if _, err := New(Config{
		Devices:   []DeviceConfig{{Name: "edge00"}},
		Autoscale: &collide,
	}); err == nil {
		t.Fatal("warm-pool name collision accepted")
	}
	// Duplicate prefixes across templates collide with each other too.
	dup := AutoscaleConfig{Templates: []DeviceTemplate{
		{Prefix: "auto", Count: 1}, {Prefix: "auto", Count: 1},
	}}
	if _, err := New(Config{Devices: base, Autoscale: &dup}); err == nil {
		t.Fatal("duplicate warm-pool names accepted")
	}
}

// TestRoundRobinSkipsDeadDeviceWithoutDrift is the regression test for the
// cursor-phase bug: the rotation must cycle over live candidates only, with
// no bias toward devices adjacent to a dead one, and must keep its phase
// when the autoscaler grows the device list mid-rotation.
func TestRoundRobinSkipsDeadDeviceWithoutDrift(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		Placement: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	devs := f.Devices()
	byName := func(name string) *Device {
		for _, d := range devs {
			if d.Name == name {
				return d
			}
		}
		t.Fatalf("no device %q", name)
		return nil
	}
	rr := NewRoundRobin()
	pick := func(cands []*Device) string { return rr.Pick(f, nil, cands).Name }

	all := []*Device{byName("a"), byName("b"), byName("c"), byName("d")}
	for _, want := range []string{"a", "b", "c", "d", "a"} {
		if got := pick(all); got != want {
			t.Fatalf("full rotation picked %s, want %s", got, want)
		}
	}
	// b dies: the dispatcher stops listing it. From cursor "a" the rotation
	// must visit c, d, a, c, d, a — each survivor exactly once per cycle,
	// with no phantom slot where b used to be.
	alive := []*Device{byName("a"), byName("c"), byName("d")}
	counts := map[string]int{}
	for i, want := range []string{"c", "d", "a", "c", "d", "a"} {
		got := pick(alive)
		counts[got]++
		if got != want {
			t.Fatalf("pick %d after death: %s, want %s", i, got, want)
		}
	}
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("biased rotation: %s picked %d times in two cycles", n, c)
		}
	}
	// The fleet grows: a provisioned "auto00" sorts between "a" and "c".
	// The cursor must keep its phase — the new device simply joins the
	// cycle in name order, rather than re-basing every index.
	grown := []*Device{byName("a"), {Name: "auto00"}, byName("c"), byName("d")}
	for i, want := range []string{"auto00", "c", "d", "a", "auto00"} {
		if got := pick(grown); got != want {
			t.Fatalf("pick %d after growth: %s, want %s", i, got, want)
		}
	}
}

// TestFleetRoundRobinRotationWithDeadDevice runs the same regression through
// a real fleet: after one device dies, sequentially arriving streams spread
// evenly over the survivors.
func TestFleetRoundRobinRotationWithDeadDevice(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "d0"}, {Name: "d1"}, {Name: "d2"}},
		Placement: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:5]
	var reqs []StreamRequest
	for i := 0; i < 7; i++ {
		reqs = append(reqs, StreamRequest{
			Name: "s" + string(rune('0'+i)), Scenario: "scenario2",
			Arrival: time.Duration(i) * 30 * time.Second, // non-overlapping
			Frames:  frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		})
	}
	res, err := f.RunWithFaults(reqs, []Fault{{Device: "d1", Kind: FaultDeath, At: 40 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	// s0→d0, s1→d1, then d1 dies: the survivors alternate evenly.
	want := []string{"d0", "d1", "d2", "d0", "d2", "d0", "d2"}
	for i, out := range res.Outcomes {
		if out.Device != want[i] {
			t.Fatalf("stream %d on %s, want %s (dead device biased the rotation)", i, out.Device, want[i])
		}
	}
}
