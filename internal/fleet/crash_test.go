package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
)

// durableFleet builds a fleet with the checkpoint journal enabled.
func durableFleet(t *testing.T, adm Admission, dur *DurabilityConfig, devs ...DeviceConfig) *Fleet {
	t.Helper()
	f, err := New(Config{Seed: 1, Devices: devs, Admission: adm, Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCrashRecoversFromJournal: a worker crash destroys live session state,
// and the stream resumes from its last journaled checkpoint on the surviving
// device — every frame served (the lost tail replayed), no refs leaked.
func TestCrashRecoversFromJournal(t *testing.T) {
	// A huge journal cadence leaves only the admission-time checkpoint, so
	// everything served before the crash must be replayed — the strongest
	// form of the recovery contract.
	f := durableFleet(t, Admission{}, &DurabilityConfig{EveryFrames: 1 << 20},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "d0", Kind: FaultCrash, At: 2 * time.Second, Duration: 30 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if out.Rejected || out.Aborted || out.Shed {
		t.Fatalf("stream outcome %+v", out)
	}
	if out.Migrations != 1 || out.Device != "d1" {
		t.Fatalf("migrations=%d device=%s, want 1 move to d1", out.Migrations, out.Device)
	}
	if res.Crashes != 1 {
		t.Fatalf("result crashes %d, want 1", res.Crashes)
	}
	if out.ReplayedFrames == 0 || res.ReplayedFrames != out.ReplayedFrames {
		t.Fatalf("replayed frames out=%d res=%d, want equal and > 0 "+
			"(everything past the admission checkpoint was lost)",
			out.ReplayedFrames, res.ReplayedFrames)
	}
	if res.JournalWrites == 0 || res.JournalBytes == 0 {
		t.Fatalf("journal traffic %d writes / %d bytes, want > 0", res.JournalWrites, res.JournalBytes)
	}
	if got := len(out.Stream.Result.Records); got != len(frames) {
		t.Fatalf("served %d frames, want %d", got, len(frames))
	}
	for i, rec := range out.Stream.Result.Records {
		if rec.Index != frames[i].Index {
			t.Fatalf("record %d has frame index %d, want %d (duplicated or dropped frame)",
				i, rec.Index, frames[i].Index)
		}
	}
	var d0 DeviceStats
	for _, ds := range res.Devices {
		if ds.Name == "d0" {
			d0 = ds
		}
	}
	if d0.Crashes != 1 || d0.Displaced != 1 {
		t.Fatalf("crashed-device stats %+v, want 1 crash / 1 displaced", d0)
	}
	checkNoLeaks(t, f)
}

// TestCrashInstantRestartResumesInPlace: a crash with zero restart time
// (kill -9 under a supervisor) bounces the worker — the stream resumes on the
// same device from its journaled checkpoint with a cold residency cache.
func TestCrashInstantRestartResumesInPlace(t *testing.T) {
	f := durableFleet(t, Admission{}, &DurabilityConfig{},
		DeviceConfig{Name: "solo"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "solo", Kind: FaultCrash, At: 2 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if out.Rejected || out.Aborted || out.Shed {
		t.Fatalf("stream outcome %+v", out)
	}
	if out.Migrations != 1 || out.Device != "solo" || len(out.Devices) != 2 {
		t.Fatalf("restart path %v (migrations %d), want solo → solo", out.Devices, out.Migrations)
	}
	if out.DowntimeSec != 0 {
		t.Fatalf("downtime %.3fs, want 0 for an instant restart", out.DowntimeSec)
	}
	if got := len(out.Stream.Result.Records); got != len(frames) {
		t.Fatalf("served %d frames, want %d", got, len(frames))
	}
	// The wipe at crash time forces a cold re-acquisition: at least one load
	// beyond the first admission's.
	var solo DeviceStats
	for _, ds := range res.Devices {
		solo = ds
	}
	if solo.Loads < 2 {
		t.Fatalf("loads %d after a residency wipe, want >= 2", solo.Loads)
	}
	checkNoLeaks(t, f)
}

// TestCrashShedsBestEffortFirst: when a crash displaces more streams than the
// surviving fleet has admission slack, best-effort streams are shed with
// their checkpointed partials while premium streams recover.
func TestCrashShedsBestEffortFirst(t *testing.T) {
	f := durableFleet(t, Admission{PerDeviceStreams: 2, QueueLimit: 4},
		&DurabilityConfig{EveryFrames: 5}, DeviceConfig{Name: "d0"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{
			{Name: "premium", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
				Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
			{Name: "spot", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
				Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"), BestEffort: true},
		},
		// The only device crashes with a long restart: zero surviving slack,
		// so the best-effort stream must be shed and the premium one resumes
		// at recovery.
		[]Fault{{Device: "d0", Kind: FaultCrash, At: 2 * time.Second, Duration: 5 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Shed != 1 || res.Aborted != 0 || res.Rejected != 0 {
		t.Fatalf("served %d shed %d aborted %d rejected %d, want 1/1/0/0",
			res.Served, res.Shed, res.Aborted, res.Rejected)
	}
	for _, out := range res.Outcomes {
		switch out.Name {
		case "premium":
			if out.Shed || out.Migrations != 1 {
				t.Fatalf("premium outcome %+v, want recovered with 1 migration", out)
			}
			if got := len(out.Stream.Result.Records); got != len(frames) {
				t.Fatalf("premium served %d frames, want %d", got, len(frames))
			}
			if out.DowntimeSec != 5 {
				t.Fatalf("premium downtime %.3fs, want the 5s restart", out.DowntimeSec)
			}
		case "spot":
			if !out.Shed {
				t.Fatalf("best-effort outcome %+v, want shed", out)
			}
			if out.Stream == nil || len(out.Stream.Result.Records) == 0 {
				t.Fatal("shed stream lost its checkpointed partial records")
			}
			if len(out.Stream.Result.Records) >= len(frames) {
				t.Fatal("shed stream claims a full serve")
			}
		}
	}
	checkNoLeaks(t, f)
}

// TestCrashRequiresDurability: a crash fault without the journal has nothing
// to recover from — schedule validation must reject it up front.
func TestCrashRequiresDurability(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0"})
	_, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: testFrames(t)[:5], PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}},
		[]Fault{{Device: "d0", Kind: FaultCrash, At: time.Second}},
	)
	if err == nil {
		t.Fatal("crash fault accepted without a Durability journal")
	}
	g := durableFleet(t, Admission{}, &DurabilityConfig{}, DeviceConfig{Name: "d0"})
	if _, err := g.RunWithFaults(nil, []Fault{
		{Device: "d0", Kind: FaultCrash, At: time.Second, Duration: -time.Second},
	}); err == nil {
		t.Fatal("negative crash restart time accepted")
	}
}

// TestCrashOnDownDeviceIsNoOp: killing a worker that is already down (outage
// in progress) changes nothing — its sessions were evacuated when it went
// down, and the crash meter must not count a no-op.
func TestCrashOnDownDeviceIsNoOp(t *testing.T) {
	f := durableFleet(t, Admission{}, &DurabilityConfig{},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{
			{Device: "d0", Kind: FaultOutage, At: time.Second, Duration: 20 * time.Second},
			{Device: "d0", Kind: FaultCrash, At: 2 * time.Second, Duration: time.Second},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 {
		t.Fatalf("crash of a down device counted (%d crashes)", res.Crashes)
	}
	out := res.Outcomes[0]
	if out.Migrations != 1 || res.Served != 1 {
		t.Fatalf("outcome %+v (served %d), want the single outage migration", out, res.Served)
	}
	checkNoLeaks(t, f)
}

// TestDurabilityDisabledBitIdentical pins the acceptance criterion: with no
// crash faults, a fleet with the journal enabled produces bit-identical
// outcomes to one without it — journaling only observes.
func TestDurabilityDisabledBitIdentical(t *testing.T) {
	devs := []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}}
	base := runSeededWorkload(t, devs, "residency-affinity")
	place, err := PlacementByName("residency-affinity")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Seed: 7, Devices: devs, Placement: place,
		Admission:  Admission{PerDeviceStreams: 2, QueueLimit: 2},
		Durability: &DurabilityConfig{EveryFrames: 7, RenderSeed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(seededRequests(t))
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, base, res, "durable-vs-plain")
	if res.JournalWrites == 0 {
		t.Fatal("journal enabled but never written")
	}
	if base.JournalWrites != 0 || base.Crashes != 0 {
		t.Fatalf("plain run has durability counters: %d writes %d crashes",
			base.JournalWrites, base.Crashes)
	}
}

// TestGenerateFaultsCrashMix: with PCrash > 0 the generator emits crash
// faults with non-negative restart draws, deterministically across listing
// orders.
func TestGenerateFaultsCrashMix(t *testing.T) {
	cfg := DefaultFaultConfig()
	cfg.RatePerSec = 0.2
	cfg.POutage, cfg.PDeath, cfg.PBrownout, cfg.PCrash = 0.3, 0.1, 0.2, 0.4
	names := []string{"edge-a", "edge-b", "edge-c"}
	a, err := GenerateFaults(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaults(cfg, []string{"edge-c", "edge-b", "edge-a"})
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across listing orders: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Kind == FaultCrash {
			crashes++
			if a[i].Duration < 0 {
				t.Fatalf("crash fault %d has negative restart %v", i, a[i].Duration)
			}
		}
	}
	if crashes == 0 {
		t.Fatal("PCrash=0.4 over 120s at 0.2/s generated no crash faults")
	}
	// Weight zero keeps the crash class entirely out of the schedule.
	cfg.PCrash = 0
	c, err := GenerateFaults(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i].Kind == FaultCrash {
			t.Fatalf("fault %d is a crash despite PCrash=0", i)
		}
	}
}
