package fleet

import (
	"testing"

	"repro/internal/detmodel"
	"repro/internal/scene"
)

// runSeededWorkload builds a 3-device heterogeneous fleet from the given
// device listing order and serves the default-seeded workload on it.
func runSeededWorkload(t *testing.T, devices []DeviceConfig, placement string) *Result {
	t.Helper()
	place, err := PlacementByName(placement)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Seed:      7,
		Devices:   devices,
		Placement: place,
		Admission: Admission{PerDeviceStreams: 2, QueueLimit: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(seededRequests(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// seededRequests generates the 8-stream seed-7 workload the determinism and
// fault-free-identity tests share.
func seededRequests(t *testing.T) []StreamRequest {
	t.Helper()
	cfg := WorkloadConfig{
		Seed: 7, Streams: 8, RatePerSec: 0.5, PeriodSec: 0.1,
		MinFrames: 30, MaxFrames: 60,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	reqs, err := GenerateWorkload(cfg,
		func(*scene.Scenario) []scene.Frame { return testFrames(t) },
		fixedFactory(detmodel.YoloV7Tiny, "gpu"))
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// compareRuns asserts two fleet runs are identical stream by stream: same
// fate, same serving device, same records, same timings.
func compareRuns(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("%s: %d vs %d outcomes", label, len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		oa, ob := a.Outcomes[i], b.Outcomes[i]
		if oa.Name != ob.Name || oa.Rejected != ob.Rejected || oa.Device != ob.Device ||
			oa.Arrival != ob.Arrival || oa.AdmittedAt != ob.AdmittedAt ||
			oa.Aborted != ob.Aborted || oa.Migrations != ob.Migrations ||
			oa.DowntimeSec != ob.DowntimeSec || len(oa.Devices) != len(ob.Devices) {
			t.Fatalf("%s: outcome %d differs:\n%+v\n%+v", label, i, oa, ob)
		}
		for j := range oa.Devices {
			if oa.Devices[j] != ob.Devices[j] {
				t.Fatalf("%s: outcome %d serving path differs: %v vs %v", label, i, oa.Devices, ob.Devices)
			}
		}
		if oa.Rejected {
			continue
		}
		ra, rb := oa.Stream, ob.Stream
		if len(ra.Result.Records) != len(rb.Result.Records) {
			t.Fatalf("%s: stream %s record counts differ", label, oa.Name)
		}
		for j := range ra.Result.Records {
			if ra.Result.Records[j] != rb.Result.Records[j] {
				t.Fatalf("%s: stream %s record %d differs", label, oa.Name, j)
			}
			if ra.Timings[j] != rb.Timings[j] {
				t.Fatalf("%s: stream %s timing %d differs", label, oa.Name, j)
			}
		}
	}
	if a.Horizon != b.Horizon {
		t.Fatalf("%s: horizons differ: %v vs %v", label, a.Horizon, b.Horizon)
	}
}

// TestFleetDeterminism is the fleet's determinism property test: serving the
// same seeded workload twice yields identical per-stream records and
// timings, and listing the fleet's devices in a different order changes
// nothing either — every decision keys on device names and admission
// sequence, never on slice or map order.
func TestFleetDeterminism(t *testing.T) {
	devs := []DeviceConfig{
		{Name: "edge-a", Scale: 1},
		{Name: "edge-b", Scale: 1.25},
		{Name: "edge-c", Scale: 0.8},
	}
	shuffled := []DeviceConfig{devs[2], devs[0], devs[1]}
	for _, placement := range []string{"round-robin", "least-outstanding", "residency-affinity"} {
		a := runSeededWorkload(t, devs, placement)
		b := runSeededWorkload(t, devs, placement)
		compareRuns(t, a, b, placement+"/repeat")
		c := runSeededWorkload(t, shuffled, placement)
		compareRuns(t, a, c, placement+"/shuffled-devices")
	}
}

// TestWorkloadDeterministicAndSeedSensitive pins the generator: identical
// configs produce identical requests; a different seed perturbs them.
func TestWorkloadDeterministicAndSeedSensitive(t *testing.T) {
	src := func(*scene.Scenario) []scene.Frame { return testFrames(t) }
	pol := fixedFactory(detmodel.YoloV7Tiny, "gpu")
	cfg := DefaultWorkloadConfig()
	cfg.Streams = 10
	a, err := GenerateWorkload(cfg, src, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(cfg, src, pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Arrival != b[i].Arrival ||
			a[i].Scenario != b[i].Scenario || len(a[i].Frames) != len(b[i].Frames) {
			t.Fatalf("request %d differs across identical configs", i)
		}
		if i > 0 && a[i].Arrival <= a[i-1].Arrival {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
	}
	cfg.Seed = 2
	c, err := GenerateWorkload(cfg, src, pol)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival || a[i].Scenario != c[i].Scenario {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical workload")
	}
}
