package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/runtime"
)

// DurabilityConfig enables the durable checkpoint journal — the in-process
// model of the coordinator's crash-recovery store (internal/distrib runs the
// same protocol across real processes). When set, the fleet serializes every
// admitted stream's checkpoint through the versioned wire format
// (internal/checkpoint) at admission and again every EveryFrames served
// frames. The journal is the only state a crash fault preserves: frames
// served after the last journal entry are lost with the process and replayed
// after recovery.
//
// Durability is required for FaultCrash schedules and changes nothing else:
// a fleet with Durability set but no crash faults produces bit-identical
// results to one without (journaling only reads session state).
type DurabilityConfig struct {
	// EveryFrames is the journal cadence in served frames per stream
	// (<= 0: default 10). Smaller means less replay after a crash and more
	// journal bytes.
	EveryFrames int
	// RenderSeed is recorded in each checkpoint's frame-source reference so
	// an out-of-process consumer can re-render the stream's frames; the
	// in-process recovery path re-supplies frames directly and ignores it.
	RenderSeed uint64
}

// defaultJournalEvery is the journal cadence when the config leaves it zero.
const defaultJournalEvery = 10

func (dc *DurabilityConfig) every() int {
	if dc.EveryFrames <= 0 {
		return defaultJournalEvery
	}
	return dc.EveryFrames
}

// journalEntry is one stream's latest durable checkpoint: the encoded wire
// bytes (exactly what a coordinator would have on disk) and the served count
// they pin.
type journalEntry struct {
	data   []byte
	served int
}

// writeJournal serializes the stream's current checkpoint through the wire
// format and replaces its journal entry. Encoding exercises the same bytes a
// real coordinator would persist, so journal size metrics are honest.
func (f *Fleet) writeJournal(as *activeSession) error {
	snap := as.sess.Snapshot()
	// Snapshot is a read barrier on the session: refresh the cached event
	// view (and heap slot), per the cache invariant.
	as.refresh()
	f.retrack(as)
	return f.commitJournal(as, snap)
}

// commitJournal stamps the next global journal sequence number and encodes
// and stores the entry — split from the snapshot so region advances can
// snapshot at the step and encode at the merge, keeping the embedded
// sequence numbers (and so the exact journal bytes) identical to a
// sequential run.
func (f *Fleet) commitJournal(as *activeSession, snap *runtime.SessionSnapshot) error {
	f.journalSeq++
	data, err := checkpoint.EncodeSnapshot(snap, as.req.Scenario, f.durable.RenderSeed, map[string]uint64{
		"journal_seq": f.journalSeq,
		"served":      uint64(snap.Served()),
	})
	if err != nil {
		return fmt.Errorf("fleet: journal %s: %w", as.out.Name, err)
	}
	f.journalStore[as.out] = &journalEntry{data: data, served: snap.Served()}
	f.journalWrites++
	f.journalBytes += int64(len(data))
	return nil
}

// journalDue advances the per-stream journal cadence after a served frame
// and reports whether a checkpoint write is due.
func (f *Fleet) journalDue(as *activeSession) bool {
	if f.durable == nil {
		return false
	}
	as.sinceJournal++
	if as.sinceJournal < f.durable.every() {
		return false
	}
	as.sinceJournal = 0
	return true
}

// observeDurable advances the per-stream journal cadence after a served
// frame.
func (f *Fleet) observeDurable(as *activeSession) error {
	if !f.journalDue(as) {
		return nil
	}
	return f.writeJournal(as)
}

// journalOnAdmit seeds a just-placed stream's journal entry, so a crash can
// never catch a stream with no durable checkpoint at all.
func (f *Fleet) journalOnAdmit(as *activeSession) error {
	if f.durable == nil {
		return nil
	}
	return f.writeJournal(as)
}

// crash models a worker process dying under a stream load — kill -9, OOM, a
// rolling restart's hard phase. Unlike an outage, nothing live survives: the
// sessions' in-memory state is gone (no drain snapshot), residency is wiped
// (loader.Flush), and every displaced stream resumes from its last journaled
// checkpoint, replaying the frames served since. Premium streams re-queue
// first; best-effort streams are shed outright when the surviving fleet has
// fewer free admission slots than displaced streams — graceful degradation
// instead of an unbounded premium queue.
func (f *Fleet) crash(d *Device, at time.Duration, queue *[]*pending) error {
	d.crashes++
	f.crashes++
	moved := make([]*pending, 0, len(d.sessions))
	for _, as := range d.sessions {
		f.untrack(as)
		entry := f.journalStore[as.out]
		if entry == nil {
			return fmt.Errorf("fleet: crash on %s: stream %s has no journaled checkpoint", d.Name, as.out.Name)
		}
		liveServed := len(as.sess.Result().Result.Records)
		// The process died: closing the session models the OS reclaiming its
		// references; its un-journaled progress is not checkpointed.
		if err := as.sess.Close(); err != nil {
			return fmt.Errorf("fleet: crash on %s: close %s: %w", d.Name, as.out.Name, err)
		}
		c, err := checkpoint.Decode(entry.data)
		if err != nil {
			return fmt.Errorf("fleet: crash on %s: journal for %s: %w", d.Name, as.out.Name, err)
		}
		snap, err := c.Snapshot(as.req.Frames)
		if err != nil {
			return fmt.Errorf("fleet: crash on %s: rebuild %s: %w", d.Name, as.out.Name, err)
		}
		// The device is credited only with the frames the journal preserved;
		// the remainder is lost work, metered as replay.
		d.frames += snap.Served() - as.prevRecords
		if h := as.sess.Horizon(); h > d.horizon {
			d.horizon = h
		}
		lost := liveServed - snap.Served()
		as.out.ReplayedFrames += lost
		f.replayedFrames += lost
		d.displaced++
		f.teach(as.out.Scenario, snap.Partial().Result.Records)
		moved = append(moved, &pending{out: as.out, req: as.req, snap: snap, since: at, crashed: true})
	}
	d.sessions = d.sessions[:0]
	if err := d.DML.Flush(); err != nil {
		return fmt.Errorf("fleet: crash on %s: %w", d.Name, err)
	}

	// Premium ahead of best-effort (stable within each class, preserving
	// admission order); then shed best-effort streams from the tail while
	// the displaced set exceeds the surviving fleet's free slots.
	sort.SliceStable(moved, func(i, j int) bool {
		return !moved[i].req.BestEffort && moved[j].req.BestEffort
	})
	if f.adm.PerDeviceStreams > 0 {
		slack := 0
		for _, c := range f.candidates() {
			slack += f.adm.PerDeviceStreams - len(c.sessions)
		}
		for len(moved) > slack && moved[len(moved)-1].req.BestEffort {
			p := moved[len(moved)-1]
			moved = moved[:len(moved)-1]
			p.out.Shed = true
			p.out.Stream = p.snap.Partial()
			delete(f.journalStore, p.out)
			if f.rec != nil {
				f.rec.Shed()
			}
		}
	}
	requeue(queue, moved)
	return nil
}
