package fleet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/rng"
)

// FaultKind classifies device failures.
type FaultKind int

// Supported fault kinds.
const (
	// FaultOutage takes the device down for Duration: in-flight streams are
	// checkpointed and migrated away, and the device rejoins placement when
	// the outage ends (residency intact — a connectivity loss, not a wipe).
	FaultOutage FaultKind = iota
	// FaultDeath removes the device permanently.
	FaultDeath
	// FaultBrownout multiplies the device's execution latency (accel
	// TimeScale) by Factor for Duration — thermal throttling or a noisy
	// neighbor. Streams stay put and simply run slower.
	FaultBrownout
	// FaultCrash kills the device's worker process: kill -9, OOM, or the
	// hard phase of a rolling restart. Unlike an outage, nothing live
	// survives — in-memory session state is gone and residency is wiped —
	// so streams resume from their last durable checkpoint, replaying the
	// frames served since. Requires the fleet's Durability journal; Duration
	// is the restart time (0: instant restart, > 0: rolling restart during
	// which the device is out of placement).
	FaultCrash
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultOutage:
		return "outage"
	case FaultDeath:
		return "death"
	case FaultBrownout:
		return "brownout"
	case FaultCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// Fault is one scheduled failure of one device.
type Fault struct {
	// Device names the fleet member the fault hits.
	Device string
	// Kind selects the failure mode.
	Kind FaultKind
	// At is the onset time on the global virtual clock.
	At time.Duration
	// Duration is how long an outage or brownout lasts (ignored for death).
	Duration time.Duration
	// Factor is the brownout latency multiplier (> 1 is slower).
	Factor float64
}

// FaultConfig parameterizes the seeded fault-schedule generator, the failure
// counterpart of WorkloadConfig: identical configs generate identical
// schedules bit-for-bit, independent of fleet composition.
type FaultConfig struct {
	// Seed drives every draw.
	Seed uint64
	// RatePerSec is the mean fleet-wide fault arrival rate (a Poisson process
	// realized through exponential inter-arrival draws).
	RatePerSec float64
	// Horizon bounds fault onsets: faults fire in [0, Horizon).
	Horizon time.Duration
	// POutage, PDeath, PBrownout and PCrash weight the kind drawn per fault
	// (normalized; outage/death/brownout all zero means the default
	// 0.5/0.2/0.3 mix). PCrash > 0 requires the fleet's Durability journal;
	// leaving it zero keeps the generated schedule bit-identical to builds
	// without the crash fault class.
	POutage, PDeath, PBrownout, PCrash float64
	// MeanOutageSec and MeanBrownoutSec are the mean transient-fault lengths
	// (exponential draws); MeanCrashRestartSec is the mean worker restart
	// time after a crash (default 5).
	MeanOutageSec, MeanBrownoutSec, MeanCrashRestartSec float64
	// BrownoutFactor is the latency multiplier applied during brownouts.
	BrownoutFactor float64
	// MaxDeaths caps permanent failures; generation always leaves at least
	// one device un-killed so a schedule alone can never strand the workload
	// forever. Negative disables deaths entirely.
	MaxDeaths int
}

// DefaultFaultConfig returns a schedule shape that exercises every failure
// mode a few times over a multi-minute serving window.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		Seed:                1,
		RatePerSec:          1.0 / 30,
		Horizon:             120 * time.Second,
		POutage:             0.5,
		PDeath:              0.2,
		PBrownout:           0.3,
		MeanOutageSec:       8,
		MeanBrownoutSec:     15,
		MeanCrashRestartSec: 5,
		BrownoutFactor:      2.5,
		MaxDeaths:           1,
	}
}

// GenerateFaults expands a config into a concrete schedule over the named
// devices: exponential inter-onset gaps, device and kind drawn per fault, and
// transient lengths drawn exponentially. Devices are addressed in sorted-name
// order, so the schedule is invariant to listing order; generation consumes
// only its own forked stream. Deaths stop once MaxDeaths (or device count - 1)
// devices have been condemned — the remaining mass falls to outages.
func GenerateFaults(cfg FaultConfig, devices []string) ([]Fault, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("fleet: fault schedule needs devices")
	}
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("fleet: fault schedule needs a positive rate, got %v", cfg.RatePerSec)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fleet: fault schedule needs a positive horizon, got %v", cfg.Horizon)
	}
	def := DefaultFaultConfig()
	if cfg.POutage == 0 && cfg.PDeath == 0 && cfg.PBrownout == 0 && cfg.PCrash == 0 {
		cfg.POutage, cfg.PDeath, cfg.PBrownout = def.POutage, def.PDeath, def.PBrownout
	}
	if cfg.POutage < 0 || cfg.PDeath < 0 || cfg.PBrownout < 0 || cfg.PCrash < 0 {
		return nil, fmt.Errorf("fleet: negative fault kind weight")
	}
	if cfg.MeanOutageSec <= 0 {
		cfg.MeanOutageSec = def.MeanOutageSec
	}
	if cfg.MeanBrownoutSec <= 0 {
		cfg.MeanBrownoutSec = def.MeanBrownoutSec
	}
	if cfg.MeanCrashRestartSec <= 0 {
		cfg.MeanCrashRestartSec = def.MeanCrashRestartSec
	}
	if cfg.BrownoutFactor <= 1 {
		cfg.BrownoutFactor = def.BrownoutFactor
	}
	names := append([]string(nil), devices...)
	sort.Strings(names)

	deathBudget := cfg.MaxDeaths
	if deathBudget < 0 {
		deathBudget = 0
	}
	if deathBudget > len(names)-1 {
		deathBudget = len(names) - 1
	}
	dead := map[string]bool{}

	r := rng.New(cfg.Seed).Fork("fleet/faults")
	total := cfg.POutage + cfg.PDeath + cfg.PBrownout + cfg.PCrash
	var faults []Fault
	at := time.Duration(0)
	for {
		gap := -math.Log(1-r.Float64()) / cfg.RatePerSec
		at += time.Duration(gap * float64(time.Second))
		if at >= cfg.Horizon {
			return faults, nil
		}
		name := names[r.Intn(len(names))]
		f := Fault{Device: name, At: at}
		// With PCrash == 0 the brownout case absorbs the whole remaining mass
		// (u < total always), so pre-crash configs draw bit-identical
		// schedules.
		switch u := r.Float64() * total; {
		case u < cfg.POutage:
			f.Kind = FaultOutage
		case u < cfg.POutage+cfg.PDeath:
			f.Kind = FaultDeath
		case u < cfg.POutage+cfg.PDeath+cfg.PBrownout:
			f.Kind = FaultBrownout
		default:
			f.Kind = FaultCrash
		}
		// A death past the budget (or of an already-dead device) degrades to
		// an outage, keeping the draw sequence intact.
		if f.Kind == FaultDeath && (len(dead) >= deathBudget || dead[name]) {
			f.Kind = FaultOutage
		}
		switch f.Kind {
		case FaultOutage:
			f.Duration = time.Duration(-math.Log(1-r.Float64()) * cfg.MeanOutageSec * float64(time.Second))
		case FaultDeath:
			dead[name] = true
		case FaultBrownout:
			f.Duration = time.Duration(-math.Log(1-r.Float64()) * cfg.MeanBrownoutSec * float64(time.Second))
			f.Factor = cfg.BrownoutFactor
		case FaultCrash:
			f.Duration = time.Duration(-math.Log(1-r.Float64()) * cfg.MeanCrashRestartSec * float64(time.Second))
		}
		faults = append(faults, f)
	}
}

// faultEvent is one edge of a fault on the global event loop: its onset, or
// the recovery ending a transient fault.
type faultEvent struct {
	at       time.Duration
	fault    Fault
	recovery bool
}

// expandFaults validates a schedule against the fleet and expands it into
// time-ordered events. Ties order onsets before recoveries, then device name —
// every run of the same schedule replays the same edge order.
func (f *Fleet) expandFaults(faults []Fault) ([]faultEvent, error) {
	var evs []faultEvent
	for _, ft := range faults {
		if f.device(ft.Device) == nil {
			return nil, fmt.Errorf("fleet: fault names unknown device %q", ft.Device)
		}
		if ft.At < 0 {
			return nil, fmt.Errorf("fleet: fault on %s at negative time %v", ft.Device, ft.At)
		}
		switch ft.Kind {
		case FaultOutage, FaultBrownout:
			if ft.Duration <= 0 {
				return nil, fmt.Errorf("fleet: %s on %s needs a positive duration", ft.Kind, ft.Device)
			}
			if ft.Kind == FaultBrownout && ft.Factor <= 0 {
				return nil, fmt.Errorf("fleet: brownout on %s needs a positive factor", ft.Device)
			}
			evs = append(evs, faultEvent{at: ft.At, fault: ft})
			evs = append(evs, faultEvent{at: ft.At + ft.Duration, fault: ft, recovery: true})
		case FaultCrash:
			if ft.Duration < 0 {
				return nil, fmt.Errorf("fleet: crash on %s has negative restart time %v", ft.Device, ft.Duration)
			}
			if f.durable == nil {
				return nil, fmt.Errorf("fleet: crash on %s requires the Durability journal", ft.Device)
			}
			evs = append(evs, faultEvent{at: ft.At, fault: ft})
			evs = append(evs, faultEvent{at: ft.At + ft.Duration, fault: ft, recovery: true})
		case FaultDeath:
			evs = append(evs, faultEvent{at: ft.At, fault: ft})
		default:
			return nil, fmt.Errorf("fleet: unknown fault kind %d", ft.Kind)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.recovery != b.recovery {
			return !a.recovery
		}
		return a.fault.Device < b.fault.Device
	})
	return evs, nil
}

// device returns the fleet member with the given name, or nil.
func (f *Fleet) device(name string) *Device {
	for _, d := range f.devices {
		if d.Name == name {
			return d
		}
	}
	return nil
}
