package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/runtime"
)

// newTestFleet builds a small fleet with per-test admission settings.
func newTestFleet(t *testing.T, adm Admission, devs ...DeviceConfig) *Fleet {
	t.Helper()
	f, err := New(Config{Seed: 1, Devices: devs, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// checkNoLeaks asserts every device's loader holds zero residency references.
func checkNoLeaks(t *testing.T, f *Fleet) {
	t.Helper()
	for _, d := range f.Devices() {
		if n := d.DML.TotalRefs(); n != 0 {
			t.Fatalf("device %s leaked %d residency refs", d.Name, n)
		}
	}
}

// TestFaultOutageMigratesStream: a stream serving on a device that suffers an
// outage is checkpointed, migrated to the healthy device, and completes with
// every frame served exactly once — records contiguous across the move, no
// refs leaked on either device.
func TestFaultOutageMigratesStream(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "d0", Kind: FaultOutage, At: 2 * time.Second, Duration: 30 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if out.Rejected || out.Aborted {
		t.Fatalf("stream outcome %+v", out)
	}
	if out.Migrations != 1 || res.Migrations != 1 {
		t.Fatalf("migrations = %d (result %d), want 1", out.Migrations, res.Migrations)
	}
	if want := []string{"d0", "d1"}; len(out.Devices) != 2 || out.Devices[0] != want[0] || out.Devices[1] != want[1] {
		t.Fatalf("serving path %v, want %v", out.Devices, want)
	}
	if out.Device != "d1" {
		t.Fatalf("final device %s, want d1", out.Device)
	}
	if out.DowntimeSec < 0 {
		t.Fatalf("negative downtime %v", out.DowntimeSec)
	}
	if got := len(out.Stream.Result.Records); got != len(frames) {
		t.Fatalf("served %d frames, want %d", got, len(frames))
	}
	for i, rec := range out.Stream.Result.Records {
		if rec.Index != frames[i].Index {
			t.Fatalf("record %d has frame index %d, want %d (duplicated or dropped frame)",
				i, rec.Index, frames[i].Index)
		}
	}
	// Timings stay monotonic across the move and frames after the fault
	// cannot complete before it.
	for i := 1; i < len(out.Stream.Timings); i++ {
		if out.Stream.Timings[i].Done < out.Stream.Timings[i-1].Done {
			t.Fatalf("timing %d regressed across migration", i)
		}
	}
	checkNoLeaks(t, f)
}

// TestFaultDeathPermanentlyExcludesDevice: after a death, the device serves
// nothing more — later arrivals all land on the survivor — and the dead
// device's stats say so.
func TestFaultDeathPermanentlyExcludesDevice(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:20]
	mk := func(name string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: at, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	res, err := f.RunWithFaults(
		[]StreamRequest{mk("a", 0), mk("b", 10*time.Second), mk("c", 20*time.Second)},
		[]Fault{{Device: "d0", Kind: FaultDeath, At: time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 3 || res.Aborted != 0 {
		t.Fatalf("served %d aborted %d, want 3/0", res.Served, res.Aborted)
	}
	for _, out := range res.Outcomes[1:] {
		if out.Device != "d1" {
			t.Fatalf("stream %s on %s after d0 died", out.Name, out.Device)
		}
	}
	var d0 DeviceStats
	for _, ds := range res.Devices {
		if ds.Name == "d0" {
			d0 = ds
		}
	}
	if !d0.Dead || d0.Displaced != 1 || d0.DownSec <= 0 {
		t.Fatalf("dead-device stats %+v", d0)
	}
	checkNoLeaks(t, f)
}

// TestFaultBrownoutSlowsWithoutMigration: a brownout stretches service time
// but keeps the stream on its device; after recovery the device returns to
// its base scale.
func TestFaultBrownoutSlowsWithoutMigration(t *testing.T) {
	run := func(faults []Fault) (*Result, *Fleet) {
		f := newTestFleet(t, Admission{}, DeviceConfig{Name: "solo", Seed: 1})
		res, err := f.RunWithFaults([]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: testFrames(t)[:80], PeriodSec: 0, // offline pacing
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}}, faults)
		if err != nil {
			t.Fatal(err)
		}
		return res, f
	}
	base, _ := run(nil)
	slow, f := run([]Fault{{
		Device: "solo", Kind: FaultBrownout, At: 0,
		Duration: 1000 * time.Second, Factor: 3,
	}})
	out := slow.Outcomes[0]
	if out.Migrations != 0 {
		t.Fatalf("brownout migrated the stream (%d)", out.Migrations)
	}
	ratio := float64(slow.Horizon) / float64(base.Horizon)
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("brownout horizon ratio %.3f, want ~3", ratio)
	}
	if ts := f.Devices()[0].Sys.SoC.TimeScale; ts != 1 {
		t.Fatalf("time scale %v after recovery, want 1", ts)
	}
}

// TestFaultOverlappingBrownoutsCompound: two concurrent brownouts multiply
// the device's time scale while both are active, the earlier recovery only
// removes its own factor, and the scale returns to exactly the base once the
// last one ends.
func TestFaultOverlappingBrownoutsCompound(t *testing.T) {
	run := func(faults []Fault) (*Result, *Fleet) {
		f := newTestFleet(t, Admission{}, DeviceConfig{Name: "solo", Seed: 1})
		res, err := f.RunWithFaults([]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: testFrames(t)[:80], PeriodSec: 0, // offline pacing
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}}, faults)
		if err != nil {
			t.Fatal(err)
		}
		return res, f
	}
	base, _ := run(nil)
	long := 1000 * time.Second
	nested, f := run([]Fault{
		{Device: "solo", Kind: FaultBrownout, At: 0, Duration: long, Factor: 2},
		{Device: "solo", Kind: FaultBrownout, At: 0, Duration: long / 2, Factor: 2},
	})
	// The whole (short) run sits inside both windows: compounded 4×, not 2×.
	ratio := float64(nested.Horizon) / float64(base.Horizon)
	if ratio < 3.8 || ratio > 4.2 {
		t.Fatalf("nested brownout horizon ratio %.3f, want ~4 (overlap must compound)", ratio)
	}
	if ts := f.Devices()[0].Sys.SoC.TimeScale; ts != 1 {
		t.Fatalf("time scale %v after both recoveries, want exactly 1", ts)
	}
}

// TestFaultFrameAttributionAcrossMigration: per-device frame totals credit
// each device with exactly the frames it served — pre-fault frames stay with
// the failed device, not the migration target.
func TestFaultFrameAttributionAcrossMigration(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "d0", Kind: FaultDeath, At: 2 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var d0, d1 DeviceStats
	for _, ds := range res.Devices {
		switch ds.Name {
		case "d0":
			d0 = ds
		case "d1":
			d1 = ds
		}
	}
	if d0.Frames == 0 {
		t.Fatal("failed device credited with no frames despite serving pre-fault")
	}
	if d1.Frames == 0 {
		t.Fatal("migration target credited with no frames")
	}
	if got := d0.Frames + d1.Frames; got != len(frames) {
		t.Fatalf("frame attribution: %d + %d != %d", d0.Frames, d1.Frames, len(frames))
	}
	if d0.Streams != 0 || d1.Streams != 1 {
		t.Fatalf("stream completion counts: d0=%d d1=%d, want 0/1", d0.Streams, d1.Streams)
	}
}

// TestFaultDisplacedStreamsDoNotConsumeQueueLimit: displaced streams bypass
// the admission waiting room, so they must not fill it against genuine new
// arrivals either.
func TestFaultDisplacedStreamsDoNotConsumeQueueLimit(t *testing.T) {
	f := newTestFleet(t, Admission{PerDeviceStreams: 1, QueueLimit: 1},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:50]
	mk := func(name string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: at, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	// a and b fill both devices; d0's outage pushes a displaced stream into
	// the queue. c arrives while it waits: the 1-slot waiting room must still
	// be free for c, since the displaced entry bypasses the limit.
	res, err := f.RunWithFaults(
		[]StreamRequest{mk("a", 0), mk("b", 0), mk("c", 2*time.Second)},
		[]Fault{{Device: "d0", Kind: FaultOutage, At: time.Second, Duration: 10 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range res.Outcomes {
		if out.Name == "c" && out.Rejected {
			t.Fatal("new arrival rejected because a displaced stream consumed the queue limit")
		}
	}
	if res.Served != 3 {
		t.Fatalf("served %d, want 3", res.Served)
	}
	checkNoLeaks(t, f)
}

// TestFaultAllDevicesDownAbortsDisplaced: when the whole fleet dies, in-flight
// streams are aborted with their partial results retained — and no refs leak
// even though no device survived to resume them.
func TestFaultAllDevicesDownAbortsDisplaced(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "only"})
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: testFrames(t)[:100], PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "only", Kind: FaultDeath, At: 3 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if !out.Aborted || res.Aborted != 1 || res.Served != 0 {
		t.Fatalf("outcome %+v (served %d aborted %d)", out, res.Served, res.Aborted)
	}
	if out.Stream == nil || len(out.Stream.Result.Records) == 0 {
		t.Fatal("aborted stream lost its partial records")
	}
	if len(out.Stream.Result.Records) >= 100 {
		t.Fatal("aborted stream claims a full serve")
	}
	checkNoLeaks(t, f)
}

// TestFaultDisplacedStreamFreesBudgetSlot is the regression test for the
// queued-stream budget-slot bug: closing a displaced stream's session while
// it waits in the admission queue must also free the failed device's budget
// slot. After the outage ends, the recovered device must accept a new stream
// — a phantom slot would turn it away.
func TestFaultDisplacedStreamFreesBudgetSlot(t *testing.T) {
	f := newTestFleet(t, Admission{PerDeviceStreams: 1, QueueLimit: 4},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:50]
	// a and b fill both 1-slot devices. d0's outage displaces its stream
	// into the queue; d1 is full, so the only way back is d0's own slot at
	// recovery — which a phantom entry left behind by the closed session
	// would still be consuming.
	res, err := f.RunWithFaults(
		[]StreamRequest{
			{Name: "a", Scenario: "scenario2", Arrival: 0, Frames: frames,
				PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
			{Name: "b", Scenario: "scenario2", Arrival: 0, Frames: frames,
				PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu")},
		},
		[]Fault{{Device: "d0", Kind: FaultOutage, At: time.Second, Duration: time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2 || res.Rejected != 0 || res.Aborted != 0 {
		t.Fatalf("served %d rejected %d aborted %d, want 2/0/0", res.Served, res.Rejected, res.Aborted)
	}
	var displaced *StreamOutcome
	for _, out := range res.Outcomes {
		if out.Migrations > 0 {
			displaced = out
		}
	}
	if displaced == nil {
		t.Fatal("outage displaced no stream")
	}
	if displaced.Device != "d0" {
		t.Fatalf("displaced stream resumed on %s, want the recovered d0", displaced.Device)
	}
	// Resumption happens the moment the slot frees: at recovery, not when
	// d1's stream departs. Downtime is therefore exactly the outage length.
	if displaced.DowntimeSec != 1 {
		t.Fatalf("downtime %.3fs, want exactly the 1s outage (phantom slot delays resumption)",
			displaced.DowntimeSec)
	}
	checkNoLeaks(t, f)
}

// TestFaultQueueDelayExcludesDisplacementWait pins the displaced-stream
// queue accounting: QueueDelaySec measures the wait before the *original*
// admission only, and the wait after displacement — from the fault edge, not
// from the stream's original arrival — is DowntimeSec. A stream admitted
// instantly, displaced at t=1s and resuming at t=2s must therefore report
// queue delay 0 and downtime 1, not a 2-second queue delay re-measured from
// arrival.
func TestFaultQueueDelayExcludesDisplacementWait(t *testing.T) {
	f := newTestFleet(t, Admission{PerDeviceStreams: 1, QueueLimit: 4},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:50]
	mk := func(name string) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: 0, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	// a and b fill both 1-slot devices at t=0 with zero queue delay. d0's
	// 1-second outage displaces its stream; d1 stays full, so the displaced
	// stream waits out the whole outage and resumes on the recovered d0.
	res, err := f.RunWithFaults(
		[]StreamRequest{mk("a"), mk("b")},
		[]Fault{{Device: "d0", Kind: FaultOutage, At: time.Second, Duration: time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var displaced *StreamOutcome
	for _, out := range res.Outcomes {
		if out.Migrations > 0 {
			displaced = out
		}
	}
	if displaced == nil {
		t.Fatal("outage displaced no stream")
	}
	if got := displaced.QueueDelaySec(); got != 0 {
		t.Fatalf("queue delay %.3fs, want 0 — the displacement wait must not be "+
			"re-measured from the original arrival", got)
	}
	if displaced.DowntimeSec != 1 {
		t.Fatalf("downtime %.3fs, want exactly the 1s from displacement to resume",
			displaced.DowntimeSec)
	}
	checkNoLeaks(t, f)
}

// TestFaultMigrationRequeuesAheadOfArrivals: displaced streams re-enter
// service before new arrivals waiting in the same queue.
func TestFaultMigrationRequeuesAheadOfArrivals(t *testing.T) {
	f := newTestFleet(t, Admission{PerDeviceStreams: 1, QueueLimit: 4},
		DeviceConfig{Name: "d0"}, DeviceConfig{Name: "d1"})
	frames := testFrames(t)[:40]
	mk := func(name string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: at, Frames: frames,
			PeriodSec: 0.1, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	// a and b fill both 1-slot devices; n queues behind them; then d0 fails,
	// displacing its stream into the queue. The displaced stream must resume
	// before n is admitted.
	res, err := f.RunWithFaults(
		[]StreamRequest{mk("a", 0), mk("b", 0), mk("n", time.Second)},
		[]Fault{{Device: "d0", Kind: FaultOutage, At: 2 * time.Second, Duration: time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var displaced, newcomer *StreamOutcome
	for _, out := range res.Outcomes {
		switch {
		case out.Migrations > 0:
			displaced = out
		case out.Name == "n":
			newcomer = out
		}
	}
	if displaced == nil {
		t.Fatal("no stream migrated")
	}
	resumeAt := time.Duration(displaced.DowntimeSec*float64(time.Second)) + 2*time.Second
	if newcomer.AdmittedAt < resumeAt {
		t.Fatalf("newcomer admitted at %v before the displaced stream resumed (~%v)",
			newcomer.AdmittedAt, resumeAt)
	}
	checkNoLeaks(t, f)
}

// TestFaultFreeRunBitIdenticalToRun pins the acceptance criterion directly:
// RunWithFaults with an empty schedule reproduces Run bit-for-bit on a seeded
// workload.
func TestFaultFreeRunBitIdenticalToRun(t *testing.T) {
	devs := []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}}
	a := runSeededWorkload(t, devs, "residency-affinity")
	place, err := PlacementByName("residency-affinity")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Seed: 7, Devices: devs, Placement: place,
		Admission: Admission{PerDeviceStreams: 2, QueueLimit: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := seededRequests(t)
	b, err := f.RunWithFaults(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, a, b, "fault-free-vs-run")
}

// TestGenerateFaultsDeterministicAndBounded pins the generator: identical
// configs produce identical schedules, deaths respect the budget, and every
// fault names a known device inside the horizon.
func TestGenerateFaultsDeterministicAndBounded(t *testing.T) {
	names := []string{"edge-b", "edge-a", "edge-c"}
	cfg := DefaultFaultConfig()
	cfg.RatePerSec = 0.2
	a, err := GenerateFaults(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaults(cfg, []string{"edge-c", "edge-a", "edge-b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("default config generated no faults at 0.2/s over 120s")
	}
	if len(a) != len(b) {
		t.Fatalf("listing order changed schedule length: %d vs %d", len(a), len(b))
	}
	deaths := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across listing orders: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].At < 0 || a[i].At >= cfg.Horizon {
			t.Fatalf("fault %d outside horizon: %+v", i, a[i])
		}
		if a[i].Kind == FaultDeath {
			deaths++
		}
		known := false
		for _, n := range names {
			if a[i].Device == n {
				known = true
			}
		}
		if !known {
			t.Fatalf("fault %d names unknown device %q", i, a[i].Device)
		}
	}
	if deaths > cfg.MaxDeaths {
		t.Fatalf("%d deaths exceed budget %d", deaths, cfg.MaxDeaths)
	}
	if _, err := GenerateFaults(cfg, nil); err == nil {
		t.Fatal("no devices should fail")
	}
	cfg.RatePerSec = 0
	if _, err := GenerateFaults(cfg, names); err == nil {
		t.Fatal("zero rate should fail")
	}
}

// TestFaultScheduleValidation covers RunWithFaults argument contracts.
func TestFaultScheduleValidation(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0"})
	reqs := []StreamRequest{{
		Name: "s", Scenario: "scenario2", Frames: testFrames(t)[:5], PeriodSec: 0.1,
		Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
	}}
	bad := []([]Fault){
		{{Device: "nope", Kind: FaultOutage, At: 0, Duration: time.Second}},
		{{Device: "d0", Kind: FaultOutage, At: -time.Second, Duration: time.Second}},
		{{Device: "d0", Kind: FaultOutage, At: 0}},
		{{Device: "d0", Kind: FaultBrownout, At: 0, Duration: time.Second}},
		{{Device: "d0", Kind: FaultKind(99), At: 0}},
	}
	for i, faults := range bad {
		if _, err := f.RunWithFaults(reqs, faults); err == nil {
			t.Fatalf("bad schedule %d accepted", i)
		}
	}
}

// TestSnapshotAccessors covers the checkpoint's introspection surface the
// fleet and its tests rely on.
func TestSnapshotAccessors(t *testing.T) {
	f := newTestFleet(t, Admission{}, DeviceConfig{Name: "d0", Seed: 1})
	d := f.Devices()[0]
	pol, err := fixedFactory(detmodel.YoloV7, "gpu")(d.Sys)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := runtime.OpenSession(d.Sys, d.DML, runtime.StreamSpec{
		Name: "s", Frames: testFrames(t)[:10], PeriodSec: 0.1, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := sess.Snapshot()
	if snap.Name() != "s" || snap.Remaining() != 6 {
		t.Fatalf("snapshot name %q remaining %d", snap.Name(), snap.Remaining())
	}
	if held, ok := snap.Held(); !ok || held.Model != detmodel.YoloV7 {
		t.Fatalf("held manifest %v/%v", held, ok)
	}
	if got := len(snap.Partial().Result.Records); got != 4 {
		t.Fatalf("partial records %d, want 4", got)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, f)
}
