// Package fleet is the multi-device serving layer of the reproduction: K
// virtual Xavier-NX-class devices (each a zoo.System + loader.Loader pair,
// with heterogeneous capacities via per-device accel time scales), a
// dispatcher with pluggable placement policies, an admission gate that
// rejects or queues streams past a per-device concurrency budget, and a
// seeded fault injector (outages, deaths, brownouts) with session
// checkpoint/migration so streams survive device failures.
//
// Where the paper schedules within one diversely heterogeneous device
// (which model, which accelerator, per frame), the fleet schedules across
// devices: which device serves a newly arriving stream, given model
// residency, queue depth and heterogeneous speed. The simulation reuses the
// deterministic discrete-event idiom of runtime.Serve — one global event
// loop interleaving stream arrivals, per-frame steps, departures and fault
// edges in virtual-time order — so a fleet run is bit-replayable regardless
// of host core count, and a single-device fleet with one statically admitted
// stream reproduces runtime.Serve (and therefore the solo engine)
// bit-for-bit.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/accel"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// PolicyFactory builds one stream's per-frame decision logic against the
// device the stream lands on. Policies are stateful, so the dispatcher calls
// the factory once per admitted stream — and once more per migration, since a
// migrated stream needs a fresh instance bound to its new device (the old
// instance's checkpointed state is restored into it when the policy is a
// runtime.PortablePolicy).
type PolicyFactory func(sys *zoo.System) (runtime.Policy, error)

// StreamRequest is one stream offered to the fleet.
type StreamRequest struct {
	// Name labels the stream in outcomes.
	Name string
	// Scenario is the content key the residency-affinity placement learns
	// engine usage under (streams of one scenario tend to exercise the same
	// (model, kind) engines).
	Scenario string
	// Arrival is when the stream asks to be served, on the global virtual
	// clock.
	Arrival time.Duration
	// Frames is the finite rendered frame sequence.
	Frames []scene.Frame
	// PeriodSec is the camera frame period (as in runtime.StreamSpec).
	PeriodSec float64
	// Policy builds the stream's decision logic on its serving device.
	Policy PolicyFactory
	// BestEffort marks a stream the fleet may shed under duress: when a crash
	// destroys more capacity than the survivors can absorb, best-effort
	// streams are dropped (keeping their partial results) so premium streams
	// recover first. Default false: the stream is premium and must survive
	// every recoverable fault.
	BestEffort bool
}

// DeviceConfig describes one device of the fleet.
type DeviceConfig struct {
	// Name identifies the device; placement tie-breaks and seed derivation
	// key on it, so fleets with the same names behave identically however
	// the slice is ordered.
	Name string
	// Scale multiplies every execution latency on the device (accel
	// TimeScale): 1 is the characterized baseline, 2 a half-speed device.
	// 0 defaults to 1.
	Scale float64
	// Seed overrides the device's derived RNG seed when non-zero; the
	// default is DeriveSeed(fleet seed, name).
	Seed uint64
}

// Device is one serving platform of the fleet.
type Device struct {
	Name  string
	Scale float64
	Sys   *zoo.System
	DML   *loader.Loader

	// region is the device's event-heap shard (see Config.Regions), fixed
	// at build time by name hash so listing order cannot move a device
	// between regions.
	region int

	sessions []*activeSession
	served   int
	frames   int
	horizon  time.Duration

	// Failure state: a down device is excluded from placement; dead means
	// permanently. downSince/downSec meter unavailability, displaced counts
	// streams checkpointed away by faults, and brownouts lists the currently
	// active brownout faults — overlapping brownouts compound, and each
	// recovery removes exactly its own fault, so the time scale returns to
	// the exact base only when the last one ends.
	down      bool
	dead      bool
	downSince time.Duration
	downSec   time.Duration
	displaced int
	crashes   int
	brownouts []Fault

	// Elasticity state: auto marks a device the autoscaler provisioned from
	// the warm pool; retired marks one it decommissioned (drained and parked
	// — permanently out of placement, like dead but voluntary). drained
	// counts sessions migrated away by scale-in, the voluntary counterpart
	// of displaced.
	auto          bool
	retired       bool
	provisionedAt time.Duration
	retiredAt     time.Duration
	drained       int
}

// ActiveStreams returns the number of streams currently admitted to the
// device.
func (d *Device) ActiveStreams() int { return len(d.sessions) }

// Down reports whether the device is currently unavailable (outage or death).
func (d *Device) Down() bool { return d.down }

// Dead reports whether the device failed permanently.
func (d *Device) Dead() bool { return d.dead }

// Retired reports whether the autoscaler decommissioned the device.
func (d *Device) Retired() bool { return d.retired }

// AutoProvisioned reports whether the autoscaler provisioned the device from
// its warm pool (false for the configured base fleet).
func (d *Device) AutoProvisioned() bool { return d.auto }

// OutstandingFrames returns the total frames not yet served across the
// device's active streams — the dispatcher's queue-depth signal.
func (d *Device) OutstandingFrames() int {
	n := 0
	for _, as := range d.sessions {
		n += as.left
	}
	return n
}

// Horizon returns the completion time of the device's latest queued work.
func (d *Device) Horizon() time.Duration {
	h := d.horizon
	for _, as := range d.sessions {
		if as.horizon > h {
			h = as.horizon
		}
	}
	return h
}

// activeSession is one admitted stream being served on a device.
type activeSession struct {
	sess *runtime.Session
	dev  *Device
	out  *StreamOutcome
	seq  int // admission order, the within-device event tie-break
	// req is retained for migration: a displaced stream rebuilds its policy
	// on the target device through the request's factory.
	req *StreamRequest
	// prevRecords is how many records the stream carried when it landed on
	// this device, so per-device frame totals credit each device with only
	// the frames it actually served.
	prevRecords int
	// sinceJournal counts frames served since the stream's last durable
	// checkpoint (meaningful only with Durability enabled).
	sinceJournal int
	// sr is the stream's flight-recorder span buffer (nil when no Recorder
	// is attached): the session emits engine and frame spans into it, and
	// the loop collects them at globally-ordered points.
	sr *obs.StreamRec

	// Cached event view: ReadyAt/Horizon/Done/Remaining mirrored from the
	// session, refreshed only on the transitions that can change them
	// (admission, Step, Snapshot, Drain, displacement, TimeScale change), so
	// neither the event loop nor the placement signals recompute through the
	// session per comparison. heapPos is the session's slot in its region's
	// event heap (-1 when not enqueued).
	readyAt  time.Duration
	horizon  time.Duration
	finished bool
	left     int
	heapPos  int
}

// refresh re-mirrors the cached event view from the live session. Every
// transition that can move ReadyAt/Horizon/Done/Remaining must call it (the
// auditSessionCache test hook panics otherwise).
func (as *activeSession) refresh() {
	s := as.sess
	as.finished = s.Done()
	as.horizon = s.Horizon()
	as.left = s.Remaining()
	if as.finished {
		as.readyAt = as.horizon
	} else {
		as.readyAt = s.ReadyAt()
	}
}

// pending is one stream waiting for admission: a new arrival, or a displaced
// stream carrying its checkpoint (snap != nil) after a device fault.
type pending struct {
	out *StreamOutcome
	req *StreamRequest
	// snap is the session checkpoint of a displaced stream; since is when its
	// device failed (downtime accrues until re-admission).
	snap  *runtime.SessionSnapshot
	since time.Duration
	// crashed distinguishes a crash-recovery checkpoint (resumed from the
	// durable journal) from a live drain snapshot, so the flight recorder
	// can type the re-admission span.
	crashed bool
}

// Admission is the fleet's concurrency gate.
type Admission struct {
	// PerDeviceStreams caps concurrently served streams per device
	// (<= 0: unlimited). PR 2 located the single-device capacity cliff at 4
	// concurrent SHIFT streams, so production budgets sit below it.
	PerDeviceStreams int
	// QueueLimit bounds the fleet-wide waiting room used when every device
	// is at budget: 0 rejects immediately, negative queues without bound.
	// Displaced streams bypass the limit — they were already admitted once
	// and re-queue ahead of new arrivals.
	QueueLimit int
}

// DefaultAdmission keeps devices under the PR 2 capacity cliff and queues a
// handful of streams rather than rejecting outright.
func DefaultAdmission() Admission {
	return Admission{PerDeviceStreams: 3, QueueLimit: 8}
}

// Config assembles a fleet.
type Config struct {
	// Seed drives device seed derivation (per-device jitter streams).
	Seed uint64
	// Devices lists the fleet members. Order does not matter: devices are
	// sorted by name, and every decision keys on names, so results are
	// identical for any listing order.
	Devices []DeviceConfig
	// Placement chooses the serving device for each admitted stream
	// (default round-robin).
	Placement Placement
	// Admission gates stream concurrency (zero value: unlimited, no queue).
	Admission Admission
	// NewSystem builds one device's platform + zoo from its seed (default
	// zoo.Default). The autoscaler provisions warm-pool devices through the
	// same factory.
	NewSystem func(seed uint64) *zoo.System
	// Eviction is each device loader's eviction policy (default LRR).
	Eviction loader.EvictionPolicy
	// Autoscale enables the SLO-driven elastic controller (nil: the fleet is
	// fixed and behaves bit-identically to a build without the autoscaler).
	Autoscale *AutoscaleConfig
	// Durability enables the durable checkpoint journal, the recovery store
	// crash faults restore from (nil: no journaling; crash faults are then
	// rejected at schedule validation, and results are bit-identical to a
	// build without the journal).
	Durability *DurabilityConfig
	// Regions shards the devices into R groups that advance in parallel
	// (via internal/par) between globally-ordered cross-region events —
	// arrivals, fault edges, scale ticks and queue-draining admissions.
	// Results are bit-identical for every region count and worker count;
	// <= 1 keeps the event loop fully sequential.
	Regions int
	// OnDepart, when set, is invoked with each completing stream's outcome
	// in global event order, after the fleet's own bookkeeping. Large-scale
	// sweeps reduce outcomes incrementally and set out.Stream = nil to
	// release the per-frame records — the fleet never reads a departed
	// stream's records again, and the run's Horizon is tracked
	// independently. Rejected, aborted and shed streams do not pass through
	// the hook.
	OnDepart func(*StreamOutcome)
	// LegacyScan pins event selection to the pre-heap O(devices × sessions)
	// rescan. Results are bit-identical either way — the scan survives only
	// as the equivalence-test oracle and the scale sweep's baseline.
	LegacyScan bool
	// Recorder attaches the flight recorder (internal/obs): the run records
	// typed lifecycle spans and derives the metrics registry from them.
	// Strictly observational — results are bit-identical with or without it,
	// at every region count (pinned by the recorder equivalence tests and
	// the determinism fuzzer). Nil disables recording at zero cost beyond
	// one nil-check per hook.
	Recorder *obs.Recorder
	// Prefetch enables TAGE-style swap prediction with speculative overlap
	// prefetch (internal/predict) on every served session, plus an
	// admission-time pre-warm: an arriving stream's scenario affinity set (or
	// a migrating stream's predicted working set) is speculatively loaded on
	// the target device before its first frame. Strictly advisory — nil is
	// bit-identical to a build without the predictor, and with it set the
	// decision stream (pairs, detections, fallbacks, admission and placement)
	// is unchanged; only latency and energy move. Wrong predictions cost
	// bandwidth and ghost memory only: speculative residents are invisible to
	// eviction pre-checks and are reclaimed before any demand eviction.
	Prefetch *predict.Config
}

// DeriveSeed returns the deterministic per-device seed used when a
// DeviceConfig does not pin one: a function of the fleet seed and the device
// name only, so device listing order cannot perturb any jitter stream.
func DeriveSeed(seed uint64, name string) uint64 {
	return rng.New(seed).Fork("device/" + name).Uint64()
}

// Fleet owns K devices and dispatches streams across them.
type Fleet struct {
	devices []*Device // sorted by name
	place   Placement
	adm     Admission

	// Provisioning inputs retained from the config so the autoscaler can
	// build warm-pool devices mid-run exactly the way New built the base
	// fleet.
	seed      uint64
	newSystem func(seed uint64) *zoo.System
	evict     loader.EvictionPolicy

	// affinity is the dispatcher's learned residency model: for each
	// scenario, the (model, kind) engines streams of that scenario ended up
	// serving from, keyed by "model/kind" with a representative pair as
	// value. Completed streams teach it — and displaced streams teach it
	// their partial working set at fault time, so the residency-affinity
	// placement re-learns where a migrating scenario's engines live.
	affinity map[string]map[string]zoo.Pair
	seq      int

	// auto is the elastic controller (nil when disabled). live counts
	// serving-capable devices (not dead, not retired) and peakLive its
	// maximum over the run.
	auto     *autoscaler
	live     int
	peakLive int

	// Durability state (inert when durable == nil): journalStore maps each
	// in-flight stream to its latest wire-encoded checkpoint, journalSeq
	// stamps entries in write order, and the remaining fields meter journal
	// traffic and crash recovery for the run result.
	durable        *DurabilityConfig
	journalStore   map[*StreamOutcome]*journalEntry
	journalSeq     uint64
	journalWrites  int
	journalBytes   int64
	crashes        int
	replayedFrames int

	// Event-loop state: nregions/regions hold the sharded session-event
	// heaps (one region when sharding is off); legacyScan pins the selector
	// to the rescan; auditCache (tests only) cross-checks every cached
	// session view before each selection; events counts processed loop
	// events; resHorizon accumulates departure completion times so
	// Result.Horizon survives outcomes whose records an OnDepart hook
	// released.
	nregions   int
	regions    []*region
	legacyScan bool
	auditCache bool
	onDepart   func(*StreamOutcome)
	resHorizon time.Duration
	events     int64

	// rec is the attached flight recorder (nil: detached, every hook is a
	// single nil-check).
	rec *obs.Recorder

	// prefetch enables per-session swap prediction (nil: off, bit-identical
	// to a build without it); prefTotal accumulates departed sessions' fleet-
	// wide predictor stats in global event order (aborted and shed streams'
	// partial stats are not folded — their sessions never depart).
	prefetch  *predict.Config
	prefTotal predict.Stats
}

// New assembles a fleet from its config.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: no devices configured")
	}
	newSystem := cfg.NewSystem
	if newSystem == nil {
		newSystem = zoo.Default
	}
	place := cfg.Placement
	if place == nil {
		place = NewRoundRobin()
	}
	if cfg.Regions < 0 {
		return nil, fmt.Errorf("fleet: negative region count %d", cfg.Regions)
	}
	f := &Fleet{
		place:        place,
		adm:          cfg.Admission,
		seed:         cfg.Seed,
		newSystem:    newSystem,
		evict:        cfg.Eviction,
		affinity:     map[string]map[string]zoo.Pair{},
		durable:      cfg.Durability,
		journalStore: map[*StreamOutcome]*journalEntry{},
		nregions:     max(1, cfg.Regions),
		legacyScan:   cfg.LegacyScan,
		onDepart:     cfg.OnDepart,
		rec:          cfg.Recorder,
		prefetch:     cfg.Prefetch,
	}
	if f.prefetch != nil {
		// Normalize once so fleet-level knob reads (the pre-warm depth
		// cap) see the same values the per-session predictors resolve.
		norm := f.prefetch.WithDefaults()
		f.prefetch = &norm
	}
	for i := 0; i < f.nregions; i++ {
		f.regions = append(f.regions, &region{})
	}
	seen := map[string]bool{}
	for _, dc := range cfg.Devices {
		if dc.Name == "" {
			return nil, fmt.Errorf("fleet: device with empty name")
		}
		if seen[dc.Name] {
			return nil, fmt.Errorf("fleet: duplicate device name %q", dc.Name)
		}
		seen[dc.Name] = true
		d, err := f.buildDevice(dc, 0)
		if err != nil {
			return nil, err
		}
		f.devices = append(f.devices, d)
	}
	sort.Slice(f.devices, func(i, j int) bool { return f.devices[i].Name < f.devices[j].Name })
	f.live = len(f.devices)
	f.peakLive = f.live
	if cfg.Autoscale != nil {
		acfg, err := cfg.Autoscale.withDefaults(len(cfg.Devices))
		if err != nil {
			return nil, err
		}
		// Warm-pool names are fixed up front, so a template can never
		// collide with a base device mid-run.
		for _, tpl := range acfg.Templates {
			for i := 0; i < tpl.Count; i++ {
				name := tpl.deviceName(i)
				if seen[name] {
					return nil, fmt.Errorf("fleet: warm-pool device name %q collides", name)
				}
				seen[name] = true
			}
		}
		f.auto = newAutoscaler(acfg)
	}
	return f, nil
}

// buildDevice assembles one serving platform from its config — shared by New
// (base fleet) and the autoscaler (warm-pool provisioning). poolMB > 0
// replaces the SoC engine arena after construction, the warm-pool template's
// memory knob.
func (f *Fleet) buildDevice(dc DeviceConfig, poolMB int64) (*Device, error) {
	scale := dc.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("fleet: device %q has negative scale %v", dc.Name, scale)
	}
	devSeed := dc.Seed
	if devSeed == 0 {
		devSeed = DeriveSeed(f.seed, dc.Name)
	}
	sys := f.newSystem(devSeed)
	if err := sys.SoC.SetTimeScale(scale); err != nil {
		return nil, fmt.Errorf("fleet: device %q: %w", dc.Name, err)
	}
	if poolMB > 0 {
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, poolMB*accel.MB)
	}
	return &Device{
		Name:   dc.Name,
		Scale:  scale,
		Sys:    sys,
		DML:    loader.New(sys, f.evict),
		region: regionIndex(dc.Name, f.nregions),
	}, nil
}

// Devices returns the fleet members in name order.
func (f *Fleet) Devices() []*Device { return f.devices }

// Affinity returns the learned (model, kind) engine set for a scenario, in
// deterministic key order.
func (f *Fleet) Affinity(scenario string) []zoo.Pair {
	m := f.affinity[scenario]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]zoo.Pair, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, m[k])
	}
	return pairs
}

// StreamOutcome is one offered stream's fate.
type StreamOutcome struct {
	Name     string
	Scenario string
	// Device is the serving device's name — the last one, when the stream
	// migrated (empty when rejected). Devices lists the full serving path.
	Device  string
	Devices []string
	Arrival time.Duration
	// AdmittedAt is when the stream started being served — its arrival, or
	// later when it sat in the admission queue.
	AdmittedAt time.Duration
	// Rejected marks streams the admission gate turned away.
	Rejected bool
	// Aborted marks streams displaced by a fault that could never resume
	// (every remaining device down); Stream then holds the partial records.
	Aborted bool
	// BestEffort echoes the request's serving class.
	BestEffort bool
	// Shed marks a best-effort stream the fleet dropped during crash recovery
	// because the surviving devices lacked admission slack; Stream then holds
	// the partial records its last checkpoint preserved.
	Shed bool
	// Migrations counts device moves after faults; DowntimeSec is the total
	// time the stream spent displaced, waiting to resume.
	Migrations  int
	DowntimeSec float64
	// ReplayedFrames counts frames served, lost to a crash (served after the
	// last durable checkpoint) and served again after recovery.
	ReplayedFrames int
	PeriodSec      float64
	// Stream holds the per-frame records and timings (nil when rejected).
	Stream *runtime.StreamResult
}

// QueueDelaySec returns how long the stream waited for admission.
func (o *StreamOutcome) QueueDelaySec() float64 {
	return (o.AdmittedAt - o.Arrival).Seconds()
}

// DeviceStats summarizes one device's run.
type DeviceStats struct {
	Name    string
	Scale   float64
	Streams int
	Frames  int
	Loads   int
	Evicts  int
	// BusySec is total processor-busy time across the device's processors.
	BusySec float64
	// Utilization is the busy fraction of the device's most-loaded
	// processor over the fleet horizon; PeakProc names it.
	Utilization float64
	PeakProc    string
	// DownSec is the device's total unavailable time within the horizon;
	// Dead marks permanent failure; Displaced counts streams checkpointed
	// away by faults; Crashes counts process-kill faults the device took.
	DownSec   float64
	Dead      bool
	Displaced int
	Crashes   int
	// Elasticity: Auto marks a warm-pool device the autoscaler provisioned
	// (ProvisionedSec is when); Retired marks a device it drained and parked
	// (RetiredSec is when); Drained counts sessions migrated away by
	// scale-in.
	Auto           bool
	Retired        bool
	ProvisionedSec float64
	RetiredSec     float64
	Drained        int
	// LeakedRefs is the residency references still held at end of run —
	// always zero unless migration bookkeeping is broken.
	LeakedRefs int
}

// Result is one fleet run.
type Result struct {
	// Outcomes are in offered (arrival) order.
	Outcomes []*StreamOutcome
	// Devices are per-device stats in name order.
	Devices []DeviceStats
	// Horizon is the makespan: the latest stream completion.
	Horizon time.Duration
	// Offered, Served, Rejected and Aborted count streams; Migrations counts
	// successful device moves — after faults and after drain-based scale-in.
	Offered    int
	Served     int
	Rejected   int
	Aborted    int
	Migrations int
	// Faults is the schedule the run was injected with (nil when fault-free).
	Faults []Fault
	// Elasticity counters (zero when the autoscaler is off): ScaleOuts is
	// devices provisioned from the warm pool, ScaleIns devices drained and
	// retired, and PeakDevices the maximum concurrently serving-capable
	// (neither dead nor retired) device count over the run.
	ScaleOuts   int
	ScaleIns    int
	PeakDevices int
	// Durability counters (zero when the journal is off): Crashes is process
	// kills taken, Shed the best-effort streams dropped during crash
	// recovery, ReplayedFrames the work lost to crashes and served again,
	// and JournalWrites/JournalBytes the checkpoint traffic the journal
	// absorbed.
	Crashes        int
	Shed           int
	ReplayedFrames int
	JournalWrites  int
	JournalBytes   int64
	// Events counts processed loop events (arrivals, steps, departures,
	// fault edges, scale ticks) — the denominator of the scale sweep's
	// wall-clock events/sec. Deterministic per config and seed.
	Events int64
	// Prefetch aggregates the departed sessions' swap-prediction stats
	// (coverage/accuracy/timeliness inputs) — all zero when Config.Prefetch
	// is nil. Aborted and shed streams' partial stats are not folded.
	Prefetch predict.Stats
}

// Run serves the offered streams to completion on the fleet's global
// deterministic event loop, fault-free.
func (f *Fleet) Run(reqs []StreamRequest) (*Result, error) {
	return f.RunWithFaults(reqs, nil)
}

// RunWithFaults is Run with a fault schedule injected as first-class events.
// At every iteration the earliest event is processed: a stream departure
// (frees its admission slot, may drain the queue), a fault edge (onset or
// recovery), an autoscaler tick (when enabled: provision or drain-and-retire
// devices), a stream arrival (admission + placement), or the earliest-ready
// frame step across all devices. Ties resolve departure < fault < scale <
// arrival < step, then device name, then admission order — every tie-break
// keys on names and sequence numbers, never on slice order or map iteration,
// so identical configs replay bit-for-bit, an empty schedule is bit-identical
// to Run, and a disabled autoscaler adds no events at all.
//
// On an outage or death, the device's in-flight streams are checkpointed
// (runtime.Session.Snapshot), their residency holds released, and the
// checkpoints re-queued ahead of new arrivals; they resume on healthy devices
// through runtime.RestoreSession, carrying records, deadline accounting and
// scheduler state across the move. A brownout leaves streams in place and
// scales the device's execution latency until recovery.
func (f *Fleet) RunWithFaults(reqs []StreamRequest, faults []Fault) (*Result, error) {
	fevs, err := f.expandFaults(faults)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if ra.Arrival != rb.Arrival {
			return ra.Arrival < rb.Arrival
		}
		return ra.Name < rb.Name
	})
	res := &Result{Offered: len(reqs), Faults: faults}
	outcomes := make([]*StreamOutcome, 0, len(reqs))

	next := 0 // index into order: next unprocessed arrival
	fi := 0   // index into fevs: next unprocessed fault edge
	var queue []*pending

	fail := func(err error) (*Result, error) {
		// Close every device-resident session and release the journal
		// entries of both the in-flight streams and the checkpoints still
		// parked in the admission queue (re-queued displaced streams carry
		// checkpoint state) — a failed run must not leak either.
		for _, d := range f.devices {
			for _, as := range d.sessions {
				err = errors.Join(err, as.sess.Close())
				delete(f.journalStore, as.out)
			}
		}
		for _, p := range queue {
			delete(f.journalStore, p.out)
		}
		return nil, err
	}

	for {
		if f.nregions > 1 && !f.legacyScan && len(queue) == 0 {
			// Advance all regions in parallel up to the next global event.
			// Admissions happen only at global events, so a non-empty queue
			// pins the loop sequential until it drains (a departure could
			// otherwise admit a stream mid-interval on another region).
			if err := f.advanceRegions(reqs, order, next, fevs, fi); err != nil {
				return fail(err)
			}
		}
		pick, ok := f.nextEvent(reqs, order, next, fevs, fi, len(queue))
		if !ok {
			// No departures, fault edges, arrivals or steppable sessions
			// left; anything still queued can never be admitted — reject new
			// arrivals, abort displaced streams (keeping their partial
			// results).
			for _, p := range queue {
				if p.snap != nil {
					p.out.Aborted = true
					p.out.Stream = p.snap.Partial()
					if f.rec != nil {
						f.rec.Abort()
					}
				} else {
					p.out.Rejected = true
					if f.rec != nil {
						f.rec.Reject()
					}
				}
			}
			queue = nil
			break
		}
		f.events++
		switch pick.kind {
		case evDeparture:
			f.depart(pick.as)
			if err := f.drainQueue(&queue, pick.at); err != nil {
				return fail(err)
			}
		case evFault:
			ev := fevs[fi]
			fi++
			if err := f.applyFault(ev, &queue); err != nil {
				return fail(err)
			}
			if err := f.drainQueue(&queue, ev.at); err != nil {
				return fail(err)
			}
		case evScale:
			// When no departure, fault, arrival or step remains, only
			// provisioning can ever serve the queue — the tick must try
			// regardless of QueueHighWater, and if even that cannot act,
			// the scale stream ends so the queue falls through to the
			// terminal rejection above.
			acted, err := f.scaleTick(pick.at, &queue, pick.lastResort)
			if err != nil {
				return fail(err)
			}
			if !acted && pick.lastResort {
				f.auto.exhausted = true
			}
			if err := f.drainQueue(&queue, pick.at); err != nil {
				return fail(err)
			}
		case evArrival:
			req := &reqs[order[next]]
			next++
			out, err := f.arrive(req, pick.at, &queue)
			if err != nil {
				return fail(err)
			}
			outcomes = append(outcomes, out)
		case evStep:
			as := pick.as
			if err := as.sess.Step(); err != nil {
				return fail(err)
			}
			as.refresh()
			f.retrack(as)
			f.observeStep(as)
			if err := f.observeDurable(as); err != nil {
				return fail(err)
			}
			f.flushSpans(as)
		}
	}
	res.Horizon = f.resHorizon
	for _, out := range outcomes {
		switch {
		case out.Rejected:
			res.Rejected++
		case out.Aborted:
			res.Aborted++
		case out.Shed:
			res.Shed++
		default:
			res.Served++
		}
		res.Migrations += out.Migrations
		if !out.Rejected && out.Stream != nil {
			for _, tm := range out.Stream.Timings {
				if tm.Done > res.Horizon {
					res.Horizon = tm.Done
				}
			}
		}
	}
	res.Outcomes = outcomes
	res.PeakDevices = f.peakLive
	if f.auto != nil {
		res.ScaleOuts, res.ScaleIns = f.auto.outs, f.auto.ins
	}
	res.Crashes = f.crashes
	res.ReplayedFrames = f.replayedFrames
	res.JournalWrites = f.journalWrites
	res.JournalBytes = f.journalBytes
	res.Events = f.events
	res.Prefetch = f.prefTotal
	for _, d := range f.devices {
		res.Devices = append(res.Devices, f.deviceStats(d, res.Horizon))
	}
	return res, nil
}

// applyFault processes one fault edge. Durations and factors were validated
// by expandFaults, so edges cannot fail mid-run.
func (f *Fleet) applyFault(ev faultEvent, queue *[]*pending) error {
	d := f.device(ev.fault.Device)
	if d.retired {
		// A decommissioned device is parked: faults on it are moot, and
		// must not perturb the live-device accounting.
		return nil
	}
	switch ev.fault.Kind {
	case FaultBrownout:
		if d.dead {
			return nil
		}
		if ev.recovery {
			for i, bf := range d.brownouts {
				if bf == ev.fault {
					d.brownouts = append(d.brownouts[:i], d.brownouts[i+1:]...)
					break
				}
			}
		} else {
			d.brownouts = append(d.brownouts, ev.fault)
		}
		if ev.recovery && f.rec != nil {
			f.rec.Brownout(d.Name, ev.fault.At, ev.at)
		}
		// Recompute from the base so overlapping brownouts compound while
		// active and the scale returns to exactly d.Scale once all recover.
		scale := d.Scale
		for _, bf := range d.brownouts {
			scale *= bf.Factor
		}
		// Validated positive; only a harness bug could fail here.
		if err := d.Sys.SoC.SetTimeScale(scale); err != nil {
			panic(err)
		}
		// A TimeScale change cannot move an already-scheduled ReadyAt or
		// Horizon (both derive from completed work and the camera schedule,
		// not future execution speed), but the cached-event invariant is
		// "refresh on every transition that could" — so refresh and re-sort;
		// the audit test pins the invariant rather than the coincidence.
		for _, as := range d.sessions {
			as.refresh()
			f.retrack(as)
		}
	case FaultOutage, FaultDeath:
		if ev.recovery {
			// Outage over: the device rejoins placement (deaths never
			// recover, and overlapping outages do not extend each other —
			// the earliest recovery wins).
			if !d.dead && d.down {
				d.down = false
				d.downSec += ev.at - d.downSince
			}
			return nil
		}
		if d.dead {
			return nil
		}
		if ev.fault.Kind == FaultDeath {
			d.dead = true
			f.live--
		}
		if !d.down {
			d.down = true
			d.downSince = ev.at
			return f.displace(d, ev.at, queue)
		}
	case FaultCrash:
		if ev.recovery {
			// The worker process restarted: the device rejoins placement with
			// a cold loader (residency was flushed at onset).
			if !d.dead && d.down {
				d.down = false
				d.downSec += ev.at - d.downSince
			}
			return nil
		}
		if d.dead || d.down {
			// Killing an already-down worker changes nothing: its sessions
			// were evacuated or crashed out when it went down.
			return nil
		}
		d.down = true
		d.downSince = ev.at
		return f.crash(d, ev.at, queue)
	}
	return nil
}

// displace evacuates a failed device: every in-flight stream is checkpointed
// and re-queued, counted against the device's displacement meter.
func (f *Fleet) displace(d *Device, at time.Duration, queue *[]*pending) error {
	return f.evacuate(d, at, queue, "displace", func() { d.displaced++ })
}

// evacuate checkpoints every in-flight stream on a device through the
// runtime drain hook (snapshot + close, releasing its residency holds),
// frees its admission slots, and re-queues the checkpoints ahead of new
// arrivals (behind earlier displacements), in admission order — the shared
// body of fault displacement and autoscaler drain. The partial records teach
// the affinity model so residency-affinity placement re-learns the
// scenario's working set before the stream is re-placed; count meters each
// evacuated session on the caller's counter (displaced vs drained).
func (f *Fleet) evacuate(d *Device, at time.Duration, queue *[]*pending, reason string, count func()) error {
	if len(d.sessions) == 0 {
		return nil
	}
	moved := make([]*pending, 0, len(d.sessions))
	for _, as := range d.sessions {
		f.untrack(as)
		snap, err := as.sess.Drain()
		if err != nil {
			return fmt.Errorf("fleet: %s %s off %s: %w", reason, as.out.Name, d.Name, err)
		}
		// Credit the evacuated device with the frames it actually served,
		// and keep its horizon covering that work for utilization
		// accounting.
		d.frames += snap.Served() - as.prevRecords
		if h := as.sess.Horizon(); h > d.horizon {
			d.horizon = h
		}
		f.teach(as.out.Scenario, snap.Partial().Result.Records)
		count()
		// Drain emitted its span into the session's buffer; evacuations run
		// on the sequential global path, so collect it in event order now.
		f.flushSpans(as)
		moved = append(moved, &pending{out: as.out, req: as.req, snap: snap, since: at})
	}
	// Evacuated streams must stop consuming the device's budget slots — a
	// stream waiting in the admission queue holds no slot anywhere.
	d.sessions = d.sessions[:0]
	requeue(queue, moved)
	return nil
}

// requeue inserts evacuated sessions ahead of new arrivals, behind earlier
// displacements — they were already admitted once, so they resume before
// newcomers are let in.
func requeue(queue *[]*pending, moved []*pending) {
	i := 0
	for i < len(*queue) && (*queue)[i].snap != nil {
		i++
	}
	rest := append(moved, (*queue)[i:]...)
	*queue = append((*queue)[:i], rest...)
}

// arrive runs admission + placement for one offered stream.
func (f *Fleet) arrive(req *StreamRequest, at time.Duration, queue *[]*pending) (*StreamOutcome, error) {
	out := &StreamOutcome{
		Name:       req.Name,
		Scenario:   req.Scenario,
		Arrival:    req.Arrival,
		PeriodSec:  req.PeriodSec,
		BestEffort: req.BestEffort,
	}
	if f.rec != nil {
		f.rec.Arrival(req.Name, at)
	}
	cands := f.candidates()
	if len(cands) == 0 {
		// Only fellow arrivals count against the waiting room: displaced
		// streams bypass the limit and must not consume it for newcomers.
		waitingNew := 0
		for _, p := range *queue {
			if p.snap == nil {
				waitingNew++
			}
		}
		if f.adm.QueueLimit < 0 || waitingNew < f.adm.QueueLimit {
			*queue = append(*queue, &pending{out: out, req: req})
		} else {
			out.Rejected = true
			if f.rec != nil {
				f.rec.Reject()
			}
		}
		return out, nil
	}
	if err := f.admit(&pending{out: out, req: req}, at, cands); err != nil {
		return nil, err
	}
	return out, nil
}

// candidates returns the available devices with admission headroom, in name
// order. Down devices (outage or death) and retired ones (drained by the
// autoscaler) are excluded — failure- and elasticity-aware placement starts
// here.
func (f *Fleet) candidates() []*Device {
	var cands []*Device
	for _, d := range f.devices {
		if d.down || d.retired {
			continue
		}
		if f.adm.PerDeviceStreams > 0 && len(d.sessions) >= f.adm.PerDeviceStreams {
			continue
		}
		cands = append(cands, d)
	}
	return cands
}

// admit places a pending stream on a device at time at: a fresh session for a
// new arrival, or a restored one (checkpoint + re-acquired residency) for a
// displaced stream.
func (f *Fleet) admit(p *pending, at time.Duration, cands []*Device) error {
	req, out := p.req, p.out
	dev := f.place.Pick(f, req, cands)
	if dev == nil {
		return fmt.Errorf("fleet: placement %s picked no device for %s", f.place.Name(), req.Name)
	}
	if req.Policy == nil {
		return fmt.Errorf("fleet: stream %s has no policy factory", req.Name)
	}
	pol, err := req.Policy(dev.Sys)
	if err != nil {
		return fmt.Errorf("fleet: build policy for %s on %s: %w", req.Name, dev.Name, err)
	}
	var sess *runtime.Session
	carried := 0
	if p.snap != nil {
		// Checkpoints decoded from the wire (crash recovery) carry no
		// predictor config — re-install the fleet's before restoring, so a
		// recovered stream resumes predicting. In-memory snapshots already
		// carry it (and their predictor state); SetPrefetch is idempotent.
		p.snap.SetPrefetch(f.prefetch)
		sess, err = runtime.RestoreSession(dev.Sys, dev.DML, p.snap, pol, at)
		if err != nil {
			return fmt.Errorf("fleet: migrate %s to %s: %w", req.Name, dev.Name, err)
		}
		carried = p.snap.Served()
		out.Migrations++
		out.DowntimeSec += (at - p.since).Seconds()
	} else {
		sess, err = runtime.OpenSessionAt(dev.Sys, dev.DML, runtime.StreamSpec{
			Name:      req.Name,
			Frames:    req.Frames,
			PeriodSec: req.PeriodSec,
			Policy:    pol,
			Prefetch:  f.prefetch,
		}, at)
		if err != nil {
			return fmt.Errorf("fleet: open %s on %s: %w", req.Name, dev.Name, err)
		}
		out.AdmittedAt = at
	}
	out.Device = dev.Name
	out.Devices = append(out.Devices, dev.Name)
	f.seq++
	as := &activeSession{
		sess: sess, dev: dev, out: out, seq: f.seq, req: req, prevRecords: carried,
	}
	if f.rec != nil {
		// One StreamRec per admission, so engine spans always carry the
		// serving device; the admission itself is typed by how the stream
		// got here (fresh arrival, fault migration, crash recovery).
		as.sr = f.rec.OpenStream(out.Name, dev.Name)
		sess.Observe(as.sr)
		switch {
		case p.snap != nil && p.crashed:
			f.rec.CrashRecover(out.Name, dev.Name, p.since, at)
		case p.snap != nil:
			f.rec.Migration(out.Name, dev.Name, p.since, at)
		default:
			f.rec.QueueWait(out.Name, dev.Name, out.Arrival, at)
		}
	}
	if f.prefetch != nil {
		// Pre-warm the target before the first frame: a migrating stream
		// brings its predictor's confident working-set chain; when that is
		// empty (fresh arrival, or crash recovery whose wire checkpoint
		// carries no predictor state) fall back to the scenario's learned
		// affinity set. Best-effort and speculative — ErrNoMemory skips,
		// residency is ghost-occupancy (never evicted for, never steered by).
		// Admissions run on the sequential global path in both region modes,
		// so flushing the pre-warm spans here keeps region-mode span
		// collection ranges exact.
		warm := sess.PredictedWorkingSet(0)
		if len(warm) == 0 {
			warm = f.Affinity(req.Scenario)
		}
		// The affinity fallback can name every pair the scenario ever used;
		// cap it at the same depth the predictor chain walks so one
		// admission cannot clog the copy channel or displace a working
		// set's worth of warm engines.
		if d := f.prefetch.PrewarmDepth; d > 0 && len(warm) > d {
			warm = warm[:d]
		}
		if err := sess.Prewarm(warm); err != nil {
			return errors.Join(fmt.Errorf("fleet: prewarm %s on %s: %w", req.Name, dev.Name, err), sess.Close())
		}
		f.flushSpans(as)
	}
	dev.sessions = append(dev.sessions, as)
	as.refresh()
	f.track(as)
	// Seed (or refresh, after a migration) the stream's durable checkpoint,
	// so a crash can never catch it without one.
	return f.journalOnAdmit(as)
}

// depart closes a completed stream's session, records its outcome, frees its
// admission slot and teaches the affinity model.
func (f *Fleet) depart(as *activeSession) {
	f.departGlobal(as, f.departLocal(as))
}

// departLocal is the device-local half of departure: close the session,
// unlink it from its heap and device, record the stream result and meter
// the device. Region advances run it inside the parallel interval.
func (f *Fleet) departLocal(as *activeSession) *runtime.StreamResult {
	f.untrack(as)
	_ = as.sess.Close() // a completed fixed sequence cannot fail to release
	d := as.dev
	for i, s := range d.sessions {
		if s == as {
			d.sessions = append(d.sessions[:i], d.sessions[i+1:]...)
			break
		}
	}
	sr := as.sess.Result()
	as.out.Stream = sr
	d.served++
	d.frames += len(sr.Result.Records) - as.prevRecords
	if h := as.sess.Horizon(); h > d.horizon {
		d.horizon = h
	}
	return sr
}

// departGlobal is the cross-region half: journal release, affinity
// teaching, the result horizon, and the caller's departure hook. Region
// advances defer it to the merge so it applies in exact global event order.
func (f *Fleet) departGlobal(as *activeSession, sr *runtime.StreamResult) {
	delete(f.journalStore, as.out)
	f.prefTotal.Add(as.sess.PrefetchStats())
	f.teach(as.out.Scenario, sr.Result.Records)
	if n := len(sr.Timings); n > 0 && sr.Timings[n-1].Done > f.resHorizon {
		f.resHorizon = sr.Timings[n-1].Done
	}
	if f.onDepart != nil {
		f.onDepart(as.out)
	}
}

// teach folds served records into the affinity model's per-scenario engine
// working set.
func (f *Fleet) teach(scenario string, recs []runtime.FrameRecord) {
	if scenario == "" || len(recs) == 0 {
		return
	}
	m := f.affinity[scenario]
	if m == nil {
		m = map[string]zoo.Pair{}
		f.affinity[scenario] = m
	}
	for _, rec := range recs {
		m[rec.Pair.Model+"/"+rec.Pair.Kind.String()] = rec.Pair
	}
}

// flushSpans collects a session's buffered engine spans into the recorder's
// global list — called on the sequential path after each step and after an
// evacuation drain (the region-sharded path collects exact ranges at the
// merge barrier instead).
func (f *Fleet) flushSpans(as *activeSession) {
	if f.rec != nil && as.sr != nil {
		f.rec.Collect(as.sr)
	}
}

// drainQueue admits waiting streams while capacity exists, at the drain
// time (their cameras start when admitted, not while they wait; displaced
// streams resume their original camera schedule, accruing downtime instead).
func (f *Fleet) drainQueue(queue *[]*pending, at time.Duration) error {
	for len(*queue) > 0 {
		cands := f.candidates()
		if len(cands) == 0 {
			return nil
		}
		p := (*queue)[0]
		*queue = (*queue)[1:]
		if err := f.admit(p, at, cands); err != nil {
			// Put the stream back so the caller's failure path can release
			// its parked checkpoint state.
			*queue = append([]*pending{p}, *queue...)
			return err
		}
	}
	return nil
}

// deviceStats reduces one device's meters to its summary.
func (f *Fleet) deviceStats(d *Device, horizon time.Duration) DeviceStats {
	st := DeviceStats{
		Name:       d.Name,
		Scale:      d.Scale,
		Streams:    d.served,
		Frames:     d.frames,
		Loads:      d.DML.Stats().Loads,
		Evicts:     d.DML.Stats().Evictions,
		Dead:       d.dead,
		Displaced:  d.displaced,
		Crashes:    d.crashes,
		Auto:       d.auto,
		Retired:    d.retired,
		Drained:    d.drained,
		LeakedRefs: d.DML.TotalRefs(),
	}
	if d.auto {
		st.ProvisionedSec = d.provisionedAt.Seconds()
	}
	if d.retired {
		st.RetiredSec = d.retiredAt.Seconds()
	}
	st.DownSec = d.downSec.Seconds()
	if d.down && horizon > d.downSince {
		st.DownSec += (horizon - d.downSince).Seconds()
	}
	procs := make([]string, 0, len(d.Sys.SoC.Procs))
	for id := range d.Sys.SoC.Procs {
		procs = append(procs, id)
	}
	sort.Strings(procs)
	for _, id := range procs {
		busy := d.Sys.SoC.Meter.BusyTime[id]
		st.BusySec += busy.Seconds()
		if horizon > 0 {
			if u := float64(busy) / float64(horizon); u > st.Utilization {
				st.Utilization = u
				st.PeakProc = id
			}
		}
	}
	return st
}
