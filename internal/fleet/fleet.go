// Package fleet is the multi-device serving layer of the reproduction: K
// virtual Xavier-NX-class devices (each a zoo.System + loader.Loader pair,
// with heterogeneous capacities via per-device accel time scales), a
// dispatcher with pluggable placement policies, and an admission gate that
// rejects or queues streams past a per-device concurrency budget.
//
// Where the paper schedules within one diversely heterogeneous device
// (which model, which accelerator, per frame), the fleet schedules across
// devices: which device serves a newly arriving stream, given model
// residency, queue depth and heterogeneous speed. The simulation reuses the
// deterministic discrete-event idiom of runtime.Serve — one global event
// loop interleaving stream arrivals, per-frame steps and departures in
// virtual-time order — so a fleet run is bit-replayable regardless of host
// core count, and a single-device fleet with one statically admitted stream
// reproduces runtime.Serve (and therefore the solo engine) bit-for-bit.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/loader"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// PolicyFactory builds one stream's per-frame decision logic against the
// device the stream lands on. Policies are stateful, so the dispatcher calls
// the factory once per admitted stream.
type PolicyFactory func(sys *zoo.System) (runtime.Policy, error)

// StreamRequest is one stream offered to the fleet.
type StreamRequest struct {
	// Name labels the stream in outcomes.
	Name string
	// Scenario is the content key the residency-affinity placement learns
	// engine usage under (streams of one scenario tend to exercise the same
	// (model, kind) engines).
	Scenario string
	// Arrival is when the stream asks to be served, on the global virtual
	// clock.
	Arrival time.Duration
	// Frames is the finite rendered frame sequence.
	Frames []scene.Frame
	// PeriodSec is the camera frame period (as in runtime.StreamSpec).
	PeriodSec float64
	// Policy builds the stream's decision logic on its serving device.
	Policy PolicyFactory
}

// DeviceConfig describes one device of the fleet.
type DeviceConfig struct {
	// Name identifies the device; placement tie-breaks and seed derivation
	// key on it, so fleets with the same names behave identically however
	// the slice is ordered.
	Name string
	// Scale multiplies every execution latency on the device (accel
	// TimeScale): 1 is the characterized baseline, 2 a half-speed device.
	// 0 defaults to 1.
	Scale float64
	// Seed overrides the device's derived RNG seed when non-zero; the
	// default is DeriveSeed(fleet seed, name).
	Seed uint64
}

// Device is one serving platform of the fleet.
type Device struct {
	Name  string
	Scale float64
	Sys   *zoo.System
	DML   *loader.Loader

	sessions []*activeSession
	served   int
	frames   int
	horizon  time.Duration
}

// ActiveStreams returns the number of streams currently admitted to the
// device.
func (d *Device) ActiveStreams() int { return len(d.sessions) }

// OutstandingFrames returns the total frames not yet served across the
// device's active streams — the dispatcher's queue-depth signal.
func (d *Device) OutstandingFrames() int {
	n := 0
	for _, as := range d.sessions {
		n += as.sess.Remaining()
	}
	return n
}

// Horizon returns the completion time of the device's latest queued work.
func (d *Device) Horizon() time.Duration {
	h := d.horizon
	for _, as := range d.sessions {
		if t := as.sess.Horizon(); t > h {
			h = t
		}
	}
	return h
}

// activeSession is one admitted stream being served on a device.
type activeSession struct {
	sess *runtime.Session
	dev  *Device
	out  *StreamOutcome
	seq  int // admission order, the within-device event tie-break
}

// Admission is the fleet's concurrency gate.
type Admission struct {
	// PerDeviceStreams caps concurrently served streams per device
	// (<= 0: unlimited). PR 2 located the single-device capacity cliff at 4
	// concurrent SHIFT streams, so production budgets sit below it.
	PerDeviceStreams int
	// QueueLimit bounds the fleet-wide waiting room used when every device
	// is at budget: 0 rejects immediately, negative queues without bound.
	QueueLimit int
}

// DefaultAdmission keeps devices under the PR 2 capacity cliff and queues a
// handful of streams rather than rejecting outright.
func DefaultAdmission() Admission {
	return Admission{PerDeviceStreams: 3, QueueLimit: 8}
}

// Config assembles a fleet.
type Config struct {
	// Seed drives device seed derivation (per-device jitter streams).
	Seed uint64
	// Devices lists the fleet members. Order does not matter: devices are
	// sorted by name, and every decision keys on names, so results are
	// identical for any listing order.
	Devices []DeviceConfig
	// Placement chooses the serving device for each admitted stream
	// (default round-robin).
	Placement Placement
	// Admission gates stream concurrency (zero value: unlimited, no queue).
	Admission Admission
	// NewSystem builds one device's platform + zoo from its seed (default
	// zoo.Default).
	NewSystem func(seed uint64) *zoo.System
	// Eviction is each device loader's eviction policy (default LRR).
	Eviction loader.EvictionPolicy
}

// DeriveSeed returns the deterministic per-device seed used when a
// DeviceConfig does not pin one: a function of the fleet seed and the device
// name only, so device listing order cannot perturb any jitter stream.
func DeriveSeed(seed uint64, name string) uint64 {
	return rng.New(seed).Fork("device/" + name).Uint64()
}

// Fleet owns K devices and dispatches streams across them.
type Fleet struct {
	devices []*Device // sorted by name
	place   Placement
	adm     Admission

	// affinity is the dispatcher's learned residency model: for each
	// scenario, the (model, kind) engines streams of that scenario ended up
	// serving from, keyed by "model/kind" with a representative pair as
	// value. Completed streams teach it; the residency-affinity placement
	// reads it.
	affinity map[string]map[string]zoo.Pair
	seq      int
}

// New assembles a fleet from its config.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: no devices configured")
	}
	newSystem := cfg.NewSystem
	if newSystem == nil {
		newSystem = zoo.Default
	}
	place := cfg.Placement
	if place == nil {
		place = NewRoundRobin()
	}
	f := &Fleet{
		place:    place,
		adm:      cfg.Admission,
		affinity: map[string]map[string]zoo.Pair{},
	}
	seen := map[string]bool{}
	for _, dc := range cfg.Devices {
		if dc.Name == "" {
			return nil, fmt.Errorf("fleet: device with empty name")
		}
		if seen[dc.Name] {
			return nil, fmt.Errorf("fleet: duplicate device name %q", dc.Name)
		}
		seen[dc.Name] = true
		scale := dc.Scale
		if scale == 0 {
			scale = 1
		}
		if scale < 0 {
			return nil, fmt.Errorf("fleet: device %q has negative scale %v", dc.Name, scale)
		}
		devSeed := dc.Seed
		if devSeed == 0 {
			devSeed = DeriveSeed(cfg.Seed, dc.Name)
		}
		sys := newSystem(devSeed)
		sys.SoC.TimeScale = scale
		f.devices = append(f.devices, &Device{
			Name:  dc.Name,
			Scale: scale,
			Sys:   sys,
			DML:   loader.New(sys, cfg.Eviction),
		})
	}
	sort.Slice(f.devices, func(i, j int) bool { return f.devices[i].Name < f.devices[j].Name })
	return f, nil
}

// Devices returns the fleet members in name order.
func (f *Fleet) Devices() []*Device { return f.devices }

// Affinity returns the learned (model, kind) engine set for a scenario, in
// deterministic key order.
func (f *Fleet) Affinity(scenario string) []zoo.Pair {
	m := f.affinity[scenario]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]zoo.Pair, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, m[k])
	}
	return pairs
}

// StreamOutcome is one offered stream's fate.
type StreamOutcome struct {
	Name     string
	Scenario string
	// Device is the serving device's name (empty when rejected).
	Device  string
	Arrival time.Duration
	// AdmittedAt is when the stream started being served — its arrival, or
	// later when it sat in the admission queue.
	AdmittedAt time.Duration
	// Rejected marks streams the admission gate turned away.
	Rejected  bool
	PeriodSec float64
	// Stream holds the per-frame records and timings (nil when rejected).
	Stream *runtime.StreamResult
}

// QueueDelaySec returns how long the stream waited for admission.
func (o *StreamOutcome) QueueDelaySec() float64 {
	return (o.AdmittedAt - o.Arrival).Seconds()
}

// DeviceStats summarizes one device's run.
type DeviceStats struct {
	Name    string
	Scale   float64
	Streams int
	Frames  int
	Loads   int
	Evicts  int
	// BusySec is total processor-busy time across the device's processors.
	BusySec float64
	// Utilization is the busy fraction of the device's most-loaded
	// processor over the fleet horizon; PeakProc names it.
	Utilization float64
	PeakProc    string
}

// Result is one fleet run.
type Result struct {
	// Outcomes are in offered (arrival) order.
	Outcomes []*StreamOutcome
	// Devices are per-device stats in name order.
	Devices []DeviceStats
	// Horizon is the makespan: the latest stream completion.
	Horizon time.Duration
	// Offered, Served and Rejected count streams.
	Offered  int
	Served   int
	Rejected int
}

// Run serves the offered streams to completion on the fleet's global
// deterministic event loop. At every iteration the earliest event is
// processed: a stream departure (frees its admission slot, may drain the
// queue), a stream arrival (admission + placement), or the earliest-ready
// frame step across all devices. Ties resolve departure < arrival < step,
// then device name, then admission order — every tie-break keys on names and
// sequence numbers, never on slice order or map iteration, so identical
// configs replay bit-for-bit.
func (f *Fleet) Run(reqs []StreamRequest) (*Result, error) {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &reqs[order[a]], &reqs[order[b]]
		if ra.Arrival != rb.Arrival {
			return ra.Arrival < rb.Arrival
		}
		return ra.Name < rb.Name
	})
	res := &Result{Offered: len(reqs)}
	outcomes := make([]*StreamOutcome, 0, len(reqs))

	next := 0 // index into order: next unprocessed arrival
	var queue []*StreamOutcome
	waiting := map[*StreamOutcome]*StreamRequest{}

	fail := func(err error) (*Result, error) {
		for _, d := range f.devices {
			for _, as := range d.sessions {
				err = errors.Join(err, as.sess.Close())
			}
		}
		return nil, err
	}

	for {
		// Earliest departure and earliest step across devices (name order).
		var dep, step *activeSession
		var depAt, stepAt time.Duration
		for _, d := range f.devices {
			for _, as := range d.sessions {
				if as.sess.Done() {
					if t := as.sess.Horizon(); dep == nil || t < depAt {
						dep, depAt = as, t
					}
				} else {
					if t := as.sess.ReadyAt(); step == nil || t < stepAt {
						step, stepAt = as, t
					}
				}
			}
		}
		var arrAt time.Duration
		haveArr := next < len(order)
		if haveArr {
			arrAt = reqs[order[next]].Arrival
		}

		switch {
		case dep != nil && (!haveArr || depAt <= arrAt) && (step == nil || depAt <= stepAt):
			f.depart(dep)
			if err := f.drainQueue(&queue, waiting, depAt); err != nil {
				return fail(err)
			}
		case haveArr && (step == nil || arrAt <= stepAt):
			req := &reqs[order[next]]
			next++
			out, err := f.arrive(req, arrAt, &queue, waiting)
			if err != nil {
				return fail(err)
			}
			outcomes = append(outcomes, out)
		case step != nil:
			if err := step.sess.Step(); err != nil {
				return fail(err)
			}
		default:
			// No departures, arrivals or steppable sessions left; anything
			// still queued can never be admitted (all arrivals processed,
			// no active streams to free slots) — reject it.
			for _, out := range queue {
				out.Rejected = true
			}
			queue = nil
			goto done
		}
	}
done:
	for _, out := range outcomes {
		if out.Rejected {
			res.Rejected++
		} else {
			res.Served++
			if out.Stream != nil {
				for _, tm := range out.Stream.Timings {
					if tm.Done > res.Horizon {
						res.Horizon = tm.Done
					}
				}
			}
		}
	}
	res.Outcomes = outcomes
	for _, d := range f.devices {
		res.Devices = append(res.Devices, f.deviceStats(d, res.Horizon))
	}
	return res, nil
}

// arrive runs admission + placement for one offered stream.
func (f *Fleet) arrive(req *StreamRequest, at time.Duration, queue *[]*StreamOutcome, waiting map[*StreamOutcome]*StreamRequest) (*StreamOutcome, error) {
	out := &StreamOutcome{
		Name:      req.Name,
		Scenario:  req.Scenario,
		Arrival:   req.Arrival,
		PeriodSec: req.PeriodSec,
	}
	cands := f.candidates()
	if len(cands) == 0 {
		if f.adm.QueueLimit < 0 || len(*queue) < f.adm.QueueLimit {
			*queue = append(*queue, out)
			waiting[out] = req
		} else {
			out.Rejected = true
		}
		return out, nil
	}
	if err := f.admit(req, out, at, cands); err != nil {
		return nil, err
	}
	return out, nil
}

// candidates returns the devices with admission headroom, in name order.
func (f *Fleet) candidates() []*Device {
	var cands []*Device
	for _, d := range f.devices {
		if f.adm.PerDeviceStreams > 0 && len(d.sessions) >= f.adm.PerDeviceStreams {
			continue
		}
		cands = append(cands, d)
	}
	return cands
}

// admit places a stream on a device and opens its serving session at time at.
func (f *Fleet) admit(req *StreamRequest, out *StreamOutcome, at time.Duration, cands []*Device) error {
	dev := f.place.Pick(f, req, cands)
	if dev == nil {
		return fmt.Errorf("fleet: placement %s picked no device for %s", f.place.Name(), req.Name)
	}
	if req.Policy == nil {
		return fmt.Errorf("fleet: stream %s has no policy factory", req.Name)
	}
	pol, err := req.Policy(dev.Sys)
	if err != nil {
		return fmt.Errorf("fleet: build policy for %s on %s: %w", req.Name, dev.Name, err)
	}
	sess, err := runtime.OpenSessionAt(dev.Sys, dev.DML, runtime.StreamSpec{
		Name:      req.Name,
		Frames:    req.Frames,
		PeriodSec: req.PeriodSec,
		Policy:    pol,
	}, at)
	if err != nil {
		return fmt.Errorf("fleet: open %s on %s: %w", req.Name, dev.Name, err)
	}
	out.Device = dev.Name
	out.AdmittedAt = at
	f.seq++
	dev.sessions = append(dev.sessions, &activeSession{sess: sess, dev: dev, out: out, seq: f.seq})
	return nil
}

// depart closes a completed stream's session, records its outcome, frees its
// admission slot and teaches the affinity model.
func (f *Fleet) depart(as *activeSession) {
	_ = as.sess.Close() // a completed fixed sequence cannot fail to release
	d := as.dev
	for i, s := range d.sessions {
		if s == as {
			d.sessions = append(d.sessions[:i], d.sessions[i+1:]...)
			break
		}
	}
	sr := as.sess.Result()
	as.out.Stream = sr
	d.served++
	d.frames += len(sr.Result.Records)
	if h := as.sess.Horizon(); h > d.horizon {
		d.horizon = h
	}
	if as.out.Scenario != "" {
		m := f.affinity[as.out.Scenario]
		if m == nil {
			m = map[string]zoo.Pair{}
			f.affinity[as.out.Scenario] = m
		}
		for _, rec := range sr.Result.Records {
			m[rec.Pair.Model+"/"+rec.Pair.Kind.String()] = rec.Pair
		}
	}
}

// drainQueue admits waiting streams while capacity exists, at the drain
// time (their cameras start when admitted, not while they wait).
func (f *Fleet) drainQueue(queue *[]*StreamOutcome, waiting map[*StreamOutcome]*StreamRequest, at time.Duration) error {
	for len(*queue) > 0 {
		cands := f.candidates()
		if len(cands) == 0 {
			return nil
		}
		out := (*queue)[0]
		*queue = (*queue)[1:]
		req := waiting[out]
		delete(waiting, out)
		if err := f.admit(req, out, at, cands); err != nil {
			return err
		}
	}
	return nil
}

// deviceStats reduces one device's meters to its summary.
func (f *Fleet) deviceStats(d *Device, horizon time.Duration) DeviceStats {
	st := DeviceStats{
		Name:    d.Name,
		Scale:   d.Scale,
		Streams: d.served,
		Frames:  d.frames,
		Loads:   d.DML.Stats().Loads,
		Evicts:  d.DML.Stats().Evictions,
	}
	procs := make([]string, 0, len(d.Sys.SoC.Procs))
	for id := range d.Sys.SoC.Procs {
		procs = append(procs, id)
	}
	sort.Strings(procs)
	for _, id := range procs {
		busy := d.Sys.SoC.Meter.BusyTime[id]
		st.BusySec += busy.Seconds()
		if horizon > 0 {
			if u := float64(busy) / float64(horizon); u > st.Utilization {
				st.Utilization = u
				st.PeakProc = id
			}
		}
	}
	return st
}
