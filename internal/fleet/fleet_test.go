package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/loader"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

var cachedFrames []scene.Frame

func testFrames(t testing.TB) []scene.Frame {
	t.Helper()
	if cachedFrames == nil {
		cachedFrames = scene.Scenario2().Render(1)
	}
	return cachedFrames
}

func testPair(t testing.TB, sys *zoo.System, model, procID string) zoo.Pair {
	t.Helper()
	for _, p := range sys.RuntimePairs() {
		if p.Model == model && p.ProcID == procID {
			return p
		}
	}
	t.Fatalf("no runtime pair %s@%s", model, procID)
	return zoo.Pair{}
}

// fixedPolicy serves every frame from one (model, proc) pair.
type fixedPolicy struct {
	model, proc string
	pair        zoo.Pair
}

func (p *fixedPolicy) Name() string { return "fixed " + p.model + "@" + p.proc }
func (p *fixedPolicy) Reset(e *runtime.Engine) error {
	for _, rp := range e.System().RuntimePairs() {
		if rp.Model == p.model && rp.ProcID == p.proc {
			p.pair = rp
			return nil
		}
	}
	return nil
}
func (p *fixedPolicy) Step(st *runtime.Step) error {
	pair, err := st.Acquire(p.pair)
	if err != nil {
		return err
	}
	st.Rec().Pair = pair
	if err := st.Exec(pair); err != nil {
		return err
	}
	det, err := st.Detect(pair.Model)
	if err != nil {
		return err
	}
	st.RecordDetection(det)
	return nil
}

// fixedFactory builds per-stream fixedPolicy instances.
func fixedFactory(model, proc string) PolicyFactory {
	return func(*zoo.System) (runtime.Policy, error) {
		return &fixedPolicy{model: model, proc: proc}, nil
	}
}

// TestFleetSingleDeviceReproducesServe pins the acceptance criterion: a
// one-device fleet with statically admitted streams (all arriving at 0, no
// admission pressure) reproduces runtime.Serve on the same platform
// bit-for-bit — records and timings.
func TestFleetSingleDeviceReproducesServe(t *testing.T) {
	frames := testFrames(t)[:80]
	for _, n := range []int{1, 3} {
		// Reference: runtime.Serve on zoo.Default(1).
		sys := zoo.Default(1)
		dml := loader.New(sys, loader.EvictLRR)
		specs := make([]runtime.StreamSpec, n)
		for i := range specs {
			specs[i] = runtime.StreamSpec{
				Name:      "stream" + string(rune('0'+i)),
				Frames:    frames,
				PeriodSec: 0.1,
				Policy:    &fixedPolicy{model: detmodel.YoloV7, proc: "gpu"},
			}
		}
		want, err := runtime.Serve(sys, dml, specs)
		if err != nil {
			t.Fatal(err)
		}

		// Fleet: one device pinned to the same seed, same streams at t=0.
		f, err := New(Config{Seed: 99, Devices: []DeviceConfig{{Name: "solo", Seed: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]StreamRequest, n)
		for i := range reqs {
			reqs[i] = StreamRequest{
				Name:      "stream" + string(rune('0'+i)),
				Scenario:  "scenario2",
				Frames:    frames,
				PeriodSec: 0.1,
				Policy:    fixedFactory(detmodel.YoloV7, "gpu"),
			}
		}
		res, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Served != n || res.Rejected != 0 {
			t.Fatalf("n=%d: served %d rejected %d", n, res.Served, res.Rejected)
		}
		for i, out := range res.Outcomes {
			got := out.Stream
			if len(got.Result.Records) != len(want[i].Result.Records) {
				t.Fatalf("n=%d stream %d: %d records vs %d", n, i,
					len(got.Result.Records), len(want[i].Result.Records))
			}
			for j := range want[i].Result.Records {
				if got.Result.Records[j] != want[i].Result.Records[j] {
					t.Fatalf("n=%d stream %d record %d differs:\nfleet %+v\nserve %+v",
						n, i, j, got.Result.Records[j], want[i].Result.Records[j])
				}
				if got.Timings[j] != want[i].Timings[j] {
					t.Fatalf("n=%d stream %d timing %d differs:\nfleet %+v\nserve %+v",
						n, i, j, got.Timings[j], want[i].Timings[j])
				}
			}
		}
		// All residency holds released on every device.
		for _, d := range f.Devices() {
			if refs := d.DML.Refs(testPair(t, d.Sys, detmodel.YoloV7, "gpu")); refs != 0 {
				t.Fatalf("device %s leaked %d refs", d.Name, refs)
			}
		}
	}
}

// TestFleetAdmissionBudgetAndQueue: one device with a 1-stream budget and a
// 1-slot queue offered three overlapping streams must serve the first,
// queue the second (admitting it when the first departs) and reject the
// third.
func TestFleetAdmissionBudgetAndQueue(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "d0"}},
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:30]
	mk := func(name string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: "scenario2", Arrival: at,
			Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}
	}
	// 30 frames at 10 fps ≈ 3 s per stream; all three arrive inside the
	// first stream's service time.
	res, err := f.Run([]StreamRequest{
		mk("s0", 0),
		mk("s1", 500*time.Millisecond),
		mk("s2", time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2 || res.Rejected != 1 {
		t.Fatalf("served %d rejected %d, want 2/1", res.Served, res.Rejected)
	}
	o0, o1, o2 := res.Outcomes[0], res.Outcomes[1], res.Outcomes[2]
	if o0.Rejected || o0.AdmittedAt != 0 {
		t.Fatalf("s0 outcome %+v", o0)
	}
	if o1.Rejected {
		t.Fatal("s1 should have been queued, not rejected")
	}
	if o1.AdmittedAt <= o1.Arrival {
		t.Fatalf("s1 admitted at %v, arrival %v: expected queueing delay", o1.AdmittedAt, o1.Arrival)
	}
	// s1 is admitted exactly when s0 departs.
	lastDone := o0.Stream.Timings[len(o0.Stream.Timings)-1].Done
	if o1.AdmittedAt != lastDone {
		t.Fatalf("s1 admitted at %v, s0 completed at %v", o1.AdmittedAt, lastDone)
	}
	if !o2.Rejected {
		t.Fatal("s2 should have been rejected (queue full)")
	}
}

// TestFleetRoundRobinRotation: sequentially arriving streams rotate across
// devices in name order.
func TestFleetRoundRobinRotation(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "d1"}, {Name: "d0"}, {Name: "d2"}},
		Placement: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:5]
	var reqs []StreamRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, StreamRequest{
			Name: "s" + string(rune('0'+i)), Scenario: "scenario2",
			Arrival: time.Duration(i) * 30 * time.Second, // non-overlapping
			Frames:  frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		})
	}
	res, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"d0", "d1", "d2", "d0", "d1", "d2"}
	for i, out := range res.Outcomes {
		if out.Device != want[i] {
			t.Fatalf("stream %d on %s, want %s", i, out.Device, want[i])
		}
	}
}

// TestFleetLeastOutstandingAvoidsBacklog: with one device already loaded,
// join-the-shortest-queue sends the next stream to the idle device.
func TestFleetLeastOutstandingAvoidsBacklog(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "d0"}, {Name: "d1"}},
		Placement: NewLeastOutstanding(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)
	long := StreamRequest{
		Name: "long", Scenario: "scenario2", Arrival: 0,
		Frames: frames[:400], PeriodSec: 0.1,
		Policy: fixedFactory(detmodel.YoloV7, "gpu"),
	}
	short := StreamRequest{
		Name: "short", Scenario: "scenario2", Arrival: time.Second,
		Frames: frames[:20], PeriodSec: 0.1,
		Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
	}
	res, err := f.Run([]StreamRequest{long, short})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Device != "d0" {
		t.Fatalf("long stream on %s, want d0 (tie at empty fleet)", res.Outcomes[0].Device)
	}
	if res.Outcomes[1].Device != "d1" {
		t.Fatalf("short stream on %s, want the idle d1", res.Outcomes[1].Device)
	}
}

// TestFleetResidencyAffinityPrefersWarmDevice: after a scenario's stream
// completes on one device, the next stream of that scenario is placed back
// on it (its engines are resident) instead of the round-robin alternative,
// and pays no additional engine load.
func TestFleetResidencyAffinityPrefersWarmDevice(t *testing.T) {
	f, err := New(Config{
		Seed:      1,
		Devices:   []DeviceConfig{{Name: "d0"}, {Name: "d1"}},
		Placement: NewResidencyAffinity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:20]
	mk := func(name, scenario, model string, at time.Duration) StreamRequest {
		return StreamRequest{
			Name: name, Scenario: scenario, Arrival: at,
			Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(model, "gpu"),
		}
	}
	// Sequential (non-overlapping) arrivals: a0, then b0, then a1.
	res, err := f.Run([]StreamRequest{
		mk("a0", "A", detmodel.YoloV7, 0),
		mk("b0", "B", detmodel.SSDResnet50, 60*time.Second),
		mk("a1", "A", detmodel.YoloV7, 120*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	devA0 := res.Outcomes[0].Device
	devB0 := res.Outcomes[1].Device
	devA1 := res.Outcomes[2].Device
	if devA0 == devB0 {
		t.Fatalf("a0 and b0 both on %s: horizon tie-break should spread idle devices", devA0)
	}
	if devA1 != devA0 {
		t.Fatalf("a1 on %s, want the warm %s", devA1, devA0)
	}
	// The warm placement paid exactly one YoloV7 load across the fleet.
	loads := 0
	for _, d := range res.Devices {
		loads += d.Loads
	}
	if loads != 2 { // one YoloV7 engine + one Resnet50 engine
		t.Fatalf("fleet paid %d loads, want 2 (warm re-placement loads nothing)", loads)
	}
}

// TestFleetHeterogeneousScale: the same stream served by a half-speed
// device takes about twice as long.
func TestFleetHeterogeneousScale(t *testing.T) {
	run := func(scale float64) time.Duration {
		f, err := New(Config{
			Seed:    1,
			Devices: []DeviceConfig{{Name: "dev", Seed: 1, Scale: scale}},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run([]StreamRequest{{
			Name: "s", Scenario: "scenario2",
			Frames: testFrames(t)[:50], PeriodSec: 0, // offline pacing: pure service time
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Horizon
	}
	base, slow := run(1), run(2)
	ratio := float64(slow) / float64(base)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("half-speed device horizon ratio %.3f, want ~2", ratio)
	}
}

// TestFleetValidation covers constructor and workload argument contracts.
func TestFleetValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet should fail")
	}
	if _, err := New(Config{Devices: []DeviceConfig{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate device names should fail")
	}
	if _, err := New(Config{Devices: []DeviceConfig{{Name: ""}}}); err == nil {
		t.Fatal("empty device name should fail")
	}
	if _, err := New(Config{Devices: []DeviceConfig{{Name: "a", Scale: -1}}}); err == nil {
		t.Fatal("negative scale should fail")
	}
	src := func(s *scene.Scenario) []scene.Frame { return testFrames(t) }
	pol := fixedFactory(detmodel.YoloV7Tiny, "gpu")
	bad := DefaultWorkloadConfig()
	bad.Streams = 0
	if _, err := GenerateWorkload(bad, src, pol); err == nil {
		t.Fatal("zero streams should fail")
	}
	bad = DefaultWorkloadConfig()
	bad.RatePerSec = 0
	if _, err := GenerateWorkload(bad, src, pol); err == nil {
		t.Fatal("zero rate should fail")
	}
	bad = DefaultWorkloadConfig()
	bad.MinFrames = 50
	bad.MaxFrames = 10
	if _, err := GenerateWorkload(bad, src, pol); err == nil {
		t.Fatal("inverted frame bounds should fail")
	}
	if _, err := PlacementByName("nope"); err == nil {
		t.Fatal("unknown placement should fail")
	}
}

// TestShapedWorkload pins the non-homogeneous generator: identical inputs
// replay bit-for-bit, a burst shape clumps arrivals inside its window, and
// the argument contracts hold.
func TestShapedWorkload(t *testing.T) {
	src := func(*scene.Scenario) []scene.Frame { return testFrames(t) }
	pol := fixedFactory(detmodel.YoloV7Tiny, "gpu")
	cfg := DefaultWorkloadConfig()
	cfg.Streams = 24
	cfg.RatePerSec = 0.1
	base, factor := 0.1, 12.0
	burst := BurstRate(base, factor, 30*time.Second, 20*time.Second)
	peak := base * factor // the same runtime product BurstRate computes
	a, err := GenerateShapedWorkload(cfg, burst, peak, src, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateShapedWorkload(cfg, burst, peak, src, pol)
	if err != nil {
		t.Fatal(err)
	}
	inBurst := 0
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Arrival != b[i].Arrival || a[i].Scenario != b[i].Scenario {
			t.Fatalf("request %d differs across identical configs", i)
		}
		if i > 0 && a[i].Arrival <= a[i-1].Arrival {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		if s := a[i].Arrival.Seconds(); s >= 30 && s < 50 {
			inBurst++
		}
	}
	// The 20 s window at 12× the base rate must hold the bulk of the trace:
	// expected ~24 arrivals inside vs ~0.1/s outside.
	if inBurst < len(a)/2 {
		t.Fatalf("burst window holds %d of %d arrivals; the shape did not clump", inBurst, len(a))
	}
	// The diurnal shape stays positive and periodic.
	rate := DiurnalRate(1, 0.5, 100*time.Second)
	if r := rate(25); r < 1.49 || r > 1.51 {
		t.Fatalf("diurnal peak %v, want ~1.5", r)
	}
	if r := rate(75); r < 0.49 || r > 0.51 {
		t.Fatalf("diurnal trough %v, want ~0.5", r)
	}

	if _, err := GenerateShapedWorkload(cfg, nil, 1, src, pol); err == nil {
		t.Fatal("nil rate should fail")
	}
	if _, err := GenerateShapedWorkload(cfg, burst, 0, src, pol); err == nil {
		t.Fatal("zero peak should fail")
	}
	// A rate above the declared peak is a thinning-contract violation.
	if _, err := GenerateShapedWorkload(cfg, burst, 0.5, src, pol); err == nil {
		t.Fatal("rate above peak should fail")
	}
}
