package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/scene"
)

// FuzzFleetDeterminism is the fleet's simulation-testing entry point, in the
// FoundationDB style: every input derives a seeded workload, fleet shape and
// fault schedule, and the property checked is bit-identity — running the same
// simulation twice must match exactly, and shuffling the device listing order
// must change nothing, faults and migrations included. `go test` replays the
// committed corpus under testdata/fuzz; `-fuzz` explores new schedules.
func FuzzFleetDeterminism(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint64(2), uint64(4), true)
	f.Add(uint64(7), uint64(3), uint64(3), uint64(6), true)
	f.Add(uint64(42), uint64(0), uint64(1), uint64(2), false)
	f.Fuzz(func(t *testing.T, wseed, fseed, ndev, nstreams uint64, faulty bool) {
		devCount := int(ndev%3) + 1
		streams := int(nstreams%6) + 1
		scales := []float64{1, 1.25, 0.8}
		devices := make([]DeviceConfig, devCount)
		for i := range devices {
			devices[i] = DeviceConfig{
				Name:  "edge-" + string(rune('a'+i)),
				Scale: scales[i%len(scales)],
			}
		}
		cfg := WorkloadConfig{
			Seed:       wseed,
			Streams:    streams,
			RatePerSec: 0.5,
			PeriodSec:  0.1,
			MinFrames:  10,
			MaxFrames:  40,
			Scenarios:  []*scene.Scenario{scene.Scenario2()},
		}
		reqs, err := GenerateWorkload(cfg,
			func(*scene.Scenario) []scene.Frame { return testFrames(t) },
			fixedFactory(detmodel.YoloV7Tiny, "gpu"))
		if err != nil {
			t.Fatal(err)
		}
		var faults []Fault
		if faulty {
			names := make([]string, len(devices))
			for i, d := range devices {
				names[i] = d.Name
			}
			fcfg := DefaultFaultConfig()
			fcfg.Seed = fseed
			fcfg.RatePerSec = 0.1
			fcfg.Horizon = 45 * time.Second
			fcfg.MeanOutageSec = 4
			faults, err = GenerateFaults(fcfg, names)
			if err != nil {
				t.Fatal(err)
			}
		}
		run := func(devs []DeviceConfig, regions int, legacy bool, rec *obs.Recorder, pf *predict.Config) *Result {
			fl, err := New(Config{
				Seed:       wseed,
				Devices:    devs,
				Placement:  NewResidencyAffinity(),
				Admission:  Admission{PerDeviceStreams: 2, QueueLimit: 3},
				Regions:    regions,
				LegacyScan: legacy,
				Recorder:   rec,
				Prefetch:   pf,
			})
			if err != nil {
				t.Fatal(err)
			}
			fl.auditCache = true
			res, err := fl.RunWithFaults(reqs, faults)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range fl.Devices() {
				if n := d.DML.TotalRefs(); n != 0 {
					t.Fatalf("device %s leaked %d residency refs", d.Name, n)
				}
			}
			return res
		}
		a := run(devices, 0, false, nil, nil)
		b := run(devices, 0, false, nil, nil)
		compareRuns(t, a, b, "repeat")
		shuffled := make([]DeviceConfig, devCount)
		for i := range devices {
			shuffled[(i+1)%devCount] = devices[i]
		}
		c := run(shuffled, 0, false, nil, nil)
		compareRuns(t, a, c, "shuffled-devices")
		// Selector equivalence: the legacy O(devices × sessions) rescan and
		// the sharded-region loop must replay the heap run bit-for-bit, at a
		// region count derived from the input so the corpus explores several.
		l := run(devices, 0, true, nil, nil)
		compareRuns(t, a, l, "legacy-scan")
		regions := int((wseed+fseed+ndev)%3) + 2
		r := run(devices, regions, false, nil, nil)
		compareRuns(t, a, r, "regions")
		if a.Events != l.Events || a.Events != r.Events {
			t.Fatalf("event counts diverge across selectors: heap %d, legacy %d, %d-region %d",
				a.Events, l.Events, regions, r.Events)
		}
		// Flight recorder: attaching one is strictly observational — results
		// stay bit-identical, sequential and region-sharded recordings agree
		// span for span, and every frame span's latency decomposition sums
		// exactly (integer Duration domain, no rounding slack).
		recA := obs.NewRecorder()
		ra := run(devices, 0, false, recA, nil)
		compareRuns(t, a, ra, "recorder-attached")
		recR := obs.NewRecorder()
		rr := run(devices, regions, false, recR, nil)
		compareRuns(t, a, rr, "recorder-regions")
		sa, sr := recA.Spans(), recR.Spans()
		if len(sa) != len(sr) {
			t.Fatalf("span counts diverge: sequential %d, %d-region %d", len(sa), regions, len(sr))
		}
		for i := range sa {
			if sa[i] != sr[i] {
				t.Fatalf("span %d diverges across region counts:\n%+v\n%+v", i, sa[i], sr[i])
			}
		}
		for i, sp := range sa {
			if sp.Kind != obs.SpanFrame {
				continue
			}
			if sp.Queue+sp.Wait+sp.Swap+sp.Exec != sp.Dur() {
				t.Fatalf("span %d (%s frame %d): queue %v + wait %v + swap %v + exec %v != %v",
					i, sp.Stream, sp.Frame, sp.Queue, sp.Wait, sp.Swap, sp.Exec, sp.Dur())
			}
			if sp.Queue < 0 || sp.Wait < 0 || sp.Swap < 0 || sp.Exec < 0 {
				t.Fatalf("span %d (%s frame %d): negative component: %+v", i, sp.Stream, sp.Frame, sp)
			}
		}
		// Predictor on: the swap predictor and its speculative prefetches run
		// under every fuzzed shape and fault schedule, and must stay exactly
		// as deterministic as the committed path — a repeat at a different
		// region count reproduces results, spans and scorecard bit-for-bit,
		// prefetch-hit frames carry zero swap stall, and every decomposition
		// still sums exactly (checkPrefetchSpans, shared with the fleet
		// prefetch test).
		pf := predict.DefaultConfig()
		recP := obs.NewRecorder()
		p1 := run(devices, 0, false, recP, &pf)
		recP2 := obs.NewRecorder()
		p2 := run(devices, regions, false, recP2, &pf)
		compareRuns(t, p1, p2, "prefetch-regions")
		if p1.Prefetch != p2.Prefetch {
			t.Fatalf("predictor scorecard diverges across region counts: %+v vs %+v", p1.Prefetch, p2.Prefetch)
		}
		sp1, sp2 := recP.Spans(), recP2.Spans()
		if len(sp1) != len(sp2) {
			t.Fatalf("prefetch-on span counts diverge: sequential %d, %d-region %d", len(sp1), regions, len(sp2))
		}
		for i := range sp1 {
			if sp1[i] != sp2[i] {
				t.Fatalf("prefetch-on span %d diverges across region counts:\n%+v\n%+v", i, sp1[i], sp2[i])
			}
		}
		if hits := checkPrefetchSpans(t, sp1); hits != p1.Prefetch.FullHits {
			t.Fatalf("recorder saw %d prefetch-hit spans, scorecard says %d full hits", hits, p1.Prefetch.FullHits)
		}
	})
}
