package fleet

import (
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/scene"
)

// FuzzFleetDeterminism is the fleet's simulation-testing entry point, in the
// FoundationDB style: every input derives a seeded workload, fleet shape and
// fault schedule, and the property checked is bit-identity — running the same
// simulation twice must match exactly, and shuffling the device listing order
// must change nothing, faults and migrations included. `go test` replays the
// committed corpus under testdata/fuzz; `-fuzz` explores new schedules.
func FuzzFleetDeterminism(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint64(2), uint64(4), true)
	f.Add(uint64(7), uint64(3), uint64(3), uint64(6), true)
	f.Add(uint64(42), uint64(0), uint64(1), uint64(2), false)
	f.Fuzz(func(t *testing.T, wseed, fseed, ndev, nstreams uint64, faulty bool) {
		devCount := int(ndev%3) + 1
		streams := int(nstreams%6) + 1
		scales := []float64{1, 1.25, 0.8}
		devices := make([]DeviceConfig, devCount)
		for i := range devices {
			devices[i] = DeviceConfig{
				Name:  "edge-" + string(rune('a'+i)),
				Scale: scales[i%len(scales)],
			}
		}
		cfg := WorkloadConfig{
			Seed:       wseed,
			Streams:    streams,
			RatePerSec: 0.5,
			PeriodSec:  0.1,
			MinFrames:  10,
			MaxFrames:  40,
			Scenarios:  []*scene.Scenario{scene.Scenario2()},
		}
		reqs, err := GenerateWorkload(cfg,
			func(*scene.Scenario) []scene.Frame { return testFrames(t) },
			fixedFactory(detmodel.YoloV7Tiny, "gpu"))
		if err != nil {
			t.Fatal(err)
		}
		var faults []Fault
		if faulty {
			names := make([]string, len(devices))
			for i, d := range devices {
				names[i] = d.Name
			}
			fcfg := DefaultFaultConfig()
			fcfg.Seed = fseed
			fcfg.RatePerSec = 0.1
			fcfg.Horizon = 45 * time.Second
			fcfg.MeanOutageSec = 4
			faults, err = GenerateFaults(fcfg, names)
			if err != nil {
				t.Fatal(err)
			}
		}
		run := func(devs []DeviceConfig, regions int, legacy bool) *Result {
			fl, err := New(Config{
				Seed:       wseed,
				Devices:    devs,
				Placement:  NewResidencyAffinity(),
				Admission:  Admission{PerDeviceStreams: 2, QueueLimit: 3},
				Regions:    regions,
				LegacyScan: legacy,
			})
			if err != nil {
				t.Fatal(err)
			}
			fl.auditCache = true
			res, err := fl.RunWithFaults(reqs, faults)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range fl.Devices() {
				if n := d.DML.TotalRefs(); n != 0 {
					t.Fatalf("device %s leaked %d residency refs", d.Name, n)
				}
			}
			return res
		}
		a := run(devices, 0, false)
		b := run(devices, 0, false)
		compareRuns(t, a, b, "repeat")
		shuffled := make([]DeviceConfig, devCount)
		for i := range devices {
			shuffled[(i+1)%devCount] = devices[i]
		}
		c := run(shuffled, 0, false)
		compareRuns(t, a, c, "shuffled-devices")
		// Selector equivalence: the legacy O(devices × sessions) rescan and
		// the sharded-region loop must replay the heap run bit-for-bit, at a
		// region count derived from the input so the corpus explores several.
		l := run(devices, 0, true)
		compareRuns(t, a, l, "legacy-scan")
		regions := int((wseed+fseed+ndev)%3) + 2
		r := run(devices, regions, false)
		compareRuns(t, a, r, "regions")
		if a.Events != l.Events || a.Events != r.Events {
			t.Fatalf("event counts diverge across selectors: heap %d, legacy %d, %d-region %d",
				a.Events, l.Events, regions, r.Events)
		}
	})
}
