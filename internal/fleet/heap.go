package fleet

import (
	"fmt"
	"time"
)

// Event selection and the indexed session-event heap.
//
// The fleet loop processes, at every iteration, the earliest of five event
// classes — departure, fault edge, scale tick, arrival, frame step — with
// ties resolving in exactly that order, then by device name, then by
// admission sequence. Arrivals and fault edges are pre-sorted cursors and
// the scale tick is a single computed candidate, so only the session events
// need a real priority structure: each resident session contributes exactly
// one pending event, its next step at ReadyAt() or its departure at
// Horizon() once Done(). Each region keeps those on an indexed binary
// min-heap ordered by the same key the legacy rescan's first-minimum-wins
// selection implied, making selection O(log n) per event instead of
// O(devices × sessions).

// eventKind ranks the event classes at equal virtual time. The numeric
// order IS the loop's tie order; do not reorder.
type eventKind uint8

const (
	evDeparture eventKind = iota
	evFault
	evScale
	evArrival
	evStep
	// evNone is the open-barrier sentinel: it sorts after every real kind,
	// so a missing global event never stops a region from draining.
	evNone
)

// eventAt is when the session's pending event fires.
func (as *activeSession) eventAt() time.Duration {
	if as.finished {
		return as.horizon
	}
	return as.readyAt
}

// eventKey is the session's (time, kind) selection key.
func (as *activeSession) eventKey() (time.Duration, eventKind) {
	if as.finished {
		return as.horizon, evDeparture
	}
	return as.readyAt, evStep
}

// sessBefore is the heap order: the event-loop key (time, kind, device
// name, admission seq) restricted to session events — a finished session's
// departure outranks any step at the same instant.
func sessBefore(a, b *activeSession) bool {
	if at, bt := a.eventAt(), b.eventAt(); at != bt {
		return at < bt
	}
	if a.finished != b.finished {
		return a.finished
	}
	if a.dev.Name != b.dev.Name {
		return a.dev.Name < b.dev.Name
	}
	return a.seq < b.seq
}

// sessHeap is an indexed binary min-heap of one region's session events.
// Each activeSession carries its slot (heapPos), so re-sorting after an
// in-place key change and removing from the middle are both O(log n).
type sessHeap struct{ evs []*activeSession }

func (h *sessHeap) len() int { return len(h.evs) }

func (h *sessHeap) peek() *activeSession {
	if len(h.evs) == 0 {
		return nil
	}
	return h.evs[0]
}

func (h *sessHeap) push(as *activeSession) {
	as.heapPos = len(h.evs)
	h.evs = append(h.evs, as)
	h.up(as.heapPos)
}

func (h *sessHeap) remove(as *activeSession) {
	i := as.heapPos
	n := len(h.evs) - 1
	as.heapPos = -1
	if i == n {
		h.evs = h.evs[:n]
		return
	}
	h.evs[i] = h.evs[n]
	h.evs[i].heapPos = i
	h.evs = h.evs[:n]
	h.fixAt(i)
}

// fix restores heap order after as's cached event changed in place.
func (h *sessHeap) fix(as *activeSession) { h.fixAt(as.heapPos) }

func (h *sessHeap) fixAt(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *sessHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !sessBefore(h.evs[i], h.evs[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *sessHeap) down(i int) bool {
	moved := false
	n := len(h.evs)
	for {
		l := 2*i + 1
		if l >= n {
			return moved
		}
		least := l
		if r := l + 1; r < n && sessBefore(h.evs[r], h.evs[l]) {
			least = r
		}
		if !sessBefore(h.evs[least], h.evs[i]) {
			return moved
		}
		h.swap(i, least)
		i = least
		moved = true
	}
}

func (h *sessHeap) swap(i, j int) {
	h.evs[i], h.evs[j] = h.evs[j], h.evs[i]
	h.evs[i].heapPos = i
	h.evs[j].heapPos = j
}

// track enqueues a just-admitted session on its region's heap; untrack
// removes a departing/evacuated one; retrack re-sorts after a cached-event
// refresh. Maintenance runs in every mode — the legacy scan ignores the
// heaps for selection but keeps them consistent, so the equivalence tests
// exercise identical structures.
func (f *Fleet) track(as *activeSession)   { f.regions[as.dev.region].heap.push(as) }
func (f *Fleet) untrack(as *activeSession) { f.regions[as.dev.region].heap.remove(as) }
func (f *Fleet) retrack(as *activeSession) { f.regions[as.dev.region].heap.fix(as) }

// nextPick is one selected event: its class, firing time, the session
// (departure and step only), and whether a scale tick fired with nothing
// else left to serve.
type nextPick struct {
	kind       eventKind
	at         time.Duration
	as         *activeSession
	lastResort bool
}

// bestSession returns the earliest pending session event — the minimum over
// the region heap tops, or the legacy full rescan when the scan selector is
// pinned — and nil when no session is resident. The two selectors agree
// bit-for-bit: the rescan visits devices in name order and sessions in
// admission order, so its first-minimum-wins choice is exactly the heap key.
func (f *Fleet) bestSession() *activeSession {
	if f.legacyScan {
		// The pre-heap O(devices × sessions) selection, retained as the
		// equivalence-test oracle and the scale sweep's baseline.
		var dep, step *activeSession
		var depAt, stepAt time.Duration
		for _, d := range f.devices {
			for _, as := range d.sessions {
				if as.finished {
					if t := as.horizon; dep == nil || t < depAt {
						dep, depAt = as, t
					}
				} else {
					if t := as.readyAt; step == nil || t < stepAt {
						step, stepAt = as, t
					}
				}
			}
		}
		if dep == nil || (step != nil && stepAt < depAt) {
			return step
		}
		return dep
	}
	var best *activeSession
	for _, rg := range f.regions {
		if top := rg.heap.peek(); top != nil && (best == nil || sessBefore(top, best)) {
			best = top
		}
	}
	return best
}

// nextEvent selects the earliest pending event across all five classes,
// replicating the legacy switch's `<=` chains: at equal time the smaller
// kind wins. ok is false when nothing remains — the loop's terminal state.
func (f *Fleet) nextEvent(reqs []StreamRequest, order []int, next int, fevs []faultEvent, fi, queued int) (pick nextPick, ok bool) {
	if f.auditCache {
		f.auditSessionCache()
	}
	sess := f.bestSession()
	if sess != nil {
		at, kind := sess.eventKey()
		pick, ok = nextPick{kind: kind, at: at, as: sess}, true
	}
	consider := func(at time.Duration, kind eventKind) bool {
		return !ok || at < pick.at || (at == pick.at && kind < pick.kind)
	}
	haveFault := fi < len(fevs)
	if haveFault && consider(fevs[fi].at, evFault) {
		pick, ok = nextPick{kind: evFault, at: fevs[fi].at}, true
	}
	haveArr := next < len(order)
	if haveArr {
		if at := reqs[order[next]].Arrival; consider(at, evArrival) {
			pick, ok = nextPick{kind: evArrival, at: at}, true
		}
	}
	// Scale ticks fire only while the simulation still has anything to serve
	// or wait for — and stop for good once a tick could not act on an
	// otherwise-idle fleet (see RunWithFaults).
	if f.auto != nil && !f.auto.exhausted && (sess != nil || haveArr || haveFault || queued > 0) {
		if consider(f.auto.nextAt, evScale) {
			pick = nextPick{
				kind: evScale, at: f.auto.nextAt,
				lastResort: sess == nil && !haveArr && !haveFault,
			}
			ok = true
		}
	}
	return pick, ok
}

// auditSessionCache cross-checks every session's cached event view against
// the live session — the stale-cache regression hook, enabled only by
// tests. A mismatch means some transition that changes ReadyAt/Horizon/
// Done/Remaining skipped its refresh.
func (f *Fleet) auditSessionCache() {
	for _, d := range f.devices {
		for _, as := range d.sessions {
			fresh := as.finished == as.sess.Done() &&
				as.horizon == as.sess.Horizon() &&
				as.left == as.sess.Remaining() &&
				(as.finished || as.readyAt == as.sess.ReadyAt())
			if !fresh {
				panic(fmt.Sprintf("fleet: stale session cache for %s on %s", as.out.Name, d.Name))
			}
		}
	}
}
