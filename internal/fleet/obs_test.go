package fleet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scene"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// runRecordedWorkload serves the shared seeded workload on the standard
// 3-device fleet with rec attached (nil: detached) at the given region count.
func runRecordedWorkload(t *testing.T, regions int, rec *obs.Recorder) *Result {
	t.Helper()
	f, err := New(Config{
		Seed: 7,
		Devices: []DeviceConfig{
			{Name: "edge-a", Scale: 1},
			{Name: "edge-b", Scale: 1.25},
			{Name: "edge-c", Scale: 0.8},
		},
		Placement: NewResidencyAffinity(),
		// One stream per device with a one-deep queue: the 8-stream workload
		// overflows, so the fold's rejected/aborted paths are exercised too.
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: 1},
		Regions:   regions,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(seededRequests(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRecorderDetachedBitIdentical is the zero-perturbation contract: a run
// with the flight recorder attached is bit-identical — outcome by outcome,
// record by record, timing by timing — to the same run detached, and the two
// summaries compare equal as structs.
func TestRecorderDetachedBitIdentical(t *testing.T) {
	detached := runRecordedWorkload(t, 0, nil)
	rec := obs.NewRecorder()
	attached := runRecordedWorkload(t, 0, rec)
	compareRuns(t, detached, attached, "recorder-attached")
	if Summarize(detached) != Summarize(attached) {
		t.Fatal("summaries diverge between attached and detached runs")
	}
	if len(rec.Spans()) == 0 {
		t.Fatal("attached recorder captured no spans")
	}
}

// TestRecorderSpansIdenticalAcrossRegions pins the barrier-merge span path:
// the recorded span stream — order included — is identical whether the event
// loop runs sequentially or sharded across any region count, because region
// pend-buffers are collected at the merge in global event-key order.
func TestRecorderSpansIdenticalAcrossRegions(t *testing.T) {
	base := obs.NewRecorder()
	runRecordedWorkload(t, 0, base)
	want := base.Spans()
	for _, regions := range []int{2, 3, 5} {
		rec := obs.NewRecorder()
		runRecordedWorkload(t, regions, rec)
		got := rec.Spans()
		if len(got) != len(want) {
			t.Fatalf("regions=%d: %d spans, want %d", regions, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("regions=%d: span %d diverges:\n%+v\n%+v", regions, i, got[i], want[i])
			}
		}
	}
}

// TestRecorderRederivesSummary pins the registry against fleet.Summarize on a
// fault-free run: every counter the span fold derives must agree with the
// summary's independent bookkeeping, and the attribution's locally-restated
// p99 must equal metrics.Latencies' p99 bit-for-bit (internal/obs cannot
// import internal/metrics, so the restatement is pinned here instead).
func TestRecorderRederivesSummary(t *testing.T) {
	rec := obs.NewRecorder()
	res := runRecordedWorkload(t, 0, rec)
	sum := Summarize(res)
	reg := rec.Registry()
	counters := []struct {
		name string
		want int64
	}{
		{"streams_offered", int64(sum.Offered)},
		{"streams_admitted", int64(sum.Offered - sum.Rejected)},
		{"streams_rejected", int64(sum.Rejected)},
		{"streams_aborted", int64(sum.Aborted)},
		{"streams_shed", int64(sum.Shed)},
		{"frames", int64(sum.Frames)},
		{"migrations", int64(sum.Migrations)},
		{"crash_recoveries", 0},
	}
	for _, c := range counters {
		if got := reg.Counter(c.name); got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, got, c.want)
		}
	}
	if sum.Rejected == 0 {
		t.Fatal("workload exercised no rejection; tighten admission")
	}
	if reg.Counter("execs") == 0 || reg.Counter("loads_miss") == 0 {
		t.Fatalf("engine fold empty: execs=%d loads_miss=%d",
			reg.Counter("execs"), reg.Counter("loads_miss"))
	}
	att := rec.Attribution()
	if att.Frames != sum.Frames {
		t.Fatalf("attribution frames %d, want %d", att.Frames, sum.Frames)
	}
	if att.P99Sec != sum.Latency.P99 {
		t.Fatalf("obs p99 %.12f != metrics p99 %.12f", att.P99Sec, sum.Latency.P99)
	}
	var lats []float64
	for _, sp := range rec.Spans() {
		if sp.Kind == obs.SpanFrame {
			lats = append(lats, sp.Dur().Seconds())
		}
	}
	if got := metrics.Latencies(lats).P99; att.P99Sec != got {
		t.Fatalf("obs p99 %.12f != metrics.Latencies over frame spans %.12f", att.P99Sec, got)
	}
	shares := att.QueueShare + att.SwapShare + att.ExecShare + att.InterferenceShare
	if shares < 1-1e-9 || shares > 1+1e-9 {
		t.Fatalf("attribution shares sum to %.15f, want 1", shares)
	}
	tail := att.QueueShareOfP99 + att.SwapStallShareOfP99 + att.ExecShareOfP99 + att.InterferenceShareOfP99
	if att.TailFrames > 0 && (tail < 1-1e-9 || tail > 1+1e-9) {
		t.Fatalf("p99 tail shares sum to %.15f, want 1", tail)
	}
}

// TestRecorderRederivesCrashRun extends the re-derivation contract to the
// fault path: crash-replayed frames re-emit frame spans, so the frames
// counter equals served frames plus replays, and recoveries split between
// migration and crash-recover spans exactly as the summary counts them.
func TestRecorderRederivesCrashRun(t *testing.T) {
	rec := obs.NewRecorder()
	f, err := New(Config{
		Seed: 1,
		Devices: []DeviceConfig{
			{Name: "d0"}, {Name: "d1"},
		},
		Durability: &DurabilityConfig{EveryFrames: 1 << 20},
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:60]
	res, err := f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7, "gpu"),
		}},
		[]Fault{{Device: "d0", Kind: FaultCrash, At: 2 * time.Second, Duration: 30 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res)
	if sum.Crashes != 1 || sum.ReplayedFrames == 0 {
		t.Fatalf("crash run summary %+v, want 1 crash with replays", sum)
	}
	reg := rec.Registry()
	if got, want := reg.Counter("frames"), int64(sum.Frames+sum.ReplayedFrames); got != want {
		t.Fatalf("frames counter %d, want served %d + replayed %d", got, sum.Frames, sum.ReplayedFrames)
	}
	if got, want := reg.Counter("migrations")+reg.Counter("crash_recoveries"), int64(sum.Migrations); got != want {
		t.Fatalf("migrations %d + crash_recoveries %d = %d, want %d",
			reg.Counter("migrations"), reg.Counter("crash_recoveries"), got, want)
	}
	if reg.Counter("crash_recoveries") != 1 {
		t.Fatalf("crash_recoveries %d, want 1", reg.Counter("crash_recoveries"))
	}
	if got, want := reg.Counter("streams_shed"), int64(sum.Shed); got != want {
		t.Fatalf("streams_shed %d, want %d", got, want)
	}
	for _, sp := range rec.Spans() {
		if sp.Kind != obs.SpanFrame {
			continue
		}
		if sp.Queue+sp.Wait+sp.Swap+sp.Exec != sp.Dur() {
			t.Fatalf("frame %d of %s: decomposition %v+%v+%v+%v != %v",
				sp.Frame, sp.Stream, sp.Queue, sp.Wait, sp.Swap, sp.Exec, sp.Dur())
		}
	}
	checkNoLeaks(t, f)
}

// TestRecorderBrownoutAndDrainSpans covers the lifecycle spans the seeded
// workload cannot reach: a brownout fault emits one brownout span bracketing
// onset to recovery, and the outage-displaced stream's drain and migration
// appear with the displaced stream's labels.
func TestRecorderBrownoutAndDrainSpans(t *testing.T) {
	rec := obs.NewRecorder()
	f, err := New(Config{
		Seed:     1,
		Devices:  []DeviceConfig{{Name: "d0"}, {Name: "d1"}},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(t)[:40]
	_, err = f.RunWithFaults(
		[]StreamRequest{{
			Name: "s", Scenario: "scenario2", Frames: frames, PeriodSec: 0.1,
			Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
		}},
		[]Fault{
			{Device: "d0", Kind: FaultOutage, At: time.Second, Duration: 20 * time.Second},
			{Device: "d1", Kind: FaultBrownout, At: 2 * time.Second, Duration: 3 * time.Second, Factor: 2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	var drains, migrations, brownouts int
	for _, sp := range rec.Spans() {
		switch sp.Kind {
		case obs.SpanDrain:
			drains++
			if sp.Stream != "s" {
				t.Fatalf("drain span stream %q, want s", sp.Stream)
			}
		case obs.SpanMigration:
			migrations++
			if sp.Stream != "s" || sp.Device != "d1" {
				t.Fatalf("migration span %+v, want s onto d1", sp)
			}
		case obs.SpanBrownout:
			brownouts++
			if sp.Device != "d1" || sp.Start != 2*time.Second || sp.End != 5*time.Second {
				t.Fatalf("brownout span %+v, want d1 [2s,5s]", sp)
			}
		}
	}
	if drains == 0 || migrations != 1 || brownouts != 1 {
		t.Fatalf("drains=%d migrations=%d brownouts=%d, want >=1/1/1", drains, migrations, brownouts)
	}
	reg := rec.Registry()
	if reg.Counter("drains") != int64(drains) || reg.Counter("brownouts") != 1 {
		t.Fatalf("registry drains=%d brownouts=%d disagree with spans",
			reg.Counter("drains"), reg.Counter("brownouts"))
	}
}

// TestChromeTraceGolden freezes the Chrome trace-event export of a small
// seeded run as a committed fixture: the writer must stay byte-deterministic
// and schema-valid (run with -update to regenerate after an intentional
// format change).
func TestChromeTraceGolden(t *testing.T) {
	rec := obs.NewRecorder()
	f, err := New(Config{
		Seed:      7,
		Devices:   []DeviceConfig{{Name: "edge-a", Scale: 1}, {Name: "edge-b", Scale: 1.25}},
		Placement: NewResidencyAffinity(),
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: 2},
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WorkloadConfig{
		Seed: 7, Streams: 3, RatePerSec: 0.5, PeriodSec: 0.1,
		MinFrames: 8, MaxFrames: 12,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	reqs, err := GenerateWorkload(cfg,
		func(*scene.Scenario) []scene.Frame { return testFrames(t) },
		fixedFactory(detmodel.YoloV7Tiny, "gpu"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(reqs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace violates the trace-event schema: %v", err)
	}
	if events == 0 {
		t.Fatal("exported trace is empty")
	}
	golden := filepath.Join("testdata", "chrome_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace export drifted from %s (%d vs %d bytes); rerun with -update if intentional",
			golden, buf.Len(), len(want))
	}
}
