package fleet

import (
	"fmt"

	"repro/internal/zoo"
)

// Placement chooses the serving device for an admitted stream. The
// dispatcher hands it the devices with admission headroom, in name order and
// never empty — down devices (outage or death) are already excluded, so
// policies are failure-aware for free; implementations must be deterministic
// — tie-breaks key on device names or the given candidate order, never on
// map iteration.
type Placement interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects the serving device for req among candidates.
	Pick(f *Fleet, req *StreamRequest, candidates []*Device) *Device
}

// PlacementByName resolves a policy name ("round-robin",
// "least-outstanding", "residency-affinity") to a fresh instance — the
// cmd/fleetsim flag and the sweep grid both key on these names.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-outstanding":
		return NewLeastOutstanding(), nil
	case "residency-affinity":
		return NewResidencyAffinity(), nil
	}
	return nil, fmt.Errorf("fleet: unknown placement %q", name)
}

// roundRobin rotates over the live candidates in name order — the classic
// load-oblivious baseline. The cursor is the *name* of the last-picked
// device, not an index into the fleet's full device list: an index cursor
// keeps dead and decommissioned devices as rotation slots and is re-based
// whenever the autoscaler grows the list, drifting the phase and biasing
// placement toward devices adjacent to the removed (or inserted) one. A name
// cursor rotates over whatever is currently alive, and on a static fleet
// picks exactly the devices the index cursor used to.
type roundRobin struct {
	last string // last-picked device name; "" before the first pick
}

// NewRoundRobin returns the rotating placement baseline.
func NewRoundRobin() Placement { return &roundRobin{} }

// Name implements Placement.
func (p *roundRobin) Name() string { return "round-robin" }

// Pick implements Placement.
func (p *roundRobin) Pick(_ *Fleet, _ *StreamRequest, candidates []*Device) *Device {
	// Candidates arrive live and name-ordered: pick the first one strictly
	// after the cursor, wrapping to the front.
	for _, c := range candidates {
		if c.Name > p.last {
			p.last = c.Name
			return c
		}
	}
	d := candidates[0]
	p.last = d.Name
	return d
}

// leastOutstanding places each stream on the candidate with the fewest
// frames still queued — join-the-shortest-queue, counting work rather than
// streams so slow devices with long backlogs are avoided.
type leastOutstanding struct{}

// NewLeastOutstanding returns the join-the-shortest-queue placement.
func NewLeastOutstanding() Placement { return leastOutstanding{} }

// Name implements Placement.
func (leastOutstanding) Name() string { return "least-outstanding" }

// Pick implements Placement.
func (leastOutstanding) Pick(_ *Fleet, _ *StreamRequest, candidates []*Device) *Device {
	best := candidates[0]
	bestOut := best.OutstandingFrames()
	for _, d := range candidates[1:] {
		if out := d.OutstandingFrames(); out < bestOut {
			best, bestOut = d, out
		}
	}
	return best
}

// residencyAffinity prefers the candidate already holding the engines
// streams of this scenario were observed to serve from (the fleet's learned
// affinity model), so new streams hit warm residency instead of paying
// loads — placement treating model residency as cache state. Ties break on
// the earlier queue horizon, then name order.
type residencyAffinity struct{}

// NewResidencyAffinity returns the residency-aware placement.
func NewResidencyAffinity() Placement { return residencyAffinity{} }

// Name implements Placement.
func (residencyAffinity) Name() string { return "residency-affinity" }

// Pick implements Placement.
func (residencyAffinity) Pick(f *Fleet, req *StreamRequest, candidates []*Device) *Device {
	likely := f.Affinity(req.Scenario)
	best := candidates[0]
	bestScore, bestHorizon := affinityScore(best, likely), best.Horizon()
	for _, d := range candidates[1:] {
		score, horizon := affinityScore(d, likely), d.Horizon()
		if score > bestScore || (score == bestScore && horizon < bestHorizon) {
			best, bestScore, bestHorizon = d, score, horizon
		}
	}
	return best
}

// affinityScore counts how many of the scenario's likely engines are
// demand-resident on the device. Speculative prefetches don't score:
// placement must see exactly the residency a prefetch-free run would,
// so predictions can never steer where streams land.
func affinityScore(d *Device, likely []zoo.Pair) int {
	n := 0
	for _, p := range likely {
		if d.DML.DemandResident(p) {
			n++
		}
	}
	return n
}
