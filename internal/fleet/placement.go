package fleet

import (
	"fmt"

	"repro/internal/zoo"
)

// Placement chooses the serving device for an admitted stream. The
// dispatcher hands it the devices with admission headroom, in name order and
// never empty — down devices (outage or death) are already excluded, so
// policies are failure-aware for free; implementations must be deterministic
// — tie-breaks key on device names or the given candidate order, never on
// map iteration.
type Placement interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick selects the serving device for req among candidates.
	Pick(f *Fleet, req *StreamRequest, candidates []*Device) *Device
}

// PlacementByName resolves a policy name ("round-robin",
// "least-outstanding", "residency-affinity") to a fresh instance — the
// cmd/fleetsim flag and the sweep grid both key on these names.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-outstanding":
		return NewLeastOutstanding(), nil
	case "residency-affinity":
		return NewResidencyAffinity(), nil
	}
	return nil, fmt.Errorf("fleet: unknown placement %q", name)
}

// roundRobin rotates over the fleet's name-ordered device list, skipping
// devices without headroom — the classic load-oblivious baseline.
type roundRobin struct {
	next int
}

// NewRoundRobin returns the rotating placement baseline.
func NewRoundRobin() Placement { return &roundRobin{} }

// Name implements Placement.
func (p *roundRobin) Name() string { return "round-robin" }

// Pick implements Placement.
func (p *roundRobin) Pick(f *Fleet, _ *StreamRequest, candidates []*Device) *Device {
	devs := f.Devices()
	for i := 0; i < len(devs); i++ {
		d := devs[(p.next+i)%len(devs)]
		for _, c := range candidates {
			if c == d {
				p.next = (p.next + i + 1) % len(devs)
				return d
			}
		}
	}
	// The dispatcher guarantees candidates is a non-empty subset of the
	// fleet's devices, so the rotation above always returns.
	panic("fleet: round-robin found no candidate among the fleet's devices")
}

// leastOutstanding places each stream on the candidate with the fewest
// frames still queued — join-the-shortest-queue, counting work rather than
// streams so slow devices with long backlogs are avoided.
type leastOutstanding struct{}

// NewLeastOutstanding returns the join-the-shortest-queue placement.
func NewLeastOutstanding() Placement { return leastOutstanding{} }

// Name implements Placement.
func (leastOutstanding) Name() string { return "least-outstanding" }

// Pick implements Placement.
func (leastOutstanding) Pick(_ *Fleet, _ *StreamRequest, candidates []*Device) *Device {
	best := candidates[0]
	bestOut := best.OutstandingFrames()
	for _, d := range candidates[1:] {
		if out := d.OutstandingFrames(); out < bestOut {
			best, bestOut = d, out
		}
	}
	return best
}

// residencyAffinity prefers the candidate already holding the engines
// streams of this scenario were observed to serve from (the fleet's learned
// affinity model), so new streams hit warm residency instead of paying
// loads — placement treating model residency as cache state. Ties break on
// the earlier queue horizon, then name order.
type residencyAffinity struct{}

// NewResidencyAffinity returns the residency-aware placement.
func NewResidencyAffinity() Placement { return residencyAffinity{} }

// Name implements Placement.
func (residencyAffinity) Name() string { return "residency-affinity" }

// Pick implements Placement.
func (residencyAffinity) Pick(f *Fleet, req *StreamRequest, candidates []*Device) *Device {
	likely := f.Affinity(req.Scenario)
	best := candidates[0]
	bestScore, bestHorizon := affinityScore(best, likely), best.Horizon()
	for _, d := range candidates[1:] {
		score, horizon := affinityScore(d, likely), d.Horizon()
		if score > bestScore || (score == bestScore && horizon < bestHorizon) {
			best, bestScore, bestHorizon = d, score, horizon
		}
	}
	return best
}

// affinityScore counts how many of the scenario's likely engines are
// resident on the device.
func affinityScore(d *Device, likely []zoo.Pair) int {
	n := 0
	for _, p := range likely {
		if d.DML.IsResident(p) {
			n++
		}
	}
	return n
}
