package fleet

import (
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/zoo"
)

// cyclePolicy serves fixed-length blocks of frames from a rotating model
// list: frames [0,block) on models[0], [block,2·block) on models[1], and so
// on. Block boundaries are deterministic swaps, and within a block the
// predictor has a whole block of compute to overlap the next load — the
// shape that turns every steady-state swap into a prefetch hit.
type cyclePolicy struct {
	models []string
	proc   string
	block  int
	phase  int
	i      int
	pairs  []zoo.Pair
}

func (p *cyclePolicy) Name() string { return "cycle" }
func (p *cyclePolicy) Reset(e *runtime.Engine) error {
	p.pairs = make([]zoo.Pair, len(p.models))
	for i, m := range p.models {
		for _, rp := range e.System().RuntimePairs() {
			if rp.Model == m && rp.ProcID == p.proc {
				p.pairs[i] = rp
			}
		}
	}
	p.i = 0
	return nil
}
func (p *cyclePolicy) Step(st *runtime.Step) error {
	want := p.pairs[((p.phase+p.i)/p.block)%len(p.pairs)]
	p.i++
	pair, err := st.Acquire(want)
	if err != nil {
		return err
	}
	st.Rec().Pair = pair
	if err := st.Exec(pair); err != nil {
		return err
	}
	det, err := st.Detect(pair.Model)
	if err != nil {
		return err
	}
	st.RecordDetection(det)
	return nil
}

// prefetchCell serves a miss-heavy two-device cell with the predictor on: a
// 1100 MB pool fits any two of {YoloV7 600, SSD-MobilenetV1 150,
// SSD-Resnet50 400} but never all three, so block-cycling streams swap at
// every block boundary forever.
func prefetchCell(t *testing.T, regions int, rec *obs.Recorder, pf *predict.Config) *Result {
	t.Helper()
	frames := testFrames(t)[:108]
	newSystem := func(seed uint64) *zoo.System {
		sys := zoo.Default(seed)
		sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 1100*accel.MB)
		return sys
	}
	fl, err := New(Config{
		Seed: 7,
		Devices: []DeviceConfig{
			{Name: "edge-a"},
			{Name: "edge-b"},
		},
		Placement: NewResidencyAffinity(),
		Admission: Admission{PerDeviceStreams: 2, QueueLimit: 2},
		Regions:   regions,
		NewSystem: newSystem,
		Recorder:  rec,
		Prefetch:  pf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]StreamRequest, 4)
	for i := range reqs {
		phase := i
		reqs[i] = StreamRequest{
			Name:      "cam" + string(rune('0'+i)),
			Scenario:  "scenario2",
			Arrival:   time.Duration(i) * 50 * time.Millisecond,
			Frames:    frames,
			PeriodSec: 0.1,
			Policy: func(*zoo.System) (runtime.Policy, error) {
				return &cyclePolicy{
					models: []string{detmodel.YoloV7, detmodel.SSDMobilenetV1, detmodel.SSDResnet50},
					proc:   "gpu",
					block:  12,
					phase:  phase,
				}, nil
			},
		}
	}
	res, err := fl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != len(reqs) {
		t.Fatalf("served %d of %d streams", res.Served, len(reqs))
	}
	for _, d := range fl.Devices() {
		if n := d.DML.TotalRefs(); n != 0 {
			t.Fatalf("device %s leaked %d residency refs", d.Name, n)
		}
	}
	return res
}

// checkPrefetchSpans pins the attribution contract on a prefetch-on span
// stream: every frame span's latency decomposition sums bit-exactly, and a
// frame served through a prefetch hit carries a zero Swap component — the
// stall the prediction hid is really gone, not reattributed.
func checkPrefetchSpans(t *testing.T, spans []obs.Span) (hits int) {
	t.Helper()
	type frameKey struct {
		stream string
		frame  int
	}
	hit := map[frameKey]bool{}
	for _, sp := range spans {
		if sp.Kind == obs.SpanPrefetchHit {
			hit[frameKey{sp.Stream, sp.Frame}] = true
			hits++
		}
	}
	for i, sp := range spans {
		if sp.Kind != obs.SpanFrame {
			continue
		}
		if sp.Queue+sp.Wait+sp.Swap+sp.Exec != sp.Dur() {
			t.Fatalf("span %d (%s frame %d): queue %v + wait %v + swap %v + exec %v != %v",
				i, sp.Stream, sp.Frame, sp.Queue, sp.Wait, sp.Swap, sp.Exec, sp.Dur())
		}
		if sp.Queue < 0 || sp.Wait < 0 || sp.Swap < 0 || sp.Exec < 0 {
			t.Fatalf("span %d (%s frame %d): negative component: %+v", i, sp.Stream, sp.Frame, sp)
		}
		if hit[frameKey{sp.Stream, sp.Frame}] && sp.Swap != 0 {
			t.Fatalf("span %d (%s frame %d): prefetch-hit frame charged %v of swap stall",
				i, sp.Stream, sp.Frame, sp.Swap)
		}
	}
	return hits
}

// TestFleetPrefetchHitFramesHaveZeroSwap runs the miss-heavy cell with the
// predictor on and pins the fleet-level prefetch properties: the run
// actually produces full prefetch hits (the suite is not vacuous), hit
// frames pay zero swap stall, every frame decomposition sums bit-exactly,
// and the run is deterministic — an identical repeat and a region-sharded
// advance reproduce results, spans and the predictor scorecard bit-for-bit.
func TestFleetPrefetchHitFramesHaveZeroSwap(t *testing.T) {
	pf := predict.DefaultConfig()
	rec := obs.NewRecorder()
	a := prefetchCell(t, 0, rec, &pf)
	if a.Prefetch.Swaps == 0 {
		t.Fatal("cell produced no swaps; the prefetch suite is vacuous")
	}
	if a.Prefetch.FullHits == 0 {
		t.Fatalf("cell produced no full prefetch hits: %+v", a.Prefetch)
	}
	hits := checkPrefetchSpans(t, rec.Spans())
	if hits == 0 {
		t.Fatal("recorder saw no prefetch-hit spans")
	}
	if hits != a.Prefetch.FullHits {
		t.Fatalf("recorder saw %d prefetch-hit spans, scorecard says %d full hits",
			hits, a.Prefetch.FullHits)
	}

	// Identical repeat: results, spans and scorecard must reproduce exactly.
	rec2 := obs.NewRecorder()
	b := prefetchCell(t, 0, rec2, &pf)
	compareRuns(t, a, b, "prefetch-repeat")
	if a.Prefetch != b.Prefetch {
		t.Fatalf("predictor scorecard not deterministic: %+v vs %+v", a.Prefetch, b.Prefetch)
	}
	sa, sb := rec.Spans(), rec2.Spans()
	if len(sa) != len(sb) {
		t.Fatalf("span counts diverge across repeats: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("span %d diverges across repeats:\n%+v\n%+v", i, sa[i], sb[i])
		}
	}

	// Region-sharded advance: same cell, three regions, bit-identical.
	rec3 := obs.NewRecorder()
	c := prefetchCell(t, 3, rec3, &pf)
	compareRuns(t, a, c, "prefetch-regions")
	if a.Prefetch != c.Prefetch {
		t.Fatalf("predictor scorecard diverges under region sharding: %+v vs %+v", a.Prefetch, c.Prefetch)
	}
	sc := rec3.Spans()
	if len(sa) != len(sc) {
		t.Fatalf("span counts diverge across region counts: %d vs %d", len(sa), len(sc))
	}
	for i := range sa {
		if sa[i] != sc[i] {
			t.Fatalf("span %d diverges across region counts:\n%+v\n%+v", i, sa[i], sc[i])
		}
	}
}
