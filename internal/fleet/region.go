package fleet

import (
	"math"
	"time"

	"repro/internal/par"
	"repro/internal/runtime"
)

// Region sharding: the fleet's devices partition into R regions, each
// owning a private session-event heap. Between two consecutive global
// events — arrivals, fault edges, scale ticks, and any event while the
// admission queue is non-empty — every pending session event is local to
// the device that owns the session, so the regions advance their steps and
// departures in parallel (via internal/par) and log the cross-region side
// effects. A deterministic merge then replays those logs in exact global
// event order, making an R-region run bit-identical to R=1 on any worker
// count. This is the plan-then-fan-out draw-equivalence discipline of the
// offline stages (DESIGN.md §2) applied to the event loop itself.

// region is one shard of the fleet's devices.
type region struct{ heap sessHeap }

// regionIndex assigns a device to a region by FNV-1a of its name — stable
// across runs and device-listing order, the property every fleet decision
// keys on.
func regionIndex(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// barrier is the earliest global (cross-region) event's selection key.
// Session events strictly before it are region-local by construction.
type barrier struct {
	at   time.Duration
	kind eventKind
}

// openBarrier sorts after every real event, so with no global event left
// the regions drain completely.
func openBarrier() barrier {
	return barrier{at: time.Duration(math.MaxInt64), kind: evNone}
}

func (b barrier) min(at time.Duration, kind eventKind) barrier {
	if at < b.at || (at == b.at && kind < b.kind) {
		return barrier{at: at, kind: kind}
	}
	return b
}

// admits reports whether the session's event sorts strictly before the
// barrier — kind breaks the time tie exactly like the selection switch.
func (b barrier) admits(as *activeSession) bool {
	at, kind := as.eventKey()
	return at < b.at || (at == b.at && kind < b.kind)
}

// regionEvent is one session event a region advance processed locally,
// logged with its global key so cross-region side effects replay in exact
// global order at the merge.
type regionEvent struct {
	at   time.Duration
	kind eventKind
	dev  string
	seq  int
	as   *activeSession

	// Step payload: the autoscaler latency sample and, when the stream's
	// journal cadence came due, the checkpoint snapshot taken at the step
	// (encoded at merge time so journal sequence numbers stay global).
	sample    latSample
	hasSample bool
	snap      *runtime.SessionSnapshot

	// Departure payload: the completed stream result for departGlobal.
	sr *runtime.StreamResult

	// Flight-recorder payload: the [spanLo, spanHi) range of the session's
	// pending span buffer this step emitted. The merge collects exactly that
	// range in global key order, so the recorder's span list is bit-identical
	// to the sequential run; buffers reset only after the whole merge (a
	// session can step several times within one parallel interval).
	spanLo, spanHi int
}

func regionEventBefore(a, b *regionEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.dev != b.dev {
		return a.dev < b.dev
	}
	return a.seq < b.seq
}

// advanceRegions advances every region in parallel up to the next global
// event, then replays the logged side effects in global order. The caller
// guarantees the admission queue is empty, so a departure inside the
// interval cannot admit anything and stays region-local (a non-empty queue
// pins the loop sequential until it drains).
func (f *Fleet) advanceRegions(reqs []StreamRequest, order []int, next int, fevs []faultEvent, fi int) error {
	bar := openBarrier()
	if fi < len(fevs) {
		bar = bar.min(fevs[fi].at, evFault)
	}
	if next < len(order) {
		bar = bar.min(reqs[order[next]].Arrival, evArrival)
	}
	anySess := false
	for _, rg := range f.regions {
		if rg.heap.len() > 0 {
			anySess = true
			break
		}
	}
	if f.auto != nil && !f.auto.exhausted && (anySess || fi < len(fevs) || next < len(order)) {
		bar = bar.min(f.auto.nextAt, evScale)
	}
	// Skip the fan-out entirely when no region has an event inside the
	// interval — the common case right before each arrival in a sparse
	// trace.
	work := false
	for _, rg := range f.regions {
		if top := rg.heap.peek(); top != nil && bar.admits(top) {
			work = true
			break
		}
	}
	if !work {
		return nil
	}
	logs := make([][]regionEvent, len(f.regions))
	if err := par.MapErr(len(f.regions), func(ri int) error {
		return f.advanceRegion(f.regions[ri], bar, &logs[ri])
	}); err != nil {
		return err
	}
	return f.mergeRegions(logs)
}

// advanceRegion drains one region's heap up to the barrier. Steps and
// departures touch only the region's own devices, sessions and loaders;
// every effect visible outside the region is logged instead of applied.
func (f *Fleet) advanceRegion(rg *region, bar barrier, log *[]regionEvent) error {
	for {
		as := rg.heap.peek()
		if as == nil || !bar.admits(as) {
			return nil
		}
		at, kind := as.eventKey()
		ev := regionEvent{at: at, kind: kind, dev: as.dev.Name, seq: as.seq, as: as}
		if as.finished {
			ev.sr = f.departLocal(as)
		} else {
			if as.sr != nil {
				ev.spanLo = as.sr.PendLen()
			}
			if err := as.sess.Step(); err != nil {
				return err
			}
			if as.sr != nil {
				ev.spanHi = as.sr.PendLen()
			}
			as.refresh()
			rg.heap.fix(as)
			if f.auto != nil {
				tms := as.sess.Result().Timings
				tm := tms[len(tms)-1]
				ev.sample = latSample{dev: as.dev.Name, done: tm.Done, lat: tm.LatencySec()}
				ev.hasSample = true
			}
			if f.journalDue(as) {
				ev.snap = as.sess.Snapshot()
				// Snapshot invalidates the cached event view, same as
				// writeJournal on the sequential path.
				as.refresh()
				rg.heap.fix(as)
			}
		}
		*log = append(*log, ev)
	}
}

// mergeRegions interleaves the per-region logs by global event key (each
// log is already sorted — heap pop order) and applies the cross-region
// mutations in that order: the autoscaler's rolling sample window, journal
// writes (stamping the global journalSeq, so the encoded bytes are
// bit-identical to the sequential run), and the global half of each
// departure.
func (f *Fleet) mergeRegions(logs [][]regionEvent) error {
	idx := make([]int, len(logs))
	for {
		best := -1
		for ri := range logs {
			if idx[ri] >= len(logs[ri]) {
				continue
			}
			if best < 0 || regionEventBefore(&logs[ri][idx[ri]], &logs[best][idx[best]]) {
				best = ri
			}
		}
		if best < 0 {
			// Every logged span range is collected; clear the buffers so the
			// next interval's ranges start at zero (idempotent per session).
			if f.rec != nil {
				for ri := range logs {
					for i := range logs[ri] {
						if sr := logs[ri][i].as.sr; sr != nil {
							sr.ResetPend()
						}
					}
				}
			}
			return nil
		}
		ev := &logs[best][idx[best]]
		idx[best]++
		f.events++
		if ev.kind == evDeparture {
			f.departGlobal(ev.as, ev.sr)
			continue
		}
		if ev.hasSample {
			f.auto.samples = append(f.auto.samples, ev.sample)
		}
		if ev.snap != nil {
			if err := f.commitJournal(ev.as, ev.snap); err != nil {
				return err
			}
		}
		// Collect the step's exact span range last, mirroring the sequential
		// path's step → sample → journal → flush order.
		if f.rec != nil && ev.as.sr != nil && ev.spanHi > ev.spanLo {
			f.rec.CollectRange(ev.as.sr, ev.spanLo, ev.spanHi)
		}
	}
}
