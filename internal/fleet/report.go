package fleet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/textplot"
)

// Summary reduces a fleet run to its headline serving metrics.
type Summary struct {
	Offered, Served, Rejected int
	Frames                    int
	// AvgIoU and SuccessRate are detection quality across served frames.
	AvgIoU      float64
	SuccessRate float64
	// Latency is the arrival-to-completion profile across every served
	// frame (device queueing included).
	Latency metrics.LatencyProfile
	// DeadlineMissRate is the fraction of served frames finishing past
	// their deadline; RejectRate the fraction of offered streams refused.
	DeadlineMissRate float64
	RejectRate       float64
	// AvgQueueDelaySec is the mean admission-queue wait across admitted
	// streams.
	AvgQueueDelaySec float64
	// Loads and Evictions total across device loaders; AvgUtilization is
	// the mean per-device peak-processor busy fraction.
	Loads, Evictions int
	AvgUtilization   float64
}

// Summarize reduces a fleet result.
func Summarize(res *Result) Summary {
	s := Summary{Offered: res.Offered, Served: res.Served, Rejected: res.Rejected}
	var lats []float64
	var iouSum, delaySum float64
	success, missed, admitted := 0, 0, 0
	for _, out := range res.Outcomes {
		if out.Rejected || out.Stream == nil {
			continue
		}
		admitted++
		delaySum += out.QueueDelaySec()
		lats = append(lats, out.Stream.Latencies()...)
		missed += out.Stream.MissCount()
		for _, rec := range out.Stream.Result.Records {
			iouSum += rec.IoU
			if rec.IoU >= metrics.SuccessIoU {
				success++
			}
		}
	}
	s.Frames = len(lats)
	if s.Frames > 0 {
		f := float64(s.Frames)
		s.AvgIoU = iouSum / f
		s.SuccessRate = float64(success) / f
		s.DeadlineMissRate = float64(missed) / f
	}
	if admitted > 0 {
		s.AvgQueueDelaySec = delaySum / float64(admitted)
	}
	if res.Offered > 0 {
		s.RejectRate = float64(res.Rejected) / float64(res.Offered)
	}
	s.Latency = metrics.Latencies(lats)
	var utilSum float64
	for _, d := range res.Devices {
		s.Loads += d.Loads
		s.Evictions += d.Evicts
		utilSum += d.Utilization
	}
	if len(res.Devices) > 0 {
		s.AvgUtilization = utilSum / float64(len(res.Devices))
	}
	return s
}

// Report renders a fleet run: per-device table plus the utilization gauge
// plot.
func Report(res *Result) string {
	rows := [][]string{{"Device", "Scale", "Streams", "Frames", "Loads", "Evictions", "Busy (s)", "Peak Util", "Peak Proc"}}
	labels := make([]string, 0, len(res.Devices))
	utils := make([]float64, 0, len(res.Devices))
	for _, d := range res.Devices {
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.2f", d.Scale),
			fmt.Sprintf("%d", d.Streams),
			fmt.Sprintf("%d", d.Frames),
			fmt.Sprintf("%d", d.Loads),
			fmt.Sprintf("%d", d.Evicts),
			fmt.Sprintf("%.1f", d.BusySec),
			fmt.Sprintf("%.1f%%", d.Utilization*100),
			d.PeakProc,
		})
		labels = append(labels, d.Name)
		utils = append(utils, d.Utilization)
	}
	sum := Summarize(res)
	head := fmt.Sprintf(
		"Fleet: %d offered, %d served, %d rejected | IoU %.3f | p50 %.3fs p99 %.3fs | miss %.1f%% | horizon %.1fs",
		sum.Offered, sum.Served, sum.Rejected, sum.AvgIoU,
		sum.Latency.P50, sum.Latency.P99, sum.DeadlineMissRate*100, res.Horizon.Seconds())
	return head + "\n\n" +
		textplot.Table("Per-device serving totals", rows) + "\n" +
		textplot.PercentBars("Peak-processor utilization over the fleet horizon", labels, utils, 40)
}
