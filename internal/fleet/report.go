package fleet

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/textplot"
)

// Summary reduces a fleet run to its headline serving metrics.
type Summary struct {
	Offered, Served, Rejected int
	Frames                    int
	// AvgIoU and SuccessRate are detection quality across served frames.
	AvgIoU      float64
	SuccessRate float64
	// Latency is the arrival-to-completion profile across every served
	// frame (device queueing included).
	Latency metrics.LatencyProfile
	// DeadlineMissRate is the fraction of served frames finishing past
	// their deadline; RejectRate the fraction of offered streams refused.
	DeadlineMissRate float64
	RejectRate       float64
	// AvgQueueDelaySec is the mean admission-queue wait across admitted
	// streams.
	AvgQueueDelaySec float64
	// Loads and Evictions total across device loaders; AvgUtilization is
	// the mean per-device peak-processor busy fraction.
	Loads, Evictions int
	AvgUtilization   float64

	// Recovery metrics (zero on fault-free runs). Migrations counts
	// successful post-fault device moves and Aborted the displaced streams
	// that never resumed; AvgDowntimeSec is the mean displacement-to-resume
	// wait per migration. PostFaultP99 is the p99 frame latency restricted
	// to frames completed at or after the first fault onset — the tail the
	// fleet serves while absorbing failures. LeakedRefs sums residency
	// references still held after the run (always zero unless migration
	// bookkeeping is broken).
	Migrations     int
	Aborted        int
	AvgDowntimeSec float64
	PostFaultP99   float64
	LeakedRefs     int

	// Elasticity metrics (zero when the autoscaler is off). ScaleOuts and
	// ScaleIns count devices provisioned from and drained back into the warm
	// pool; Drained sums the sessions those drains migrated; PeakDevices is
	// the maximum concurrently serving-capable device count over the run.
	ScaleOuts   int
	ScaleIns    int
	Drained     int
	PeakDevices int

	// Durability metrics (zero when the checkpoint journal is off). Crashes
	// counts worker-process kills, Shed the best-effort streams dropped
	// during crash recovery, ReplayedFrames the frames lost to crashes and
	// served again, and JournalWrites/JournalBytes the wire-format
	// checkpoint traffic the journal absorbed.
	Crashes        int
	Shed           int
	ReplayedFrames int
	JournalWrites  int
	JournalBytes   int64
}

// Summarize reduces a fleet result.
func Summarize(res *Result) Summary {
	s := Summary{
		Offered:     res.Offered,
		Served:      res.Served,
		Rejected:    res.Rejected,
		Aborted:     res.Aborted,
		Migrations:  res.Migrations,
		ScaleOuts:   res.ScaleOuts,
		ScaleIns:    res.ScaleIns,
		PeakDevices: res.PeakDevices,

		Crashes:        res.Crashes,
		Shed:           res.Shed,
		ReplayedFrames: res.ReplayedFrames,
		JournalWrites:  res.JournalWrites,
		JournalBytes:   res.JournalBytes,
	}
	firstFault := time.Duration(-1)
	for _, ft := range res.Faults {
		if firstFault < 0 || ft.At < firstFault {
			firstFault = ft.At
		}
	}
	var lats, postLats []float64
	var iouSum, delaySum, downSum float64
	success, missed, admitted := 0, 0, 0
	for _, out := range res.Outcomes {
		if out.Rejected || out.Stream == nil {
			continue
		}
		// Shed streams keep their checkpointed partials; those frames were
		// genuinely served, so quality and latency count them.
		admitted++
		delaySum += out.QueueDelaySec()
		downSum += out.DowntimeSec
		lats = append(lats, out.Stream.Latencies()...)
		missed += out.Stream.MissCount()
		if firstFault >= 0 {
			for _, tm := range out.Stream.Timings {
				if tm.Done >= firstFault {
					postLats = append(postLats, tm.LatencySec())
				}
			}
		}
		for _, rec := range out.Stream.Result.Records {
			iouSum += rec.IoU
			if rec.IoU >= metrics.SuccessIoU {
				success++
			}
		}
	}
	s.Frames = len(lats)
	if s.Frames > 0 {
		f := float64(s.Frames)
		s.AvgIoU = iouSum / f
		s.SuccessRate = float64(success) / f
		s.DeadlineMissRate = float64(missed) / f
	}
	if admitted > 0 {
		s.AvgQueueDelaySec = delaySum / float64(admitted)
	}
	if res.Migrations > 0 {
		s.AvgDowntimeSec = downSum / float64(res.Migrations)
	}
	if res.Offered > 0 {
		s.RejectRate = float64(res.Rejected) / float64(res.Offered)
	}
	s.Latency = metrics.Latencies(lats)
	if len(postLats) > 0 {
		s.PostFaultP99 = metrics.Latencies(postLats).P99
	}
	var utilSum float64
	for _, d := range res.Devices {
		s.Loads += d.Loads
		s.Evictions += d.Evicts
		s.LeakedRefs += d.LeakedRefs
		s.Drained += d.Drained
		utilSum += d.Utilization
	}
	if len(res.Devices) > 0 {
		s.AvgUtilization = utilSum / float64(len(res.Devices))
	}
	return s
}

// Report renders a fleet run: per-device table plus the utilization gauge
// plot, with a recovery line when the run was fault-injected.
func Report(res *Result) string {
	rows := [][]string{{"Device", "Scale", "Streams", "Frames", "Loads", "Evictions", "Busy (s)", "Down (s)", "Peak Util", "Peak Proc"}}
	labels := make([]string, 0, len(res.Devices))
	utils := make([]float64, 0, len(res.Devices))
	for _, d := range res.Devices {
		name := d.Name
		if d.Dead {
			name += " †"
		}
		if d.Retired {
			name += " ↓"
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", d.Scale),
			fmt.Sprintf("%d", d.Streams),
			fmt.Sprintf("%d", d.Frames),
			fmt.Sprintf("%d", d.Loads),
			fmt.Sprintf("%d", d.Evicts),
			fmt.Sprintf("%.1f", d.BusySec),
			fmt.Sprintf("%.1f", d.DownSec),
			fmt.Sprintf("%.1f%%", d.Utilization*100),
			d.PeakProc,
		})
		labels = append(labels, d.Name)
		utils = append(utils, d.Utilization)
	}
	sum := Summarize(res)
	head := fmt.Sprintf(
		"Fleet: %d offered, %d served, %d rejected | IoU %.3f | p50 %.3fs p99 %.3fs | miss %.1f%% | horizon %.1fs",
		sum.Offered, sum.Served, sum.Rejected, sum.AvgIoU,
		sum.Latency.P50, sum.Latency.P99, sum.DeadlineMissRate*100, res.Horizon.Seconds())
	if len(res.Faults) > 0 {
		head += fmt.Sprintf(
			"\nFaults: %d injected | %d migrations, %d aborted | mean downtime %.2fs | post-fault p99 %.3fs | leaked refs %d",
			len(res.Faults), sum.Migrations, sum.Aborted, sum.AvgDowntimeSec, sum.PostFaultP99, sum.LeakedRefs)
	}
	if sum.ScaleOuts > 0 || sum.ScaleIns > 0 {
		head += fmt.Sprintf(
			"\nAutoscale: %d scale-outs, %d scale-ins (↓=retired) | peak %d devices | %d sessions drained",
			sum.ScaleOuts, sum.ScaleIns, sum.PeakDevices, sum.Drained)
	}
	if sum.JournalWrites > 0 {
		head += fmt.Sprintf(
			"\nDurability: %d crashes | %d frames replayed, %d best-effort shed | journal %d writes, %.1f KiB",
			sum.Crashes, sum.ReplayedFrames, sum.Shed,
			sum.JournalWrites, float64(sum.JournalBytes)/1024)
	}
	return head + "\n\n" +
		textplot.Table("Per-device serving totals", rows) + "\n" +
		textplot.PercentBars("Peak-processor utilization over the fleet horizon", labels, utils, 40)
}
