package fleet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/detmodel"
	"repro/internal/runtime"
	"repro/internal/scene"
	"repro/internal/zoo"
)

// selectorGrid runs one (workload, faults, config) scenario through every
// event-loop selector — indexed heap (the default), legacy rescan, and
// sharded regions at two counts — with the stale-cache audit armed, and
// asserts all four runs are bit-identical, event counts and journal traffic
// included. This is the scan-vs-heap / R=1-vs-R>1 equivalence test the heap
// refactor is pinned by, on scenarios richer than the fuzz corpus explores
// per input: elastic scale-out/in, brownout TimeScale churn, crash recovery.
func selectorGrid(t *testing.T, label string, reqs []StreamRequest, faults []Fault, base Config, check func(*Result)) {
	t.Helper()
	run := func(regions int, legacy bool) *Result {
		cfg := base
		cfg.Regions = regions
		cfg.LegacyScan = legacy
		fl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fl.auditCache = true
		res, err := fl.RunWithFaults(reqs, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range fl.Devices() {
			if n := d.DML.TotalRefs(); n != 0 {
				t.Fatalf("%s: device %s leaked %d residency refs", label, d.Name, n)
			}
		}
		if len(fl.journalStore) != 0 && base.Durability != nil {
			// Every in-flight entry is released at departure/abort/shed; a
			// clean run must end with an empty journal.
			t.Fatalf("%s: %d journal entries leaked", label, len(fl.journalStore))
		}
		return res
	}
	heap := run(0, false)
	check(heap)
	for _, v := range []struct {
		name    string
		regions int
		legacy  bool
	}{
		{"legacy-scan", 0, true},
		{"regions-2", 2, false},
		{"regions-5", 5, false},
	} {
		got := run(v.regions, v.legacy)
		compareRuns(t, heap, got, label+"/"+v.name)
		if heap.Events != got.Events {
			t.Fatalf("%s/%s: event counts differ: %d vs %d", label, v.name, heap.Events, got.Events)
		}
		if heap.JournalWrites != got.JournalWrites || heap.JournalBytes != got.JournalBytes {
			t.Fatalf("%s/%s: journal traffic differs: %d/%d vs %d/%d bytes", label, v.name,
				heap.JournalWrites, heap.JournalBytes, got.JournalWrites, got.JournalBytes)
		}
	}
}

// TestFleetSelectorEquivalenceElastic: an elastic fleet under queue pressure
// (scale-out, then drain-based scale-in) replays identically on every
// selector and region count.
func TestFleetSelectorEquivalenceElastic(t *testing.T) {
	cfg := WorkloadConfig{
		Seed: 11, Streams: 8, RatePerSec: 1.5, PeriodSec: 0.1,
		MinFrames: 10, MaxFrames: 30,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	reqs, err := GenerateWorkload(cfg,
		func(*scene.Scenario) []scene.Frame { return testFrames(t) },
		fixedFactory(detmodel.YoloV7Tiny, "gpu"))
	if err != nil {
		t.Fatal(err)
	}
	selectorGrid(t, "elastic", reqs, nil, Config{
		Seed:      11,
		Devices:   []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}},
		Placement: NewLeastOutstanding(),
		Admission: Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Autoscale: autoTestConfig(2),
	}, func(res *Result) {
		if res.ScaleOuts == 0 {
			t.Fatalf("elastic scenario never scaled out — not exercising provisioning")
		}
	})
}

// TestFleetSelectorEquivalenceFaulty: brownout TimeScale churn, an outage
// migration and a crash recovery from the durable journal replay identically
// on every selector and region count — the fault paths all maintain the heap
// (and the cached event views) correctly.
func TestFleetSelectorEquivalenceFaulty(t *testing.T) {
	cfg := WorkloadConfig{
		Seed: 5, Streams: 6, RatePerSec: 1, PeriodSec: 0.1,
		MinFrames: 20, MaxFrames: 40,
		Scenarios: []*scene.Scenario{scene.Scenario2()},
	}
	reqs, err := GenerateWorkload(cfg,
		func(*scene.Scenario) []scene.Frame { return testFrames(t) },
		fixedFactory(detmodel.YoloV7Tiny, "gpu"))
	if err != nil {
		t.Fatal(err)
	}
	faults := []Fault{
		{Device: "edge-a", Kind: FaultBrownout, At: time.Second, Duration: 2 * time.Second, Factor: 2},
		{Device: "edge-a", Kind: FaultBrownout, At: 1500 * time.Millisecond, Duration: 4 * time.Second, Factor: 1.5},
		{Device: "edge-b", Kind: FaultCrash, At: 2 * time.Second, Duration: time.Second},
		{Device: "edge-c", Kind: FaultOutage, At: 2500 * time.Millisecond, Duration: 2 * time.Second},
	}
	selectorGrid(t, "faulty", reqs, faults, Config{
		Seed:       5,
		Devices:    []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b", Scale: 1.25}, {Name: "edge-c", Scale: 0.8}},
		Placement:  NewResidencyAffinity(),
		Admission:  Admission{PerDeviceStreams: 2, QueueLimit: 4},
		Durability: &DurabilityConfig{EveryFrames: 3},
	}, func(res *Result) {
		if res.Crashes == 0 || res.Migrations == 0 {
			t.Fatalf("faulty scenario crashes=%d migrations=%d — not exercising recovery",
				res.Crashes, res.Migrations)
		}
	})
}

// TestFleetFailReleasesQueuedCheckpoints: when a run fails while a displaced
// stream's checkpoint is parked in the admission queue, the failure path
// must release the parked journal entry and every residency reference — an
// error may lose the run, never leak the store. The scenario forces exactly
// that: a stream is displaced by an outage, waits in the queue behind a full
// device, and its re-admission policy rebuild is made to fail.
func TestFleetFailReleasesQueuedCheckpoints(t *testing.T) {
	builds := 0
	failSecond := func(sys *zoo.System) (runtime.Policy, error) {
		builds++
		if builds >= 3 {
			// Build 1: victim's admission. Build 2: the other stream's
			// admission. Build 3: the victim's post-displacement rebuild.
			return nil, fmt.Errorf("injected policy build failure")
		}
		return fixedFactory(detmodel.YoloV7Tiny, "gpu")(sys)
	}
	frames := testFrames(t)
	reqs := []StreamRequest{
		// Lands on edge-a (round-robin), long enough to straddle the outage.
		{Name: "victim", Scenario: "s2", Arrival: 0, Frames: frames[:60], PeriodSec: 0.05, Policy: failSecond},
		// Fills edge-b's single slot until after the outage displaces the
		// victim, so the victim queues instead of migrating immediately.
		{Name: "blocker", Scenario: "s2", Arrival: 50 * time.Millisecond, Frames: frames[:20], PeriodSec: 0.05, Policy: failSecond},
	}
	faults := []Fault{{Device: "edge-a", Kind: FaultOutage, At: 800 * time.Millisecond, Duration: 100 * time.Second}}
	fl, err := New(Config{
		Seed:       3,
		Devices:    []DeviceConfig{{Name: "edge-a"}, {Name: "edge-b"}},
		Placement:  NewRoundRobin(),
		Admission:  Admission{PerDeviceStreams: 1, QueueLimit: -1},
		Durability: &DurabilityConfig{EveryFrames: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.RunWithFaults(reqs, faults)
	if err == nil {
		t.Fatalf("run succeeded (%d served); want the injected policy failure", res.Served)
	}
	for _, d := range fl.Devices() {
		if n := d.DML.TotalRefs(); n != 0 {
			t.Fatalf("device %s leaked %d residency refs after failed run", d.Name, n)
		}
	}
	if n := len(fl.journalStore); n != 0 {
		t.Fatalf("failed run leaked %d journal entries (queued checkpoint not released)", n)
	}
}

// TestFleetStaleCacheAuditTripsOnSkippedRefresh proves the audit hook has
// teeth: serving one step through the session behind the cache's back must
// panic the next selection, so any future transition that forgets its
// refresh cannot pass the equivalence suite silently.
func TestFleetStaleCacheAuditTripsOnSkippedRefresh(t *testing.T) {
	fl, err := New(Config{
		Seed:      3,
		Devices:   []DeviceConfig{{Name: "edge-a"}},
		Placement: NewRoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fl.auditCache = true
	reqs := []StreamRequest{{
		Name: "s", Scenario: "s2", Arrival: 0, Frames: testFrames(t)[:10],
		PeriodSec: 0.05, Policy: fixedFactory(detmodel.YoloV7Tiny, "gpu"),
	}}
	// Admit manually through the loop's own helpers, then step the session
	// directly — the one mutation path the fleet never uses without a
	// refresh.
	var queue []*pending
	out, err := fl.arrive(&reqs[0], 0, &queue)
	if err != nil {
		t.Fatal(err)
	}
	as := fl.devices[0].sessions[0]
	if err := as.sess.Step(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = as.sess.Close()
		if recover() == nil {
			t.Fatalf("stale cache not detected for %s", out.Name)
		}
	}()
	fl.nextEvent(reqs, []int{0}, 1, nil, 0, 0)
}
