package fleet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/scene"
)

// WorkloadConfig parameterizes the deterministic open-loop stream generator:
// seeded Poisson-like arrivals of finite streams drawn from the evaluation
// suite.
type WorkloadConfig struct {
	// Seed drives every draw; identical configs generate identical
	// workloads bit-for-bit.
	Seed uint64
	// Streams is the number of streams offered.
	Streams int
	// RatePerSec is the mean stream arrival rate: inter-arrival gaps are
	// exponential draws (a Poisson process realized through rng.Stream).
	RatePerSec float64
	// PeriodSec is every stream's camera frame period.
	PeriodSec float64
	// MinFrames and MaxFrames bound each stream's length (uniform draw);
	// streams are truncated to the scenario's rendered length.
	MinFrames, MaxFrames int
	// Scenarios is the content mix, drawn uniformly per stream (default
	// scene.EvaluationSuite()).
	Scenarios []*scene.Scenario
}

// DefaultWorkloadConfig returns the standard fleet workload: 16 streams of
// 10 fps video, 12-24 s long, arriving at ~0.25 streams/s — a mean offered
// load of ~4.5 concurrent streams, past one device's PR 2 capacity cliff.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Seed:       1,
		Streams:    16,
		RatePerSec: 0.25,
		PeriodSec:  0.1,
		MinFrames:  120,
		MaxFrames:  240,
	}
}

// FrameSource renders (or returns a cached render of) a scenario; the
// experiments environment's cache satisfies it directly.
type FrameSource func(*scene.Scenario) []scene.Frame

// GenerateWorkload expands a config into concrete stream requests: arrival
// times from exponential inter-arrival draws, scenarios and lengths drawn
// uniformly, frames from source, and every stream sharing the given policy
// factory. Generation consumes only the workload's own forked stream, so a
// workload is reproducible independent of fleet composition.
func GenerateWorkload(cfg WorkloadConfig, source FrameSource, policy PolicyFactory) ([]StreamRequest, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("fleet: workload needs a positive stream count, got %d", cfg.Streams)
	}
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("fleet: workload needs a positive arrival rate, got %v", cfg.RatePerSec)
	}
	if cfg.PeriodSec <= 0 {
		return nil, fmt.Errorf("fleet: workload needs a positive camera period, got %v", cfg.PeriodSec)
	}
	if cfg.MinFrames <= 0 || cfg.MaxFrames < cfg.MinFrames {
		return nil, fmt.Errorf("fleet: invalid stream length bounds [%d, %d]", cfg.MinFrames, cfg.MaxFrames)
	}
	if source == nil {
		return nil, fmt.Errorf("fleet: workload needs a frame source")
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = scene.EvaluationSuite()
	}
	r := rng.New(cfg.Seed).Fork("fleet/workload")
	reqs := make([]StreamRequest, 0, cfg.Streams)
	at := time.Duration(0)
	for i := 0; i < cfg.Streams; i++ {
		// Exponential inter-arrival: -ln(1-U)/rate, with U in [0,1) so the
		// argument stays in (0,1].
		gap := -math.Log(1-r.Float64()) / cfg.RatePerSec
		at += time.Duration(gap * float64(time.Second))
		sc := scenarios[r.Intn(len(scenarios))]
		n := cfg.MinFrames + r.Intn(cfg.MaxFrames-cfg.MinFrames+1)
		frames := source(sc)
		if len(frames) > n {
			frames = frames[:n]
		}
		reqs = append(reqs, StreamRequest{
			Name:      fmt.Sprintf("%s#%02d", sc.Name, i),
			Scenario:  sc.Name,
			Arrival:   at,
			Frames:    frames,
			PeriodSec: cfg.PeriodSec,
			Policy:    policy,
		})
	}
	return reqs, nil
}

// RateFn gives the instantaneous stream arrival rate (streams/second) at
// virtual time t seconds — the non-homogeneous shape the autoscale
// experiments drive elasticity with.
type RateFn func(tSec float64) float64

// BurstRate returns a piecewise-constant shape: base everywhere, base×factor
// inside [start, start+dur) — a traffic spike.
func BurstRate(base, factor float64, start, dur time.Duration) RateFn {
	s, e := start.Seconds(), (start + dur).Seconds()
	return func(t float64) float64 {
		if t >= s && t < e {
			return base * factor
		}
		return base
	}
}

// DiurnalRate returns a sinusoidal shape: base×(1 + amp·sin(2πt/period)) —
// the day/night swing, starting on the rising edge. amp must sit in [0, 1)
// so the rate stays positive.
func DiurnalRate(base, amp float64, period time.Duration) RateFn {
	p := period.Seconds()
	return func(t float64) float64 {
		return base * (1 + amp*math.Sin(2*math.Pi*t/p))
	}
}

// GenerateShapedWorkload is GenerateWorkload with a time-varying arrival
// rate, realized as a thinned Poisson process (Lewis–Shedler): candidate
// arrivals are drawn at the constant peak rate and accepted with probability
// rate(t)/peak. cfg.RatePerSec is ignored — rate supplies it — and peak must
// bound rate everywhere (violations are detected during generation). Like
// the constant-rate generator, identical inputs generate identical workloads
// bit-for-bit, independent of fleet composition.
func GenerateShapedWorkload(cfg WorkloadConfig, rate RateFn, peak float64, source FrameSource, policy PolicyFactory) ([]StreamRequest, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("fleet: workload needs a positive stream count, got %d", cfg.Streams)
	}
	if rate == nil {
		return nil, fmt.Errorf("fleet: shaped workload needs a rate function")
	}
	if peak <= 0 {
		return nil, fmt.Errorf("fleet: shaped workload needs a positive peak rate, got %v", peak)
	}
	if cfg.PeriodSec <= 0 {
		return nil, fmt.Errorf("fleet: workload needs a positive camera period, got %v", cfg.PeriodSec)
	}
	if cfg.MinFrames <= 0 || cfg.MaxFrames < cfg.MinFrames {
		return nil, fmt.Errorf("fleet: invalid stream length bounds [%d, %d]", cfg.MinFrames, cfg.MaxFrames)
	}
	if source == nil {
		return nil, fmt.Errorf("fleet: workload needs a frame source")
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = scene.EvaluationSuite()
	}
	r := rng.New(cfg.Seed).Fork("fleet/workload")
	reqs := make([]StreamRequest, 0, cfg.Streams)
	at := time.Duration(0)
	rejected := 0
	for i := 0; i < cfg.Streams; {
		gap := -math.Log(1-r.Float64()) / peak
		at += time.Duration(gap * float64(time.Second))
		want := rate(at.Seconds())
		if want < 0 || want > peak {
			return nil, fmt.Errorf("fleet: shaped rate %v at %v outside [0, peak %v]", want, at, peak)
		}
		if r.Float64() >= want/peak {
			// Thinned candidate. A rate pinned (effectively) at zero would
			// thin forever: a run of rejections this long means the
			// acceptance probability is below ~1e-6 of peak.
			if rejected++; rejected > 1<<20 {
				return nil, fmt.Errorf("fleet: shaped rate stuck near zero after %v (%d candidates thinned)", at, rejected)
			}
			continue
		}
		rejected = 0
		sc := scenarios[r.Intn(len(scenarios))]
		n := cfg.MinFrames + r.Intn(cfg.MaxFrames-cfg.MinFrames+1)
		frames := source(sc)
		if len(frames) > n {
			frames = frames[:n]
		}
		reqs = append(reqs, StreamRequest{
			Name:      fmt.Sprintf("%s#%02d", sc.Name, i),
			Scenario:  sc.Name,
			Arrival:   at,
			Frames:    frames,
			PeriodSec: cfg.PeriodSec,
			Policy:    policy,
		})
		i++
	}
	return reqs, nil
}
