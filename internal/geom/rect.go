// Package geom provides the 2-D geometry primitives used throughout the
// SHIFT reproduction: axis-aligned bounding boxes, intersection-over-union
// (the paper's accuracy metric), and controlled box perturbation used by the
// detection synthesizer to emit predictions with a prescribed IoU against
// ground truth.
package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle in continuous image coordinates.
// X, Y is the top-left corner; W, H are width and height. A Rect with
// W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H float64
}

// RectAround returns the rectangle of size w×h centered at (cx, cy).
func RectAround(cx, cy, w, h float64) Rect {
	return Rect{X: cx - w/2, Y: cy - h/2, W: w, H: h}
}

// Empty reports whether r has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the area of r, or 0 if r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// Center returns the center point of r.
func (r Rect) Center() (cx, cy float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Right returns the x coordinate of the right edge.
func (r Rect) Right() float64 { return r.X + r.W }

// Bottom returns the y coordinate of the bottom edge.
func (r Rect) Bottom() float64 { return r.Y + r.H }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	r.X += dx
	r.Y += dy
	return r
}

// Scale returns r scaled about its center by factor s.
func (r Rect) Scale(s float64) Rect {
	cx, cy := r.Center()
	return RectAround(cx, cy, r.W*s, r.H*s)
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x1 := math.Max(r.X, o.X)
	y1 := math.Max(r.Y, o.Y)
	x2 := math.Min(r.Right(), o.Right())
	y2 := math.Min(r.Bottom(), o.Bottom())
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Union returns the smallest rectangle containing both r and o. If either is
// empty the other is returned.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x1 := math.Min(r.X, o.X)
	y1 := math.Min(r.Y, o.Y)
	x2 := math.Max(r.Right(), o.Right())
	y2 := math.Max(r.Bottom(), o.Bottom())
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.Right() && y >= r.Y && y < r.Bottom()
}

// ClampTo returns r clipped to the bounds rectangle.
func (r Rect) ClampTo(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union between r and o, in [0, 1].
// Two empty rectangles have IoU 0.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Lerp linearly interpolates from r to o by t in [0, 1].
func (r Rect) Lerp(o Rect, t float64) Rect {
	return Rect{
		X: r.X + (o.X-r.X)*t,
		Y: r.Y + (o.Y-r.Y)*t,
		W: r.W + (o.W-r.W)*t,
		H: r.H + (o.H-r.H)*t,
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.1f,%.1f %gx%g)", r.X, r.Y, r.W, r.H)
}

// shiftForIoU returns the axis-aligned displacement d such that translating a
// w×h box by (d, 0) against itself yields the target IoU. For a pure
// translation along one axis, IoU = (w-d)/(w+d) on that axis, so
// d = w*(1-iou)/(1+iou).
func shiftForIoU(extent, iou float64) float64 {
	return extent * (1 - iou) / (1 + iou)
}

// PerturbToIoU returns a copy of gt displaced so that the result's IoU with
// gt is approximately target (within a few percent). The displacement
// direction is controlled by dir (radians), which callers typically draw from
// a random stream; the magnitude is solved analytically for the axis-aligned
// components. target is clamped to [0, 1]; target = 1 returns gt unchanged
// and target = 0 returns a box fully outside gt.
func PerturbToIoU(gt Rect, target, dir float64) Rect {
	if target >= 1 {
		return gt
	}
	if gt.Empty() {
		return gt
	}
	if target <= 0 {
		// Place the box just past the corner so the intersection is empty.
		return gt.Translate(gt.W*1.5*math.Cos(dir)+gt.W, gt.H*1.5*math.Sin(dir)+gt.H)
	}
	// Decompose the unit direction into |cos|, |sin| weights and solve the
	// one-dimensional overlap equations. For a displacement (dx, dy),
	// IoU = ((w-|dx|)(h-|dy|)) / (2wh - (w-|dx|)(h-|dy|)). We pick
	// |dx| = a*w*t, |dy| = b*h*t with a=|cos dir|, b=|sin dir| and solve for
	// t by bisection; the function is monotone decreasing in t.
	a, b := math.Abs(math.Cos(dir)), math.Abs(math.Sin(dir))
	if a+b == 0 {
		a = 1
	}
	iouAt := func(t float64) float64 {
		dx := a * gt.W * t
		dy := b * gt.H * t
		ow := gt.W - dx
		oh := gt.H - dy
		if ow <= 0 || oh <= 0 {
			return 0
		}
		inter := ow * oh
		return inter / (2*gt.W*gt.H - inter)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if iouAt(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	dx := a * gt.W * t * sign(math.Cos(dir))
	dy := b * gt.H * t * sign(math.Sin(dir))
	return gt.Translate(dx, dy)
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
