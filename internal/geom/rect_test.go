package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRectAround(t *testing.T) {
	r := RectAround(10, 20, 4, 6)
	if r.X != 8 || r.Y != 17 || r.W != 4 || r.H != 6 {
		t.Fatalf("RectAround wrong: %+v", r)
	}
	cx, cy := r.Center()
	if cx != 10 || cy != 20 {
		t.Fatalf("Center = (%v,%v), want (10,20)", cx, cy)
	}
}

func TestEmptyAndArea(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
		area  float64
	}{
		{Rect{0, 0, 2, 3}, false, 6},
		{Rect{0, 0, 0, 3}, true, 0},
		{Rect{0, 0, 2, -1}, true, 0},
		{Rect{}, true, 0},
	}
	for _, c := range cases {
		if c.r.Empty() != c.empty {
			t.Errorf("%v Empty() = %v, want %v", c.r, c.r.Empty(), c.empty)
		}
		if c.r.Area() != c.area {
			t.Errorf("%v Area() = %v, want %v", c.r, c.r.Area(), c.area)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	got := a.Intersect(b)
	want := Rect{5, 5, 5, 5}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Disjoint boxes intersect to empty.
	c := Rect{20, 20, 5, 5}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint Intersect not empty")
	}
	// Touching edges count as empty.
	d := Rect{10, 0, 5, 5}
	if !a.Intersect(d).Empty() {
		t.Fatal("edge-touching Intersect not empty")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{4, 4, 2, 2}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Fatalf("Union = %v", u)
	}
	if a.Union(Rect{}) != a {
		t.Fatal("Union with empty should return the non-empty rect")
	}
	if (Rect{}).Union(b) != b {
		t.Fatal("Union of empty with b should return b")
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(5, 5) || !r.Contains(0, 0) {
		t.Fatal("Contains false negatives")
	}
	if r.Contains(10, 5) || r.Contains(5, 10) || r.Contains(-1, 5) {
		t.Fatal("Contains false positives on boundary/outside")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{0, 0, 10, 10}, 1.0},
		{Rect{5, 0, 10, 10}, (5.0 * 10) / (200 - 50)},
		{Rect{20, 20, 10, 10}, 0},
		{Rect{}, 0},
	}
	for _, c := range cases {
		if got := a.IoU(c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("IoU(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestIoUProperties(t *testing.T) {
	r := rng.New(99)
	randRect := func() Rect {
		return Rect{r.Range(-50, 50), r.Range(-50, 50), r.Range(0.1, 40), r.Range(0.1, 40)}
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		iou := a.IoU(b)
		if iou < 0 || iou > 1 {
			t.Fatalf("IoU out of [0,1]: %v for %v %v", iou, a, b)
		}
		// Symmetry.
		if !almostEqual(iou, b.IoU(a), 1e-12) {
			t.Fatalf("IoU not symmetric: %v vs %v", iou, b.IoU(a))
		}
		// Identity.
		if !almostEqual(a.IoU(a), 1, 1e-12) {
			t.Fatalf("self IoU != 1 for %v", a)
		}
	}
}

func TestTranslateScale(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	tr := r.Translate(10, 20)
	if tr != (Rect{11, 22, 3, 4}) {
		t.Fatalf("Translate = %v", tr)
	}
	sc := Rect{0, 0, 4, 4}.Scale(0.5)
	if sc != (Rect{1, 1, 2, 2}) {
		t.Fatalf("Scale = %v", sc)
	}
}

func TestLerp(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{10, 20, 30, 40}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if mid != (Rect{5, 10, 20, 25}) {
		t.Fatalf("Lerp(0.5) = %v", mid)
	}
}

func TestPerturbToIoUAccuracy(t *testing.T) {
	r := rng.New(7)
	gt := Rect{100, 100, 40, 30}
	for _, target := range []float64{0.95, 0.8, 0.65, 0.5, 0.35, 0.2, 0.05} {
		for i := 0; i < 50; i++ {
			dir := r.Range(0, 2*math.Pi)
			pred := PerturbToIoU(gt, target, dir)
			got := pred.IoU(gt)
			if !almostEqual(got, target, 0.02) {
				t.Fatalf("PerturbToIoU(target=%v, dir=%v): got IoU %v", target, dir, got)
			}
		}
	}
}

func TestPerturbToIoUExtremes(t *testing.T) {
	gt := Rect{0, 0, 10, 10}
	if got := PerturbToIoU(gt, 1.0, 1.3); got != gt {
		t.Fatalf("target 1 should return gt, got %v", got)
	}
	if got := PerturbToIoU(gt, 0, 0.4); got.IoU(gt) != 0 {
		t.Fatalf("target 0 should be disjoint, IoU=%v", got.IoU(gt))
	}
	empty := Rect{}
	if got := PerturbToIoU(empty, 0.5, 0); got != empty {
		t.Fatal("empty gt should pass through")
	}
}

func TestPerturbToIoUPreservesSize(t *testing.T) {
	gt := Rect{5, 5, 12, 8}
	pred := PerturbToIoU(gt, 0.6, 2.0)
	if pred.W != gt.W || pred.H != gt.H {
		t.Fatalf("perturbation changed box size: %v", pred)
	}
}

func TestIoUQuick(t *testing.T) {
	// IoU(a, b) == 1 implies a and b have equal area intersection/union; and
	// nesting implies IoU = inner/outer area ratio.
	f := func(x, y, w, h uint8) bool {
		a := Rect{float64(x), float64(y), float64(w%32) + 1, float64(h%32) + 1}
		inner := a.Scale(0.5)
		want := inner.Area() / a.Area()
		return almostEqual(a.IoU(inner), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIoU(b *testing.B) {
	x := Rect{0, 0, 10, 10}
	y := Rect{3, 4, 10, 10}
	for i := 0; i < b.N; i++ {
		_ = x.IoU(y)
	}
}

func BenchmarkPerturbToIoU(b *testing.B) {
	gt := Rect{100, 100, 40, 30}
	for i := 0; i < b.N; i++ {
		_ = PerturbToIoU(gt, 0.6, 1.0)
	}
}
