package img

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPGM hardens the PGM decoder against arbitrary input: it must
// either return an error or a structurally consistent image, never panic or
// over-allocate.
func FuzzReadPGM(f *testing.F) {
	// Seed corpus: valid images and near-miss corruptions.
	var buf bytes.Buffer
	m := New(3, 2)
	m.Pix = []uint8{1, 2, 3, 4, 5, 6}
	if err := m.WritePGM(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P5\n# comment\n1 1\n255\nx"))
	f.Add([]byte("P2\n2 2\n255\nabcd"))
	f.Add([]byte("P5\n999999999 999999999\n255\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadPGM(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if img.W <= 0 || img.H <= 0 {
			t.Fatalf("accepted non-positive dimensions %dx%d", img.W, img.H)
		}
		if len(img.Pix) != img.W*img.H {
			t.Fatalf("pixel buffer %d does not match %dx%d", len(img.Pix), img.W, img.H)
		}
		// A successfully decoded image must re-encode and decode to itself.
		var out bytes.Buffer
		if err := img.WritePGM(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPGM(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !img.Equal(back) {
			t.Fatal("PGM round trip not idempotent")
		}
	})
}
