// Package img implements the grayscale image substrate of the SHIFT
// reproduction: an 8-bit single-channel image type, the normalized
// cross-correlation (NCC) measure from Eq. 1 of the paper, and the pixel
// operations (crop, resize, blur, compositing, procedural texturing) used by
// the synthetic scene generator and by the Marlin template tracker.
//
// The SHIFT scheduler's context detection operates on these actual pixels —
// not on oracle flags — so its behaviour (including mistakes such as missing
// a re-entering target) emerges from image content exactly as in the paper.
package img

import "fmt"

// Image is an 8-bit grayscale raster. Pixels are stored row-major in Pix;
// pixel (x, y) is Pix[y*W+x]. The zero value is an empty image.
type Image struct {
	W, H int
	Pix  []uint8
}

// New returns a zeroed (black) image of the given size. It panics if either
// dimension is negative.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: negative dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Clone returns a deep copy of m.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]uint8, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// At returns the pixel at (x, y), or 0 if out of bounds.
func (m *Image) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = v
}

// Fill sets every pixel to v.
func (m *Image) Fill(v uint8) {
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Mean returns the average pixel intensity, or 0 for an empty image.
func (m *Image) Mean() float64 {
	if len(m.Pix) == 0 {
		return 0
	}
	var sum uint64
	for _, p := range m.Pix {
		sum += uint64(p)
	}
	return float64(sum) / float64(len(m.Pix))
}

// Variance returns the population variance of pixel intensities.
func (m *Image) Variance() float64 {
	if len(m.Pix) == 0 {
		return 0
	}
	mean := m.Mean()
	var acc float64
	for _, p := range m.Pix {
		d := float64(p) - mean
		acc += d * d
	}
	return acc / float64(len(m.Pix))
}

// Histogram returns the 256-bin intensity histogram of m.
func (m *Image) Histogram() [256]int {
	var h [256]int
	for _, p := range m.Pix {
		h[p]++
	}
	return h
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
