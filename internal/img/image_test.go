package img

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(4, 3)
	if m.W != 4 || m.H != 3 || len(m.Pix) != 12 {
		t.Fatalf("New(4,3) = %dx%d len %d", m.W, m.H, len(m.Pix))
	}
	m.Set(2, 1, 200)
	if m.At(2, 1) != 200 {
		t.Fatal("Set/At roundtrip failed")
	}
	// Out-of-bounds access is safe.
	if m.At(-1, 0) != 0 || m.At(0, -1) != 0 || m.At(4, 0) != 0 || m.At(0, 3) != 0 {
		t.Fatal("out-of-bounds At should return 0")
	}
	m.Set(-1, -1, 9) // must not panic
	m.Set(99, 99, 9)
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 10)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 10 {
		t.Fatal("Clone shares pixel storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestFillMeanVariance(t *testing.T) {
	m := New(8, 8)
	m.Fill(100)
	if m.Mean() != 100 {
		t.Fatalf("Mean = %v, want 100", m.Mean())
	}
	if m.Variance() != 0 {
		t.Fatalf("Variance of flat image = %v, want 0", m.Variance())
	}
	// Half 0, half 200 -> mean 100, variance 100^2.
	for i := 0; i < 32; i++ {
		m.Pix[i] = 0
	}
	for i := 32; i < 64; i++ {
		m.Pix[i] = 200
	}
	if m.Mean() != 100 {
		t.Fatalf("Mean = %v, want 100", m.Mean())
	}
	if m.Variance() != 10000 {
		t.Fatalf("Variance = %v, want 10000", m.Variance())
	}
}

func TestHistogram(t *testing.T) {
	m := New(2, 2)
	m.Pix = []uint8{0, 0, 7, 255}
	h := m.Histogram()
	if h[0] != 2 || h[7] != 1 || h[255] != 1 {
		t.Fatalf("Histogram wrong: %v %v %v", h[0], h[7], h[255])
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes reported Equal")
	}
}

func TestCrop(t *testing.T) {
	m := New(4, 4)
	for i := range m.Pix {
		m.Pix[i] = uint8(i)
	}
	c := m.Crop(1, 1, 2, 2)
	want := []uint8{5, 6, 9, 10}
	for i, v := range want {
		if c.Pix[i] != v {
			t.Fatalf("Crop pixel %d = %d, want %d", i, c.Pix[i], v)
		}
	}
	// Crop spilling out of bounds zero-fills.
	c2 := m.Crop(3, 3, 2, 2)
	if c2.Pix[0] != 15 || c2.Pix[1] != 0 || c2.Pix[2] != 0 || c2.Pix[3] != 0 {
		t.Fatalf("out-of-bounds Crop = %v", c2.Pix)
	}
}

func TestResizeIdentityAndFlat(t *testing.T) {
	m := New(7, 5)
	m.Fill(123)
	r := m.Resize(14, 10)
	for i, p := range r.Pix {
		if p != 123 {
			t.Fatalf("flat resize pixel %d = %d", i, p)
		}
	}
	same := m.Resize(7, 5)
	if !same.Equal(m) {
		t.Fatal("identity resize changed pixels")
	}
}

func TestResizePreservesMeanApprox(t *testing.T) {
	r := rng.New(20)
	m := New(32, 32)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	down := m.Resize(16, 16)
	if diff := m.Mean() - down.Mean(); diff > 6 || diff < -6 {
		t.Fatalf("resize changed mean too much: %v vs %v", m.Mean(), down.Mean())
	}
}

func TestBoxBlurFlatInvariant(t *testing.T) {
	m := New(16, 16)
	m.Fill(77)
	b := m.BoxBlur(3)
	for i, p := range b.Pix {
		if p != 77 {
			t.Fatalf("blur of flat image changed pixel %d to %d", i, p)
		}
	}
}

func TestBoxBlurReducesVariance(t *testing.T) {
	r := rng.New(21)
	m := New(32, 32)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	b := m.BoxBlur(2)
	if b.Variance() >= m.Variance() {
		t.Fatalf("blur did not reduce variance: %v -> %v", m.Variance(), b.Variance())
	}
	if m.BoxBlur(0).Equal(m) == false {
		t.Fatal("BoxBlur(0) should be identity")
	}
}

func TestCompositeOpaqueAndKey(t *testing.T) {
	dst := New(4, 4)
	dst.Fill(10)
	src := New(2, 2)
	src.Pix = []uint8{0, 200, 200, 0} // 0 is the transparent key
	dst.Composite(src, 1, 1, 1.0, 0)
	if dst.At(1, 1) != 10 { // keyed-out pixel untouched
		t.Fatalf("keyed pixel overwritten: %d", dst.At(1, 1))
	}
	if dst.At(2, 1) != 200 {
		t.Fatalf("opaque pixel not written: %d", dst.At(2, 1))
	}
}

func TestCompositeAlphaBlend(t *testing.T) {
	dst := New(1, 1)
	dst.Fill(100)
	src := New(1, 1)
	src.Pix = []uint8{200}
	dst.Composite(src, 0, 0, 0.5, 0)
	if got := dst.At(0, 0); got != 150 {
		t.Fatalf("alpha blend = %d, want 150", got)
	}
	// alpha <= 0 is a no-op.
	dst.Composite(src, 0, 0, 0, 0)
	if dst.At(0, 0) != 150 {
		t.Fatal("zero alpha modified dst")
	}
}

func TestCompositeClipping(t *testing.T) {
	dst := New(2, 2)
	src := New(4, 4)
	src.Fill(255)
	dst.Composite(src, -2, -2, 1, 0) // mostly out of bounds; must not panic
	dst.Composite(src, 1, 1, 1, 0)
	if dst.At(1, 1) != 255 {
		t.Fatal("clipped composite missed in-bounds pixel")
	}
}

func TestAddScaledSaturates(t *testing.T) {
	m := New(1, 2)
	m.Pix = []uint8{250, 5}
	m.AddScaled(10)
	if m.Pix[0] != 255 {
		t.Fatalf("positive saturation failed: %d", m.Pix[0])
	}
	m.AddScaled(-300)
	if m.Pix[0] != 0 || m.Pix[1] != 0 {
		t.Fatalf("negative saturation failed: %v", m.Pix)
	}
}

func TestIntegralRectSum(t *testing.T) {
	m := New(4, 4)
	for i := range m.Pix {
		m.Pix[i] = 1
	}
	it := m.Integral()
	if got := RectSum(it, 0, 0, 4, 4); got != 16 {
		t.Fatalf("full RectSum = %d, want 16", got)
	}
	if got := RectSum(it, 1, 1, 3, 3); got != 4 {
		t.Fatalf("inner RectSum = %d, want 4", got)
	}
	// Clamped and inverted rectangles.
	if got := RectSum(it, -5, -5, 99, 99); got != 16 {
		t.Fatalf("clamped RectSum = %d, want 16", got)
	}
	if got := RectSum(it, 3, 3, 1, 1); got != 0 {
		t.Fatalf("inverted RectSum = %d, want 0", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	r := rng.New(22)
	m := New(13, 9)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	it := m.Integral()
	f := func(x0r, y0r, x1r, y1r uint8) bool {
		x0, y0 := int(x0r%13), int(y0r%9)
		x1, y1 := int(x1r%14), int(y1r%10)
		var want uint64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += uint64(m.At(x, y))
			}
		}
		return RectSum(it, x0, y0, x1, y1) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDownsample2x(t *testing.T) {
	m := New(4, 4)
	m.Fill(100)
	d := m.Downsample2x()
	if d.W != 2 || d.H != 2 {
		t.Fatalf("Downsample2x size %dx%d", d.W, d.H)
	}
	for _, p := range d.Pix {
		if p != 100 {
			t.Fatalf("flat downsample pixel %d", p)
		}
	}
}
