package img

import "math"

// NCC computes the normalized cross-correlation between two equally sized
// images, per Eq. 1 of the paper:
//
//	NCC(p, c) = Σ (p-mean(p))(c-mean(c)) / (sqrt(Σ(c-mean(c))²) · sqrt(Σ(p-mean(p))²))
//
// The result lies in [-1, 1]; 1 means identical up to affine intensity
// change. If the sizes differ, the smaller common region (top-left aligned)
// is compared, mirroring how the runtime compares consecutive camera frames
// of equal size and consecutive bounding-box crops of slightly different
// sizes. If either image has zero variance the result is defined as 0 when
// the other varies and 1 when both are flat (two featureless frames are
// maximally similar for scheduling purposes).
func NCC(p, c *Image) float64 {
	w := p.W
	if c.W < w {
		w = c.W
	}
	h := p.H
	if c.H < h {
		h = c.H
	}
	if w <= 0 || h <= 0 {
		return 0
	}
	n := float64(w * h)

	var sumP, sumC float64
	for y := 0; y < h; y++ {
		prow := p.Pix[y*p.W : y*p.W+w]
		crow := c.Pix[y*c.W : y*c.W+w]
		for x := 0; x < w; x++ {
			sumP += float64(prow[x])
			sumC += float64(crow[x])
		}
	}
	meanP := sumP / n
	meanC := sumC / n

	var cross, varP, varC float64
	for y := 0; y < h; y++ {
		prow := p.Pix[y*p.W : y*p.W+w]
		crow := c.Pix[y*c.W : y*c.W+w]
		for x := 0; x < w; x++ {
			dp := float64(prow[x]) - meanP
			dc := float64(crow[x]) - meanC
			cross += dp * dc
			varP += dp * dp
			varC += dc * dc
		}
	}
	if varP == 0 && varC == 0 {
		return 1
	}
	if varP == 0 || varC == 0 {
		return 0
	}
	return cross / (math.Sqrt(varP) * math.Sqrt(varC))
}

// NCCSearch slides template t over search image s and returns the offset
// (bestX, bestY) maximizing NCC, along with the best score. Search is
// exhaustive over all placements where the template fits fully inside s; the
// tracker restricts s to a window around the previous detection, so the cost
// stays small. If the template does not fit, ok is false.
func NCCSearch(s, t *Image) (bestX, bestY int, bestScore float64, ok bool) {
	if t.W > s.W || t.H > s.H || t.W <= 0 || t.H <= 0 {
		return 0, 0, 0, false
	}
	bestScore = math.Inf(-1)
	patch := New(t.W, t.H)
	for y := 0; y+t.H <= s.H; y++ {
		for x := 0; x+t.W <= s.W; x++ {
			s.CropInto(x, y, patch)
			score := NCC(patch, t)
			if score > bestScore {
				bestScore, bestX, bestY = score, x, y
			}
		}
	}
	return bestX, bestY, bestScore, true
}

// CropInto copies the w×h region of m at (x, y) into dst (whose size defines
// the region). Out-of-bounds source pixels read as 0.
func (m *Image) CropInto(x, y int, dst *Image) {
	for dy := 0; dy < dst.H; dy++ {
		sy := y + dy
		for dx := 0; dx < dst.W; dx++ {
			dst.Pix[dy*dst.W+dx] = m.At(x+dx, sy)
		}
	}
}

// Crop returns a new w×h image copied from m at (x, y). Out-of-bounds pixels
// read as 0.
func (m *Image) Crop(x, y, w, h int) *Image {
	out := New(w, h)
	m.CropInto(x, y, out)
	return out
}
