package img

import "math"

// NCC computes the normalized cross-correlation between two equally sized
// images, per Eq. 1 of the paper:
//
//	NCC(p, c) = Σ (p-mean(p))(c-mean(c)) / (sqrt(Σ(c-mean(c))²) · sqrt(Σ(p-mean(p))²))
//
// The result lies in [-1, 1]; 1 means identical up to affine intensity
// change. If the sizes differ, the smaller common region (top-left aligned)
// is compared, mirroring how the runtime compares consecutive camera frames
// of equal size and consecutive bounding-box crops of slightly different
// sizes. If either image has zero variance the result is defined as 0 when
// the other varies and 1 when both are flat (two featureless frames are
// maximally similar for scheduling purposes).
//
// The computation is a single pass accumulating the integer running sums
// Σp, Σc, Σpc, Σp² and Σc²; the centered sums are then recovered exactly in
// integer arithmetic (n·Σpc − Σp·Σc and n·Σp² − (Σp)², in which the common
// 1/n factors cancel), so the only floating-point error is one conversion,
// two square roots and a division.
func NCC(p, c *Image) float64 {
	w := p.W
	if c.W < w {
		w = c.W
	}
	h := p.H
	if c.H < h {
		h = c.H
	}
	if w <= 0 || h <= 0 {
		return 0
	}
	n := uint64(w) * uint64(h)
	if n > nccExactMaxPixels {
		return nccTwoPass(p, c, w, h)
	}

	var sp, sc, spc, spp, scc uint64
	for y := 0; y < h; y++ {
		prow := p.Pix[y*p.W : y*p.W+w]
		crow := c.Pix[y*c.W : y*c.W+w : y*c.W+w]
		for x, pv8 := range prow {
			cv8 := crow[x]
			pv := uint64(pv8)
			cv := uint64(cv8)
			sp += pv
			sc += cv
			spc += pv * cv
			spp += sqU8[pv8]
			scc += sqU8[cv8]
		}
	}
	return nccFromSums(n, sp, sc, spc, spp, scc)
}

// sqU8 tabulates v² for 8-bit pixel values: the NCC inner loops are integer-
// multiply bound, and an L1 load replaces one of the two multiplies.
var sqU8 = func() (t [256]uint64) {
	for i := range t {
		t[i] = uint64(i * i)
	}
	return
}()

// nccExactMaxPixels bounds the region size for which the integer-sum NCC is
// exact: every product below (n·Σp², Σp·Σc, …) is at most n²·255², which
// must stay under 2⁶³. Regions beyond ~11.9M pixels fall back to the
// two-pass floating-point formulation.
const nccExactMaxPixels = 11_000_000

// nccFromSums evaluates Eq. 1 from the five integer running sums over an
// n-pixel region. The centered second moments n²·Var and the centered cross
// term are formed exactly in integer arithmetic; zero variance is therefore
// detected exactly, preserving the flat-image conventions documented on NCC.
func nccFromSums(n, sp, sc, spc, spp, scc uint64) float64 {
	varP := n*spp - sp*sp // n²·Var(p), exact and non-negative
	varC := n*scc - sc*sc
	if varP == 0 && varC == 0 {
		return 1
	}
	if varP == 0 || varC == 0 {
		return 0
	}
	cross := int64(n*spc) - int64(sp*sc)
	return float64(cross) / (math.Sqrt(float64(varP)) * math.Sqrt(float64(varC)))
}

// nccTwoPass is the reference two-pass formulation of Eq. 1, kept as the
// fallback for regions too large for exact integer sums and as the oracle
// the equivalence tests check the fast path against.
func nccTwoPass(p, c *Image, w, h int) float64 {
	n := float64(w * h)
	var sumP, sumC float64
	for y := 0; y < h; y++ {
		prow := p.Pix[y*p.W : y*p.W+w]
		crow := c.Pix[y*c.W : y*c.W+w]
		for x := 0; x < w; x++ {
			sumP += float64(prow[x])
			sumC += float64(crow[x])
		}
	}
	meanP := sumP / n
	meanC := sumC / n

	var cross, varP, varC float64
	for y := 0; y < h; y++ {
		prow := p.Pix[y*p.W : y*p.W+w]
		crow := c.Pix[y*c.W : y*c.W+w]
		for x := 0; x < w; x++ {
			dp := float64(prow[x]) - meanP
			dc := float64(crow[x]) - meanC
			cross += dp * dc
			varP += dp * dp
			varC += dc * dc
		}
	}
	if varP == 0 && varC == 0 {
		return 1
	}
	if varP == 0 || varC == 0 {
		return 0
	}
	return cross / (math.Sqrt(varP) * math.Sqrt(varC))
}

// Moments returns the integer pixel moments (Σp, Σp²) over the whole image.
// Callers that compare a stream of equally sized images (the scheduler's
// context gate) carry these across calls so NCCMoments needs only one fused
// pass per comparison.
func (m *Image) Moments() (sum, sumSq uint64) {
	for _, p := range m.Pix {
		sum += uint64(p)
		sumSq += sqU8[p]
	}
	return sum, sumSq
}

// NCCMoments computes NCC(p, c) for two images of identical size, reusing
// p's precomputed moments (from Moments or a previous NCCMoments call) so
// only c's moments and the cross term are accumulated — the incremental form
// the scheduler uses on consecutive frames. It returns c's moments for reuse
// as the p-moments of the next comparison. If the sizes differ it falls back
// to the general NCC over the common region and c's moments are computed
// over the full image.
func NCCMoments(p, c *Image, pSum, pSumSq uint64) (score float64, cSum, cSumSq uint64) {
	if p.W != c.W || p.H != c.H || uint64(len(p.Pix)) > nccExactMaxPixels {
		cSum, cSumSq = c.Moments()
		return NCC(p, c), cSum, cSumSq
	}
	n := len(p.Pix)
	if n == 0 {
		return 0, 0, 0
	}
	var sc, scc, spc uint64
	cpix := c.Pix[:n]
	if n <= nccPackedMaxPixels {
		// The pass is integer-multiply bound, and for regions this small
		// Σp·c and Σc² each stay below 2³², so a single multiply
		// c·(p + c·2³²) accumulates both in disjoint halves of one word.
		// Two independent accumulator pairs break the add dependency chains
		// (uint64 addition is associative, so the split is exact).
		ppix := p.Pix[:n]
		var acc0, acc1, sc0, sc1 uint64
		i := 0
		for ; i+1 < n; i += 2 {
			cv0 := uint64(cpix[i])
			cv1 := uint64(cpix[i+1])
			sc0 += cv0
			sc1 += cv1
			acc0 += cv0 * (uint64(ppix[i]) | cv0<<32)
			acc1 += cv1 * (uint64(ppix[i+1]) | cv1<<32)
		}
		for ; i < n; i++ {
			cv := uint64(cpix[i])
			sc0 += cv
			acc0 += cv * (uint64(ppix[i]) | cv<<32)
		}
		acc := acc0 + acc1
		sc = sc0 + sc1
		spc = acc & 0xffffffff
		scc = acc >> 32
	} else {
		for i, pv8 := range p.Pix {
			cv8 := cpix[i]
			sc += uint64(cv8)
			scc += sqU8[cv8]
			spc += uint64(pv8) * uint64(cv8)
		}
	}
	return nccFromSums(uint64(n), pSum, sc, spc, pSumSq, scc), sc, scc
}

// nccPackedMaxPixels bounds the packed-accumulator fast path: with n·255²
// < 2³² the low half (Σp·c) can never carry into the high half (Σc²).
const nccPackedMaxPixels = 66000

// NCCSearch slides template t over search image s and returns the offset
// (bestX, bestY) maximizing NCC, along with the best score. Search is
// exhaustive over all placements where the template fits fully inside s; the
// tracker restricts s to a window around the previous detection, so the cost
// stays small. If the template does not fit, ok is false.
//
// Per-window mean and variance come from summed-area tables of s and s², so
// only the cross term Σ(window·template) is accumulated per placement; the
// template's moments and standard deviation are hoisted out of the loop.
// Scores are bit-identical to NCC(s.Crop(x, y, t.W, t.H), t), and ties
// resolve to the first (row-major) placement exactly as the naive search.
func NCCSearch(s, t *Image) (bestX, bestY int, bestScore float64, ok bool) {
	if t.W > s.W || t.H > s.H || t.W <= 0 || t.H <= 0 {
		return 0, 0, 0, false
	}
	if uint64(s.W)*uint64(s.H) > nccExactMaxPixels {
		return nccSearchNaive(s, t)
	}
	n := uint64(t.W) * uint64(t.H)
	st, stt := t.Moments()
	varT := n*stt - st*st // n²·Var(t), exact
	stdT := math.Sqrt(float64(varT))

	// Summed-area tables of s and s², flat with an extra zero row/column so
	// window sums need no boundary checks.
	iw := s.W + 1
	sat := make([]uint64, iw*(s.H+1))
	satSq := make([]uint64, iw*(s.H+1))
	for y := 1; y <= s.H; y++ {
		row := s.Pix[(y-1)*s.W : y*s.W]
		prev := sat[(y-1)*iw : y*iw]
		cur := sat[y*iw : (y+1)*iw]
		prevSq := satSq[(y-1)*iw : y*iw]
		curSq := satSq[y*iw : (y+1)*iw]
		var rs, rss uint64
		for x, v8 := range row {
			rs += uint64(v8)
			rss += sqU8[v8]
			cur[x+1] = prev[x+1] + rs
			curSq[x+1] = prevSq[x+1] + rss
		}
	}

	bestScore = math.Inf(-1)
	for y := 0; y+t.H <= s.H; y++ {
		top := y * iw
		bot := (y + t.H) * iw
		for x := 0; x+t.W <= s.W; x++ {
			sw := sat[bot+x+t.W] - sat[top+x+t.W] - sat[bot+x] + sat[top+x]
			sww := satSq[bot+x+t.W] - satSq[top+x+t.W] - satSq[bot+x] + satSq[top+x]
			varW := n*sww - sw*sw

			var score float64
			switch {
			case varW == 0 && varT == 0:
				score = 1
			case varW == 0 || varT == 0:
				score = 0
			default:
				var spc uint64
				for dy := 0; dy < t.H; dy++ {
					srow := s.Pix[(y+dy)*s.W+x : (y+dy)*s.W+x+t.W]
					trow := t.Pix[dy*t.W : dy*t.W+t.W : dy*t.W+t.W]
					for i, sv := range srow {
						spc += uint64(sv) * uint64(trow[i])
					}
				}
				cross := int64(n*spc) - int64(sw*st)
				score = float64(cross) / (math.Sqrt(float64(varW)) * stdT)
			}
			if score > bestScore {
				bestScore, bestX, bestY = score, x, y
			}
		}
	}
	return bestX, bestY, bestScore, true
}

// nccSearchNaive is the exhaustive crop-and-compare search, kept as the
// fallback for oversized images and as the oracle for equivalence tests.
func nccSearchNaive(s, t *Image) (bestX, bestY int, bestScore float64, ok bool) {
	if t.W > s.W || t.H > s.H || t.W <= 0 || t.H <= 0 {
		return 0, 0, 0, false
	}
	bestScore = math.Inf(-1)
	patch := New(t.W, t.H)
	for y := 0; y+t.H <= s.H; y++ {
		for x := 0; x+t.W <= s.W; x++ {
			s.CropInto(x, y, patch)
			score := NCC(patch, t)
			if score > bestScore {
				bestScore, bestX, bestY = score, x, y
			}
		}
	}
	return bestX, bestY, bestScore, true
}

// CropInto copies the w×h region of m at (x, y) into dst (whose size defines
// the region). Out-of-bounds source pixels read as 0. In-bounds spans are
// copied row-wise.
func (m *Image) CropInto(x, y int, dst *Image) {
	for dy := 0; dy < dst.H; dy++ {
		sy := y + dy
		drow := dst.Pix[dy*dst.W : (dy+1)*dst.W]
		if sy < 0 || sy >= m.H {
			clearRow(drow)
			continue
		}
		// In-bounds source columns [x0, x1) map to dst columns starting at d0.
		x0, d0 := x, 0
		if x0 < 0 {
			d0 = -x0
			x0 = 0
		}
		x1 := x + dst.W
		if x1 > m.W {
			x1 = m.W
		}
		if x1 <= x0 || d0 >= dst.W {
			clearRow(drow)
			continue
		}
		clearRow(drow[:d0])
		copy(drow[d0:d0+x1-x0], m.Pix[sy*m.W+x0:sy*m.W+x1])
		clearRow(drow[d0+x1-x0:])
	}
}

func clearRow(row []uint8) {
	for i := range row {
		row[i] = 0
	}
}

// Crop returns a new w×h image copied from m at (x, y). Out-of-bounds pixels
// read as 0.
func (m *Image) Crop(x, y, w, h int) *Image {
	out := New(w, h)
	m.CropInto(x, y, out)
	return out
}
