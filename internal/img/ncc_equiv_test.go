package img

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// nccReference is the original two-pass float formulation of Eq. 1 over the
// top-left-aligned common region — the oracle the fast paths are checked
// against.
func nccReference(p, c *Image) float64 {
	w := p.W
	if c.W < w {
		w = c.W
	}
	h := p.H
	if c.H < h {
		h = c.H
	}
	if w <= 0 || h <= 0 {
		return 0
	}
	return nccTwoPass(p, c, w, h)
}

// cropReference is the original per-pixel At-based crop.
func cropReference(m *Image, x, y int, dst *Image) {
	for dy := 0; dy < dst.H; dy++ {
		sy := y + dy
		for dx := 0; dx < dst.W; dx++ {
			dst.Pix[dy*dst.W+dx] = m.At(x+dx, sy)
		}
	}
}

func TestNCCMatchesReference(t *testing.T) {
	r := rng.New(101)
	for i := 0; i < 500; i++ {
		w := 1 + r.Intn(40)
		h := 1 + r.Intn(40)
		a := randomImage(r, w, h)
		b := randomImage(r, w, h)
		fast := NCC(a, b)
		ref := nccReference(a, b)
		if math.Abs(fast-ref) > 1e-9 {
			t.Fatalf("iter %d (%dx%d): fast %v vs reference %v", i, w, h, fast, ref)
		}
	}
}

func TestNCCMatchesReferenceMismatchedSizes(t *testing.T) {
	r := rng.New(102)
	for i := 0; i < 300; i++ {
		a := randomImage(r, 1+r.Intn(30), 1+r.Intn(30))
		b := randomImage(r, 1+r.Intn(30), 1+r.Intn(30))
		fast := NCC(a, b)
		ref := nccReference(a, b)
		if math.Abs(fast-ref) > 1e-9 {
			t.Fatalf("iter %d (%dx%d vs %dx%d): fast %v vs reference %v",
				i, a.W, a.H, b.W, b.H, fast, ref)
		}
	}
}

func TestNCCZeroVarianceEdgeCases(t *testing.T) {
	r := rng.New(103)
	flatA := New(9, 7)
	flatA.Fill(13)
	flatB := New(9, 7)
	flatB.Fill(240)
	varied := randomImage(r, 9, 7)
	if got := NCC(flatA, flatB); got != 1 {
		t.Fatalf("flat vs flat = %v, want exactly 1", got)
	}
	if got := NCC(flatA, varied); got != 0 {
		t.Fatalf("flat vs varied = %v, want exactly 0", got)
	}
	if got := NCC(varied, flatB); got != 0 {
		t.Fatalf("varied vs flat = %v, want exactly 0", got)
	}
	// Near-flat: one pixel differs by 1 — variance must be detected as
	// nonzero by the exact integer arithmetic.
	nearFlat := New(9, 7)
	nearFlat.Fill(13)
	nearFlat.Pix[5] = 14
	if got := NCC(nearFlat, nearFlat); math.Abs(got-1) > 1e-12 {
		t.Fatalf("near-flat self NCC = %v, want 1", got)
	}
}

func TestNCCMomentsMatchesNCC(t *testing.T) {
	r := rng.New(104)
	prev := randomImage(r, 24, 24)
	pSum, pSumSq := prev.Moments()
	for i := 0; i < 100; i++ {
		cur := randomImage(r, 24, 24)
		score, cSum, cSumSq := NCCMoments(prev, cur, pSum, pSumSq)
		if want := NCC(prev, cur); score != want {
			t.Fatalf("iter %d: NCCMoments %v != NCC %v", i, score, want)
		}
		wantSum, wantSumSq := cur.Moments()
		if cSum != wantSum || cSumSq != wantSumSq {
			t.Fatalf("iter %d: returned moments (%d,%d), want (%d,%d)",
				i, cSum, cSumSq, wantSum, wantSumSq)
		}
		prev, pSum, pSumSq = cur, cSum, cSumSq
	}
}

func TestNCCMomentsMismatchedSizesFallsBack(t *testing.T) {
	r := rng.New(105)
	a := randomImage(r, 20, 20)
	b := randomImage(r, 16, 24)
	aSum, aSumSq := a.Moments()
	score, bSum, bSumSq := NCCMoments(a, b, aSum, aSumSq)
	if want := NCC(a, b); score != want {
		t.Fatalf("fallback score %v != NCC %v", score, want)
	}
	wantSum, wantSumSq := b.Moments()
	if bSum != wantSum || bSumSq != wantSumSq {
		t.Fatalf("fallback moments (%d,%d), want full-image (%d,%d)",
			bSum, bSumSq, wantSum, wantSumSq)
	}
}

func TestNCCSearchMatchesNaive(t *testing.T) {
	r := rng.New(106)
	for i := 0; i < 120; i++ {
		sw := 4 + r.Intn(28)
		sh := 4 + r.Intn(28)
		s := randomImage(r, sw, sh)
		tw := 1 + r.Intn(sw)
		th := 1 + r.Intn(sh)
		tpl := s.Crop(r.Intn(sw-tw+1), r.Intn(sh-th+1), tw, th)
		fx, fy, fs, fok := NCCSearch(s, tpl)
		nx, ny, ns, nok := nccSearchNaive(s, tpl)
		if fok != nok {
			t.Fatalf("iter %d: ok %v vs %v", i, fok, nok)
		}
		if fx != nx || fy != ny {
			t.Fatalf("iter %d (%dx%d in %dx%d): fast (%d,%d) vs naive (%d,%d), scores %v vs %v",
				i, tw, th, sw, sh, fx, fy, nx, ny, fs, ns)
		}
		if fs != ns {
			t.Fatalf("iter %d: fast score %v != naive score %v", i, fs, ns)
		}
	}
}

func TestNCCSearchFlatRegions(t *testing.T) {
	// Flat search image and flat template: every window ties at score 1, so
	// the first placement must win, matching the naive search.
	s := New(10, 8)
	s.Fill(77)
	tpl := New(3, 3)
	tpl.Fill(12)
	fx, fy, fs, ok := NCCSearch(s, tpl)
	nx, ny, ns, nok := nccSearchNaive(s, tpl)
	if !ok || !nok {
		t.Fatal("search reported !ok")
	}
	if fx != nx || fy != ny || fs != ns {
		t.Fatalf("fast (%d,%d,%v) vs naive (%d,%d,%v)", fx, fy, fs, nx, ny, ns)
	}
	// Varied template over a flat image: all scores 0, first placement wins.
	r := rng.New(107)
	varied := randomImage(r, 3, 3)
	fx, fy, fs, _ = NCCSearch(s, varied)
	nx, ny, ns, _ = nccSearchNaive(s, varied)
	if fx != nx || fy != ny || fs != ns {
		t.Fatalf("varied-template: fast (%d,%d,%v) vs naive (%d,%d,%v)", fx, fy, fs, nx, ny, ns)
	}
}

func TestCropIntoMatchesReference(t *testing.T) {
	r := rng.New(108)
	for i := 0; i < 300; i++ {
		m := randomImage(r, 1+r.Intn(20), 1+r.Intn(20))
		w := 1 + r.Intn(24)
		h := 1 + r.Intn(24)
		x := r.Intn(50) - 25
		y := r.Intn(50) - 25
		fast := New(w, h)
		fast.Fill(99) // stale contents must be fully overwritten
		ref := New(w, h)
		m.CropInto(x, y, fast)
		cropReference(m, x, y, ref)
		if !fast.Equal(ref) {
			t.Fatalf("iter %d: CropInto(%d,%d,%dx%d) of %dx%d differs from reference",
				i, x, y, w, h, m.W, m.H)
		}
	}
}

func FuzzNCCEquivalence(f *testing.F) {
	f.Add(uint64(1), 8, 8, 8, 8)
	f.Add(uint64(2), 1, 1, 5, 5)
	f.Add(uint64(3), 17, 3, 3, 17)
	f.Fuzz(func(t *testing.T, seed uint64, aw, ah, bw, bh int) {
		clampDim := func(v int) int {
			if v < 0 {
				v = -v
			}
			return v%48 + 1
		}
		r := rng.New(seed)
		a := randomImage(r, clampDim(aw), clampDim(ah))
		b := randomImage(r, clampDim(bw), clampDim(bh))
		fast := NCC(a, b)
		ref := nccReference(a, b)
		if math.Abs(fast-ref) > 1e-9 {
			t.Fatalf("NCC %v vs reference %v (a %dx%d, b %dx%d)", fast, ref, a.W, a.H, b.W, b.H)
		}
		if b.W <= a.W && b.H <= a.H {
			fx, fy, fs, fok := NCCSearch(a, b)
			nx, ny, ns, nok := nccSearchNaive(a, b)
			if fok != nok || fx != nx || fy != ny || fs != ns {
				t.Fatalf("NCCSearch (%d,%d,%v,%v) vs naive (%d,%d,%v,%v)",
					fx, fy, fs, fok, nx, ny, ns, nok)
			}
		}
	})
}
