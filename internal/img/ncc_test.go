package img

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randomImage(r *rng.Stream, w, h int) *Image {
	m := New(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	return m
}

func TestNCCIdentical(t *testing.T) {
	r := rng.New(30)
	m := randomImage(r, 16, 16)
	if got := NCC(m, m); math.Abs(got-1) > 1e-9 {
		t.Fatalf("NCC(m, m) = %v, want 1", got)
	}
}

func TestNCCAffineInvariance(t *testing.T) {
	r := rng.New(31)
	m := randomImage(r, 16, 16)
	// Scale intensities by 0.5 and add offset; NCC must stay ~1 (quantization
	// introduces small error).
	o := New(16, 16)
	for i, p := range m.Pix {
		o.Pix[i] = clampU8(float64(p)*0.5 + 20)
	}
	if got := NCC(m, o); got < 0.99 {
		t.Fatalf("NCC under affine transform = %v, want ~1", got)
	}
}

func TestNCCInverted(t *testing.T) {
	r := rng.New(32)
	m := randomImage(r, 16, 16)
	inv := New(16, 16)
	for i, p := range m.Pix {
		inv.Pix[i] = 255 - p
	}
	if got := NCC(m, inv); math.Abs(got+1) > 1e-9 {
		t.Fatalf("NCC(m, inverse) = %v, want -1", got)
	}
}

func TestNCCUncorrelated(t *testing.T) {
	r := rng.New(33)
	a := randomImage(r, 64, 64)
	b := randomImage(r, 64, 64)
	if got := NCC(a, b); math.Abs(got) > 0.1 {
		t.Fatalf("NCC of independent noise = %v, want ~0", got)
	}
}

func TestNCCFlatImages(t *testing.T) {
	a := New(8, 8)
	a.Fill(50)
	b := New(8, 8)
	b.Fill(200)
	if got := NCC(a, b); got != 1 {
		t.Fatalf("NCC of two flat images = %v, want 1 (defined)", got)
	}
	c := New(8, 8)
	for i := range c.Pix {
		c.Pix[i] = uint8(i)
	}
	if got := NCC(a, c); got != 0 {
		t.Fatalf("NCC flat-vs-varying = %v, want 0", got)
	}
}

func TestNCCSizeMismatchUsesCommonRegion(t *testing.T) {
	r := rng.New(34)
	big := randomImage(r, 20, 20)
	small := big.Crop(0, 0, 12, 12)
	if got := NCC(big, small); math.Abs(got-1) > 1e-9 {
		t.Fatalf("NCC over common region = %v, want 1", got)
	}
}

func TestNCCEmpty(t *testing.T) {
	if got := NCC(New(0, 0), New(4, 4)); got != 0 {
		t.Fatalf("NCC with empty image = %v, want 0", got)
	}
}

func TestNCCRange(t *testing.T) {
	r := rng.New(35)
	for i := 0; i < 200; i++ {
		a := randomImage(r, 8, 8)
		b := randomImage(r, 8, 8)
		v := NCC(a, b)
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("NCC out of [-1,1]: %v", v)
		}
	}
}

func TestNCCSymmetric(t *testing.T) {
	r := rng.New(36)
	a := randomImage(r, 12, 12)
	b := randomImage(r, 12, 12)
	if math.Abs(NCC(a, b)-NCC(b, a)) > 1e-12 {
		t.Fatal("NCC not symmetric")
	}
}

func TestNCCSearchFindsEmbeddedTemplate(t *testing.T) {
	r := rng.New(37)
	s := randomImage(r, 40, 40)
	tpl := s.Crop(17, 9, 8, 8)
	x, y, score, ok := NCCSearch(s, tpl)
	if !ok {
		t.Fatal("NCCSearch reported !ok")
	}
	if x != 17 || y != 9 {
		t.Fatalf("NCCSearch found (%d,%d), want (17,9), score %v", x, y, score)
	}
	if score < 0.999 {
		t.Fatalf("NCCSearch score %v, want ~1", score)
	}
}

func TestNCCSearchTemplateTooLarge(t *testing.T) {
	if _, _, _, ok := NCCSearch(New(4, 4), New(8, 8)); ok {
		t.Fatal("oversized template should report !ok")
	}
	if _, _, _, ok := NCCSearch(New(4, 4), New(0, 0)); ok {
		t.Fatal("empty template should report !ok")
	}
}

func BenchmarkNCC96(b *testing.B) {
	r := rng.New(1)
	p := randomImage(r, 96, 96)
	c := randomImage(r, 96, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NCC(p, c)
	}
}

func BenchmarkNCCSearch(b *testing.B) {
	r := rng.New(2)
	s := randomImage(r, 48, 48)
	tpl := s.Crop(10, 10, 12, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = NCCSearch(s, tpl)
	}
}
