package img

import (
	"testing"

	"repro/internal/rng"
)

func BenchmarkNCCMoments72(b *testing.B) {
	r := rng.New(3)
	p := randomImage(r, 72, 72)
	c := randomImage(r, 72, 72)
	pSum, pSumSq := p.Moments()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = NCCMoments(p, c, pSum, pSumSq)
	}
}

func BenchmarkResizeKernel(b *testing.B) {
	r := rng.New(4)
	src := randomImage(r, 14, 14)
	dst := New(24, 24)
	k := NewResizeKernel(14, 14, 24, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Apply(src, dst)
	}
}
