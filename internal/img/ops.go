package img

// Resize returns m resampled to w×h using bilinear interpolation. It is used
// to normalize bounding-box crops before NCC comparison and to scale the
// drone sprite with distance.
func (m *Image) Resize(w, h int) *Image {
	out := New(w, h)
	if m.W == 0 || m.H == 0 || w == 0 || h == 0 {
		return out
	}
	xRatio := float64(m.W) / float64(w)
	yRatio := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y)+0.5)*yRatio - 0.5
		y0 := int(srcY)
		if srcY < 0 {
			y0 = 0
			srcY = 0
		}
		y1 := y0 + 1
		if y1 >= m.H {
			y1 = m.H - 1
		}
		fy := srcY - float64(y0)
		for x := 0; x < w; x++ {
			srcX := (float64(x)+0.5)*xRatio - 0.5
			x0 := int(srcX)
			if srcX < 0 {
				x0 = 0
				srcX = 0
			}
			x1 := x0 + 1
			if x1 >= m.W {
				x1 = m.W - 1
			}
			fx := srcX - float64(x0)
			top := float64(m.Pix[y0*m.W+x0])*(1-fx) + float64(m.Pix[y0*m.W+x1])*fx
			bot := float64(m.Pix[y1*m.W+x0])*(1-fx) + float64(m.Pix[y1*m.W+x1])*fx
			out.Pix[y*w+x] = clampU8(top*(1-fy) + bot*fy)
		}
	}
	return out
}

// BoxBlur returns m blurred with a (2r+1)×(2r+1) box filter, approximating
// the motion/defocus blur the scene generator applies to fast frames. Edge
// pixels are blurred over the in-bounds neighborhood. r <= 0 returns a clone.
func (m *Image) BoxBlur(r int) *Image {
	if r <= 0 {
		return m.Clone()
	}
	// Two-pass separable blur: horizontal then vertical, O(W*H) per pass
	// using running sums.
	tmp := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*m.W : (y+1)*m.W]
		var sum float64
		// Initial window [0, r].
		count := 0
		for x := 0; x <= r && x < m.W; x++ {
			sum += float64(row[x])
			count++
		}
		for x := 0; x < m.W; x++ {
			tmp[y*m.W+x] = sum / float64(count)
			if x+r+1 < m.W {
				sum += float64(row[x+r+1])
				count++
			}
			if x-r >= 0 {
				sum -= float64(row[x-r])
				count--
			}
		}
	}
	out := New(m.W, m.H)
	for x := 0; x < m.W; x++ {
		var sum float64
		count := 0
		for y := 0; y <= r && y < m.H; y++ {
			sum += tmp[y*m.W+x]
			count++
		}
		for y := 0; y < m.H; y++ {
			out.Pix[y*m.W+x] = clampU8(sum / float64(count))
			if y+r+1 < m.H {
				sum += tmp[(y+r+1)*m.W+x]
				count++
			}
			if y-r >= 0 {
				sum -= tmp[(y-r)*m.W+x]
				count--
			}
		}
	}
	return out
}

// Composite alpha-blends src onto m with its top-left corner at (x, y).
// alpha is a per-call scalar in [0, 1]; src pixels equal to key are treated
// as fully transparent (the sprite's background key). Out-of-bounds regions
// are clipped.
func (m *Image) Composite(src *Image, x, y int, alpha float64, key uint8) {
	if alpha <= 0 {
		return
	}
	if alpha > 1 {
		alpha = 1
	}
	for sy := 0; sy < src.H; sy++ {
		dy := y + sy
		if dy < 0 || dy >= m.H {
			continue
		}
		for sx := 0; sx < src.W; sx++ {
			dx := x + sx
			if dx < 0 || dx >= m.W {
				continue
			}
			sv := src.Pix[sy*src.W+sx]
			if sv == key {
				continue
			}
			dv := float64(m.Pix[dy*m.W+dx])
			m.Pix[dy*m.W+dx] = clampU8(dv*(1-alpha) + float64(sv)*alpha)
		}
	}
}

// AddScaled adds v (which may be negative) to every pixel, saturating.
// It implements global illumination shifts between scene segments.
func (m *Image) AddScaled(v float64) {
	for i, p := range m.Pix {
		m.Pix[i] = clampU8(float64(p) + v)
	}
}

// Integral returns the summed-area table of m: out[y][x] is the sum of all
// pixels with coordinates < (x, y). The table has (H+1)×(W+1) entries, so
// rectangle sums need no boundary checks. Used by the scene difficulty
// estimator for fast local-contrast queries.
func (m *Image) Integral() [][]uint64 {
	out := make([][]uint64, m.H+1)
	out[0] = make([]uint64, m.W+1)
	for y := 1; y <= m.H; y++ {
		out[y] = make([]uint64, m.W+1)
		var rowSum uint64
		for x := 1; x <= m.W; x++ {
			rowSum += uint64(m.Pix[(y-1)*m.W+x-1])
			out[y][x] = out[y-1][x] + rowSum
		}
	}
	return out
}

// RectSum returns the pixel sum over the half-open rectangle
// [x0,x1)×[y0,y1) using an integral table produced by Integral.
// Coordinates are clamped to the table.
func RectSum(integral [][]uint64, x0, y0, x1, y1 int) uint64 {
	h := len(integral) - 1
	if h < 0 {
		return 0
	}
	w := len(integral[0]) - 1
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0, x1 = clamp(x0, w), clamp(x1, w)
	y0, y1 = clamp(y0, h), clamp(y1, h)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return integral[y1][x1] - integral[y0][x1] - integral[y1][x0] + integral[y0][x0]
}

// Downsample2x returns m reduced by a factor of two via 2×2 averaging; odd
// trailing rows/columns are dropped. Cheaper than Resize for pyramid
// construction in the tracker.
func (m *Image) Downsample2x() *Image {
	w, h := m.W/2, m.H/2
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(m.Pix[(2*y)*m.W+2*x]) + int(m.Pix[(2*y)*m.W+2*x+1]) +
				int(m.Pix[(2*y+1)*m.W+2*x]) + int(m.Pix[(2*y+1)*m.W+2*x+1])
			out.Pix[y*w+x] = uint8((s + 2) / 4)
		}
	}
	return out
}
