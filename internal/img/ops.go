package img

// Resize returns m resampled to w×h using bilinear interpolation. It is used
// to normalize bounding-box crops before NCC comparison and to scale the
// drone sprite with distance. Callers resizing a stream of equally sized
// images should hold a ResizeKernel instead; Resize builds one per call.
func (m *Image) Resize(w, h int) *Image {
	out := New(w, h)
	NewResizeKernel(m.W, m.H, w, h).Apply(m, out)
	return out
}

// ResizeKernel caches the bilinear sample positions and weights for a fixed
// (source size → destination size) mapping, so a caller resizing a stream of
// equally sized images (the scheduler normalizes every bounding-box crop to
// BoxCropSize²) pays for coefficient setup only when the geometry changes.
// Apply produces output bit-identical to Resize.
// A kernel owns scratch rows, so concurrent Apply calls need separate
// kernels (each scheduler instance builds its own).
type ResizeKernel struct {
	srcW, srcH, dstW, dstH int
	x0s, x1s               []int
	fxs, gxs               []float64
	frow0, frow1           []float64
}

// Matches reports whether the kernel was built for this geometry.
func (k *ResizeKernel) Matches(srcW, srcH, dstW, dstH int) bool {
	return k != nil && k.srcW == srcW && k.srcH == srcH && k.dstW == dstW && k.dstH == dstH
}

// NewResizeKernel precomputes the horizontal coefficients for the mapping.
func NewResizeKernel(srcW, srcH, dstW, dstH int) *ResizeKernel {
	k := &ResizeKernel{
		srcW: srcW, srcH: srcH, dstW: dstW, dstH: dstH,
		x0s: make([]int, dstW), x1s: make([]int, dstW),
		fxs: make([]float64, dstW), gxs: make([]float64, dstW),
		frow0: make([]float64, srcW), frow1: make([]float64, srcW),
	}
	if srcW == 0 || srcH == 0 || dstW == 0 || dstH == 0 {
		return k
	}
	xRatio := float64(srcW) / float64(dstW)
	for x := 0; x < dstW; x++ {
		srcX := (float64(x)+0.5)*xRatio - 0.5
		x0 := int(srcX)
		if srcX < 0 {
			x0 = 0
			srcX = 0
		}
		x1 := x0 + 1
		if x1 >= srcW {
			x1 = srcW - 1
		}
		k.x0s[x], k.x1s[x] = x0, x1
		k.fxs[x] = srcX - float64(x0)
		k.gxs[x] = 1 - k.fxs[x]
	}
	return k
}

// Apply resamples src into dst; both must match the kernel's geometry.
func (k *ResizeKernel) Apply(src, dst *Image) {
	if src.W != k.srcW || src.H != k.srcH || dst.W != k.dstW || dst.H != k.dstH {
		panic("img: ResizeKernel.Apply geometry mismatch")
	}
	if k.srcW == 0 || k.srcH == 0 || k.dstW == 0 || k.dstH == 0 {
		// Resize of a degenerate source yields a zeroed image; the reusable
		// destination may hold a previous frame, so clear it explicitly.
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return
	}
	// Source rows are converted to float once per output row (a source row
	// is sampled by every destination column).
	frow0, frow1 := k.frow0, k.frow1
	yRatio := float64(k.srcH) / float64(k.dstH)
	for y := 0; y < k.dstH; y++ {
		srcY := (float64(y)+0.5)*yRatio - 0.5
		y0 := int(srcY)
		if srcY < 0 {
			y0 = 0
			srcY = 0
		}
		y1 := y0 + 1
		if y1 >= k.srcH {
			y1 = k.srcH - 1
		}
		fy := srcY - float64(y0)
		gy := 1 - fy
		trow := src.Pix[y0*k.srcW : y0*k.srcW+k.srcW]
		brow := src.Pix[y1*k.srcW : y1*k.srcW+k.srcW]
		for j, v := range trow {
			frow0[j] = float64(v)
		}
		for j, v := range brow {
			frow1[j] = float64(v)
		}
		orow := dst.Pix[y*k.dstW : y*k.dstW+k.dstW]
		for x := range orow {
			top := frow0[k.x0s[x]]*k.gxs[x] + frow0[k.x1s[x]]*k.fxs[x]
			bot := frow1[k.x0s[x]]*k.gxs[x] + frow1[k.x1s[x]]*k.fxs[x]
			// top and bot are convex combinations of 8-bit samples, so the
			// result lies in [0, 255] and clamping reduces to rounding
			// (identical to clampU8 on that range).
			orow[x] = uint8(top*gy + bot*fy + 0.5)
		}
	}
}

// BoxBlur returns m blurred with a (2r+1)×(2r+1) box filter, approximating
// the motion/defocus blur the scene generator applies to fast frames. Edge
// pixels are blurred over the in-bounds neighborhood. r <= 0 returns a clone.
func (m *Image) BoxBlur(r int) *Image {
	if r <= 0 {
		return m.Clone()
	}
	// Two-pass separable blur: horizontal then vertical, O(W*H) per pass
	// using running sums.
	tmp := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*m.W : (y+1)*m.W]
		var sum float64
		// Initial window [0, r].
		count := 0
		for x := 0; x <= r && x < m.W; x++ {
			sum += float64(row[x])
			count++
		}
		for x := 0; x < m.W; x++ {
			tmp[y*m.W+x] = sum / float64(count)
			if x+r+1 < m.W {
				sum += float64(row[x+r+1])
				count++
			}
			if x-r >= 0 {
				sum -= float64(row[x-r])
				count--
			}
		}
	}
	out := New(m.W, m.H)
	for x := 0; x < m.W; x++ {
		var sum float64
		count := 0
		for y := 0; y <= r && y < m.H; y++ {
			sum += tmp[y*m.W+x]
			count++
		}
		for y := 0; y < m.H; y++ {
			out.Pix[y*m.W+x] = clampU8(sum / float64(count))
			if y+r+1 < m.H {
				sum += tmp[(y+r+1)*m.W+x]
				count++
			}
			if y-r >= 0 {
				sum -= tmp[(y-r)*m.W+x]
				count--
			}
		}
	}
	return out
}

// Composite alpha-blends src onto m with its top-left corner at (x, y).
// alpha is a per-call scalar in [0, 1]; src pixels equal to key are treated
// as fully transparent (the sprite's background key). Out-of-bounds regions
// are clipped.
func (m *Image) Composite(src *Image, x, y int, alpha float64, key uint8) {
	if alpha <= 0 {
		return
	}
	if alpha > 1 {
		alpha = 1
	}
	for sy := 0; sy < src.H; sy++ {
		dy := y + sy
		if dy < 0 || dy >= m.H {
			continue
		}
		for sx := 0; sx < src.W; sx++ {
			dx := x + sx
			if dx < 0 || dx >= m.W {
				continue
			}
			sv := src.Pix[sy*src.W+sx]
			if sv == key {
				continue
			}
			dv := float64(m.Pix[dy*m.W+dx])
			m.Pix[dy*m.W+dx] = clampU8(dv*(1-alpha) + float64(sv)*alpha)
		}
	}
}

// AddScaled adds v (which may be negative) to every pixel, saturating.
// It implements global illumination shifts between scene segments.
func (m *Image) AddScaled(v float64) {
	for i, p := range m.Pix {
		m.Pix[i] = clampU8(float64(p) + v)
	}
}

// Integral returns the summed-area table of m: out[y][x] is the sum of all
// pixels with coordinates < (x, y). The table has (H+1)×(W+1) entries, so
// rectangle sums need no boundary checks. Used by the scene difficulty
// estimator for fast local-contrast queries.
func (m *Image) Integral() [][]uint64 {
	out := make([][]uint64, m.H+1)
	out[0] = make([]uint64, m.W+1)
	for y := 1; y <= m.H; y++ {
		out[y] = make([]uint64, m.W+1)
		var rowSum uint64
		for x := 1; x <= m.W; x++ {
			rowSum += uint64(m.Pix[(y-1)*m.W+x-1])
			out[y][x] = out[y-1][x] + rowSum
		}
	}
	return out
}

// RectSum returns the pixel sum over the half-open rectangle
// [x0,x1)×[y0,y1) using an integral table produced by Integral.
// Coordinates are clamped to the table.
func RectSum(integral [][]uint64, x0, y0, x1, y1 int) uint64 {
	h := len(integral) - 1
	if h < 0 {
		return 0
	}
	w := len(integral[0]) - 1
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0, x1 = clamp(x0, w), clamp(x1, w)
	y0, y1 = clamp(y0, h), clamp(y1, h)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return integral[y1][x1] - integral[y0][x1] - integral[y1][x0] + integral[y0][x0]
}

// Downsample2x returns m reduced by a factor of two via 2×2 averaging; odd
// trailing rows/columns are dropped. Cheaper than Resize for pyramid
// construction in the tracker.
func (m *Image) Downsample2x() *Image {
	w, h := m.W/2, m.H/2
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(m.Pix[(2*y)*m.W+2*x]) + int(m.Pix[(2*y)*m.W+2*x+1]) +
				int(m.Pix[(2*y+1)*m.W+2*x]) + int(m.Pix[(2*y+1)*m.W+2*x+1])
			out.Pix[y*w+x] = uint8((s + 2) / 4)
		}
	}
	return out
}
