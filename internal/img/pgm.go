package img

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM encodes the image as binary PGM (P5), the simplest portable
// grayscale format — viewable with any image tool. Used by cmd/render to
// dump synthesized frames for visual inspection of the scene generator.
func (m *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPGM decodes a binary PGM (P5) image as written by WritePGM. It
// supports the subset this package emits: maxval 255, single whitespace
// separators, optional comment lines after the magic.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("img: read PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("img: unsupported PGM magic %q", magic)
	}
	readToken := func() (int, error) {
		// Skip whitespace and comments.
		for {
			b, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			switch {
			case b == '#':
				if _, err := br.ReadString('\n'); err != nil {
					return 0, err
				}
			case b == ' ' || b == '\t' || b == '\n' || b == '\r':
				continue
			default:
				if err := br.UnreadByte(); err != nil {
					return 0, err
				}
				var v int
				if _, err := fmt.Fscan(br, &v); err != nil {
					return 0, err
				}
				return v, nil
			}
		}
	}
	w, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("img: read PGM width: %w", err)
	}
	h, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("img: read PGM height: %w", err)
	}
	maxval, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("img: read PGM maxval: %w", err)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("img: unsupported PGM maxval %d", maxval)
	}
	// Bound each dimension before multiplying: a huge dimension would make
	// w*h overflow and slip past a product-only check.
	const maxDim = 1 << 15
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim || w*h > 1<<28 {
		return nil, fmt.Errorf("img: implausible PGM size %dx%d", w, h)
	}
	// One whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("img: read PGM separator: %w", err)
	}
	out := New(w, h)
	if _, err := io.ReadFull(br, out.Pix); err != nil {
		return nil, fmt.Errorf("img: read PGM pixels: %w", err)
	}
	return out, nil
}
