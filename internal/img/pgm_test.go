package img

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestPGMRoundTrip(t *testing.T) {
	r := rng.New(50)
	m := randomImage(r, 17, 11)
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("PGM round trip changed pixels")
	}
}

func TestPGMHeader(t *testing.T) {
	m := New(3, 2)
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n3 2\n255\n") {
		t.Fatalf("header: %q", buf.String()[:16])
	}
}

func TestReadPGMWithComment(t *testing.T) {
	data := "P5\n# a comment\n2 1\n255\nAB"
	m, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 2 || m.H != 1 || m.Pix[0] != 'A' || m.Pix[1] != 'B' {
		t.Fatalf("parsed: %+v", m)
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":  "P2\n2 2\n255\nxxxx",
		"bad maxval": "P5\n2 2\n65535\nxxxx",
		"truncated":  "P5\n4 4\n255\nxx",
		"empty":      "",
		"zero width": "P5\n0 2\n255\n",
	}
	for name, data := range cases {
		if _, err := ReadPGM(strings.NewReader(data)); err == nil {
			t.Errorf("%s: ReadPGM accepted invalid input", name)
		}
	}
}

func TestPGMEmptyImage(t *testing.T) {
	m := New(0, 0)
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	// Width 0 is rejected on read (implausible size guard).
	if _, err := ReadPGM(&buf); err == nil {
		t.Fatal("zero-size PGM should be rejected on read")
	}
}
