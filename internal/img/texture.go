package img

import (
	"math"

	"repro/internal/rng"
)

// Texture identifies a procedural background family used by the scene
// generator. The families are chosen to span the clutter spectrum the paper's
// six evaluation videos cover: flat indoor walls, gradient sky, mid-frequency
// foliage, and high-frequency urban clutter.
type Texture int

// Texture families, ordered roughly by increasing visual clutter.
const (
	TextureFlat Texture = iota // uniform wall / clear sky
	TextureGradient
	TextureClouds // low-frequency value noise
	TextureFoliage
	TextureUrban // high-frequency blocks and edges
	numTextures
)

// String returns the texture family name.
func (t Texture) String() string {
	switch t {
	case TextureFlat:
		return "flat"
	case TextureGradient:
		return "gradient"
	case TextureClouds:
		return "clouds"
	case TextureFoliage:
		return "foliage"
	case TextureUrban:
		return "urban"
	default:
		return "unknown"
	}
}

// Clutter returns the nominal clutter level of the texture family in [0, 1].
// The detection-difficulty model combines this with object size and contrast.
func (t Texture) Clutter() float64 {
	switch t {
	case TextureFlat:
		return 0.05
	case TextureGradient:
		return 0.15
	case TextureClouds:
		return 0.40
	case TextureFoliage:
		return 0.70
	case TextureUrban:
		return 0.90
	default:
		return 0.5
	}
}

// FillTexture paints a procedural texture of the given family into m. base is
// the mean intensity (0-255); phase shifts the pattern horizontally so that a
// panning camera produces frame-to-frame change; r supplies deterministic
// noise. The same (family, base, phase) always yields the same image for a
// stream in the same state.
func FillTexture(m *Image, family Texture, base float64, phase float64, r *rng.Stream) {
	switch family {
	case TextureFlat:
		fillFlat(m, base, r)
	case TextureGradient:
		fillGradient(m, base, phase)
	case TextureClouds:
		fillValueNoise(m, base, phase, 3, 40, r)
	case TextureFoliage:
		fillValueNoise(m, base, phase, 6, 55, r)
	case TextureUrban:
		fillUrban(m, base, phase, r)
	default:
		fillFlat(m, base, r)
	}
}

func fillFlat(m *Image, base float64, r *rng.Stream) {
	for i := range m.Pix {
		m.Pix[i] = clampU8(base + r.Norm(0, 1.5))
	}
}

func fillGradient(m *Image, base, phase float64) {
	for y := 0; y < m.H; y++ {
		v := base - 40 + 80*float64(y)/float64(max(m.H-1, 1))
		for x := 0; x < m.W; x++ {
			shift := 10 * math.Sin(2*math.Pi*(float64(x)/float64(m.W)+phase))
			m.Pix[y*m.W+x] = clampU8(v + shift)
		}
	}
}

// fillValueNoise lays down octaves of smooth value noise. The lattice values
// derive from a hash of the lattice coordinates shifted by phase, so sliding
// phase scrolls the texture coherently.
//
// Each octave samples a coarse lattice whose points are shared by many
// pixels, so the lattice values are hashed once per octave into a small grid
// and the per-pixel work reduces to the bilinear blend. Accumulation order
// (base, then octaves in ascending order) and every floating-point
// expression match the direct per-pixel evaluation, so the output is
// bit-identical to computing valueNoise at every pixel.
func fillValueNoise(m *Image, base, phase float64, octaves int, amp float64, r *rng.Stream) {
	seed := r.Uint64()
	if m.W <= 0 || m.H <= 0 {
		return
	}
	buf := make([]float64, m.W*m.H)
	for i := range buf {
		buf[i] = base
	}
	phaseW := phase * float64(m.W)
	freq := 1.0 / 32.0
	a := amp
	for o := 0; o < octaves; o++ {
		addNoiseOctave(buf, m.W, m.H, phaseW, freq, a, seed+uint64(o)*0x9e37)
		freq *= 2
		a *= 0.55
	}
	for i, v := range buf {
		m.Pix[i] = clampU8(v)
	}
}

// addNoiseOctave accumulates a*(valueNoise(fx, fy, seed)-0.5) for one octave
// into buf, hashing each lattice point once instead of once per pixel.
func addNoiseOctave(buf []float64, w, h int, phaseW, freq, a float64, seed uint64) {
	fxAt := func(x int) float64 { return (float64(x) + phaseW) * freq }
	ixMin := int(math.Floor(fxAt(0)))
	if v := int(math.Floor(fxAt(w - 1))); v < ixMin {
		ixMin = v
	}
	ixMax := int(math.Floor(fxAt(0)))
	if v := int(math.Floor(fxAt(w - 1))); v > ixMax {
		ixMax = v
	}
	iyMin := int(math.Floor(0 * freq))
	iyMax := int(math.Floor(float64(h-1) * freq))
	cw := ixMax - ixMin + 2 // +1 for the x0+1 sample, +1 for inclusive range
	ch := iyMax - iyMin + 2
	grid := make([]float64, cw*ch)
	for iy := 0; iy < ch; iy++ {
		for ix := 0; ix < cw; ix++ {
			hsh := latticeHash(uint64(int64(ix+ixMin)+1<<20), uint64(int64(iy+iyMin)+1<<20), seed)
			grid[iy*cw+ix] = float64(hsh%1024) / 1023
		}
	}
	// The horizontal lattice cell and fade weights depend only on x, so they
	// are computed once per octave instead of once per pixel.
	ixs := make([]int, w)
	sxs := make([]float64, w)
	gxs := make([]float64, w) // 1-sx
	for x := 0; x < w; x++ {
		fx := (float64(x) + phaseW) * freq
		x0 := math.Floor(fx)
		fxFrac := fx - x0
		sx := fxFrac * fxFrac * (3 - 2*fxFrac)
		ixs[x] = int(x0) - ixMin
		sxs[x] = sx
		gxs[x] = 1 - sx
	}
	for y := 0; y < h; y++ {
		fy := float64(y) * freq
		y0 := math.Floor(fy)
		fyFrac := fy - y0
		sy := fyFrac * fyFrac * (3 - 2*fyFrac)
		gy := 1 - sy
		row0 := grid[(int(y0)-iyMin)*cw:]
		row1 := grid[(int(y0)-iyMin+1)*cw:]
		out := buf[y*w : y*w+w]
		for x := range out {
			ix := ixs[x]
			top := row0[ix]*gxs[x] + row0[ix+1]*sxs[x]
			bot := row1[ix]*gxs[x] + row1[ix+1]*sxs[x]
			out[x] += a * (top*gy + bot*sy - 0.5)
		}
	}
}

func fillUrban(m *Image, base, phase float64, r *rng.Stream) {
	seed := r.Uint64()
	const block = 9
	shift := int(phase * float64(m.W))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			bx := (x + shift) / block
			by := y / block
			h := latticeHash(uint64(bx), uint64(by), seed)
			v := base + float64(h%129) - 64
			// Strong edges between blocks.
			if (x+shift)%block == 0 || y%block == 0 {
				v -= 45
			}
			m.Pix[y*m.W+x] = clampU8(v)
		}
	}
}

// latticeHash deterministically hashes lattice coordinates with a seed.
func latticeHash(x, y, seed uint64) uint64 {
	h := seed ^ 0xcbf29ce484222325
	h = (h ^ x) * 0x100000001b3
	h = (h ^ y) * 0x100000001b3
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// valueNoise returns smooth noise in [0, 1] at continuous coordinates.
func valueNoise(x, y float64, seed uint64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := x-x0, y-y0
	// Smoothstep fade.
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	at := func(ix, iy float64) float64 {
		h := latticeHash(uint64(int64(ix)+1<<20), uint64(int64(iy)+1<<20), seed)
		return float64(h%1024) / 1023
	}
	v00 := at(x0, y0)
	v10 := at(x0+1, y0)
	v01 := at(x0, y0+1)
	v11 := at(x0+1, y0+1)
	top := v00*(1-sx) + v10*sx
	bot := v01*(1-sx) + v11*sx
	return top*(1-sy) + bot*sy
}

// DroneSprite renders a quadcopter-like sprite with the given body size
// (pixels) and intensity against a transparent key of 0. The shape — a
// central body with four arms and rotor disks — gives the template tracker
// and NCC realistic structure to lock onto. Minimum rendered size is 3×3.
func DroneSprite(size int, intensity uint8) *Image {
	if size < 3 {
		size = 3
	}
	s := New(size, size)
	c := float64(size-1) / 2
	bodyR := float64(size) * 0.18
	armR := float64(size) * 0.46
	rotorR := float64(size) * 0.16
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x)-c, float64(y)-c
			d := math.Hypot(dx, dy)
			set := false
			if d <= bodyR {
				set = true
			}
			// Diagonal arms.
			if !set && d <= armR && math.Abs(math.Abs(dx)-math.Abs(dy)) < math.Max(1, float64(size)*0.06) {
				set = true
			}
			// Rotor disks at the four arm tips.
			if !set {
				for _, sgn := range [][2]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
					tx := c + sgn[0]*armR*0.72
					ty := c + sgn[1]*armR*0.72
					if math.Hypot(float64(x)-tx, float64(y)-ty) <= rotorR {
						set = true
						break
					}
				}
			}
			if set {
				v := intensity
				if v == 0 {
					v = 1 // avoid the transparent key
				}
				s.Pix[y*size+x] = v
			}
		}
	}
	return s
}
