package img

import (
	"testing"

	"repro/internal/rng"
)

// fillValueNoiseReference is the original direct per-pixel evaluation the
// lattice-precomputing fillValueNoise must reproduce bit for bit.
func fillValueNoiseReference(m *Image, base, phase float64, octaves int, amp float64, r *rng.Stream) {
	seed := r.Uint64()
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := base
			freq := 1.0 / 32.0
			a := amp
			for o := 0; o < octaves; o++ {
				fx := (float64(x) + phase*float64(m.W)) * freq
				fy := float64(y) * freq
				v += a * (valueNoise(fx, fy, seed+uint64(o)*0x9e37) - 0.5)
				freq *= 2
				a *= 0.55
			}
			m.Pix[y*m.W+x] = clampU8(v)
		}
	}
}

func TestFillValueNoiseMatchesReference(t *testing.T) {
	cases := []struct {
		w, h    int
		base    float64
		phase   float64
		octaves int
		amp     float64
		seed    uint64
	}{
		{72, 72, 110, 0, 3, 40, 1},
		{72, 72, 110, 0.73, 6, 55, 2},
		{72, 72, 95, 12.4, 6, 55, 3},
		{33, 17, 140, 3.1, 4, 30, 4},
		{1, 1, 128, 0.5, 3, 40, 5},
		{64, 48, 100, -2.25, 5, 45, 6}, // negative phase pans the other way
	}
	for _, c := range cases {
		fast := New(c.w, c.h)
		ref := New(c.w, c.h)
		fillValueNoise(fast, c.base, c.phase, c.octaves, c.amp, rng.New(c.seed))
		fillValueNoiseReference(ref, c.base, c.phase, c.octaves, c.amp, rng.New(c.seed))
		if !fast.Equal(ref) {
			t.Errorf("fillValueNoise(%dx%d base=%v phase=%v oct=%d amp=%v) differs from reference",
				c.w, c.h, c.base, c.phase, c.octaves, c.amp)
		}
	}
}

func TestResizeMatchesReference(t *testing.T) {
	// resizeReference is the original per-pixel bilinear loop.
	resizeReference := func(m *Image, w, h int) *Image {
		out := New(w, h)
		if m.W == 0 || m.H == 0 || w == 0 || h == 0 {
			return out
		}
		xRatio := float64(m.W) / float64(w)
		yRatio := float64(m.H) / float64(h)
		for y := 0; y < h; y++ {
			srcY := (float64(y)+0.5)*yRatio - 0.5
			y0 := int(srcY)
			if srcY < 0 {
				y0 = 0
				srcY = 0
			}
			y1 := y0 + 1
			if y1 >= m.H {
				y1 = m.H - 1
			}
			fy := srcY - float64(y0)
			for x := 0; x < w; x++ {
				srcX := (float64(x)+0.5)*xRatio - 0.5
				x0 := int(srcX)
				if srcX < 0 {
					x0 = 0
					srcX = 0
				}
				x1 := x0 + 1
				if x1 >= m.W {
					x1 = m.W - 1
				}
				fx := srcX - float64(x0)
				top := float64(m.Pix[y0*m.W+x0])*(1-fx) + float64(m.Pix[y0*m.W+x1])*fx
				bot := float64(m.Pix[y1*m.W+x0])*(1-fx) + float64(m.Pix[y1*m.W+x1])*fx
				out.Pix[y*w+x] = clampU8(top*(1-fy) + bot*fy)
			}
		}
		return out
	}

	r := rng.New(109)
	for i := 0; i < 100; i++ {
		m := randomImage(r, 1+r.Intn(40), 1+r.Intn(40))
		w := 1 + r.Intn(40)
		h := 1 + r.Intn(40)
		fast := m.Resize(w, h)
		ref := resizeReference(m, w, h)
		if !fast.Equal(ref) {
			t.Fatalf("iter %d: Resize(%dx%d -> %dx%d) differs from reference", i, m.W, m.H, w, h)
		}
		// The reusable kernel must agree bit for bit, including overwriting
		// stale destination contents.
		k := NewResizeKernel(m.W, m.H, w, h)
		dst := New(w, h)
		dst.Fill(123)
		k.Apply(m, dst)
		if !dst.Equal(ref) {
			t.Fatalf("iter %d: ResizeKernel(%dx%d -> %dx%d) differs from Resize", i, m.W, m.H, w, h)
		}
	}
	// Degenerate source: Resize yields a zeroed image; the kernel must clear
	// its (possibly reused) destination the same way.
	empty := New(0, 0)
	k := NewResizeKernel(0, 0, 5, 4)
	dst := New(5, 4)
	dst.Fill(200)
	k.Apply(empty, dst)
	if !dst.Equal(empty.Resize(5, 4)) {
		t.Fatal("ResizeKernel of empty source is not a zeroed image")
	}
}
