package img

import (
	"testing"

	"repro/internal/rng"
)

func TestTextureNames(t *testing.T) {
	want := map[Texture]string{
		TextureFlat:     "flat",
		TextureGradient: "gradient",
		TextureClouds:   "clouds",
		TextureFoliage:  "foliage",
		TextureUrban:    "urban",
		Texture(99):     "unknown",
	}
	for tex, name := range want {
		if tex.String() != name {
			t.Errorf("Texture(%d).String() = %q, want %q", tex, tex.String(), name)
		}
	}
}

func TestClutterOrdering(t *testing.T) {
	order := []Texture{TextureFlat, TextureGradient, TextureClouds, TextureFoliage, TextureUrban}
	for i := 1; i < len(order); i++ {
		if order[i].Clutter() <= order[i-1].Clutter() {
			t.Fatalf("clutter not increasing: %v (%v) <= %v (%v)",
				order[i], order[i].Clutter(), order[i-1], order[i-1].Clutter())
		}
	}
	for _, tex := range order {
		if c := tex.Clutter(); c < 0 || c > 1 {
			t.Fatalf("clutter out of range for %v: %v", tex, c)
		}
	}
}

func TestFillTextureDeterministic(t *testing.T) {
	for tex := TextureFlat; tex < numTextures; tex++ {
		a := New(32, 24)
		b := New(32, 24)
		FillTexture(a, tex, 120, 0.1, rng.New(5))
		FillTexture(b, tex, 120, 0.1, rng.New(5))
		if !a.Equal(b) {
			t.Fatalf("texture %v not deterministic", tex)
		}
	}
}

func TestFillTextureVarianceTracksClutter(t *testing.T) {
	// Higher-clutter families must produce higher pixel variance so the
	// difficulty model sees a meaningful signal.
	r := rng.New(6)
	flat := New(48, 48)
	FillTexture(flat, TextureFlat, 128, 0, r.Fork("a"))
	urban := New(48, 48)
	FillTexture(urban, TextureUrban, 128, 0, r.Fork("b"))
	if flat.Variance() >= urban.Variance() {
		t.Fatalf("flat variance %v >= urban variance %v", flat.Variance(), urban.Variance())
	}
}

func TestFillTexturePhaseScrolls(t *testing.T) {
	// Shifting the phase must change the image (panning camera produces
	// frame-to-frame deltas), but keep it correlated for small shifts.
	r := rng.New(7)
	a := New(64, 48)
	FillTexture(a, TextureClouds, 128, 0.0, r.Fork("x"))
	b := New(64, 48)
	FillTexture(b, TextureClouds, 128, 0.02, r.Fork("x"))
	if a.Equal(b) {
		t.Fatal("phase shift produced identical images")
	}
	if ncc := NCC(a, b); ncc < 0.5 {
		t.Fatalf("small phase shift decorrelated frames: NCC = %v", ncc)
	}
}

func TestDroneSprite(t *testing.T) {
	s := DroneSprite(15, 230)
	if s.W != 15 || s.H != 15 {
		t.Fatalf("sprite size %dx%d", s.W, s.H)
	}
	// Center pixel is body.
	if s.At(7, 7) == 0 {
		t.Fatal("sprite center transparent")
	}
	// Corners are transparent.
	if s.At(0, 0) != 0 || s.At(14, 14) != 0 {
		t.Fatal("sprite corners not transparent")
	}
	// Some pixels set, some not.
	set := 0
	for _, p := range s.Pix {
		if p != 0 {
			set++
		}
	}
	if set == 0 || set == len(s.Pix) {
		t.Fatalf("sprite degenerate: %d/%d set", set, len(s.Pix))
	}
}

func TestDroneSpriteMinSize(t *testing.T) {
	s := DroneSprite(1, 200)
	if s.W < 3 || s.H < 3 {
		t.Fatalf("sprite below minimum size: %dx%d", s.W, s.H)
	}
}

func TestDroneSpriteZeroIntensityAvoidsKey(t *testing.T) {
	s := DroneSprite(9, 0)
	// intensity 0 would collide with the transparent key; implementation
	// must substitute a non-zero value for body pixels.
	if s.At(4, 4) == 0 {
		t.Fatal("zero-intensity sprite body collides with transparent key")
	}
}

func BenchmarkFillTextureUrban(b *testing.B) {
	m := New(96, 96)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FillTexture(m, TextureUrban, 128, float64(i)*0.01, r)
	}
}

func BenchmarkFillTextureClouds(b *testing.B) {
	m := New(96, 96)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FillTexture(m, TextureClouds, 128, float64(i)*0.01, r)
	}
}
