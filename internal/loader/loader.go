// Package loader implements SHIFT's dynamic model loader (DML, paper
// §III-C): it manages which models are resident in each accelerator memory
// pool, loads models on demand (charging the characterized load time and
// energy to the virtual platform), evicts the least-recently-requested model
// when a pool is full, and optionally prefetches models to occupy all free
// memory — the paper's strategy for making future swaps cheap.
//
// Engines are pool-specific (a TensorRT GPU engine differs from a DLA engine
// and from an OpenVINO blob), so residency is keyed by (model, kind) within
// each pool.
package loader

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/zoo"
)

// ErrNoMemory reports that a load cannot proceed because the pool cannot
// free enough bytes: every candidate victim is either the engine being
// loaded or is reference-held by a stream (Acquire). The check runs before
// any eviction, so a refused load leaves residency untouched — the serving
// runtime reacts by keeping the stream on the engine it already holds.
var ErrNoMemory = errors.New("insufficient evictable memory")

// EvictionPolicy selects which resident model is evicted when space is
// needed. The paper uses least-recently-requested; the alternatives exist
// for the ablation study in DESIGN.md.
type EvictionPolicy int

// Supported eviction policies.
const (
	// EvictLRR removes the least-recently-requested model (the paper's
	// policy).
	EvictLRR EvictionPolicy = iota
	// EvictFIFO removes the oldest-loaded model.
	EvictFIFO
	// EvictLargest removes the largest resident model.
	EvictLargest
)

// String names the policy.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRR:
		return "least-recently-requested"
	case EvictFIFO:
		return "fifo"
	case EvictLargest:
		return "largest-first"
	default:
		return "unknown"
	}
}

// resident tracks one loaded engine.
type resident struct {
	key         string // residency key within the pool
	model       string
	kind        accel.Kind // processor kind the engine executes on
	bytes       int64
	loadedSeq   uint64 // sequence number at load time (FIFO)
	requestedAt uint64 // last request sequence (LRR)
	// refs counts the streams currently serving from this engine
	// (Acquire/Release). A reference-held engine is never evicted.
	refs int
	// spec marks a speculative resident: an engine brought in by
	// predictive prefetch that no stream has demanded yet. Speculative
	// residents are ghost occupancy — demand loads treat their bytes as
	// free (evicting them silently, after any policy evictions the load
	// would have performed anyway) and ResidentFallback never adopts
	// them — so a prediction can never steer which engine a stream is
	// served from. Speculative loads themselves behave like any cache
	// fill: they may displace unheld demand residents in policy order
	// (never reference-held engines), the usual prefetch-pollution
	// trade governed by the predictor's confidence gate. The flag
	// clears on the first demand touch.
	spec bool
}

// Stats accumulates loader activity for Table III-style reporting.
type Stats struct {
	// Loads counts engines brought into memory.
	Loads int
	// Evictions counts engines removed to make space.
	Evictions int
	// LoadTimeSec and LoadEnergyJ accumulate the charged load costs.
	LoadTimeSec float64
	LoadEnergyJ float64
}

// Loader is the dynamic model loader. Not safe for concurrent use.
type Loader struct {
	sys    *zoo.System
	policy EvictionPolicy

	seq      uint64
	resident map[string]map[string]*resident // pool -> key -> resident
	pinned   map[string]string               // pool -> key exempt from eviction
	stats    Stats
	// infos caches the per-pair lookups (processor, pool, entry, residency
	// key) that Ensure would otherwise re-resolve on every frame.
	infos map[zoo.Pair]*pairInfo
}

// pairInfo is the resolved, immutable context of one (model, processor)
// pair.
type pairInfo struct {
	proc  *accel.Proc
	pool  *accel.MemPool
	entry *zoo.Entry
	key   string
}

// New creates a loader over the system with the given eviction policy.
func New(sys *zoo.System, policy EvictionPolicy) *Loader {
	return &Loader{
		sys:      sys,
		policy:   policy,
		resident: map[string]map[string]*resident{},
		pinned:   map[string]string{},
		infos:    map[zoo.Pair]*pairInfo{},
	}
}

// info resolves and caches the pair's processor, pool, entry and residency
// key. Support errors are not cached (they surface per call as before).
func (l *Loader) info(pair zoo.Pair) (*pairInfo, error) {
	if pi, ok := l.infos[pair]; ok {
		return pi, nil
	}
	proc, err := l.sys.SoC.Proc(pair.ProcID)
	if err != nil {
		return nil, err
	}
	e, err := l.sys.Entry(pair.Model)
	if err != nil {
		return nil, err
	}
	pool, err := l.sys.SoC.PoolOf(pair.ProcID)
	if err != nil {
		return nil, err
	}
	pi := &pairInfo{proc: proc, pool: pool, entry: e, key: residencyKey(pair.Model, proc.Kind)}
	l.infos[pair] = pi
	return pi, nil
}

// residencyKey names an engine within its pool.
func residencyKey(model string, kind accel.Kind) string {
	return model + "/" + kind.String()
}

// Stats returns a copy of the accumulated loader statistics.
func (l *Loader) Stats() Stats { return l.stats }

// IsResident reports whether the engine for pair is loaded (demand or
// speculative).
func (l *Loader) IsResident(pair zoo.Pair) bool {
	pool, err := l.sys.SoC.PoolOf(pair.ProcID)
	if err != nil {
		return false
	}
	m := l.resident[pool.Name]
	if m == nil {
		return false
	}
	_, ok := m[residencyKey(pair.Model, pair.Kind)]
	return ok
}

// DemandResident reports whether the engine for pair is loaded and has
// been demanded by a stream — speculative prefetches don't count, so
// placement and fallback decisions keyed on residency see exactly the
// engines a prefetch-free run would.
func (l *Loader) DemandResident(pair zoo.Pair) bool {
	pool, err := l.sys.SoC.PoolOf(pair.ProcID)
	if err != nil {
		return false
	}
	r, ok := l.resident[pool.Name][residencyKey(pair.Model, pair.Kind)]
	return ok && !r.spec
}

// ResidentCount returns the number of engines loaded across all pools.
func (l *Loader) ResidentCount() int {
	n := 0
	for _, m := range l.resident {
		n += len(m)
	}
	return n
}

// loadCost returns the load cost of model on pool, or an error if the model
// has no engine format for that pool (accelerator incompatibility — the DML
// "needs to have the knowledge about whether an accelerator can execute a
// specific ODM").
func (l *Loader) loadCost(model, poolName string) (zoo.LoadCost, error) {
	e, err := l.sys.Entry(model)
	if err != nil {
		return zoo.LoadCost{}, err
	}
	lc, ok := e.LoadByPool[poolName]
	if !ok {
		return zoo.LoadCost{}, fmt.Errorf("loader: %s has no engine for pool %s", model, poolName)
	}
	return lc, nil
}

// ExecFn charges a load workload to the platform. The serving runtime
// substitutes a contention-aware (queueing) execution; nil means the
// classic clock-advancing accel.SoC.Exec.
type ExecFn func(procID string, latSec, powerW float64) (accel.Cost, error)

// Ensure makes the engine for pair resident, evicting if necessary, and
// returns the cost charged (zero if already resident — only the request
// recency is refreshed). The engine being requested is pinned for the
// duration of the call so it can never evict itself.
func (l *Loader) Ensure(pair zoo.Pair) (accel.Cost, error) {
	return l.EnsureWith(pair, nil)
}

// EnsureWith is Ensure with the load charged through exec (nil = the
// platform's clock-advancing Exec). Before evicting anything it verifies
// that enough unheld bytes exist to fit the engine; if not it fails with
// ErrNoMemory, leaving residency untouched.
func (l *Loader) EnsureWith(pair zoo.Pair, exec ExecFn) (accel.Cost, error) {
	return l.ensureWith(pair, exec, false)
}

// ensureWith implements demand (speculative=false) and prefetch
// (speculative=true) loads. Demand loads see speculative residents as
// ghost occupancy: the fit pre-check, the policy eviction sequence and
// ErrNoMemory refusals are computed as if speculative engines were free
// bytes; speculative engines are then silently reclaimed if the bytes
// are physically needed. Speculative loads reclaim other speculative
// residents first, then fall back to policy-ordered eviction of unheld
// demand residents — reference-held engines are never victims.
func (l *Loader) ensureWith(pair zoo.Pair, exec ExecFn, speculative bool) (accel.Cost, error) {
	pi, err := l.info(pair)
	if err != nil {
		return accel.Cost{}, err
	}
	if !pi.entry.Supports(pi.proc.Kind) {
		return accel.Cost{}, fmt.Errorf("loader: %s cannot execute on %s", pair.Model, pi.proc.Kind)
	}
	pool, key := pi.pool, pi.key
	l.seq++

	if m := l.resident[pool.Name]; m != nil {
		if r, ok := m[key]; ok {
			r.requestedAt = l.seq
			if r.spec && !speculative {
				return accel.Cost{}, l.promote(pool, key, r)
			}
			return accel.Cost{}, nil
		}
	}

	lc, err := l.loadCost(pair.Model, pool.Name)
	if err != nil {
		return accel.Cost{}, err
	}
	if lc.Bytes > pool.Capacity {
		return accel.Cost{}, fmt.Errorf("loader: %s (%d bytes) exceeds pool %s capacity %d: %w",
			pair.Model, lc.Bytes, pool.Name, pool.Capacity, ErrNoMemory)
	}
	if speculative {
		if pool.Available()+l.specBytes(pool)+l.evictableBytes(pool) < lc.Bytes {
			return accel.Cost{}, fmt.Errorf("loader: speculative %s (%d bytes) does not fit reclaimable bytes of pool %s: %w",
				pair.Model, lc.Bytes, pool.Name, ErrNoMemory)
		}
	}

	// Evict until the engine fits — but only if eviction can succeed at
	// all, so a doomed load never tears down residency first. Speculative
	// bytes count as available: a prefetch-free run would not have them
	// occupied.
	l.pinned[pool.Name] = key
	defer delete(l.pinned, pool.Name)
	if speculative {
		for pool.Available() < lc.Bytes && l.specBytes(pool) > 0 {
			if err := l.evictSpecOne(pool); err != nil {
				return accel.Cost{}, err
			}
		}
		for pool.Available() < lc.Bytes {
			if err := l.evictOne(pool); err != nil {
				return accel.Cost{}, err
			}
		}
	}
	if !speculative {
		if pool.Available()+l.specBytes(pool)+l.evictableBytes(pool) < lc.Bytes {
			return accel.Cost{}, fmt.Errorf("loader: %s (%d bytes) cannot fit in pool %s: %w",
				pair.Model, lc.Bytes, pool.Name, ErrNoMemory)
		}
		for pool.Available()+l.specBytes(pool) < lc.Bytes {
			if err := l.evictOne(pool); err != nil {
				return accel.Cost{}, err
			}
		}
		for pool.Available() < lc.Bytes {
			if err := l.evictSpecOne(pool); err != nil {
				return accel.Cost{}, err
			}
		}
	}
	if err := pool.Alloc(key, lc.Bytes); err != nil {
		return accel.Cost{}, err
	}
	if l.resident[pool.Name] == nil {
		l.resident[pool.Name] = map[string]*resident{}
	}
	l.resident[pool.Name][key] = &resident{
		key:         key,
		model:       pair.Model,
		kind:        pi.proc.Kind,
		bytes:       lc.Bytes,
		loadedSeq:   l.seq,
		requestedAt: l.seq,
		spec:        speculative,
	}

	// Charge the load to the requesting processor on the virtual platform.
	if exec == nil {
		exec = l.sys.SoC.Exec
	}
	cost, err := exec(pair.ProcID, lc.TimeSec, lc.PowerW)
	if err != nil {
		return accel.Cost{}, err
	}
	l.stats.Loads++
	l.stats.LoadTimeSec += cost.Lat.Seconds()
	l.stats.LoadEnergyJ += cost.Energy
	return cost, nil
}

// promote converts a speculative resident to a demand resident — a
// prefetch hit. To keep residency decisions identical to a prefetch-free
// run (where this demand would have been a real load), it first mirrors
// that load's behavior: the same ErrNoMemory pre-check, then the same
// policy-ordered evictions of demand residents, with the speculative
// bytes (including the promoted engine's own) counting as free.
func (l *Loader) promote(pool *accel.MemPool, key string, r *resident) error {
	l.pinned[pool.Name] = key
	defer delete(l.pinned, pool.Name)
	if pool.Available()+l.specBytes(pool)+l.evictableBytes(pool) < r.bytes {
		return fmt.Errorf("loader: %s (%d bytes) cannot fit in pool %s: %w",
			r.model, r.bytes, pool.Name, ErrNoMemory)
	}
	for pool.Available()+l.specBytes(pool) < r.bytes {
		if err := l.evictOne(pool); err != nil {
			return err
		}
	}
	r.spec = false
	// The prefetch-free run would have loaded the engine now: refresh the
	// FIFO stamp so eviction order stays aligned with it.
	r.loadedSeq = l.seq
	return nil
}

// evictableBytes sums the resident bytes policy eviction may reclaim:
// everything except the pinned (being-loaded) key, reference-held engines
// and speculative residents (reclaimed separately as ghost bytes).
func (l *Loader) evictableBytes(pool *accel.MemPool) int64 {
	var sum int64
	pinnedKey := l.pinned[pool.Name]
	for _, r := range l.resident[pool.Name] {
		if r.key == pinnedKey || r.refs > 0 || r.spec {
			continue
		}
		sum += r.bytes
	}
	return sum
}

// specBytes sums the bytes held by speculative residents in the pool —
// ghost occupancy a prefetch-free run would not have. A speculative
// engine being promoted counts too: the mirrored demand load treats its
// own bytes as free, exactly like the real load it stands in for.
func (l *Loader) specBytes(pool *accel.MemPool) int64 {
	var sum int64
	for _, r := range l.resident[pool.Name] {
		if r.spec {
			sum += r.bytes
		}
	}
	return sum
}

// findResident returns the residency bookkeeping for pair, if loaded.
func (l *Loader) findResident(pair zoo.Pair) (*resident, error) {
	pi, err := l.info(pair)
	if err != nil {
		return nil, err
	}
	r, ok := l.resident[pi.pool.Name][pi.key]
	if !ok {
		return nil, fmt.Errorf("loader: %s is not resident in pool %s", pi.key, pi.pool.Name)
	}
	return r, nil
}

// Acquire takes a residency reference on pair's (already resident) engine:
// while any stream holds a reference, the engine cannot be evicted. Streams
// serving the same (model, kind) share one engine and stack references.
func (l *Loader) Acquire(pair zoo.Pair) error {
	r, err := l.findResident(pair)
	if err != nil {
		return fmt.Errorf("loader: acquire: %w", err)
	}
	r.refs++
	r.spec = false
	return nil
}

// Release drops one residency reference taken by Acquire.
func (l *Loader) Release(pair zoo.Pair) error {
	r, err := l.findResident(pair)
	if err != nil {
		return fmt.Errorf("loader: release: %w", err)
	}
	if r.refs <= 0 {
		return fmt.Errorf("loader: release of %s without a matching acquire", r.key)
	}
	r.refs--
	return nil
}

// Refs returns the number of residency references held on pair's engine
// (zero when absent).
func (l *Loader) Refs(pair zoo.Pair) int {
	r, err := l.findResident(pair)
	if err != nil {
		return 0
	}
	return r.refs
}

// TotalRefs returns the residency references held across all pools. A clean
// shutdown — every stream closed, including checkpointed and migrated ones —
// leaves it at zero; the fleet layer reports it per device as the leak check.
func (l *Loader) TotalRefs() int {
	n := 0
	for _, m := range l.resident {
		for _, r := range m {
			n += r.refs
		}
	}
	return n
}

// Flush wipes every pool's residency in one stroke — the cold-restart
// primitive behind the fleet's crash fault: a killed process's engine memory
// simply vanishes, so nothing is "evicted" (cumulative stats are untouched)
// and the pools return to empty. Flushing is refused while any engine is
// reference-held: live sessions must be closed (their refs released) before
// the device's state can be declared lost.
func (l *Loader) Flush() error {
	if n := l.TotalRefs(); n != 0 {
		return fmt.Errorf("loader: flush with %d residency references held", n)
	}
	poolNames := make([]string, 0, len(l.resident))
	for name := range l.resident {
		poolNames = append(poolNames, name)
	}
	sort.Strings(poolNames)
	for _, name := range poolNames {
		pool, ok := l.sys.SoC.Pools[name]
		m := l.resident[name]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !ok {
				continue
			}
			if err := pool.Free(k); err != nil {
				return fmt.Errorf("loader: flush pool %s: %w", name, err)
			}
		}
		delete(l.resident, name)
	}
	return nil
}

// ResidentFallback returns a deterministic warm substitute for a refused
// load: an already-resident engine in the pool backing requested.ProcID,
// preferring engines of the requested processor kind, then lexical key
// order. The serving runtime uses it when a stream's load is refused
// (ErrNoMemory) and the stream holds no engine of its own — degraded
// service from whatever is warm beats failing the stream.
func (l *Loader) ResidentFallback(requested zoo.Pair) (zoo.Pair, bool) {
	pi, err := l.info(requested)
	if err != nil {
		return zoo.Pair{}, false
	}
	m := l.resident[pi.pool.Name]
	if len(m) == 0 {
		return zoo.Pair{}, false
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best *resident
	for _, k := range keys {
		r := m[k]
		if r.spec {
			// Never adopt a speculative resident: a prefetch-free run
			// would not have it, and falling back to it would let a
			// prediction steer serving decisions.
			continue
		}
		if r.kind == requested.Kind {
			best = r
			break
		}
		if best == nil {
			best = r
		}
	}
	if best == nil {
		return zoo.Pair{}, false
	}
	procID := requested.ProcID
	if best.kind != requested.Kind {
		ids := l.sys.SoC.ProcIDsByKind(best.kind)
		if len(ids) == 0 {
			return zoo.Pair{}, false
		}
		procID = ids[0]
	}
	return zoo.Pair{Model: best.model, ProcID: procID, Kind: best.kind}, true
}

// evictOne removes one demand engine from the pool according to the
// policy. Speculative residents are not policy victims — they are ghost
// occupancy, reclaimed by evictSpecOne only when bytes are physically
// needed — so the victim sequence matches a prefetch-free run exactly.
func (l *Loader) evictOne(pool *accel.MemPool) error {
	m := l.resident[pool.Name]
	if len(m) == 0 {
		return fmt.Errorf("loader: pool %s has no evictable engines", pool.Name)
	}
	var victim *resident
	pinnedKey := l.pinned[pool.Name]
	for _, r := range m {
		if r.key == pinnedKey || r.refs > 0 || r.spec {
			continue
		}
		if victim == nil {
			victim = r
			continue
		}
		switch l.policy {
		case EvictLRR:
			if r.requestedAt < victim.requestedAt ||
				(r.requestedAt == victim.requestedAt && r.key < victim.key) {
				victim = r
			}
		case EvictFIFO:
			if r.loadedSeq < victim.loadedSeq ||
				(r.loadedSeq == victim.loadedSeq && r.key < victim.key) {
				victim = r
			}
		case EvictLargest:
			if r.bytes > victim.bytes ||
				(r.bytes == victim.bytes && r.key < victim.key) {
				victim = r
			}
		default:
			return fmt.Errorf("loader: unknown eviction policy %d", l.policy)
		}
	}
	if victim == nil {
		return fmt.Errorf("loader: pool %s only holds the pinned engine", pool.Name)
	}
	if err := pool.Free(victim.key); err != nil {
		return err
	}
	delete(m, victim.key)
	l.stats.Evictions++
	return nil
}

// evictSpecOne reclaims one speculative resident (lexical key order —
// deterministic, and invisible to demand decisions by construction).
func (l *Loader) evictSpecOne(pool *accel.MemPool) error {
	m := l.resident[pool.Name]
	pinnedKey := l.pinned[pool.Name]
	var victim *resident
	for _, r := range m {
		if !r.spec || r.key == pinnedKey {
			continue
		}
		if victim == nil || r.key < victim.key {
			victim = r
		}
	}
	if victim == nil {
		return fmt.Errorf("loader: pool %s has no speculative engines to reclaim", pool.Name)
	}
	if err := pool.Free(victim.key); err != nil {
		return err
	}
	delete(m, victim.key)
	l.stats.Evictions++
	return nil
}

// Prefetch greedily loads the given pairs (in priority order) into whatever
// memory remains, never evicting — the paper's "occupy the entire memory
// with ODMs, if it is able to". Prefetch loads are charged like demand
// loads; callers decide when idle time makes that acceptable. It returns
// the number of engines actually loaded.
func (l *Loader) Prefetch(pairs []zoo.Pair) (int, error) {
	return l.PrefetchWith(pairs, nil)
}

// PrefetchWith is Prefetch with loads charged through exec (nil = the
// platform's clock-advancing Exec), for the serving runtime's queueing
// path. Prefetch is best-effort: a pair that cannot fit (ErrNoMemory
// mid-list — capacity-exceeding engines included) is skipped and the
// remaining pairs still load; held engines are never evicted.
func (l *Loader) PrefetchWith(pairs []zoo.Pair, exec ExecFn) (int, error) {
	return l.prefetchWith(pairs, exec, false)
}

// PrefetchSpeculative loads pairs as speculative residents — the
// predictive-prefetch entry point. Like any cache fill it may displace
// cold entries: other speculative residents are reclaimed first, then
// unheld demand residents in policy order (reference-held engines
// never). The loaded engines stay invisible to demand eviction
// decisions and ResidentFallback until a stream demands them (see
// resident.spec), so a wrong prediction cannot steer which engine a
// stream serves from — it costs at most a cold engine's warmth.
func (l *Loader) PrefetchSpeculative(pairs []zoo.Pair, exec ExecFn) (int, error) {
	return l.prefetchWith(pairs, exec, true)
}

func (l *Loader) prefetchWith(pairs []zoo.Pair, exec ExecFn, speculative bool) (int, error) {
	loaded := 0
	for _, pair := range pairs {
		proc, err := l.sys.SoC.Proc(pair.ProcID)
		if err != nil {
			return loaded, err
		}
		e, err := l.sys.Entry(pair.Model)
		if err != nil {
			return loaded, err
		}
		if !e.Supports(proc.Kind) {
			continue
		}
		pool, err := l.sys.SoC.PoolOf(pair.ProcID)
		if err != nil {
			return loaded, err
		}
		key := residencyKey(pair.Model, proc.Kind)
		if m := l.resident[pool.Name]; m != nil {
			if _, ok := m[key]; ok {
				continue
			}
		}
		lc, err := l.loadCost(pair.Model, pool.Name)
		if err != nil {
			continue // no engine format for this pool
		}
		if !speculative && pool.Available() < lc.Bytes {
			continue // prefetch never evicts
		}
		if speculative && pool.Available()+l.specBytes(pool)+l.evictableBytes(pool) < lc.Bytes {
			continue // best-effort: not enough reclaimable bytes for this pair
		}
		if _, err := l.ensureWith(pair, exec, speculative); err != nil {
			if errors.Is(err, ErrNoMemory) {
				continue // best-effort: skip this pair, keep loading the rest
			}
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
