package loader

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/rng"
	"repro/internal/zoo"
)

// TestLoaderInvariantsUnderRandomOps drives the loader with random Ensure
// and Prefetch sequences across all policies and checks the accounting
// invariants after every step:
//
//  1. pool usage never exceeds capacity,
//  2. pool usage equals the sum of resident engine footprints,
//  3. the engine just ensured is always resident,
//  4. loads - evictions == resident count (per full run, engines are never
//     silently lost or duplicated).
func TestLoaderInvariantsUnderRandomOps(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRR, EvictFIFO, EvictLargest} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			sys := zoo.Default(1)
			l := New(sys, policy)
			r := rng.New(uint64(17 + int(policy)))
			pairs := sys.RuntimePairs()

			checkPools := func(step int) {
				t.Helper()
				for _, pool := range sys.SoC.Pools {
					if pool.Used() > pool.Capacity {
						t.Fatalf("step %d: pool %s over capacity (%d > %d)",
							step, pool.Name, pool.Used(), pool.Capacity)
					}
					var sum int64
					for poolName, m := range l.resident {
						if poolName != pool.Name {
							continue
						}
						for _, res := range m {
							sum += res.bytes
						}
					}
					if sum != pool.Used() {
						t.Fatalf("step %d: pool %s used %d but residents sum to %d",
							step, pool.Name, pool.Used(), sum)
					}
				}
			}

			for step := 0; step < 500; step++ {
				switch r.Intn(10) {
				case 0: // occasional prefetch of a random subset
					n := 1 + r.Intn(4)
					var subset []zoo.Pair
					for _, idx := range r.Perm(len(pairs))[:n] {
						subset = append(subset, pairs[idx])
					}
					if _, err := l.Prefetch(subset); err != nil {
						t.Fatalf("step %d: prefetch: %v", step, err)
					}
				default:
					p := pairs[r.Intn(len(pairs))]
					if _, err := l.Ensure(p); err != nil {
						t.Fatalf("step %d: ensure %v: %v", step, p, err)
					}
					if !l.IsResident(p) {
						t.Fatalf("step %d: %v not resident after Ensure", step, p)
					}
				}
				checkPools(step)
			}

			stats := l.Stats()
			if stats.Loads-stats.Evictions != l.ResidentCount() {
				t.Fatalf("loads %d - evictions %d != resident %d",
					stats.Loads, stats.Evictions, l.ResidentCount())
			}
			if stats.LoadEnergyJ <= 0 || stats.LoadTimeSec <= 0 {
				t.Fatal("load costs not accumulated")
			}
		})
	}
}

// TestLoaderEvictionChoosesConsistently verifies that under memory pressure
// every policy eventually evicts and that total loads stay bounded by the
// request count.
func TestLoaderEvictionChoosesConsistently(t *testing.T) {
	sys := zoo.Default(1)
	// Tighten the SoC pool so only ~2 large engines fit.
	sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 1500*accel.MB)
	l := New(sys, EvictLRR)
	r := rng.New(5)
	large := []string{"YoloV7-E6E", "YoloV7-X", "YoloV7", "SSD-Resnet50"}
	requests := 0
	for step := 0; step < 200; step++ {
		model := large[r.Intn(len(large))]
		for _, p := range sys.RuntimePairs() {
			if p.Model == model && p.ProcID == "gpu" {
				if _, err := l.Ensure(p); err != nil {
					t.Fatalf("ensure %v: %v", p, err)
				}
				requests++
				break
			}
		}
	}
	stats := l.Stats()
	if stats.Evictions == 0 {
		t.Fatal("memory pressure produced no evictions")
	}
	if stats.Loads > requests {
		t.Fatalf("more loads (%d) than requests (%d)", stats.Loads, requests)
	}
}
