package loader

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/zoo"
)

func pairOf(t *testing.T, sys *zoo.System, model, procID string) zoo.Pair {
	t.Helper()
	for _, p := range sys.RuntimePairs() {
		if p.Model == model && p.ProcID == procID {
			return p
		}
	}
	t.Fatalf("no runtime pair %s@%s", model, procID)
	return zoo.Pair{}
}

func TestEnsureLoadsAndCharges(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	p := pairOf(t, sys, detmodel.YoloV7, "gpu")
	cost, err := l.Ensure(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lat <= 0 || cost.Energy <= 0 {
		t.Fatalf("first load should cost time and energy: %+v", cost)
	}
	if !l.IsResident(p) {
		t.Fatal("model not resident after Ensure")
	}
	if got := l.Stats().Loads; got != 1 {
		t.Fatalf("Loads = %d, want 1", got)
	}
	// Clock advanced by the load.
	if sys.SoC.Clock.Now() != cost.Lat {
		t.Fatal("load did not advance the virtual clock")
	}
}

func TestEnsureIdempotent(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	p := pairOf(t, sys, detmodel.YoloV7Tiny, "dla0")
	if _, err := l.Ensure(p); err != nil {
		t.Fatal(err)
	}
	cost, err := l.Ensure(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lat != 0 || cost.Energy != 0 {
		t.Fatalf("second Ensure should be free, got %+v", cost)
	}
	if l.Stats().Loads != 1 {
		t.Fatalf("Loads = %d after repeat Ensure", l.Stats().Loads)
	}
}

func TestGPUAndDLAEnginesAreSeparate(t *testing.T) {
	// The same model on GPU and DLA needs two engines (TensorRT builds
	// per-target), both in the shared SoC pool.
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	gpu := pairOf(t, sys, detmodel.YoloV7Tiny, "gpu")
	dla := pairOf(t, sys, detmodel.YoloV7Tiny, "dla0")
	if _, err := l.Ensure(gpu); err != nil {
		t.Fatal(err)
	}
	if l.IsResident(dla) {
		t.Fatal("DLA engine resident after loading only the GPU engine")
	}
	if _, err := l.Ensure(dla); err != nil {
		t.Fatal(err)
	}
	if l.ResidentCount() != 2 {
		t.Fatalf("ResidentCount = %d, want 2", l.ResidentCount())
	}
}

func TestDLAInstancesShareEngine(t *testing.T) {
	// dla0 and dla1 are the same Kind, so one engine serves both.
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	if _, err := l.Ensure(pairOf(t, sys, detmodel.YoloV7, "dla0")); err != nil {
		t.Fatal(err)
	}
	cost, err := l.Ensure(pairOf(t, sys, detmodel.YoloV7, "dla1"))
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lat != 0 {
		t.Fatal("dla1 should reuse the engine loaded via dla0")
	}
}

func TestIncompatiblePairRejected(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	// SSD-Resnet50 has no OAK-D support.
	bad := zoo.Pair{Model: detmodel.SSDResnet50, ProcID: "oakd", Kind: accel.KindOAKD}
	if _, err := l.Ensure(bad); err == nil {
		t.Fatal("incompatible pair should be rejected")
	}
}

func TestUnknownModelAndProc(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	if _, err := l.Ensure(zoo.Pair{Model: "ghost", ProcID: "gpu"}); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, err := l.Ensure(zoo.Pair{Model: detmodel.YoloV7, ProcID: "npu"}); err == nil {
		t.Fatal("unknown processor should error")
	}
}

// fillSoCPool loads models until the SoC pool cannot take the next engine
// without eviction, returning the order in which they were loaded.
func fillSoCPool(t *testing.T, sys *zoo.System, l *Loader) []zoo.Pair {
	t.Helper()
	loadOrder := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7E6E, "gpu"), // 1100 MB
		pairOf(t, sys, detmodel.YoloV7X, "gpu"),   // 800 MB -> 1900/2048
	}
	for _, p := range loadOrder {
		if _, err := l.Ensure(p); err != nil {
			t.Fatal(err)
		}
	}
	return loadOrder
}

func TestEvictionLRR(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	order := fillSoCPool(t, sys, l) // E6E then X resident; 148 MB free
	// Touch E6E so X becomes the least recently requested.
	if _, err := l.Ensure(order[0]); err != nil {
		t.Fatal(err)
	}
	// Loading YoloV7 (600 MB) must evict X (LRR), keeping E6E.
	v7 := pairOf(t, sys, detmodel.YoloV7, "gpu")
	if _, err := l.Ensure(v7); err != nil {
		t.Fatal(err)
	}
	if !l.IsResident(order[0]) {
		t.Fatal("LRR evicted the recently requested model")
	}
	if l.IsResident(order[1]) {
		t.Fatal("LRR kept the least recently requested model")
	}
	if l.Stats().Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
}

func TestEvictionFIFO(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictFIFO)
	order := fillSoCPool(t, sys, l)
	// Touch E6E; FIFO ignores recency and still evicts E6E (oldest load).
	if _, err := l.Ensure(order[0]); err != nil {
		t.Fatal(err)
	}
	v7 := pairOf(t, sys, detmodel.YoloV7, "gpu")
	if _, err := l.Ensure(v7); err != nil {
		t.Fatal(err)
	}
	if l.IsResident(order[0]) {
		t.Fatal("FIFO kept the oldest-loaded model")
	}
}

func TestEvictionLargest(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLargest)
	fillSoCPool(t, sys, l) // E6E (1100) + X (800)
	v7 := pairOf(t, sys, detmodel.YoloV7, "gpu")
	if _, err := l.Ensure(v7); err != nil {
		t.Fatal(err)
	}
	// Largest-first must have evicted E6E.
	if l.IsResident(pairOf(t, sys, detmodel.YoloV7E6E, "gpu")) {
		t.Fatal("largest-first kept the largest model")
	}
	if !l.IsResident(pairOf(t, sys, detmodel.YoloV7X, "gpu")) {
		t.Fatal("largest-first evicted more than needed")
	}
}

func TestActiveModelNeverEvictsItself(t *testing.T) {
	// Requesting a model that requires evicting everything must not evict
	// the engine being loaded.
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	fillSoCPool(t, sys, l)
	e6e := pairOf(t, sys, detmodel.YoloV7E6E, "gpu")
	// Re-request E6E after filling: already resident, stays.
	if _, err := l.Ensure(e6e); err != nil {
		t.Fatal(err)
	}
	if !l.IsResident(e6e) {
		t.Fatal("resident model vanished")
	}
}

func TestOversizedModelRejected(t *testing.T) {
	sys := zoo.Default(1)
	// Shrink the SoC pool below the smallest YOLO engine to exercise the
	// capacity guard.
	sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 10*accel.MB)
	l := New(sys, EvictLRR)
	if _, err := l.Ensure(pairOf(t, sys, detmodel.YoloV7, "gpu")); err == nil {
		t.Fatal("model larger than the pool should be rejected")
	}
}

func TestOAKDPoolIndependence(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	fillSoCPool(t, sys, l)
	// Loading onto the OAK-D must not disturb SoC residents.
	oak := pairOf(t, sys, detmodel.YoloV7, "oakd")
	if _, err := l.Ensure(oak); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Evictions != 0 {
		t.Fatal("OAK-D load evicted from the SoC pool")
	}
	if !l.IsResident(oak) {
		t.Fatal("OAK-D model not resident")
	}
}

func TestPrefetchFillsWithoutEvicting(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	// Prefetch the small models: Tiny GPU (100) + Tiny DLA (100) + MbV2-320
	// GPU (60) + MbV1 GPU (150) fit in 2048 MB.
	pairs := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7Tiny, "gpu"),
		pairOf(t, sys, detmodel.YoloV7Tiny, "dla0"),
		pairOf(t, sys, detmodel.SSDMobilenet320, "gpu"),
		pairOf(t, sys, detmodel.SSDMobilenetV1, "gpu"),
	}
	n, err := l.Prefetch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("prefetched %d, want 4", n)
	}
	if l.Stats().Evictions != 0 {
		t.Fatal("prefetch evicted")
	}
	// A second prefetch of the same set is a no-op.
	n, err = l.Prefetch(pairs)
	if err != nil || n != 0 {
		t.Fatalf("repeat prefetch loaded %d (err %v)", n, err)
	}
}

func TestPrefetchSkipsWhatDoesNotFit(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	fillSoCPool(t, sys, l) // 1900/2048 used, 148 free
	pairs := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7, "gpu"),          // 600 MB: skipped
		pairOf(t, sys, detmodel.SSDMobilenet320, "gpu"), // 60 MB: fits
	}
	n, err := l.Prefetch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("prefetched %d, want 1 (only the model that fits)", n)
	}
	if l.IsResident(pairs[0]) {
		t.Fatal("prefetch evicted to fit a large model")
	}
}

func TestPolicyString(t *testing.T) {
	if EvictLRR.String() == "" || EvictFIFO.String() == "" ||
		EvictLargest.String() == "" || EvictionPolicy(99).String() != "unknown" {
		t.Fatal("EvictionPolicy.String broken")
	}
}

func TestLoadDeterminism(t *testing.T) {
	run := func() float64 {
		sys := zoo.Default(5)
		l := New(sys, EvictLRR)
		for _, m := range []string{detmodel.YoloV7, detmodel.YoloV7Tiny, detmodel.SSDMobilenetV1} {
			if _, err := l.Ensure(pairOf(t, sys, m, "gpu")); err != nil {
				t.Fatal(err)
			}
		}
		return l.Stats().LoadEnergyJ
	}
	if run() != run() {
		t.Fatal("load costs not deterministic")
	}
}

func BenchmarkEnsureResident(b *testing.B) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	var p zoo.Pair
	for _, q := range sys.RuntimePairs() {
		if q.Model == detmodel.YoloV7Tiny && q.ProcID == "gpu" {
			p = q
		}
	}
	if _, err := l.Ensure(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = l.Ensure(p)
	}
}
