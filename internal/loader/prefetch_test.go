package loader

import (
	"testing"

	"repro/internal/detmodel"
	"repro/internal/zoo"
)

// TestPrefetchWithMidListNoMemorySkips pins the best-effort contract: an
// engine that does not fit mid-list is skipped with its ErrNoMemory
// swallowed, and loading continues with the pairs after it.
func TestPrefetchWithMidListNoMemorySkips(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	// 1100/2048 used: 948 MB free.
	if _, err := l.Ensure(pairOf(t, sys, detmodel.YoloV7E6E, "gpu")); err != nil {
		t.Fatal(err)
	}
	pairs := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7X, "gpu"),         // 800 MB: fits -> 148 free
		pairOf(t, sys, detmodel.YoloV7, "gpu"),          // 600 MB: skipped
		pairOf(t, sys, detmodel.YoloV7Tiny, "gpu"),      // 100 MB: fits -> 48 free
		pairOf(t, sys, detmodel.SSDResnet50, "gpu"),     // 400 MB: skipped
		pairOf(t, sys, detmodel.SSDMobilenet320, "gpu"), // 60 MB: skipped (48 free)
	}
	n, err := l.PrefetchWith(pairs, nil)
	if err != nil {
		t.Fatalf("mid-list no-memory must not abort the prefetch: %v", err)
	}
	if n != 2 {
		t.Fatalf("prefetched %d, want 2 (engines after a skipped one still load)", n)
	}
	for i, want := range []bool{true, false, true, false, false} {
		if got := l.IsResident(pairs[i]); got != want {
			t.Fatalf("pair %d (%s) resident=%v, want %v", i, pairs[i].Model, got, want)
		}
	}
	if l.Stats().Evictions != 0 {
		t.Fatal("demand prefetch evicted")
	}
}

// TestSpeculativeSkipsWhenPoolIsHeld pins that speculative prefetch never
// touches reference-held engines: with the pool held beyond reclaim, the
// load is skipped silently and residency is untouched.
func TestSpeculativeSkipsWhenPoolIsHeld(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	held := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7E6E, "gpu"), // 1100 MB
		pairOf(t, sys, detmodel.YoloV7X, "gpu"),   // 800 MB -> 148 free
	}
	for _, p := range held {
		if _, err := l.Ensure(p); err != nil {
			t.Fatal(err)
		}
		if err := l.Acquire(p); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.PrefetchSpeculative([]zoo.Pair{pairOf(t, sys, detmodel.YoloV7, "gpu")}, nil)
	if err != nil {
		t.Fatalf("unloadable speculative prefetch must be silent: %v", err)
	}
	if n != 0 {
		t.Fatalf("loaded %d engines into a fully held pool", n)
	}
	for _, p := range held {
		if !l.IsResident(p) {
			t.Fatalf("held engine %s disturbed by speculative prefetch", p.Model)
		}
	}
	if l.Stats().Evictions != 0 {
		t.Fatal("speculative prefetch evicted from a held pool")
	}
}

// TestSpeculativeSkipAndContinue mirrors the demand skip-and-continue
// contract on the speculative path: a pair whose reclaimable budget is
// short is skipped mid-list, later pairs still load.
func TestSpeculativeSkipAndContinue(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	// Hold 1900 of 2048 MB: 148 free, nothing reclaimable.
	for _, p := range []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7E6E, "gpu"),
		pairOf(t, sys, detmodel.YoloV7X, "gpu"),
	} {
		if _, err := l.Ensure(p); err != nil {
			t.Fatal(err)
		}
		if err := l.Acquire(p); err != nil {
			t.Fatal(err)
		}
	}
	pairs := []zoo.Pair{
		pairOf(t, sys, detmodel.YoloV7, "gpu"),      // 600 MB: skipped
		pairOf(t, sys, detmodel.YoloV7Tiny, "gpu"),  // 100 MB: fits free bytes
		pairOf(t, sys, detmodel.SSDResnet50, "gpu"), // 400 MB: skipped (48 free + 100 reclaimable spec)
	}
	n, err := l.PrefetchSpeculative(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("speculatively loaded %d, want 1", n)
	}
	if !l.IsResident(pairs[1]) || l.DemandResident(pairs[1]) {
		t.Fatal("speculative load must be resident but not demand-resident")
	}
}

// TestSpeculativeDisplacesColdDemand pins the cache-fill trade: a
// speculative load may displace unheld demand residents in policy order,
// so a confident prediction is not starved by a full pool of cold engines.
func TestSpeculativeDisplacesColdDemand(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	cold := pairOf(t, sys, detmodel.YoloV7E6E, "gpu") // 1100 MB, least recently requested
	warm := pairOf(t, sys, detmodel.YoloV7X, "gpu")   // 800 MB
	for _, p := range []zoo.Pair{cold, warm} {
		if _, err := l.Ensure(p); err != nil {
			t.Fatal(err)
		}
	}
	pred := pairOf(t, sys, detmodel.YoloV7, "gpu") // 600 MB needs displacement
	n, err := l.PrefetchSpeculative([]zoo.Pair{pred}, nil)
	if err != nil || n != 1 {
		t.Fatalf("speculative displacement load: n=%d err=%v", n, err)
	}
	if l.IsResident(cold) {
		t.Fatal("LRR victim survived speculative displacement")
	}
	if !l.DemandResident(warm) {
		t.Fatal("displacement took more than policy order required")
	}
	if !l.IsResident(pred) || l.DemandResident(pred) {
		t.Fatal("prediction must land as a speculative resident")
	}
}

// TestSpeculativeReclaimsSpecFirst pins the victim ordering: a speculative
// load reclaims other speculative residents before touching any demand
// resident.
func TestSpeculativeReclaimsSpecFirst(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	demand := pairOf(t, sys, detmodel.YoloV7X, "gpu") // 800 MB demand
	if _, err := l.Ensure(demand); err != nil {
		t.Fatal(err)
	}
	spec1 := pairOf(t, sys, detmodel.YoloV7, "gpu") // 600 MB spec -> 648 free
	if n, err := l.PrefetchSpeculative([]zoo.Pair{spec1}, nil); err != nil || n != 1 {
		t.Fatalf("first speculative load: n=%d err=%v", n, err)
	}
	spec2 := pairOf(t, sys, detmodel.YoloV7E6E, "gpu") // 1100 MB: must reclaim spec1
	if n, err := l.PrefetchSpeculative([]zoo.Pair{spec2}, nil); err != nil || n != 1 {
		t.Fatalf("second speculative load: n=%d err=%v", n, err)
	}
	if l.IsResident(spec1) {
		t.Fatal("older speculative resident survived a reclaim that needed its bytes")
	}
	if !l.DemandResident(demand) {
		t.Fatal("demand resident evicted while speculative bytes were reclaimable")
	}
	if !l.IsResident(spec2) {
		t.Fatal("second speculative load missing")
	}
}

// TestDemandPromotesSpeculative pins the hit path: a demand request for a
// speculatively resident engine promotes it in place — no second load is
// charged and the engine becomes demand-resident.
func TestDemandPromotesSpeculative(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	p := pairOf(t, sys, detmodel.YoloV7Tiny, "gpu")
	if n, err := l.PrefetchSpeculative([]zoo.Pair{p}, nil); err != nil || n != 1 {
		t.Fatalf("speculative load: n=%d err=%v", n, err)
	}
	loads := l.Stats().Loads
	cost, err := l.Ensure(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lat != 0 || cost.Energy != 0 {
		t.Fatalf("promotion must be free (the load already happened): %+v", cost)
	}
	if l.Stats().Loads != loads {
		t.Fatal("promotion charged a second load")
	}
	if !l.DemandResident(p) {
		t.Fatal("promoted engine not demand-resident")
	}
}

// TestFallbackIgnoresSpeculative pins the no-steering rule: a refused load
// never falls back to a speculative resident — only engines a prefetch-free
// run would have are candidates.
func TestFallbackIgnoresSpeculative(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	spec := pairOf(t, sys, detmodel.YoloV7Tiny, "gpu")
	if n, err := l.PrefetchSpeculative([]zoo.Pair{spec}, nil); err != nil || n != 1 {
		t.Fatalf("speculative load: n=%d err=%v", n, err)
	}
	if _, ok := l.ResidentFallback(pairOf(t, sys, detmodel.YoloV7, "gpu")); ok {
		t.Fatal("fallback adopted a speculative resident")
	}
	demand := pairOf(t, sys, detmodel.SSDMobilenet320, "gpu")
	if _, err := l.Ensure(demand); err != nil {
		t.Fatal(err)
	}
	got, ok := l.ResidentFallback(pairOf(t, sys, detmodel.YoloV7, "gpu"))
	if !ok || got.Model != demand.Model {
		t.Fatalf("fallback = %v ok=%v, want the demand resident %s", got, ok, demand.Model)
	}
}
