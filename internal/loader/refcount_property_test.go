package loader

import (
	"errors"
	"testing"

	"repro/internal/accel"
	"repro/internal/rng"
	"repro/internal/zoo"
)

// refcountModel is the oracle for the property test: which engine each
// virtual stream currently holds. Loader refcounts must always equal the
// model's per-key hold counts.
type refcountModel struct {
	holds map[int]zoo.Pair // stream id -> held pair
}

// TestLoaderRefcountInvariantsUnderChurn drives the loader with random
// interleavings of the serving runtime's residency verbs — Ensure (unheld
// traffic), Acquire/Release (stream holds), engine swaps (release + ensure +
// acquire with the ErrNoMemory fallback), stream closes, and the
// checkpoint/migration dance (release every hold mid-flight, then re-acquire
// on the same pools) — under a memory-tight pool that forces eviction, and
// checks after every operation that:
//
//  1. no refcount ever goes negative (Release without Acquire errors),
//  2. every held engine stays resident (held engines are never evicted),
//  3. loader refcounts equal the model's hold counts exactly (no leaks),
//  4. closing every stream drains TotalRefs to zero.
func TestLoaderRefcountInvariantsUnderChurn(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRR, EvictFIFO, EvictLargest} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			sys := zoo.Default(1)
			// Tight pool: a few large engines exhaust it, so eviction and
			// ErrNoMemory arbitration both run constantly.
			sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 1500*accel.MB)
			l := New(sys, policy)
			r := rng.New(uint64(23 + int(policy)))
			pairs := sys.RuntimePairs()
			model := &refcountModel{holds: map[int]zoo.Pair{}}
			const streams = 6

			check := func(step int) {
				t.Helper()
				want := map[string]int{}
				for _, p := range model.holds {
					pi, err := l.info(p)
					if err != nil {
						t.Fatalf("step %d: info %v: %v", step, p, err)
					}
					want[pi.pool.Name+"/"+pi.key]++
					if !l.IsResident(p) {
						t.Fatalf("step %d: held engine %v was evicted", step, p)
					}
				}
				total := 0
				for poolName, m := range l.resident {
					for key, res := range m {
						if res.refs < 0 {
							t.Fatalf("step %d: negative refcount %d on %s", step, res.refs, key)
						}
						if res.refs != want[poolName+"/"+key] {
							t.Fatalf("step %d: %s has %d refs, model says %d",
								step, key, res.refs, want[poolName+"/"+key])
						}
						total += res.refs
					}
				}
				if total != l.TotalRefs() || total != len(model.holds) {
					t.Fatalf("step %d: TotalRefs %d, summed %d, model %d",
						step, l.TotalRefs(), total, len(model.holds))
				}
			}

			// swapTo moves stream id's hold to target, mirroring the serving
			// engine's Acquire path: release the old hold, ensure the new
			// engine, fall back to the still-resident old engine on
			// ErrNoMemory.
			swapTo := func(step, id int, target zoo.Pair) {
				t.Helper()
				old, held := model.holds[id]
				if held && old == target {
					if _, err := l.Ensure(target); err != nil {
						t.Fatalf("step %d: refresh %v: %v", step, target, err)
					}
					return
				}
				if held {
					if err := l.Release(old); err != nil {
						t.Fatalf("step %d: release %v: %v", step, old, err)
					}
					delete(model.holds, id)
				}
				_, err := l.Ensure(target)
				if errors.Is(err, ErrNoMemory) {
					if held && l.IsResident(old) {
						if err := l.Acquire(old); err != nil {
							t.Fatalf("step %d: re-acquire fallback %v: %v", step, old, err)
						}
						model.holds[id] = old
					}
					return
				}
				if err != nil {
					t.Fatalf("step %d: ensure %v: %v", step, target, err)
				}
				if err := l.Acquire(target); err != nil {
					t.Fatalf("step %d: acquire %v: %v", step, target, err)
				}
				model.holds[id] = target
			}

			for step := 0; step < 800; step++ {
				id := r.Intn(streams)
				target := pairs[r.Intn(len(pairs))]
				switch r.Intn(12) {
				case 0, 1: // plain unheld traffic; ErrNoMemory is legal here
					if _, err := l.Ensure(target); err != nil && !errors.Is(err, ErrNoMemory) {
						t.Fatalf("step %d: ensure %v: %v", step, target, err)
					}
				case 2: // stream departs
					if p, ok := model.holds[id]; ok {
						if err := l.Release(p); err != nil {
							t.Fatalf("step %d: close release %v: %v", step, p, err)
						}
						delete(model.holds, id)
					}
				case 3: // a Release the runtime never issues must error, not corrupt
					if _, ok := model.holds[id]; !ok && l.IsResident(target) && l.Refs(target) == 0 {
						if err := l.Release(target); err == nil {
							t.Fatalf("step %d: unmatched release of %v succeeded", step, target)
						}
					}
				case 4: // mid-migration: checkpoint every stream (release all)...
					saved := map[int]zoo.Pair{}
					for sid, p := range model.holds {
						saved[sid] = p
						if err := l.Release(p); err != nil {
							t.Fatalf("step %d: migration release %v: %v", step, p, err)
						}
					}
					model.holds = map[int]zoo.Pair{}
					check(step)
					// ...then restore in stream order, re-acquiring through
					// the same ensure-or-fallback dance.
					for sid := 0; sid < streams; sid++ {
						if p, ok := saved[sid]; ok {
							swapTo(step, sid, p)
						}
					}
				default: // the common case: a stream swaps engines
					swapTo(step, id, target)
				}
				check(step)
			}

			for id, p := range model.holds {
				if err := l.Release(p); err != nil {
					t.Fatalf("final release stream %d %v: %v", id, p, err)
				}
			}
			if n := l.TotalRefs(); n != 0 {
				t.Fatalf("TotalRefs %d after closing every stream", n)
			}
		})
	}
}
