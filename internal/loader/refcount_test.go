package loader

import (
	"errors"
	"testing"

	"repro/internal/accel"
	"repro/internal/detmodel"
	"repro/internal/zoo"
)

// TestAcquireRequiresResidency pins the reference API contract: references
// attach only to resident engines, and releases must pair with acquires.
func TestAcquireRequiresResidency(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	p := pairOf(t, sys, detmodel.YoloV7, "gpu")
	if err := l.Acquire(p); err == nil {
		t.Fatal("acquire of a non-resident engine should fail")
	}
	if _, err := l.Ensure(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(p); err != nil {
		t.Fatal(err)
	}
	if got := l.Refs(p); got != 2 {
		t.Fatalf("Refs = %d, want 2", got)
	}
	// dla0 and dla1 share one engine, so references stack across processors
	// of the same kind.
	dla0 := pairOf(t, sys, detmodel.YoloV7, "dla0")
	dla1 := pairOf(t, sys, detmodel.YoloV7, "dla1")
	if _, err := l.Ensure(dla0); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(dla0); err != nil {
		t.Fatal(err)
	}
	if got := l.Refs(dla1); got != 1 {
		t.Fatalf("Refs via dla1 = %d, want the shared engine's 1", got)
	}
	if err := l.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(p); err == nil {
		t.Fatal("release without a matching acquire should fail")
	}
}

// TestEvictionRefusedWhileHeld is the arbitration core: a load that could
// only fit by evicting a reference-held engine fails with ErrNoMemory and
// leaves residency untouched.
func TestEvictionRefusedWhileHeld(t *testing.T) {
	sys := zoo.Default(1)
	l := New(sys, EvictLRR)
	e6e := pairOf(t, sys, detmodel.YoloV7E6E, "gpu") // 1100 MB
	x := pairOf(t, sys, detmodel.YoloV7X, "gpu")     // 800 MB -> 1900/2048
	for _, p := range []zoo.Pair{e6e, x} {
		if _, err := l.Ensure(p); err != nil {
			t.Fatal(err)
		}
		if err := l.Acquire(p); err != nil {
			t.Fatal(err)
		}
	}
	// YoloV7 (600 MB) needs an eviction, but both residents are held.
	v7 := pairOf(t, sys, detmodel.YoloV7, "gpu")
	_, err := l.Ensure(v7)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("Ensure under full refs = %v, want ErrNoMemory", err)
	}
	if !l.IsResident(e6e) || !l.IsResident(x) {
		t.Fatal("refused load evicted a held engine")
	}
	if l.Stats().Evictions != 0 {
		t.Fatal("refused load recorded evictions")
	}
	// Releasing one hold makes that engine (and only that engine) fair game.
	if err := l.Release(x); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ensure(v7); err != nil {
		t.Fatal(err)
	}
	if !l.IsResident(e6e) {
		t.Fatal("eviction took the still-held engine")
	}
	if l.IsResident(x) {
		t.Fatal("eviction spared the released engine")
	}
}

// TestEvictionOrderingWithZeroRefs pins that the acquire/release lifecycle
// leaves the historical eviction order untouched once all references are
// dropped: LRR still takes the least recently requested, FIFO the oldest
// load, largest-first the biggest engine.
func TestEvictionOrderingWithZeroRefs(t *testing.T) {
	cases := []struct {
		policy      EvictionPolicy
		wantEvicted string // model evicted when YoloV7 (600 MB) arrives
	}{
		{EvictLRR, detmodel.YoloV7X},       // X is least recently requested
		{EvictFIFO, detmodel.YoloV7E6E},    // E6E loaded first
		{EvictLargest, detmodel.YoloV7E6E}, // E6E is the biggest
	}
	for _, c := range cases {
		sys := zoo.Default(1)
		l := New(sys, c.policy)
		e6e := pairOf(t, sys, detmodel.YoloV7E6E, "gpu")
		x := pairOf(t, sys, detmodel.YoloV7X, "gpu")
		// Load, hold and fully release both engines, then touch E6E so LRR
		// ranks X as least recently requested.
		for _, p := range []zoo.Pair{e6e, x} {
			if _, err := l.Ensure(p); err != nil {
				t.Fatal(err)
			}
			if err := l.Acquire(p); err != nil {
				t.Fatal(err)
			}
			if err := l.Release(p); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Ensure(e6e); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Ensure(pairOf(t, sys, detmodel.YoloV7, "gpu")); err != nil {
			t.Fatalf("%v: %v", c.policy, err)
		}
		var evicted string
		for _, m := range []string{detmodel.YoloV7E6E, detmodel.YoloV7X} {
			if !l.IsResident(pairOf(t, sys, m, "gpu")) {
				evicted = m
			}
		}
		if evicted != c.wantEvicted {
			t.Errorf("%v evicted %q, want %q", c.policy, evicted, c.wantEvicted)
		}
	}
}

// TestNoMemoryWithoutRefsStillErrNoMemory: even with no references in play,
// an impossible fit reports ErrNoMemory before tearing anything down.
func TestNoMemoryWithoutRefsStillErrNoMemory(t *testing.T) {
	sys := zoo.Default(1)
	// Pool fits exactly one large engine.
	sys.SoC.Pools[accel.SoCPoolName] = accel.NewMemPool(accel.SoCPoolName, 1200*accel.MB)
	l := New(sys, EvictLRR)
	e6e := pairOf(t, sys, detmodel.YoloV7E6E, "gpu")
	if _, err := l.Ensure(e6e); err != nil {
		t.Fatal(err)
	}
	// 1100 resident + 800 requested > 1200: must evict E6E, which is legal —
	// succeeds. Then re-requesting E6E (1100) against X (800) held is not.
	x := pairOf(t, sys, detmodel.YoloV7X, "gpu")
	if _, err := l.Ensure(x); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(x); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Ensure(e6e); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	if !l.IsResident(x) {
		t.Fatal("failed load disturbed the held engine")
	}
}
