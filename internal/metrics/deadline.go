package metrics

import (
	"fmt"

	"repro/internal/pipeline"
)

// DeadlineStats models a live camera feeding the detector at a fixed frame
// period: frame i arrives at i·period, processing starts at the later of
// its arrival and the previous frame's completion, and the frame is on time
// when it completes before the next arrival. Sustained overruns accumulate
// backlog, which is how a too-slow single-model deployment degrades in
// practice — the latency constraint the paper's scheduler optimizes under.
type DeadlineStats struct {
	PeriodSec float64
	// OnTime counts frames completed within their period.
	OnTime int
	// Late counts frames that completed after their deadline.
	Late int
	// MaxBacklogSec is the worst accumulated processing backlog.
	MaxBacklogSec float64
	// AvgLatencySec is the mean arrival-to-completion latency (queueing
	// included), as opposed to pure processing time.
	AvgLatencySec float64
}

// OnTimeRate returns the fraction of frames meeting their deadline.
func (d DeadlineStats) OnTimeRate() float64 {
	total := d.OnTime + d.Late
	if total == 0 {
		return 0
	}
	return float64(d.OnTime) / float64(total)
}

// String summarizes the stats.
func (d DeadlineStats) String() string {
	return fmt.Sprintf("%.1f%% on time at %.0f fps (max backlog %.2fs, avg latency %.3fs)",
		d.OnTimeRate()*100, 1/d.PeriodSec, d.MaxBacklogSec, d.AvgLatencySec)
}

// Deadline replays a result's per-frame processing times against a camera
// period and returns the deadline statistics. It panics-free handles empty
// results and non-positive periods (returning zero stats).
func Deadline(res *pipeline.Result, periodSec float64) DeadlineStats {
	d := DeadlineStats{PeriodSec: periodSec}
	if periodSec <= 0 || len(res.Records) == 0 {
		return d
	}
	var done float64 // completion time of the previous frame
	var latencySum float64
	for i, rec := range res.Records {
		arrival := float64(i) * periodSec
		start := arrival
		if done > start {
			start = done
		}
		done = start + rec.LatSec
		latency := done - arrival
		latencySum += latency
		if backlog := start - arrival; backlog > d.MaxBacklogSec {
			d.MaxBacklogSec = backlog
		}
		if done <= arrival+periodSec {
			d.OnTime++
		} else {
			d.Late++
		}
	}
	d.AvgLatencySec = latencySum / float64(len(res.Records))
	return d
}
