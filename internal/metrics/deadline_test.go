package metrics

import (
	"math"
	"testing"

	"repro/internal/pipeline"
)

func resultWithLatencies(lats ...float64) *pipeline.Result {
	res := &pipeline.Result{}
	for i, l := range lats {
		res.Records = append(res.Records, pipeline.FrameRecord{Index: i, LatSec: l})
	}
	return res
}

func TestDeadlineAllOnTime(t *testing.T) {
	res := resultWithLatencies(0.01, 0.02, 0.01)
	d := Deadline(res, 1.0/30)
	if d.Late != 0 || d.OnTime != 3 {
		t.Fatalf("stats: %+v", d)
	}
	if d.OnTimeRate() != 1 {
		t.Fatalf("rate: %v", d.OnTimeRate())
	}
	if d.MaxBacklogSec != 0 {
		t.Fatalf("backlog should be zero: %v", d.MaxBacklogSec)
	}
}

func TestDeadlineAllLate(t *testing.T) {
	// 100 ms processing at 30 fps: every frame misses, backlog grows.
	res := resultWithLatencies(0.1, 0.1, 0.1, 0.1)
	d := Deadline(res, 1.0/30)
	if d.OnTime != 0 || d.Late != 4 {
		t.Fatalf("stats: %+v", d)
	}
	if d.MaxBacklogSec <= 0 {
		t.Fatal("sustained overrun must accumulate backlog")
	}
	// Backlog after frame i is i*(0.1 - period); max at the last frame.
	want := 3 * (0.1 - 1.0/30)
	if math.Abs(d.MaxBacklogSec-want) > 1e-9 {
		t.Fatalf("max backlog %v, want %v", d.MaxBacklogSec, want)
	}
}

func TestDeadlineMixed(t *testing.T) {
	// One slow frame followed by fast ones: the slow frame is late, the
	// next frame absorbs the backlog, later frames recover.
	period := 0.033
	res := resultWithLatencies(0.1, 0.005, 0.005, 0.005)
	d := Deadline(res, period)
	if d.Late == 0 {
		t.Fatal("slow frame should be late")
	}
	if d.OnTime == 0 {
		t.Fatal("fast tail should recover")
	}
	if d.AvgLatencySec <= 0.005 {
		t.Fatalf("avg latency must include queueing: %v", d.AvgLatencySec)
	}
}

func TestDeadlineQueueingLatency(t *testing.T) {
	// Two frames, first takes 2 periods: second starts late and its
	// arrival-to-completion latency includes the wait.
	period := 0.1
	res := resultWithLatencies(0.2, 0.05)
	d := Deadline(res, period)
	// Frame 1 arrives at 0.1, starts at 0.2, done at 0.25 -> latency 0.15.
	want := (0.2 + 0.15) / 2
	if math.Abs(d.AvgLatencySec-want) > 1e-9 {
		t.Fatalf("avg latency %v, want %v", d.AvgLatencySec, want)
	}
}

func TestDeadlineDegenerate(t *testing.T) {
	if d := Deadline(&pipeline.Result{}, 0.033); d.OnTime != 0 || d.Late != 0 {
		t.Fatal("empty result should be zero stats")
	}
	if d := Deadline(resultWithLatencies(0.01), 0); d.OnTimeRate() != 0 {
		t.Fatal("non-positive period should be zero stats")
	}
}

func TestDeadlineString(t *testing.T) {
	d := Deadline(resultWithLatencies(0.01, 0.01), 1.0/30)
	if s := d.String(); s == "" {
		t.Fatal("empty String")
	}
}
