package metrics

import "sort"

// LatencyProfile summarizes a per-frame latency series: the tail statistics
// the multi-stream serving experiments report alongside the averages.
type LatencyProfile struct {
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

// Latencies reduces a latency sample series (seconds) to its profile. An
// empty series yields the zero profile.
func Latencies(samples []float64) LatencyProfile {
	if len(samples) == 0 {
		return LatencyProfile{}
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyProfile{
		Mean: sum / float64(len(sorted)),
		P50:  percentileSorted(sorted, 0.50),
		P95:  percentileSorted(sorted, 0.95),
		P99:  percentileSorted(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of samples by the
// nearest-rank method, without mutating the input. Out-of-range q clamps;
// an empty series yields 0.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

// percentileSorted is the nearest-rank quantile over an ascending series:
// the smallest sample with at least q of the mass at or below it.
func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
