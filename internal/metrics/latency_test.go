package metrics

import "testing"

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {0.8, 4}, {0.81, 5}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); got != c.want {
			t.Errorf("Percentile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if samples[0] != 5 || samples[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty Percentile = %v, want 0", got)
	}
}

func TestLatenciesProfile(t *testing.T) {
	p := Latencies([]float64{0.1, 0.2, 0.3, 0.4})
	if p.Mean != 0.25 {
		t.Errorf("Mean = %v, want 0.25", p.Mean)
	}
	if p.P50 != 0.2 {
		t.Errorf("P50 = %v, want 0.2", p.P50)
	}
	if p.P99 != 0.4 || p.Max != 0.4 {
		t.Errorf("P99/Max = %v/%v, want 0.4", p.P99, p.Max)
	}
	if z := Latencies(nil); z != (LatencyProfile{}) {
		t.Errorf("empty profile = %+v", z)
	}
}
