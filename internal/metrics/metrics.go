// Package metrics aggregates per-frame pipeline records into the summary
// statistics the paper reports: average IoU, per-frame time and energy,
// success rate (fraction of frames with IoU ≥ 0.5), non-GPU share, swap
// counts and pairs used (Table III), plus the correlation statistics behind
// the sensitivity analysis of Fig. 5.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
)

// SuccessIoU is the paper's success threshold: a frame counts as successful
// when its IoU is at least 0.5.
const SuccessIoU = 0.5

// Summary is one method's aggregate over one or more scenarios — a row of
// Table III.
type Summary struct {
	Method      string
	Scenarios   int
	Frames      int
	AvgIoU      float64
	AvgTimeSec  float64
	AvgEnergyJ  float64
	SuccessRate float64
	NonGPUFrac  float64
	// Swaps is the total number of pair changes; PairsUsed the mean number
	// of distinct (model, kind) pairs per scenario (Table III reports the
	// average, e.g. SHIFT's 4.3).
	Swaps     int
	PairsUsed float64
}

// Summarize reduces a single result to its summary.
func Summarize(res *pipeline.Result) Summary {
	s := Summary{Method: res.Method, Scenarios: 1, Frames: len(res.Records)}
	if s.Frames == 0 {
		return s
	}
	success := 0
	for _, r := range res.Records {
		s.AvgIoU += r.IoU
		s.AvgTimeSec += r.LatSec
		s.AvgEnergyJ += r.EnergyJ
		if r.IoU >= SuccessIoU {
			success++
		}
	}
	n := float64(s.Frames)
	s.AvgIoU /= n
	s.AvgTimeSec /= n
	s.AvgEnergyJ /= n
	s.SuccessRate = float64(success) / n
	s.NonGPUFrac = pipeline.NonGPUFraction(res)
	s.Swaps = pipeline.SwapCount(res)
	s.PairsUsed = float64(pipeline.PairsUsed(res))
	return s
}

// Combine merges per-scenario summaries of the same method into the
// frame-weighted overall summary (how Table III's averages are formed).
// Swap counts are averaged per scenario, as in the paper's table.
func Combine(summaries []Summary) (Summary, error) {
	if len(summaries) == 0 {
		return Summary{}, fmt.Errorf("metrics: no summaries to combine")
	}
	out := Summary{Method: summaries[0].Method}
	totalFrames := 0
	totalSwaps := 0
	var pairsSum float64
	for _, s := range summaries {
		if s.Method != out.Method {
			return Summary{}, fmt.Errorf("metrics: mixed methods %q and %q", out.Method, s.Method)
		}
		out.Scenarios += s.Scenarios
		totalFrames += s.Frames
		n := float64(s.Frames)
		out.AvgIoU += s.AvgIoU * n
		out.AvgTimeSec += s.AvgTimeSec * n
		out.AvgEnergyJ += s.AvgEnergyJ * n
		out.SuccessRate += s.SuccessRate * n
		out.NonGPUFrac += s.NonGPUFrac * n
		totalSwaps += s.Swaps
		pairsSum += s.PairsUsed
	}
	out.Frames = totalFrames
	if totalFrames > 0 {
		n := float64(totalFrames)
		out.AvgIoU /= n
		out.AvgTimeSec /= n
		out.AvgEnergyJ /= n
		out.SuccessRate /= n
		out.NonGPUFrac /= n
	}
	out.Swaps = int(math.Round(float64(totalSwaps) / float64(len(summaries))))
	out.PairsUsed = pairsSum / float64(len(summaries))
	return out, nil
}

// EfficiencySeries returns the per-frame IoU-per-Joule series of a result —
// the quantity plotted in Fig. 2. Frames with zero energy yield zero.
func EfficiencySeries(res *pipeline.Result) []float64 {
	out := make([]float64, len(res.Records))
	for i, r := range res.Records {
		if r.EnergyJ > 0 {
			out[i] = r.IoU / r.EnergyJ
		}
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either series is constant or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// MovingAverage smooths a series with a centered window of the given width
// (used when rendering the Fig. 2-4 timelines).
func MovingAverage(series []float64, window int) []float64 {
	if window <= 1 {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, len(series))
	half := window / 2
	for i := range series {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(series) {
			hi = len(series)
		}
		var sum float64
		for _, v := range series[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Welford accumulates running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }
