package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/accel"
	"repro/internal/pipeline"
	"repro/internal/zoo"
)

func rec(iou, lat, energy float64, kind accel.Kind, swapped bool) pipeline.FrameRecord {
	return pipeline.FrameRecord{
		Pair:    zoo.Pair{Model: "m", ProcID: "p", Kind: kind},
		IoU:     iou,
		LatSec:  lat,
		EnergyJ: energy,
		Swapped: swapped,
	}
}

func TestSummarizeBasics(t *testing.T) {
	res := &pipeline.Result{Method: "test", Records: []pipeline.FrameRecord{
		rec(0.6, 0.1, 1.0, accel.KindGPU, false),
		rec(0.4, 0.2, 2.0, accel.KindDLA, true),
	}}
	s := Summarize(res)
	if s.Method != "test" || s.Frames != 2 {
		t.Fatalf("bad header: %+v", s)
	}
	if math.Abs(s.AvgIoU-0.5) > 1e-12 {
		t.Fatalf("AvgIoU = %v", s.AvgIoU)
	}
	if math.Abs(s.AvgTimeSec-0.15) > 1e-12 || math.Abs(s.AvgEnergyJ-1.5) > 1e-12 {
		t.Fatalf("time/energy: %+v", s)
	}
	if s.SuccessRate != 0.5 {
		t.Fatalf("SuccessRate = %v", s.SuccessRate)
	}
	if s.NonGPUFrac != 0.5 || s.Swaps != 1 || s.PairsUsed != 2 {
		t.Fatalf("platform metrics: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&pipeline.Result{Method: "x"})
	if s.Frames != 0 || s.AvgIoU != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestCombineWeightsByFrames(t *testing.T) {
	a := Summary{Method: "m", Scenarios: 1, Frames: 100, AvgIoU: 0.6, AvgTimeSec: 0.1,
		AvgEnergyJ: 1, SuccessRate: 0.7, NonGPUFrac: 0.5, Swaps: 10, PairsUsed: 4}
	b := Summary{Method: "m", Scenarios: 1, Frames: 300, AvgIoU: 0.4, AvgTimeSec: 0.3,
		AvgEnergyJ: 3, SuccessRate: 0.5, NonGPUFrac: 0.1, Swaps: 30, PairsUsed: 6}
	c, err := Combine([]Summary{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if c.Frames != 400 || c.Scenarios != 2 {
		t.Fatalf("combined counts: %+v", c)
	}
	if math.Abs(c.AvgIoU-0.45) > 1e-12 {
		t.Fatalf("weighted IoU = %v, want 0.45", c.AvgIoU)
	}
	if c.Swaps != 20 {
		t.Fatalf("swaps = %v, want mean 20", c.Swaps)
	}
	if c.PairsUsed != 5 {
		t.Fatalf("pairs used = %v, want 5", c.PairsUsed)
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(nil); err == nil {
		t.Fatal("empty combine should fail")
	}
	if _, err := Combine([]Summary{{Method: "a"}, {Method: "b"}}); err == nil {
		t.Fatal("mixed methods should fail")
	}
}

func TestEfficiencySeries(t *testing.T) {
	res := &pipeline.Result{Records: []pipeline.FrameRecord{
		rec(0.5, 0.1, 2.0, accel.KindGPU, false),
		rec(0.5, 0.1, 0, accel.KindGPU, false),
	}}
	es := EfficiencySeries(res)
	if es[0] != 0.25 {
		t.Fatalf("efficiency = %v, want 0.25", es[0])
	}
	if es[1] != 0 {
		t.Fatal("zero-energy frame should yield 0 efficiency")
	}
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson positive = %v", r)
	}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson negative = %v", r)
	}
	if r := Pearson(x, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Fatalf("Pearson constant = %v", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Fatalf("Pearson length mismatch = %v", r)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		x, y := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	s := []float64{0, 10, 0, 10, 0}
	sm := MovingAverage(s, 3)
	if len(sm) != len(s) {
		t.Fatal("length changed")
	}
	// Interior points average their neighborhood.
	if math.Abs(sm[2]-20.0/3) > 1e-12 {
		t.Fatalf("sm[2] = %v", sm[2])
	}
	// Window 1 is identity.
	id := MovingAverage(s, 1)
	for i := range s {
		if id[i] != s[i] {
			t.Fatal("window 1 not identity")
		}
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("std = %v", w.Std())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range vals {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var varSum float64
		for _, v := range vals {
			varSum += (v - mean) * (v - mean)
		}
		variance := varSum / float64(len(vals))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
