package obs

import (
	"sort"
	"time"
)

// Attribution is the recorder's latency decomposition over every served
// frame: where arrival→completion time went, overall and over the p99 tail.
// Each share is a fraction of the summed end-to-end latency of the frames
// considered; the four shares sum to 1 (up to float rounding — the
// underlying Duration components sum bit-exactly, property-tested in
// internal/fleet).
type Attribution struct {
	// Frames is the attributed frame-span count; TotalSec their summed
	// end-to-end latency.
	Frames   int
	TotalSec float64
	// QueueShare, SwapShare, ExecShare and InterferenceShare split the
	// total across the four components.
	QueueShare        float64
	SwapShare         float64
	ExecShare         float64
	InterferenceShare float64

	// P99Sec is the nearest-rank p99 frame latency; TailFrames counts the
	// frames at or above it, and the *OfP99 shares decompose those tail
	// frames' summed latency — SwapStallShareOfP99 is the headline the
	// swap-prefetch roadmap item is gated on.
	P99Sec                 float64
	TailFrames             int
	QueueShareOfP99        float64
	SwapStallShareOfP99    float64
	ExecShareOfP99         float64
	InterferenceShareOfP99 float64
}

// Attribution reduces the recorder's frame spans to the latency
// decomposition. Sums run in the integer Duration domain; only the final
// shares divide into float64, so the reduction is deterministic and
// independent of region count (the span list itself is).
func (r *Recorder) Attribution() Attribution {
	var a Attribution
	var total, queue, swap, exec, wait time.Duration
	lats := make([]float64, 0, 1024)
	for _, sp := range r.spans {
		if sp.Kind != SpanFrame {
			continue
		}
		a.Frames++
		total += sp.Dur()
		queue += sp.Queue
		swap += sp.Swap
		exec += sp.Exec
		wait += sp.Wait
		lats = append(lats, sp.Dur().Seconds())
	}
	if a.Frames == 0 {
		return a
	}
	a.TotalSec = total.Seconds()
	if total > 0 {
		a.QueueShare = float64(queue) / float64(total)
		a.SwapShare = float64(swap) / float64(total)
		a.ExecShare = float64(exec) / float64(total)
		a.InterferenceShare = float64(wait) / float64(total)
	}
	a.P99Sec = p99(lats)
	// The tail set: frames whose latency is at or above the nearest-rank
	// p99 sample. Seconds() of a Duration is exact enough here — the
	// threshold is itself one of the samples, so >= matches it exactly.
	var tTotal, tQueue, tSwap, tExec, tWait time.Duration
	for _, sp := range r.spans {
		if sp.Kind != SpanFrame || sp.Dur().Seconds() < a.P99Sec {
			continue
		}
		a.TailFrames++
		tTotal += sp.Dur()
		tQueue += sp.Queue
		tSwap += sp.Swap
		tExec += sp.Exec
		tWait += sp.Wait
	}
	if tTotal > 0 {
		a.QueueShareOfP99 = float64(tQueue) / float64(tTotal)
		a.SwapStallShareOfP99 = float64(tSwap) / float64(tTotal)
		a.ExecShareOfP99 = float64(tExec) / float64(tTotal)
		a.InterferenceShareOfP99 = float64(tWait) / float64(tTotal)
	}
	return a
}

// p99 is the nearest-rank p99 — the same reduction internal/metrics uses,
// restated here because obs sits below metrics in the import graph (the
// runtime engine links against obs). Values must agree bit-for-bit with
// metrics.Latencies(samples).P99, which the fleet tests assert.
func p99(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	const q = 0.99
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
