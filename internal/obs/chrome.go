package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export: the recorder's span list rendered as the JSON
// object format Perfetto and chrome://tracing load (one "X" complete event
// per interval span, "i" instant events for points, with process/thread
// metadata naming devices and streams). Everything is emitted in
// deterministic order — devices and streams sorted by name, spans in global
// event order — so the output is golden-testable byte for byte.

// chromeEvent is one trace event. Field order is the serialization order.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries span labels and, for frame spans, the latency
// decomposition in microseconds.
type chromeArgs struct {
	Name   string `json:"name,omitempty"` // metadata payload
	Stream string `json:"stream,omitempty"`
	Model  string `json:"model,omitempty"`
	Proc   string `json:"proc,omitempty"`
	Frame  *int   `json:"frame,omitempty"`

	WaitUs  *float64 `json:"wait_us,omitempty"`
	QueueUs *float64 `json:"queue_us,omitempty"`
	SwapUs  *float64 `json:"swap_us,omitempty"`
	ExecUs  *float64 `json:"exec_us,omitempty"`
	Missed  *bool    `json:"missed,omitempty"`
}

// us converts a virtual duration to trace microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func usp(d time.Duration) *float64 { v := us(d); return &v }

// devicePseudo is the process name device-less spans (arrivals) file under.
const devicePseudo = "fleet"

// category groups span kinds for trace filtering.
func category(k SpanKind) string {
	switch k {
	case SpanExec, SpanLoad, SpanLoadHit, SpanPrefetch, SpanPrefetchHit:
		return "engine"
	case SpanFrame:
		return "frame"
	default:
		return "lifecycle"
	}
}

// WriteChromeTrace renders the recorded spans as Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	// Deterministic pid/tid assignment: pid 0 is the fleet pseudo-process,
	// devices take 1..D in name order; tid 0 is each process's device-level
	// track, streams take 1..S in name order (global tids — a stream keeps
	// its tid across migrations, which is what makes them followable).
	devSet := map[string]bool{}
	strSet := map[string]bool{}
	for _, sp := range r.spans {
		if sp.Device != "" {
			devSet[sp.Device] = true
		}
		if sp.Stream != "" {
			strSet[sp.Stream] = true
		}
	}
	devs := make([]string, 0, len(devSet))
	for d := range devSet {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	pids := map[string]int{"": 0}
	for i, d := range devs {
		pids[d] = i + 1
	}
	streams := make([]string, 0, len(strSet))
	for s := range strSet {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	tids := map[string]int{"": 0}
	for i, s := range streams {
		tids[s] = i + 1
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	// Metadata: name every process and thread track up front.
	meta := func(kind string, pid, tid int, name string) error {
		return emit(chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: &chromeArgs{Name: name}})
	}
	if err := meta("process_name", 0, 0, devicePseudo); err != nil {
		return err
	}
	for _, d := range devs {
		if err := meta("process_name", pids[d], 0, d); err != nil {
			return err
		}
	}
	// Thread tracks: every (device, stream) pair that actually recorded a
	// span, plus the device-level track 0.
	type track struct{ pid, tid int }
	trackSet := map[track]string{}
	for _, sp := range r.spans {
		tr := track{pids[sp.Device], tids[sp.Stream]}
		if sp.Stream == "" {
			trackSet[tr] = "(device)"
		} else {
			trackSet[tr] = sp.Stream
		}
	}
	tracks := make([]track, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, tr := range tracks {
		if err := meta("thread_name", tr.pid, tr.tid, trackSet[tr]); err != nil {
			return err
		}
	}

	for _, sp := range r.spans {
		ev := chromeEvent{
			Name: sp.Kind.String(),
			Cat:  category(sp.Kind),
			Ts:   us(sp.Start),
			Pid:  pids[sp.Device],
			Tid:  tids[sp.Stream],
		}
		if sp.Dur() > 0 || sp.Kind == SpanQueueWait {
			ev.Ph = "X"
			ev.Dur = usp(sp.Dur())
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		args := &chromeArgs{Model: sp.Model, Proc: sp.Proc}
		if sp.Frame >= 0 {
			f := sp.Frame
			args.Frame = &f
		}
		switch sp.Kind {
		case SpanExec:
			if sp.Wait > 0 {
				args.WaitUs = usp(sp.Wait)
			}
		case SpanFrame:
			args.QueueUs = usp(sp.Queue)
			args.SwapUs = usp(sp.Swap)
			args.ExecUs = usp(sp.Exec)
			args.WaitUs = usp(sp.Wait)
			if sp.Dur() > sp.Deadline {
				m := true
				args.Missed = &m
			}
		}
		if *args != (chromeArgs{}) {
			ev.Args = args
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace parses trace-event JSON and checks the schema
// invariants a viewer relies on: a traceEvents array whose members all carry
// name/ph/pid/tid, with ts and dur on every complete ("X") event. It returns
// the event count. The golden test runs it over the committed fixture, so a
// committed trace that a viewer would refuse fails CI, not the user.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		for _, req := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[req]; !ok {
				return 0, fmt.Errorf("obs: trace event %d missing %q", i, req)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			return 0, fmt.Errorf("obs: trace event %d has non-string ph: %w", i, err)
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"]; !ok {
			return 0, fmt.Errorf("obs: trace event %d missing ts", i)
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				return 0, fmt.Errorf("obs: complete event %d missing dur", i)
			}
		}
	}
	return len(doc.TraceEvents), nil
}
