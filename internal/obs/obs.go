// Package obs is the fleet's flight recorder: a virtual-clock span tracer,
// a counters-and-histograms registry derived from the span stream, and
// per-frame latency attribution. It observes the deterministic event loop
// without steering it — a Recorder never draws randomness, never charges the
// platform, and attaching one leaves every simulated result bit-identical
// (pinned by the fleet determinism fuzzer and the recorder equivalence
// tests in internal/fleet).
//
// Two write paths feed one globally-ordered span list:
//
//   - Fleet-level lifecycle events (arrival, queue wait, migration,
//     brownout, crash recovery) happen on the event loop's sequential global
//     path and append directly, in event order.
//   - Per-frame engine events (loads, execs, the frame attribution span)
//     are emitted into a per-stream pending buffer (StreamRec) while the
//     step runs — each stream is owned by exactly one region, so buffering
//     is race-free under region-sharded advances — and are collected into
//     the global list at the same points the fleet applies other
//     cross-region effects: after each step on the sequential path, and in
//     exact global key order at the region merge barrier (the journal-encode
//     discipline of internal/fleet/region.go). The collected span order is
//     therefore bit-identical at every region count.
//
// The package is a leaf: the runtime engine and the fleet loop both import
// it, so it depends only on the standard library (internal/metrics sits
// above it in the import graph — the attribution restates the nearest-rank
// p99 reduction and the fleet tests pin the two equal).
package obs

import (
	"time"
)

// SpanKind classifies a recorded lifecycle event.
type SpanKind uint8

// The span taxonomy. Interval spans carry Start < End; point events
// (arrival, residency hits, drains) carry Start == End.
const (
	// SpanArrival marks a stream being offered to the fleet.
	SpanArrival SpanKind = iota
	// SpanQueueWait covers a fresh stream's arrival→admission interval
	// (zero-length when a device had headroom immediately).
	SpanQueueWait
	// SpanLoadHit marks an engine-ensure that found the model resident:
	// the swap the stream did not have to pay.
	SpanLoadHit
	// SpanLoad covers a demand-miss engine load charged on the critical
	// path — the swap-stall interval latency attribution accounts.
	SpanLoad
	// SpanExec covers one execution charge on a processor (inference,
	// scheduler overhead, tracker step).
	SpanExec
	// SpanFrame covers one served frame arrival→completion and carries the
	// exact latency decomposition (Queue, Swap, Exec, Wait).
	SpanFrame
	// SpanMigration covers a displaced stream's fault→re-admission
	// downtime.
	SpanMigration
	// SpanDrain marks a session checkpointed and closed by an evacuation
	// (fault displacement or autoscaler scale-in).
	SpanDrain
	// SpanBrownout covers a device's latency-scaled interval, emitted at
	// the recovery edge.
	SpanBrownout
	// SpanCrashRecover covers a crashed stream's kill→re-admission
	// interval, resuming from its journaled checkpoint.
	SpanCrashRecover
	// SpanPrefetch covers a speculative engine load issued from a swap
	// prediction (or a fleet pre-warm), overlapping the predicted next
	// load with current-frame compute. It never sits on the stream's
	// critical path — attribution ignores it.
	SpanPrefetch
	// SpanPrefetchHit marks a demand acquire served entirely by a
	// completed prefetch: the swap stall that vanished. Frames carrying
	// one have a zero Swap component.
	SpanPrefetchHit
)

// String returns the kind's trace label.
func (k SpanKind) String() string {
	switch k {
	case SpanArrival:
		return "arrival"
	case SpanQueueWait:
		return "queue-wait"
	case SpanLoadHit:
		return "load-hit"
	case SpanLoad:
		return "load"
	case SpanExec:
		return "exec"
	case SpanFrame:
		return "frame"
	case SpanMigration:
		return "migration"
	case SpanDrain:
		return "drain"
	case SpanBrownout:
		return "brownout"
	case SpanCrashRecover:
		return "crash-recover"
	case SpanPrefetch:
		return "prefetch"
	case SpanPrefetchHit:
		return "prefetch-hit"
	default:
		return "?"
	}
}

// Span is one typed lifecycle event on the virtual clock. Label fields not
// applicable to a kind stay zero ("" / -1 / 0).
type Span struct {
	Kind SpanKind
	// Stream and Device locate the event; Model and Proc attribute engine
	// work (prefetch loads carry no model label — the loader batches them
	// below the engine's per-pair visibility).
	Stream string
	Device string
	Model  string
	Proc   string
	// Frame is the 0-based frame position within the stream, -1 for events
	// outside any frame (start-of-stream charges, lifecycle events).
	Frame int
	// Start and End bound the event on the virtual clock.
	Start time.Duration
	End   time.Duration
	// Wait is the processor queueing delay paid before Start (SpanExec),
	// or the frame's total interference component (SpanFrame).
	Wait time.Duration
	// Frame attribution (SpanFrame only): Queue + Swap + Exec + Wait
	// partition [Start, End] exactly — see Recorder.Attribution.
	Queue time.Duration
	Swap  time.Duration
	Exec  time.Duration
	// Deadline is the frame's relative deadline (SpanFrame only), so the
	// registry can re-derive deadline misses: End-Start > Deadline.
	Deadline time.Duration
}

// Dur returns the span's length on the virtual clock.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Recorder is the flight recorder: the globally-ordered span list and the
// registry derived from it. A nil *Recorder is the detached state; every
// instrumentation site nil-checks before doing any work, so a detached run
// pays one predictable branch per hook (benchmarked by
// BenchmarkRecorderOverhead).
type Recorder struct {
	spans []Span
	reg   Registry
}

// NewRecorder returns an empty, attached-ready recorder.
func NewRecorder() *Recorder {
	return &Recorder{reg: newRegistry()}
}

// Spans returns the recorded spans in global event order. The slice is the
// recorder's own; callers read, they do not mutate.
func (r *Recorder) Spans() []Span { return r.spans }

// Registry returns the counters-and-histograms registry derived from the
// span stream.
func (r *Recorder) Registry() *Registry { return &r.reg }

// add appends one span in global order and folds it into the registry.
func (r *Recorder) add(sp Span) {
	r.spans = append(r.spans, sp)
	r.reg.fold(sp)
}

// Arrival records a stream being offered at time at.
func (r *Recorder) Arrival(stream string, at time.Duration) {
	r.add(Span{Kind: SpanArrival, Stream: stream, Frame: -1, Start: at, End: at})
}

// QueueWait records a fresh stream's arrival→admission wait on its serving
// device (zero-length when admitted immediately).
func (r *Recorder) QueueWait(stream, device string, arrival, admitted time.Duration) {
	r.add(Span{Kind: SpanQueueWait, Stream: stream, Device: device, Frame: -1,
		Start: arrival, End: admitted})
}

// Migration records a displaced stream's downtime: device fault at since,
// re-admitted on device at at.
func (r *Recorder) Migration(stream, device string, since, at time.Duration) {
	r.add(Span{Kind: SpanMigration, Stream: stream, Device: device, Frame: -1,
		Start: since, End: at})
}

// CrashRecover records a crashed stream resuming from its journaled
// checkpoint: worker killed at since, re-admitted on device at at.
func (r *Recorder) CrashRecover(stream, device string, since, at time.Duration) {
	r.add(Span{Kind: SpanCrashRecover, Stream: stream, Device: device, Frame: -1,
		Start: since, End: at})
}

// Brownout records a device's latency-scaled interval, emitted at the
// recovery edge (a brownout still active at end of run is not recorded).
func (r *Recorder) Brownout(device string, onset, recovery time.Duration) {
	r.add(Span{Kind: SpanBrownout, Device: device, Frame: -1,
		Start: onset, End: recovery})
}

// Reject counts a stream the admission gate turned away (no span — the
// arrival span already marks the offer).
func (r *Recorder) Reject() { r.reg.Inc("streams_rejected", 1) }

// Abort counts a displaced stream that could never resume.
func (r *Recorder) Abort() { r.reg.Inc("streams_aborted", 1) }

// Shed counts a best-effort stream dropped during crash recovery.
func (r *Recorder) Shed() { r.reg.Inc("streams_shed", 1) }

// OpenStream returns the per-stream span buffer for one admission of stream
// on device. A migrated stream gets a fresh StreamRec per admission, so
// engine spans always carry the serving device.
func (r *Recorder) OpenStream(stream, device string) *StreamRec {
	return &StreamRec{stream: stream, device: device}
}

// Collect appends a stream's buffered spans to the global list in emission
// order and resets the buffer — the sequential event loop calls it after
// every step (and after a drain), keeping the global list in event order.
func (r *Recorder) Collect(sr *StreamRec) {
	for _, sp := range sr.pend {
		r.add(sp)
	}
	sr.pend = sr.pend[:0]
}

// CollectRange appends pend[lo:hi) without resetting — the region merge
// collects each logged step's exact span range in global key order and
// resets the buffers only once the whole merge is applied (a session may
// step several times within one parallel interval).
func (r *Recorder) CollectRange(sr *StreamRec, lo, hi int) {
	for _, sp := range sr.pend[lo:hi] {
		r.add(sp)
	}
}

// StreamRec is one admitted stream's pending span buffer. Exactly one
// region owns the stream, so emissions need no locking; the fleet collects
// the buffer into the Recorder's global list at globally-ordered points.
type StreamRec struct {
	stream string
	device string
	pend   []Span
}

// PendLen returns the pending span count — the region advance brackets each
// step's emissions with it.
func (sr *StreamRec) PendLen() int { return len(sr.pend) }

// ResetPend clears the buffer after a region merge collected every range.
func (sr *StreamRec) ResetPend() { sr.pend = sr.pend[:0] }

// Exec buffers one execution charge on proc: queued behind earlier work for
// wait, ran [start, end).
func (sr *StreamRec) Exec(proc, model string, start, end, wait time.Duration, frame int) {
	sr.pend = append(sr.pend, Span{Kind: SpanExec, Stream: sr.stream, Device: sr.device,
		Model: model, Proc: proc, Frame: frame, Start: start, End: end, Wait: wait})
}

// Load buffers one demand-miss engine load charged on proc over [start, end).
func (sr *StreamRec) Load(proc, model string, start, end time.Duration, frame int) {
	sr.pend = append(sr.pend, Span{Kind: SpanLoad, Stream: sr.stream, Device: sr.device,
		Model: model, Proc: proc, Frame: frame, Start: start, End: end})
}

// LoadHit buffers a residency hit: the ensure that charged nothing.
func (sr *StreamRec) LoadHit(model string, at time.Duration, frame int) {
	sr.pend = append(sr.pend, Span{Kind: SpanLoadHit, Stream: sr.stream, Device: sr.device,
		Model: model, Frame: frame, Start: at, End: at})
}

// Frame buffers one served frame's attribution span. The decomposition is
// computed in the integer Duration domain, so the components sum to the
// end-to-end latency bit-exactly:
//
//	queue = start - arrival        (admission + previous-frame backlog)
//	wait  = Σ processor queueing   (interference from other streams)
//	swap  = Σ demand-load charges  (the swap stall)
//	exec  = (done - start) - wait - swap
//
// and queue + wait + swap + exec == done - arrival by construction (the
// engine advances its stream clock by exactly wait_i + dur_i per charge).
func (sr *StreamRec) Frame(frame int, arrival, start, done, wait, swap, deadline time.Duration) {
	sr.pend = append(sr.pend, Span{
		Kind: SpanFrame, Stream: sr.stream, Device: sr.device, Frame: frame,
		Start: arrival, End: done,
		Queue: start - arrival, Wait: wait, Swap: swap,
		Exec:     (done - start) - wait - swap,
		Deadline: deadline,
	})
}

// Prefetch buffers one speculative engine load charged on proc over
// [start, end) — issued during frame (or -1 for a fleet pre-warm at
// admission), completing off the stream's critical path.
func (sr *StreamRec) Prefetch(proc, model string, start, end time.Duration, frame int) {
	sr.pend = append(sr.pend, Span{Kind: SpanPrefetch, Stream: sr.stream, Device: sr.device,
		Model: model, Proc: proc, Frame: frame, Start: start, End: end})
}

// PrefetchHit buffers a demand acquire served entirely by a completed
// prefetch — the swap the prediction hid.
func (sr *StreamRec) PrefetchHit(model string, at time.Duration, frame int) {
	sr.pend = append(sr.pend, Span{Kind: SpanPrefetchHit, Stream: sr.stream, Device: sr.device,
		Model: model, Frame: frame, Start: at, End: at})
}

// Drain buffers the session's checkpoint-and-close event at time at.
func (sr *StreamRec) Drain(at time.Duration) {
	sr.pend = append(sr.pend, Span{Kind: SpanDrain, Stream: sr.stream, Device: sr.device,
		Frame: -1, Start: at, End: at})
}
