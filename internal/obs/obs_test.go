package obs_test

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// record plays a tiny two-stream scenario into a fresh recorder: stream a is
// admitted after a queue wait and serves two frames (one with a swap stall),
// stream b is offered and rejected, and the device browns out once.
func record() *obs.Recorder {
	r := obs.NewRecorder()
	r.Arrival("a", 0)
	sr := r.OpenStream("a", "dev0")
	r.QueueWait("a", "dev0", 0, 10*time.Millisecond)
	sr.Load("gpu", "yolo", 10*time.Millisecond, 30*time.Millisecond, 0)
	sr.Exec("gpu", "yolo", 30*time.Millisecond, 50*time.Millisecond, 2*time.Millisecond, 0)
	sr.Frame(0, 0, 10*time.Millisecond, 50*time.Millisecond,
		2*time.Millisecond, 20*time.Millisecond, 100*time.Millisecond)
	sr.LoadHit("yolo", 50*time.Millisecond, 1)
	sr.Exec("gpu", "yolo", 50*time.Millisecond, 65*time.Millisecond, 0, 1)
	sr.Frame(1, 40*time.Millisecond, 50*time.Millisecond, 65*time.Millisecond,
		0, 0, 10*time.Millisecond)
	r.Collect(sr)
	r.Arrival("b", 20*time.Millisecond)
	r.Reject()
	r.Brownout("dev0", 60*time.Millisecond, 70*time.Millisecond)
	return r
}

// TestRegistryFold checks every fold rule the scenario reaches: offered and
// admitted streams, hit and miss loads, execs, frames (one past deadline),
// rejection, brownout, and the derived histograms.
func TestRegistryFold(t *testing.T) {
	reg := record().Registry()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"streams_offered", 2},
		{"streams_admitted", 1},
		{"streams_rejected", 1},
		{"loads_hit", 1},
		{"loads_miss", 1},
		{"execs", 2},
		{"frames", 2},
		{"frames_missed", 1},
		{"brownouts", 1},
		{"migrations", 0},
	} {
		if got := reg.Counter(c.name); got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, got, c.want)
		}
	}
	if h := reg.Histogram("frame_latency"); h == nil || h.Count != 2 {
		t.Fatalf("frame_latency histogram %+v, want 2 observations", h)
	} else {
		if h.Min != 25*time.Millisecond || h.Max != 50*time.Millisecond {
			t.Fatalf("frame_latency min %v max %v, want 25ms/50ms", h.Min, h.Max)
		}
		if h.Sum != 75*time.Millisecond {
			t.Fatalf("frame_latency sum %v, want 75ms", h.Sum)
		}
	}
	if h := reg.Histogram("load_stall"); h == nil || h.Count != 1 || h.Sum != 20*time.Millisecond {
		t.Fatalf("load_stall histogram %+v, want one 20ms stall", h)
	}
	out := reg.Render()
	for _, want := range []string{"streams_offered", "frame_latency", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}

// TestFrameSpanDecomposition pins the Frame helper's arithmetic: queue is
// admission-to-start, exec is the remainder after wait and swap, and the four
// components sum exactly to the span duration.
func TestFrameSpanDecomposition(t *testing.T) {
	var frames []obs.Span
	for _, sp := range record().Spans() {
		if sp.Kind == obs.SpanFrame {
			frames = append(frames, sp)
		}
	}
	if len(frames) != 2 {
		t.Fatalf("%d frame spans, want 2", len(frames))
	}
	f0 := frames[0]
	if f0.Queue != 10*time.Millisecond || f0.Swap != 20*time.Millisecond ||
		f0.Wait != 2*time.Millisecond || f0.Exec != 18*time.Millisecond {
		t.Fatalf("frame 0 decomposition %+v", f0)
	}
	for _, sp := range frames {
		if sp.Queue+sp.Wait+sp.Swap+sp.Exec != sp.Dur() {
			t.Fatalf("frame %d: %v+%v+%v+%v != %v", sp.Frame, sp.Queue, sp.Wait, sp.Swap, sp.Exec, sp.Dur())
		}
	}
}

// TestAttributionSharesAndP99 checks the reduction over the scenario and the
// cross-package p99 contract: obs restates metrics' nearest-rank percentile
// locally (an import would cycle), and the two must agree bit-for-bit on
// every sample set, degenerate ones included.
func TestAttributionSharesAndP99(t *testing.T) {
	a := record().Attribution()
	if a.Frames != 2 {
		t.Fatalf("frames %d, want 2", a.Frames)
	}
	total := a.QueueShare + a.SwapShare + a.ExecShare + a.InterferenceShare
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("shares sum to %v", total)
	}
	if a.SwapShare <= 0 || a.SwapStallShareOfP99 <= 0 {
		t.Fatalf("swap shares %v / %v, want positive (frame 0 stalled 20ms)",
			a.SwapShare, a.SwapStallShareOfP99)
	}
	// p99 parity with internal/metrics across sizes 1..200 of a scrambled
	// deterministic sample set.
	for n := 1; n <= 200; n++ {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = math.Sin(float64(i*n+1)) * 10
		}
		want := metrics.Latencies(samples).P99
		rec := obs.NewRecorder()
		sr := rec.OpenStream("s", "d")
		for i, s := range samples {
			ns := time.Duration(math.Abs(s) * float64(time.Second))
			sr.Frame(i, 0, 0, ns, 0, 0, time.Hour)
		}
		rec.Collect(sr)
		var lats []float64
		for _, sp := range rec.Spans() {
			lats = append(lats, sp.Dur().Seconds())
		}
		if got := rec.Attribution().P99Sec; got != metrics.Latencies(lats).P99 {
			t.Fatalf("n=%d: obs p99 %v != metrics p99 over same spans %v", n, got, metrics.Latencies(lats).P99)
		}
		_ = want
	}
}

// TestHistQuantiles drives the power-of-two-bucket histogram directly:
// quantiles are upper-bound estimates that never undershoot the true value's
// bucket floor and the max is exact.
func TestHistQuantiles(t *testing.T) {
	var h obs.Hist
	var all []time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		h.Observe(d)
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if h.Count != 1000 || h.Min != time.Millisecond || h.Max != time.Second {
		t.Fatalf("hist stats count=%d min=%v max=%v", h.Count, h.Min, h.Max)
	}
	if got := h.Mean(); got != 500500*time.Microsecond {
		t.Fatalf("mean %v, want 500.5ms", got)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		true99 := all[int(q*float64(len(all)-1))]
		got := h.Quantile(q)
		if got < true99 {
			t.Fatalf("q=%.2f: estimate %v undershoots true %v", q, got, true99)
		}
		if got > h.Max {
			t.Fatalf("q=%.2f: estimate %v above max %v", q, got, h.Max)
		}
	}
	// Negative observations clamp to zero rather than corrupting buckets.
	var neg obs.Hist
	neg.Observe(-time.Second)
	if neg.Count != 1 || neg.Min != 0 || neg.Quantile(0.5) < 0 {
		t.Fatalf("negative observation mishandled: %+v", neg)
	}
	// Empty histogram is inert.
	var empty obs.Hist
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

// TestChromeTraceWriteAndValidate round-trips the scenario through the
// trace-event writer: the validator accepts it, the event count covers every
// span plus metadata, and writing twice is byte-identical.
func TestChromeTraceWriteAndValidate(t *testing.T) {
	r := record()
	var one, two bytes.Buffer
	if err := r.WriteChromeTrace(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChromeTrace(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("trace export is not deterministic across writes")
	}
	n, err := obs.ValidateChromeTrace(one.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(r.Spans()); n < want {
		t.Fatalf("validator saw %d events for %d spans", n, want)
	}
	for _, want := range []string{`"displayTimeUnit":"ms"`, `"ph":"M"`, `"ph":"X"`, "dev0", "yolo"} {
		if !strings.Contains(one.String(), want) {
			t.Fatalf("trace missing %q", want)
		}
	}
	// The validator rejects structurally broken documents.
	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[{"ph":"X"}]}`,
		`{"traceEvents":[{"name":"e","ph":"X","pid":0,"tid":0,"ts":1}]}`,
	} {
		if _, err := obs.ValidateChromeTrace([]byte(bad)); err == nil {
			t.Fatalf("validator accepted %s", bad)
		}
	}
	// An empty recorder still writes a valid (metadata-only) document.
	var empty bytes.Buffer
	if err := obs.NewRecorder().WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(empty.Bytes()); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

// TestTimeline sanity-checks the textual strip chart: the device row shows
// load and exec glyphs over the horizon and the empty recorder renders
// nothing.
func TestTimeline(t *testing.T) {
	tl := record().Timeline(40)
	if tl == "" {
		t.Fatal("timeline empty for a populated recorder")
	}
	if !strings.Contains(tl, "dev0") {
		t.Fatalf("timeline missing device row:\n%s", tl)
	}
	if !strings.Contains(tl, "#") || !strings.Contains(tl, "L") {
		t.Fatalf("timeline missing exec/load glyphs:\n%s", tl)
	}
	if got := obs.NewRecorder().Timeline(40); got != "" {
		t.Fatalf("empty recorder rendered %q", got)
	}
}

// TestCollectRange pins the region-merge primitive: collecting an explicit
// pend range copies exactly those spans without resetting the buffer, so a
// later reset-free range pick up where the previous left off.
func TestCollectRange(t *testing.T) {
	r := obs.NewRecorder()
	sr := r.OpenStream("s", "d")
	sr.Exec("gpu", "m", 0, time.Millisecond, 0, 0)
	sr.Exec("gpu", "m", time.Millisecond, 2*time.Millisecond, 0, 1)
	sr.Exec("gpu", "m", 2*time.Millisecond, 3*time.Millisecond, 0, 2)
	r.CollectRange(sr, 0, 1)
	r.CollectRange(sr, 1, 3)
	if sr.PendLen() != 3 {
		t.Fatalf("CollectRange reset the pend buffer: len %d", sr.PendLen())
	}
	sr.ResetPend()
	if sr.PendLen() != 0 {
		t.Fatal("ResetPend left spans pending")
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans collected, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Frame != i {
			t.Fatalf("span %d has frame %d; range collection reordered", i, sp.Frame)
		}
	}
}

// TestSpanKindStrings keeps the label set stable — trace categories and the
// registry key space both derive from it.
func TestSpanKindStrings(t *testing.T) {
	want := map[obs.SpanKind]string{
		obs.SpanArrival:      "arrival",
		obs.SpanQueueWait:    "queue-wait",
		obs.SpanLoadHit:      "load-hit",
		obs.SpanLoad:         "load",
		obs.SpanExec:         "exec",
		obs.SpanFrame:        "frame",
		obs.SpanMigration:    "migration",
		obs.SpanDrain:        "drain",
		obs.SpanBrownout:     "brownout",
		obs.SpanCrashRecover: "crash-recover",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("SpanKind %d = %q, want %q", k, k.String(), s)
		}
	}
}
